GO ?= go

# Benchmarks tracked in BENCH_eval.json: the eval/chase hot-path families.
BENCH_PATTERN ?= BenchmarkE2|BenchmarkE3|BenchmarkE4|BenchmarkE5|BenchmarkE6|BenchmarkE7|BenchmarkE9|BenchmarkAblation_CompiledEval|BenchmarkAblation_ParallelEval|BenchmarkAblation_StreamingEval|BenchmarkAblation_ShardedEval|BenchmarkAblation_PreserveDerive|BenchmarkAblation_IncrementalChurn|BenchmarkAblation_TerminationFastPath|BenchmarkIncrementalVsReEval|BenchmarkServiceWarmVsCold
BENCHTIME ?= 0.3s

# staticcheck pin for lint-ci; bump deliberately, not implicitly.
STATICCHECK_VERSION ?= 2025.1

.PHONY: all build vet datalog-vet test race race-service race-shard race-ivm serve-smoke bench bench-all experiments examples lint lint-ci clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# datalog-vet runs the repository's own static analyzer over the shipped
# example programs; any error-severity finding fails the build. The seeded
# defect corpus under testdata/vet/ is exercised separately by the golden
# tests in cmd/datalog.
datalog-vet:
	$(GO) run ./cmd/datalog vet testdata/*.dl

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-service race-checks the multi-tenant service stack: the session
# facade, the HTTP layer and the copy-on-freeze snapshots they evaluate.
race-service:
	$(GO) test -race ./internal/core ./internal/service ./internal/db

# race-shard race-checks the sharded round executor's determinism contract:
# the byte-identity grid over Shards × Workers × Strategy, goal prefix-cut
# partial databases, budget agreement, the incremental oracle and the
# shard-aware stats accounting.
race-shard:
	$(GO) test -race -run 'TestSharded|TestShardOwner|TestShardView' ./internal/eval ./internal/db

# race-ivm race-checks the incremental view maintenance stack: the
# counting/DRed maintenance engine and its randomized oracle grid, the
# tombstone/compaction machinery in the store, session Apply diffs and the
# subscription fan-out in the service layer.
race-ivm:
	$(GO) test -race -run 'TestMaintain|TestCompact|TestRemove|TestFreeze|TestCounts|TestSession|TestSubscri|TestFactsEnvelope' ./internal/eval ./internal/db ./internal/core ./internal/service

# serve-smoke boots `datalog serve` on an ephemeral port with a preloaded
# program and drives a register/facts/eval/statz round-trip over HTTP.
serve-smoke:
	$(GO) test ./cmd/datalog -run 'TestServeCommand' -count=1 -v

# bench runs the eval/chase benchmark families and records ns/op, B/op and
# allocs/op per benchmark in BENCH_eval.json so the perf trajectory is
# tracked from PR to PR.
bench:
	$(GO) test -run='^$$' -bench='$(BENCH_PATTERN)' -benchmem -benchtime=$(BENCHTIME) . | tee /dev/stderr | $(GO) run ./cmd/benchjson -o BENCH_eval.json

bench-all:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments -run all

# lint runs go vet always and staticcheck when the binary is on PATH (the
# dev container does not bake it in; lint-ci installs the pinned version).
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (make lint-ci installs it)"; \
	fi

lint-ci:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	PATH="$$($(GO) env GOPATH)/bin:$$PATH" $(MAKE) lint

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/minimize
	$(GO) run ./examples/equivalence
	$(GO) run ./examples/magic
	$(GO) run ./examples/stratified
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/authz
	$(GO) run ./examples/incremental

clean:
	$(GO) clean ./...
