GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem .

experiments:
	$(GO) run ./cmd/experiments -run all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/minimize
	$(GO) run ./examples/equivalence
	$(GO) run ./examples/magic
	$(GO) run ./examples/stratified
	$(GO) run ./examples/pointsto
	$(GO) run ./examples/authz
	$(GO) run ./examples/incremental

clean:
	$(GO) clean ./...
