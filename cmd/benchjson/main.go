// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON report, so the performance trajectory of the eval/chase hot
// paths can be tracked as a checked-in artifact (see `make bench`, which
// writes BENCH_eval.json).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the full bench run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseLine parses one `BenchmarkX-8  100  123 ns/op  45 B/op  6 allocs/op`
// line. The -N GOMAXPROCS suffix is stripped from the name.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, true
}
