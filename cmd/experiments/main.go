// Command experiments regenerates the experiment tables E1–E10 described in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments            run all experiments
//	experiments -run E5    run a single experiment by id
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	runID := flag.String("run", "all", "experiment id to run (E1..E15, or 'all')")
	format := flag.String("format", "table", "output format: table, csv, or md")
	flag.Parse()

	render := func(t harness.Table) string {
		switch *format {
		case "csv":
			return t.CSV()
		case "md":
			return t.Markdown()
		default:
			return t.String()
		}
	}

	runners := map[string]func() harness.Table{
		"E1":  harness.E1WorkedExamples,
		"E2":  harness.E2UniformContainment,
		"E3":  harness.E3MinimizeRule,
		"E4":  harness.E4MinimizeProgram,
		"E5":  harness.E5EvalSpeedup,
		"E6":  harness.E6NaiveVsSemiNaive,
		"E7":  harness.E7EquivOpt,
		"E8":  harness.E8MagicComposition,
		"E9":  harness.E9EmbeddedChase,
		"E10": harness.E10CQAblation,
		"E11": harness.E11Engines,
		"E12": harness.E12Incremental,
		"E13": harness.E13EngineAblations,
		"E14": harness.E14SIPS,
		"E15": harness.E15DerivationCounts,
	}

	id := strings.ToUpper(*runID)
	if id == "ALL" {
		for _, t := range harness.All() {
			fmt.Println(render(t))
		}
		return
	}
	runner, ok := runners[id]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown id %q (want E1..E15 or all)\n", *runID)
		os.Exit(1)
	}
	fmt.Println(render(runner()))
}
