package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tcSource = `
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z).
A(1, 2). A(2, 3).
`

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestParseCommand(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runCLI(t, "parse", f)
	if !strings.Contains(out, "G(x, z) :- G(x, y), G(y, z).") || !strings.Contains(out, "A(1, 2).") {
		t.Fatalf("parse output:\n%s", out)
	}
}

func TestEvalCommand(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runCLI(t, "-stats", "eval", f)
	if !strings.Contains(out, "G(1, 3).") {
		t.Fatalf("eval output:\n%s", out)
	}
	if !strings.Contains(out, "% rounds=") {
		t.Fatalf("missing stats:\n%s", out)
	}
	// Naive strategy computes the same closure.
	outNaive := runCLI(t, "-naive", "eval", f)
	if !strings.Contains(outNaive, "G(1, 3).") {
		t.Fatalf("naive eval output:\n%s", outNaive)
	}
}

func TestQueryCommand(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runCLI(t, "query", f, "G(1, y)")
	if !strings.Contains(out, "G(1, 2)") || !strings.Contains(out, "G(1, 3)") {
		t.Fatalf("query output:\n%s", out)
	}
	if strings.Contains(out, "G(2, 3)") {
		t.Fatalf("query not filtered:\n%s", out)
	}
}

func TestMinimizeCommand(t *testing.T) {
	f := writeFile(t, "red.dl", `
G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).
`)
	out := runCLI(t, "minimize", f)
	if !strings.Contains(out, "removed 1 atoms") || !strings.Contains(out, "A(w, y)") {
		t.Fatalf("minimize output:\n%s", out)
	}
}

func TestEquivoptCommand(t *testing.T) {
	f := writeFile(t, "ex18.dl", `
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z), A(y, w).
`)
	out := runCLI(t, "equivopt", f)
	if !strings.Contains(out, "1 removals") || !strings.Contains(out, "-> A(y, w)") {
		t.Fatalf("equivopt output:\n%s", out)
	}
}

func TestContainsCommand(t *testing.T) {
	f1 := writeFile(t, "p1.dl", "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n")
	f2 := writeFile(t, "p2.dl", "G(x, z) :- A(x, z).\nG(x, z) :- A(x, y), G(y, z).\n")
	out := runCLI(t, "contains", f1, f2)
	if !strings.Contains(out, "P2 ⊑ᵘ P1: true") || !strings.Contains(out, "P1 ⊑ᵘ P2: false") {
		t.Fatalf("contains output:\n%s", out)
	}
}

func TestPreserveCommand(t *testing.T) {
	f := writeFile(t, "pres.dl", `
G(x, z) :- A(x, z).
G(x, z) :- G(x, y), G(y, z), A(y, w).
G(x, z) -> A(x, w).
`)
	out := runCLI(t, "preserve", f)
	if !strings.Contains(out, "preserves T non-recursively: yes") {
		t.Fatalf("preserve output:\n%s", out)
	}
	if !strings.Contains(out, "preliminary DB satisfies T: yes") {
		t.Fatalf("preserve output:\n%s", out)
	}
}

func TestMagicCommand(t *testing.T) {
	f := writeFile(t, "anc.dl", `
Anc(x, y) :- Par(x, y).
Anc(x, z) :- Par(x, y), Anc(y, z).
`)
	out := runCLI(t, "magic", f, "Anc(1, y)")
	if !strings.Contains(out, "m@Anc@bf") || !strings.Contains(out, "seed:") {
		t.Fatalf("magic output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Fatal("unknown command accepted")
	}
	if err := run([]string{"eval"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
	f := writeFile(t, "bad.dl", "G(x :- A(x).")
	if err := run([]string{"eval", f}, &sb); err == nil {
		t.Fatal("syntax error not surfaced")
	}
	if err := run([]string{"eval", filepath.Join(t.TempDir(), "missing.dl")}, &sb); err == nil {
		t.Fatal("missing file not surfaced")
	}
	f2 := writeFile(t, "tc.dl", tcSource)
	if err := run([]string{"query", f2, "G(1,"}, &sb); err == nil {
		t.Fatal("bad query atom accepted")
	}
	if err := run([]string{"preserve", f2}, &sb); err == nil {
		t.Fatal("preserve without tgds accepted")
	}
}

func TestExplainCommand(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runCLI(t, "explain", f, "G(1, 3)")
	if !strings.Contains(out, "G(1, 3)") || !strings.Contains(out, "[input]") {
		t.Fatalf("explain output:\n%s", out)
	}
	var sb strings.Builder
	if err := run([]string{"explain", f, "G(3, 1)"}, &sb); err == nil {
		t.Fatal("absent fact explained")
	}
	if err := run([]string{"explain", f, "G(x, y)"}, &sb); err == nil {
		t.Fatal("non-ground goal accepted")
	}
}

func TestGraphCommand(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runCLI(t, "graph", f)
	if !strings.Contains(out, "digraph dependence") || !strings.Contains(out, `"A" -> "G"`) {
		t.Fatalf("graph output:\n%s", out)
	}
}
