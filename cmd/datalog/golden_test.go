package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// testdataPath resolves a file in the repository's testdata directory.
func testdataPath(name string) string {
	return filepath.Join("..", "..", "testdata", name)
}

// TestGoldenPrograms drives the CLI over the shipped .dl programs and
// checks characteristic fragments of each output — an end-to-end smoke of
// parser, evaluator, minimizer, optimizer, and tgd machinery against the
// paper's own programs.
func TestGoldenPrograms(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string
	}{
		{"eval tc", []string{"eval", testdataPath("tc.dl")},
			[]string{"G(4, 2).", "G(1, 1).", "A(4, 1)."}},
		{"minimize ex7", []string{"minimize", testdataPath("ex7.dl")},
			[]string{"G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y).", "removed 1 atoms"}},
		{"equivopt ex11", []string{"equivopt", testdataPath("ex11.dl")},
			[]string{"G(x, z) :- G(x, y), G(y, z).", "1 removals"}},
		{"equivopt ex19", []string{"equivopt", testdataPath("ex19.dl")},
			[]string{"G(x, z) :- A(x, y), G(y, z).", "removed G(y, w), C(w)"}},
		{"preserve ex11", []string{"preserve", testdataPath("ex11.dl")},
			[]string{"preserves T non-recursively: yes", "preliminary DB satisfies T: yes"}},
		{"query ancestor", []string{"query", testdataPath("ancestor.dl"), `Anc("ann", y)`},
			[]string{`Anc("ann", "bob")`, `Anc("ann", "dave")`}},
		{"eval reachability", []string{"eval", testdataPath("reachability.dl")},
			[]string{"Dead(4).", "Dead(5).", "Reach(3)."}},
		{"graph tc", []string{"graph", testdataPath("tc.dl")},
			[]string{`"A" -> "G";`, `"G" -> "G";`}},
		{"explain tc", []string{"explain", testdataPath("tc.dl"), "G(4, 2)"},
			[]string{"G(4, 2)", "[input]"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			out := sb.String()
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestGoldenNegativeChecks(t *testing.T) {
	// The Dead facts must NOT include reachable services.
	var sb strings.Builder
	if err := run([]string{"eval", testdataPath("reachability.dl")}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"Dead(1).", "Dead(2).", "Dead(3)."} {
		if strings.Contains(sb.String(), bad) {
			t.Errorf("spurious %s", bad)
		}
	}
}

func TestTQueryAndOptimizeCommands(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-stats", "tquery", testdataPath("ancestor.dl"), `Anc("ann", y)`}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `Anc("ann", "dave")`) || !strings.Contains(out, "% subgoals=") {
		t.Fatalf("tquery output:\n%s", out)
	}

	sb.Reset()
	if err := run([]string{"optimize", testdataPath("ex11.dl"), "G(1, y)"}, &sb); err != nil {
		t.Fatal(err)
	}
	out = sb.String()
	if !strings.Contains(out, "m@G@bf") || !strings.Contains(out, "removed 0 rules, 1 atoms") {
		t.Fatalf("optimize output:\n%s", out)
	}
}

func TestFmtCommandIdempotent(t *testing.T) {
	var first strings.Builder
	if err := run([]string{"fmt", testdataPath("ancestor.dl")}, &first); err != nil {
		t.Fatal(err)
	}
	// Formatting the formatted output reproduces it byte for byte.
	tmp := writeFile(t, "fmted.dl", first.String())
	var second strings.Builder
	if err := run([]string{"fmt", tmp}, &second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("fmt not idempotent:\n%q\nvs\n%q", first.String(), second.String())
	}
	if !strings.Contains(first.String(), `Par("ann", "bob").`) {
		t.Fatalf("fmt output:\n%s", first.String())
	}
}

func TestCheckCommand(t *testing.T) {
	// tc.dl plus a tgd the closure satisfies.
	good := writeFile(t, "good.dl", tcSource+"\nG(x, z) -> A(x, w).\n")
	var sb strings.Builder
	if err := run([]string{"check", good}, &sb); err != nil {
		t.Fatalf("check on satisfied constraints: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "all constraints satisfied") {
		t.Fatalf("check output:\n%s", sb.String())
	}

	// A violated constraint makes check fail with diagnostics.
	bad := writeFile(t, "bad.dl", tcSource+"\nG(x, z) -> Z(x).\n")
	sb.Reset()
	err := run([]string{"check", bad}, &sb)
	if err == nil {
		t.Fatal("check passed on violated constraints")
	}
	if !strings.Contains(sb.String(), "VIOLATION:") {
		t.Fatalf("check output:\n%s", sb.String())
	}

	// No tgds declared is an error.
	none := writeFile(t, "none.dl", tcSource)
	if err := run([]string{"check", none}, &sb); err == nil {
		t.Fatal("check accepted a file without tgds")
	}
}

func TestQuerySymbolIdentityAcrossTables(t *testing.T) {
	// Regression: a query constant must identify with the file's interned
	// constant even when the file interns OTHER symbols first. Before the
	// table-aware ParseAtom, "carol" in the query landed on a different
	// Const than "carol" in the facts and silently returned no answers.
	f := writeFile(t, "sym.dl", `
Anc(x, y) :- Par(x, y).
Anc(x, z) :- Par(x, y), Anc(y, z).
Par("ann", "bob").
Par("bob", "carol").
`)
	var sb strings.Builder
	if err := run([]string{"query", f, `Anc("carol", y)`}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Anc(") {
		t.Fatalf("carol has no descendants:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"query", f, `Anc(x, "carol")`}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`Anc("ann", "carol")`, `Anc("bob", "carol")`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("missing %s in:\n%s", want, sb.String())
		}
	}
	// Same identity guarantee through the top-down engine.
	sb.Reset()
	if err := run([]string{"tquery", f, `Anc(x, "carol")`}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `Anc("ann", "carol")`) {
		t.Fatalf("tquery missed interned constant:\n%s", sb.String())
	}
}

func TestCompareCommand(t *testing.T) {
	p1 := writeFile(t, "p1.dl", "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n")
	p2 := writeFile(t, "p2.dl", "G(x, z) :- A(x, z).\nG(x, z) :- A(x, y), G(y, z).\n")
	var sb strings.Builder
	if err := run([]string{"compare", p1, p2}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"P2 ⊑ᵘ P1: true",
		"P1 ⊑ᵘ P2: false",
		"witness: G(x, z) :- G(x, y), G(y, z).",
		"no disagreement found",
		"P1 is minimal",
		"P2 is minimal",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}

	// Inequivalent pair: the sampler must find a counterexample.
	p3 := writeFile(t, "p3.dl", "G(x, z) :- A(x, z).\n")
	sb.Reset()
	if err := run([]string{"compare", p1, p3}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NO — counterexample") {
		t.Fatalf("counterexample not found:\n%s", sb.String())
	}

	// Non-minimal program reported.
	p4 := writeFile(t, "p4.dl", "G(x, z) :- A(x, z), A(x, w).\n")
	sb.Reset()
	if err := run([]string{"compare", p4, p4}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "NOT minimal") {
		t.Fatalf("non-minimality not reported:\n%s", sb.String())
	}
}
