package main

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/constraint"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/topdown"
)

// This file holds the evaluation family: commands that run the program's
// fixpoint (bottom-up or tabled top-down) over the facts in the file.

// cmdEval evaluates the file's facts and prints the full output database.
func (c *cli) cmdEval(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	outDB, st, err := eval.Eval(res.Program, db.FromFacts(res.Facts), c.opts)
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, outDB.Format(res.Symbols))
	if c.stats {
		fmt.Fprintf(c.out, "%% rounds=%d firings=%d added=%d\n", st.Rounds, st.Firings, st.Added)
		fmt.Fprintf(c.out, "%% strata streamed=%d materialized=%d, bindings pipelined=%d, early-stop cuts=%d\n",
			st.StrataStreamed, st.StrataMaterialized, st.BindingsPipelined, st.EarlyStopCuts)
		if st.ShardRounds > 0 {
			fmt.Fprintf(c.out, "%% shard rounds=%d delta exchanged=%d imbalance=%d\n",
				st.ShardRounds, st.DeltaExchanged, st.ShardImbalance)
		}
	}
	return nil
}

// cmdQuery evaluates and prints the tuples matching a query atom.
func (c *cli) cmdQuery(rest []string) error {
	res, err := load(rest, 1)
	if err != nil {
		return err
	}
	q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
	if err != nil {
		return fmt.Errorf("query atom: %w", err)
	}
	tuples, err := eval.Query(res.Program, db.FromFacts(res.Facts), q, c.opts)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		fmt.Fprintln(c.out, ast.GroundAtom{Pred: q.Pred, Args: t}.Format(res.Symbols))
	}
	return nil
}

// cmdTQuery answers a query atom via the tabled top-down engine.
func (c *cli) cmdTQuery(rest []string) error {
	res, err := load(rest, 1)
	if err != nil {
		return err
	}
	q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
	if err != nil {
		return fmt.Errorf("query atom: %w", err)
	}
	eng, err := topdown.New(res.Program, db.FromFacts(res.Facts))
	if err != nil {
		return err
	}
	tuples, tstats, err := eng.Query(q)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		fmt.Fprintln(c.out, ast.GroundAtom{Pred: q.Pred, Args: t}.Format(res.Symbols))
	}
	if c.stats {
		fmt.Fprintf(c.out, "%% subgoals=%d answers=%d passes=%d\n", tstats.Subgoals, tstats.Answers, tstats.Passes)
	}
	return nil
}

// cmdCheck evaluates the file and verifies its tgds against the output.
func (c *cli) cmdCheck(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	if len(res.TGDs) == 0 {
		return fmt.Errorf("check: the file declares no tgds")
	}
	prep, err := eval.PrepareCached(res.Program, c.opts)
	if err != nil {
		return err
	}
	outDB, _, err := prep.Eval(db.FromFacts(res.Facts))
	if err != nil {
		return err
	}
	violations := constraint.Violations(outDB, res.TGDs, 20)
	if len(violations) == 0 {
		fmt.Fprintln(c.out, "all constraints satisfied")
		return nil
	}
	for _, v := range violations {
		fmt.Fprintf(c.out, "VIOLATION: %s\n", v)
	}
	return fmt.Errorf("check: %d constraint violation(s)", len(violations))
}
