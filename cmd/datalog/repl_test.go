package main

import (
	"strings"
	"testing"
)

// runREPL feeds the lines into a fresh session and returns the transcript.
func runREPL(t *testing.T, lines ...string) string {
	t.Helper()
	var sb strings.Builder
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	if err := repl(in, &sb); err != nil {
		t.Fatalf("repl: %v", err)
	}
	return sb.String()
}

func TestReplAddAndQuery(t *testing.T) {
	out := runREPL(t,
		"G(x, z) :- A(x, z).",
		"G(x, z) :- G(x, y), G(y, z).",
		"A(1, 2). A(2, 3).",
		"?- G(1, y).",
		":quit",
	)
	if !strings.Contains(out, "G(1, 2)") || !strings.Contains(out, "G(1, 3)") {
		t.Fatalf("transcript:\n%s", out)
	}
	if !strings.Contains(out, "2 answer(s)") {
		t.Fatalf("transcript:\n%s", out)
	}
}

func TestReplMinimizeAndShow(t *testing.T) {
	out := runREPL(t,
		"G(x, z) :- A(x, z), A(x, w).",
		":minimize",
		":show",
		":quit",
	)
	if !strings.Contains(out, "removed 1 atoms") {
		t.Fatalf("transcript:\n%s", out)
	}
	// Input lines are not echoed, so the redundant atom must not appear
	// anywhere in the transcript once minimization has removed it.
	if strings.Contains(out, "A(x, w)") {
		t.Fatalf("redundant atom survived:\n%s", out)
	}
}

func TestReplEquivoptAndPreserve(t *testing.T) {
	out := runREPL(t,
		"G(x, z) :- A(x, z).",
		"G(x, z) :- G(x, y), G(y, z), A(y, w).",
		"G(x, z) -> A(x, w).",
		":preserve",
		":equivopt",
		":quit",
	)
	if !strings.Contains(out, "preserves T non-recursively: yes") {
		t.Fatalf("transcript:\n%s", out)
	}
	if !strings.Contains(out, "1 removals") {
		t.Fatalf("transcript:\n%s", out)
	}
}

func TestReplExplainGraphEvalReset(t *testing.T) {
	out := runREPL(t,
		"G(x, z) :- A(x, z).",
		"A(1, 2).",
		":eval",
		":explain G(1, 2)",
		":graph",
		":reset",
		":show",
		":quit",
	)
	if !strings.Contains(out, "[input]") || !strings.Contains(out, "digraph dependence") {
		t.Fatalf("transcript:\n%s", out)
	}
	if !strings.Contains(out, "session cleared") {
		t.Fatalf("transcript:\n%s", out)
	}
}

func TestReplErrorsKeepSessionAlive(t *testing.T) {
	out := runREPL(t,
		"this is not datalog",
		":bogus",
		"?- Nope(",
		":explain G(x, y)",
		"G(x) :- A(x).",
		"G(x, y) :- A(x), A(y).", // arity clash with accumulated program
		"?- G(x).",
		":quit",
	)
	if strings.Count(out, "error:") < 4 {
		t.Fatalf("errors not reported:\n%s", out)
	}
	if !strings.Contains(out, "0 answer(s)") {
		t.Fatalf("session died after errors:\n%s", out)
	}
}

func TestReplHelpAndEOF(t *testing.T) {
	var sb strings.Builder
	// EOF without :quit exits cleanly.
	if err := repl(strings.NewReader(":help\n"), &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), ":minimize") {
		t.Fatalf("help missing:\n%s", sb.String())
	}
}

func TestReplStatsAndLoad(t *testing.T) {
	f := writeFile(t, "tc.dl", tcSource)
	out := runREPL(t,
		":load "+f,
		":stats",
		":load /nonexistent/file.dl",
		":quit",
	)
	if !strings.Contains(out, "added 4 statement(s)") {
		t.Fatalf("load transcript:\n%s", out)
	}
	if !strings.Contains(out, "rules: 2") || !strings.Contains(out, "G: ") {
		t.Fatalf("stats transcript:\n%s", out)
	}
	if !strings.Contains(out, "error:") {
		t.Fatalf("missing-file load did not report:\n%s", out)
	}
}

func TestReplRetract(t *testing.T) {
	out := runREPL(t,
		"G(x, z) :- A(x, z).",
		"G(x, z) :- G(x, y), G(y, z).",
		"A(1, 2). A(2, 3).",
		":retract A(2, 3).",
		"?- G(1, y).",
		":retract A(9, 9)",
		":quit",
	)
	if !strings.Contains(out, "retracted 1 fact(s)") {
		t.Fatalf("transcript:\n%s", out)
	}
	// With A(2,3) gone the closure from 1 stops at 2.
	if !strings.Contains(out, "1 answer(s)") || strings.Contains(out, "G(1, 3)") {
		t.Fatalf("transcript:\n%s", out)
	}
	if !strings.Contains(out, "retracted 0 fact(s)") {
		t.Fatalf("transcript:\n%s", out)
	}
}
