package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/parser"
)

// vet runs the static analyzer over each file and prints its findings,
// human-readable by default or as a JSON array with -json. It returns an
// error (so the process exits 1) iff any finding has error severity.
func vet(files []string, jsonOut bool, out io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("usage: datalog vet [-json] <file...>")
	}
	var all []vetFinding
	errors := 0
	for _, name := range files {
		for _, d := range vetFile(name) {
			all = append(all, vetFinding{File: name, Diagnostic: d})
			if d.Severity == analysis.Error {
				errors++
			}
		}
	}
	if jsonOut {
		if err := writeVetJSON(out, all); err != nil {
			return err
		}
	} else {
		for _, f := range all {
			fmt.Fprintln(out, f.human())
			for _, rel := range f.Related {
				fmt.Fprintf(out, "\t%s: %s\n", vetPos(f.File, rel.Pos), rel.Message)
			}
		}
	}
	if errors > 0 {
		return fmt.Errorf("vet: %d error finding(s)", errors)
	}
	return nil
}

// vetFile analyzes one file. A source that does not parse yields a single
// DL0000 diagnostic carrying the parser's position when the error message
// has a "line:col: " prefix.
func vetFile(name string) []analysis.Diagnostic {
	src, err := read(name)
	if err != nil {
		return []analysis.Diagnostic{{
			Code:     analysis.CodeParse,
			Severity: analysis.Error,
			Message:  err.Error(),
			Pass:     "parse",
		}}
	}
	res, err := parser.ParseLoose(src)
	if err != nil {
		pos, msg := splitParseError(err.Error())
		return []analysis.Diagnostic{{
			Code:     analysis.CodeParse,
			Severity: analysis.Error,
			Pos:      pos,
			Message:  msg,
			Pass:     "parse",
		}}
	}
	return analysis.Analyze(res)
}

// splitParseError extracts a leading "line:col: " position from a parser
// error message; absent one, the position stays unknown.
func splitParseError(msg string) (ast.Pos, string) {
	head, rest, ok := strings.Cut(msg, ": ")
	if !ok {
		return ast.Pos{}, msg
	}
	ls, cs, ok := strings.Cut(head, ":")
	if !ok {
		return ast.Pos{}, msg
	}
	line, err1 := strconv.Atoi(ls)
	col, err2 := strconv.Atoi(cs)
	if err1 != nil || err2 != nil || line <= 0 || col <= 0 {
		return ast.Pos{}, msg
	}
	return ast.Pos{Line: line, Col: col}, rest
}

// vetFinding is one diagnostic tagged with the file it came from.
type vetFinding struct {
	File string
	analysis.Diagnostic
}

// human renders "file:line:col: severity: message [CODE]".
func (f vetFinding) human() string {
	return fmt.Sprintf("%s: %s: %s [%s]", vetPos(f.File, f.Pos), f.Severity, f.Message, f.Code)
}

// vetPos renders "file:line:col", or just the file when the position is
// unknown.
func vetPos(file string, pos ast.Pos) string {
	if !pos.IsValid() {
		return file
	}
	return fmt.Sprintf("%s:%s", file, pos)
}

// JSON shapes. Positions become nested objects; unknown positions are
// omitted entirely rather than serialized as 0:0.
type vetJSONPos struct {
	Line int `json:"line"`
	Col  int `json:"col"`
}

type vetJSONRelated struct {
	Pos     *vetJSONPos `json:"pos,omitempty"`
	Message string      `json:"message"`
}

type vetJSONFinding struct {
	File     string           `json:"file"`
	Code     string           `json:"code"`
	Severity string           `json:"severity"`
	Pos      *vetJSONPos      `json:"pos,omitempty"`
	Message  string           `json:"message"`
	Pass     string           `json:"pass"`
	Related  []vetJSONRelated `json:"related,omitempty"`
}

func jsonPos(p ast.Pos) *vetJSONPos {
	if !p.IsValid() {
		return nil
	}
	return &vetJSONPos{Line: p.Line, Col: p.Col}
}

func writeVetJSON(out io.Writer, findings []vetFinding) error {
	arr := make([]vetJSONFinding, 0, len(findings))
	for _, f := range findings {
		jf := vetJSONFinding{
			File:     f.File,
			Code:     f.Code,
			Severity: f.Severity.String(),
			Pos:      jsonPos(f.Pos),
			Message:  f.Message,
			Pass:     f.Pass,
		}
		for _, rel := range f.Related {
			jf.Related = append(jf.Related, vetJSONRelated{Pos: jsonPos(rel.Pos), Message: rel.Message})
		}
		arr = append(arr, jf)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}
