package main

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/minimize"
	"repro/internal/workload"
)

// compareReport prints the full comparison story for two programs: uniform
// containment both ways (with the failing rule as witness), a sampled
// plain-equivalence check over random EDBs (equivalence itself being
// undecidable), and each program's distance from its Fig. 2 minimal form.
// verbose additionally reports each minimization session's cache counters
// and the process-wide plan cache state.
func compareReport(out io.Writer, p1, p2 *ast.Program, verbose bool) error {
	contains := chase.UniformlyContains
	if p1.HasNegation() || p2.HasNegation() {
		contains = chase.StratifiedUniformlyContains
		fmt.Fprintln(out, "note: stratified negation present; using the conservative encoding")
	}

	ok12, w12, err := contains(p1, p2)
	if err != nil {
		return err
	}
	ok21, w21, err := contains(p2, p1)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "P2 ⊑ᵘ P1: %v", ok12)
	if !ok12 {
		fmt.Fprintf(out, "   (witness: %s)", p2.Rules[w12])
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "P1 ⊑ᵘ P2: %v", ok21)
	if !ok21 {
		fmt.Fprintf(out, "   (witness: %s)", p1.Rules[w21])
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "P1 ≡ᵘ P2: %v\n", ok12 && ok21)

	// Equivalence over EDBs is undecidable; sample it. Agreement on every
	// sample is evidence, not proof — disagreement is a counterexample.
	if !p1.HasNegation() && !p2.HasNegation() {
		verdict, cex := sampleEquivalence(p1, p2, 40)
		if cex != "" {
			fmt.Fprintf(out, "P1 ≡ P2 (sampled): NO — counterexample EDB:\n%s", cex)
		} else {
			fmt.Fprintf(out, "P1 ≡ P2 (sampled over %d random EDBs): no disagreement found\n", verdict)
		}
	}

	for i, p := range []*ast.Program{p1, p2} {
		name := fmt.Sprintf("P%d", i+1)
		if p.HasNegation() {
			continue
		}
		min, trace, err := minimize.Program(p, minimize.Options{})
		if err != nil {
			return err
		}
		if trace.AtomsRemoved()+trace.RulesRemoved() == 0 {
			fmt.Fprintf(out, "%s is minimal under uniform equivalence\n", name)
		} else {
			fmt.Fprintf(out, "%s is NOT minimal: Fig. 2 removes %d atom(s), %d rule(s)\n",
				name, trace.AtomsRemoved(), trace.RulesRemoved())
			_ = min
		}
		if verbose {
			fmt.Fprintf(out, "%s session: plan hits=%d misses=%d, verdicts reused=%d recomputed=%d\n",
				name, trace.Stats.PrepareHits, trace.Stats.PrepareMisses,
				trace.Stats.VerdictsReused, trace.Stats.VerdictsRecomputed)
		}
	}
	if verbose {
		cs := eval.DefaultPlanCache.Stats()
		fmt.Fprintf(out, "plan cache: hits=%d misses=%d evictions=%d entries=%d\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Entries)
	}
	return nil
}

// sampleEquivalence compares outputs on random EDBs over the union of both
// programs' extensional predicates; returns the number of samples and a
// rendered counterexample EDB when one is found.
func sampleEquivalence(p1, p2 *ast.Program, trials int) (int, string) {
	idb := map[string]bool{}
	for pred := range p1.IDBPredicates() {
		idb[pred] = true
	}
	for pred := range p2.IDBPredicates() {
		idb[pred] = true
	}
	sigs := map[string]int{}
	for _, p := range []*ast.Program{p1, p2} {
		for _, sig := range p.Predicates() {
			if !idb[sig.Name] {
				sigs[sig.Name] = sig.Arity
			}
		}
	}
	// Prepare each program once (through the shared plan cache); the
	// per-trial work is then just the fixpoint itself, not re-planning the
	// same two programs 40 times.
	prep1, err1 := eval.PrepareCached(p1, eval.Options{})
	prep2, err2 := eval.PrepareCached(p2, eval.Options{})
	if err1 != nil || err2 != nil {
		return 0, ""
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < trials; trial++ {
		d := workload.RandomDB(rng, p1, 4, 3)
		for pred, arity := range sigs {
			for k := 0; k < 1+rng.Intn(4); k++ {
				args := make([]ast.Const, arity)
				for i := range args {
					args[i] = ast.Int(int64(rng.Intn(4)))
				}
				d.AddTuple(pred, args)
			}
		}
		o1, _, err1 := prep1.Eval(d)
		o2, _, err2 := prep2.Eval(d)
		if err1 != nil || err2 != nil {
			continue
		}
		if !o1.Equal(o2) {
			return trial, d.String()
		}
	}
	return trials, ""
}
