package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dot"
	"repro/internal/explain"
	"repro/internal/magic"
	"repro/internal/parser"
)

// This file holds the presentation family: commands that parse a program
// and render a view of it (canonical text, derivation trees, dependence
// graphs, magic-sets rewritings) without running a fixpoint to completion.

// cmdFmt implements both `fmt` and `parse`: parse and pretty-print in
// canonical form (idempotent under re-parsing).
func (c *cli) cmdFmt(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, res.Program.Format(res.Symbols))
	for _, f := range res.Facts {
		fmt.Fprintf(c.out, "%s.\n", f.Format(res.Symbols))
	}
	for _, t := range res.TGDs {
		fmt.Fprintf(c.out, "%s\n", t.Format(res.Symbols))
	}
	return nil
}

// cmdExplain prints a derivation tree for a ground fact of the program's
// output.
func (c *cli) cmdExplain(rest []string) error {
	res, err := load(rest, 1)
	if err != nil {
		return err
	}
	goalAtom, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
	if err != nil {
		return fmt.Errorf("goal fact: %w", err)
	}
	if !goalAtom.IsGround() {
		return fmt.Errorf("explain: goal %s must be a ground fact", goalAtom)
	}
	prover, err := explain.NewProver(res.Program, db.FromFacts(res.Facts))
	if err != nil {
		return err
	}
	deriv, ok := prover.Explain(goalAtom.MustGround(nil))
	if !ok {
		return fmt.Errorf("explain: %s is not in the program's output", goalAtom)
	}
	fmt.Fprint(c.out, deriv.Format(res.Program, res.Symbols))
	return nil
}

// cmdGraph prints the program's dependence graph in Graphviz DOT.
func (c *cli) cmdGraph(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, dot.DependenceGraph(res.Program))
	return nil
}

// cmdMagic prints the magic-sets rewriting of the program for a query atom.
func (c *cli) cmdMagic(rest []string) error {
	res, err := load(rest, 1)
	if err != nil {
		return err
	}
	q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
	if err != nil {
		return fmt.Errorf("query atom: %w", err)
	}
	rw, err := core.MagicRewrite(res.Program, q)
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, magic.FormatAdornment(rw))
	return nil
}
