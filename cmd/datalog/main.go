// Command datalog is the command-line front end of the library: it parses,
// evaluates, minimizes, compares, and magic-rewrites Datalog programs in
// the concrete syntax of internal/parser.
//
// Usage:
//
//	datalog parse     <file>           parse and pretty-print
//	datalog fmt       <file>           canonical formatting (idempotent)
//	datalog eval      <file>           evaluate facts in the file, print DB
//	datalog query     <file> <atom>    evaluate and print matching tuples
//	datalog minimize  <file>           Fig. 2 minimization (uniform equiv.)
//	datalog equivopt  <file>           Section XI optimization (plain equiv.)
//	datalog contains  <file1> <file2>  uniform containment both ways
//	datalog compare   <file1> <file2>  full containment/equivalence report
//	datalog preserve  <file>           Fig. 3 + (3′) for the file's tgds
//	datalog check     <file>           evaluate, then verify the file's tgds
//	datalog magic     <file> <atom>    print the magic-sets rewriting
//	datalog explain   <file> <fact>    print a derivation tree for a fact
//	datalog graph     <file>           dependence graph in Graphviz DOT
//	datalog repl                       interactive session
//	datalog tquery    <file> <atom>    answer via the tabled top-down engine
//	datalog optimize  <file> <atom>    full pipeline: prune+minimize+equivopt+magic
//	datalog vet       <file...>        static analysis; exit 1 on error findings
//
// A file argument of "-" reads standard input. Flags:
//
//	-naive   use the naive fixpoint strategy for eval/query
//	-stats   print evaluation statistics
//	-v       print cache/session statistics (compare, minimize)
//	-json    machine-readable vet output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/constraint"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dot"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/topdown"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datalog:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("datalog", flag.ContinueOnError)
	naive := fs.Bool("naive", false, "use the naive fixpoint strategy")
	stats := fs.Bool("stats", false, "print evaluation statistics")
	verbose := fs.Bool("v", false, "print cache/session statistics")
	jsonOut := fs.Bool("json", false, "machine-readable vet output")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: datalog <parse|eval|query|tquery|optimize|minimize|equivopt|contains|compare|check|preserve|magic|explain|graph|fmt|vet|repl> ...")
	}
	cmd, rest := rest[0], rest[1:]

	opts := eval.Options{}
	if *naive {
		opts.Strategy = eval.Naive
	}

	switch cmd {
	case "fmt":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Program.Format(res.Symbols))
		for _, f := range res.Facts {
			fmt.Fprintf(out, "%s.\n", f.Format(res.Symbols))
		}
		for _, t := range res.TGDs {
			fmt.Fprintf(out, "%s\n", t.Format(res.Symbols))
		}
		return nil

	case "parse":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, res.Program.Format(res.Symbols))
		for _, f := range res.Facts {
			fmt.Fprintf(out, "%s.\n", f.Format(res.Symbols))
		}
		for _, t := range res.TGDs {
			fmt.Fprintf(out, "%s\n", t.Format(res.Symbols))
		}
		return nil

	case "eval":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		outDB, st, err := eval.Eval(res.Program, db.FromFacts(res.Facts), opts)
		if err != nil {
			return err
		}
		fmt.Fprint(out, outDB.Format(res.Symbols))
		if *stats {
			fmt.Fprintf(out, "%% rounds=%d firings=%d added=%d\n", st.Rounds, st.Firings, st.Added)
			fmt.Fprintf(out, "%% strata streamed=%d materialized=%d, bindings pipelined=%d, early-stop cuts=%d\n",
				st.StrataStreamed, st.StrataMaterialized, st.BindingsPipelined, st.EarlyStopCuts)
		}
		return nil

	case "query":
		res, err := load(rest, 1)
		if err != nil {
			return err
		}
		q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
		if err != nil {
			return fmt.Errorf("query atom: %w", err)
		}
		tuples, err := eval.Query(res.Program, db.FromFacts(res.Facts), q, opts)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			fmt.Fprintln(out, ast.GroundAtom{Pred: q.Pred, Args: t}.Format(res.Symbols))
		}
		return nil

	case "minimize":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		min, trace, err := core.MinimizeProgram(res.Program, core.MinimizeOptions{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, min.Format(res.Symbols))
		fmt.Fprintf(out, "%% removed %d atoms, %d rules\n", trace.AtomsRemoved(), trace.RulesRemoved())
		for _, ar := range trace.AtomRemovals {
			fmt.Fprintf(out, "%%   atom %s from %s\n", ar.Atom.Format(res.Symbols), ar.Rule.Format(res.Symbols))
		}
		for _, r := range trace.RuleRemovals {
			fmt.Fprintf(out, "%%   rule %s\n", r.Format(res.Symbols))
		}
		if *verbose {
			printSessionStats(out, trace.Stats)
		}
		return nil

	case "equivopt":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		opt, removals, err := core.EquivOptimize(res.Program, core.EquivOptions{})
		if err != nil {
			return err
		}
		fmt.Fprint(out, opt.Format(res.Symbols))
		fmt.Fprintf(out, "%% %d removals under plain equivalence\n", len(removals))
		for _, r := range removals {
			fmt.Fprintf(out, "%%   removed %s via tgd %s\n", ast.FormatAtoms(r.Atoms, res.Symbols), r.TGD.Format(res.Symbols))
		}
		return nil

	case "contains":
		if len(rest) < 2 {
			return fmt.Errorf("usage: datalog contains <file1> <file2>")
		}
		p1, err := loadProgram(rest[0])
		if err != nil {
			return err
		}
		p2, err := loadProgram(rest[1])
		if err != nil {
			return err
		}
		// One containment session per side: each Checker prepares its
		// program once and reuses it for every frozen-rule test.
		ck1, err := chase.NewChecker(p1)
		if err != nil {
			return err
		}
		ok12, _, err := ck1.Contains(p2)
		if err != nil {
			return err
		}
		ck2, err := chase.NewChecker(p2)
		if err != nil {
			return err
		}
		ok21, _, err := ck2.Contains(p1)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "P2 ⊑ᵘ P1: %v\nP1 ⊑ᵘ P2: %v\nP1 ≡ᵘ P2: %v\n", ok12, ok21, ok12 && ok21)
		return nil

	case "check":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		if len(res.TGDs) == 0 {
			return fmt.Errorf("check: the file declares no tgds")
		}
		prep, err := eval.PrepareCached(res.Program, opts)
		if err != nil {
			return err
		}
		outDB, _, err := prep.Eval(db.FromFacts(res.Facts))
		if err != nil {
			return err
		}
		violations := constraint.Violations(outDB, res.TGDs, 20)
		if len(violations) == 0 {
			fmt.Fprintln(out, "all constraints satisfied")
			return nil
		}
		for _, v := range violations {
			fmt.Fprintf(out, "VIOLATION: %s\n", v)
		}
		return fmt.Errorf("check: %d constraint violation(s)", len(violations))

	case "compare":
		if len(rest) < 2 {
			return fmt.Errorf("usage: datalog compare <file1> <file2>")
		}
		p1, err := loadProgram(rest[0])
		if err != nil {
			return err
		}
		p2, err := loadProgram(rest[1])
		if err != nil {
			return err
		}
		return compareReport(out, p1, p2, *verbose)

	case "preserve":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		if len(res.TGDs) == 0 {
			return fmt.Errorf("preserve: the file declares no tgds")
		}
		v, cex, err := core.PreserveCheck(res.Program, res.TGDs, core.PreserveOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preserves T non-recursively: %v\n", v)
		if cex != nil {
			fmt.Fprintf(out, "counterexample: %v\n", cex)
		}
		v, cex, err = core.PreserveCheckPreliminary(res.Program, res.TGDs, core.PreserveOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preliminary DB satisfies T: %v\n", v)
		if cex != nil {
			fmt.Fprintf(out, "counterexample: %v\n", cex)
		}
		return nil

	case "explain":
		res, err := load(rest, 1)
		if err != nil {
			return err
		}
		goalAtom, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
		if err != nil {
			return fmt.Errorf("goal fact: %w", err)
		}
		if !goalAtom.IsGround() {
			return fmt.Errorf("explain: goal %s must be a ground fact", goalAtom)
		}
		prover, err := explain.NewProver(res.Program, db.FromFacts(res.Facts))
		if err != nil {
			return err
		}
		deriv, ok := prover.Explain(goalAtom.MustGround(nil))
		if !ok {
			return fmt.Errorf("explain: %s is not in the program's output", goalAtom)
		}
		fmt.Fprint(out, deriv.Format(res.Program, res.Symbols))
		return nil

	case "repl":
		return repl(os.Stdin, out)

	case "tquery":
		res, err := load(rest, 1)
		if err != nil {
			return err
		}
		q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
		if err != nil {
			return fmt.Errorf("query atom: %w", err)
		}
		eng, err := topdown.New(res.Program, db.FromFacts(res.Facts))
		if err != nil {
			return err
		}
		tuples, tstats, err := eng.Query(q)
		if err != nil {
			return err
		}
		for _, t := range tuples {
			fmt.Fprintln(out, ast.GroundAtom{Pred: q.Pred, Args: t}.Format(res.Symbols))
		}
		if *stats {
			fmt.Fprintf(out, "%% subgoals=%d answers=%d passes=%d\n", tstats.Subgoals, tstats.Answers, tstats.Passes)
		}
		return nil

	case "optimize":
		res, err := load(rest, 1)
		if err != nil {
			return err
		}
		q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
		if err != nil {
			return fmt.Errorf("query atom: %w", err)
		}
		pres, err := core.OptimizeForQuery(res.Program, q, core.DefaultPipeline())
		if err != nil {
			return err
		}
		fmt.Fprint(out, pres.Program.Format(res.Symbols))
		fmt.Fprintf(out, "%% removed %d rules, %d atoms; seed %s; query %s\n",
			pres.RulesRemoved, pres.AtomsRemoved,
			pres.Rewritten.Seed.Format(res.Symbols), pres.Rewritten.Query.Format(res.Symbols))
		return nil

	case "vet":
		return vet(rest, *jsonOut, out)

	case "graph":
		res, err := load(rest, 0)
		if err != nil {
			return err
		}
		fmt.Fprint(out, dot.DependenceGraph(res.Program))
		return nil

	case "magic":
		res, err := load(rest, 1)
		if err != nil {
			return err
		}
		q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
		if err != nil {
			return fmt.Errorf("query atom: %w", err)
		}
		rw, err := core.MagicRewrite(res.Program, q)
		if err != nil {
			return err
		}
		fmt.Fprint(out, magic.FormatAdornment(rw))
		return nil

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printSessionStats renders a containment session's cache counters plus the
// process-wide plan cache state.
func printSessionStats(out io.Writer, st eval.Stats) {
	fmt.Fprintf(out, "%% session: plan hits=%d misses=%d, verdicts reused=%d subsumed=%d recomputed=%d\n",
		st.PrepareHits, st.PrepareMisses, st.VerdictsReused, st.VerdictsSubsumed, st.VerdictsRecomputed)
	fmt.Fprintf(out, "%% session: strata streamed=%d materialized=%d, bindings pipelined=%d, early-stop cuts=%d\n",
		st.StrataStreamed, st.StrataMaterialized, st.BindingsPipelined, st.EarlyStopCuts)
	cs := eval.DefaultPlanCache.Stats()
	fmt.Fprintf(out, "%% plan cache: hits=%d misses=%d evictions=%d entries=%d\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries)
}

// load reads and parses the file named by rest[0] ("-" = stdin) and checks
// that at least extraArgs further arguments are present.
func load(rest []string, extraArgs int) (*parser.Result, error) {
	if len(rest) < 1+extraArgs {
		return nil, fmt.Errorf("missing argument(s)")
	}
	src, err := read(rest[0])
	if err != nil {
		return nil, err
	}
	return parser.Parse(src)
}

func loadProgram(name string) (*ast.Program, error) {
	src, err := read(name)
	if err != nil {
		return nil, err
	}
	res, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

func read(name string) (string, error) {
	if name == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(name)
	return string(b), err
}
