// Command datalog is the command-line front end of the library: it parses,
// evaluates, minimizes, compares, and magic-rewrites Datalog programs in
// the concrete syntax of internal/parser, and can run as a long-lived
// multi-tenant query server.
//
// Usage:
//
//	datalog parse     <file>           parse and pretty-print
//	datalog fmt       <file>           canonical formatting (idempotent)
//	datalog eval      <file>           evaluate facts in the file, print DB
//	datalog query     <file> <atom>    evaluate and print matching tuples
//	datalog minimize  <file>           Fig. 2 minimization (uniform equiv.)
//	datalog equivopt  <file>           Section XI optimization (plain equiv.)
//	datalog contains  <file1> <file2>  uniform containment both ways
//	datalog compare   <file1> <file2>  full containment/equivalence report
//	datalog preserve  <file>           Fig. 3 + (3′) for the file's tgds
//	datalog check     <file>           evaluate, then verify the file's tgds
//	datalog magic     <file> <atom>    print the magic-sets rewriting
//	datalog explain   <file> <fact>    print a derivation tree for a fact
//	datalog graph     <file>           dependence graph in Graphviz DOT
//	datalog repl                       interactive session
//	datalog tquery    <file> <atom>    answer via the tabled top-down engine
//	datalog optimize  <file> <atom>    full pipeline: prune+minimize+equivopt+magic
//	datalog vet       <file...>        static analysis; exit 1 on error findings
//	datalog serve     [name=file ...]  HTTP/JSON query server (see -addr)
//
// A file argument of "-" reads standard input. Flags:
//
//	-naive    use the naive fixpoint strategy for eval/query
//	-stats    print evaluation statistics
//	-v        print cache/session statistics (compare, minimize)
//	-json     machine-readable vet output
//	-addr     listen address for serve (default 127.0.0.1:8371)
//	-workers  parallel rule workers per fixpoint round (0 = sequential)
//	-shards   hash-partition shards per fixpoint round (0 or 1 = unsharded);
//	          for serve, both become the server's session defaults
//
// The command implementations live in sibling files by family: cmd_show.go
// (parse/fmt/graph/magic/explain), cmd_eval.go (eval/query/tquery/check),
// cmd_opt.go (minimize/equivopt/contains/preserve/optimize), compare.go,
// vet.go, repl.go and serve.go. They all hang off the cli struct below,
// which carries the parsed global flags and the output writer.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/parser"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datalog:", err)
		os.Exit(1)
	}
}

// cli carries the global flags and output sink shared by every subcommand.
type cli struct {
	out     io.Writer
	opts    eval.Options
	stats   bool
	verbose bool
	jsonOut bool
	addr    string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("datalog", flag.ContinueOnError)
	naive := fs.Bool("naive", false, "use the naive fixpoint strategy")
	stats := fs.Bool("stats", false, "print evaluation statistics")
	verbose := fs.Bool("v", false, "print cache/session statistics")
	jsonOut := fs.Bool("json", false, "machine-readable vet output")
	addr := fs.String("addr", "127.0.0.1:8371", "listen address for serve")
	workers := fs.Int("workers", 0, "parallel rule workers per fixpoint round (0 = sequential)")
	shards := fs.Int("shards", 0, "hash-partition shards per fixpoint round (0 or 1 = unsharded)")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: datalog <parse|eval|query|tquery|optimize|minimize|equivopt|contains|compare|check|preserve|magic|explain|graph|fmt|vet|repl|serve> ...")
	}
	cmd, rest := rest[0], rest[1:]

	c := &cli{out: out, stats: *stats, verbose: *verbose, jsonOut: *jsonOut, addr: *addr}
	if *naive {
		c.opts.Strategy = eval.Naive
	}
	c.opts.Workers = *workers
	c.opts.Shards = *shards

	switch cmd {
	case "fmt", "parse":
		return c.cmdFmt(rest)
	case "eval":
		return c.cmdEval(rest)
	case "query":
		return c.cmdQuery(rest)
	case "tquery":
		return c.cmdTQuery(rest)
	case "check":
		return c.cmdCheck(rest)
	case "minimize":
		return c.cmdMinimize(rest)
	case "equivopt":
		return c.cmdEquivOpt(rest)
	case "contains":
		return c.cmdContains(rest)
	case "compare":
		if len(rest) < 2 {
			return fmt.Errorf("usage: datalog compare <file1> <file2>")
		}
		p1, err := loadProgram(rest[0])
		if err != nil {
			return err
		}
		p2, err := loadProgram(rest[1])
		if err != nil {
			return err
		}
		return compareReport(c.out, p1, p2, c.verbose)
	case "preserve":
		return c.cmdPreserve(rest)
	case "optimize":
		return c.cmdOptimize(rest)
	case "explain":
		return c.cmdExplain(rest)
	case "graph":
		return c.cmdGraph(rest)
	case "magic":
		return c.cmdMagic(rest)
	case "vet":
		return vet(rest, c.jsonOut, c.out)
	case "repl":
		return repl(os.Stdin, c.out)
	case "serve":
		return c.cmdServe(rest)
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printSessionStats renders a containment session's cache counters plus the
// process-wide plan cache and verdict store state.
func printSessionStats(out io.Writer, st eval.Stats) {
	fmt.Fprintf(out, "%% session: plan hits=%d misses=%d, verdicts reused=%d subsumed=%d recomputed=%d\n",
		st.PrepareHits, st.PrepareMisses, st.VerdictsReused, st.VerdictsSubsumed, st.VerdictsRecomputed)
	fmt.Fprintf(out, "%% session: strata streamed=%d materialized=%d, bindings pipelined=%d, early-stop cuts=%d\n",
		st.StrataStreamed, st.StrataMaterialized, st.BindingsPipelined, st.EarlyStopCuts)
	if st.ShardRounds > 0 {
		fmt.Fprintf(out, "%% session: shard rounds=%d delta exchanged=%d imbalance=%d\n",
			st.ShardRounds, st.DeltaExchanged, st.ShardImbalance)
	}
	cs := eval.DefaultPlanCache.Stats()
	fmt.Fprintf(out, "%% plan cache: hits=%d misses=%d evictions=%d entries=%d\n",
		cs.Hits, cs.Misses, cs.Evictions, cs.Entries)
	vs := core.VerdictStats()
	fmt.Fprintf(out, "%% verdict store: programs=%d verdicts=%d lookups=%d hits=%d rotations=%d\n",
		vs.Programs, vs.Verdicts, vs.Lookups, vs.Hits, vs.Rotations)
}

// load reads and parses the file named by rest[0] ("-" = stdin) and checks
// that at least extraArgs further arguments are present.
func load(rest []string, extraArgs int) (*parser.Result, error) {
	if len(rest) < 1+extraArgs {
		return nil, fmt.Errorf("missing argument(s)")
	}
	src, err := read(rest[0])
	if err != nil {
		return nil, err
	}
	return parser.Parse(src)
}

func loadProgram(name string) (*ast.Program, error) {
	src, err := read(name)
	if err != nil {
		return nil, err
	}
	res, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return res.Program, nil
}

func read(name string) (string, error) {
	if name == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(name)
	return string(b), err
}
