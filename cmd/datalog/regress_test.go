package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// goldenCases maps a golden file to the CLI invocation that regenerates it.
var goldenCases = []struct {
	golden string
	args   []string
}{
	{"tc.eval.golden", []string{"eval", testdataPath("tc.dl")}},
	{"reachability.eval.golden", []string{"eval", testdataPath("reachability.dl")}},
	{"ancestor.eval.golden", []string{"eval", testdataPath("ancestor.dl")}},
	{"ex7.minimize.golden", []string{"minimize", testdataPath("ex7.dl")}},
	{"ex11.equivopt.golden", []string{"equivopt", testdataPath("ex11.dl")}},
	{"ex19.equivopt.golden", []string{"equivopt", testdataPath("ex19.dl")}},
}

// TestGoldenFiles compares CLI output byte-for-byte against the stored
// golden files — the release-style regression net over the paper's own
// programs. Regenerate with: go test ./cmd/datalog -run TestGoldenFiles -update
func TestGoldenFiles(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.golden, func(t *testing.T) {
			var sb strings.Builder
			if err := run(tc.args, &sb); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			path := filepath.Join("..", "..", "testdata", "golden", tc.golden)
			if *update {
				if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if sb.String() != string(want) {
				t.Errorf("output drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", tc.golden, sb.String(), want)
			}
		})
	}
}
