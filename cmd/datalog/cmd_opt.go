package main

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/core"
	"repro/internal/parser"
)

// This file holds the optimization family: the paper's program transforms
// (Fig. 2 minimization, Section XI equivalence-preserving optimization, the
// full query pipeline) and the containment/preservation decision procedures
// they rest on.

// cmdMinimize runs Fig. 2 minimization under uniform equivalence.
func (c *cli) cmdMinimize(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	min, trace, err := core.MinimizeProgram(res.Program, core.MinimizeOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, min.Format(res.Symbols))
	fmt.Fprintf(c.out, "%% removed %d atoms, %d rules\n", trace.AtomsRemoved(), trace.RulesRemoved())
	for _, ar := range trace.AtomRemovals {
		fmt.Fprintf(c.out, "%%   atom %s from %s\n", ar.Atom.Format(res.Symbols), ar.Rule.Format(res.Symbols))
	}
	for _, r := range trace.RuleRemovals {
		fmt.Fprintf(c.out, "%%   rule %s\n", r.Format(res.Symbols))
	}
	if c.verbose {
		printSessionStats(c.out, trace.Stats)
	}
	return nil
}

// cmdEquivOpt runs the Section XI optimization under plain equivalence.
func (c *cli) cmdEquivOpt(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	opt, removals, err := core.EquivOptimize(res.Program, core.EquivOptions{})
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, opt.Format(res.Symbols))
	fmt.Fprintf(c.out, "%% %d removals under plain equivalence\n", len(removals))
	for _, r := range removals {
		fmt.Fprintf(c.out, "%%   removed %s via tgd %s\n", ast.FormatAtoms(r.Atoms, res.Symbols), r.TGD.Format(res.Symbols))
	}
	return nil
}

// cmdContains decides uniform containment in both directions.
func (c *cli) cmdContains(rest []string) error {
	if len(rest) < 2 {
		return fmt.Errorf("usage: datalog contains <file1> <file2>")
	}
	p1, err := loadProgram(rest[0])
	if err != nil {
		return err
	}
	p2, err := loadProgram(rest[1])
	if err != nil {
		return err
	}
	// One containment session per side: each Checker prepares its
	// program once and reuses it for every frozen-rule test.
	ck1, err := chase.NewChecker(p1)
	if err != nil {
		return err
	}
	ok12, _, err := ck1.Contains(p2)
	if err != nil {
		return err
	}
	ck2, err := chase.NewChecker(p2)
	if err != nil {
		return err
	}
	ok21, _, err := ck2.Contains(p1)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "P2 ⊑ᵘ P1: %v\nP1 ⊑ᵘ P2: %v\nP1 ≡ᵘ P2: %v\n", ok12, ok21, ok12 && ok21)
	return nil
}

// cmdPreserve runs the Fig. 3 preservation check and the preliminary-DB
// condition (3′) for the file's tgds.
func (c *cli) cmdPreserve(rest []string) error {
	res, err := load(rest, 0)
	if err != nil {
		return err
	}
	if len(res.TGDs) == 0 {
		return fmt.Errorf("preserve: the file declares no tgds")
	}
	v, cex, err := core.PreserveCheck(res.Program, res.TGDs, core.PreserveOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "preserves T non-recursively: %v\n", v)
	if cex != nil {
		fmt.Fprintf(c.out, "counterexample: %v\n", cex)
	}
	v, cex, err = core.PreserveCheckPreliminary(res.Program, res.TGDs, core.PreserveOptions{})
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "preliminary DB satisfies T: %v\n", v)
	if cex != nil {
		fmt.Fprintf(c.out, "counterexample: %v\n", cex)
	}
	return nil
}

// cmdOptimize runs the full query pipeline: prune, minimize, equivopt,
// magic rewriting.
func (c *cli) cmdOptimize(rest []string) error {
	res, err := load(rest, 1)
	if err != nil {
		return err
	}
	q, err := parser.ParseAtomWithSymbols(rest[1], res.Symbols)
	if err != nil {
		return fmt.Errorf("query atom: %w", err)
	}
	pres, err := core.OptimizeForQuery(res.Program, q, core.DefaultPipeline())
	if err != nil {
		return err
	}
	fmt.Fprint(c.out, pres.Program.Format(res.Symbols))
	fmt.Fprintf(c.out, "%% removed %d rules, %d atoms; seed %s; query %s\n",
		pres.RulesRemoved, pres.AtomsRemoved,
		pres.Rewritten.Seed.Format(res.Symbols), pres.Rewritten.Query.Format(res.Symbols))
	return nil
}
