package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/dot"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/parser"
)

// session is the mutable state of an interactive datalog session.
type session struct {
	program *ast.Program
	facts   []ast.GroundAtom
	tgds    []ast.TGD
	syms    *ast.SymbolTable
	out     io.Writer
	// prep caches the prepared form of program so that consecutive queries
	// (?-, :eval, :stats) reuse one schedule/compile; any mutation of the
	// program clears it via invalidate.
	prep *eval.Prepared
}

// prepared returns the session's prepared program, building it on first use
// after a mutation. The shared plan cache makes an undo (or re-entering an
// earlier program) a lookup instead of a re-plan.
func (s *session) prepared() (*eval.Prepared, error) {
	if s.prep == nil {
		pr, err := eval.PrepareCached(s.program, eval.Options{})
		if err != nil {
			return nil, err
		}
		s.prep = pr
	}
	return s.prep, nil
}

// invalidate drops the cached prepared program; called whenever the
// session's program changes.
func (s *session) invalidate() { s.prep = nil }

// repl runs the interactive loop: plain lines are parsed as rules, facts or
// tgds and added to the session; lines starting with "?-" are queries;
// lines starting with ':' are commands (:help lists them). Errors are
// reported and the loop continues.
func repl(in io.Reader, out io.Writer) error {
	s := &session{program: ast.NewProgram(), syms: ast.NewSymbolTable(), out: out}
	fmt.Fprintln(out, "datalog repl — :help for commands, :quit to exit")
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			fmt.Fprintln(out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == ":quit" || line == ":q" {
			return nil
		}
		if err := s.handle(line); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
		}
	}
}

func (s *session) handle(line string) error {
	switch {
	case strings.HasPrefix(line, "?-"):
		return s.query(strings.TrimSpace(strings.TrimPrefix(line, "?-")))
	case strings.HasPrefix(line, ":"):
		return s.command(line)
	default:
		return s.addStatements(line)
	}
}

func (s *session) addStatements(src string) error {
	res, err := parser.ParseWithSymbols(src, s.syms)
	if err != nil {
		return err
	}
	// Validate against the accumulated program (arity consistency).
	trial := s.program.Clone()
	trial.Rules = append(trial.Rules, res.Program.Rules...)
	if err := trial.Validate(); err != nil {
		return err
	}
	s.program = trial
	s.invalidate()
	s.facts = append(s.facts, res.Facts...)
	s.tgds = append(s.tgds, res.TGDs...)
	n := len(res.Program.Rules) + len(res.Facts) + len(res.TGDs)
	fmt.Fprintf(s.out, "added %d statement(s)\n", n)
	return nil
}

func (s *session) query(atomSrc string) error {
	atomSrc = strings.TrimSuffix(atomSrc, ".")
	q, err := parser.ParseAtomWithSymbols(atomSrc, s.syms)
	if err != nil {
		return err
	}
	prep, err := s.prepared()
	if err != nil {
		return err
	}
	tuples, err := prep.Query(db.FromFacts(s.facts), q)
	if err != nil {
		return err
	}
	for _, t := range tuples {
		fmt.Fprintln(s.out, ast.GroundAtom{Pred: q.Pred, Args: t}.Format(s.syms))
	}
	fmt.Fprintf(s.out, "%d answer(s)\n", len(tuples))
	return nil
}

func (s *session) command(line string) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ":help":
		fmt.Fprint(s.out, `statements:   G(x, z) :- A(x, z).     add a rule
              A(1, 2).                add a fact
              G(x, z) -> A(x, w).     add a tgd
queries:      ?- G(1, y).             evaluate and print answers
commands:     :show                   print the session's program/facts/tgds
              :eval                   print the full output database
              :minimize               minimize under uniform equivalence
              :equivopt               optimize under plain equivalence
              :preserve               Fig. 3 + (3') for the session's tgds
              :explain G(1, 2)        derivation tree for a fact
              :retract A(1, 2)        remove an input fact
              :graph                  dependence graph in DOT
              :stats                  database and program statistics
              :load <file>            read statements from a file
              :reset                  clear the session
              :quit                   exit
`)
		return nil

	case ":show":
		fmt.Fprint(s.out, s.program.Format(s.syms))
		for _, f := range s.facts {
			fmt.Fprintf(s.out, "%s.\n", f.Format(s.syms))
		}
		for _, t := range s.tgds {
			fmt.Fprintf(s.out, "%s\n", t.Format(s.syms))
		}
		return nil

	case ":eval":
		prep, err := s.prepared()
		if err != nil {
			return err
		}
		out, st, err := prep.Eval(db.FromFacts(s.facts))
		if err != nil {
			return err
		}
		fmt.Fprint(s.out, out.Format(s.syms))
		fmt.Fprintf(s.out, "%% %d facts, %d rounds\n", out.Len(), st.Rounds)
		return nil

	case ":retract":
		if len(fields) < 2 {
			return fmt.Errorf(":retract needs a ground fact, e.g. :retract A(1, 2)")
		}
		src := strings.TrimSuffix(strings.TrimSpace(strings.TrimPrefix(line, ":retract")), ".")
		atom, err := parser.ParseAtomWithSymbols(src, s.syms)
		if err != nil {
			return err
		}
		g, err := atom.Ground(ast.Binding{})
		if err != nil {
			return fmt.Errorf(":retract needs a ground fact: %w", err)
		}
		kept := s.facts[:0]
		removed := 0
		for _, f := range s.facts {
			if f.Pred == g.Pred && f.Equal(g) {
				removed++
				continue
			}
			kept = append(kept, f)
		}
		s.facts = kept
		fmt.Fprintf(s.out, "retracted %d fact(s)\n", removed)
		return nil

	case ":minimize":
		min, trace, err := core.MinimizeProgram(s.program, core.MinimizeOptions{})
		if err != nil {
			return err
		}
		s.program = min
		s.invalidate()
		fmt.Fprint(s.out, min.Format(s.syms))
		fmt.Fprintf(s.out, "%% removed %d atoms, %d rules\n", trace.AtomsRemoved(), trace.RulesRemoved())
		return nil

	case ":equivopt":
		opt, removals, err := core.EquivOptimize(s.program, core.EquivOptions{})
		if err != nil {
			return err
		}
		s.program = opt
		s.invalidate()
		fmt.Fprint(s.out, opt.Format(s.syms))
		fmt.Fprintf(s.out, "%% %d removals under plain equivalence\n", len(removals))
		return nil

	case ":preserve":
		if len(s.tgds) == 0 {
			return fmt.Errorf("no tgds in the session")
		}
		v, _, err := core.PreserveCheck(s.program, s.tgds, core.PreserveOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "preserves T non-recursively: %v\n", v)
		v, _, err = core.PreserveCheckPreliminary(s.program, s.tgds, core.PreserveOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(s.out, "preliminary DB satisfies T: %v\n", v)
		return nil

	case ":explain":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :explain Fact(…)")
		}
		goal, err := parser.ParseAtomWithSymbols(strings.TrimSuffix(strings.Join(fields[1:], " "), "."), s.syms)
		if err != nil {
			return err
		}
		if !goal.IsGround() {
			return fmt.Errorf("goal must be ground")
		}
		prover, err := explain.NewProver(s.program, db.FromFacts(s.facts))
		if err != nil {
			return err
		}
		d, ok := prover.Explain(goal.MustGround(nil))
		if !ok {
			return fmt.Errorf("%s is not derivable", goal)
		}
		fmt.Fprint(s.out, d.Format(s.program, s.syms))
		return nil

	case ":graph":
		fmt.Fprint(s.out, dot.DependenceGraph(s.program))
		return nil

	case ":stats":
		prep, err := s.prepared()
		if err != nil {
			return err
		}
		out, _, err := prep.Eval(db.FromFacts(s.facts))
		if err != nil {
			return err
		}
		sum := out.Summarize()
		fmt.Fprintf(s.out, "rules: %d (%d body atoms), tgds: %d, input facts: %d\n",
			len(s.program.Rules), s.program.BodyAtomCount(), len(s.tgds), len(s.facts))
		fmt.Fprintf(s.out, "output: %d facts over %d predicates, %d constants\n",
			sum.Facts, len(sum.Predicates), sum.Constants)
		for _, pred := range out.Preds() {
			fmt.Fprintf(s.out, "  %s: %d\n", pred, sum.Predicates[pred])
		}
		return nil

	case ":load":
		if len(fields) < 2 {
			return fmt.Errorf("usage: :load <file>")
		}
		src, err := os.ReadFile(fields[1])
		if err != nil {
			return err
		}
		return s.addStatements(string(src))

	case ":reset":
		s.program = ast.NewProgram()
		s.invalidate()
		s.facts = nil
		s.tgds = nil
		s.syms = ast.NewSymbolTable()
		fmt.Fprintln(s.out, "session cleared")
		return nil

	default:
		return fmt.Errorf("unknown command %s (:help lists commands)", fields[0])
	}
}
