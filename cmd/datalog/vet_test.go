package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetGolden checks the human-readable vet output for each seeded-defect
// program against its golden file. The goldens are generated from the repo
// root, so the test's ../../ path prefix is normalized away before
// comparing.
func TestVetGolden(t *testing.T) {
	corpus, err := filepath.Glob(testdataPath(filepath.Join("vet", "*.dl")))
	if err != nil || len(corpus) == 0 {
		t.Fatalf("no vet corpus found: %v", err)
	}
	for _, file := range corpus {
		name := strings.TrimSuffix(filepath.Base(file), ".dl")
		t.Run(name, func(t *testing.T) {
			var sb strings.Builder
			runErr := run([]string{"vet", file}, &sb)
			got := strings.ReplaceAll(sb.String(), filepath.ToSlash(file), "testdata/vet/"+name+".dl")
			goldenFile := testdataPath(filepath.Join("golden", "vet", name+".golden"))
			want, err := os.ReadFile(goldenFile)
			if err != nil {
				t.Fatalf("golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("vet output differs from %s:\n--- got ---\n%s--- want ---\n%s", goldenFile, got, want)
			}
			// The exit behavior must agree with the findings: nonzero iff an
			// error-severity finding is present.
			if hasError := strings.Contains(string(want), ": error: "); hasError != (runErr != nil) {
				t.Errorf("run error = %v, but golden has error findings = %v", runErr, hasError)
			}
		})
	}
}

// TestVetExistingProgramsClean runs vet over every shipped example program:
// the paper's own programs must produce no error-severity findings.
func TestVetExistingProgramsClean(t *testing.T) {
	files, err := filepath.Glob(testdataPath("*.dl"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, file := range files {
		var sb strings.Builder
		if err := run([]string{"vet", file}, &sb); err != nil {
			t.Errorf("vet %s: %v\n%s", file, err, sb.String())
		}
	}
}

// TestVetJSON checks the -json surface: a well-formed array whose entries
// carry file, stable code, severity and 1-based positions.
func TestVetJSON(t *testing.T) {
	file := testdataPath(filepath.Join("vet", "unsafe.dl"))
	var sb strings.Builder
	if err := run([]string{"-json", "vet", file}, &sb); err == nil {
		t.Fatal("vet should exit nonzero on unsafe.dl")
	}
	var findings []vetJSONFinding
	if err := json.Unmarshal([]byte(sb.String()), &findings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, sb.String())
	}
	codes := map[string]vetJSONFinding{}
	for _, f := range findings {
		if f.File == "" || f.Severity == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
		codes[f.Code] = f
	}
	unbound, ok := codes["DL0001"]
	if !ok || unbound.Severity != "error" || unbound.Pos == nil || unbound.Pos.Line != 3 || unbound.Pos.Col != 1 {
		t.Fatalf("bad DL0001 finding: %+v", unbound)
	}
	if unbound.Pass != "safety" {
		t.Fatalf("DL0001 pass = %q, want safety", unbound.Pass)
	}
	if _, ok := codes["DL0002"]; !ok {
		t.Fatalf("missing DL0002 in %v", codes)
	}
	for _, f := range findings {
		if f.Pass == "" {
			t.Fatalf("finding without a pass tag: %+v", f)
		}
	}
}

// TestVetJSONTerminationCodes drives -json over the termination corpus and
// checks the classifier diagnostics come through with their pass tag.
func TestVetJSONTerminationCodes(t *testing.T) {
	wantCode := map[string]string{
		"term_wa":      "DL0013",
		"term_ja":      "DL0014",
		"term_sticky":  "DL0013",
		"term_diverge": "DL0016",
		"term_ws":      "DL0015",
	}
	for name, code := range wantCode {
		file := testdataPath(filepath.Join("vet", name+".dl"))
		var sb strings.Builder
		if err := run([]string{"-json", "vet", file}, &sb); err != nil {
			t.Fatalf("vet %s: %v", name, err)
		}
		var findings []vetJSONFinding
		if err := json.Unmarshal([]byte(sb.String()), &findings); err != nil {
			t.Fatalf("%s: output is not JSON: %v", name, err)
		}
		found := false
		for _, f := range findings {
			if f.Code == code {
				found = true
				if f.Pass != "termination" {
					t.Fatalf("%s: %s tagged with pass %q, want termination", name, code, f.Pass)
				}
			}
		}
		if !found {
			t.Fatalf("%s: no %s finding in -json output:\n%s", name, code, sb.String())
		}
	}
}

// TestVetParseError: a file that does not parse yields one DL0000 with the
// parser's line:col and a nonzero exit.
func TestVetParseError(t *testing.T) {
	bad := writeFile(t, "bad.dl", "G(x, z) :- A(x, z).\nP(x :- Q(x).\n")
	var sb strings.Builder
	if err := run([]string{"vet", bad}, &sb); err == nil {
		t.Fatal("vet should fail on a parse error")
	}
	out := sb.String()
	if !strings.Contains(out, "[DL0000]") {
		t.Fatalf("missing DL0000:\n%s", out)
	}
	if !strings.Contains(out, ":2:") {
		t.Fatalf("parse-error position not threaded through:\n%s", out)
	}
}

// TestVetMultipleFiles aggregates findings across files, tagging each with
// its source file.
func TestVetMultipleFiles(t *testing.T) {
	clean := writeFile(t, "clean.dl", tcSource+"Out(x) :- G(1, x).\n")
	unsafe := testdataPath(filepath.Join("vet", "unsafe.dl"))
	var sb strings.Builder
	if err := run([]string{"vet", clean, unsafe}, &sb); err == nil {
		t.Fatal("aggregate vet should still fail on the unsafe file")
	}
	out := sb.String()
	if !strings.Contains(out, "unsafe.dl:3:1") {
		t.Fatalf("missing tagged finding:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "clean.dl") && strings.Contains(line, ": error: ") {
			t.Fatalf("clean file produced an error finding: %s", line)
		}
	}
}
