package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a bytes.Buffer safe for the serve goroutine to write while
// the test polls it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServeCommand is the end-to-end smoke of `datalog serve`: boot the
// server on an ephemeral port with a preloaded program, load facts for a
// tenant, and run an eval round-trip plus the statz and healthz probes.
// `make serve-smoke` runs exactly this test.
func TestServeCommand(t *testing.T) {
	dir := t.TempDir()
	prog := filepath.Join(dir, "authz.dl")
	src := "CanRead(u, d) :- Member(u, g), Grant(g, d).\n"
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	out := &syncBuffer{}
	errc := make(chan error, 1)
	go func() {
		// http.Serve never returns on success; the goroutine is torn down
		// with the test process.
		errc <- run([]string{"-addr", "127.0.0.1:0", "serve", "authz=" + prog}, out)
	}()

	// Wait for the listener line and extract the bound address.
	re := regexp.MustCompile(`listening on (http://[^\s]+)`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		select {
		case err := <-errc:
			t.Fatalf("serve exited early: %v\noutput:\n%s", err, out.String())
		default:
		}
		if m := re.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not announce its address:\n%s", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !strings.Contains(out.String(), "registered authz v1 (1 rules, 0 tgds)") {
		t.Fatalf("missing preload line:\n%s", out.String())
	}

	get := func(path string) string {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, sb.String())
		}
		return sb.String()
	}
	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		s := readAll(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, s)
		}
		return s
	}

	if s := get("/v1/healthz"); !strings.Contains(s, "ok") {
		t.Fatalf("healthz: %s", s)
	}
	post("/v1/programs/authz/facts",
		`{"tenant":"acme","facts":"Member(\"ann\",\"eng\").\nGrant(\"eng\",\"handbook\")."}`)
	evalOut := post("/v1/programs/authz/eval",
		`{"tenant":"acme","query":"CanRead(u, d)"}`)
	if !strings.Contains(evalOut, "ann") || !strings.Contains(evalOut, "handbook") {
		t.Fatalf("eval response missing derived row: %s", evalOut)
	}
	statz := get("/v1/statz")
	for _, want := range []string{"plan_cache", "verdict_store", "requests"} {
		if !strings.Contains(statz, want) {
			t.Fatalf("statz missing %q: %s", want, statz)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			return sb.String()
		}
	}
}

// TestServeBadArgs pins the name=file argument contract.
func TestServeBadArgs(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"serve", "authz"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not name=file") {
		t.Fatalf("err = %v, want name=file usage error", err)
	}
}
