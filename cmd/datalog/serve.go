package main

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

// cmdServe runs the long-lived multi-tenant query server: named, versioned
// programs behind HTTP/JSON endpoints (register, facts, subscriptions,
// eval, minimize, compare, vet, explain, statz), all sharing the
// process-wide plan cache and verdict store. The facts endpoint takes
// assert/retract mutation batches, and subscriptions stream the maintained
// output diff of each batch as NDJSON changefeed frames.
// Positional arguments of the form name=file preload
// program versions before the listener opens, so a deployment can ship its
// programs on the command line and tenants only push facts and queries.
// The -workers and -shards flags become the server's session defaults;
// requests can still tune (capped) values per call through the budget.
func (c *cli) cmdServe(rest []string) error {
	srv := service.New(core.SessionOptions{Workers: c.opts.Workers, Shards: c.opts.Shards})
	for _, arg := range rest {
		name, file, ok := strings.Cut(arg, "=")
		if !ok || name == "" || file == "" {
			return fmt.Errorf("serve: argument %q is not name=file", arg)
		}
		src, err := read(file)
		if err != nil {
			return err
		}
		version, rules, tgds, err := srv.RegisterProgram(name, src)
		if err != nil {
			return fmt.Errorf("serve: register %s: %w", name, err)
		}
		fmt.Fprintf(c.out, "registered %s v%d (%d rules, %d tgds)\n", name, version, rules, tgds)
	}
	ln, err := net.Listen("tcp", c.addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(c.out, "datalog serve: listening on http://%s\n", ln.Addr())
	// Header-read and idle timeouts bound what a slow or stalled client can
	// hold open, so a long-running multi-tenant deployment is not trivially
	// exhaustible by slowloris-style connections. Request bodies and
	// responses carry no blanket timeout: evaluation time is governed
	// per-request by the budget's deadline.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.Serve(ln)
}
