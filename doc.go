// Package repro is a from-scratch Go reproduction of Yehoshua Sagiv,
// "Optimizing Datalog Programs" (PODS 1987): uniform containment and
// equivalence of Datalog programs, chase-based decision procedures,
// minimization under uniform equivalence (the paper's Figs. 1–2),
// tgd-preservation testing (Fig. 3), and optimization under plain
// equivalence (Sections X–XI), together with the substrates they need — a
// Datalog parser, a naive/semi-naive bottom-up evaluator, a conjunctive-
// query toolkit, and a magic-sets rewriter.
//
// See README.md for a guided tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the experiment suite E1–E10. The public API lives in
// internal/core; bench_test.go in this directory regenerates every
// experiment as a Go benchmark.
package repro
