package chase

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/parser"
)

func tgdSet(t *testing.T, srcs ...string) []ast.TGD {
	t.Helper()
	out := make([]ast.TGD, len(srcs))
	for i, s := range srcs {
		out[i] = parser.MustParseTGD(s)
	}
	return out
}

func factDB(t *testing.T, src string) *db.Database {
	t.Helper()
	res, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := db.New()
	for _, g := range res.Facts {
		d.Add(g)
	}
	return d
}

// TestWeaklyAcyclicBudgetFreeFixpoint pins the acceptance criterion: a
// weakly acyclic tgd set chased under Budget{} semantics runs to true
// fixpoint on the classification-derived bound — Complete, never an
// exhaustion Unknown — and reports its class on the result.
func TestWeaklyAcyclicBudgetFreeFixpoint(t *testing.T) {
	p := parser.MustParseProgram("Q2(x, y) :- Q(x, y).")
	tgds := tgdSet(t,
		"P(x) -> Q(x, y).",
		"Q(x, y) -> R(y).",
	)
	d := factDB(t, "P(1). P(2). P(3).")

	res, err := Apply(p, tgds, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("weakly acyclic chase did not complete under the derived budget: %+v", res)
	}
	if res.Class != depgraph.TermWeaklyAcyclic {
		t.Fatalf("result class = %v, want weakly-acyclic", res.Class)
	}
	// Each P(c) got a null partner in Q and its null flowed into R.
	if res.DB.Len() < 3+3+3 {
		t.Fatalf("fixpoint too small (%d atoms):\n%v", res.DB.Len(), res.DB)
	}

	// The same chase goal-directed: SATContainsRule under Budget{} must
	// resolve (the set terminates), not return a budget Unknown.
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	c.DisableSyntacticFastPath()
	v, err := c.SATContainsRule(tgds, parser.MustParseProgram("R2(y) :- P(x), Q(x, y).").Rules[0], Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v == Unknown {
		t.Fatal("terminating set produced a budget Unknown under Budget{}")
	}
}

// TestExplicitBudgetStillHonored: a caller's explicit budget is never
// replaced by a derived bound, so a tiny budget still exhausts.
func TestExplicitBudgetStillHonored(t *testing.T) {
	p := ast.NewProgram()
	tgds := tgdSet(t, "P(x) -> Q(x, y).", "Q(x, y) -> R(y).")
	d := factDB(t, "P(1). P(2). P(3). P(4). P(5).")
	res, err := Apply(p, tgds, d, Budget{MaxAtoms: 6, MaxRounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatalf("explicit 6-atom budget should exhaust on this chase: %+v", res)
	}
	if res.Class != depgraph.TermWeaklyAcyclic {
		t.Fatalf("class must still be reported on exhaustion, got %v", res.Class)
	}
}

// TestFullSetFastPathMatchesAlternation: a full tgd set collapses to one
// combined fixpoint; the database must equal the round-alternation oracle's
// and both arms must report Complete.
func TestFullSetFastPathMatchesAlternation(t *testing.T) {
	p := parser.MustParseProgram("T(x, z) :- T(x, y), T(y, z).")
	tgds := tgdSet(t,
		"E(x, y) -> T(x, y).",
		"T(x, y), E(y, z) -> Reach(x, z).",
	)
	d := factDB(t, "E(1, 2). E(2, 3). E(3, 4).")

	fast, err := Apply(p, tgds, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	oc, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	oc.DisableTerminationAnalysis()
	slow, err := oc.Apply(tgds, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Complete || !slow.Complete {
		t.Fatalf("complete: fast=%v slow=%v", fast.Complete, slow.Complete)
	}
	if !fast.DB.Equal(slow.DB) {
		t.Fatalf("full-set fast path diverged from alternation:\nfast:\n%v\nslow:\n%v", fast.DB, slow.DB)
	}
	if fast.Rounds != 1 {
		t.Fatalf("fast path rounds = %d, want 1", fast.Rounds)
	}
	if slow.Class != depgraph.TermUnclassified {
		t.Fatalf("ablated session must not classify, got %v", slow.Class)
	}
}

// TestChaseBudgetCounters: budget-free and budget-bounded runs land in the
// session's stats counters.
func TestChaseBudgetCounters(t *testing.T) {
	p := ast.NewProgram()
	tgds := tgdSet(t, "P(x) -> Q(x, y).")
	d := factDB(t, "P(1).")
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(tgds, d, Budget{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ChasesBudgetFree != 1 || st.ChasesBudgetBounded != 0 {
		t.Fatalf("after Budget{} run: free=%d bounded=%d", st.ChasesBudgetFree, st.ChasesBudgetBounded)
	}
	if _, err := c.Apply(tgds, d, Budget{MaxAtoms: 50}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ChasesBudgetFree != 1 || st.ChasesBudgetBounded != 1 {
		t.Fatalf("after explicit run: free=%d bounded=%d", st.ChasesBudgetFree, st.ChasesBudgetBounded)
	}
	// A divergence-capable set under Budget{} must count as bounded.
	div := tgdSet(t, "R(x, y) -> R(y, z).")
	pj := parser.MustParseProgram("T(x, w) :- R(x, y), R(y, w).")
	cj, err := NewChecker(pj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cj.Apply(div, factDB(t, "R(1, 2)."), Budget{MaxAtoms: 40, MaxRounds: 10}); err != nil {
		t.Fatal(err)
	}
	if st := cj.Stats(); st.ChasesBudgetBounded < 1 {
		t.Fatalf("divergent run not counted as bounded: %+v", st)
	}
}

// tgdPool is a pool of small dependency shapes the randomized corpus draws
// from: existential chains and cycles, full rules, and sticky breakers.
var tgdPool = []string{
	"A(x) -> B(x, y).",
	"B(x, y) -> C(y).",
	"C(x) -> A(x).",
	"B(x, y) -> B(y, z).",
	"A(x), C(x) -> D(x).",
	"D(x) -> A(x).",
	"B(x, y), B(y, z) -> E(x, z).",
	"E(x, z) -> B(x, w).",
	"D(x) -> E(x, y).",
	"E(x, y) -> D(y).",
}

// TestRandomCorpusClassificationAgreesWithChase is the acceptance oracle:
// over a randomized tgd corpus, every set the classifier calls terminating
// must reach a true fixpoint under Budget{} semantics (no exhaustion
// Unknown), and whenever the raw-budget oracle arm also completes, the two
// databases must agree. The CI race step runs this package under -race.
func TestRandomCorpusClassificationAgreesWithChase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	prog := parser.MustParseProgram("F(x, y) :- E(x, y).")
	base := factDB(t, "A(1). B(1, 2). C(2). D(3). E(2, 3). E(3, 4).")

	terminating := 0
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(4)
		srcs := make([]string, 0, n)
		for i := 0; i < n; i++ {
			srcs = append(srcs, tgdPool[rng.Intn(len(tgdPool))])
		}
		tgds := tgdSet(t, srcs...)
		cl := depgraph.ClassifyTGDs(prog.Rules, tgds)

		c, err := NewChecker(prog)
		if err != nil {
			t.Fatal(err)
		}
		// Budget{} semantics for sets the classifier calls terminating (the
		// property under test); a modest explicit cutoff for the rest so a
		// genuinely diverging chase doesn't grind the corpus through the
		// full default budget.
		budget := Budget{}
		if !cl.Class.ChaseTerminates() {
			budget = Budget{MaxAtoms: 3000, MaxRounds: 300}
		}
		res, err := c.Apply(tgds, base, budget)
		if err != nil {
			t.Fatal(err)
		}
		if res.Class != cl.Class {
			t.Fatalf("set %v: result class %v != classifier %v", srcs, res.Class, cl.Class)
		}
		if cl.Class.ChaseTerminates() {
			terminating++
			if !res.Complete {
				t.Fatalf("set %v classified %v but exhausted its derived budget", srcs, cl.Class)
			}
		}

		// Oracle arm: raw budget, classifier off. When it completes, the
		// two fixpoints must agree (the budget never changes the chase's
		// derivation order, only where it stops).
		oc, err := NewChecker(prog)
		if err != nil {
			t.Fatal(err)
		}
		oc.DisableTerminationAnalysis()
		oracle, err := oc.Apply(tgds, base, Budget{MaxAtoms: 3000, MaxRounds: 300})
		if err != nil {
			t.Fatal(err)
		}
		if cl.Class.ChaseTerminates() && !oracle.Complete {
			t.Fatalf("set %v classified %v but the raw-budget oracle exhausted", srcs, cl.Class)
		}
		if res.Complete && oracle.Complete && !res.DB.Equal(oracle.DB) {
			t.Fatalf("set %v: classified chase and oracle disagree:\n%v\nvs\n%v", srcs, res.DB, oracle.DB)
		}
	}
	if terminating == 0 {
		t.Fatal("corpus generated no terminating sets; pool is miscalibrated")
	}
}
