package chase

import (
	"sync"
	"sync/atomic"
)

// The verdict store is a content-addressed memo of uniform-containment
// verdicts: program canonical form → (rule canonical form → verdict). The
// verdict of r ⊑ᵘ P is an exact semantic property, invariant under renaming
// the variables of either side, so it can be shared across sessions, across
// the Fig. 1/2 loops, and across repeated requests that revisit the same
// programs — a new Checker over an already-seen program answers without
// chasing at all. Provenance sets stored with positive verdicts transfer
// too: canonical form preserves rule order, so rule indexes mean the same
// thing in every program sharing the address.
//
// The two-level shape is deliberate: a Checker resolves its program's inner
// table once at construction, so the per-test key is just the rule's
// canonical form instead of a program-sized concatenation.
//
// The outer store is bounded by generational rotation: when the live
// generation fills, it becomes the previous generation and a fresh one
// starts; programs untouched for two generations are dropped. This keeps
// the footprint flat for long-lived processes at O(1) per operation.
// Sessions holding a rotated-out table keep working; they just stop being
// discoverable by new sessions.
type verdictStore struct {
	mu   sync.Mutex
	max  int
	cur  map[string]*progVerdicts
	prev map[string]*progVerdicts

	// Counters are atomics, not mu-guarded: lookups happen on every
	// ContainsRule of every concurrent session, and a stats snapshot must
	// not contend with them. rotations counts generation turnovers (mutated
	// under mu anyway, atomic for a consistent read path).
	lookups   atomic.Uint64
	hits      atomic.Uint64
	rotations atomic.Uint64
}

// progVerdicts is the verdict table of one program content address. It is
// shared by every session over a canonically equal program, so it carries
// its own lock (Checkers are single-threaded, but distinct sessions may
// run concurrently).
type progVerdicts struct {
	store *verdictStore // owning store, for race-clean hit accounting
	mu    sync.Mutex
	m     map[string]verdict
}

// defaultVerdictStoreSize bounds each generation of program tables; two
// generations may be live at once.
const defaultVerdictStoreSize = 1024

var defaultVerdicts = &verdictStore{max: defaultVerdictStoreSize, cur: make(map[string]*progVerdicts)}

// forProgram returns the (shared) verdict table for the program with the
// given canonical form, creating it if needed.
func (vs *verdictStore) forProgram(progCanon string) *progVerdicts {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if pv, ok := vs.cur[progCanon]; ok {
		return pv
	}
	if pv, ok := vs.prev[progCanon]; ok {
		vs.insertLocked(progCanon, pv) // promote so reuse keeps it alive
		return pv
	}
	pv := &progVerdicts{store: vs, m: make(map[string]verdict)}
	vs.insertLocked(progCanon, pv)
	return pv
}

func (vs *verdictStore) insertLocked(progCanon string, pv *progVerdicts) {
	if len(vs.cur) >= vs.max {
		vs.prev = vs.cur
		vs.cur = make(map[string]*progVerdicts, vs.max)
		vs.rotations.Add(1)
	}
	vs.cur[progCanon] = pv
}

// StoreStats is a point-in-time snapshot of the process-wide verdict
// store: how many program tables and memoized verdicts are live across the
// two generations, and the lookup/hit counters accumulated by every
// session since process start.
type StoreStats struct {
	// Programs is the number of live program tables (both generations,
	// deduplicated — a promoted table appears in both).
	Programs int
	// Verdicts is the total number of memoized rule verdicts across those
	// tables.
	Verdicts int
	// Lookups / Hits count per-rule memo probes; a hit answered a
	// containment test without any chase.
	Lookups, Hits uint64
	// Rotations counts generational turnovers of the outer store.
	Rotations uint64
}

// VerdictStoreStats snapshots the process-wide verdict store. It is safe to
// call concurrently with any number of running sessions.
func VerdictStoreStats() StoreStats {
	return defaultVerdicts.stats()
}

func (vs *verdictStore) stats() StoreStats {
	st := StoreStats{
		Lookups:   vs.lookups.Load(),
		Hits:      vs.hits.Load(),
		Rotations: vs.rotations.Load(),
	}
	vs.mu.Lock()
	seen := make(map[*progVerdicts]bool, len(vs.cur)+len(vs.prev))
	for _, pv := range vs.cur {
		seen[pv] = true
	}
	for _, pv := range vs.prev {
		seen[pv] = true
	}
	vs.mu.Unlock()
	st.Programs = len(seen)
	for pv := range seen {
		pv.mu.Lock()
		st.Verdicts += len(pv.m)
		pv.mu.Unlock()
	}
	return st
}

func (pv *progVerdicts) get(ruleCanon string) (verdict, bool) {
	pv.mu.Lock()
	v, ok := pv.m[ruleCanon]
	pv.mu.Unlock()
	if pv.store != nil {
		pv.store.lookups.Add(1)
		if ok {
			pv.store.hits.Add(1)
		}
	}
	return v, ok
}

func (pv *progVerdicts) put(ruleCanon string, v verdict) {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	pv.m[ruleCanon] = v
}

// putAbsent stores v unless an entry exists (transfer must not clobber an
// entry another session computed — both are correct, the first one wins).
func (pv *progVerdicts) putAbsent(ruleCanon string, v verdict) {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	if _, ok := pv.m[ruleCanon]; !ok {
		pv.m[ruleCanon] = v
	}
}

// entries copies the table for iteration outside the lock.
func (pv *progVerdicts) entries() []verdictEntry {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	out := make([]verdictEntry, 0, len(pv.m))
	for k, v := range pv.m {
		out = append(out, verdictEntry{k: k, v: v})
	}
	return out
}

type verdictEntry struct {
	k string
	v verdict
}
