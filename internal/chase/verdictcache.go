package chase

import "sync"

// The verdict store is a content-addressed memo of uniform-containment
// verdicts: program canonical form → (rule canonical form → verdict). The
// verdict of r ⊑ᵘ P is an exact semantic property, invariant under renaming
// the variables of either side, so it can be shared across sessions, across
// the Fig. 1/2 loops, and across repeated requests that revisit the same
// programs — a new Checker over an already-seen program answers without
// chasing at all. Provenance sets stored with positive verdicts transfer
// too: canonical form preserves rule order, so rule indexes mean the same
// thing in every program sharing the address.
//
// The two-level shape is deliberate: a Checker resolves its program's inner
// table once at construction, so the per-test key is just the rule's
// canonical form instead of a program-sized concatenation.
//
// The outer store is bounded by generational rotation: when the live
// generation fills, it becomes the previous generation and a fresh one
// starts; programs untouched for two generations are dropped. This keeps
// the footprint flat for long-lived processes at O(1) per operation.
// Sessions holding a rotated-out table keep working; they just stop being
// discoverable by new sessions.
type verdictStore struct {
	mu   sync.Mutex
	max  int
	cur  map[string]*progVerdicts
	prev map[string]*progVerdicts
}

// progVerdicts is the verdict table of one program content address. It is
// shared by every session over a canonically equal program, so it carries
// its own lock (Checkers are single-threaded, but distinct sessions may
// run concurrently).
type progVerdicts struct {
	mu sync.Mutex
	m  map[string]verdict
}

// defaultVerdictStoreSize bounds each generation of program tables; two
// generations may be live at once.
const defaultVerdictStoreSize = 1024

var defaultVerdicts = &verdictStore{max: defaultVerdictStoreSize, cur: make(map[string]*progVerdicts)}

// forProgram returns the (shared) verdict table for the program with the
// given canonical form, creating it if needed.
func (vs *verdictStore) forProgram(progCanon string) *progVerdicts {
	vs.mu.Lock()
	defer vs.mu.Unlock()
	if pv, ok := vs.cur[progCanon]; ok {
		return pv
	}
	if pv, ok := vs.prev[progCanon]; ok {
		vs.insertLocked(progCanon, pv) // promote so reuse keeps it alive
		return pv
	}
	pv := &progVerdicts{m: make(map[string]verdict)}
	vs.insertLocked(progCanon, pv)
	return pv
}

func (vs *verdictStore) insertLocked(progCanon string, pv *progVerdicts) {
	if len(vs.cur) >= vs.max {
		vs.prev = vs.cur
		vs.cur = make(map[string]*progVerdicts, vs.max)
	}
	vs.cur[progCanon] = pv
}

func (pv *progVerdicts) get(ruleCanon string) (verdict, bool) {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	v, ok := pv.m[ruleCanon]
	return v, ok
}

func (pv *progVerdicts) put(ruleCanon string, v verdict) {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	pv.m[ruleCanon] = v
}

// putAbsent stores v unless an entry exists (transfer must not clobber an
// entry another session computed — both are correct, the first one wins).
func (pv *progVerdicts) putAbsent(ruleCanon string, v verdict) {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	if _, ok := pv.m[ruleCanon]; !ok {
		pv.m[ruleCanon] = v
	}
}

// entries copies the table for iteration outside the lock.
func (pv *progVerdicts) entries() []verdictEntry {
	pv.mu.Lock()
	defer pv.mu.Unlock()
	out := make([]verdictEntry, 0, len(pv.m))
	for k, v := range pv.m {
		out = append(out, verdictEntry{k: k, v: v})
	}
	return out
}

type verdictEntry struct {
	k string
	v verdict
}
