package chase

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

// repairToSAT closes a random database under the tgds (the pure-tgd chase),
// yielding a member of SAT(T) to sample relative containment on. Returns
// nil if the chase did not complete in budget.
func repairToSAT(d *db.Database, tgds []ast.TGD) *db.Database {
	res, err := Apply(ast.NewProgram(), tgds, d, Budget{MaxAtoms: 4000, MaxRounds: 4000})
	if err != nil || !res.Complete {
		return nil
	}
	return res.DB
}

// TestLemma2Sampling checks the appendix's Lemma 2 direction operationally:
// when SAT(T) ∩ M(P₁) ⊆ M(P₂) is proved by the chase AND P₁ preserves T,
// then P₂(d) ⊆ P₁(d) for every d ∈ SAT(T). We sample SAT(T) by chasing
// random databases with T.
func TestLemma2Sampling(t *testing.T) {
	// The Example 11 configuration, where all conditions are known to hold.
	p1 := workload.TransitiveClosureGuarded()
	p2 := workload.TransitiveClosure()
	tgds := []ast.TGD{parser.MustParseTGD("G(x, z) -> A(x, w).")}

	v, err := SATModelsContained(p1, tgds, p2, Budget{})
	if err != nil || v != Yes {
		t.Fatalf("precondition failed: %v %v", v, err)
	}

	rng := rand.New(rand.NewSource(51))
	sampled := 0
	for trial := 0; trial < 25; trial++ {
		raw := db.New()
		n := 2 + rng.Intn(4)
		for e := 0; e < 2*n; e++ {
			raw.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{
				ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))}})
			if rng.Intn(2) == 0 {
				raw.Add(ast.GroundAtom{Pred: "G", Args: []ast.Const{
					ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))}})
			}
		}
		d := repairToSAT(raw, tgds)
		if d == nil {
			continue
		}
		sampled++
		o2 := eval.MustEval(p2, d)
		o1 := eval.MustEval(p1, d)
		if !o1.Contains(o2) {
			t.Fatalf("trial %d: P2(d) ⊄ P1(d) on SAT(T) member\n%s", trial, d)
		}
	}
	if sampled < 10 {
		t.Fatalf("too few SAT(T) samples: %d", sampled)
	}
}

// TestRelativeContainmentNotAbsolute confirms the same pair is NOT
// contained outside SAT(T): on a DB violating the tgd, P₂ can out-derive
// P₁ — this is exactly why the paper needs the SAT(T)-relative notion.
func TestRelativeContainmentNotAbsolute(t *testing.T) {
	p1 := workload.TransitiveClosureGuarded()
	p2 := workload.TransitiveClosure()
	// G edges with NO A witnesses violate the tgd; P2 composes them, P1
	// cannot (its recursive rule demands A(y,w)).
	d := db.FromFacts([]ast.GroundAtom{
		{Pred: "G", Args: []ast.Const{ast.Int(1), ast.Int(2)}},
		{Pred: "G", Args: []ast.Const{ast.Int(2), ast.Int(3)}},
	})
	o2 := eval.MustEval(p2, d)
	o1 := eval.MustEval(p1, d)
	if o1.Contains(o2) {
		t.Fatal("containment held outside SAT(T); the relative notion would be pointless")
	}
}

// TestUniformContainmentIsSATWithEmptyT sanity-checks that the relative
// test degenerates to plain uniform containment when T is empty, across
// random program pairs.
func TestUniformContainmentIsSATWithEmptyT(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		p1 := workload.RandomProgram(rng, 1+rng.Intn(3))
		p2 := workload.RandomProgram(rng, 1+rng.Intn(3))
		if p1.Validate() != nil || p2.Validate() != nil {
			continue
		}
		plain, _, err := UniformlyContains(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		v, err := SATModelsContained(p1, nil, p2, Budget{})
		if err != nil {
			t.Fatal(err)
		}
		want := No
		if plain {
			want = Yes
		}
		if v != want {
			t.Fatalf("trial %d: SAT(∅) verdict %v, uniform %v", trial, v, plain)
		}
	}
}
