// Package chase implements the paper's decision procedures built on the
// chase process:
//
//   - uniform containment of pure Datalog programs (Section VI): P₂ ⊑ᵘ P₁
//     iff for every rule h :- b of P₂, the frozen head h·θ belongs to
//     P₁(b·θ), where θ maps the rule's variables to distinct fresh
//     constants (Corollary 2). This test always terminates.
//   - the combined application [P, T] of a program and a set of tgds
//     (Section VIII), which underlies the relative test
//     SAT(T) ∩ M(P₁) ⊆ M(P₂). With embedded tgds the chase may not
//     terminate, so these procedures take a Budget and return a
//     three-valued Verdict, matching the paper's advice to "spend on
//     optimization a predetermined amount of time" (Section XI).
package chase

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/eval"
)

// Verdict is the outcome of a chase-based test that may be cut off by a
// resource budget.
type Verdict int

const (
	// Unknown means the budget was exhausted before the test resolved.
	Unknown Verdict = iota
	// Yes means the property was proved.
	Yes
	// No means the property was refuted (a finite counterexample chase
	// reached its fixpoint without establishing the goal).
	No
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// Budget bounds a potentially diverging chase. The zero value means
// DefaultBudget.
type Budget struct {
	// MaxAtoms bounds the number of ground atoms (nulls included) in the
	// chase DB.
	MaxAtoms int
	// MaxRounds bounds the number of alternations between the Datalog
	// fixpoint and a tgd-application round.
	MaxRounds int
}

// DefaultBudget is generous enough for every example in the paper and every
// workload in the experiment suite.
var DefaultBudget = Budget{MaxAtoms: 100000, MaxRounds: 10000}

func (b Budget) orDefault() Budget {
	if b.MaxAtoms == 0 {
		b.MaxAtoms = DefaultBudget.MaxAtoms
	}
	if b.MaxRounds == 0 {
		b.MaxRounds = DefaultBudget.MaxRounds
	}
	return b
}

// FreezeRule instantiates the variables of r to distinct frozen constants
// and returns the frozen head and the frozen body as a database — the
// canonical DB of Section VI.
func FreezeRule(r ast.Rule) (ast.GroundAtom, *db.Database) {
	gen := ast.NewFrozenGen(0)
	head, body, _ := r.Freeze(gen)
	d := db.New()
	for _, g := range body {
		d.Add(g)
	}
	return head, d
}

// Checker is a containment session: one containing program, prepared once,
// serving many chase-based tests against it. It caches the prepared
// evaluation schedule, the frozen head/body of every rule it has tested,
// and — for the exact uniform-containment test — the per-rule verdicts, so
// the Fig. 1/2 minimization loops pay for program analysis once per
// candidate program instead of once per candidate atom. Every test
// evaluates toward the frozen head as a goal and halts the moment it is
// derived, rather than saturating the full fixpoint (Corollary 2 only asks
// whether the head is derivable).
//
// Prepared plans come from the shared content-addressed plan cache, and
// Derive produces the Checker for a one-rule-delta program by patching this
// one — carrying over the frozen bodies and every memoized verdict the
// delta provably cannot flip — instead of starting a fresh session.
//
// A Checker is not safe for concurrent use (its memo tables are unlocked).
type Checker struct {
	prog *ast.Program
	// progCanon is the program's canonical form — the session's content
	// address into the plan and verdict caches. ruleCanon holds its
	// per-rule lines (each newline-terminated; their concatenation is
	// progCanon), so Derive re-renders only the one rule a delta touches.
	progCanon string
	ruleCanon []string
	prep      *eval.Prepared
	// pv is the shared verdict table for this program content address,
	// resolved once so each test keys only by the rule's canonical form.
	pv     *progVerdicts
	frozen map[string]frozenRule
	// graph is the lazily built dependence graph used by the reachability
	// tests of every candidate delta probed from this session, and reach
	// memoizes its ReachableFrom sets per source predicate. Both are handed
	// down to derived sessions: a delta only ever removes atoms or rules, so
	// an ancestor's graph has a superset of the descendant's edges, and
	// testing reachability on it is sound for verdict transfer — it can only
	// over-approximate reachability, i.e. drop a verdict it could have kept.
	graph *depgraph.Graph
	reach map[string]map[string]bool
	// stats is shared across the whole Derive lineage (one session, many
	// derived programs), so work done while probing a candidate that is
	// then discarded still shows up in the session totals.
	stats *eval.Stats
	// cache is the plan cache the lineage prepares through — the process-wide
	// eval.DefaultPlanCache unless NewCheckerCache injected another.
	cache *eval.PlanCache
	// noSyntactic disables the θ-subsumption fast path (an ablation hook for
	// oracle tests and benchmarks); inherited by derived sessions.
	noSyntactic bool
	// noTermination disables the termination classifier: no derived budgets,
	// no full-set fixpoint collapse, every chase pays the raw round
	// alternation under the caller's (or default) budget. An ablation hook
	// for oracle tests and benchmarks; inherited by derived sessions.
	noTermination bool
	// termMemo caches the termination classification per tgd-set key (the
	// session program is fixed, so the key omits it); fullPreps caches the
	// combined prepared program chaseFull evaluates full tgd sets with.
	termMemo  map[string]depgraph.Classification
	fullPreps map[string]*eval.Prepared
	// ctx, when non-nil, cancels the session's chases: every internal
	// evaluation threads it to the emit path and every chase round checks
	// it, so a deadline cuts a diverging chase promptly. Set by SetContext,
	// inherited by derived sessions. Cancellation never poisons shared
	// state: verdicts and plans are only published for completed work.
	ctx context.Context
}

// verdict is one memoized ContainsRule answer plus what Derive needs to
// decide whether a rule delta can flip it: the goal (frozen-head)
// predicate, and — for positive answers — a superset of the program rules
// used by the witnessing derivation.
type verdict struct {
	ok   bool
	goal string
	prov eval.RuleSet
}

type frozenRule struct {
	head ast.GroundAtom
	body *db.Database
}

// NewChecker prepares p as the containing program of a session, reusing a
// cached plan for any canonically equal program seen before. Programs using
// negation are rejected: the chase-based tests are defined for pure Datalog
// (use StratifiedUniformlyContains for the encoded extension).
func NewChecker(p *ast.Program) (*Checker, error) {
	return NewCheckerCache(p, nil)
}

// NewCheckerCache is NewChecker with an injectable plan cache (nil selects
// eval.DefaultPlanCache); the cache is inherited by every Checker the
// session derives. Tests and the harness isolate their cache footprints;
// servers can shard caches per tenant.
func NewCheckerCache(p *ast.Program, cache *eval.PlanCache) (*Checker, error) {
	if p.HasNegation() {
		return nil, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	if cache == nil {
		cache = eval.DefaultPlanCache
	}
	c := &Checker{
		// Keep the caller's rules (cloned against mutation) rather than the
		// prepared program: a cache hit may return a plan for an
		// alpha-renamed twin, and Derive's delta indexes and body-subset
		// checks must be relative to the rules the caller names.
		prog:   p.Clone(),
		frozen: make(map[string]frozenRule),
		stats:  &eval.Stats{},
		cache:  cache,
	}
	c.ruleCanon = make([]string, len(c.prog.Rules))
	for i, r := range c.prog.Rules {
		c.ruleCanon[i] = r.CanonicalString() + "\n"
	}
	c.progCanon = joinCanon(c.ruleCanon)
	c.pv = defaultVerdicts.forProgram(c.progCanon)
	prep, hit, err := c.cache.GetOrBuildCanonical(c.progCanon, eval.Options{}, func() (*eval.Prepared, error) {
		return eval.Prepare(p, eval.Options{})
	})
	if err != nil {
		return nil, err
	}
	c.prep = prep
	if hit {
		c.stats.PrepareHits++
	} else {
		c.stats.PrepareMisses++
	}
	return c, nil
}

// Program returns the session's containing program. Callers must not
// mutate it.
func (c *Checker) Program() *ast.Program { return c.prog }

// SetContext installs a cancellation context for every subsequent chase of
// this session (nil removes it). The context governs calls, not memoized
// state: a canceled test returns an error wrapping eval.ErrCanceled and
// records nothing, so the session — and the shared verdict store — stay
// valid for later calls under a fresh context.
func (c *Checker) SetContext(ctx context.Context) { c.ctx = ctx }

// Stats reports the session's cache behavior: plan-cache hits/misses
// observed by NewChecker/Derive and verdicts carried across Derive versus
// decided by a fresh chase. Derived Checkers share their parent's
// counters, so the totals describe the whole session lineage.
func (c *Checker) Stats() eval.Stats { return *c.stats }

// frozenFor returns the cached frozen head and body of r. The body database
// is shared across calls; every consumer clones before mutating (the
// prepared evaluator clones its input, and chaseToGoal chases a clone).
func (c *Checker) frozenFor(r ast.Rule) (ast.GroundAtom, *db.Database) {
	key := r.String()
	if f, ok := c.frozen[key]; ok {
		return f.head, f.body
	}
	head, body := FreezeRule(r)
	c.frozen[key] = frozenRule{head: head, body: body}
	return head, body
}

// ContainsRule decides r ⊑ᵘ P for the session program P (Corollary 2),
// memoizing the verdict per rule in the program's content-addressed table —
// the verdict is semantic, invariant under variable renaming on both sides,
// so any session over a canonically equal program shares it. The deciding
// evaluation records rule provenance so a later Derive can tell which
// verdicts a deletion might invalidate.
func (c *Checker) ContainsRule(r ast.Rule) (bool, error) {
	if err := eval.CtxErr(c.ctx); err != nil {
		return false, err
	}
	if r.HasNegation() {
		return false, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	ckey := r.CanonicalString()
	if v, ok := c.pv.get(ckey); ok {
		c.stats.VerdictsReused++
		return v.ok, nil
	}
	if idx, forced := c.syntacticVerdict(r); forced {
		c.stats.VerdictsSubsumed++
		v := verdict{ok: true, goal: r.Head.Pred}
		if idx >= 0 {
			v.prov.Add(idx)
		}
		c.pv.put(ckey, v)
		return true, nil
	}
	head, body := c.frozenFor(r)
	var prov eval.RuleSet
	_, reached, est, err := c.prep.EvalGoalProvCtx(c.ctx, body, &head, 0, &prov)
	if err != nil {
		return false, err
	}
	c.stats.AddStreaming(est)
	c.stats.VerdictsRecomputed++
	v := verdict{ok: reached, goal: head.Pred}
	if reached {
		v.prov = prov
	}
	c.pv.put(ckey, v)
	return reached, nil
}

// syntacticVerdict decides r ⊑ᵘ P without a chase when the verdict is
// forced by the syntax alone — the move sticky-Datalog± optimizers make by
// classifying programs syntactically before running semantic tests. Two
// shapes force a positive verdict:
//
//   - r's head occurs among its own body atoms: the frozen head is in the
//     frozen body, and every program's output contains its input. The
//     witnessing "derivation" uses no rules, so the provenance is empty
//     (idx -1).
//   - some rule s of P θ-subsumes r: the frozen body of r contains
//     s.Body·θ frozen, so one application of s derives r's frozen head —
//     exactly Corollary 2's test, decided in the affirmative by a
//     single-step derivation whose provenance is {s}.
//
// A miss means nothing: uniform containment is semantic, so the caller
// falls through to the chase. The returned provenance obeys the same
// soundness contract as chased verdicts ("a superset of the rules used by
// some witnessing derivation"), which is what lets Derive transfer these
// verdicts across deltas.
func (c *Checker) syntacticVerdict(r ast.Rule) (ruleIdx int, forced bool) {
	if c.noSyntactic {
		return 0, false
	}
	for _, a := range r.Body {
		if a.Equal(r.Head) {
			return -1, true
		}
	}
	for i, s := range c.prog.Rules {
		if ast.SubsumesRule(s, r) {
			return i, true
		}
	}
	return 0, false
}

// DisableSyntacticFastPath turns off the θ-subsumption short-circuit for
// this session and every session it derives, forcing each fresh verdict
// through the chase. It exists for ablation benchmarks and oracle tests;
// verdicts already memoized (by any session over a canonically equal
// program) are still reused.
func (c *Checker) DisableSyntacticFastPath() { c.noSyntactic = true }

// depGraph returns the dependence graph of the session program, built once.
func (c *Checker) depGraph() *depgraph.Graph {
	if c.graph == nil {
		c.graph = depgraph.Build(c.prog)
	}
	return c.graph
}

// reachableFrom memoizes depGraph().ReachableFrom per source predicate: the
// minimization loops probe many deltas whose changed rules share head
// predicates, and the memo travels down the Derive lineage with the graph.
func (c *Checker) reachableFrom(pred string) map[string]bool {
	if r, ok := c.reach[pred]; ok {
		return r
	}
	r := c.depGraph().ReachableFrom(pred)
	if c.reach == nil {
		c.reach = make(map[string]map[string]bool)
	}
	c.reach[pred] = r
	return r
}

// Contains decides P₂ ⊑ᵘ P for the session program P, rule by rule, with
// the same witness convention as UniformlyContains.
func (c *Checker) Contains(p2 *ast.Program) (bool, int, error) {
	for i, r := range p2.Rules {
		ok, err := c.ContainsRule(r)
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

// Delta describes one accepted mutation of the session program, of the two
// kinds the Fig. 1/2 minimization loops produce: RuleIndex names a rule of
// Program(); a nil NewRule deletes it (Fig. 2 rule removal), a non-nil
// NewRule replaces it (Fig. 1 atom removal — a body-subset weakening of the
// old rule, which is what makes verdict transfer possible).
type Delta struct {
	RuleIndex int
	NewRule   *ast.Rule
}

// Derive returns the Checker session for the program obtained by applying
// delta to this session's program — without re-running the full preparation
// and without re-deciding every memoized verdict. The prepared plan comes
// from the shared plan cache or, on a miss, from delta-patching this
// session's plan (eval.Prepared.Derive). Frozen heads and bodies depend
// only on the tested rule, never on the session program, so they all carry
// over. Memoized verdicts carry over exactly when the delta provably
// cannot flip them:
//
//   - Rule deletion shrinks derivability, so every negative verdict stays
//     negative. A positive verdict survives if its witnessing derivation
//     avoided the deleted rule — either the recorded provenance excludes it
//     (O(1) bitset test) or the goal predicate is unreachable from the
//     deleted rule's head in the old dependence graph, in which case no
//     derivation of the goal could have used it. Kept provenance sets are
//     reindexed for the shortened rule list.
//   - Replacing a rule by a weakening of itself (same head, body a
//     sub-multiset of the old body) grows derivability — every firing of
//     the old rule is replicated by the new one under the restricted
//     substitution — so every positive verdict stays positive, with its
//     provenance intact (rule indexes are unchanged). A negative verdict
//     survives if the goal predicate is unreachable from the changed rule's
//     head in the new dependence graph: any derivation that exists now but
//     not before must use the new rule, hence reach the goal through its
//     head predicate.
//   - A replacement that is not a weakening transfers no verdicts (the
//     plan and frozen bodies still carry over).
//
// The original Checker remains fully usable; nothing is shared mutably.
func (c *Checker) Derive(delta Delta) (*Checker, error) {
	if delta.RuleIndex < 0 || delta.RuleIndex >= len(c.prog.Rules) {
		return nil, fmt.Errorf("chase: Derive: rule index %d out of range (%d rules)", delta.RuleIndex, len(c.prog.Rules))
	}
	if delta.NewRule != nil && delta.NewRule.HasNegation() {
		return nil, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	np := ast.NewProgram()
	np.Rules = make([]ast.Rule, 0, len(c.prog.Rules))
	lines := make([]string, 0, len(c.prog.Rules))
	for i, r := range c.prog.Rules {
		switch {
		case i == delta.RuleIndex && delta.NewRule == nil:
			continue
		case i == delta.RuleIndex:
			np.Rules = append(np.Rules, delta.NewRule.Clone())
			lines = append(lines, delta.NewRule.CanonicalString()+"\n")
		default:
			np.Rules = append(np.Rules, r)
			lines = append(lines, c.ruleCanon[i])
		}
	}
	nc := &Checker{
		prog:      np,
		progCanon: joinCanon(lines), // only the delta rule was re-rendered
		ruleCanon: lines,
		frozen:    make(map[string]frozenRule, len(c.frozen)),
		stats:     c.stats, // shared: the lineage is one session
		// The graph and reachability memo are shared down the lineage; the
		// ancestor's edges over-approximate every descendant's, which is the
		// sound direction for transfer (see the field comment).
		graph:         c.graph,
		reach:         c.reach,
		cache:         c.cache, // the lineage prepares through one cache
		noSyntactic:   c.noSyntactic,
		noTermination: c.noTermination,
		ctx:           c.ctx,
	}
	nc.pv = defaultVerdicts.forProgram(nc.progCanon)
	prep, hit, err := c.cache.GetOrBuildCanonical(nc.progCanon, eval.Options{}, func() (*eval.Prepared, error) {
		return c.prep.Derive(delta.RuleIndex, delta.NewRule)
	})
	if err != nil {
		return nil, err
	}
	nc.prep = prep
	if hit {
		nc.stats.PrepareHits++
	} else {
		nc.stats.PrepareMisses++
	}
	for k, f := range c.frozen {
		nc.frozen[k] = f
	}

	// Transfer surviving verdicts into the new program's shared table (they
	// are correct verdicts for its content address, so publishing them lets
	// every future session over that program benefit). Reachability is
	// computed lazily — many transfers are decided by the provenance bitset
	// or the verdict's sign alone — and on the session's cached graph, so
	// probing many candidate deltas from one session builds it once.
	if delta.NewRule == nil {
		var reach map[string]bool
		reachable := func(pred string) bool {
			if reach == nil {
				reach = c.reachableFrom(c.prog.Rules[delta.RuleIndex].Head.Pred)
			}
			return reach[pred]
		}
		for _, e := range c.pv.entries() {
			switch {
			case !e.v.ok:
				nc.pv.putAbsent(e.k, e.v)
			case !e.v.prov.Has(delta.RuleIndex) || !reachable(e.v.goal):
				nc.pv.putAbsent(e.k, verdict{ok: true, goal: e.v.goal, prov: e.v.prov.WithoutShifted(delta.RuleIndex)})
			}
		}
		return nc, nil
	}
	if !isWeakening(c.prog.Rules[delta.RuleIndex], *delta.NewRule) {
		return nc, nil
	}
	// A negative verdict survives if the goal is unreachable from the
	// changed rule's head in the NEW graph. The old graph's edges are a
	// superset (the delta only removes body atoms), so testing on the old —
	// already cached — graph is a sound, slightly conservative stand-in:
	// unreachable-in-old implies unreachable-in-new.
	var reach map[string]bool
	reachable := func(pred string) bool {
		if reach == nil {
			reach = c.reachableFrom(delta.NewRule.Head.Pred)
		}
		return reach[pred]
	}
	for _, e := range c.pv.entries() {
		if e.v.ok || !reachable(e.v.goal) {
			nc.pv.putAbsent(e.k, e.v)
		}
	}
	return nc, nil
}

// isWeakening reports whether nr is old with zero or more body atoms
// removed: identical head, positive and negated bodies sub-multisets of
// old's. Replacing a rule by a weakening can only grow derivability.
func isWeakening(old, nr ast.Rule) bool {
	return nr.Head.Equal(old.Head) &&
		subMultiset(nr.Body, old.Body) &&
		subMultiset(nr.NegBody, old.NegBody)
}

// joinCanon concatenates per-rule canonical lines into the program's
// canonical form (each line is newline-terminated).
func joinCanon(lines []string) string {
	n := 0
	for _, l := range lines {
		n += len(l)
	}
	var sb strings.Builder
	sb.Grow(n)
	for _, l := range lines {
		sb.WriteString(l)
	}
	return sb.String()
}

// subMultiset reports whether sub is a sub-multiset of sup under syntactic
// atom equality. Bodies are short, so quadratic matching with a used mask
// beats building keyed maps.
func subMultiset(sub, sup []ast.Atom) bool {
	if len(sub) > len(sup) {
		return false
	}
	var used [32]bool
	usedSlice := used[:]
	if len(sup) > len(usedSlice) {
		usedSlice = make([]bool, len(sup))
	}
	for _, a := range sub {
		found := false
		for j := range sup {
			if !usedSlice[j] && a.Equal(sup[j]) {
				usedSlice[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// UniformlyContainsRule decides r ⊑ᵘ p for a single rule r: whether every
// model of p is a model of r (Corollary 2). The test is exact and always
// terminates; rules or programs using negation are rejected. It is the
// one-shot form of Checker.ContainsRule.
func UniformlyContainsRule(p *ast.Program, r ast.Rule) (bool, error) {
	if p.HasNegation() || r.HasNegation() {
		return false, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	c, err := NewChecker(p)
	if err != nil {
		return false, err
	}
	return c.ContainsRule(r)
}

// UniformlyContains decides P₂ ⊑ᵘ P₁ (p1 uniformly contains p2): for every
// input DB over both programs' predicates, P₂'s output is contained in
// P₁'s. By Proposition 2 this is M(P₁) ⊆ M(P₂), checked rule by rule. On
// failure the index of the first rule of p2 not uniformly contained in p1
// is returned as witness (-1 on success).
func UniformlyContains(p1, p2 *ast.Program) (bool, int, error) {
	if len(p2.Rules) == 0 {
		return true, -1, nil
	}
	c, err := NewChecker(p1)
	if err != nil {
		return false, 0, err
	}
	return c.Contains(p2)
}

// UniformlyEquivalent decides P₁ ≡ᵘ P₂.
func UniformlyEquivalent(p1, p2 *ast.Program) (bool, error) {
	ok, _, err := UniformlyContains(p1, p2)
	if err != nil || !ok {
		return false, err
	}
	ok, _, err = UniformlyContains(p2, p1)
	return ok, err
}

// Result carries the outcome of a combined [P, T] chase.
type Result struct {
	// DB is the chase database when the chase completed (fixpoint reached)
	// or the partial database when the budget ran out.
	DB *db.Database
	// Complete reports whether DB is a [P, T] fixpoint: closed under the
	// program's rules with every tgd satisfied. A goal-directed chase that
	// stops early still reports Complete truthfully — true exactly when the
	// partial database happens to be the fixpoint already.
	Complete bool
	// Rounds is the number of program/tgd alternations performed (1 for the
	// single-fixpoint fast path full tgd sets take).
	Rounds int
	// Class is the termination classification of the rule + tgd set the
	// chase ran under (depgraph.TermUnclassified when the analysis was
	// disabled). With Complete=false it tells budget exhaustion on a
	// provably-terminating set (impossible under the derived bound) apart
	// from a divergence-capable shape where the cutoff is load-bearing.
	Class depgraph.TerminationClass
}

// Apply computes [P, T](d): the closure of d under both the rules of p and
// the tgds of T (Section VIII), applying embedded tgds with fresh labeled
// nulls. The input database is not modified. When the budget runs out the
// partial database is returned with Complete=false.
func Apply(p *ast.Program, tgds []ast.TGD, d *db.Database, budget Budget) (Result, error) {
	c, err := NewChecker(p)
	if err != nil {
		return Result{}, err
	}
	return c.Apply(tgds, d, budget)
}

// Apply is the session form of the package-level Apply, reusing the
// prepared program across the chase's Datalog rounds.
func (c *Checker) Apply(tgds []ast.TGD, d *db.Database, budget Budget) (Result, error) {
	res, _, err := c.chaseToGoal(tgds, d, nil, budget)
	return res, err
}

// chaseToGoal runs the combined chase, optionally stopping early as soon as
// goal is derived. It returns the chase result plus the goal verdict: Yes if
// the goal was derived, No if the chase completed without deriving it,
// Unknown if the budget ran out first. With a nil goal the verdict is No on
// completion and Unknown otherwise. The session's prepared program serves
// every Datalog phase — one preparation for the whole chase, not one per
// round — and pushes the goal into the evaluator's emit path, so a round
// halts mid-join the moment the goal is derived.
func (c *Checker) chaseToGoal(tgds []ast.TGD, d *db.Database, goal *ast.GroundAtom, budget Budget) (Result, Verdict, error) {
	var cl depgraph.Classification
	if !c.noTermination {
		cl = c.Classify(tgds)
		if cl.Full {
			// Full tgds create no nulls, so [P, T](d) is the least fixpoint
			// of P ∪ rules(T) and the round alternation collapses into one
			// prepared evaluation.
			return c.chaseFull(tgds, d, goal, budget, cl)
		}
	}
	budget = c.resolveBudget(d, budget, cl)
	cur := d.Clone()
	_, maxNull := cur.MaxGeneratedIndexes()
	nullGen := ast.NewNullGen(maxNull + 1)

	for round := 0; round < budget.MaxRounds; round++ {
		// Chase-round cancellation check, mirroring the evaluator's own
		// round-boundary discipline (the tgd phase below has no emit path of
		// its own, so the boundary check also covers it).
		if err := eval.CtxErr(c.ctx); err != nil {
			return Result{}, Unknown, err
		}
		// Datalog saturation phase, cut short if the goal shows up.
		remaining := budget.MaxAtoms - cur.Len()
		if remaining <= 0 {
			return Result{DB: cur, Complete: false, Rounds: round, Class: cl.Class}, Unknown, nil
		}
		out, reached, est, err := c.prep.EvalGoalCtx(c.ctx, cur, goal, remaining)
		c.stats.AddStreaming(est)
		if err != nil {
			if isBudgetErr(err) {
				return Result{DB: cur, Complete: false, Rounds: round, Class: cl.Class}, Unknown, nil
			}
			return Result{}, Unknown, err
		}
		cur = out
		if reached {
			return Result{DB: cur, Complete: c.isFixpoint(cur, tgds), Rounds: round + 1, Class: cl.Class}, Yes, nil
		}

		// Tgd phase: fire every violated instantiation found against the
		// snapshot, re-checking before each firing (the restricted chase).
		added := ApplyTGDRound(tgds, cur, nullGen)
		if goal != nil && cur.Has(*goal) {
			return Result{DB: cur, Complete: c.isFixpoint(cur, tgds), Rounds: round + 1, Class: cl.Class}, Yes, nil
		}
		if added == 0 {
			return Result{DB: cur, Complete: true, Rounds: round + 1, Class: cl.Class}, No, nil
		}
		if cur.Len() > budget.MaxAtoms {
			return Result{DB: cur, Complete: false, Rounds: round + 1, Class: cl.Class}, Unknown, nil
		}
	}
	return Result{DB: cur, Complete: false, Rounds: budget.MaxRounds, Class: cl.Class}, Unknown, nil
}

// termBudgetCap mirrors the saturation cap of depgraph.DerivedBudget when
// folding the input database size into a derived atom bound.
const termBudgetCap = 1 << 60

// resolveBudget picks the chase limits. A caller's explicit budget is
// always honored — exhaustion under it stays indistinguishable from
// divergence — but the zero Budget{} of a set classified chase-terminating
// is replaced by the provable bound DerivedBudget computes (plus the input
// database's own atoms), so the chase runs to true fixpoint and Unknown can
// no longer mean "budget too small". Each resolution is counted in the
// session stats as budget-free or budget-bounded.
func (c *Checker) resolveBudget(d *db.Database, budget Budget, cl depgraph.Classification) Budget {
	if budget == (Budget{}) && cl.Class.ChaseTerminates() {
		atoms, rounds := cl.DerivedBudget(len(d.Consts()))
		if atoms > termBudgetCap-d.Len() {
			atoms = termBudgetCap
		} else {
			atoms += d.Len()
		}
		c.stats.ChasesBudgetFree++
		return Budget{MaxAtoms: atoms, MaxRounds: rounds}
	}
	c.stats.ChasesBudgetBounded++
	return budget.orDefault()
}

// Classify returns the chase-termination classification of running the
// session program together with tgds (depgraph.ClassifyTGDs), memoized per
// tgd set — the minimization loops re-chase one tgd set against many
// candidate rules.
func (c *Checker) Classify(tgds []ast.TGD) depgraph.Classification {
	key := tgdSetKey(tgds)
	if cl, ok := c.termMemo[key]; ok {
		return cl
	}
	cl := depgraph.ClassifyTGDs(c.prog.Rules, tgds)
	if c.termMemo == nil {
		c.termMemo = make(map[string]depgraph.Classification)
	}
	c.termMemo[key] = cl
	return cl
}

// DisableTerminationAnalysis turns off the termination classifier for this
// session and every session it derives: chases fall back to raw budgets and
// the full-set fixpoint collapse is skipped. It exists as the oracle arm of
// ablation benchmarks and the corpus property tests.
func (c *Checker) DisableTerminationAnalysis() { c.noTermination = true }

func tgdSetKey(tgds []ast.TGD) string {
	var sb strings.Builder
	for _, t := range tgds {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// chaseFull runs the combined chase of a full tgd set as a single Datalog
// fixpoint over P ∪ rules(T), with the goal pushed into the evaluator's
// emit path. Full tgds have no existential variables, so no nulls are ever
// created and the fixpoint is exactly [P, T](d); closure under the combined
// program subsumes tgd satisfaction, so Complete needs no separate
// tgdsSatisfied sweep.
func (c *Checker) chaseFull(tgds []ast.TGD, d *db.Database, goal *ast.GroundAtom, budget Budget, cl depgraph.Classification) (Result, Verdict, error) {
	prep, err := c.fullPrep(tgds)
	if err != nil {
		return Result{}, Unknown, err
	}
	maxDerived := 0 // unbounded: a full set always terminates
	if budget != (Budget{}) {
		b := budget.orDefault()
		maxDerived = b.MaxAtoms - d.Len()
		if maxDerived <= 0 {
			return Result{DB: d.Clone(), Complete: false, Rounds: 0, Class: cl.Class}, Unknown, nil
		}
		c.stats.ChasesBudgetBounded++
	} else {
		c.stats.ChasesBudgetFree++
	}
	out, reached, est, err := prep.EvalGoalCtx(c.ctx, d, goal, maxDerived)
	c.stats.AddStreaming(est)
	if err != nil {
		if isBudgetErr(err) {
			return Result{DB: d.Clone(), Complete: false, Rounds: 1, Class: cl.Class}, Unknown, nil
		}
		return Result{}, Unknown, err
	}
	if reached {
		return Result{DB: out, Complete: prep.IsClosed(out), Rounds: 1, Class: cl.Class}, Yes, nil
	}
	return Result{DB: out, Complete: true, Rounds: 1, Class: cl.Class}, No, nil
}

// fullPrep returns the prepared combined program P ∪ rules(T) for a full
// tgd set, through the session's plan cache and memoized per tgd set.
func (c *Checker) fullPrep(tgds []ast.TGD) (*eval.Prepared, error) {
	key := tgdSetKey(tgds)
	if p, ok := c.fullPreps[key]; ok {
		return p, nil
	}
	combined := ast.NewProgram()
	combined.Rules = append(combined.Rules, c.prog.Rules...)
	lines := make([]string, 0, len(c.ruleCanon)+len(tgds))
	lines = append(lines, c.ruleCanon...)
	for _, t := range tgds {
		for _, r := range t.AsRules() {
			combined.Rules = append(combined.Rules, r)
			lines = append(lines, r.CanonicalString()+"\n")
		}
	}
	prep, hit, err := c.cache.GetOrBuildCanonical(joinCanon(lines), eval.Options{}, func() (*eval.Prepared, error) {
		return eval.Prepare(combined, eval.Options{})
	})
	if err != nil {
		return nil, err
	}
	if hit {
		c.stats.PrepareHits++
	} else {
		c.stats.PrepareMisses++
	}
	if c.fullPreps == nil {
		c.fullPreps = make(map[string]*eval.Prepared)
	}
	c.fullPreps[key] = prep
	return prep, nil
}

// isFixpoint reports whether cur is already the [P, T] fixpoint: closed
// under the session program's rules and satisfying every tgd. A chase that
// found its goal stops with a partial database; this is what makes the
// reported Complete flag truthful rather than a blanket false.
func (c *Checker) isFixpoint(cur *db.Database, tgds []ast.TGD) bool {
	if !c.prep.IsClosed(cur) {
		return false
	}
	return tgdsSatisfied(cur, tgds)
}

// tgdsSatisfied reports whether every tgd holds in d: each grounding of a
// LHS extends to a grounding of its RHS.
func tgdsSatisfied(d *db.Database, tgds []ast.TGD) bool {
	for _, t := range tgds {
		ok := true
		b := ast.Binding{}
		db.MatchConjunction(d, t.Lhs, b, func() bool {
			if !db.Satisfiable(d, t.Rhs, b) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func isBudgetErr(err error) bool { return errors.Is(err, eval.ErrBudget) }

// ApplyTGDRound applies every tgd of T once to each violated instantiation
// of its universally quantified variables (Section VIII: an instantiation θ
// fires when the LHS grounds into d and no extension of θ grounds the RHS
// into d; existential variables then take fresh nulls). It mutates d and
// returns the number of facts added. It is one round of the restricted
// chase; the Fig. 3 preservation procedure interleaves it with Pⁿ(d)
// computations.
func ApplyTGDRound(tgds []ast.TGD, d *db.Database, nullGen *ast.ConstGen) int {
	added := 0
	for _, t := range tgds {
		exist := t.ExistentialVars()
		var pending []ast.Binding
		b := ast.Binding{}
		db.MatchConjunction(d, t.Lhs, b, func() bool {
			if !db.Satisfiable(d, t.Rhs, b) {
				pending = append(pending, b.Clone())
			}
			return true
		})
		for _, theta := range pending {
			// An earlier firing in this round may have satisfied this
			// instantiation; the restricted chase re-checks before firing.
			if db.Satisfiable(d, t.Rhs, theta) {
				continue
			}
			ext := theta.Clone()
			for _, v := range exist {
				ext[v] = nullGen.Fresh()
			}
			for _, a := range t.Rhs {
				if d.Add(a.MustGround(ext)) {
					added++
				}
			}
		}
	}
	return added
}

// SATContainsRule decides SAT(T) ∩ M(P) ⊆ M(r) for the session program P
// and a single rule r by the extended chase of Section VIII: freeze r's
// body, close it under [P, T], and look for the frozen head. Yes and No
// answers are exact; Unknown means the budget ran out (possible only when T
// has embedded tgds). The verdict is not memoized — it depends on the
// budget — but the frozen body is reused from the session cache.
func (c *Checker) SATContainsRule(tgds []ast.TGD, r ast.Rule, budget Budget) (Verdict, error) {
	if r.HasNegation() {
		return Unknown, fmt.Errorf("chase: rule %s uses negation", r)
	}
	// M(P) ⊆ M(r) already forces SAT(T) ∩ M(P) ⊆ M(r) whatever T is, so a
	// syntactically forced uniform-containment verdict skips the [P, T]
	// chase too. The Section XI search probes many candidate programs that
	// differ from P in a single rule; every unchanged rule is subsumed by
	// itself, leaving only the changed rule for the chase.
	if _, forced := c.syntacticVerdict(r); forced {
		c.stats.VerdictsSubsumed++
		return Yes, nil
	}
	head, d := c.frozenFor(r)
	_, verdict, err := c.chaseToGoal(tgds, d, &head, budget)
	return verdict, err
}

// SATContainsRule is the one-shot form of Checker.SATContainsRule.
func SATContainsRule(p1 *ast.Program, tgds []ast.TGD, r ast.Rule, budget Budget) (Verdict, error) {
	if r.HasNegation() {
		return Unknown, fmt.Errorf("chase: rule %s uses negation", r)
	}
	c, err := NewChecker(p1)
	if err != nil {
		return Unknown, err
	}
	return c.SATContainsRule(tgds, r, budget)
}

// SATModelsContained decides SAT(T) ∩ M(P) ⊆ M(p2) for the session program
// P, rule by rule. A single refuted rule refutes the whole containment;
// otherwise any budget-limited rule makes the answer Unknown.
func (c *Checker) SATModelsContained(tgds []ast.TGD, p2 *ast.Program, budget Budget) (Verdict, error) {
	sawUnknown := false
	for _, r := range p2.Rules {
		v, err := c.SATContainsRule(tgds, r, budget)
		if err != nil {
			return Unknown, err
		}
		switch v {
		case No:
			return No, nil
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Yes, nil
}

// SATModelsContained is the one-shot form of Checker.SATModelsContained.
func SATModelsContained(p1 *ast.Program, tgds []ast.TGD, p2 *ast.Program, budget Budget) (Verdict, error) {
	if len(p2.Rules) == 0 {
		return Yes, nil
	}
	c, err := NewChecker(p1)
	if err != nil {
		return Unknown, err
	}
	return c.SATModelsContained(tgds, p2, budget)
}

// Certificate is a checkable witness of a positive uniform-containment
// answer: the derivation of the frozen head of Rule from its frozen body
// using only rules of the containing program — exactly the evidence
// Corollary 2's test produces.
type Certificate struct {
	// Rule is the contained rule.
	Rule ast.Rule
	// Head is the frozen head that was derived.
	Head ast.GroundAtom
	// Body is the frozen body the derivation starts from.
	Body *db.Database
}

// StratifiedUniformlyContainsRule extends the Section VI test to rules with
// stratified negation, in the conservative style of the paper's announced
// extension (Section XII): negated literals are encoded as positive atoms
// over fresh extensional predicates (the same encoding
// minimize.StratifiedProgram uses), and the pure-Datalog test runs on the
// encoding. A positive answer is sound for stratified semantics — the
// witnessing derivation relies only on negation checks the contained
// rule's own firing already guarantees — but the test is incomplete:
// containments that need reasoning about negation (e.g. Q ∨ ¬Q case
// splits) are not found.
func StratifiedUniformlyContainsRule(p *ast.Program, r ast.Rule) (bool, error) {
	return UniformlyContainsRule(encodeNegation(p), encodeRuleNegation(r))
}

// StratifiedUniformlyContains applies StratifiedUniformlyContainsRule to
// every rule of p2, sharing one session over the encoded p1.
func StratifiedUniformlyContains(p1, p2 *ast.Program) (bool, int, error) {
	if len(p2.Rules) == 0 {
		return true, -1, nil
	}
	c, err := NewChecker(encodeNegation(p1))
	if err != nil {
		return false, 0, err
	}
	for i, r := range p2.Rules {
		ok, err := c.ContainsRule(encodeRuleNegation(r))
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

const negEncodingPrefix = "neg@"

func encodeRuleNegation(r ast.Rule) ast.Rule {
	enc := ast.Rule{Head: r.Head.Clone()}
	for _, a := range r.Body {
		enc.Body = append(enc.Body, a.Clone())
	}
	for _, a := range r.NegBody {
		n := a.Clone()
		n.Pred = negEncodingPrefix + n.Pred
		enc.Body = append(enc.Body, n)
	}
	return enc
}

func encodeNegation(p *ast.Program) *ast.Program {
	out := ast.NewProgram()
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, encodeRuleNegation(r))
	}
	return out
}
