// Package chase implements the paper's decision procedures built on the
// chase process:
//
//   - uniform containment of pure Datalog programs (Section VI): P₂ ⊑ᵘ P₁
//     iff for every rule h :- b of P₂, the frozen head h·θ belongs to
//     P₁(b·θ), where θ maps the rule's variables to distinct fresh
//     constants (Corollary 2). This test always terminates.
//   - the combined application [P, T] of a program and a set of tgds
//     (Section VIII), which underlies the relative test
//     SAT(T) ∩ M(P₁) ⊆ M(P₂). With embedded tgds the chase may not
//     terminate, so these procedures take a Budget and return a
//     three-valued Verdict, matching the paper's advice to "spend on
//     optimization a predetermined amount of time" (Section XI).
package chase

import (
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
)

// Verdict is the outcome of a chase-based test that may be cut off by a
// resource budget.
type Verdict int

const (
	// Unknown means the budget was exhausted before the test resolved.
	Unknown Verdict = iota
	// Yes means the property was proved.
	Yes
	// No means the property was refuted (a finite counterexample chase
	// reached its fixpoint without establishing the goal).
	No
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case Yes:
		return "yes"
	case No:
		return "no"
	default:
		return "unknown"
	}
}

// Budget bounds a potentially diverging chase. The zero value means
// DefaultBudget.
type Budget struct {
	// MaxAtoms bounds the number of ground atoms (nulls included) in the
	// chase DB.
	MaxAtoms int
	// MaxRounds bounds the number of alternations between the Datalog
	// fixpoint and a tgd-application round.
	MaxRounds int
}

// DefaultBudget is generous enough for every example in the paper and every
// workload in the experiment suite.
var DefaultBudget = Budget{MaxAtoms: 100000, MaxRounds: 10000}

func (b Budget) orDefault() Budget {
	if b.MaxAtoms == 0 {
		b.MaxAtoms = DefaultBudget.MaxAtoms
	}
	if b.MaxRounds == 0 {
		b.MaxRounds = DefaultBudget.MaxRounds
	}
	return b
}

// FreezeRule instantiates the variables of r to distinct frozen constants
// and returns the frozen head and the frozen body as a database — the
// canonical DB of Section VI.
func FreezeRule(r ast.Rule) (ast.GroundAtom, *db.Database) {
	gen := ast.NewFrozenGen(0)
	head, body, _ := r.Freeze(gen)
	d := db.New()
	for _, g := range body {
		d.Add(g)
	}
	return head, d
}

// Checker is a containment session: one containing program, prepared once,
// serving many chase-based tests against it. It caches the prepared
// evaluation schedule, the frozen head/body of every rule it has tested,
// and — for the exact uniform-containment test — the per-rule verdicts, so
// the Fig. 1/2 minimization loops pay for program analysis once per
// candidate program instead of once per candidate atom. Every test
// evaluates toward the frozen head as a goal and halts the moment it is
// derived, rather than saturating the full fixpoint (Corollary 2 only asks
// whether the head is derivable).
//
// A Checker is not safe for concurrent use (its memo tables are unlocked).
type Checker struct {
	prog     *ast.Program
	prep     *eval.Prepared
	verdicts map[string]bool
	frozen   map[string]frozenRule
}

type frozenRule struct {
	head ast.GroundAtom
	body *db.Database
}

// NewChecker prepares p as the containing program of a session. Programs
// using negation are rejected: the chase-based tests are defined for pure
// Datalog (use StratifiedUniformlyContains for the encoded extension).
func NewChecker(p *ast.Program) (*Checker, error) {
	if p.HasNegation() {
		return nil, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	prep, err := eval.Prepare(p, eval.Options{})
	if err != nil {
		return nil, err
	}
	return &Checker{
		prog:     prep.Program(),
		prep:     prep,
		verdicts: make(map[string]bool),
		frozen:   make(map[string]frozenRule),
	}, nil
}

// frozenFor returns the cached frozen head and body of r. The body database
// is shared across calls; every consumer clones before mutating (the
// prepared evaluator clones its input, and chaseToGoal chases a clone).
func (c *Checker) frozenFor(r ast.Rule) (ast.GroundAtom, *db.Database) {
	key := r.String()
	if f, ok := c.frozen[key]; ok {
		return f.head, f.body
	}
	head, body := FreezeRule(r)
	c.frozen[key] = frozenRule{head: head, body: body}
	return head, body
}

// ContainsRule decides r ⊑ᵘ P for the session program P (Corollary 2),
// memoizing the verdict per rule. The test is exact and always terminates.
func (c *Checker) ContainsRule(r ast.Rule) (bool, error) {
	if r.HasNegation() {
		return false, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	key := r.String()
	if v, ok := c.verdicts[key]; ok {
		return v, nil
	}
	head, body := c.frozenFor(r)
	_, reached, _, err := c.prep.EvalGoal(body, &head, 0)
	if err != nil {
		return false, err
	}
	c.verdicts[key] = reached
	return reached, nil
}

// Contains decides P₂ ⊑ᵘ P for the session program P, rule by rule, with
// the same witness convention as UniformlyContains.
func (c *Checker) Contains(p2 *ast.Program) (bool, int, error) {
	for i, r := range p2.Rules {
		ok, err := c.ContainsRule(r)
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

// UniformlyContainsRule decides r ⊑ᵘ p for a single rule r: whether every
// model of p is a model of r (Corollary 2). The test is exact and always
// terminates; rules or programs using negation are rejected. It is the
// one-shot form of Checker.ContainsRule.
func UniformlyContainsRule(p *ast.Program, r ast.Rule) (bool, error) {
	if p.HasNegation() || r.HasNegation() {
		return false, fmt.Errorf("chase: uniform containment is defined for pure Datalog; program or rule uses negation")
	}
	c, err := NewChecker(p)
	if err != nil {
		return false, err
	}
	return c.ContainsRule(r)
}

// UniformlyContains decides P₂ ⊑ᵘ P₁ (p1 uniformly contains p2): for every
// input DB over both programs' predicates, P₂'s output is contained in
// P₁'s. By Proposition 2 this is M(P₁) ⊆ M(P₂), checked rule by rule. On
// failure the index of the first rule of p2 not uniformly contained in p1
// is returned as witness (-1 on success).
func UniformlyContains(p1, p2 *ast.Program) (bool, int, error) {
	if len(p2.Rules) == 0 {
		return true, -1, nil
	}
	c, err := NewChecker(p1)
	if err != nil {
		return false, 0, err
	}
	return c.Contains(p2)
}

// UniformlyEquivalent decides P₁ ≡ᵘ P₂.
func UniformlyEquivalent(p1, p2 *ast.Program) (bool, error) {
	ok, _, err := UniformlyContains(p1, p2)
	if err != nil || !ok {
		return false, err
	}
	ok, _, err = UniformlyContains(p2, p1)
	return ok, err
}

// Result carries the outcome of a combined [P, T] chase.
type Result struct {
	// DB is the chase database when the chase completed (fixpoint reached)
	// or the partial database when the budget ran out.
	DB *db.Database
	// Complete reports whether DB is a [P, T] fixpoint: closed under the
	// program's rules with every tgd satisfied. A goal-directed chase that
	// stops early still reports Complete truthfully — true exactly when the
	// partial database happens to be the fixpoint already.
	Complete bool
	// Rounds is the number of program/tgd alternations performed.
	Rounds int
}

// Apply computes [P, T](d): the closure of d under both the rules of p and
// the tgds of T (Section VIII), applying embedded tgds with fresh labeled
// nulls. The input database is not modified. When the budget runs out the
// partial database is returned with Complete=false.
func Apply(p *ast.Program, tgds []ast.TGD, d *db.Database, budget Budget) (Result, error) {
	c, err := NewChecker(p)
	if err != nil {
		return Result{}, err
	}
	return c.Apply(tgds, d, budget)
}

// Apply is the session form of the package-level Apply, reusing the
// prepared program across the chase's Datalog rounds.
func (c *Checker) Apply(tgds []ast.TGD, d *db.Database, budget Budget) (Result, error) {
	res, _, err := c.chaseToGoal(tgds, d, nil, budget)
	return res, err
}

// chaseToGoal runs the combined chase, optionally stopping early as soon as
// goal is derived. It returns the chase result plus the goal verdict: Yes if
// the goal was derived, No if the chase completed without deriving it,
// Unknown if the budget ran out first. With a nil goal the verdict is No on
// completion and Unknown otherwise. The session's prepared program serves
// every Datalog phase — one preparation for the whole chase, not one per
// round — and pushes the goal into the evaluator's emit path, so a round
// halts mid-join the moment the goal is derived.
func (c *Checker) chaseToGoal(tgds []ast.TGD, d *db.Database, goal *ast.GroundAtom, budget Budget) (Result, Verdict, error) {
	budget = budget.orDefault()
	cur := d.Clone()
	_, maxNull := cur.MaxGeneratedIndexes()
	nullGen := ast.NewNullGen(maxNull + 1)

	for round := 0; round < budget.MaxRounds; round++ {
		// Datalog saturation phase, cut short if the goal shows up.
		remaining := budget.MaxAtoms - cur.Len()
		if remaining <= 0 {
			return Result{DB: cur, Complete: false, Rounds: round}, Unknown, nil
		}
		out, reached, _, err := c.prep.EvalGoal(cur, goal, remaining)
		if err != nil {
			if isBudgetErr(err) {
				return Result{DB: cur, Complete: false, Rounds: round}, Unknown, nil
			}
			return Result{}, Unknown, err
		}
		cur = out
		if reached {
			return Result{DB: cur, Complete: c.isFixpoint(cur, tgds), Rounds: round + 1}, Yes, nil
		}

		// Tgd phase: fire every violated instantiation found against the
		// snapshot, re-checking before each firing (the restricted chase).
		added := ApplyTGDRound(tgds, cur, nullGen)
		if goal != nil && cur.Has(*goal) {
			return Result{DB: cur, Complete: c.isFixpoint(cur, tgds), Rounds: round + 1}, Yes, nil
		}
		if added == 0 {
			return Result{DB: cur, Complete: true, Rounds: round + 1}, No, nil
		}
		if cur.Len() > budget.MaxAtoms {
			return Result{DB: cur, Complete: false, Rounds: round + 1}, Unknown, nil
		}
	}
	return Result{DB: cur, Complete: false, Rounds: budget.MaxRounds}, Unknown, nil
}

// isFixpoint reports whether cur is already the [P, T] fixpoint: closed
// under the session program's rules and satisfying every tgd. A chase that
// found its goal stops with a partial database; this is what makes the
// reported Complete flag truthful rather than a blanket false.
func (c *Checker) isFixpoint(cur *db.Database, tgds []ast.TGD) bool {
	if !c.prep.IsClosed(cur) {
		return false
	}
	return tgdsSatisfied(cur, tgds)
}

// tgdsSatisfied reports whether every tgd holds in d: each grounding of a
// LHS extends to a grounding of its RHS.
func tgdsSatisfied(d *db.Database, tgds []ast.TGD) bool {
	for _, t := range tgds {
		ok := true
		b := ast.Binding{}
		db.MatchConjunction(d, t.Lhs, b, func() bool {
			if !db.Satisfiable(d, t.Rhs, b) {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
	}
	return true
}

func isBudgetErr(err error) bool { return errors.Is(err, eval.ErrBudget) }

// ApplyTGDRound applies every tgd of T once to each violated instantiation
// of its universally quantified variables (Section VIII: an instantiation θ
// fires when the LHS grounds into d and no extension of θ grounds the RHS
// into d; existential variables then take fresh nulls). It mutates d and
// returns the number of facts added. It is one round of the restricted
// chase; the Fig. 3 preservation procedure interleaves it with Pⁿ(d)
// computations.
func ApplyTGDRound(tgds []ast.TGD, d *db.Database, nullGen *ast.ConstGen) int {
	added := 0
	for _, t := range tgds {
		exist := t.ExistentialVars()
		var pending []ast.Binding
		b := ast.Binding{}
		db.MatchConjunction(d, t.Lhs, b, func() bool {
			if !db.Satisfiable(d, t.Rhs, b) {
				pending = append(pending, b.Clone())
			}
			return true
		})
		for _, theta := range pending {
			// An earlier firing in this round may have satisfied this
			// instantiation; the restricted chase re-checks before firing.
			if db.Satisfiable(d, t.Rhs, theta) {
				continue
			}
			ext := theta.Clone()
			for _, v := range exist {
				ext[v] = nullGen.Fresh()
			}
			for _, a := range t.Rhs {
				if d.Add(a.MustGround(ext)) {
					added++
				}
			}
		}
	}
	return added
}

// SATContainsRule decides SAT(T) ∩ M(P) ⊆ M(r) for the session program P
// and a single rule r by the extended chase of Section VIII: freeze r's
// body, close it under [P, T], and look for the frozen head. Yes and No
// answers are exact; Unknown means the budget ran out (possible only when T
// has embedded tgds). The verdict is not memoized — it depends on the
// budget — but the frozen body is reused from the session cache.
func (c *Checker) SATContainsRule(tgds []ast.TGD, r ast.Rule, budget Budget) (Verdict, error) {
	if r.HasNegation() {
		return Unknown, fmt.Errorf("chase: rule %s uses negation", r)
	}
	head, d := c.frozenFor(r)
	_, verdict, err := c.chaseToGoal(tgds, d, &head, budget)
	return verdict, err
}

// SATContainsRule is the one-shot form of Checker.SATContainsRule.
func SATContainsRule(p1 *ast.Program, tgds []ast.TGD, r ast.Rule, budget Budget) (Verdict, error) {
	if r.HasNegation() {
		return Unknown, fmt.Errorf("chase: rule %s uses negation", r)
	}
	c, err := NewChecker(p1)
	if err != nil {
		return Unknown, err
	}
	return c.SATContainsRule(tgds, r, budget)
}

// SATModelsContained decides SAT(T) ∩ M(P) ⊆ M(p2) for the session program
// P, rule by rule. A single refuted rule refutes the whole containment;
// otherwise any budget-limited rule makes the answer Unknown.
func (c *Checker) SATModelsContained(tgds []ast.TGD, p2 *ast.Program, budget Budget) (Verdict, error) {
	sawUnknown := false
	for _, r := range p2.Rules {
		v, err := c.SATContainsRule(tgds, r, budget)
		if err != nil {
			return Unknown, err
		}
		switch v {
		case No:
			return No, nil
		case Unknown:
			sawUnknown = true
		}
	}
	if sawUnknown {
		return Unknown, nil
	}
	return Yes, nil
}

// SATModelsContained is the one-shot form of Checker.SATModelsContained.
func SATModelsContained(p1 *ast.Program, tgds []ast.TGD, p2 *ast.Program, budget Budget) (Verdict, error) {
	if len(p2.Rules) == 0 {
		return Yes, nil
	}
	c, err := NewChecker(p1)
	if err != nil {
		return Unknown, err
	}
	return c.SATModelsContained(tgds, p2, budget)
}

// Certificate is a checkable witness of a positive uniform-containment
// answer: the derivation of the frozen head of Rule from its frozen body
// using only rules of the containing program — exactly the evidence
// Corollary 2's test produces.
type Certificate struct {
	// Rule is the contained rule.
	Rule ast.Rule
	// Head is the frozen head that was derived.
	Head ast.GroundAtom
	// Body is the frozen body the derivation starts from.
	Body *db.Database
}

// StratifiedUniformlyContainsRule extends the Section VI test to rules with
// stratified negation, in the conservative style of the paper's announced
// extension (Section XII): negated literals are encoded as positive atoms
// over fresh extensional predicates (the same encoding
// minimize.StratifiedProgram uses), and the pure-Datalog test runs on the
// encoding. A positive answer is sound for stratified semantics — the
// witnessing derivation relies only on negation checks the contained
// rule's own firing already guarantees — but the test is incomplete:
// containments that need reasoning about negation (e.g. Q ∨ ¬Q case
// splits) are not found.
func StratifiedUniformlyContainsRule(p *ast.Program, r ast.Rule) (bool, error) {
	return UniformlyContainsRule(encodeNegation(p), encodeRuleNegation(r))
}

// StratifiedUniformlyContains applies StratifiedUniformlyContainsRule to
// every rule of p2, sharing one session over the encoded p1.
func StratifiedUniformlyContains(p1, p2 *ast.Program) (bool, int, error) {
	if len(p2.Rules) == 0 {
		return true, -1, nil
	}
	c, err := NewChecker(encodeNegation(p1))
	if err != nil {
		return false, 0, err
	}
	for i, r := range p2.Rules {
		ok, err := c.ContainsRule(encodeRuleNegation(r))
		if err != nil {
			return false, i, err
		}
		if !ok {
			return false, i, nil
		}
	}
	return true, -1, nil
}

const negEncodingPrefix = "neg@"

func encodeRuleNegation(r ast.Rule) ast.Rule {
	enc := ast.Rule{Head: r.Head.Clone()}
	for _, a := range r.Body {
		enc.Body = append(enc.Body, a.Clone())
	}
	for _, a := range r.NegBody {
		n := a.Clone()
		n.Pred = negEncodingPrefix + n.Pred
		enc.Body = append(enc.Body, n)
	}
	return enc
}

func encodeNegation(p *ast.Program) *ast.Program {
	out := ast.NewProgram()
	for _, r := range p.Rules {
		out.Rules = append(out.Rules, encodeRuleNegation(r))
	}
	return out
}
