package chase

import (
	"fmt"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestIsBudgetErr(t *testing.T) {
	if !isBudgetErr(eval.ErrBudget) {
		t.Fatal("direct ErrBudget not recognized")
	}
	if !isBudgetErr(fmt.Errorf("wrap: %w", eval.ErrBudget)) {
		t.Fatal("wrapped ErrBudget not recognized")
	}
	if isBudgetErr(fmt.Errorf("other")) {
		t.Fatal("unrelated error recognized")
	}
}

func TestChaseApplyWithProgramAndTgds(t *testing.T) {
	// The full Example 11 chase: program + tgd together derive the frozen
	// head of the doubled rule from its frozen body, and the chase reaches
	// a fixpoint (nulls stop breeding once every G atom has an A witness).
	pa := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	tgds := []ast.TGD{parser.MustParseTGD("G(x, z) -> A(x, w).")}
	head, body := FreezeRule(p1().Rules[1])
	res, err := Apply(pa, tgds, body, Budget{MaxAtoms: 2000, MaxRounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DB.Has(head) {
		t.Fatalf("frozen head missing from [P,T] closure (complete=%v):\n%v", res.Complete, res.DB)
	}
}

func TestDefaultBudgetNormalization(t *testing.T) {
	b := Budget{}.orDefault()
	if b.MaxAtoms != DefaultBudget.MaxAtoms || b.MaxRounds != DefaultBudget.MaxRounds {
		t.Fatalf("orDefault = %+v", b)
	}
	b = Budget{MaxAtoms: 5}.orDefault()
	if b.MaxAtoms != 5 || b.MaxRounds != DefaultBudget.MaxRounds {
		t.Fatalf("partial orDefault = %+v", b)
	}
}

func TestStratifiedUniformContainment(t *testing.T) {
	// A duplicated negated literal makes the rule uniformly contained in
	// its single-literal form, and vice versa.
	p1 := parser.MustParseProgram(`
		Dead(x) :- Node(x), !Reach(x).
		Reach(x) :- Src(x).
	`)
	p2 := parser.MustParseProgram(`
		Dead(x) :- Node(x), !Reach(x), !Reach(x).
		Reach(x) :- Src(x).
	`)
	ok, _, err := StratifiedUniformlyContains(p1, p2)
	if err != nil || !ok {
		t.Fatalf("duplicate-literal containment: %v %v", ok, err)
	}
	ok, _, err = StratifiedUniformlyContains(p2, p1)
	if err != nil || !ok {
		t.Fatalf("converse containment: %v %v", ok, err)
	}

	// Dropping the negated literal is NOT uniformly sound: the rule without
	// the check derives more.
	p3 := parser.MustParseProgram(`
		Dead(x) :- Node(x).
		Reach(x) :- Src(x).
	`)
	ok, witness, err := StratifiedUniformlyContains(p2, p3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("negation check dropped soundly?!")
	}
	if witness != 0 {
		t.Fatalf("witness = %d", witness)
	}

	// Pure programs agree with the plain test.
	tc1 := p1d()
	ok, _, err = StratifiedUniformlyContains(tc1, tc1.Clone())
	if err != nil || !ok {
		t.Fatalf("pure fallback: %v %v", ok, err)
	}
}

// p1d avoids clashing with the p1 helper in chase_test.go.
func p1d() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
}
