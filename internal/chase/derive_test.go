package chase

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/workload"
)

// groundTruth decides r ⊑ᵘ p with a fresh, fully uncached chase — no plan
// cache, no verdict store, no Derive — so the property tests compare the
// incremental session against an independent oracle.
func groundTruth(t *testing.T, p *ast.Program, r ast.Rule) bool {
	t.Helper()
	head, body := FreezeRule(r)
	prep, err := eval.Prepare(p, eval.Options{})
	if err != nil {
		t.Fatalf("prepare oracle: %v", err)
	}
	_, reached, _, err := prep.EvalGoal(body, &head, 0)
	if err != nil {
		t.Fatalf("oracle chase: %v", err)
	}
	return reached
}

// probeRules builds the set of rules the property test checks after every
// delta: each original rule plus each of its well-formed single-atom
// deletions — exactly the shapes the Fig. 1/2 loops test — plus rules from
// an unrelated random program.
func probeRules(p *ast.Program, rng *rand.Rand) []ast.Rule {
	var probes []ast.Rule
	for _, r := range p.Rules {
		probes = append(probes, r)
		for k := range r.Body {
			cand := r.WithoutBodyAtom(k)
			if cand.WellFormed() {
				probes = append(probes, cand)
			}
		}
	}
	other := workload.RandomProgram(rng, 2)
	if other.Validate() == nil {
		probes = append(probes, other.Rules...)
	}
	return probes
}

// randomDelta picks a random applicable delta for q: a rule deletion, or a
// replacement of a rule by a well-formed single-atom weakening of itself.
// It returns ok=false when q admits no delta.
func randomDelta(q *ast.Program, rng *rand.Rand) (Delta, bool) {
	if len(q.Rules) == 0 {
		return Delta{}, false
	}
	// Try a few times to find an atom-deletion weakening; fall back to rule
	// deletion (always applicable while rules remain).
	if rng.Intn(2) == 0 {
		for attempt := 0; attempt < 4; attempt++ {
			i := rng.Intn(len(q.Rules))
			r := q.Rules[i]
			if len(r.Body) < 2 {
				continue
			}
			cand := r.WithoutBodyAtom(rng.Intn(len(r.Body)))
			if cand.WellFormed() {
				return Delta{RuleIndex: i, NewRule: &cand}, true
			}
		}
	}
	return Delta{RuleIndex: rng.Intn(len(q.Rules))}, true
}

// applyDelta mirrors a delta onto the plain program the oracle evaluates.
func applyDelta(q *ast.Program, d Delta) *ast.Program {
	if d.NewRule == nil {
		return q.WithoutRule(d.RuleIndex)
	}
	return q.ReplaceRule(d.RuleIndex, *d.NewRule)
}

// TestDeriveMatchesFreshChecker is the core property of the incremental
// containment layer: a session reached through any chain of Derive deltas
// answers ContainsRule exactly like a fresh uncached chase over the final
// program. Probing the same rules before and after each delta forces the
// verdict-transfer path (memoized verdicts with provenance must survive or
// be dropped correctly), not just the plan-patching path.
func TestDeriveMatchesFreshChecker(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 2+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		probes := probeRules(p, rng)

		ck, err := NewChecker(p)
		if err != nil {
			t.Fatalf("seed %d: NewChecker: %v", seed, err)
		}
		q := p.Clone()
		// Warm the session's memo so later deltas have verdicts to transfer.
		for _, r := range probes {
			if _, err := ck.ContainsRule(r); err != nil {
				t.Fatalf("seed %d: warmup: %v", seed, err)
			}
		}
		for step := 0; step < 4; step++ {
			d, ok := randomDelta(q, rng)
			if !ok {
				break
			}
			nck, err := ck.Derive(d)
			if err != nil {
				t.Fatalf("seed %d step %d: Derive: %v", seed, step, err)
			}
			ck = nck
			q = applyDelta(q, d)
			for pi, r := range probes {
				got, err := ck.ContainsRule(r)
				if err != nil {
					t.Fatalf("seed %d step %d probe %d: %v", seed, step, pi, err)
				}
				if want := groundTruth(t, q, r); got != want {
					t.Fatalf("seed %d step %d: derived session says %s ⊑ᵘ P = %v, fresh chase says %v\nprogram:\n%s\nrule: %s",
						seed, step, r, got, want, q, r)
				}
			}
		}
	}
}

// TestDeriveMatchesFreshCheckerStratified runs the same property through
// the negation encoding the stratified minimizer uses: random programs with
// negated EDB literals are encoded to pure Datalog (neg@ predicates), and
// the Derive chain over the encoding must agree with a fresh chase. This is
// the exact session shape minimize.StratifiedProgram drives.
func TestDeriveMatchesFreshCheckerStratified(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		p := randomStratified(rng)
		if p == nil {
			continue
		}
		enc := encodeNegation(p)
		if enc.Validate() != nil {
			continue
		}
		probes := probeRules(enc, rng)
		ck, err := NewChecker(enc)
		if err != nil {
			t.Fatalf("seed %d: NewChecker: %v", seed, err)
		}
		q := enc.Clone()
		for _, r := range probes {
			if _, err := ck.ContainsRule(r); err != nil {
				t.Fatalf("seed %d: warmup: %v", seed, err)
			}
		}
		for step := 0; step < 3; step++ {
			d, ok := randomDelta(q, rng)
			if !ok {
				break
			}
			nck, err := ck.Derive(d)
			if err != nil {
				t.Fatalf("seed %d step %d: Derive: %v", seed, step, err)
			}
			ck = nck
			q = applyDelta(q, d)
			for _, r := range probes {
				got, err := ck.ContainsRule(r)
				if err != nil {
					t.Fatalf("seed %d step %d: %v", seed, step, err)
				}
				if want := groundTruth(t, q, r); got != want {
					t.Fatalf("seed %d step %d: derived %v, fresh %v for %s in\n%s", seed, step, got, want, r, q)
				}
			}
		}
	}
}

// randomStratified generates a random program with negation by moving one
// EDB body atom of some rules into the negated body (keeping safety: the
// atom's variables must stay bound by the remaining positive atoms).
func randomStratified(rng *rand.Rand) *ast.Program {
	p := workload.RandomProgram(rng, 2+rng.Intn(3))
	if p.Validate() != nil {
		return nil
	}
	negated := false
	for i := range p.Rules {
		r := &p.Rules[i]
		if len(r.Body) < 2 || rng.Intn(2) == 0 {
			continue
		}
		k := rng.Intn(len(r.Body))
		if r.Body[k].Pred != "A" && r.Body[k].Pred != "B" {
			continue // only negate EDB predicates: trivially stratified
		}
		cand := ast.Rule{Head: r.Head, NegBody: []ast.Atom{r.Body[k]}}
		cand.Body = append(append([]ast.Atom(nil), r.Body[:k]...), r.Body[k+1:]...)
		if cand.WellFormed() {
			*r = cand
			negated = true
		}
	}
	if !negated || p.Validate() != nil {
		return nil
	}
	return p
}

// TestDeriveConcurrentSessions exercises the shared plan cache and verdict
// store from concurrent independent sessions (run under -race): distinct
// goroutines walk Derive chains over the same programs, so they contend on
// the same content addresses.
func TestDeriveConcurrentSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := workload.RandomProgram(rng, 4)
	if p.Validate() != nil {
		t.Skip("unlucky seed")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			ck, err := NewChecker(p)
			if err != nil {
				errs <- err
				return
			}
			q := p.Clone()
			probes := probeRules(p, rng)
			for step := 0; step < 3; step++ {
				for _, r := range probes {
					if _, err := ck.ContainsRule(r); err != nil {
						errs <- err
						return
					}
				}
				d, ok := randomDelta(q, rng)
				if !ok {
					return
				}
				if ck, err = ck.Derive(d); err != nil {
					errs <- err
					return
				}
				q = applyDelta(q, d)
			}
		}(int64(g))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
