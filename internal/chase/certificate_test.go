package chase

import (
	"math/rand"
	"testing"

	"repro/internal/parser"
	"repro/internal/workload"
)

func TestCertifiedContainmentExample6(t *testing.T) {
	// Example 6: each rule of the right-linear TC is contained in the
	// doubled TC, with a verifiable derivation.
	p := workload.TransitiveClosure()
	for _, r := range workload.TransitiveClosureLinear().Rules {
		ok, cert, deriv, err := UniformlyContainsRuleCertified(p, r)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("rule %v not contained", r)
		}
		if err := VerifyCertificate(p, cert, deriv); err != nil {
			t.Fatalf("certificate rejected: %v", err)
		}
	}
	// The negative direction has no certificate.
	doubled := workload.TransitiveClosure().Rules[1]
	ok, cert, deriv, err := UniformlyContainsRuleCertified(workload.TransitiveClosureLinear(), doubled)
	if err != nil {
		t.Fatal(err)
	}
	if ok || cert != nil || deriv != nil {
		t.Fatal("negative containment produced a certificate")
	}
}

func TestCertifiedAgreesWithPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		p := workload.RandomProgram(rng, 1+rng.Intn(3))
		q := workload.RandomProgram(rng, 1+rng.Intn(3))
		if p.Validate() != nil || q.Validate() != nil {
			continue
		}
		for _, r := range q.Rules {
			plain, err := UniformlyContainsRule(p, r)
			if err != nil {
				t.Fatal(err)
			}
			ok, cert, deriv, err := UniformlyContainsRuleCertified(p, r)
			if err != nil {
				t.Fatal(err)
			}
			if ok != plain {
				t.Fatalf("certified=%v plain=%v for %v", ok, plain, r)
			}
			if ok {
				if err := VerifyCertificate(p, cert, deriv); err != nil {
					t.Fatalf("certificate invalid: %v", err)
				}
			}
		}
	}
}

func TestCertificateRejectsNegation(t *testing.T) {
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, _, _, err := UniformlyContainsRuleCertified(neg, workload.TransitiveClosure().Rules[0]); err == nil {
		t.Fatal("negation accepted")
	}
}
