package chase

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

// enumerateDBs yields every database over the given unary/binary predicate
// signatures with constants drawn from {0..domain-1}. With two binary
// predicates and domain 2 that is 2^8 = 256 databases — small enough to
// check the chase's verdicts against ground truth exhaustively.
func enumerateDBs(sigs []ast.PredicateSig, domain int, visit func(*db.Database)) {
	// Build the universe of possible facts.
	var universe []ast.GroundAtom
	for _, sig := range sigs {
		tuples := 1
		for i := 0; i < sig.Arity; i++ {
			tuples *= domain
		}
		for t := 0; t < tuples; t++ {
			args := make([]ast.Const, sig.Arity)
			v := t
			for i := range args {
				args[i] = ast.Int(int64(v % domain))
				v /= domain
			}
			universe = append(universe, ast.GroundAtom{Pred: sig.Name, Args: args})
		}
	}
	if len(universe) > 20 {
		panic("exhaustive enumeration too large")
	}
	for mask := 0; mask < 1<<len(universe); mask++ {
		d := db.New()
		for i, f := range universe {
			if mask&(1<<i) != 0 {
				d.Add(f)
			}
		}
		visit(d)
	}
}

// TestProposition2Exhaustive checks Proposition 2's easy direction
// exhaustively: when the chase proves P₂ ⊑ᵘ P₁ (equivalently
// M(P₁) ⊆ M(P₂)), then over EVERY database of a tiny domain, (a) every
// model of P₁ is a model of P₂ and (b) P₂(d) ⊆ P₁(d).
func TestProposition2Exhaustive(t *testing.T) {
	pairs := []struct {
		name   string
		p1, p2 string
	}{
		{"tc-vs-linear", `
			G(x, z) :- A(x, z).
			G(x, z) :- G(x, y), G(y, z).`, `
			G(x, z) :- A(x, z).
			G(x, z) :- A(x, y), G(y, z).`},
		{"ex7", `
			G(x, y) :- G(x, w), A(w, y), A(y, y).`, `
			G(x, y) :- G(x, w), A(w, y).`},
		{"selfjoin", `
			P(x) :- A(x, x).`, `
			P(x) :- A(x, y), A(y, x).`},
	}
	for _, pr := range pairs {
		t.Run(pr.name, func(t *testing.T) {
			p1 := parser.MustParseProgram(pr.p1)
			p2 := parser.MustParseProgram(pr.p2)
			ok, _, err := UniformlyContains(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			// Collect the union of both programs' predicates.
			sigSet := map[string]int{}
			for _, p := range []*ast.Program{p1, p2} {
				for _, s := range p.Predicates() {
					sigSet[s.Name] = s.Arity
				}
			}
			var sigs []ast.PredicateSig
			for name, ar := range sigSet {
				sigs = append(sigs, ast.PredicateSig{Name: name, Arity: ar})
			}
			checked := 0
			enumerateDBs(sigs, 2, func(d *db.Database) {
				checked++
				o1 := eval.MustEval(p1, d)
				o2 := eval.MustEval(p2, d)
				if ok {
					// (b) output containment on every DB.
					if !o1.Contains(o2) {
						t.Fatalf("chase said P2 ⊑ᵘ P1 but P2(d) ⊄ P1(d) on\n%s", d)
					}
					// (a) model containment.
					if eval.IsModel(p1, d) && !eval.IsModel(p2, d) {
						t.Fatalf("chase said M(P1) ⊆ M(P2) but %s is a model of P1 only", d)
					}
				}
			})
			if checked == 0 {
				t.Fatal("enumeration visited nothing")
			}
		})
	}
}

// TestChaseNoHasCanonicalWitness checks the refutation side: whenever the
// chase answers "no" for a rule r against P, the frozen body of r is a
// concrete counterexample — P's evaluation of it misses the frozen head.
func TestChaseNoHasCanonicalWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 80; trial++ {
		p1 := workload.RandomProgram(rng, 1+rng.Intn(3))
		p2 := workload.RandomProgram(rng, 1+rng.Intn(3))
		if p1.Validate() != nil || p2.Validate() != nil {
			continue
		}
		ok, witness, err := UniformlyContains(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			continue
		}
		r := p2.Rules[witness]
		head, body := FreezeRule(r)
		out, _, err := eval.Eval(p1, body, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if out.Has(head) {
			t.Fatalf("witness rule %v: frozen head derived after all", r)
		}
		// And the rule itself derives it in one step — so the canonical DB
		// truly separates the programs.
		single := ast.NewProgram(r)
		out2, _, err := eval.Eval(single, body, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !out2.Has(head) {
			t.Fatalf("rule %v does not derive its own frozen head", r)
		}
	}
}

// TestMinimalModelCharacterization checks the Van Emden–Kowalski fact the
// paper leans on in Section IV: P(d) is the minimal model containing d —
// exhaustively, no model of P containing d is a proper subset of P(d).
func TestMinimalModelCharacterization(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	sigs := []ast.PredicateSig{{Name: "A", Arity: 2}, {Name: "G", Arity: 2}}
	// For a fixed small input, every model of p containing the input
	// contains P(input).
	input := db.FromFacts([]ast.GroundAtom{
		{Pred: "A", Args: []ast.Const{ast.Int(0), ast.Int(1)}},
		{Pred: "A", Args: []ast.Const{ast.Int(1), ast.Int(0)}},
	})
	closure := eval.MustEval(p, input)
	enumerateDBs(sigs, 2, func(d *db.Database) {
		if !d.Contains(input) || !eval.IsModel(p, d) {
			return
		}
		if !d.Contains(closure) {
			t.Fatalf("model %s contains the input but not P(input) — minimality broken", d)
		}
	})
}
