package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/eval"
	"repro/internal/parser"
)

// The θ-subsumption fast path may only ever force verdicts the chase would
// also reach. This oracle compares syntacticVerdict directly against a
// fresh goal-directed chase over random program/rule pairs, bypassing the
// verdict memo entirely so the two deciders cannot contaminate each other.
func TestSyntacticVerdictAgreesWithChase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	preds := []string{"Sp", "Sq", "Sr"}
	vars := []string{"x", "y", "z", "w"}
	randAtom := func() ast.Atom {
		args := make([]ast.Term, 2)
		for i := range args {
			if rng.Intn(6) == 0 {
				args[i] = ast.IntTerm(int64(rng.Intn(2)))
			} else {
				args[i] = ast.Var(vars[rng.Intn(len(vars))])
			}
		}
		return ast.NewAtom(preds[rng.Intn(len(preds))], args...)
	}
	randRule := func() (ast.Rule, bool) {
		r := ast.Rule{Head: randAtom()}
		for n := 1 + rng.Intn(3); n > 0; n-- {
			r.Body = append(r.Body, randAtom())
		}
		return r, r.Validate() == nil
	}

	forced, cases := 0, 0
	for trial := 0; trial < 400; trial++ {
		p := ast.NewProgram()
		for n := 1 + rng.Intn(3); n > 0; n-- {
			if r, ok := randRule(); ok {
				p.Rules = append(p.Rules, r)
			}
		}
		r, ok := randRule()
		if !ok || len(p.Rules) == 0 {
			continue
		}
		c, err := NewChecker(p)
		if err != nil {
			t.Fatal(err)
		}
		cases++
		idx, isForced := c.syntacticVerdict(r)
		if !isForced {
			continue
		}
		forced++
		if idx >= len(p.Rules) {
			t.Fatalf("trial %d: witness index %d out of range", trial, idx)
		}
		head, body := c.frozenFor(r)
		var prov eval.RuleSet
		_, reached, _, err := c.prep.EvalGoalProv(body, &head, 0, &prov)
		if err != nil {
			t.Fatal(err)
		}
		if !reached {
			t.Fatalf("trial %d: fast path forced %s ⊑ᵘ %v but the chase refutes it (witness rule %d)",
				trial, r, p.Rules, idx)
		}
	}
	if cases < 100 || forced < 10 {
		t.Fatalf("oracle undersampled: %d cases, %d forced verdicts", cases, forced)
	}
}

// Every rule is θ-subsumed by itself, so testing a program's own rules
// against its session never chases — the shape the Section XI candidate
// search hits on each unchanged rule of a probed program.
func TestFastPathSelfContainment(t *testing.T) {
	p := parser.MustParseProgram(`
		Fsp(x, z) :- Fse(x, z).
		Fsp(x, z) :- Fse(x, y), Fsp(y, z).
	`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range p.Rules {
		ok, err := c.ContainsRule(r)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("program does not contain its own rule %s", r)
		}
	}
	if s := c.Stats(); s.VerdictsSubsumed != len(p.Rules) || s.VerdictsRecomputed != 0 {
		t.Fatalf("stats = %+v, want %d subsumed and 0 recomputed", s, len(p.Rules))
	}

	// A two-step path rule is contained but not θ-subsumed by any single
	// rule — it must reach the chase even with the fast path on.
	twoStep := parser.MustParseProgram(`Fsp(x, z) :- Fse(x, y), Fse(y, z).`).Rules[0]
	ok, err := c.ContainsRule(twoStep)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("chase refutes containment of %s", twoStep)
	}
	if s := c.Stats(); s.VerdictsRecomputed != 1 {
		t.Fatalf("stats = %+v, want exactly one chased verdict", s)
	}
}

// A rule whose head appears in its own body is a tautology: output contains
// input, so it is contained in any program, with empty provenance — the
// verdict must survive any rule deletion a Derive applies.
func TestFastPathTautology(t *testing.T) {
	p := parser.MustParseProgram(`
		Ftp(x, z) :- Fte(x, z).
		Ftp(x, z) :- Fte(x, y), Ftp(y, z).
	`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	taut := parser.MustParseProgram(`Ftq(x, y) :- Ftq(x, y), Fte(x, x).`).Rules[0]
	ok, err := c.ContainsRule(taut)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tautology not contained")
	}
	if s := c.Stats(); s.VerdictsSubsumed != 1 {
		t.Fatalf("stats = %+v, want one subsumed verdict", s)
	}
	// Delete rule 0: the tautology's verdict has empty provenance and must
	// transfer to the derived session as a memo hit.
	dc, err := c.Derive(Delta{RuleIndex: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := dc.Stats().VerdictsReused
	ok, err = dc.ContainsRule(taut)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("tautology lost under deletion")
	}
	if got := dc.Stats().VerdictsReused; got != before+1 {
		t.Fatalf("verdict not transferred: reused %d -> %d", before, got)
	}
}

// SATContainsRule shares the fast path: an unchanged program rule needs no
// [P, T] chase regardless of the tgd set.
func TestFastPathSATContainsRule(t *testing.T) {
	p := parser.MustParseProgram(`
		Fxg(x, z) :- Fxa(x, z).
		Fxg(x, z) :- Fxa(x, y), Fxg(y, z).
	`)
	tgd := ast.TGD{
		Lhs: []ast.Atom{ast.NewAtom("Fxg", ast.Var("x"), ast.Var("z"))},
		Rhs: []ast.Atom{ast.NewAtom("Fxa", ast.Var("x"), ast.Var("w"))},
	}
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := c.SATContainsRule([]ast.TGD{tgd}, p.Rules[1], Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != Yes {
		t.Fatalf("verdict = %v, want yes", v)
	}
	if s := c.Stats(); s.VerdictsSubsumed != 1 {
		t.Fatalf("stats = %+v, want one subsumed verdict", s)
	}
}

// The provenance attached to a subsumption verdict must name the subsuming
// rule, so deleting that rule invalidates the verdict (unless reachability
// clears it) while deleting an unrelated rule keeps it.
func TestFastPathProvenanceSurvivesUnrelatedDeletion(t *testing.T) {
	p := parser.MustParseProgram(`
		Fpg(x, z) :- Fpa(x, z).
		Fph(x) :- Fpb(x).
	`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	// Subsumed by rule 0 (a specialization of it).
	spec := parser.MustParseProgram(`Fpg(x, x) :- Fpa(x, x), Fpb(x).`).Rules[0]
	if ok, err := c.ContainsRule(spec); err != nil || !ok {
		t.Fatalf("specialization not contained: %v %v", ok, err)
	}
	// Deleting the unrelated rule 1 keeps the verdict as a memo hit.
	dc, err := c.Derive(Delta{RuleIndex: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := dc.Stats()
	if ok, err := dc.ContainsRule(spec); err != nil || !ok {
		t.Fatalf("verdict lost under unrelated deletion: %v %v", ok, err)
	}
	after := dc.Stats()
	if after.VerdictsReused != before.VerdictsReused+1 {
		t.Fatalf("expected memo hit after unrelated deletion: %+v -> %+v", before, after)
	}
}

func ExampleChecker_DisableSyntacticFastPath() {
	p := parser.MustParseProgram(`Feg(x, z) :- Fea(x, z).`)
	c, _ := NewChecker(p)
	c.DisableSyntacticFastPath()
	ok, _ := c.ContainsRule(p.Rules[0])
	fmt.Println(ok, c.Stats().VerdictsSubsumed)
	// Output: true 0
}
