package chase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/eval"
	"repro/internal/workload"
)

// TestQuickUniformContainmentReflexive checks P ⊑ᵘ P on random programs.
func TestQuickUniformContainmentReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		ok, _, err := UniformlyContains(p, p)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickUniformContainmentSound checks the semantic meaning: when the
// chase proves P₂ ⊑ᵘ P₁, the outputs really are contained on random
// inputs (including inputs with IDB facts — that is what "uniform" means).
func TestQuickUniformContainmentSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := workload.RandomProgram(rng, 1+rng.Intn(3))
		p2 := workload.RandomProgram(rng, 1+rng.Intn(3))
		if p1.Validate() != nil || p2.Validate() != nil {
			return true
		}
		ok, _, err := UniformlyContains(p1, p2)
		if err != nil || !ok {
			return err == nil // nothing to verify on a "no"
		}
		// Verify on random DBs that may include IDB facts.
		for trial := 0; trial < 4; trial++ {
			d := workload.RandomDB(rng, p1, 4, 3)
			// Sprinkle IDB facts (uniform semantics).
			idbDB := workload.RandomDB(rng, workload.RandomProgram(rng, 1), 4, 2)
			d.AddAll(idbDB)
			o2, _, err := eval.Eval(p2, d, eval.Options{})
			if err != nil {
				continue
			}
			o1, _, err := eval.Eval(p1, d, eval.Options{})
			if err != nil {
				continue
			}
			if !o1.Contains(o2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickUniformContainmentTransitive checks transitivity of the
// preorder on random program triples.
func TestQuickUniformContainmentTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p1 := workload.RandomProgram(rng, 1+rng.Intn(3))
		p2 := workload.RandomProgram(rng, 1+rng.Intn(3))
		p3 := workload.RandomProgram(rng, 1+rng.Intn(3))
		if p1.Validate() != nil || p2.Validate() != nil || p3.Validate() != nil {
			return true
		}
		ok12, _, err1 := UniformlyContains(p2, p1) // p1 ⊑ᵘ p2
		ok23, _, err2 := UniformlyContains(p3, p2) // p2 ⊑ᵘ p3
		if err1 != nil || err2 != nil {
			return false
		}
		if !ok12 || !ok23 {
			return true
		}
		ok13, _, err := UniformlyContains(p3, p1)
		return err == nil && ok13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestQuickSupersetRulesContain checks that adding rules to a program
// yields a uniform superset (Example 5 generalized).
func TestQuickSupersetRulesContain(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 2+rng.Intn(3))
		if p.Validate() != nil {
			return true
		}
		sub := p.WithoutRule(rng.Intn(len(p.Rules)))
		ok, _, err := UniformlyContains(p, sub)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
