package chase

import (
	"testing"

	"repro/internal/parser"
	"repro/internal/workload"
)

// TestStreamingSelectedForContainment guards the planner wiring the E2/E7
// containment benchmarks depend on: a frozen-body containment query is
// non-recursive once its EDB is frozen, so the checker's goal-directed
// evaluations must ride the streaming operator pipeline, and the verdicts'
// eval stats must surface through Checker.Stats. The tested rule is the
// unfolding of P2 through P1 — uniformly contained in the layered program
// but θ-subsumed by none of its rules, so the syntactic fast path cannot
// decide it and a real chase must run. A silent planner regression (every
// stratum falling back to the materializing kernel) fails here long before
// it shows up as a benchmark delta.
func TestStreamingSelectedForContainment(t *testing.T) {
	p := workload.Layered(8)
	ck, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	unfolded := parser.MustParseProgram(`P2(x, z) :- E(x, y), E(y, z).`).Rules[0]
	contained, err := ck.ContainsRule(unfolded)
	if err != nil {
		t.Fatal(err)
	}
	if !contained {
		t.Fatal("unfolded P2 rule must be uniformly contained in the layered program")
	}
	st := ck.Stats()
	if st.VerdictsRecomputed == 0 {
		t.Fatalf("verdict was not decided by a chase; the guard is vacuous: %+v", st)
	}
	if st.StrataStreamed == 0 {
		t.Fatalf("containment chase never selected the streaming path: %+v", st)
	}
	if st.BindingsPipelined == 0 {
		t.Fatalf("containment chase pipelined no bindings: %+v", st)
	}
}
