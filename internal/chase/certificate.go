package chase

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/explain"
)

// UniformlyContainsRuleCertified decides r ⊑ᵘ p and, on success, returns a
// machine-checkable derivation tree proving the frozen head from the
// frozen body — a certificate a skeptical caller can re-verify with
// explain.Verify without trusting the chase. On a negative answer the
// certificate is nil and the frozen body itself is the counterexample
// (see Certificate and TestChaseNoHasCanonicalWitness).
func UniformlyContainsRuleCertified(p *ast.Program, r ast.Rule) (bool, *Certificate, *explain.Derivation, error) {
	if p.HasNegation() || r.HasNegation() {
		return false, nil, nil, fmt.Errorf("chase: uniform containment is defined for pure Datalog")
	}
	head, body := FreezeRule(r)
	prover, err := explain.NewProver(p, body)
	if err != nil {
		return false, nil, nil, err
	}
	deriv, ok := prover.Explain(head)
	if !ok {
		return false, nil, nil, nil
	}
	cert := &Certificate{Rule: r.Clone(), Head: head, Body: body}
	return true, cert, deriv, nil
}

// VerifyCertificate re-checks a certificate independently: the derivation
// must be a valid proof of the certificate's head over its body under p.
func VerifyCertificate(p *ast.Program, cert *Certificate, deriv *explain.Derivation) error {
	if !deriv.Fact.Equal(cert.Head) {
		return fmt.Errorf("chase: certificate proves %v, want %v", deriv.Fact, cert.Head)
	}
	return explain.Verify(p, cert.Body, deriv)
}
