package chase

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
)

// p1 is Example 1: transitive closure with the doubled recursive rule.
func p1() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
}

// p2 is Example 4: the right-linear transitive closure.
func p2() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
}

func TestExample6UniformContainment(t *testing.T) {
	// P2 ⊑ᵘ P1 holds; P1 ⊑ᵘ P2 fails on the rule G(x,z) :- G(x,y), G(y,z).
	ok, _, err := UniformlyContains(p1(), p2())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Example 6: P2 ⊑ᵘ P1 not proved")
	}
	ok, witness, err := UniformlyContains(p2(), p1())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Example 6: P1 ⊑ᵘ P2 wrongly proved")
	}
	if witness != 1 {
		t.Fatalf("witness rule index = %d, want 1 (the doubled rule)", witness)
	}
}

func TestExample5SubsetOfRules(t *testing.T) {
	// P2 = P1 + extra rule uniformly contains P1.
	p2 := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		A(x, z) :- A(x, y), G(y, z).
	`)
	ok, _, err := UniformlyContains(p2, p1())
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("Example 5: P1 ⊑ᵘ P2 not proved")
	}
	// And not conversely: the extra rule is not contained in P1.
	ok, _, err = UniformlyContains(p1(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Example 5 converse wrongly proved")
	}
}

func TestExample7RedundantAtom(t *testing.T) {
	// P1: G(x,y,z) :- G(x,w,z), A(w,y), A(w,z), A(z,z), A(z,y).
	// P2: same without A(w,y). The paper shows P1 ≡ᵘ P2.
	pa := parser.MustParseProgram(`G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).`)
	pb := parser.MustParseProgram(`G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y).`)
	eq, err := UniformlyEquivalent(pa, pb)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("Example 7: P1 ≡ᵘ P2 not proved")
	}
}

func TestUniformEquivalenceNegative(t *testing.T) {
	eq, err := UniformlyEquivalent(p1(), p2())
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("Example 4 programs wrongly uniformly equivalent")
	}
}

func TestSelfContainment(t *testing.T) {
	for _, p := range []*ast.Program{p1(), p2()} {
		eq, err := UniformlyEquivalent(p, p.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatal("program not uniformly equivalent to itself")
		}
	}
}

func TestFreezeRule(t *testing.T) {
	r := p1().Rules[1]
	head, d := FreezeRule(r)
	if d.Len() != 2 {
		t.Fatalf("frozen body has %d facts", d.Len())
	}
	if !ast.IsFrozen(head.Args[0]) || !ast.IsFrozen(head.Args[1]) {
		t.Fatalf("frozen head has non-frozen constants: %v", head)
	}
	if d.Has(head) {
		t.Fatal("frozen head already in frozen body")
	}
}

func TestUniformContainmentRejectsNegation(t *testing.T) {
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := UniformlyContainsRule(neg, p1().Rules[0]); err == nil {
		t.Fatal("negation accepted")
	}
	if _, err := UniformlyContainsRule(p1(), neg.Rules[0]); err == nil {
		t.Fatal("negated rule accepted")
	}
}

func TestApplyFullTgd(t *testing.T) {
	// A full tgd behaves like rules (Example 10).
	tgd := parser.MustParseTGD("A(x, y) -> B(y, x).")
	d := db.FromFacts([]ast.GroundAtom{
		ast.NewGroundAtom("A", ast.Int(1), ast.Int(2)),
	})
	res, err := Apply(ast.NewProgram(), []ast.TGD{tgd}, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("full-tgd chase did not complete")
	}
	if !res.DB.Has(ast.NewGroundAtom("B", ast.Int(2), ast.Int(1))) {
		t.Fatalf("tgd did not fire: %v", res.DB)
	}
}

func TestApplyEmbeddedTgdAddsNulls(t *testing.T) {
	// G(3,2) with tgd G(x,y) -> A(x,w), G(w,y): adds A(3,δ) and G(δ,2)
	// (the Section VIII illustration), then chases the new G atom once more.
	tgd := parser.MustParseTGD("G(x, y) -> A(x, w), G(w, y).")
	d := db.FromFacts([]ast.GroundAtom{
		ast.NewGroundAtom("G", ast.Int(3), ast.Int(2)),
	})
	res, err := Apply(ast.NewProgram(), []ast.TGD{tgd}, d, Budget{MaxAtoms: 50, MaxRounds: 50})
	if err != nil {
		t.Fatal(err)
	}
	// This chase does not terminate (each new G atom violates the tgd
	// afresh), so the budget must cut it off.
	if res.Complete {
		t.Fatal("non-terminating chase reported complete")
	}
	foundNullA := false
	for _, g := range res.DB.Facts() {
		if g.Pred == "A" && g.Args[0] == ast.Int(3) && ast.IsNull(g.Args[1]) {
			foundNullA = true
		}
	}
	if !foundNullA {
		t.Fatalf("no A(3,δ) in chase result:\n%v", res.DB)
	}
}

func TestApplyTgdNotFiredWhenSatisfied(t *testing.T) {
	// DB already satisfying the tgd stays unchanged.
	tgd := parser.MustParseTGD("G(x, y) -> A(x, w).")
	d := db.FromFacts([]ast.GroundAtom{
		ast.NewGroundAtom("G", ast.Int(1), ast.Int(2)),
		ast.NewGroundAtom("A", ast.Int(1), ast.Int(9)),
	})
	res, err := Apply(ast.NewProgram(), []ast.TGD{tgd}, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || res.DB.Len() != 2 {
		t.Fatalf("satisfied tgd fired: %v", res.DB)
	}
}

func TestExample11SATContainment(t *testing.T) {
	// P1: G :- A | G :- G,G,A(y,w);  P2: G :- A | G :- G,G.
	// With T = {G(x,z) -> A(x,w)}: SAT(T) ∩ M(P1) ⊆ M(P2).
	pa := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	pb := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	tgds := []ast.TGD{parser.MustParseTGD("G(x, z) -> A(x, w).")}
	v, err := SATModelsContained(pa, tgds, pb, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != Yes {
		t.Fatalf("Example 11: verdict %v, want yes", v)
	}
	// Without the tgd the containment fails (Example 6 said so).
	v, err = SATModelsContained(pa, nil, pb, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != No {
		t.Fatalf("without tgd: verdict %v, want no", v)
	}
}

func TestSATContainsRuleUnknownOnTinyBudget(t *testing.T) {
	// An embedded tgd that never satisfies the goal but keeps generating
	// nulls: with a tiny budget the verdict must be Unknown, not No.
	pa := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	tgds := []ast.TGD{parser.MustParseTGD("A(x, y) -> A(y, w).")}
	r := parser.MustParseProgram(`B(x) :- A(x, y), Z(x).`).Rules[0]
	v, err := SATContainsRule(pa, tgds, r, Budget{MaxAtoms: 8, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v != Unknown {
		t.Fatalf("verdict %v, want unknown", v)
	}
}

func TestSATModelsContainedNoBeatsUnknown(t *testing.T) {
	// One rule definitively refuted makes the whole answer No even if
	// another rule would exhaust the budget.
	pa := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	tgds := []ast.TGD{parser.MustParseTGD("A(x, y) -> A(y, w).")}
	pb := parser.MustParseProgram(`
		B(x) :- A(x, y), Z(x).
		G(x, y) :- Q(x, y).
	`)
	v, err := SATModelsContained(pa, tgds, pb, Budget{MaxAtoms: 8, MaxRounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Rule B(x) :- ... is Unknown under this budget, but G(x,y) :- Q(x,y)
	// completes its chase and is refuted, so the answer is No.
	if v != No {
		t.Fatalf("verdict %v, want no", v)
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" || Unknown.String() != "unknown" {
		t.Fatal("Verdict.String wrong")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	tgd := parser.MustParseTGD("G(x, y) -> A(x, w).")
	d := db.FromFacts([]ast.GroundAtom{ast.NewGroundAtom("G", ast.Int(1), ast.Int(2))})
	if _, err := Apply(ast.NewProgram(), []ast.TGD{tgd}, d, Budget{}); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatal("Apply mutated its input")
	}
}

func TestUniformContainmentWithConstants(t *testing.T) {
	// Rules with constants freeze correctly: G(x,3) :- A(x,3) is uniformly
	// contained in G(x,z) :- A(x,z) but not conversely.
	gen := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	spec := parser.MustParseProgram(`G(x, 3) :- A(x, 3).`)
	ok, _, err := UniformlyContains(gen, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("specialized rule not contained in general rule")
	}
	ok, _, err = UniformlyContains(spec, gen)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("general rule contained in specialized rule")
	}
}
