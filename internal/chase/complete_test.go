package chase

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
)

// The goal-directed chase used to report Complete=false whenever it stopped
// on its goal, even when the stopping database already was the [P, T]
// fixpoint. These tests pin the truthful semantics: Complete is true exactly
// when the returned database is closed under the rules with every tgd
// satisfied.

func TestGoalStopAtFixpointIsComplete(t *testing.T) {
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	d := db.FromFacts([]ast.GroundAtom{ast.NewGroundAtom("A", ast.Int(1), ast.Int(2))})
	goal := ast.NewGroundAtom("G", ast.Int(1), ast.Int(2))

	res, v, err := c.chaseToGoal(nil, d, &goal, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != Yes {
		t.Fatalf("goal verdict = %v, want Yes", v)
	}
	// Deriving G(1,2) from the only fact exhausts the program: the partial
	// database is the fixpoint and Complete must say so.
	if !res.Complete {
		t.Fatal("goal reached at the fixpoint but Complete=false")
	}
}

func TestGoalStopBeforeFixpointIsIncomplete(t *testing.T) {
	// G's stratum runs before H's, so stopping on the G goal leaves H(1,2)
	// underived: the database is not closed and Complete must be false.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x, z) :- G(x, z).`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	d := db.FromFacts([]ast.GroundAtom{ast.NewGroundAtom("A", ast.Int(1), ast.Int(2))})
	goal := ast.NewGroundAtom("G", ast.Int(1), ast.Int(2))

	res, v, err := c.chaseToGoal(nil, d, &goal, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != Yes {
		t.Fatalf("goal verdict = %v, want Yes", v)
	}
	if res.Complete {
		t.Fatal("goal reached before the fixpoint but Complete=true")
	}
	if res.DB.Has(ast.NewGroundAtom("H", ast.Int(1), ast.Int(2))) {
		t.Fatal("early stop did not stop: H(1,2) was derived")
	}
}

func TestGoalStopWithUnsatisfiedTgdIsIncomplete(t *testing.T) {
	// The rules are saturated when the goal hits, but the tgd still demands
	// a B fact, so the database is not a [P, T] fixpoint.
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	c, err := NewChecker(p)
	if err != nil {
		t.Fatal(err)
	}
	tgds := []ast.TGD{parser.MustParseTGD("G(x, z) -> B(x).")}
	d := db.FromFacts([]ast.GroundAtom{ast.NewGroundAtom("A", ast.Int(1), ast.Int(2))})
	goal := ast.NewGroundAtom("G", ast.Int(1), ast.Int(2))

	res, v, err := c.chaseToGoal(tgds, d, &goal, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if v != Yes {
		t.Fatalf("goal verdict = %v, want Yes", v)
	}
	if res.Complete {
		t.Fatal("tgd unsatisfied at goal time but Complete=true")
	}
}

func TestGoallessChaseStillComplete(t *testing.T) {
	// Sanity: the nil-goal chase keeps its fixpoint semantics.
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	tgds := []ast.TGD{parser.MustParseTGD("G(x, z) -> B(x).")}
	d := db.FromFacts([]ast.GroundAtom{ast.NewGroundAtom("A", ast.Int(1), ast.Int(2))})
	res, err := Apply(p, tgds, d, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("chase to fixpoint reported Complete=false")
	}
	if !res.DB.Has(ast.NewGroundAtom("B", ast.Int(1))) {
		t.Fatal("tgd did not fire")
	}
}
