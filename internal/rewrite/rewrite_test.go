package rewrite

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

// equivalentOnEDBs samples random EDBs and compares the two programs'
// outputs restricted to the predicates of p1 (unfolding can drop a
// predicate entirely).
func equivalentOnEDBs(t *testing.T, p1, p2 *ast.Program, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	idb := p1.IDBPredicates()
	sharedIDB := p2.IDBPredicates()
	for trial := 0; trial < 20; trial++ {
		d := db.New()
		n := 2 + rng.Intn(4)
		for _, sig := range p1.Predicates() {
			if idb[sig.Name] {
				continue
			}
			for k := 0; k < 1+rng.Intn(5); k++ {
				args := make([]ast.Const, sig.Arity)
				for i := range args {
					args[i] = ast.Int(int64(rng.Intn(n)))
				}
				d.AddTuple(sig.Name, args)
			}
		}
		o1 := eval.MustEval(p1, d)
		o2 := eval.MustEval(p2, d)
		// Compare on predicates both programs still define, plus the EDB.
		for _, f := range o1.Facts() {
			if idb[f.Pred] && !sharedIDB[f.Pred] {
				continue
			}
			if !o2.Has(f) {
				t.Fatalf("trial %d: %v lost after transformation\n%s", trial, f, d)
			}
		}
		for _, f := range o2.Facts() {
			if !o1.Has(f) {
				t.Fatalf("trial %d: %v invented by transformation\n%s", trial, f, d)
			}
		}
	}
}

func TestUnfoldAtomLinearTC(t *testing.T) {
	// Unfolding G in the right-linear rule through both G-rules yields the
	// classic two-step expansion.
	p := workload.TransitiveClosureLinear()
	out, err := UnfoldAtom(p, 1, 1) // G(y,z) inside A(x,y),G(y,z)
	if err != nil {
		t.Fatal(err)
	}
	// Expect: the base rule, plus G(x,z) :- A(x,y), A(y,z) and
	// G(x,z) :- A(x,y), A(y,w), G(w,z).
	if len(out.Rules) != 3 {
		t.Fatalf("unfolded program:\n%v", out)
	}
	equivalentOnEDBs(t, p, out, 1)
}

func TestUnfoldAtomWithConstants(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, 3) :- A(x).
		H(x, z) :- G(x, z), B(z).
	`)
	out, err := UnfoldAtom(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// H's rule specializes to z=3.
	found := false
	for _, r := range out.Rules {
		if r.Head.Pred == "H" && !r.Head.Args[1].IsVar && r.Head.Args[1].Val == ast.Int(3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("constant specialization missing:\n%v", out)
	}
	equivalentOnEDBs(t, p, out, 2)
}

func TestUnfoldAtomErrors(t *testing.T) {
	p := workload.TransitiveClosureLinear()
	if _, err := UnfoldAtom(p, 9, 0); err == nil {
		t.Fatal("bad rule index accepted")
	}
	if _, err := UnfoldAtom(p, 1, 9); err == nil {
		t.Fatal("bad atom index accepted")
	}
	if _, err := UnfoldAtom(p, 1, 0); err == nil {
		t.Fatal("extensional atom unfolded") // A(x,y) at index 0
	}
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := UnfoldAtom(neg, 0, 0); err == nil {
		t.Fatal("negated rule unfolded")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		Junk(x) :- B(x), G(x, x).
		MoreJunk(x) :- Junk(x).
	`)
	out := RemoveUnreachable(p, "G")
	if len(out.Rules) != 2 {
		t.Fatalf("unreachable rules kept:\n%v", out)
	}
	// Junk is reachable FROM MoreJunk, so asking for MoreJunk keeps all.
	all := RemoveUnreachable(p, "MoreJunk")
	if len(all.Rules) != 4 {
		t.Fatalf("needed rules dropped:\n%v", all)
	}
	// Query answers are preserved for the kept predicate.
	edb := db.FromFacts([]ast.GroundAtom{
		{Pred: "A", Args: []ast.Const{ast.Int(1), ast.Int(2)}},
		{Pred: "B", Args: []ast.Const{ast.Int(1)}},
	})
	o1 := eval.MustEval(p, edb)
	o2 := eval.MustEval(out, edb)
	for _, f := range o1.Facts() {
		if f.Pred == "G" && !o2.Has(f) {
			t.Fatalf("G fact lost: %v", f)
		}
	}
}

func TestRemoveUnfounded(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		Ghost(x) :- Phantom(x, y), A(y, x).
		Phantom(x, y) :- Phantom(y, x).
		Uses(x) :- Ghost(x), A(x, x).
	`)
	// Phantom has no base case, so Phantom, Ghost, and Uses rules are dead.
	out := RemoveUnfounded(p)
	if len(out.Rules) != 2 {
		t.Fatalf("unfounded rules kept:\n%v", out)
	}
	equivalentOnEDBs(t, p, out, 3)
}

func TestRemoveUnfoundedKeepsNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Dead(x) :- Node(x), !Reach(x).
	`)
	out := RemoveUnfounded(p)
	if len(out.Rules) != 2 {
		t.Fatalf("negated rule wrongly removed:\n%v", out)
	}
}

func TestTransformationsCompose(t *testing.T) {
	// Unfold, prune, and check equivalence end to end on a program with
	// both dead code and an unfoldable call.
	p := parser.MustParseProgram(`
		Base(x, y) :- E(x, y).
		Path(x, z) :- Base(x, y), Path(y, z).
		Path(x, y) :- Base(x, y).
		Orphan(x) :- NoBase(x, y).
		NoBase(x, y) :- NoBase(y, x).
	`)
	step1 := RemoveUnfounded(p)
	step2 := RemoveUnreachable(step1, "Path")
	out, err := UnfoldAtom(step2, indexOfRule(t, step2, "Path", 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	equivalentOnEDBs(t, RemoveUnreachable(p, "Path"), out, 4)
}

// indexOfRule finds the i-th rule (0-based among those with the head pred)
// and returns its index; bodyLen disambiguates.
func indexOfRule(t *testing.T, p *ast.Program, headPred string, bodyLen int) int {
	t.Helper()
	for i, r := range p.Rules {
		if r.Head.Pred == headPred && len(r.Body) == bodyLen {
			return i
		}
	}
	t.Fatalf("no rule for %s with %d atoms in:\n%v", headPred, bodyLen, p)
	return -1
}

// TestAddInputRulesSectionIV executes the paper's Section IV observation:
// with input rules added, plain containment over EDBs (sampled) coincides
// with uniform containment of the original programs — the B@0 relations
// smuggle initial IDB facts through the EDB.
func TestAddInputRulesSectionIV(t *testing.T) {
	p1 := workload.TransitiveClosure()
	p2 := workload.TransitiveClosureLinear()
	p1p := AddInputRules(p1)
	p2p := AddInputRules(p2)
	if len(p1p.Rules) != len(p1.Rules)+1 || p1p.Rules[2].Body[0].Pred != "G@0" {
		t.Fatalf("input rules malformed:\n%v", p1p)
	}

	// Uniform verdicts on the originals (Example 6): p2 ⊑ᵘ p1, not conversely.
	// Sample plain containment of the primed programs on EDBs that include
	// G@0 facts: the forward direction must hold everywhere; the converse
	// must fail on some sample (the Example 4 counterexample smuggled in).
	rng := rand.New(rand.NewSource(71))
	sawConverseFail := false
	for trial := 0; trial < 30; trial++ {
		d := db.New()
		n := 2 + rng.Intn(4)
		for e := 0; e < 2*n; e++ {
			d.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{
				ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))}})
			if rng.Intn(2) == 0 {
				d.Add(ast.GroundAtom{Pred: "G@0", Args: []ast.Const{
					ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))}})
			}
		}
		o1 := eval.MustEval(p1p, d)
		o2 := eval.MustEval(p2p, d)
		if !o1.Contains(o2) {
			t.Fatalf("trial %d: P2' ⊄ P1' on\n%s", trial, d)
		}
		if !o2.Contains(o1) {
			sawConverseFail = true
		}
	}
	if !sawConverseFail {
		t.Fatal("converse containment never failed; samples too weak to witness Example 4")
	}

	// And the primed programs' PLAIN containment direction agrees with the
	// chase's UNIFORM verdict: since the primed programs have input rules
	// for every IDB predicate, uniform and plain containment coincide, so
	// the chase on the primed pair answers the plain question exactly.
	ok, _, err := chase.UniformlyContains(p1p, p2p)
	if err != nil || !ok {
		t.Fatalf("chase on primed programs: %v %v", ok, err)
	}
	ok, _, err = chase.UniformlyContains(p2p, p1p)
	if err != nil || ok {
		t.Fatalf("chase converse on primed programs: %v %v", ok, err)
	}
}
