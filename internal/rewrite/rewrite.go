// Package rewrite provides classic equivalence-preserving program
// transformations that complement the paper's minimization: single-step
// rule unfolding (partial evaluation), dead-rule elimination by
// query-reachability, and unfounded-rule elimination. All three preserve
// equivalence in the paper's Section IV sense — same output for every
// EDB — but, like the Section XI optimization, not uniform equivalence
// (they may change behaviour on inputs that pre-populate intentional
// relations, e.g. unfolding forgets input facts of the unfolded
// predicate).
package rewrite

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// UnfoldAtom replaces rule ruleIdx of p by its unfoldings through body
// atom atomIdx: one new rule per rule defining that atom's predicate, with
// the atom replaced by the defining rule's body under the most general
// unifier of atom and head. Every derivation of the old rule factors
// through some defining rule, so the result is equivalent to p over EDB
// inputs. The atom's predicate must be intentional.
func UnfoldAtom(p *ast.Program, ruleIdx, atomIdx int) (*ast.Program, error) {
	if ruleIdx < 0 || ruleIdx >= len(p.Rules) {
		return nil, fmt.Errorf("rewrite: rule index %d out of range", ruleIdx)
	}
	r := p.Rules[ruleIdx]
	if r.HasNegation() {
		return nil, fmt.Errorf("rewrite: unfolding through negation is unsupported")
	}
	if atomIdx < 0 || atomIdx >= len(r.Body) {
		return nil, fmt.Errorf("rewrite: atom index %d out of range", atomIdx)
	}
	atom := r.Body[atomIdx]
	idb := p.IDBPredicates()
	if !idb[atom.Pred] {
		return nil, fmt.Errorf("rewrite: %s is extensional; only intentional atoms unfold", atom.Pred)
	}

	out := ast.NewProgram()
	for i, other := range p.Rules {
		if i != ruleIdx {
			out.Rules = append(out.Rules, other.Clone())
		}
	}
	tag := 0
	for _, def := range p.Rules {
		if def.Head.Pred != atom.Pred {
			continue
		}
		if def.HasNegation() {
			return nil, fmt.Errorf("rewrite: defining rule %s uses negation", def)
		}
		tag++
		fresh := def.RenameApart(1000 + tag)
		u := ast.NewUnifier()
		if !u.UnifyAtoms(atom, fresh.Head) {
			continue // constant clash: this defining rule cannot produce the atom
		}
		unfolded := ast.Rule{Head: u.Apply(r.Head)}
		for j, b := range r.Body {
			if j == atomIdx {
				unfolded.Body = append(unfolded.Body, u.ApplyAll(fresh.Body)...)
				continue
			}
			unfolded.Body = append(unfolded.Body, u.Apply(b))
		}
		out.Rules = append(out.Rules, unfolded)
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}

// RemoveUnreachable deletes rules that cannot contribute to the query
// predicate: a rule is kept iff its head predicate is needed, where the
// needed set is the least set containing queryPred and closed under
// "if a head is needed, its body predicates are needed".
func RemoveUnreachable(p *ast.Program, queryPred string) *ast.Program {
	needed := map[string]bool{queryPred: true}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if !needed[r.Head.Pred] {
				continue
			}
			for _, a := range append(append([]ast.Atom{}, r.Body...), r.NegBody...) {
				if !needed[a.Pred] {
					needed[a.Pred] = true
					changed = true
				}
			}
		}
	}
	out := ast.NewProgram()
	for _, r := range p.Rules {
		if needed[r.Head.Pred] {
			out.Rules = append(out.Rules, r.Clone())
		}
	}
	return out
}

// RemoveUnfounded deletes rules that can never fire on any EDB input: a
// predicate is productive when it is extensional or some rule for it has
// an all-productive positive body; a rule mentioning a non-productive
// positive body atom is dead. (Negated atoms never block productivity —
// absence is satisfiable.) The result is equivalent over EDB inputs.
func RemoveUnfounded(p *ast.Program) *ast.Program {
	idb := p.IDBPredicates()
	productive := map[string]bool{}
	for pred := range p.EDBPredicates() {
		productive[pred] = true
	}
	for changed := true; changed; {
		changed = false
		for _, r := range p.Rules {
			if productive[r.Head.Pred] {
				continue
			}
			ok := true
			for _, a := range r.Body {
				if idb[a.Pred] && !productive[a.Pred] {
					ok = false
					break
				}
				if !idb[a.Pred] {
					productive[a.Pred] = true
				}
			}
			if ok {
				productive[r.Head.Pred] = true
				changed = true
			}
		}
	}
	out := ast.NewProgram()
	for _, r := range p.Rules {
		dead := false
		for _, a := range r.Body {
			if idb[a.Pred] && !productive[a.Pred] {
				dead = true
				break
			}
		}
		if !dead {
			out.Rules = append(out.Rules, r.Clone())
		}
	}
	return out
}

// AddInputRules implements the observation closing Section IV of the
// paper: adding, for every intentional predicate B, a rule
//
//	B(x₁,…,xₙ) :- B@0(x₁,…,xₙ)
//
// over a fresh extensional predicate B@0 turns uniform containment into
// plain containment — P₂ ⊑ᵘ P₁ iff P₂′ ⊑ P₁′ — because an EDB for the
// primed program can smuggle arbitrary initial IDB relations in through
// the B@0 relations. The '@' in the generated name cannot occur in parsed
// predicates, so no collision is possible.
func AddInputRules(p *ast.Program) *ast.Program {
	out := p.Clone()
	idb := p.IDBPredicates()
	arity := map[string]int{}
	for _, r := range p.Rules {
		if idb[r.Head.Pred] {
			arity[r.Head.Pred] = r.Head.Arity()
		}
	}
	names := make([]string, 0, len(arity))
	for name := range arity {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := arity[name]
		args := make([]ast.Term, n)
		for i := range args {
			args[i] = ast.Var(fmt.Sprintf("x%d", i+1))
		}
		out.Rules = append(out.Rules, ast.Rule{
			Head: ast.Atom{Pred: name, Args: args},
			Body: []ast.Atom{{Pred: name + "@0", Args: append([]ast.Term(nil), args...)}},
		})
	}
	return out
}
