package unfold

import (
	"fmt"

	"repro/internal/ast"
)

// Patch re-unfolds the result across a one-rule replacement of the source
// program: rule ruleIdx is replaced by newRule (which must keep the head
// predicate, the weakening shape the equivopt pipeline produces, so the
// intentional signature is unchanged). Only derivation trees that pass
// through the changed rule are re-derived:
//
//  1. every recorded edge rooted at the old rule is dropped;
//  2. the surviving hypergraph is re-layered by dynamic programming — a
//     node is available at layer d when some recorded edge derives it from
//     children available by layer d-1 — with no unification re-done for
//     combinations a previous run already proved;
//  3. the semi-naive expansion runs only for the new rule (all its
//     combinations are new) and for combinations of unchanged rules that
//     substitute at least one node never before enumerable as a child.
//
// The patched Result is exactly what a fresh ToDepth/Partial of the new
// program would produce — byte-identical output program — and can itself
// be patched again. Truncated results and deltas Patch cannot absorb
// (deletion, head change, cap overflow during the patch) return an error
// wrapping ErrUnpatchable; callers rebuild fresh.
// PatchDelete re-unfolds the result across a one-rule deletion of the
// source program. Deletion is monotone-decreasing: no new derivation tree
// can appear, and every surviving tree was already recorded as edges of the
// retained hypergraph. The patch therefore does no unification at all — it
// drops the deleted rule's edges, renumbers surviving roots into the
// shortened program's index space, and re-layers the remainder by the same
// availability dynamic programming Patch uses. (Heights only grow under
// deletion, so no combination over the surviving nodes can be missing from
// the edge table.) The result is exactly what a fresh ToDepth/Partial of
// the shortened program would produce, and can itself be patched again.
//
// Deleting the last rule heading a predicate turns it extensional, which
// reclassifies initialization rules (ToDepth) and leaf positions (Partial)
// — derivations the retained hypergraph never recorded. Those deltas return
// ErrUnpatchable; callers rebuild fresh.
func (res Result) PatchDelete(ruleIdx int) (Result, error) {
	g := res.g
	if g == nil || !res.Complete {
		return Result{}, fmt.Errorf("%w: no derivation graph (truncated or zero Result)", ErrUnpatchable)
	}
	if ruleIdx < 0 || ruleIdx >= len(g.src.Rules) {
		return Result{}, fmt.Errorf("unfold: rule index %d out of range [0,%d)", ruleIdx, len(g.src.Rules))
	}
	stillIDB := false
	for i, r := range g.src.Rules {
		if i != ruleIdx && r.Head.Pred == g.src.Rules[ruleIdx].Head.Pred {
			stillIDB = true
			break
		}
	}
	if !stillIDB {
		return Result{}, fmt.Errorf("%w: deleting the last rule of predicate %q changes the intentional set",
			ErrUnpatchable, g.src.Rules[ruleIdx].Head.Pred)
	}
	np := g.src.WithoutRule(ruleIdx)
	ng := g.cloneForDelete(np, ruleIdx)
	rs := ng.newRun(np.IDBPredicates())

	pending := append([]*uedge(nil), ng.edges...)
	activate := func(d int32) {
		kept := pending[:0]
		for _, e := range pending {
			if ng.st(e.result).height != 0 {
				continue
			}
			ready := true
			for _, c := range e.children {
				if c == leafChild {
					continue
				}
				h := ng.st(c).height
				if h == 0 || h > d-1 {
					ready = false
					break
				}
			}
			if !ready {
				kept = append(kept, e)
				continue
			}
			rs.markAvail(e.result, d)
		}
		pending = kept
	}

	for _, e := range ng.edges {
		base := true
		for _, c := range e.children {
			if c != leafChild {
				base = false
				break
			}
		}
		if base {
			rs.markAvail(e.result, 1)
		}
	}
	for d := int32(2); d <= int32(ng.depth); d++ {
		if rs.newAt(d-1) == 0 {
			break
		}
		activate(d)
	}
	return rs.finish(), nil
}

func (res Result) Patch(ruleIdx int, newRule ast.Rule) (Result, error) {
	g := res.g
	if g == nil || !res.Complete {
		return Result{}, fmt.Errorf("%w: no derivation graph (truncated or zero Result)", ErrUnpatchable)
	}
	if ruleIdx < 0 || ruleIdx >= len(g.src.Rules) {
		return Result{}, fmt.Errorf("unfold: rule index %d out of range [0,%d)", ruleIdx, len(g.src.Rules))
	}
	if err := newRule.Validate(); err != nil {
		return Result{}, fmt.Errorf("unfold: invalid replacement rule: %w", err)
	}
	if newRule.HasNegation() {
		return Result{}, fmt.Errorf("%w: negated replacement", ErrUnpatchable)
	}
	if newRule.Head.Pred != g.src.Rules[ruleIdx].Head.Pred {
		return Result{}, fmt.Errorf("%w: head predicate change", ErrUnpatchable)
	}

	np := g.src.ReplaceRule(ruleIdx, newRule)
	ng := g.cloneFor(np, ruleIdx)
	rs := ng.newRun(np.IDBPredicates())
	root := int32(ruleIdx)

	// pending: surviving edges not yet re-activated. An edge fires at the
	// first layer where all its children are available, giving its result
	// that height — the DP that replaces re-unification.
	pending := append([]*uedge(nil), ng.edges...)
	activate := func(d int32) {
		kept := pending[:0]
		for _, e := range pending {
			if ng.st(e.result).height != 0 {
				continue // result already reached at a lower layer
			}
			ready := true
			for _, c := range e.children {
				if c == leafChild {
					continue
				}
				h := ng.st(c).height
				if h == 0 || h > d-1 {
					ready = false
					break
				}
			}
			if !ready {
				kept = append(kept, e)
				continue
			}
			rs.markAvail(e.result, d)
		}
		pending = kept
	}

	// Layer 1: surviving base edges (no expandable children) plus the new
	// rule's own base derivation.
	for _, e := range ng.edges {
		base := true
		for _, c := range e.children {
			if c != leafChild {
				base = false
				break
			}
		}
		if base {
			rs.markAvail(e.result, 1)
		}
	}
	nIDB := rs.countIDB(newRule)
	switch ng.kind {
	case kindToDepth:
		if nIDB == 0 {
			id := rs.intern(newRule)
			rs.record(root, nil, id)
			rs.markAvail(id, 1)
		}
	case kindPartial:
		id := rs.intern(newRule)
		children := make([]int32, nIDB)
		for i := range children {
			children[i] = leafChild
		}
		rs.record(root, children, id)
		rs.markAvail(id, 1)
	}

	for d := int32(2); d <= int32(ng.depth) && !rs.overCap; d++ {
		if rs.newAt(d-1) == 0 {
			break // nothing new became available: fixpoint
		}
		activate(d)
		rs.expandNew(root, newRule, d)
		if rs.overCap {
			break
		}
		for j, r := range np.Rules {
			if int32(j) == root {
				continue
			}
			rs.expandFrontier(int32(j), r, d)
			if rs.overCap {
				break
			}
		}
	}
	if rs.overCap {
		return Result{}, fmt.Errorf("%w: rule cap exceeded while patching", ErrUnpatchable)
	}
	return rs.finish(), nil
}
