package unfold

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ast"
)

// The unfolding engine materializes the derivation hypergraph it explores.
// A node is one unfolded rule up to alpha-renaming and body order (its
// canonical key); an edge records that substituting the child nodes into
// the intentional positions of one original rule yields the result node.
// Heights are availability layers: a node is available at layer d when some
// derivation tree of height ≤ d produces it, and only nodes available
// within the depth bound appear in the output program.
//
// Recording the graph is what makes one-rule deltas cheap: Patch drops the
// replaced rule's edges, re-layers the remainder by dynamic programming
// (no unification — those combinations were already proved), and runs the
// semi-naive expansion only for combinations that involve the new rule or
// a child that had never been enumerable before.

const (
	kindToDepth = iota
	kindPartial
)

// leafChild marks an intentional position kept unexpanded (Partial only).
const leafChild = int32(-1)

// nodeData is the immutable identity of one unfolded rule: its canonical
// representative (renamed + body-sorted) and the canonical key. It lives in
// the lineage's shared arena and never changes after interning.
type nodeData struct {
	rule ast.Rule
	key  string
}

// arena is the intern table shared by every graph of one Derive lineage:
// node ids are content addresses (canonical rule → id) that stay stable
// across patches, so cloneFor hands the arena to the derived graph instead
// of re-copying every node and rebuilding the key map. The arena is
// append-only — sibling graphs derived from one parent may each intern new
// nodes into it, and an id minted by one sibling is a valid (if so far
// unused) address in the other. Like the sessions that own it, an arena is
// not safe for concurrent use.
type arena struct {
	nodes []nodeData
	byKey map[string]int32
}

func newArena() *arena { return &arena{byKey: make(map[string]int32)} }

// intern returns the id of r's canonical form, appending it if new.
func (a *arena) intern(r ast.Rule) int32 {
	canon, key := canonicalize(r)
	if id, ok := a.byKey[key]; ok {
		return id
	}
	id := int32(len(a.nodes))
	a.nodes = append(a.nodes, nodeData{rule: canon, key: key})
	a.byKey[key] = id
	return id
}

// nodeState is the per-graph mutable state of one arena node.
type nodeState struct {
	// height is the node's availability layer in the most recent build or
	// patch run; 0 means not derivable within the depth bound.
	height int32
	// covered records that the node has been available as a substitution
	// child (height ≤ depth-1) in some completed run: every combination
	// over covered nodes is already recorded as an edge, so a patch only
	// enumerates combinations touching uncovered ("new") nodes.
	covered bool
	// nd marks, during a patch run, nodes newly available this run that
	// were never covered — the enumeration frontier.
	nd bool
}

// uedge records one substitution: original rule root with children (node
// ids per intentional body position, ascending; leafChild = unexpanded)
// yields result. Unification is deterministic, so (root, children)
// determines the result.
type uedge struct {
	root     int32
	children []int32
	result   int32
}

type graph struct {
	kind     int
	src      *ast.Program
	depth    int
	maxRules int
	// ar is the lineage-shared intern arena; state holds this graph's view
	// of each arena node (indexed by node id, grown lazily to cover ids a
	// sibling graph interned).
	ar       *arena
	state    []nodeState
	edges    []*uedge
	edgeSeen map[string]struct{}
}

func newGraph(p *ast.Program, depth, maxRules, kind int) *graph {
	return &graph{
		kind:     kind,
		src:      p.Clone(),
		depth:    depth,
		maxRules: maxRules,
		ar:       newArena(),
		edgeSeen: make(map[string]struct{}),
	}
}

// st returns the graph's state cell for id, growing the state slice when a
// sibling graph has interned nodes this graph has not yet observed. The
// returned pointer is invalidated by the next growth — use it immediately.
func (g *graph) st(id int32) *nodeState {
	if int(id) >= len(g.state) {
		grown := make([]nodeState, len(g.ar.nodes))
		copy(grown, g.state)
		g.state = grown
	}
	return &g.state[id]
}

// cloneFor derives the graph for a patch run against the new program,
// dropping every edge rooted at the replaced rule and resetting the
// per-run node state (heights, frontier marks) while keeping coverage.
// The intern arena is shared, not copied: node identity is content-
// addressed, so the derived graph only needs a fresh state slice — one
// memcopy of plain structs instead of per-node allocations and a rebuilt
// string-keyed map.
func (g *graph) cloneFor(np *ast.Program, dropRoot int) *graph {
	ng := &graph{
		kind:     g.kind,
		src:      np,
		depth:    g.depth,
		maxRules: g.maxRules,
		ar:       g.ar,
		state:    make([]nodeState, len(g.state)),
		edges:    make([]*uedge, 0, len(g.edges)),
		edgeSeen: make(map[string]struct{}, len(g.edges)),
	}
	for i, st := range g.state {
		ng.state[i] = nodeState{covered: st.covered}
	}
	for _, e := range g.edges {
		if int(e.root) == dropRoot {
			continue
		}
		ng.edges = append(ng.edges, e)
		ng.edgeSeen[edgeKey(e.root, e.children)] = struct{}{}
	}
	return ng
}

// cloneForDelete derives the graph for a deletion patch: edges rooted at
// the deleted rule are dropped, surviving roots are renumbered into the
// shortened program's index space (fresh uedge values — the parent graph's
// edges stay valid), and per-run node state resets while keeping coverage.
func (g *graph) cloneForDelete(np *ast.Program, dropRoot int) *graph {
	ng := &graph{
		kind:     g.kind,
		src:      np,
		depth:    g.depth,
		maxRules: g.maxRules,
		ar:       g.ar,
		state:    make([]nodeState, len(g.state)),
		edges:    make([]*uedge, 0, len(g.edges)),
		edgeSeen: make(map[string]struct{}, len(g.edges)),
	}
	for i, st := range g.state {
		ng.state[i] = nodeState{covered: st.covered}
	}
	for _, e := range g.edges {
		if int(e.root) == dropRoot {
			continue
		}
		root := e.root
		if int(root) > dropRoot {
			root--
		}
		ng.edges = append(ng.edges, &uedge{root: root, children: e.children, result: e.result})
		ng.edgeSeen[edgeKey(root, e.children)] = struct{}{}
	}
	return ng
}

func edgeKey(root int32, children []int32) string {
	var sb strings.Builder
	sb.Grow(4 + 4*len(children))
	sb.WriteString(strconv.Itoa(int(root)))
	for _, c := range children {
		sb.WriteByte(';')
		sb.WriteString(strconv.Itoa(int(c)))
	}
	return sb.String()
}

// canonicalize renders r with variables renamed in order of first
// occurrence and body atoms sorted by their rendering, returning the
// canonical rule and its key. Alpha-equivalent (and body-permuted, when the
// renaming agrees) unfoldings collapse to one node, and the representative
// is a function of the key alone — a patched and a fresh unfolding of the
// same program emit byte-identical rules. (Renaming depends on the original
// body order, so this is a heuristic dedup, not a full isomorphism check —
// duplicates that slip through only cost time, never correctness.)
func canonicalize(r ast.Rule) (ast.Rule, string) {
	names := map[string]string{}
	rename := func(v string) string {
		if n, ok := names[v]; ok {
			return n
		}
		n := fmt.Sprintf("v%d", len(names))
		names[v] = n
		return n
	}
	canon := r.Rename(rename)
	rendered := make([]string, len(canon.Body))
	for i, a := range canon.Body {
		rendered[i] = a.String()
	}
	sort.Sort(&bodyByRendering{atoms: canon.Body, rendered: rendered})
	var sb strings.Builder
	sb.WriteString(canon.Head.String())
	sb.WriteString(":-")
	sb.WriteString(strings.Join(rendered, ","))
	return canon, sb.String()
}

type bodyByRendering struct {
	atoms    []ast.Atom
	rendered []string
}

func (b *bodyByRendering) Len() int           { return len(b.atoms) }
func (b *bodyByRendering) Less(i, j int) bool { return b.rendered[i] < b.rendered[j] }
func (b *bodyByRendering) Swap(i, j int) {
	b.atoms[i], b.atoms[j] = b.atoms[j], b.atoms[i]
	b.rendered[i], b.rendered[j] = b.rendered[j], b.rendered[i]
}

// runState is the per-run working state shared by fresh builds and patches.
type runState struct {
	g        *graph
	idb      map[string]bool
	byPred   map[string][]int32 // available node ids by head predicate
	perLayer []int              // nodes that became available per layer
	avail    int
	overCap  bool
	counter  int // rename-apart tag for candidate substitution
}

func (g *graph) newRun(idb map[string]bool) *runState {
	return &runState{
		g:        g,
		idb:      idb,
		byPred:   make(map[string][]int32),
		perLayer: make([]int, g.depth+1),
	}
}

func (rs *runState) countIDB(r ast.Rule) int {
	n := 0
	for _, a := range r.Body {
		if rs.idb[a.Pred] {
			n++
		}
	}
	return n
}

// intern returns the node id for r's canonical form, creating it in the
// shared arena if new and ensuring this graph's state covers it.
func (rs *runState) intern(r ast.Rule) int32 {
	id := rs.g.ar.intern(r)
	rs.g.st(id)
	return id
}

// record stores the edge unless an identical one exists.
func (rs *runState) record(root int32, children []int32, result int32) {
	key := edgeKey(root, children)
	if _, ok := rs.g.edgeSeen[key]; ok {
		return
	}
	rs.g.edgeSeen[key] = struct{}{}
	rs.g.edges = append(rs.g.edges, &uedge{root: root, children: children, result: result})
}

// markAvail makes the node available at the given layer (idempotent: the
// first, lowest layer wins).
func (rs *runState) markAvail(id int32, layer int32) {
	st := rs.g.st(id)
	if st.height != 0 {
		return
	}
	st.height = layer
	st.nd = !st.covered
	pred := rs.g.ar.nodes[id].rule.Head.Pred
	rs.byPred[pred] = append(rs.byPred[pred], id)
	rs.perLayer[layer]++
	rs.avail++
	if rs.avail > rs.g.maxRules {
		rs.overCap = true
	}
}

func (rs *runState) newAt(layer int32) int { return rs.perLayer[layer] }

// candClass selects substitution candidates for one intentional position.
type candClass struct {
	ids  []int32
	leaf bool // the position may stay a leaf (Partial old/any classes)
}

// filter returns the available nodes of pred with lo ≤ height ≤ hi,
// restricted to the frontier (nd) or its complement when ndOnly is
// non-zero (+1 frontier, -1 covered complement).
func (rs *runState) filter(pred string, lo, hi int32, ndOnly int) []int32 {
	var out []int32
	for _, id := range rs.byPred[pred] {
		// markAvail grew the state slice past every id it recorded, so the
		// direct index is in range.
		st := &rs.g.state[id]
		if st.height < lo || st.height > hi {
			continue
		}
		if ndOnly > 0 && !st.nd || ndOnly < 0 && st.nd {
			continue
		}
		out = append(out, id)
	}
	return out
}

// expandNew enumerates, at layer d, every substitution combination for rule
// r whose least new position holds a child first available at layer d-1 —
// the standard semi-naive window, so each combination is enumerated at
// exactly one layer. Used by fresh builds (all nodes are new) and for the
// replaced rule during a patch (all its combinations must be redone).
func (rs *runState) expandNew(root int32, r ast.Rule, d int32) {
	m := rs.countIDB(r)
	if m == 0 {
		return
	}
	leaf := rs.g.kind == kindPartial
	for t := 0; t < m; t++ {
		classes := make([]candClass, m)
		preds := rs.idbPreds(r)
		empty := false
		for asc := 0; asc < m; asc++ {
			switch {
			case asc < t:
				classes[asc] = candClass{ids: rs.filter(preds[asc], 1, d-2, 0), leaf: leaf}
			case asc == t:
				classes[asc] = candClass{ids: rs.filter(preds[asc], d-1, d-1, 0)}
				if len(classes[asc].ids) == 0 {
					empty = true
				}
			default:
				classes[asc] = candClass{ids: rs.filter(preds[asc], 1, d-1, 0), leaf: leaf}
			}
		}
		if empty {
			continue
		}
		if !rs.expand(root, r, d, classes) {
			return
		}
	}
}

// expandFrontier enumerates, at layer d, combinations for an unchanged rule
// whose least frontier position holds a node never covered by a previous
// run — everything else is already recorded. Cross-layer repeats of a
// frontier combination are deduplicated by the edge table.
func (rs *runState) expandFrontier(root int32, r ast.Rule, d int32) {
	m := rs.countIDB(r)
	if m == 0 {
		return
	}
	leaf := rs.g.kind == kindPartial
	for t := 0; t < m; t++ {
		classes := make([]candClass, m)
		preds := rs.idbPreds(r)
		empty := false
		for asc := 0; asc < m; asc++ {
			switch {
			case asc < t:
				classes[asc] = candClass{ids: rs.filter(preds[asc], 1, d-1, -1), leaf: leaf}
			case asc == t:
				classes[asc] = candClass{ids: rs.filter(preds[asc], 1, d-1, +1)}
				if len(classes[asc].ids) == 0 {
					empty = true
				}
			default:
				classes[asc] = candClass{ids: rs.filter(preds[asc], 1, d-1, 0), leaf: leaf}
			}
		}
		if empty {
			continue
		}
		if !rs.expand(root, r, d, classes) {
			return
		}
	}
}

func (rs *runState) idbPreds(r ast.Rule) []string {
	var preds []string
	for _, a := range r.Body {
		if rs.idb[a.Pred] {
			preds = append(preds, a.Pred)
		}
	}
	return preds
}

// expand substitutes candidates into rule r, one class per intentional
// position (ascending order), emitting every successful unification as a
// node available at layer d plus its recording edge. Unification is
// mgu-level (a constant in a child's head can specialize the whole rule).
// Positions are processed right-to-left so body indexes stay valid when an
// atom is replaced by a multi-atom child body. Returns false when the rule
// cap was hit.
func (rs *runState) expand(root int32, r ast.Rule, d int32, classes []candClass) bool {
	var idbPos []int
	for i, a := range r.Body {
		if rs.idb[a.Pred] {
			idbPos = append(idbPos, i)
		}
	}
	m := len(idbPos)
	children := make([]int32, m)
	var rec func(pos int, cur ast.Rule) bool
	rec = func(pos int, cur ast.Rule) bool {
		if pos == m {
			id := rs.intern(cur)
			rs.record(root, append([]int32(nil), children...), id)
			rs.markAvail(id, d)
			return !rs.overCap
		}
		asc := m - 1 - pos
		i := idbPos[asc]
		cls := classes[asc]
		if cls.leaf {
			children[asc] = leafChild
			if !rec(pos+1, cur) {
				return false
			}
		}
		atom := cur.Body[i]
		for _, cid := range cls.ids {
			cand := rs.g.ar.nodes[cid].rule
			rs.counter++
			tag := rs.counter
			fresh := cand.Rename(func(v string) string {
				return fmt.Sprintf("%s·u%d", v, tag)
			})
			u := ast.NewUnifier()
			if !u.UnifyAtoms(atom, fresh.Head) {
				continue
			}
			next := ast.Rule{Head: u.Apply(cur.Head)}
			for j, b := range cur.Body {
				if j == i {
					next.Body = append(next.Body, u.ApplyAll(fresh.Body)...)
					continue
				}
				next.Body = append(next.Body, u.Apply(b))
			}
			children[asc] = cid
			if !rec(pos+1, next) {
				return false
			}
		}
		return true
	}
	return rec(0, r.Clone())
}

// finish closes a run: coverage is advanced to this run's availability and
// the output program is assembled in deterministic (predicate, key) order.
// A capped run yields a truncated program with no graph — it cannot be
// patched, only rebuilt.
func (rs *runState) finish() Result {
	g := rs.g
	var avail []int32
	for id := range g.state {
		st := &g.state[id]
		if st.height > 0 {
			avail = append(avail, int32(id))
		}
		st.covered = st.height > 0 && int(st.height) <= g.depth-1
		st.nd = false
	}
	sort.Slice(avail, func(i, j int) bool {
		ni, nj := &g.ar.nodes[avail[i]], &g.ar.nodes[avail[j]]
		if ni.rule.Head.Pred != nj.rule.Head.Pred {
			return ni.rule.Head.Pred < nj.rule.Head.Pred
		}
		return ni.key < nj.key
	})
	out := ast.NewProgram()
	for _, id := range avail {
		out.Rules = append(out.Rules, g.ar.nodes[id].rule.Clone())
	}
	if rs.overCap {
		return Result{Program: out, Complete: false}
	}
	return Result{Program: out, Complete: true, g: g}
}
