package unfold_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/unfold"
	"repro/internal/workload"
)

func TestDepth1IsInitRules(t *testing.T) {
	p := workload.TransitiveClosure()
	res, err := unfold.ToDepth(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete || len(res.Program.Rules) != 1 {
		t.Fatalf("depth 1: %v", res.Program)
	}
	// Output rules are canonicalized (variables renamed by first
	// occurrence), so compare canonical forms.
	if res.Program.Rules[0].CanonicalString() != p.Rules[0].CanonicalString() {
		t.Fatalf("depth-1 rule differs: %v", res.Program.Rules[0])
	}
}

func TestUnfoldedBodiesAreExtensional(t *testing.T) {
	p := workload.TransitiveClosure()
	res, err := unfold.ToDepth(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	idb := p.IDBPredicates()
	for _, r := range res.Program.Rules {
		for _, a := range r.Body {
			if idb[a.Pred] {
				t.Fatalf("unfolded rule has IDB body atom: %v", r)
			}
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("unfolded rule invalid: %v", err)
		}
	}
}

// TestUnfoldingMatchesKRounds is the semantic core: the non-recursive
// application of the depth-k unfolding equals the first k rounds of naive
// evaluation.
func TestUnfoldingMatchesKRounds(t *testing.T) {
	programs := []*ast.Program{
		workload.TransitiveClosure(),
		workload.TransitiveClosureLinear(),
		workload.Layered(3),
	}
	rng := rand.New(rand.NewSource(17))
	for pi, p := range programs {
		edbPred := "A"
		if pi == 2 {
			edbPred = "E"
		}
		for trial := 0; trial < 6; trial++ {
			n := 3 + rng.Intn(5)
			edb := workload.RandomDigraph(edbPred, n, 2*n, int64(trial))
			for k := 1; k <= 3; k++ {
				res, err := unfold.ToDepth(p, k, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Complete {
					t.Fatalf("unfolding truncated at depth %d", k)
				}
				got := eval.NonRecursive(res.Program, edb)
				want := kRounds(p, edb, k)
				if !got.Equal(want) {
					t.Fatalf("program %d, k=%d:\nunfolded: %v\nk-rounds: %v\nover %v", pi, k, got, want, edb)
				}
			}
		}
	}
}

// kRounds computes the IDB facts derivable within k naive rounds.
func kRounds(p *ast.Program, edb *db.Database, k int) *db.Database {
	cur := edb.Clone()
	for i := 0; i < k; i++ {
		add := eval.NonRecursive(p, cur)
		if cur.AddAll(add) == 0 {
			break
		}
	}
	out := db.New()
	idb := p.IDBPredicates()
	for _, f := range cur.Facts() {
		if idb[f.Pred] {
			out.Add(f)
		}
	}
	return out
}

func TestUnfoldWithConstantsInHeads(t *testing.T) {
	// A derivation head holding a constant must specialize the consuming
	// rule during unfolding (the mgu direction the naive matcher misses).
	p := parser.MustParseProgram(`
		G(x, 3) :- A(x).
		H(x, z) :- G(x, z), B(z).
	`)
	res, err := unfold.ToDepth(p, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Expect H(x, 3) :- A(x), B(3) among the unfoldings.
	found := false
	for _, r := range res.Program.Rules {
		if r.Head.Pred == "H" && !r.Head.Args[1].IsVar && r.Head.Args[1].Val == ast.Int(3) {
			found = true
		}
	}
	if !found {
		t.Fatalf("constant specialization missing:\n%v", res.Program)
	}
	// Semantics check on a concrete EDB.
	edb := db.FromFacts([]ast.GroundAtom{
		{Pred: "A", Args: []ast.Const{ast.Int(7)}},
		{Pred: "B", Args: []ast.Const{ast.Int(3)}},
	})
	got := eval.NonRecursive(res.Program, edb)
	if !got.Has(ast.NewGroundAtom("H", ast.Int(7), ast.Int(3))) {
		t.Fatalf("unfolded program misses H(7,3): %v", got)
	}
}

func TestTruncationReported(t *testing.T) {
	// Doubling TC explodes; a tiny cap must report incompleteness.
	p := workload.TransitiveClosure()
	res, err := unfold.ToDepth(p, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("tiny cap reported complete")
	}
}

func TestErrors(t *testing.T) {
	if _, err := unfold.ToDepth(workload.TransitiveClosure(), 0, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := unfold.ToDepth(neg, 2, 0); err == nil {
		t.Fatal("negation accepted")
	}
}

func TestPreliminarySatisfiesAtDepth(t *testing.T) {
	// H is derivable from A only at depth 2, so the tgd G(x,z) -> H(x)
	// fails against the depth-1 preliminary DB but holds at depth 2.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x) :- G(x, y).
	`)
	tau := parser.MustParseTGD("G(x, z) -> H(x).")
	v, _, err := preserve.CheckPreliminary(p, []ast.TGD{tau}, preserve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("depth-1 verdict %v, want no", v)
	}
	v, _, err = preserve.CheckPreliminary(p, []ast.TGD{tau}, preserve.Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("depth-2 verdict %v, want yes", v)
	}
}

func TestPreliminaryDepthConsistency(t *testing.T) {
	// Depth 1 through the generalized entry point equals the plain test.
	p := workload.TransitiveClosureGuarded()
	tau := parser.MustParseTGD("G(x, z) -> A(x, w).")
	for depth := 1; depth <= 3; depth++ {
		v, _, err := preserve.CheckPreliminary(p, []ast.TGD{tau}, preserve.Options{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		if v != chase.Yes {
			t.Fatalf("depth %d: verdict %v", depth, v)
		}
	}
}
