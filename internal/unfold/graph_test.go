package unfold

import (
	"testing"

	"repro/internal/parser"
)

// TestPatchSharesArena pins the arena contract: a Derive lineage shares one
// intern table, so a patched graph re-uses the parent's node ids (no per-node
// copying, no rebuilt key map) and sibling graphs interning the same rule get
// the same id.
func TestPatchSharesArena(t *testing.T) {
	src := `
		T(x,y) :- E(x,y).
		T(x,z) :- E(x,y), T(y,z), L(x).
	`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := ToDepth(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Patchable() {
		t.Fatal("complete unfolding not patchable")
	}

	// Same-head weakening of the recursive rule: drop the L atom.
	nr := p.Rules[1].WithoutBodyAtom(2)
	patched, err := orig.Patch(1, nr)
	if err != nil {
		t.Fatal(err)
	}
	if patched.g.ar != orig.g.ar {
		t.Fatal("Patch did not share the intern arena with its parent")
	}
	if len(patched.g.state) < len(orig.g.state) {
		t.Fatalf("patched state (%d cells) does not cover parent nodes (%d)", len(patched.g.state), len(orig.g.state))
	}

	// Sibling patches from the same parent intern into the same arena;
	// content addressing gives both the same id for the same canonical rule.
	sib, err := orig.Patch(1, nr)
	if err != nil {
		t.Fatal(err)
	}
	if sib.g.ar != orig.g.ar {
		t.Fatal("sibling patch did not share the arena")
	}
	if len(sib.g.ar.nodes) != len(patched.g.ar.nodes) {
		t.Fatalf("sibling interning duplicated nodes: %d vs %d", len(sib.g.ar.nodes), len(patched.g.ar.nodes))
	}

	// Coverage survives the share: the parent still patches independently
	// and produces the same bytes as a fresh unfolding of the new program.
	fresh, err := ToDepth(p.ReplaceRule(1, nr), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := patched.Program.String(), fresh.Program.String(); got != want {
		t.Fatalf("patched program diverged from fresh unfolding:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
