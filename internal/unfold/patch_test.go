package unfold_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
	"repro/internal/unfold"
	"repro/internal/workload"
)

// weakenDelta picks a random same-head single-atom weakening of some rule
// of q: the exact delta shape the equivopt pipeline feeds Patch. ok=false
// when no rule admits one.
func weakenDelta(q *ast.Program, rng *rand.Rand) (int, ast.Rule, bool) {
	for attempt := 0; attempt < 12; attempt++ {
		i := rng.Intn(len(q.Rules))
		r := q.Rules[i]
		if len(r.Body) < 2 {
			continue
		}
		cand := r.WithoutBodyAtom(rng.Intn(len(r.Body)))
		if cand.WellFormed() {
			return i, cand, true
		}
	}
	return 0, ast.Rule{}, false
}

// TestPatchMatchesFreshUnfold is the core property of the incremental
// unfolding: a Result reached through any chain of Patch deltas is
// byte-identical (canonical program string) to a fresh unfolding of the
// final program, for both the full (ToDepth) and partial (Partial) engines,
// at every depth the preservation layer probes.
func TestPatchMatchesFreshUnfold(t *testing.T) {
	kinds := []struct {
		name  string
		build func(*ast.Program, int, int) (unfold.Result, error)
	}{
		{"ToDepth", unfold.ToDepth},
		{"Partial", unfold.Partial},
	}
	for _, kind := range kinds {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			q := workload.RandomProgram(rng, 2+rng.Intn(3))
			if q.Validate() != nil || q.HasNegation() {
				continue
			}
			for depth := 2; depth <= 3; depth++ {
				res, err := kind.build(q, depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				cur := q
				for step := 0; step < 3 && res.Patchable(); step++ {
					i, nr, ok := weakenDelta(cur, rng)
					if !ok {
						break
					}
					patched, err := res.Patch(i, nr)
					if err != nil {
						t.Fatalf("%s seed %d depth %d step %d: patch: %v", kind.name, seed, depth, step, err)
					}
					cur = cur.ReplaceRule(i, nr)
					fresh, err := kind.build(cur, depth, 0)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := patched.Program.CanonicalString(), fresh.Program.CanonicalString(); got != want {
						t.Fatalf("%s seed %d depth %d step %d: patched ≠ fresh\npatched:\n%s\nfresh:\n%s\nprogram:\n%s",
							kind.name, seed, depth, step, got, want, cur)
					}
					if patched.Complete != fresh.Complete {
						t.Fatalf("%s seed %d depth %d step %d: complete %v ≠ %v",
							kind.name, seed, depth, step, patched.Complete, fresh.Complete)
					}
					res = patched
				}
			}
		}
	}
}

// TestPatchLayeredPrograms exercises multi-SCC shapes where the changed
// rule feeds later strata: the cascade re-layering must follow derivations
// through unchanged rules.
func TestPatchLayeredPrograms(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), B(z, z).
		G(x, z) :- G(x, y), G(y, z).
		H(x, z) :- G(x, z), B(x, z).
		H(x, z) :- H(x, y), A(y, z).
	`)
	for depth := 2; depth <= 3; depth++ {
		for i := 0; i < len(p.Rules); i++ {
			r := p.Rules[i]
			for k := range r.Body {
				nr := r.WithoutBodyAtom(k)
				if !nr.WellFormed() {
					continue
				}
				res, err := unfold.Partial(p, depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				patched, err := res.Patch(i, nr)
				if err != nil {
					t.Fatalf("rule %d atom %d depth %d: %v", i, k, depth, err)
				}
				fresh, err := unfold.Partial(p.ReplaceRule(i, nr), depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				if patched.Program.CanonicalString() != fresh.Program.CanonicalString() {
					t.Fatalf("rule %d atom %d depth %d: patched ≠ fresh\npatched:\n%s\nfresh:\n%s",
						i, k, depth, patched.Program, fresh.Program)
				}
			}
		}
	}
}

// TestPatchRejects covers the deltas Patch must refuse.
func TestPatchRejects(t *testing.T) {
	p := workload.TransitiveClosure()
	res, err := unfold.ToDepth(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	headChange := parser.MustParseProgram(`X(a, b) :- A(a, b).`).Rules[0]
	if _, err := res.Patch(0, headChange); err == nil {
		t.Fatal("head change accepted")
	}
	if _, err := res.Patch(99, p.Rules[0]); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	// A truncated result carries no graph.
	trunc, err := unfold.ToDepth(p, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Patchable() {
		t.Fatal("truncated result claims patchable")
	}
	if _, err := trunc.Patch(0, p.Rules[0]); err == nil {
		t.Fatal("truncated result accepted a patch")
	}
	var zero unfold.Result
	if _, err := zero.Patch(0, p.Rules[0]); err == nil {
		t.Fatal("zero result accepted a patch")
	}
}

// deletableRule picks a random rule whose head predicate has another rule,
// so the deletion keeps the intentional set — the delta shape PatchDelete
// absorbs. ok=false when no rule qualifies.
func deletableRule(q *ast.Program, rng *rand.Rand) (int, bool) {
	heads := make(map[string]int)
	for _, r := range q.Rules {
		heads[r.Head.Pred]++
	}
	for attempt := 0; attempt < 12; attempt++ {
		i := rng.Intn(len(q.Rules))
		if heads[q.Rules[i].Head.Pred] > 1 {
			return i, true
		}
	}
	return 0, false
}

// TestPatchDeleteMatchesFreshUnfold is the oracle property of the deletion
// patch: a Result carried through an interleaved chain of PatchDelete and
// Patch deltas is byte-identical (canonical program string) to a fresh
// unfolding of the final program, for both engines, and stays patchable.
func TestPatchDeleteMatchesFreshUnfold(t *testing.T) {
	kinds := []struct {
		name  string
		build func(*ast.Program, int, int) (unfold.Result, error)
	}{
		{"ToDepth", unfold.ToDepth},
		{"Partial", unfold.Partial},
	}
	for _, kind := range kinds {
		for seed := int64(0); seed < 40; seed++ {
			rng := rand.New(rand.NewSource(seed))
			q := workload.RandomProgram(rng, 3+rng.Intn(3))
			if q.Validate() != nil || q.HasNegation() {
				continue
			}
			for depth := 2; depth <= 3; depth++ {
				res, err := kind.build(q, depth, 0)
				if err != nil {
					t.Fatal(err)
				}
				cur := q
				for step := 0; step < 4 && res.Patchable() && len(cur.Rules) > 2; step++ {
					var next unfold.Result
					if step%2 == 0 {
						i, ok := deletableRule(cur, rng)
						if !ok {
							break
						}
						next, err = res.PatchDelete(i)
						if err != nil {
							t.Fatalf("%s seed %d depth %d step %d: delete: %v", kind.name, seed, depth, step, err)
						}
						cur = cur.WithoutRule(i)
					} else {
						i, nr, ok := weakenDelta(cur, rng)
						if !ok {
							break
						}
						next, err = res.Patch(i, nr)
						if err != nil {
							t.Fatalf("%s seed %d depth %d step %d: patch: %v", kind.name, seed, depth, step, err)
						}
						cur = cur.ReplaceRule(i, nr)
					}
					fresh, err := kind.build(cur, depth, 0)
					if err != nil {
						t.Fatal(err)
					}
					if got, want := next.Program.CanonicalString(), fresh.Program.CanonicalString(); got != want {
						t.Fatalf("%s seed %d depth %d step %d: patched ≠ fresh\npatched:\n%s\nfresh:\n%s\nprogram:\n%s",
							kind.name, seed, depth, step, got, want, cur)
					}
					if next.Complete != fresh.Complete {
						t.Fatalf("%s seed %d depth %d step %d: complete %v ≠ %v",
							kind.name, seed, depth, step, next.Complete, fresh.Complete)
					}
					res = next
				}
			}
		}
	}
}

// TestPatchDeleteLayered pins the deletion patch on the multi-SCC shape:
// deleting any one rule (the layered program keeps every head predicate
// two-ruled except none — all deletions are exercised) must re-layer the
// cascade exactly as a fresh unfolding of the shortened program.
func TestPatchDeleteLayered(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), B(z, z).
		G(x, z) :- G(x, y), G(y, z).
		H(x, z) :- G(x, z), B(x, z).
		H(x, z) :- H(x, y), A(y, z).
	`)
	for depth := 2; depth <= 3; depth++ {
		for i := 0; i < len(p.Rules); i++ {
			res, err := unfold.Partial(p, depth, 0)
			if err != nil {
				t.Fatal(err)
			}
			patched, err := res.PatchDelete(i)
			if err != nil {
				t.Fatalf("rule %d depth %d: %v", i, depth, err)
			}
			fresh, err := unfold.Partial(p.WithoutRule(i), depth, 0)
			if err != nil {
				t.Fatal(err)
			}
			if patched.Program.CanonicalString() != fresh.Program.CanonicalString() {
				t.Fatalf("rule %d depth %d: patched ≠ fresh\npatched:\n%s\nfresh:\n%s",
					i, depth, patched.Program, fresh.Program)
			}
		}
	}
}

// TestPatchDeleteRejects covers the deltas PatchDelete must refuse.
func TestPatchDeleteRejects(t *testing.T) {
	p := workload.TransitiveClosure()
	res, err := unfold.ToDepth(p, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.PatchDelete(99); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	// Deleting the last rule of a predicate changes the intentional set.
	layered := parser.MustParseProgram(`
		P(x, y) :- A(x, y).
		Q(x, y) :- P(x, y), B(x, y).
	`)
	lres, err := unfold.ToDepth(layered, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range layered.Rules {
		if _, err := lres.PatchDelete(i); err == nil {
			t.Fatalf("deleting the only rule of a predicate (rule %d) accepted", i)
		}
	}
	trunc, err := unfold.ToDepth(p, 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Complete {
		t.Fatal("expected truncated result")
	}
	if _, err := trunc.PatchDelete(0); err == nil {
		t.Fatal("truncated result accepted a deletion patch")
	}
}
