package unfold_test

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/equivopt"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/unfold"
	"repro/internal/workload"
)

func TestPartialDepth1IsOriginal(t *testing.T) {
	p := workload.TransitiveClosure()
	res, err := unfold.Partial(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != len(p.Rules) {
		t.Fatalf("partial depth 1: %v", res.Program)
	}
}

// TestPartialMatchesKRoundsWithIDBInput is the semantic core of Partial:
// Qⁿ(d) equals k naive rounds of P even when d holds IDB facts.
func TestPartialMatchesKRoundsWithIDBInput(t *testing.T) {
	p := workload.TransitiveClosure()
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		d := db.New()
		n := 3 + rng.Intn(4)
		for e := 0; e < n; e++ {
			d.Add(ast.NewGroundAtom("A", ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))))
			d.Add(ast.NewGroundAtom("G", ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))))
		}
		for k := 1; k <= 3; k++ {
			res, err := unfold.Partial(p, k, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Complete {
				t.Fatalf("partial unfolding truncated at k=%d", k)
			}
			got := eval.NonRecursive(res.Program, d)
			// k rounds of P, projected to newly derived facts.
			cur := d.Clone()
			for i := 0; i < k; i++ {
				cur.AddAll(eval.NonRecursive(p, cur))
			}
			want := db.New()
			for _, f := range cur.Facts() {
				if f.Pred == "G" {
					want.Add(f)
				}
			}
			// got excludes nothing of want except G facts already... Qⁿ(d)
			// contains every G derivable within k rounds; want additionally
			// holds input G facts. Compare on want minus input.
			for _, f := range want.Facts() {
				if d.Has(f) {
					continue
				}
				if !got.Has(f) {
					t.Fatalf("k=%d: missing %v\nQⁿ(d)=%v", k, f, got)
				}
			}
			// And soundness: everything in Qⁿ(d) is in P(d).
			full := eval.MustEval(p, d)
			if !full.Contains(got) {
				t.Fatalf("k=%d: Qⁿ(d) unsound", k)
			}
		}
	}
}

// depth2Program needs two rounds for the H witness: the guard H(x) in the
// recursive R rule is justified by the tgd R(x,y) -> H(x), whose proof
// requires both a two-round preliminary DB and two-round preservation.
func depth2Program() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x) :- G(x, y).
		R(x, z) :- A(x, q), B(x, z).
		R(x, z) :- R(x, y), B(y, z), H(x).
	`)
}

func TestNonRecursivelyAtDepth(t *testing.T) {
	p := depth2Program()
	tau := parser.MustParseTGD("R(x, y) -> H(x).")
	// Depth 1 fails: one application of the R-init rule yields R without H.
	v, _, err := preserve.Check(p, []ast.TGD{tau}, preserve.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.No {
		t.Fatalf("depth-1 preservation verdict %v, want no", v)
	}
	// Depth 2 succeeds: the two-round block derives H(x) from A(x,q).
	v, cex, err := preserve.Check(p, []ast.TGD{tau}, preserve.Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if v != chase.Yes {
		t.Fatalf("depth-2 preservation verdict %v (cex %v)", v, cex)
	}
}

func TestPipelineNeedsDepth2(t *testing.T) {
	// End to end: the guard H(x) in R's recursive rule is removable under
	// plain equivalence, but only a depth-2 pipeline can prove it.
	p := depth2Program()
	opt1, removals1, err := equivopt.Optimize(p, equivopt.Options{PrelimDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(removals1) != 0 || !opt1.Equal(p) {
		t.Fatalf("depth-1 pipeline should not fire: %+v", removals1)
	}
	opt2, removals2, err := equivopt.Optimize(p, equivopt.Options{PrelimDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(removals2) != 1 || removals2[0].Atoms[0].String() != "H(x)" {
		t.Fatalf("depth-2 pipeline removals: %+v\n%v", removals2, opt2)
	}
	// Soundness: same outputs on random EDBs.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		d := db.New()
		n := 2 + rng.Intn(4)
		for e := 0; e < 2*n; e++ {
			d.Add(ast.NewGroundAtom("A", ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))))
			d.Add(ast.NewGroundAtom("B", ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))))
		}
		o1 := eval.MustEval(p, d)
		o2 := eval.MustEval(opt2, d)
		if !o1.Equal(o2) {
			t.Fatalf("trial %d: depth-2 removal unsound on\n%s", trial, d)
		}
	}
}

func TestPartialErrors(t *testing.T) {
	if _, err := unfold.Partial(workload.TransitiveClosure(), 0, 0); err == nil {
		t.Fatal("depth 0 accepted")
	}
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := unfold.Partial(neg, 2, 0); err == nil {
		t.Fatal("negation accepted")
	}
}

func TestPartialTruncation(t *testing.T) {
	res, err := unfold.Partial(workload.TransitiveClosure(), 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("tiny cap reported complete")
	}
}
