package core_test

import (
	"fmt"
	"log"

	"repro/internal/ast"
	"repro/internal/core"
)

// ExampleEval reproduces the paper's Example 2: evaluating the transitive-
// closure program bottom-up.
func ExampleEval() {
	res, err := core.Parse(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		A(1, 2). A(1, 4). A(4, 1).
	`)
	if err != nil {
		log.Fatal(err)
	}
	out, _, err := core.Eval(res.Program, core.FromFacts(res.Facts), core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out.Len(), "facts")
	fmt.Println(out.Has(ast.NewGroundAtom("G", ast.Int(4), ast.Int(2))))
	// Output:
	// 9 facts
	// true
}

// ExampleMinimizeRule reproduces the paper's Examples 7–8: the Fig. 1
// algorithm removes the redundant atom A(w,y).
func ExampleMinimizeRule() {
	p, err := core.ParseProgram(`G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).`)
	if err != nil {
		log.Fatal(err)
	}
	min, trace, err := core.MinimizeRule(p.Rules[0], core.MinimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(min)
	fmt.Println("removed:", trace.AtomRemovals[0].Atom)
	// Output:
	// G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y).
	// removed: A(w, y)
}

// ExampleUniformlyContains reproduces Example 6: the right-linear
// transitive closure is uniformly contained in the doubled one, but not
// conversely.
func ExampleUniformlyContains() {
	p1, _ := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	p2, _ := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	ok, _, _ := core.UniformlyContains(p1, p2)
	fmt.Println("P2 ⊑ᵘ P1:", ok)
	ok, witness, _ := core.UniformlyContains(p2, p1)
	fmt.Println("P1 ⊑ᵘ P2:", ok, "— failing rule index:", witness)
	// Output:
	// P2 ⊑ᵘ P1: true
	// P1 ⊑ᵘ P2: false — failing rule index: 1
}

// ExampleEquivOptimize reproduces Example 18: the guard A(y,w) is
// redundant under plain equivalence, witnessed by a tgd found
// automatically.
func ExampleEquivOptimize() {
	p, _ := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	opt, removals, err := core.EquivOptimize(p, core.EquivOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(opt)
	fmt.Println("via:", removals[0].TGD)
	// Output:
	// G(x, z) :- A(x, z).
	// G(x, z) :- G(x, y), G(y, z).
	// via: G(y, z) -> A(y, w).
}

// ExampleMagicAnswer shows the magic-sets pipeline on a bound ancestor
// query.
func ExampleMagicAnswer() {
	res, _ := core.Parse(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Par(x, y), Anc(y, z).
		Par(1, 2). Par(2, 3). Par(3, 4). Par(7, 8).
	`)
	query := ast.NewAtom("Anc", ast.IntTerm(2), ast.Var("y"))
	ans, stats, err := core.MagicAnswer(res.Program, core.FromFacts(res.Facts), query, core.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(ans), "answers;", stats.DerivedFacts, "facts derived")
	// Output:
	// 2 answers; 5 facts derived
}

// ExamplePreserveCheck runs the Fig. 3 preservation procedure and the
// condition (3′) preliminary-DB test through the consolidated entry points,
// then carries the session across the Example 18 weakening with Derive.
func ExamplePreserveCheck() {
	p, _ := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	tgd, _ := core.ParseTGD("G(y, z) -> A(y, w).")
	v, _, _ := core.PreserveCheck(p, []core.TGD{tgd}, core.PreserveOptions{})
	fmt.Println("preserves non-recursively:", v)

	s, _ := core.NewPreserveSession(p)
	v, _, _ = s.CheckPreliminary([]core.TGD{tgd}, core.PreserveOptions{Depth: 2})
	fmt.Println("preliminary DB satisfies at depth 2:", v)

	// Accepting the deletion the tgd justifies yields a one-rule weakening;
	// Derive patches the session instead of rebuilding it.
	weak := p.Rules[1].WithoutBodyAtom(2)
	ds, _ := s.Derive(1, &weak)
	v, _, _ = ds.Check([]core.TGD{tgd}, core.PreserveOptions{})
	fmt.Println("weakened program preserves:", v)
	// Output:
	// preserves non-recursively: yes
	// preliminary DB satisfies at depth 2: yes
	// weakened program preserves: yes
}
