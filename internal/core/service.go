package core

import (
	"context"
	"sync"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/minimize"
	"repro/internal/preserve"
)

// This file is the session-oriented service layer of the facade: long-lived
// handles over program versions, built for servers that answer many requests
// against the same programs. A Service is a content-addressed registry of
// Sessions; a Session bundles the three per-program caches the library
// maintains — the prepared evaluation plan, the uniform-containment checker
// and the preservation session — behind one concurrency contract:
//
//   - Eval / EvalGoal are safe for any number of concurrent callers (the
//     Prepared plan is immutable);
//   - Minimize / ContainsRule / Contains / Preserve / PreservePreliminary
//     serialize on the session mutex (checkers and preservation sessions
//     are single-threaded state machines);
//   - Compare takes the two sessions' mutexes strictly sequentially (one
//     direction at a time, never nested), so any set of sessions can be
//     cross-compared from any number of goroutines without lock-order
//     deadlocks.
//
// Every method takes a context observed at round/combination boundaries; a
// cancelled request returns an error wrapping eval.ErrCanceled and never
// publishes partial verdicts into the shared plan/verdict stores.

// Snapshot is a frozen, immutable version of a database: readers may probe
// and index it lock-free, writers stage successors via Thaw (copy-on-write).
type Snapshot = db.Snapshot

// VerdictStoreStats is a point-in-time snapshot of the process-wide verdict
// store's size and hit counters.
type VerdictStoreStats = chase.StoreStats

// VerdictStats snapshots the process-wide verdict store. Safe to call
// concurrently with running sessions.
func VerdictStats() VerdictStoreStats { return chase.VerdictStoreStats() }

// ErrCanceled is the sentinel wrapped by every cancellation error the
// service layer returns; errors.Is(err, ErrCanceled) also implies
// errors.Is against the context's own cause (context.DeadlineExceeded or
// context.Canceled).
var ErrCanceled = eval.ErrCanceled

// ErrBudget is the sentinel returned when an evaluation exhausts its
// MaxDerived budget.
var ErrBudget = eval.ErrBudget

// Service is a registry of Sessions keyed by program content address:
// opening a program canonically equal to one already open returns the same
// Session, so every tenant querying the same program version shares one
// prepared plan, one containment session and one preservation session.
// A Service is safe for concurrent use.
type Service struct {
	cache *PlanCache     // nil = process-wide
	base  SessionOptions // defaults (Workers/Shards) for sessions it opens

	mu       sync.Mutex
	sessions map[string]*Session
}

// NewService returns an empty session registry. Sessions it opens prepare
// through the injected plan cache (SessionOptions), or the process-wide one,
// and inherit the options' Workers/Shards defaults.
func NewService(sess ...SessionOptions) *Service {
	o := sessionResolve(sess)
	return &Service{cache: o.PlanCache, base: o, sessions: make(map[string]*Session)}
}

// Open returns the Session for p, creating it on first use. Programs are
// identified by canonical form, so alpha-renamed or rule-reordered copies
// share a session.
func (sv *Service) Open(p *Program) (*Session, error) {
	key := p.CanonicalString()
	sv.mu.Lock()
	if s, ok := sv.sessions[key]; ok {
		sv.mu.Unlock()
		return s, nil
	}
	sv.mu.Unlock()
	// Prepare outside the registry lock: preparation can be expensive and
	// other programs' lookups must not wait on it. A racing Open of the
	// same program at worst prepares twice; the plan cache dedups the plan
	// and the registry keeps the first session inserted.
	s, err := NewSession(p, sv.base)
	if err != nil {
		return nil, err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if prior, ok := sv.sessions[key]; ok {
		return prior, nil
	}
	sv.sessions[key] = s
	return s, nil
}

// Len reports the number of open sessions.
func (sv *Service) Len() int {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return len(sv.sessions)
}

// TotalStats sums the accumulated evaluation statistics and accounted
// request counts of every open session — the service-wide counters a
// server's /statz endpoint reports. Each session's snapshot is read under
// its own stats lock, so the sum is race-free though not an atomic
// cross-session cut.
func (sv *Service) TotalStats() (EvalStats, uint64) {
	sv.mu.Lock()
	sessions := make([]*Session, 0, len(sv.sessions))
	for _, s := range sv.sessions {
		sessions = append(sessions, s)
	}
	sv.mu.Unlock()
	var tot EvalStats
	var n uint64
	for _, s := range sessions {
		st, evals := s.Stats()
		addStats(&tot, st)
		n += evals
	}
	return tot, n
}

// PlanCacheStats reports the counters of the plan cache this service's
// sessions actually prepare through: the cache injected at construction, or
// the process-wide default when none was.
func (sv *Service) PlanCacheStats() eval.CacheStats {
	if sv.cache != nil {
		return sv.cache.Stats()
	}
	return eval.DefaultPlanCache.Stats()
}

// Session is a long-lived handle over one program version: the prepared
// evaluation plan plus lazily built containment and preservation sessions.
// See the file comment for the concurrency contract.
type Session struct {
	prog  *Program
	cache *PlanCache
	base  EvalOptions // the options the session's default plan was prepared under
	prep  *Prepared

	mu sync.Mutex // serializes the single-threaded checker/preserve state
	ck *ContainmentChecker
	// ckLast / psLast are the checker's and preserve session's cumulative
	// counters at the last accounting, so each request folds only its own
	// delta into the totals. Guarded by s.mu like the sessions themselves.
	ckLast EvalStats
	ps     *PreserveSession
	psLast EvalStats

	// viewMu guards the session's default maintained view (view.go).
	viewMu sync.Mutex
	view   *View

	statsMu sync.Mutex
	total   EvalStats
	evals   uint64
}

// NewSession prepares p and returns a standalone session handle (servers
// normally go through Service.Open, which dedups by content address).
func NewSession(p *Program, sess ...SessionOptions) (*Session, error) {
	o := sessionResolve(sess)
	base := EvalOptions{Workers: o.Workers, Shards: o.Shards}
	prep, err := PrepareEval(p, base, SessionOptions{PlanCache: o.PlanCache})
	if err != nil {
		return nil, err
	}
	return &Session{prog: prep.Program(), cache: o.PlanCache, base: base, prep: prep}, nil
}

// Program returns the session's program (the prepared copy; callers must
// not mutate it).
func (s *Session) Program() *Program { return s.prog }

// Prepared returns the session's prepared plan for direct use.
func (s *Session) Prepared() *Prepared { return s.prep }

// Eval computes P(input) under ctx — EvalWith with zero options, the
// common case spelled short. Safe for concurrent callers; input is not
// modified (evaluate frozen snapshots via Snapshot.Thaw).
func (s *Session) Eval(ctx context.Context, input *Database) (*Database, EvalStats, error) {
	return s.EvalWith(ctx, input, EvalRequestOptions{})
}

// EvalRequestOptions tunes one evaluation request beyond the session's
// defaults: zero fields inherit the session's prepared values. Workers and
// Shards select a plan variant through the session's plan cache (the plan
// key includes both, so repeated tuned requests are lookups, not
// re-preparations); MaxDerived > 0 bounds the facts derived beyond the
// input, returning an error wrapping ErrBudget when exhausted.
type EvalRequestOptions struct {
	Workers    int
	Shards     int
	MaxDerived int
}

// EvalWith is the canonical evaluation request: every option-driven
// variation of Eval goes through here (the former Eval/EvalBudget/EvalWith
// triple collapsed to one entry point plus the Eval shorthand). Safe for
// concurrent callers: plan variants are immutable and the session's default
// plan is never replaced.
func (s *Session) EvalWith(ctx context.Context, input *Database, req EvalRequestOptions) (*Database, EvalStats, error) {
	prep := s.prep
	if (req.Workers != 0 && req.Workers != s.base.Workers) ||
		(req.Shards != 0 && req.Shards != s.base.Shards) {
		opts := s.base
		if req.Workers != 0 {
			opts.Workers = req.Workers
		}
		if req.Shards != 0 {
			opts.Shards = req.Shards
		}
		p, err := PrepareEval(s.prog, opts, SessionOptions{PlanCache: s.cache})
		if err != nil {
			return nil, EvalStats{}, err
		}
		prep = p
	}
	out, _, st, err := prep.EvalGoalCtx(ctx, input, nil, req.MaxDerived)
	s.account(st)
	return out, st, err
}

// Query evaluates under ctx and filters: the tuples of the query atom's
// relation that match its constants. Safe for concurrent callers.
func (s *Session) Query(ctx context.Context, input *Database, query Atom) ([][]Const, EvalStats, error) {
	out, st, err := s.Eval(ctx, input)
	if err != nil {
		return nil, st, err
	}
	var rows [][]Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]Const, len(g.Args))
		copy(t, g.Args)
		rows = append(rows, t)
		return true
	})
	return rows, st, nil
}

// Minimize runs Fig. 2 minimization of the session program under ctx. The
// containment session it builds prepares through the session's plan cache.
func (s *Session) Minimize(ctx context.Context, opts MinimizeOptions) (*Program, MinimizeTrace, error) {
	opts.Context = ctx
	if opts.PlanCache == nil {
		opts.PlanCache = s.cache
	}
	q, trace, err := minimize.Program(s.prog.Clone(), opts)
	s.account(trace.Stats)
	return q, trace, err
}

// checker lazily builds the containment session; callers hold s.mu.
func (s *Session) checker() (*ContainmentChecker, error) {
	if s.ck == nil {
		ck, err := chase.NewCheckerCache(s.prog, s.cache)
		if err != nil {
			return nil, err
		}
		s.ck = ck
	}
	return s.ck, nil
}

// ContainsRule decides r ⊑ᵘ P for the session program P. Serialized.
func (s *Session) ContainsRule(ctx context.Context, r Rule) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, err := s.checker()
	if err != nil {
		return false, err
	}
	ck.SetContext(ctx)
	defer ck.SetContext(nil)
	ok, err := ck.ContainsRule(r)
	s.accountChecker(ck)
	return ok, err
}

// Contains decides P₂ ⊑ᵘ P for the session program P; the int is the index
// of the first offending rule of p2 on failure, -1 on success. Serialized.
func (s *Session) Contains(ctx context.Context, p2 *Program) (bool, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck, err := s.checker()
	if err != nil {
		return false, -1, err
	}
	ck.SetContext(ctx)
	defer ck.SetContext(nil)
	ok, idx, err := ck.Contains(p2)
	s.accountChecker(ck)
	return ok, idx, err
}

// Compare decides uniform equivalence of the two sessions' programs. The
// two containment directions run strictly one after the other, each under
// its own session's mutex — never nested — so concurrent Compare calls
// over any session pairs cannot deadlock.
func (s *Session) Compare(ctx context.Context, other *Session) (bool, error) {
	ok, _, err := s.Contains(ctx, other.prog)
	if err != nil || !ok {
		return false, err
	}
	ok, _, err = other.Contains(ctx, s.prog)
	return ok, err
}

// preserveSession lazily builds the preservation session; callers hold s.mu.
func (s *Session) preserveSession() (*PreserveSession, error) {
	if s.ps == nil {
		ps, err := preserve.NewSessionCache(s.prog, s.cache)
		if err != nil {
			return nil, err
		}
		s.ps = ps
	}
	return s.ps, nil
}

// Preserve runs the Fig. 3 preservation check of the session program
// against tgds under ctx. Serialized.
func (s *Session) Preserve(ctx context.Context, tgds []TGD, opts PreserveOptions) (Verdict, *PreserveCounterexample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, err := s.preserveSession()
	if err != nil {
		return Unknown, nil, err
	}
	opts.Context = ctx
	v, cex, err := ps.Check(tgds, opts)
	s.accountPreserve(ps)
	return v, cex, err
}

// PreservePreliminary decides condition (3′) of Section X for the session
// program under ctx. Serialized.
func (s *Session) PreservePreliminary(ctx context.Context, tgds []TGD, opts PreserveOptions) (Verdict, *PreserveCounterexample, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ps, err := s.preserveSession()
	if err != nil {
		return Unknown, nil, err
	}
	opts.Context = ctx
	v, cex, err := ps.CheckPreliminary(tgds, opts)
	s.accountPreserve(ps)
	return v, cex, err
}

// accountChecker folds the checker's counters accumulated since the last
// accounting into the session totals; the caller holds s.mu.
func (s *Session) accountChecker(ck *ContainmentChecker) {
	cur := ck.Stats()
	s.account(statsDelta(cur, s.ckLast))
	s.ckLast = cur
}

// accountPreserve folds the preserve session's counters accumulated since
// the last accounting into the session totals; the caller holds s.mu.
func (s *Session) accountPreserve(ps *PreserveSession) {
	cur := ps.Stats()
	s.account(statsDelta(cur, s.psLast))
	s.psLast = cur
}

// statsDelta returns the field-wise difference cur − last of two cumulative
// counter snapshots.
func statsDelta(cur, last EvalStats) EvalStats {
	return EvalStats{
		Rounds:              cur.Rounds - last.Rounds,
		Firings:             cur.Firings - last.Firings,
		Added:               cur.Added - last.Added,
		PrepareHits:         cur.PrepareHits - last.PrepareHits,
		PrepareMisses:       cur.PrepareMisses - last.PrepareMisses,
		VerdictsReused:      cur.VerdictsReused - last.VerdictsReused,
		VerdictsRecomputed:  cur.VerdictsRecomputed - last.VerdictsRecomputed,
		VerdictsSubsumed:    cur.VerdictsSubsumed - last.VerdictsSubsumed,
		StrataStreamed:      cur.StrataStreamed - last.StrataStreamed,
		StrataMaterialized:  cur.StrataMaterialized - last.StrataMaterialized,
		BindingsPipelined:   cur.BindingsPipelined - last.BindingsPipelined,
		EarlyStopCuts:       cur.EarlyStopCuts - last.EarlyStopCuts,
		ShardRounds:         cur.ShardRounds - last.ShardRounds,
		DeltaExchanged:      cur.DeltaExchanged - last.DeltaExchanged,
		ShardImbalance:      cur.ShardImbalance - last.ShardImbalance,
		Applies:             cur.Applies - last.Applies,
		CountAdjusted:       cur.CountAdjusted - last.CountAdjusted,
		Overdeleted:         cur.Overdeleted - last.Overdeleted,
		Rederived:           cur.Rederived - last.Rederived,
		RelationsFrozen:     cur.RelationsFrozen - last.RelationsFrozen,
		FreezeSkipped:       cur.FreezeSkipped - last.FreezeSkipped,
		ChasesBudgetFree:    cur.ChasesBudgetFree - last.ChasesBudgetFree,
		ChasesBudgetBounded: cur.ChasesBudgetBounded - last.ChasesBudgetBounded,
	}
}

// addStats folds one stats snapshot into a running total, field family by
// field family (fixpoint, cache, streaming and sharding counters).
func addStats(dst *EvalStats, st EvalStats) {
	dst.Rounds += st.Rounds
	dst.Firings += st.Firings
	dst.Added += st.Added
	dst.AddCache(st)
	dst.AddStreaming(st)
	dst.AddSharding(st)
	dst.AddMaintain(st)
	dst.AddChase(st)
}

// account folds one request's stats into the session totals.
func (s *Session) account(st EvalStats) {
	s.statsMu.Lock()
	addStats(&s.total, st)
	s.evals++
	s.statsMu.Unlock()
}

// Stats returns the session's accumulated evaluation statistics and the
// number of accounted requests.
func (s *Session) Stats() (EvalStats, uint64) {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.total, s.evals
}
