package core_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ast"
	"repro/internal/core"
)

// serviceProgram has recursion, a redundant atom (for minimize) and several
// strata — enough structure for the shared-cache property test to exercise
// plans, verdicts and streaming paths.
const serviceProgram = `
	T(x,y) :- E(x,y).
	T(x,z) :- E(x,y), T(y,z).
	Reach(x) :- Src(x).
	Reach(y) :- Reach(x), E(x,y), E(x,y).
	Pair(x,y) :- Reach(x), Reach(y).
`

func serviceDB(n, seed int) *core.Database {
	d := core.NewDatabase()
	for i := 0; i < n; i++ {
		d.AddTuple("E", []core.Const{intc(i), intc((i*7 + seed) % n)})
	}
	d.AddTuple("Src", []core.Const{intc(seed % n)})
	return d
}

func intc(i int) core.Const { return ast.Int(int64(i)) }

// factsKey renders a database's facts as one sorted string — the byte
// identity the property test compares.
func factsKey(d *core.Database) string {
	facts := d.Facts()
	out := make([]string, len(facts))
	for i, f := range facts {
		out[i] = f.String()
	}
	sort.Strings(out)
	return strings.Join(out, "\n")
}

// TestSharedPlanCachePropertyMatchesIsolated is the satellite property
// test: N concurrent tenants sharing one PlanCache must produce results
// byte-identical to isolated-cache runs, across the strategy (Eval /
// EvalWith / Query) × worker × goal grid. Run under -race in CI.
func TestSharedPlanCachePropertyMatchesIsolated(t *testing.T) {
	prog, err := core.ParseProgram(serviceProgram)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	const iters = 6

	// Oracle: isolated cache per (worker, iter, strategy) — one-shot runs
	// that cannot share anything.
	type key struct{ w, i, strat int }
	want := make(map[key]string)
	for w := 0; w < workers; w++ {
		for i := 0; i < iters; i++ {
			for strat := 0; strat < 3; strat++ {
				sess, err := core.NewSession(prog, core.SessionOptions{PlanCache: core.NewPlanCache(4)})
				if err != nil {
					t.Fatal(err)
				}
				res, err := runStrategy(sess, strat, w, i)
				if err != nil {
					t.Fatal(err)
				}
				want[key{w, i, strat}] = res
			}
		}
	}

	// Shared: every worker drives one Service (one shared plan cache, one
	// session per program) concurrently.
	svc := core.NewService(core.SessionOptions{PlanCache: core.NewPlanCache(64)})
	shared, err := svc.Open(prog)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for strat := 0; strat < 3; strat++ {
					res, err := runStrategy(shared, strat, w, i)
					if err != nil {
						errs <- err
						return
					}
					if res != want[key{w, i, strat}] {
						errs <- fmt.Errorf("worker %d iter %d strat %d: shared-cache result diverged from isolated run", w, i, strat)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// runStrategy executes one (strategy, worker, iter) cell and returns a
// deterministic string rendering of the result.
func runStrategy(sess *core.Session, strat, w, i int) (string, error) {
	ctx := context.Background()
	input := serviceDB(12+i, w+1)
	switch strat {
	case 0:
		out, _, err := sess.Eval(ctx, input)
		if err != nil {
			return "", err
		}
		return factsKey(out), nil
	case 1:
		// A generous budget: results must still be the full model.
		out, _, err := sess.EvalWith(ctx, input, core.EvalRequestOptions{MaxDerived: 1 << 20})
		if err != nil {
			return "", err
		}
		return factsKey(out), nil
	default:
		rows, _, err := sess.Query(ctx, input, ast.NewAtom("T", ast.Var("x"), ast.Var("y")))
		if err != nil {
			return "", err
		}
		parts := make([]string, len(rows))
		for j, row := range rows {
			cells := make([]string, len(row))
			for k, c := range row {
				cells[k] = fmt.Sprint(c)
			}
			parts[j] = strings.Join(cells, ",")
		}
		sort.Strings(parts)
		return strings.Join(parts, "\n"), nil
	}
}

// TestSessionDeadlineTypedErrors pins the cancellation contract on every
// session verb: an already-expired deadline yields an error wrapping both
// core.ErrCanceled and context.DeadlineExceeded, and the session keeps
// serving correct results afterwards (the shared stores are not poisoned).
func TestSessionDeadlineTypedErrors(t *testing.T) {
	prog, err := core.ParseProgram(serviceProgram)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	input := serviceDB(16, 3)
	if _, _, err := sess.Eval(expired, input); !errors.Is(err, core.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Eval with expired deadline: err = %v, want ErrCanceled + DeadlineExceeded", err)
	}
	if _, _, err := sess.Minimize(expired, core.MinimizeOptions{}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Minimize with expired deadline: err = %v, want ErrCanceled", err)
	}
	if _, err := sess.ContainsRule(expired, prog.Rules[0]); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("ContainsRule with expired deadline: err = %v, want ErrCanceled", err)
	}
	tgd, err := core.ParseTGD("T(x,y), T(y,z) -> T(x,z).")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Preserve(expired, []core.TGD{tgd}, core.PreserveOptions{}); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("Preserve with expired deadline: err = %v, want ErrCanceled", err)
	}

	// The session still answers correctly after every cancellation.
	out, _, err := sess.Eval(context.Background(), input)
	if err != nil {
		t.Fatal(err)
	}
	oracle, _, err := core.Eval(prog, input, core.EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if factsKey(out) != factsKey(oracle) {
		t.Fatal("post-cancellation Eval diverged from the one-shot oracle")
	}
	ok, err := sess.ContainsRule(context.Background(), prog.Rules[0])
	if err != nil || !ok {
		t.Fatalf("post-cancellation ContainsRule = %v, %v; want true", ok, err)
	}

	// A MaxDerived request still returns the typed budget error.
	if _, _, err := sess.EvalWith(context.Background(), serviceDB(64, 1), core.EvalRequestOptions{MaxDerived: 3}); !errors.Is(err, core.ErrBudget) {
		t.Fatalf("EvalWith: err = %v, want ErrBudget", err)
	}
}

// TestSessionStatsAccountPreserve pins the accounting contract of the
// preservation verbs: Preserve and PreservePreliminary fold their chase
// rounds and plan-cache lookups into Session.Stats() like every other
// session verb, so session totals do not undercount preservation work.
func TestSessionStatsAccountPreserve(t *testing.T) {
	prog, err := core.ParseProgram("T(x,y) :- E(x,y).\nT(x,z) :- E(x,y), T(y,z).")
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(prog)
	if err != nil {
		t.Fatal(err)
	}
	tgd, err := core.ParseTGD("T(x,y), T(y,z) -> T(x,z).")
	if err != nil {
		t.Fatal(err)
	}

	before, evalsBefore := sess.Stats()
	if _, _, err := sess.Preserve(context.Background(), []core.TGD{tgd}, core.PreserveOptions{}); err != nil {
		t.Fatal(err)
	}
	mid, evalsMid := sess.Stats()
	if evalsMid != evalsBefore+1 {
		t.Fatalf("Preserve accounted %d requests, want 1", evalsMid-evalsBefore)
	}
	if mid.Rounds <= before.Rounds {
		t.Fatalf("Preserve accounted no chase rounds: %d -> %d", before.Rounds, mid.Rounds)
	}
	if mid.PrepareHits+mid.PrepareMisses <= before.PrepareHits+before.PrepareMisses {
		t.Fatal("Preserve accounted no plan-cache lookups")
	}

	if _, _, err := sess.PreservePreliminary(context.Background(), []core.TGD{tgd}, core.PreserveOptions{}); err != nil {
		t.Fatal(err)
	}
	after, evalsAfter := sess.Stats()
	if evalsAfter != evalsMid+1 {
		t.Fatalf("PreservePreliminary accounted %d requests, want 1", evalsAfter-evalsMid)
	}
	if after.Rounds <= mid.Rounds {
		t.Fatalf("PreservePreliminary accounted no chase rounds: %d -> %d", mid.Rounds, after.Rounds)
	}
}

// TestServiceOpenDedups pins content-addressed session sharing: opening an
// alpha-renamed copy returns the same session.
func TestServiceOpenDedups(t *testing.T) {
	svc := core.NewService()
	p1, err := core.ParseProgram("T(x,y) :- E(x,y).\nT(x,z) :- E(x,y), T(y,z).")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.ParseProgram("T(a,b) :- E(a,b).\nT(a,c) :- E(a,b), T(b,c).")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := svc.Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := svc.Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("alpha-renamed program did not share the session")
	}
	if svc.Len() != 1 {
		t.Fatalf("service has %d sessions, want 1", svc.Len())
	}
}

// TestSessionCompareConcurrent cross-compares sessions from many
// goroutines in both directions — the sequential (never nested) locking
// must not deadlock, and verdicts must be stable. Run under -race in CI.
func TestSessionCompareConcurrent(t *testing.T) {
	base := "T(x,y) :- E(x,y).\nT(x,z) :- E(x,y), T(y,z)."
	redundant := "T(x,y) :- E(x,y), E(x,y).\nT(x,z) :- E(x,y), T(y,z)."
	p1, err := core.ParseProgram(base)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.ParseProgram(redundant)
	if err != nil {
		t.Fatal(err)
	}
	svc := core.NewService()
	s1, err := svc.Open(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := svc.Open(p2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			a, b := s1, s2
			if g%2 == 1 {
				a, b = s2, s1
			}
			for i := 0; i < 4; i++ {
				eq, err := a.Compare(context.Background(), b)
				if err != nil {
					errs <- err
					return
				}
				if !eq {
					errs <- fmt.Errorf("goroutine %d: programs not equivalent", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
