package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/eval"
)

// Incremental view maintenance at the facade: a View is a materialized
// output kept consistent with its input under fact-level mutation batches
// (counting for non-recursive strata, delete-rederive for recursive ones —
// internal/eval/maintain.go). Sessions hand out views via Materialize and
// fold every Apply's work into their accounted totals, so /statz-style
// aggregation covers maintenance exactly like evaluation.

// DatabaseDelta is one batch of fact-level input mutations, set-semantics:
// retracting an absent fact and asserting a present one are no-ops, and a
// fact both retracted and asserted in one batch nets to "present".
type DatabaseDelta = eval.Delta

// DatabaseDiff is the exact net output change of one applied delta, in
// canonical (predicate, arguments) order.
type DatabaseDiff = eval.Diff

// MaintainOptions configures a maintained view (the ForceDRed ablation
// knob).
type MaintainOptions = eval.MaintainOptions

// View is a maintained materialization of the session's program over one
// input database. Apply is serialized on the view's own mutex; Output and
// Input return frozen databases that remain valid (as that version) across
// later Applies, so readers never block writers.
type View struct {
	s *Session

	mu      sync.Mutex
	m       *eval.Maintained
	version uint64
}

// Materialize evaluates the session program over input and returns a
// maintained view of the result. The returned handle is independent —
// callers maintaining several inputs (tenants) hold one View each — and it
// also becomes the session's default view, the one Session.Apply addresses.
func (s *Session) Materialize(ctx context.Context, input *Database, mo MaintainOptions) (*View, EvalStats, error) {
	m, st, err := s.prep.Materialize(ctx, input, mo)
	s.account(st)
	if err != nil {
		return nil, st, err
	}
	v := &View{s: s, m: m, version: 1}
	s.viewMu.Lock()
	s.view = v
	s.viewMu.Unlock()
	return v, st, nil
}

// View returns the session's default view: the most recently materialized
// one, or nil before any Materialize.
func (s *Session) View() *View {
	s.viewMu.Lock()
	defer s.viewMu.Unlock()
	return s.view
}

// Apply routes a mutation batch to the session's default view. Sessions
// maintaining several views apply through the View handles directly.
func (s *Session) Apply(ctx context.Context, delta DatabaseDelta) (DatabaseDiff, EvalStats, error) {
	v := s.View()
	if v == nil {
		return DatabaseDiff{}, EvalStats{}, fmt.Errorf("core: Session.Apply before Materialize: no maintained view")
	}
	return v.Apply(ctx, delta)
}

// Apply absorbs one mutation batch into the view's input, maintains the
// materialized output, and returns the exact net output diff in canonical
// order. Serialized per view; a failed Apply (cancellation) leaves the view
// on its previous version.
func (v *View) Apply(ctx context.Context, delta DatabaseDelta) (DatabaseDiff, EvalStats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	diff, st, err := v.m.Apply(ctx, delta)
	v.s.account(st)
	if err != nil {
		return DatabaseDiff{}, st, err
	}
	v.version++
	return diff, st, nil
}

// Output returns the current materialized output as a frozen database.
func (v *View) Output() *Database {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.m.Output()
}

// Input returns the view's current input database (frozen).
func (v *View) Input() *Database {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.m.Input()
}

// Version returns the view's version counter: 1 after Materialize,
// incremented by every successfully applied batch.
func (v *View) Version() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// Session returns the session the view maintains a program of.
func (v *View) Session() *Session { return v.s }
