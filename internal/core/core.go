// Package core is the public facade of the library: one import giving
// access to the paper's contributions and every substrate they stand on.
//
// The library reproduces Yehoshua Sagiv, "Optimizing Datalog Programs"
// (PODS 1987):
//
//   - Parse / ParseProgram / ParseTGD — the concrete Datalog syntax.
//   - PrepareEval / Eval / NonRecursive / PreliminaryDB — bottom-up
//     computation (Section III) and the auxiliary operators of
//     Sections IX–X; PrepareEval caches a program's evaluation plan for
//     repeated use.
//   - NewContainmentChecker / UniformlyContains / UniformlyEquivalent —
//     the decidable containment test of Section VI, as a reusable session
//     or one-shot.
//   - MinimizeRule / MinimizeProgram — the Figs. 1–2 minimization under
//     uniform equivalence (Section VII).
//   - ChaseApply / SATModelsContained — the combined [P,T] chase of
//     Section VIII.
//   - PreserveCheck / PreserveCheckPreliminary — the Fig. 3 procedure and
//     condition (3′) of Sections IX–X, at any unfolding depth.
//   - EquivOptimize — the Section XI optimization under plain equivalence.
//   - MagicRewrite / MagicAnswer — the magic-sets evaluation method the
//     optimizations compose with.
//   - Analyze / AnalyzeProgram — the multi-pass static analyzer behind
//     `datalog vet` (safety, stratifiability, redundancy, tgd sanity).
//
// A minimal session:
//
//	res, _ := core.Parse(`
//	    G(x, z) :- A(x, z).
//	    G(x, z) :- G(x, y), G(y, z), A(y, w).
//	    A(1, 2). A(2, 3).
//	`)
//	opt, removals, _ := core.EquivOptimize(res.Program, core.EquivOptions{})
//	prep, _ := core.PrepareEval(opt, core.EvalOptions{})
//	out, _, _ := prep.Eval(core.FromFacts(res.Facts))
package core

import (
	"repro/internal/analysis"
	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/equivopt"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/magic"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/rewrite"
	"repro/internal/topdown"
	"repro/internal/unfold"
)

// Re-exported core types.
type (
	// Program is a set of Datalog rules.
	Program = ast.Program
	// Rule is a single Horn clause.
	Rule = ast.Rule
	// Atom is an atomic formula.
	Atom = ast.Atom
	// TGD is a tuple-generating dependency.
	TGD = ast.TGD
	// GroundAtom is a fact.
	GroundAtom = ast.GroundAtom
	// Const is a constant value (integer, interned symbol, frozen constant,
	// or labeled null).
	Const = ast.Const
	// Database is a set of facts grouped into relations.
	Database = db.Database
	// ParseResult bundles the rules, facts, tgds and symbol table of a
	// parsed source.
	ParseResult = parser.Result
	// EvalOptions configures bottom-up evaluation.
	EvalOptions = eval.Options
	// EvalStats reports evaluation work.
	EvalStats = eval.Stats
	// Budget bounds potentially diverging chases.
	Budget = chase.Budget
	// Verdict is a three-valued chase outcome (Yes / No / Unknown).
	Verdict = chase.Verdict
	// MinimizeOptions configures Figs. 1–2 minimization.
	MinimizeOptions = minimize.Options
	// MinimizeTrace records what minimization removed.
	MinimizeTrace = minimize.Trace
	// EquivOptions configures the Section XI equivalence optimizer.
	EquivOptions = equivopt.Options
	// EquivRemoval records one equivalence-preserving deletion.
	EquivRemoval = equivopt.Removal
	// MagicRewritten is the output of the magic-sets transformation.
	MagicRewritten = magic.Rewritten
	// PreserveCounterexample witnesses a preservation failure.
	PreserveCounterexample = preserve.Counterexample
	// Prepared is a program prepared once for repeated evaluation: the
	// dependence-graph schedule, compiled rules and index plans are cached
	// and every Prepared.Eval reuses them.
	Prepared = eval.Prepared
	// ContainmentChecker is a uniform-containment session over a fixed
	// containing program: one prepared program serves every rule test, with
	// frozen bodies and verdicts memoized.
	ContainmentChecker = chase.Checker
	// PreserveSession is a preservation-checking session over a fixed
	// program, caching the prepared program and per-depth unfoldings.
	// Session.Derive patches all of that state across an accepted one-rule
	// delta instead of rebuilding it.
	PreserveSession = preserve.Session
	// PreserveOptions configures one preservation check (depth and chase
	// budget) — the consolidated form of the former
	// PreservesNonRecursively/…AtDepth entry-point pairs.
	PreserveOptions = preserve.Options
	// PlanCache is a content-addressed cache of prepared evaluation plans.
	PlanCache = eval.PlanCache
	// Diagnostic is one static-analysis finding: a stable code, a severity,
	// a source position and a message (internal/analysis).
	Diagnostic = analysis.Diagnostic
	// DiagnosticRelatedPos points a diagnostic at a second source location.
	DiagnosticRelatedPos = analysis.RelatedPos
	// DiagnosticSeverity classifies a finding (Info / Warning / Error).
	DiagnosticSeverity = analysis.Severity
	// AnalysisPass is one static analysis over a shared fact context.
	AnalysisPass = analysis.Pass
	// TerminationClass is where a tgd set sits on the chase-termination
	// ladder (weakly acyclic ⊂ jointly acyclic terminate; sticky and
	// weakly sticky have decidable query answering but unbounded chases).
	TerminationClass = depgraph.TerminationClass
	// TGDClassification is the full termination analysis of a rule + tgd
	// set: class, witnesses for the failed checks, and position ranks.
	TGDClassification = depgraph.Classification
)

// Verdict values.
const (
	Yes     = chase.Yes
	No      = chase.No
	Unknown = chase.Unknown
)

// Parse parses a source of rules, facts and tgds.
func Parse(src string) (*ParseResult, error) { return parser.Parse(src) }

// ParseProgram parses a source containing only rules.
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// ParseTGD parses a single tuple-generating dependency.
func ParseTGD(src string) (TGD, error) { return parser.ParseTGD(src) }

// ParseLoose parses a source without validating the program or its tgds,
// so ill-formed input reaches Analyze instead of being rejected.
func ParseLoose(src string) (*ParseResult, error) { return parser.ParseLoose(src) }

// Analyze runs the full static-analysis pass list (safety, stratifiability,
// arity/type consistency, reachability, style and θ-subsumption checks —
// internal/analysis) over a parsed source and returns positioned
// diagnostics in source order. Pair it with ParseLoose so ill-formed
// programs are diagnosed rather than rejected at parse time.
func Analyze(res *ParseResult) []Diagnostic { return analysis.Analyze(res) }

// AnalyzeProgram analyzes a programmatically built program (no facts or
// tgds; diagnostics carry no positions).
func AnalyzeProgram(p *Program) []Diagnostic { return analysis.AnalyzeProgram(p) }

// AnalysisHasErrors reports whether any diagnostic has Error severity —
// the condition under which `datalog vet` exits nonzero.
func AnalysisHasErrors(ds []Diagnostic) bool { return analysis.HasErrors(ds) }

// ClassifyTGDs runs the termination analysis of internal/depgraph over a
// program's rules and a tgd set: it builds the position dependency graph
// and walks the ladder weakly-acyclic → jointly-acyclic → sticky →
// weakly-sticky, returning the strongest class that holds plus the
// witnesses for the checks that failed. p may be nil (tgds alone).
func ClassifyTGDs(p *Program, tgds []TGD) TGDClassification {
	var rules []Rule
	if p != nil {
		rules = p.Rules
	}
	return depgraph.ClassifyTGDs(rules, tgds)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database { return db.New() }

// FromFacts builds a database from facts.
func FromFacts(facts []GroundAtom) *Database { return db.FromFacts(facts) }

// Eval computes P(input), the least model of p containing input
// (Section III). It is PrepareEval followed by one Prepared.Eval; callers
// evaluating the same program repeatedly should prepare once.
func Eval(p *Program, input *Database, opts EvalOptions) (*Database, EvalStats, error) {
	return eval.Eval(p, input, opts)
}

// SessionOptions configures session construction across the facade:
// PrepareEval, NewContainmentChecker and NewPreserveSession all take the
// same (optional, variadic for compatibility) options.
type SessionOptions struct {
	// PlanCache selects the cache that prepared plans are served from and
	// registered in; nil selects the process-wide cache. Tests and servers
	// isolate or shard cache footprints by injecting their own — sessions
	// built over the same cache share delta-patched plans by content
	// address.
	PlanCache *PlanCache
	// Workers sets the default evaluation parallelism for sessions built
	// with these options (0 = the library default). Shards sets the default
	// shard count for the sharded round executor (0 or 1 = unsharded).
	// Sessions prepare their plan under these values — the plan key includes
	// both — and per-request overrides (Session.EvalWith) resolve plan
	// variants through the same cache.
	Workers int
	Shards  int
}

// sessionCache resolves the variadic options to a plan cache (nil = the
// process-wide default, which each layer substitutes itself).
func sessionCache(opts []SessionOptions) *PlanCache {
	for _, o := range opts {
		if o.PlanCache != nil {
			return o.PlanCache
		}
	}
	return nil
}

// sessionResolve folds the variadic options into one: the first non-nil
// plan cache and the first nonzero Workers/Shards win.
func sessionResolve(opts []SessionOptions) SessionOptions {
	var r SessionOptions
	for _, o := range opts {
		if r.PlanCache == nil {
			r.PlanCache = o.PlanCache
		}
		if r.Workers == 0 {
			r.Workers = o.Workers
		}
		if r.Shards == 0 {
			r.Shards = o.Shards
		}
	}
	return r
}

// NewPlanCache returns an isolated plan cache holding at most max plans
// (max ≤ 0 selects the default capacity), for injection via SessionOptions.
func NewPlanCache(max int) *PlanCache { return eval.NewPlanCache(max) }

// PrepareEval validates p once and caches its evaluation plan (strata/SCC
// schedule, compiled rules, index needs); the returned Prepared evaluates
// any number of databases without re-planning and is safe for concurrent
// use. Plans are served from the process-wide content-addressed cache — or
// the cache injected via SessionOptions — so preparing a program
// canonically equal to one seen before is a lookup.
func PrepareEval(p *Program, opts EvalOptions, sess ...SessionOptions) (*Prepared, error) {
	if pc := sessionCache(sess); pc != nil {
		return pc.Prepare(p, opts)
	}
	return eval.PrepareCached(p, opts)
}

// PlanCacheStats reports the process-wide plan cache's hit/miss/eviction
// counters and current size.
func PlanCacheStats() eval.CacheStats {
	return eval.DefaultPlanCache.Stats()
}

// NewContainmentChecker opens a uniform-containment session whose
// containing program is p1: Checker.ContainsRule and Checker.Contains
// decide r ⊑ᵘ P₁ and P₂ ⊑ᵘ P₁ reusing one prepared program, memoized
// frozen bodies and memoized verdicts across calls. Checker.Derive patches
// the session across a one-rule delta.
func NewContainmentChecker(p1 *Program, sess ...SessionOptions) (*ContainmentChecker, error) {
	return chase.NewCheckerCache(p1, sessionCache(sess))
}

// NewPreserveSession opens a preservation-checking session over p for
// repeated Check / CheckPreliminary tests against different tgd sets;
// Session.Derive patches the session across an accepted one-rule delta.
func NewPreserveSession(p *Program, sess ...SessionOptions) (*PreserveSession, error) {
	return preserve.NewSessionCache(p, sessionCache(sess))
}

// NonRecursive computes Pⁿ(d), the one-step application of Section IX.
func NonRecursive(p *Program, d *Database) *Database { return eval.NonRecursive(p, d) }

// PreliminaryDB computes the preliminary DB ⟨d, Pⁱ(d)⟩ of Section X.
func PreliminaryDB(p *Program, edb *Database) *Database { return eval.PreliminaryDB(p, edb) }

// IsModel reports whether d is a model of p (Section IV).
func IsModel(p *Program, d *Database) bool { return eval.IsModel(p, d) }

// UniformlyContains decides P₂ ⊑ᵘ P₁ (Section VI); the int is the index of
// the first offending rule of p2 on failure, -1 on success.
func UniformlyContains(p1, p2 *Program) (bool, int, error) {
	return chase.UniformlyContains(p1, p2)
}

// UniformlyEquivalent decides P₁ ≡ᵘ P₂ (Section VI).
func UniformlyEquivalent(p1, p2 *Program) (bool, error) {
	return chase.UniformlyEquivalent(p1, p2)
}

// MinimizeRule minimizes one rule under uniform equivalence (Fig. 1).
func MinimizeRule(r Rule, opts MinimizeOptions) (Rule, MinimizeTrace, error) {
	return minimize.Rule(r, opts)
}

// MinimizeProgram minimizes a program under uniform equivalence (Fig. 2).
func MinimizeProgram(p *Program, opts MinimizeOptions) (*Program, MinimizeTrace, error) {
	return minimize.Program(p, opts)
}

// ChaseApply computes [P, T](d), the combined program/tgd closure of
// Section VIII, within the budget.
func ChaseApply(p *Program, tgds []TGD, d *Database, budget Budget) (chase.Result, error) {
	return chase.Apply(p, tgds, d, budget)
}

// SATModelsContained decides SAT(T) ∩ M(P₁) ⊆ M(P₂) (Section VIII).
func SATModelsContained(p1 *Program, tgds []TGD, p2 *Program, budget Budget) (Verdict, error) {
	return chase.SATModelsContained(p1, tgds, p2, budget)
}

// PreserveCheck runs the Fig. 3 preservation procedure of Section IX,
// generalized by opts.Depth to k-round blocks (Section X's closing remark).
func PreserveCheck(p *Program, tgds []TGD, opts PreserveOptions) (Verdict, *PreserveCounterexample, error) {
	return preserve.Check(p, tgds, opts)
}

// PreserveCheckPreliminary decides condition (3′) of Section X against the
// depth-opts.Depth preliminary DB.
func PreserveCheckPreliminary(p *Program, tgds []TGD, opts PreserveOptions) (Verdict, *PreserveCounterexample, error) {
	return preserve.CheckPreliminary(p, tgds, opts)
}

// EquivOptimize runs the Section XI optimization under plain equivalence.
func EquivOptimize(p *Program, opts EquivOptions) (*Program, []EquivRemoval, error) {
	return equivopt.Optimize(p, opts)
}

// MagicRewrite performs the magic-sets transformation for a query atom.
func MagicRewrite(p *Program, query Atom) (*MagicRewritten, error) {
	return magic.Rewrite(p, query)
}

// MagicAnswer answers a query via the magic-sets rewriting.
func MagicAnswer(p *Program, edb *Database, query Atom, opts EvalOptions) ([][]Const, magic.Stats, error) {
	return magic.Answer(p, edb, query, opts)
}

// DirectAnswer answers a query by full evaluation plus filtering — the
// baseline against which magic evaluation is compared.
func DirectAnswer(p *Program, edb *Database, query Atom, opts EvalOptions) ([][]Const, magic.Stats, error) {
	return magic.DirectAnswer(p, edb, query, opts)
}

// --- Extensions beyond the paper's core (see DESIGN.md S16–S21) -----------

// MinimizeStratified minimizes a program with stratified negation (the
// Section XII extension) via the encoding documented in internal/minimize.
func MinimizeStratified(p *Program, opts MinimizeOptions) (*Program, MinimizeTrace, error) {
	return minimize.StratifiedProgram(p, opts)
}

// UniformlyContainsRuleCertified is UniformlyContainsRule returning a
// machine-checkable derivation certificate on success.
func UniformlyContainsRuleCertified(p *Program, r Rule) (bool, *chase.Certificate, *explain.Derivation, error) {
	return chase.UniformlyContainsRuleCertified(p, r)
}

// UnfoldToDepth expresses k rounds of p as a non-recursive EDB-bodied
// program (Section X's remark; internal/unfold).
func UnfoldToDepth(p *Program, k, maxRules int) (unfold.Result, error) {
	return unfold.ToDepth(p, k, maxRules)
}

// Incremental maintains a computed output under fact insertion
// (internal/eval; pure Datalog only).
func Incremental(p *Program, out *Database, newFacts []GroundAtom, opts EvalOptions) (*Database, EvalStats, error) {
	return eval.Incremental(p, out, newFacts, opts)
}

// NewTopDown builds a tabled top-down engine over p and edb.
func NewTopDown(p *Program, edb *Database) (*topdown.Engine, error) {
	return topdown.New(p, edb)
}

// NewProver evaluates p on input while recording provenance; use
// Prover.Explain for derivation trees.
func NewProver(p *Program, input *Database) (*explain.Prover, error) {
	return explain.NewProver(p, input)
}

// UnfoldRuleAtom applies single-step rule unfolding (internal/rewrite).
func UnfoldRuleAtom(p *Program, ruleIdx, atomIdx int) (*Program, error) {
	return rewrite.UnfoldAtom(p, ruleIdx, atomIdx)
}

// RemoveUnreachable prunes rules that cannot contribute to queryPred.
func RemoveUnreachable(p *Program, queryPred string) *Program {
	return rewrite.RemoveUnreachable(p, queryPred)
}

// RemoveUnfounded prunes rules that can never fire on any EDB input.
func RemoveUnfounded(p *Program) *Program {
	return rewrite.RemoveUnfounded(p)
}

// PipelineOptions configures OptimizeForQuery.
type PipelineOptions struct {
	// Minimize runs Fig. 2 minimization (default on when zero-valued
	// options are used via DefaultPipeline).
	Minimize bool
	// EquivOpt runs the Section XI optimization under plain equivalence.
	EquivOpt bool
	// Prune removes unfounded rules and rules unreachable from the query.
	Prune bool
	// Magic applies the magic-sets rewriting for the query as the final
	// step.
	Magic bool
	// MinimizeOptions and EquivOptions configure the respective passes.
	MinimizeOptions MinimizeOptions
	EquivOptions    EquivOptions
}

// DefaultPipeline enables every pass.
func DefaultPipeline() PipelineOptions {
	return PipelineOptions{Minimize: true, EquivOpt: true, Prune: true, Magic: true}
}

// PipelineResult reports what OptimizeForQuery did.
type PipelineResult struct {
	// Program is the optimized program. When Magic ran it is the rewritten
	// program and Rewritten is non-nil; evaluate it over the EDB plus
	// Rewritten.Seed and read answers from Rewritten.Query.
	Program *Program
	// Rewritten is the magic transformation output (nil if Magic was off).
	Rewritten *MagicRewritten
	// RulesRemoved counts rules dropped by pruning and minimization.
	RulesRemoved int
	// AtomsRemoved counts body atoms dropped by minimization and the
	// equivalence optimizer.
	AtomsRemoved int
}

// OptimizeForQuery runs the repository's full optimization pipeline for a
// query: unfounded/unreachable pruning, Fig. 2 minimization, the
// Section XI equivalence optimization, and the magic-sets rewriting — the
// composition the paper's introduction motivates ("removing redundant
// parts can only speed up the [magic set] computation").
func OptimizeForQuery(p *Program, query Atom, opts PipelineOptions) (*PipelineResult, error) {
	cur := p.Clone()
	res := &PipelineResult{}

	if opts.Prune {
		before := len(cur.Rules)
		cur = rewrite.RemoveUnfounded(cur)
		cur = rewrite.RemoveUnreachable(cur, query.Pred)
		res.RulesRemoved += before - len(cur.Rules)
	}
	if opts.Minimize {
		min, trace, err := minimize.Program(cur, opts.MinimizeOptions)
		if err != nil {
			return nil, err
		}
		cur = min
		res.RulesRemoved += trace.RulesRemoved()
		res.AtomsRemoved += trace.AtomsRemoved()
	}
	if opts.EquivOpt {
		opt, removals, err := equivopt.Optimize(cur, opts.EquivOptions)
		if err != nil {
			return nil, err
		}
		cur = opt
		for _, r := range removals {
			res.AtomsRemoved += len(r.Atoms)
		}
	}
	if opts.Magic {
		rw, err := magic.Rewrite(cur, query)
		if err != nil {
			return nil, err
		}
		res.Rewritten = rw
		res.Program = rw.Program
		return res, nil
	}
	res.Program = cur
	return res, nil
}

// StratifiedUniformlyContains is the conservative stratified-negation
// extension of UniformlyContains (Section XII direction; see
// internal/chase for the encoding and its soundness argument).
func StratifiedUniformlyContains(p1, p2 *Program) (bool, int, error) {
	return chase.StratifiedUniformlyContains(p1, p2)
}

// NewCountingProver evaluates p on input recording every justification,
// for derivation counting (why-provenance); see internal/explain.
func NewCountingProver(p *Program, input *Database) (*explain.CountingProver, error) {
	return explain.NewCountingProver(p, input)
}

// MagicAnswerStratified answers a query through the magic rewriting for
// programs with stratified negation: strata below the query are
// materialized bottom-up, the query's stratum is magic-rewritten with its
// negation checks kept against the complete lower relations.
func MagicAnswerStratified(p *Program, edb *Database, query Atom, opts EvalOptions) ([][]Const, magic.Stats, error) {
	return magic.AnswerStratified(p, edb, query, opts)
}
