package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestSessionMaterializeApply(t *testing.T) {
	p, err := core.ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	input := core.FromFacts([]core.GroundAtom{
		{Pred: "A", Args: []core.Const{1, 2}},
		{Pred: "A", Args: []core.Const{2, 3}},
	})
	view, _, err := sess.Materialize(context.Background(), input, core.MaintainOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if view.Version() != 1 || sess.View() != view {
		t.Fatalf("version=%d, default view mismatch", view.Version())
	}
	if !view.Output().Has(core.GroundAtom{Pred: "G", Args: []core.Const{1, 3}}) {
		t.Fatal("missing G(1,3)")
	}

	// Session.Apply routes to the default view and returns the exact diff.
	diff, _, err := sess.Apply(context.Background(), core.DatabaseDelta{
		Retract: []core.GroundAtom{{Pred: "A", Args: []core.Const{2, 3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Removed) != 3 || len(diff.Added) != 0 {
		t.Fatalf("diff = %+v, want A(2,3), G(2,3), G(1,3) removed", diff)
	}
	if view.Output().Has(core.GroundAtom{Pred: "G", Args: []core.Const{1, 3}}) {
		t.Fatal("G(1,3) survived the cut")
	}
	if view.Version() != 2 {
		t.Fatalf("version = %d, want 2", view.Version())
	}
	// Maintenance work is folded into the session's accounted totals.
	st, n := sess.Stats()
	if st.Applies != 1 || n < 2 {
		t.Fatalf("stats = %+v requests = %d, want Applies=1 and >=2 requests", st, n)
	}
}

func TestSessionApplyBeforeMaterialize(t *testing.T) {
	p, err := core.ParseProgram(`P(x) :- E(x).`)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := core.NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Apply(context.Background(), core.DatabaseDelta{}); err == nil {
		t.Fatal("Apply before Materialize succeeded")
	}
}
