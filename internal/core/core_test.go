package core

import (
	"testing"

	"repro/internal/ast"
)

// TestEndToEndPipeline exercises the whole facade on the paper's running
// example: parse, minimize under uniform equivalence, optimize under plain
// equivalence, evaluate, and answer a magic query — the full life of a
// Datalog program in this library.
func TestEndToEndPipeline(t *testing.T) {
	res, err := Parse(`
		% Example 11's P1 plus an injected redundant rule.
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
		G(u, w) :- A(u, w), A(u, v).
		A(1, 2). A(2, 3). A(3, 4).
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program

	// Fig. 2: the third rule is redundant under uniform equivalence.
	min, trace, err := MinimizeProgram(p, MinimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.RulesRemoved() != 1 || len(min.Rules) != 2 {
		t.Fatalf("minimization: %+v\n%v", trace, min)
	}

	// Section XI: A(y,w) is redundant under plain equivalence.
	opt, removals, err := EquivOptimize(min, EquivOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 1 {
		t.Fatalf("equivalence optimization removed %d atoms", len(removals))
	}

	// The optimized program computes the same transitive closure.
	edb := FromFacts(res.Facts)
	out1, _, err := Eval(p, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Eval(opt, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Equal(out2) {
		t.Fatalf("optimized program differs:\n%v\nvs\n%v", out1, out2)
	}

	// Magic query through the optimized program.
	q, err := ParseTGD("G(x, z) -> A(x, w).")
	if err != nil {
		t.Fatal(err)
	}
	_ = q
	query := ast.NewAtom("G", ast.IntTerm(1), ast.Var("y"))
	magicAns, _, err := MagicAnswer(opt, edb, query, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(opt, edb, query, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(magicAns) != len(directAns) || len(magicAns) != 3 {
		t.Fatalf("magic %d vs direct %d answers", len(magicAns), len(directAns))
	}
}

func TestFacadeUniformContainment(t *testing.T) {
	p1, err := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err := UniformlyContains(p1, p2)
	if err != nil || !ok {
		t.Fatalf("containment: %v %v", ok, err)
	}
	eq, err := UniformlyEquivalent(p1, p2)
	if err != nil || eq {
		t.Fatalf("equivalence: %v %v", eq, err)
	}
}

func TestFacadeChaseAndPreservation(t *testing.T) {
	p, err := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	if err != nil {
		t.Fatal(err)
	}
	tgd, err := ParseTGD("G(x, z) -> A(x, w).")
	if err != nil {
		t.Fatal(err)
	}
	v, cex, err := PreserveCheck(p, []TGD{tgd}, PreserveOptions{})
	if err != nil || v != Yes {
		t.Fatalf("preservation: %v %v %v", v, cex, err)
	}
	v, cex, err = PreserveCheckPreliminary(p, []TGD{tgd}, PreserveOptions{})
	if err != nil || v != Yes {
		t.Fatalf("preliminary: %v %v %v", v, cex, err)
	}
	p2, _ := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	v, err = SATModelsContained(p, []TGD{tgd}, p2, Budget{})
	if err != nil || v != Yes {
		t.Fatalf("SAT containment: %v %v", v, err)
	}
}

func TestFacadeEvalHelpers(t *testing.T) {
	res, err := Parse(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		A(1, 2). A(2, 3).
	`)
	if err != nil {
		t.Fatal(err)
	}
	edb := FromFacts(res.Facts)
	prelim := PreliminaryDB(res.Program, edb)
	if prelim.Len() != 4 {
		t.Fatalf("preliminary DB: %v", prelim)
	}
	pn := NonRecursive(res.Program, prelim)
	if !pn.Has(ast.NewGroundAtom("G", ast.Int(1), ast.Int(3))) {
		t.Fatalf("Pⁿ: %v", pn)
	}
	out, _, err := Eval(res.Program, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !IsModel(res.Program, out) {
		t.Fatal("output not a model")
	}
	rw, err := MagicRewrite(res.Program, ast.NewAtom("G", ast.IntTerm(1), ast.Var("y")))
	if err != nil {
		t.Fatal(err)
	}
	if rw.Query.Pred != "G@bf" {
		t.Fatalf("magic rewrite: %v", rw.Query)
	}
	db2 := NewDatabase()
	if db2.Len() != 0 {
		t.Fatal("NewDatabase not empty")
	}
}

func TestFacadeExtensions(t *testing.T) {
	p, err := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, y), G(y, z).
		Dead(x) :- Nothing(x, y), A(y, x).
		Nothing(x, y) :- Nothing(y, x).
	`)
	if err != nil {
		t.Fatal(err)
	}

	pruned := RemoveUnfounded(p)
	if len(pruned.Rules) != 2 {
		t.Fatalf("RemoveUnfounded: %v", pruned)
	}
	reach := RemoveUnreachable(p, "G")
	if len(reach.Rules) != 2 {
		t.Fatalf("RemoveUnreachable: %v", reach)
	}
	unf, err := UnfoldRuleAtom(pruned, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(unf.Rules) != 3 {
		t.Fatalf("UnfoldRuleAtom: %v", unf)
	}

	res, err := UnfoldToDepth(pruned, 2, 0)
	if err != nil || !res.Complete {
		t.Fatalf("UnfoldToDepth: %v %v", res, err)
	}

	ok, cert, deriv, err := UniformlyContainsRuleCertified(pruned, unf.Rules[1])
	if err != nil || !ok || cert == nil || deriv == nil {
		t.Fatalf("certified containment: %v %v", ok, err)
	}

	// Incremental + top-down + prover round trip.
	edb := NewDatabase()
	edb.AddTuple("A", []Const{1, 2})
	out, _, err := Eval(pruned, edb, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out2, _, err := Incremental(pruned, out, []GroundAtom{{Pred: "A", Args: []Const{2, 3}}}, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Has(GroundAtom{Pred: "G", Args: []Const{1, 3}}) {
		t.Fatalf("Incremental missed G(1,3): %v", out2)
	}
	eng, err := NewTopDown(pruned, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(ast.NewAtom("G", ast.IntTerm(1), ast.Var("y")))
	if err != nil || len(ans) != 1 {
		t.Fatalf("topdown: %v %v", ans, err)
	}
	prover, err := NewProver(pruned, edb)
	if err != nil {
		t.Fatal(err)
	}
	if _, okp := prover.Explain(GroundAtom{Pred: "G", Args: []Const{1, 2}}); !okp {
		t.Fatal("prover failed")
	}
}

func TestFacadeStratifiedAndDepth(t *testing.T) {
	p, err := ParseProgram(`
		Reach(x) :- Src(x).
		Unreach(x) :- Node(x), !Reach(x), !Reach(x).
	`)
	if err != nil {
		t.Fatal(err)
	}
	min, trace, err := MinimizeStratified(p, MinimizeOptions{})
	if err != nil || trace.AtomsRemoved() != 1 {
		t.Fatalf("stratified minimize: %v %v", trace, err)
	}
	_ = min

	p2, _ := ParseProgram(`
		G(x, z) :- A(x, z).
		H(x) :- G(x, y).
	`)
	tgd, _ := ParseTGD("G(x, z) -> H(x).")
	v, _, err := PreserveCheckPreliminary(p2, []TGD{tgd}, PreserveOptions{Depth: 2})
	if err != nil || v != Yes {
		t.Fatalf("depth-2 prelim: %v %v", v, err)
	}
	v, _, err = PreserveCheck(p2, []TGD{tgd}, PreserveOptions{Depth: 2})
	if err != nil || v != Yes {
		t.Fatalf("depth-2 preserve: %v %v", v, err)
	}
}

func TestOptimizeForQuery(t *testing.T) {
	p, err := ParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
		Junk(x) :- NeverDerivable(x, y).
		NeverDerivable(x, y) :- NeverDerivable(y, x).
	`)
	if err != nil {
		t.Fatal(err)
	}
	query := ast.NewAtom("G", ast.IntTerm(1), ast.Var("y"))
	res, err := OptimizeForQuery(p, query, DefaultPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesRemoved != 2 {
		t.Fatalf("pruned %d rules, want 2", res.RulesRemoved)
	}
	if res.AtomsRemoved != 1 { // the Example 11 guard
		t.Fatalf("removed %d atoms, want 1", res.AtomsRemoved)
	}
	if res.Rewritten == nil {
		t.Fatal("magic rewriting missing")
	}

	// The optimized pipeline answers the query identically to direct eval.
	edb := NewDatabase()
	for i := int64(1); i <= 6; i++ {
		edb.AddTuple("A", []Const{ast.Int(i), ast.Int(i + 1)})
	}
	in := edb.Clone()
	in.Add(res.Rewritten.Seed)
	out, _, err := Eval(res.Program, in, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := DirectAnswer(p, edb, query, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Answers are the adorned facts matching the query PATTERN — the
	// adorned relation also tables subquery answers (e.g. G@bf(2, ·)).
	count := 0
	for _, f := range out.Facts() {
		if f.Pred == res.Rewritten.Query.Pred && f.Args[0] == ast.Int(1) {
			count++
		}
	}
	if count != len(direct) {
		t.Fatalf("pipeline answers %d, direct %d", count, len(direct))
	}

	// Magic off: plain optimized program comes back.
	opts := DefaultPipeline()
	opts.Magic = false
	res2, err := OptimizeForQuery(p, query, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Rewritten != nil || len(res2.Program.Rules) != 2 {
		t.Fatalf("non-magic pipeline: %v", res2.Program)
	}
}

func TestFacadeStratifiedMagic(t *testing.T) {
	res, err := Parse(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x) :- Node(x), !Reach(x).
		Src(1). E(1, 2). Node(2). Node(9).
	`)
	if err != nil {
		t.Fatal(err)
	}
	edb := FromFacts(res.Facts)
	query := ast.NewAtom("Dead", ast.Var("x"))
	got, _, err := MagicAnswerStratified(res.Program, edb, query, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != ast.Int(9) {
		t.Fatalf("stratified magic answers: %v", got)
	}
}
