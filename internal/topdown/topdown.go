// Package topdown implements a tabled top-down (query/subquery-style)
// evaluation engine: the goal-directed strategy of the literature the
// paper's introduction surveys (Henschen–Naqvi, Vieille's QSQ), and the
// operational mirror of the magic-sets rewriting in internal/magic. A
// query spawns subgoals — predicate + binding pattern + bound values —
// whose answer tables are filled to a simultaneous fixpoint; recursion
// through the same subgoal is handled by iterating passes until no table
// grows, which terminates because Datalog generates finitely many subgoals
// and answers over a finite constant domain.
package topdown

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/eval"
)

// Stats reports the work a query performed.
type Stats struct {
	// Subgoals is the number of distinct (predicate, pattern, values)
	// tables created.
	Subgoals int
	// Answers is the total number of answers across all tables.
	Answers int
	// Passes is the number of global fixpoint passes.
	Passes int
}

// Engine evaluates queries top-down with tabling against a fixed program
// and EDB. With stratified negation, the strata below the query are
// materialized bottom-up once (negation needs complete relations), and
// only the remaining positive rules run goal-directed; negated literals
// check absence against the materialized base.
type Engine struct {
	program *ast.Program
	edb     *db.Database
	idb     map[string]bool
	tables  map[string]*table
	order   []string // table keys in creation order, for deterministic passes
	// materialized holds predicates whose full relation already lives in
	// edb (lower strata of a stratified program); they are answered like
	// extensional predicates.
	materialized map[string]bool
}

// table is the answer set of one subgoal.
type table struct {
	pred    string
	cols    []int
	vals    []ast.Const
	answers *db.Database // relation `pred` holding the ground answers
}

// New builds an engine. Pure Datalog runs fully goal-directed. With
// stratified negation, every stratum except the last is evaluated
// bottom-up into the engine's base (negated predicates must be complete),
// and the final stratum's rules run goal-directed on top.
func New(p *ast.Program, edb *db.Database) (*Engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.HasNegation() {
		return &Engine{
			program:      p,
			edb:          edb,
			idb:          p.IDBPredicates(),
			tables:       make(map[string]*table),
			materialized: map[string]bool{},
		}, nil
	}
	strata, err := depgraph.Strata(p)
	if err != nil {
		return nil, err
	}
	// Split rules: every stratum but the last is materialized bottom-up.
	lastStratum := map[string]bool{}
	for _, pred := range strata[len(strata)-1] {
		lastStratum[pred] = true
	}
	lower := ast.NewProgram()
	upper := ast.NewProgram()
	materialized := map[string]bool{}
	for _, r := range p.Rules {
		if lastStratum[r.Head.Pred] {
			if r.HasNegation() {
				// Negated predicates are strictly lower-stratum, hence
				// materialized; the solver checks absence directly.
				upper.Rules = append(upper.Rules, r.Clone())
				continue
			}
			upper.Rules = append(upper.Rules, r.Clone())
			continue
		}
		lower.Rules = append(lower.Rules, r.Clone())
		materialized[r.Head.Pred] = true
	}
	base, _, err := eval.Eval(lower, edb, eval.Options{})
	if err != nil {
		return nil, err
	}
	return &Engine{
		program:      upper,
		edb:          base,
		idb:          upper.IDBPredicates(),
		tables:       make(map[string]*table),
		materialized: materialized,
	}, nil
}

// subgoalFor derives the subgoal of an atom under a binding: the bound
// positions are those holding constants or bound variables.
func subgoalFor(a ast.Atom, b ast.Binding) (cols []int, vals []ast.Const) {
	for i, t := range a.Args {
		if !t.IsVar {
			cols = append(cols, i)
			vals = append(vals, t.Val)
			continue
		}
		if c, ok := b[t.Name]; ok {
			cols = append(cols, i)
			vals = append(vals, c)
		}
	}
	return cols, vals
}

func subgoalKey(pred string, cols []int, vals []ast.Const) string {
	var sb strings.Builder
	sb.WriteString(pred)
	for i, c := range cols {
		fmt.Fprintf(&sb, "|%d=%d", c, vals[i])
	}
	return sb.String()
}

// ensureTable registers a subgoal, returning its table and whether it was
// new.
func (e *Engine) ensureTable(pred string, cols []int, vals []ast.Const) (*table, bool) {
	key := subgoalKey(pred, cols, vals)
	if t, ok := e.tables[key]; ok {
		return t, false
	}
	t := &table{
		pred:    pred,
		cols:    append([]int(nil), cols...),
		vals:    append([]ast.Const(nil), vals...),
		answers: db.New(),
	}
	e.tables[key] = t
	e.order = append(e.order, key)
	return t, true
}

// Query answers q, returning its matching tuples. The engine's tables
// persist across queries, so repeated or overlapping queries reuse work.
func (e *Engine) Query(q ast.Atom) ([][]ast.Const, Stats, error) {
	if !e.idb[q.Pred] {
		// Extensional query: read the EDB directly.
		var out [][]ast.Const
		b := ast.Binding{}
		db.MatchAtom(e.edb, q, db.AllRounds, b, func() bool {
			g := q.MustGround(b)
			t := make([]ast.Const, len(g.Args))
			copy(t, g.Args)
			out = append(out, t)
			return true
		})
		return out, e.stats(0), nil
	}

	cols, vals := subgoalFor(q, nil)
	root, _ := e.ensureTable(q.Pred, cols, vals)

	passes := 0
	for {
		passes++
		changed := false
		// Iterate over a snapshot of the table list; solving may register
		// new subgoals, which later passes will fill.
		keys := append([]string(nil), e.order...)
		for _, key := range keys {
			if e.fillTable(e.tables[key]) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	var out [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(root.answers, q, db.AllRounds, b, func() bool {
		g := q.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		out = append(out, t)
		return true
	})
	return out, e.stats(passes), nil
}

func (e *Engine) stats(passes int) Stats {
	s := Stats{Subgoals: len(e.tables), Passes: passes}
	for _, t := range e.tables {
		s.Answers += t.answers.Len()
	}
	return s
}

// fillTable runs every rule for the table's subgoal once against the
// current state of all tables, returning whether new answers appeared.
func (e *Engine) fillTable(t *table) bool {
	added := false
	for ri, r := range e.program.Rules {
		if r.Head.Pred != t.pred {
			continue
		}
		rule := r.RenameApart(ri)
		// Bind the head's bound positions to the subgoal's values.
		b := ast.Binding{}
		ok := true
		for i, col := range t.cols {
			arg := rule.Head.Args[col]
			if !arg.IsVar {
				if arg.Val != t.vals[i] {
					ok = false
					break
				}
				continue
			}
			if prev, bound := b[arg.Name]; bound {
				if prev != t.vals[i] {
					ok = false
					break
				}
				continue
			}
			b[arg.Name] = t.vals[i]
		}
		if !ok {
			continue
		}
		neg := rule.NegBody
		if e.solveBody(rule.Body, b, func(bb ast.Binding) {
			for _, n := range neg {
				if e.edb.Has(n.MustGround(bb)) {
					return
				}
			}
			if t.answers.Add(rule.Head.MustGround(bb)) {
				added = true
			}
		}) {
			// solveBody returns whether it registered new subgoals; new
			// tables count as progress so the global loop runs again.
			added = true
		}
	}
	return added
}

// solveBody enumerates bindings satisfying the positive body
// left-to-right, reading intentional atoms from their subgoal tables
// (registering missing tables) and extensional or materialized atoms from
// the base. It reports whether any new subgoal table was registered.
func (e *Engine) solveBody(body []ast.Atom, b ast.Binding, yield func(ast.Binding)) bool {
	registered := false
	if len(body) == 0 {
		yield(b)
		return false
	}
	atom := body[0]
	if !e.idb[atom.Pred] || e.materialized[atom.Pred] {
		db.MatchAtom(e.edb, atom, db.AllRounds, b, func() bool {
			if e.solveBody(body[1:], b, yield) {
				registered = true
			}
			return true
		})
		return registered
	}
	cols, vals := subgoalFor(atom, b)
	tbl, isNew := e.ensureTable(atom.Pred, cols, vals)
	if isNew {
		registered = true
	}
	db.MatchAtom(tbl.answers, atom, db.AllRounds, b, func() bool {
		if e.solveBody(body[1:], b, yield) {
			registered = true
		}
		return true
	})
	return registered
}

// Tables returns a human-readable summary of the subgoal tables, sorted by
// key, for debugging and tests.
func (e *Engine) Tables() []string {
	keys := append([]string(nil), e.order...)
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, fmt.Sprintf("%s: %d answers", k, e.tables[k].answers.Len()))
	}
	return out
}
