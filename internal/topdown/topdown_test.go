package topdown

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/magic"
	"repro/internal/parser"
	"repro/internal/workload"
)

func sortTuples(ts [][]ast.Const) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func sameTuples(a, b [][]ast.Const) bool {
	if len(a) != len(b) {
		return false
	}
	sortTuples(a)
	sortTuples(b)
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

func TestBoundQueryOnChain(t *testing.T) {
	p := workload.Ancestor()
	edb := workload.Chain("Par", 20)
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, stats, err := eng.Query(parser.MustParseAtom("Anc(15, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 5 {
		t.Fatalf("got %d answers: %v", len(ans), ans)
	}
	// Goal-directedness: the subgoal count stays near the relevant suffix
	// of the chain, far below the 20*21/2 facts of the full closure.
	if stats.Answers > 40 {
		t.Fatalf("top-down computed %d answers — not goal-directed", stats.Answers)
	}
}

func TestAgreesWithBottomUpAndMagic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := workload.Ancestor()
	for trial := 0; trial < 12; trial++ {
		n := 3 + rng.Intn(8)
		edb := db.New()
		for e := 0; e < 2*n; e++ {
			edb.Add(ast.GroundAtom{Pred: "Par", Args: []ast.Const{
				ast.Int(int64(rng.Intn(n))), ast.Int(int64(rng.Intn(n)))}})
		}
		query := ast.NewAtom("Anc", ast.IntTerm(int64(rng.Intn(n))), ast.Var("y"))

		eng, err := New(p, edb)
		if err != nil {
			t.Fatal(err)
		}
		tdAns, _, err := eng.Query(query)
		if err != nil {
			t.Fatal(err)
		}
		buAns, _, err := magic.DirectAnswer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		mAns, _, err := magic.Answer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(tdAns, buAns) || !sameTuples(tdAns, mAns) {
			t.Fatalf("trial %d: topdown %v, direct %v, magic %v on\n%s", trial, tdAns, buAns, mAns, edb)
		}
	}
}

func TestDoubledRecursionAndFreeQuery(t *testing.T) {
	// The doubled TC rule exercises two intentional atoms per body.
	p := workload.TransitiveClosure()
	edb := workload.Cycle("A", 5)
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("G(x, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 25 {
		t.Fatalf("closure of a 5-cycle has 25 pairs, got %d", len(ans))
	}
}

func TestSameGeneration(t *testing.T) {
	p := workload.SameGeneration()
	edb := db.New()
	for _, f := range []struct {
		pred string
		a, b int64
	}{
		{"Up", 1, 10}, {"Up", 2, 10}, {"Up", 3, 11},
		{"Flat", 10, 11}, {"Flat", 10, 10},
		{"Down", 10, 1}, {"Down", 11, 3}, {"Down", 11, 4},
	} {
		edb.Add(ast.GroundAtom{Pred: f.pred, Args: []ast.Const{ast.Int(f.a), ast.Int(f.b)}})
	}
	query := parser.MustParseAtom("Sg(1, y)")
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	tdAns, _, err := eng.Query(query)
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := magic.DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(tdAns, directAns) {
		t.Fatalf("same-generation: %v vs %v", tdAns, directAns)
	}
}

func TestEDBQuery(t *testing.T) {
	p := workload.Ancestor()
	edb := workload.Chain("Par", 5)
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("Par(2, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][1] != ast.Int(3) {
		t.Fatalf("EDB query: %v", ans)
	}
}

func TestTablesReusedAcrossQueries(t *testing.T) {
	p := workload.Ancestor()
	edb := workload.Chain("Par", 15)
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	_, s1, err := eng.Query(parser.MustParseAtom("Anc(10, y)"))
	if err != nil {
		t.Fatal(err)
	}
	// The second query's subgoals are a subset of the first's.
	_, s2, err := eng.Query(parser.MustParseAtom("Anc(12, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if s2.Subgoals != s1.Subgoals {
		t.Fatalf("overlapping query created tables: %d then %d", s1.Subgoals, s2.Subgoals)
	}
	if len(eng.Tables()) != s2.Subgoals {
		t.Fatalf("Tables() length mismatch")
	}
}

func TestConstantsInRuleHeads(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, 3) :- A(x, 3).
		G(x, z) :- A(x, y), G(y, z).
	`)
	edb := db.FromFacts([]ast.GroundAtom{
		{Pred: "A", Args: []ast.Const{ast.Int(1), ast.Int(2)}},
		{Pred: "A", Args: []ast.Const{ast.Int(2), ast.Int(3)}},
	})
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("G(1, y)"))
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := magic.DirectAnswer(p, edb, parser.MustParseAtom("G(1, y)"), eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(ans, directAns) {
		t.Fatalf("constant heads: %v vs %v", ans, directAns)
	}
}

func TestStratifiedNegationSingleStratumRule(t *testing.T) {
	// A single rule with negation over extensional predicates: the lower
	// strata are empty and the negated check reads the EDB directly.
	p := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	edb := db.FromFacts([]ast.GroundAtom{
		{Pred: "A", Args: []ast.Const{ast.Int(1)}},
		{Pred: "A", Args: []ast.Const{ast.Int(2)}},
		{Pred: "B", Args: []ast.Const{ast.Int(2)}},
	})
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("P(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != ast.Int(1) {
		t.Fatalf("P answers: %v", ans)
	}
}

func TestEmptyEDB(t *testing.T) {
	eng, err := New(workload.Ancestor(), db.New())
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("Anc(1, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Fatalf("answers from empty EDB: %v", ans)
	}
}

func TestStratifiedNegationTopDown(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x) :- Node(x), !Reach(x).
	`)
	edb := db.New()
	for _, f := range []ast.GroundAtom{
		{Pred: "Src", Args: []ast.Const{ast.Int(1)}},
		{Pred: "E", Args: []ast.Const{ast.Int(1), ast.Int(2)}},
		{Pred: "Node", Args: []ast.Const{ast.Int(2)}},
		{Pred: "Node", Args: []ast.Const{ast.Int(7)}},
	} {
		edb.Add(f)
	}
	eng, err := New(p, edb)
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := eng.Query(parser.MustParseAtom("Dead(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0][0] != ast.Int(7) {
		t.Fatalf("Dead answers: %v", ans)
	}
	// The materialized lower stratum answers like an EDB predicate.
	reach, _, err := eng.Query(parser.MustParseAtom("Reach(x)"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reach) != 2 {
		t.Fatalf("Reach answers: %v", reach)
	}
	// Agreement with bottom-up on the same query.
	buOut := eval.MustEval(p, edb)
	for _, a := range ans {
		if !buOut.Has(ast.GroundAtom{Pred: "Dead", Args: a}) {
			t.Fatalf("top-down invented %v", a)
		}
	}
}

func TestUnstratifiableRejectedTopDown(t *testing.T) {
	p := parser.MustParseProgram(`
		P(x) :- A(x), !Q(x).
		Q(x) :- A(x), !P(x).
	`)
	if _, err := New(p, db.New()); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}
