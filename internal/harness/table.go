// Package harness runs the experiment suite E1–E10 defined in DESIGN.md and
// renders each as an aligned text table. The paper (PODS 1987) has no
// empirical section; these experiments operationalize its worked examples
// and prose claims — see DESIGN.md §3 for the substitution rationale and
// EXPERIMENTS.md for recorded paper-vs-measured outcomes.
package harness

import (
	"fmt"
	"strings"
	"time"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprint(cells[i])
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// ms formats a duration in milliseconds with three decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// ratio formats a/b with two decimals, guarding against division by zero.
func ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}

// CSV renders the table as RFC-4180-ish CSV (header row first); cells
// containing commas or quotes are quoted.
func (t Table) CSV() string {
	var sb strings.Builder
	writeCSVRow(&sb, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&sb, row)
	}
	return sb.String()
}

func writeCSVRow(sb *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			sb.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			sb.WriteByte('"')
			sb.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			sb.WriteByte('"')
		} else {
			sb.WriteString(cell)
		}
	}
	sb.WriteByte('\n')
}

// Markdown renders the table as a GitHub-flavoured markdown table with the
// title as a heading.
func (t Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", t.ID, t.Title)
	sb.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		sb.WriteString("| " + strings.Join(escaped, " | ") + " |\n")
	}
	return sb.String()
}
