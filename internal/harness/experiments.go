package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/constraint"
	"repro/internal/cq"
	"repro/internal/db"
	"repro/internal/equivopt"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/magic"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/preserve"
	"repro/internal/topdown"
	"repro/internal/workload"
)

// All runs every experiment and returns the tables in order.
func All() []Table {
	return []Table{
		E1WorkedExamples(),
		E2UniformContainment(),
		E3MinimizeRule(),
		E4MinimizeProgram(),
		E5EvalSpeedup(),
		E6NaiveVsSemiNaive(),
		E7EquivOpt(),
		E8MagicComposition(),
		E9EmbeddedChase(),
		E10CQAblation(),
		E11Engines(),
		E12Incremental(),
		E13EngineAblations(),
		E14SIPS(),
		E15DerivationCounts(),
	}
}

// check is one E1 assertion.
type check struct {
	name    string
	section string
	claim   string
	run     func() bool
}

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

// E1WorkedExamples re-executes every worked example of the paper and
// asserts its stated outcome.
func E1WorkedExamples() Table {
	t := Table{ID: "E1", Title: "worked-example regression (paper Examples 2-19)",
		Columns: []string{"example", "section", "claim", "result", "time"}}

	tc := workload.TransitiveClosure()
	tcLinear := workload.TransitiveClosureLinear()
	tcGuarded := workload.TransitiveClosureGuarded()
	tgd := parser.MustParseTGD("G(x, z) -> A(x, w).")

	checks := []check{
		{"Ex. 2", "III", "bottom-up output of TC on {A(1,2),A(1,4),A(4,1)}", func() bool {
			out := eval.MustEval(tc, db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)}))
			want := db.FromFacts([]ast.GroundAtom{
				ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1),
				ga("G", 1, 2), ga("G", 1, 4), ga("G", 4, 1),
				ga("G", 1, 1), ga("G", 4, 4), ga("G", 4, 2)})
			return out.Equal(want)
		}},
		{"Ex. 3", "III", "IDB atoms accepted as input (uniform semantics)", func() bool {
			out := eval.MustEval(tc, db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("G", 4, 1)}))
			return out.Has(ga("G", 4, 2)) && !out.Has(ga("A", 4, 1))
		}},
		{"Ex. 4", "IV", "equivalence without uniform equivalence (TC variants)", func() bool {
			eq, err := chase.UniformlyEquivalent(tc, tcLinear)
			return err == nil && !eq
		}},
		{"Ex. 5", "IV", "adding a rule uniformly contains the original", func() bool {
			p2 := parser.MustParseProgram(`
				G(x, z) :- A(x, z).
				G(x, z) :- G(x, y), G(y, z).
				A(x, z) :- A(x, y), G(y, z).`)
			ok, _, err := chase.UniformlyContains(p2, tc)
			return err == nil && ok
		}},
		{"Ex. 6", "VI", "P2 ⊑ᵘ P1 proved, P1 ⊑ᵘ P2 refuted by the chase", func() bool {
			ok1, _, err1 := chase.UniformlyContains(tc, tcLinear)
			ok2, _, err2 := chase.UniformlyContains(tcLinear, tc)
			return err1 == nil && err2 == nil && ok1 && !ok2
		}},
		{"Ex. 7/8", "VI-VII", "A(w,y) redundant in the 5-atom rule (Fig. 1)", func() bool {
			r := parser.MustParseProgram(`G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).`).Rules[0]
			min, trace, err := minimize.Rule(r, minimize.Options{})
			return err == nil && trace.AtomsRemoved() == 1 && len(min.Body) == 4
		}},
		{"Ex. 9", "VIII", "tgd satisfaction over the Example 2 DB", func() bool {
			d := eval.MustEval(tc, db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)}))
			bad := parser.MustParseTGD("G(x, y) -> A(y, z), A(z, x).")
			good := parser.MustParseTGD("G(x, y) -> G(x, z), A(z, y).")
			return !constraint.Satisfies(d, []ast.TGD{bad}) && constraint.Satisfies(d, []ast.TGD{good})
		}},
		{"Ex. 10", "VIII", "a full tgd behaves as two rules", func() bool {
			full := parser.MustParseTGD("A(x, y, z), B(w, y, v) -> A(x, y, v), T(w, y, z).")
			return full.IsFull() && len(full.AsRules()) == 2
		}},
		{"Ex. 11", "VIII", "SAT(T) ∩ M(P1) ⊆ M(P2) via the extended chase", func() bool {
			v, err := chase.SATModelsContained(tcGuarded, []ast.TGD{tgd}, tc, chase.Budget{})
			return err == nil && v == chase.Yes
		}},
		{"Ex. 12", "IX", "Pⁿ(d) vs P(d) on {A(1,2),G(2,3),G(3,4)}", func() bool {
			d := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("G", 2, 3), ga("G", 3, 4)})
			pn := eval.NonRecursive(tc, d)
			return pn.Equal(db.FromFacts([]ast.GroundAtom{ga("G", 1, 2), ga("G", 2, 4)}))
		}},
		{"Ex. 13/14", "IX", "P1 preserves G(x,z)→A(x,w) non-recursively (Fig. 3)", func() bool {
			v, _, err := preserve.Check(tcGuarded, []ast.TGD{tgd}, preserve.Options{})
			return err == nil && v == chase.Yes
		}},
		{"Ex. 15", "IX", "two-atom-LHS tgd preserved (all 4 combinations)", func() bool {
			r := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z), A(y, w).`)
			v, _, err := preserve.Check(r, []ast.TGD{parser.MustParseTGD("G(x, y), G(y, z) -> A(y, w).")}, preserve.Options{})
			return err == nil && v == chase.Yes
		}},
		{"Ex. 16", "IX", "Example 19's recursive rule preserves its tgd", func() bool {
			r := parser.MustParseProgram(`G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).`)
			v, _, err := preserve.Check(r, []ast.TGD{parser.MustParseTGD("G(y, z) -> G(y, w), C(w).")}, preserve.Options{})
			return err == nil && v == chase.Yes
		}},
		{"Ex. 17", "X", "preliminary DB of TC over a 3-chain", func() bool {
			prelim := eval.PreliminaryDB(tc, workload.Chain("A", 3))
			return prelim.Len() == 6 && prelim.Has(ga("G", 0, 1)) && !prelim.Has(ga("G", 0, 2))
		}},
		{"Ex. 18", "X-XI", "A(y,w) removed under equivalence (full pipeline)", func() bool {
			opt, removals, err := equivopt.Optimize(tcGuarded, equivopt.Options{})
			return err == nil && len(removals) == 1 && opt.Equal(tc)
		}},
		{"Ex. 19", "XI", "G(y,w), C(w) removed under equivalence", func() bool {
			opt, removals, err := equivopt.Optimize(workload.Example19Program(), equivopt.Options{})
			want := parser.MustParseProgram(`
				G(x, z) :- A(x, z), C(z).
				G(x, z) :- A(x, y), G(y, z).`)
			return err == nil && len(removals) >= 1 && opt.Equal(want)
		}},
	}

	for _, c := range checks {
		var ok bool
		d := timed(func() { ok = c.run() })
		result := "PASS"
		if !ok {
			result = "FAIL"
		}
		t.AddRow(c.name, c.section, c.claim, result, ms(d))
	}
	return t
}

// E2UniformContainment measures the cost of the Section VI decision
// procedure as program size grows: layered self-containment (one verdict per
// rule, decided syntactically by the θ-subsumption fast path) plus the fully
// unfolded top layer Pn(x,z) :- E,…,E — uniformly contained but subsumed by
// no single rule, so it forces a real frozen-body chase whose goal-directed
// evaluation rides the streaming pipeline. The streamed/materialized column
// is the planner's per-stratum decision tally across the session.
func E2UniformContainment() Table {
	t := Table{ID: "E2", Title: "uniform-containment decision cost vs program size (Section VI)",
		Columns: []string{"layers", "rules", "body atoms", "decision", "strata strm/mat", "time"}}
	for _, n := range []int{2, 4, 8, 16, 24} {
		p := workload.Layered(n)
		unfolded := unfoldedLayer(n)
		var ok bool
		var st eval.Stats
		d := timed(func() {
			// Explicit session: the containing program is prepared once
			// and every rule is tested against it.
			ck, err := chase.NewChecker(p)
			if err != nil {
				panic(err)
			}
			ok, _, err = ck.Contains(p)
			if err != nil {
				panic(err)
			}
			chased, err := ck.ContainsRule(unfolded)
			if err != nil {
				panic(err)
			}
			ok = ok && chased
			st = ck.Stats()
		})
		t.AddRow(n, len(p.Rules), p.BodyAtomCount(), fmt.Sprint(ok),
			fmt.Sprintf("%d/%d", st.StrataStreamed, st.StrataMaterialized), ms(d))
	}
	return t
}

// unfoldedLayer builds Pn(x, z) :- E(x, y1), …, E(yn-1, z): the n-layer rule
// unfolded down to the EDB. It is uniformly contained in workload.Layered(n)
// but θ-subsumed by none of its rules.
func unfoldedLayer(n int) ast.Rule {
	var sb strings.Builder
	fmt.Fprintf(&sb, "P%d(x0, x%d) :- ", n, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "E(x%d, x%d)", i, i+1)
	}
	sb.WriteString(".")
	return parser.MustParseProgram(sb.String()).Rules[0]
}

// E3MinimizeRule measures Fig. 1 on rules with k injected redundant atoms.
func E3MinimizeRule() Table {
	t := Table{ID: "E3", Title: "rule minimization (Fig. 1) vs injected redundancy",
		Columns: []string{"injected k", "body before", "body after", "atoms removed", "plan hit/miss", "verdicts memo/syn/chase", "strata strm/mat", "time"}}
	base := workload.TransitiveClosure().Rules[1]
	for _, k := range []int{0, 1, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(k) + 1))
		r := workload.InjectRedundantAtoms(base, k, rng)
		var min ast.Rule
		var trace minimize.Trace
		d := timed(func() {
			var err error
			min, trace, err = minimize.Rule(r, minimize.Options{})
			if err != nil {
				panic(err)
			}
		})
		t.AddRow(k, len(r.Body), len(min.Body), trace.AtomsRemoved(),
			fmt.Sprintf("%d/%d", trace.Stats.PrepareHits, trace.Stats.PrepareMisses),
			fmt.Sprintf("%d/%d/%d", trace.Stats.VerdictsReused, trace.Stats.VerdictsSubsumed, trace.Stats.VerdictsRecomputed),
			fmt.Sprintf("%d/%d", trace.Stats.StrataStreamed, trace.Stats.StrataMaterialized),
			ms(d))
	}
	return t
}

// E4MinimizeProgram measures Fig. 2 on programs with injected redundant
// rules and atoms.
func E4MinimizeProgram() Table {
	t := Table{ID: "E4", Title: "program minimization (Fig. 2) vs injected redundant rules",
		Columns: []string{"injected rules", "rules before/after", "atoms before/after", "removed (rules/atoms)", "plan hit/miss", "verdicts memo/syn/chase", "time"}}
	for _, k := range []int{0, 2, 4, 8} {
		rng := rand.New(rand.NewSource(int64(k) + 11))
		p := workload.InjectRedundantRules(workload.TransitiveClosure(), k, rng)
		var min *ast.Program
		var trace minimize.Trace
		d := timed(func() {
			var err error
			min, trace, err = minimize.Program(p, minimize.Options{})
			if err != nil {
				panic(err)
			}
		})
		t.AddRow(k,
			fmt.Sprintf("%d/%d", len(p.Rules), len(min.Rules)),
			fmt.Sprintf("%d/%d", p.BodyAtomCount(), min.BodyAtomCount()),
			fmt.Sprintf("%d/%d", trace.RulesRemoved(), trace.AtomsRemoved()),
			fmt.Sprintf("%d/%d", trace.Stats.PrepareHits, trace.Stats.PrepareMisses),
			fmt.Sprintf("%d/%d/%d", trace.Stats.VerdictsReused, trace.Stats.VerdictsSubsumed, trace.Stats.VerdictsRecomputed),
			ms(d))
	}
	return t
}

// E5EvalSpeedup measures the paper's core claim: removing redundant parts
// reduces evaluation work. The bloated program carries injected redundant
// atoms plus the Example 11 guard; the optimized program is its Fig. 2 +
// Section XI reduction.
func E5EvalSpeedup() Table {
	t := Table{ID: "E5", Title: "evaluation speedup from minimization (Sections I, V)",
		Columns: []string{"EDB", "facts", "firings bloat", "firings opt", "time bloat", "time opt", "speedup"}}

	rng := rand.New(rand.NewSource(1))
	bloated := workload.TransitiveClosureGuarded()
	bloated = bloated.ReplaceRule(1, workload.InjectRedundantAtoms(bloated.Rules[1], 2, rng))
	min, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		panic(err)
	}
	opt, _, err := equivopt.Optimize(min, equivopt.Options{})
	if err != nil {
		panic(err)
	}

	edbs := []struct {
		name string
		d    *db.Database
	}{
		{"chain n=48", workload.Chain("A", 48)},
		{"random n=60 m=120", workload.RandomDigraph("A", 60, 120, 7)},
		{"tree f=2 d=6", workload.Tree("A", 2, 6)},
		{"grid 8x8", workload.Grid("A", 8, 8)},
	}
	for _, e := range edbs {
		var sBloat, sOpt eval.Stats
		dBloat := timed(func() {
			_, sBloat, err = eval.Eval(bloated, e.d, eval.Options{})
			if err != nil {
				panic(err)
			}
		})
		dOpt := timed(func() {
			_, sOpt, err = eval.Eval(opt, e.d, eval.Options{})
			if err != nil {
				panic(err)
			}
		})
		t.AddRow(e.name, e.d.Len(), sBloat.Firings, sOpt.Firings, ms(dBloat), ms(dOpt),
			ratio(float64(dBloat.Nanoseconds()), float64(dOpt.Nanoseconds())))
	}
	return t
}

// E6NaiveVsSemiNaive validates the evaluation substrate: semi-naive does
// strictly less rederivation than the naive strategy of Section III.
func E6NaiveVsSemiNaive() Table {
	t := Table{ID: "E6", Title: "naive vs semi-naive fixpoint (Section III substrate)",
		Columns: []string{"EDB", "facts out", "firings naive", "firings semi", "time naive", "time semi", "speedup"}}
	p := workload.TransitiveClosure()
	edbs := []struct {
		name string
		d    *db.Database
	}{
		{"chain n=24", workload.Chain("A", 24)},
		{"chain n=48", workload.Chain("A", 48)},
		{"cycle n=24", workload.Cycle("A", 24)},
		{"random n=40 m=80", workload.RandomDigraph("A", 40, 80, 3)},
	}
	for _, e := range edbs {
		var outLen int
		var sNaive, sSemi eval.Stats
		dNaive := timed(func() {
			out, s, err := eval.Eval(p, e.d, eval.Options{Strategy: eval.Naive})
			if err != nil {
				panic(err)
			}
			sNaive = s
			outLen = out.Len()
		})
		dSemi := timed(func() {
			_, s, err := eval.Eval(p, e.d, eval.Options{Strategy: eval.SemiNaive})
			if err != nil {
				panic(err)
			}
			sSemi = s
		})
		t.AddRow(e.name, outLen, sNaive.Firings, sSemi.Firings, ms(dNaive), ms(dSemi),
			ratio(float64(dNaive.Nanoseconds()), float64(dSemi.Nanoseconds())))
	}
	return t
}

// E7EquivOpt measures the Section XI pipeline: candidates generated,
// removals performed, and cost, including a negative control where the
// pipeline must refuse.
func E7EquivOpt() Table {
	t := Table{ID: "E7", Title: "equivalence-optimization pipeline (Sections X-XI)",
		Columns: []string{"program", "candidates", "atoms removed", "sound", "time"}}
	cases := []struct {
		name string
		p    *ast.Program
		// mustRemove is the exact number of atoms that should go.
		mustRemove int
	}{
		{"Ex.11 guarded TC", workload.TransitiveClosureGuarded(), 1},
		{"Ex.19 program", workload.Example19Program(), 2},
		{"negative control (B init)", parser.MustParseProgram(`
			G(x, z) :- B(x, z).
			G(x, z) :- G(x, y), G(y, z), A(y, w).`), 0},
	}
	for _, c := range cases {
		nCands := 0
		for _, r := range c.p.Rules {
			nCands += len(equivopt.Candidates(r, 3))
		}
		var removals []equivopt.Removal
		var opt *ast.Program
		d := timed(func() {
			var err error
			opt, removals, err = equivopt.Optimize(c.p, equivopt.Options{})
			if err != nil {
				panic(err)
			}
		})
		removed := 0
		for _, r := range removals {
			removed += len(r.Atoms)
		}
		sound := equivalentOnSamples(c.p, opt)
		t.AddRow(c.name, nCands, fmt.Sprintf("%d (want %d)", removed, c.mustRemove), sound, ms(d))
	}
	return t
}

// equivalentOnSamples samples random EDBs and compares outputs.
func equivalentOnSamples(p1, p2 *ast.Program) bool {
	rng := rand.New(rand.NewSource(99))
	idb := p1.IDBPredicates()
	for trial := 0; trial < 10; trial++ {
		d := db.New()
		n := 2 + rng.Intn(5)
		for _, sig := range p1.Predicates() {
			if idb[sig.Name] {
				continue
			}
			for k := 0; k < 1+rng.Intn(5); k++ {
				args := make([]ast.Const, sig.Arity)
				for i := range args {
					args[i] = ast.Int(int64(rng.Intn(n)))
				}
				d.AddTuple(sig.Name, args)
			}
		}
		if !eval.MustEval(p1, d).Equal(eval.MustEval(p2, d)) {
			return false
		}
	}
	return true
}

// E8MagicComposition measures the composition claim from the introduction:
// minimizing a program speeds up its magic-sets evaluation too.
func E8MagicComposition() Table {
	t := Table{ID: "E8", Title: "magic sets × minimization (Section I claim)",
		Columns: []string{"chain n", "mode", "answers", "derived facts", "firings", "time"}}

	rng := rand.New(rand.NewSource(2))
	p := workload.Ancestor()
	bloated := p.ReplaceRule(1, workload.InjectRedundantAtoms(p.Rules[1], 2, rng))
	minimized, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		panic(err)
	}

	for _, n := range []int{128, 256} {
		edb := workload.Chain("Par", n)
		query := ast.NewAtom("Anc", ast.IntTerm(int64(n-6)), ast.Var("y"))
		type mode struct {
			name string
			run  func() (int, magic.Stats)
		}
		modes := []mode{
			{"direct full eval", func() (int, magic.Stats) {
				ans, s, err := magic.DirectAnswer(bloated, edb, query, eval.Options{})
				if err != nil {
					panic(err)
				}
				return len(ans), s
			}},
			{"magic (bloated)", func() (int, magic.Stats) {
				ans, s, err := magic.Answer(bloated, edb, query, eval.Options{})
				if err != nil {
					panic(err)
				}
				return len(ans), s
			}},
			{"magic (minimized)", func() (int, magic.Stats) {
				ans, s, err := magic.Answer(minimized, edb, query, eval.Options{})
				if err != nil {
					panic(err)
				}
				return len(ans), s
			}},
		}
		for _, m := range modes {
			var nAns int
			var s magic.Stats
			d := timed(func() { nAns, s = m.run() })
			t.AddRow(n, m.name, nAns, s.DerivedFacts, s.Eval.Firings, ms(d))
		}
	}
	return t
}

// E9EmbeddedChase profiles the budgeted chase on a diverging embedded-tgd
// instance and a converging one (Sections VIII-IX).
func E9EmbeddedChase() Table {
	t := Table{ID: "E9", Title: "embedded-tgd chase: verdict vs budget (Sections VIII-IX)",
		Columns: []string{"instance", "budget atoms", "verdict", "chase atoms", "rounds", "time"}}

	// Diverging: B facts breed forever; the goal is unreachable.
	divergeP := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	divergeT := []ast.TGD{parser.MustParseTGD("A(x, y) -> A(y, w).")}
	divergeRule := parser.MustParseProgram(`Q(x) :- A(x, y), Z(x).`).Rules[0]

	// Converging: Example 11's containment resolves quickly.
	convP := workload.TransitiveClosureGuarded()
	convT := []ast.TGD{parser.MustParseTGD("G(x, z) -> A(x, w).")}
	convRule := workload.TransitiveClosure().Rules[1]

	for _, budget := range []int{16, 64, 256, 1024} {
		b := chase.Budget{MaxAtoms: budget, MaxRounds: budget}
		var v chase.Verdict
		var res chase.Result
		d := timed(func() {
			var err error
			v, err = chase.SATContainsRule(divergeP, divergeT, divergeRule, b)
			if err != nil {
				panic(err)
			}
			head, frozen := chase.FreezeRule(divergeRule)
			_ = head
			res, err = chase.Apply(divergeP, divergeT, frozen, b)
			if err != nil {
				panic(err)
			}
		})
		t.AddRow("diverging", budget, v.String(), res.DB.Len(), res.Rounds, ms(d))
	}
	for _, budget := range []int{16, 64} {
		b := chase.Budget{MaxAtoms: budget, MaxRounds: budget}
		var v chase.Verdict
		d := timed(func() {
			var err error
			v, err = chase.SATContainsRule(convP, convT, convRule, b)
			if err != nil {
				panic(err)
			}
		})
		t.AddRow("converging (Ex.11)", budget, v.String(), "-", "-", ms(d))
	}
	return t
}

// E10CQAblation cross-checks the CQ fast path against the frozen-body
// chase on random non-recursive rules and compares their costs.
func E10CQAblation() Table {
	t := Table{ID: "E10", Title: "CQ homomorphism vs frozen-body chase on non-recursive rules (ablation)",
		Columns: []string{"body atoms", "pairs", "agreement", "time cq", "time chase"}}
	for _, k := range []int{2, 4, 6, 8} {
		rng := rand.New(rand.NewSource(int64(k)))
		type pair struct{ r1, r2 ast.Rule }
		var pairs []pair
		for i := 0; i < 30; i++ {
			pairs = append(pairs, pair{randomCQRule(rng, k), randomCQRule(rng, k)})
		}
		agree := 0
		var dCQ, dChase time.Duration
		for _, pr := range pairs {
			q1, _ := cq.FromRule(pr.r1)
			q2, _ := cq.FromRule(pr.r2)
			var a, b bool
			dCQ += timed(func() { a = cq.Contained(q1, q2) })
			dChase += timed(func() {
				var err error
				b, err = chase.UniformlyContainsRule(ast.NewProgram(pr.r2), pr.r1)
				if err != nil {
					panic(err)
				}
			})
			if a == b {
				agree++
			}
		}
		t.AddRow(k, len(pairs), fmt.Sprintf("%d/%d", agree, len(pairs)), ms(dCQ), ms(dChase))
	}
	return t
}

// randomCQRule builds a random non-recursive rule with k binary atoms over
// a small variable pool.
func randomCQRule(rng *rand.Rand, k int) ast.Rule {
	vars := []string{"x", "y", "z", "u", "v", "w"}
	preds := []string{"A", "B"}
	body := make([]ast.Atom, k)
	for i := range body {
		body[i] = ast.NewAtom(preds[rng.Intn(len(preds))],
			ast.Var(vars[rng.Intn(len(vars))]),
			ast.Var(vars[rng.Intn(len(vars))]))
	}
	// Head over a variable present in the body.
	hv := body[rng.Intn(k)].Args[0]
	return ast.NewRule(ast.NewAtom("Q", hv), body...)
}

// E11Engines compares the four query-answering strategies on bound
// ancestor queries: full bottom-up + filter, basic magic, supplementary
// magic, and tabled top-down (QSQ-style).
func E11Engines() Table {
	t := Table{ID: "E11", Title: "query engines on bound ancestor queries (extension)",
		Columns: []string{"chain n", "engine", "answers", "work (facts/answers)", "time"}}
	p := workload.Ancestor()
	for _, n := range []int{96, 192} {
		edb := workload.Chain("Par", n)
		query := ast.NewAtom("Anc", ast.IntTerm(int64(n-6)), ast.Var("y"))

		var nAns int
		var work int
		d := timed(func() {
			ans, s, err := magic.DirectAnswer(p, edb, query, eval.Options{})
			if err != nil {
				panic(err)
			}
			nAns, work = len(ans), s.DerivedFacts
		})
		t.AddRow(n, "bottom-up + filter", nAns, work, ms(d))

		d = timed(func() {
			ans, s, err := magic.Answer(p, edb, query, eval.Options{})
			if err != nil {
				panic(err)
			}
			nAns, work = len(ans), s.DerivedFacts
		})
		t.AddRow(n, "magic sets", nAns, work, ms(d))

		d = timed(func() {
			ans, s, err := magic.AnswerSupplementary(p, edb, query, eval.Options{})
			if err != nil {
				panic(err)
			}
			nAns, work = len(ans), s.DerivedFacts
		})
		t.AddRow(n, "supplementary magic", nAns, work, ms(d))

		d = timed(func() {
			eng, err := topdown.New(p, edb)
			if err != nil {
				panic(err)
			}
			ans, s, err := eng.Query(query)
			if err != nil {
				panic(err)
			}
			nAns, work = len(ans), s.Answers
		})
		t.AddRow(n, "top-down tabled", nAns, work, ms(d))
	}
	return t
}

// E12Incremental measures insertion maintenance against full
// re-evaluation.
func E12Incremental() Table {
	t := Table{ID: "E12", Title: "incremental insertion maintenance vs full re-evaluation (extension)",
		Columns: []string{"base chain n", "insertion", "mode", "firings", "time"}}
	p := workload.TransitiveClosure()
	for _, n := range []int{32, 64} {
		base := workload.Chain("A", n)
		out, _, err := eval.Eval(p, base, eval.Options{})
		if err != nil {
			panic(err)
		}
		cases := []struct {
			name string
			fact ast.GroundAtom
		}{
			{"disconnected edge", ga("A", 500, 501)},
			{"chain extension", ga("A", int64(n+1), int64(n+2))},
			{"closing back-edge", ga("A", int64(n), 0)},
		}
		for _, c := range cases {
			var sInc eval.Stats
			dInc := timed(func() {
				_, s, err := eval.Incremental(p, out, []ast.GroundAtom{c.fact}, eval.Options{})
				if err != nil {
					panic(err)
				}
				sInc = s
			})
			t.AddRow(n, c.name, "incremental", sInc.Firings, ms(dInc))

			full := base.Clone()
			full.Add(c.fact)
			var sFull eval.Stats
			dFull := timed(func() {
				_, s, err := eval.Eval(p, full, eval.Options{})
				if err != nil {
					panic(err)
				}
				sFull = s
			})
			t.AddRow(n, c.name, "full re-eval", sFull.Firings, ms(dFull))
		}
	}
	return t
}

// E13EngineAblations profiles the evaluation-engine design choices on one
// reference workload (TC over a random digraph): compiled vs generic
// joins, SCC schedule, join reordering, and worker parallelism.
func E13EngineAblations() Table {
	t := Table{ID: "E13", Title: "evaluation-engine ablations (TC over random digraph n=60 m=120)",
		Columns: []string{"configuration", "firings", "facts out", "time"}}
	p := workload.TransitiveClosure()
	edb := workload.RandomDigraph("A", 60, 120, 7)
	run := func(name string, opts eval.Options) {
		var st eval.Stats
		var outLen int
		d := timed(func() {
			out, s, err := eval.Eval(p, edb, opts)
			if err != nil {
				panic(err)
			}
			st = s
			outLen = out.Len()
		})
		t.AddRow(name, st.Firings, outLen, ms(d))
	}
	run("default (compiled, SCC, reorder)", eval.Options{})
	run("generic matcher", eval.Options{NoCompile: true})
	run("no SCC schedule", eval.Options{NoSCCOrder: true})
	run("no join reorder", eval.Options{NoReorder: true})
	run("naive strategy", eval.Options{Strategy: eval.Naive})
	run("4 workers", eval.Options{Workers: 4})
	return t
}

// E14SIPS compares sideways-information-passing strategies on a rule body
// written with the intentional atom first — the order that starves the
// textbook left-to-right SIPS of bindings.
func E14SIPS() Table {
	t := Table{ID: "E14", Title: "SIPS strategies on an unfavourably ordered body (extension)",
		Columns: []string{"chain n", "SIPS", "answers", "derived facts", "time"}}
	p := parser.MustParseProgram(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Anc(y, z), Par(x, y).
	`)
	for _, n := range []int{60, 120} {
		edb := workload.Chain("Par", n)
		query := ast.NewAtom("Anc", ast.IntTerm(int64(n-6)), ast.Var("y"))
		for _, strat := range []struct {
			name string
			s    magic.SIPS
		}{
			{"left-to-right", magic.LeftToRight},
			{"bound-first", magic.BoundFirst},
		} {
			var nAns, derived int
			d := timed(func() {
				ans, st, err := magic.AnswerWithOptions(p, edb, query, magic.Options{SIPS: strat.s}, eval.Options{})
				if err != nil {
					panic(err)
				}
				nAns, derived = len(ans), st.DerivedFacts
			})
			t.AddRow(n, strat.name, nAns, derived, ms(d))
		}
	}
	return t
}

// E15DerivationCounts renders the join-reduction claim in provenance
// terms: a redundant (uniformly removable) atom multiplies the number of
// rule instantiations justifying the same facts; minimization removes
// exactly that duplicate work while leaving the output unchanged.
func E15DerivationCounts() Table {
	t := Table{ID: "E15", Title: "justification counts before/after minimization (provenance view of Section V)",
		Columns: []string{"EDB", "facts out", "justifications bloated", "justifications minimized", "ratio"}}
	bloated := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), G(x, w).
	`)
	min, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		panic(err)
	}
	edbs := []struct {
		name string
		d    *db.Database
	}{
		{"chain n=10", workload.Chain("A", 10)},
		{"tree f=2 d=4", workload.Tree("A", 2, 4)},
		{"random n=12 m=18", workload.RandomDigraph("A", 12, 18, 9)},
	}
	for _, e := range edbs {
		cpB, err := explain.NewCountingProver(bloated, e.d)
		if err != nil {
			panic(err)
		}
		cpM, err := explain.NewCountingProver(min, e.d)
		if err != nil {
			panic(err)
		}
		if !cpB.Output().Equal(cpM.Output()) {
			panic("programs diverge semantically")
		}
		jb, jm := cpB.TotalJustifications(), cpM.TotalJustifications()
		t.AddRow(e.name, cpB.Output().Len(), jb, jm, ratio(float64(jb), float64(jm)))
	}
	return t
}
