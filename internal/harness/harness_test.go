package harness

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestE1AllPass(t *testing.T) {
	tab := E1WorkedExamples()
	if len(tab.Rows) != 16 {
		t.Fatalf("E1 has %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[3] != "PASS" {
			t.Errorf("%s (%s): %s", row[0], row[2], row[3])
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	tables := All()
	if len(tables) != 15 {
		t.Fatalf("expected 15 tables, got %d", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		if ids[tab.ID] {
			t.Errorf("duplicate table id %s", tab.ID)
		}
		ids[tab.ID] = true
		s := tab.String()
		if !strings.Contains(s, tab.ID) || !strings.Contains(s, tab.Columns[0]) {
			t.Errorf("%s renders badly:\n%s", tab.ID, s)
		}
	}
}

func TestE5ShowsSpeedup(t *testing.T) {
	tab := E5EvalSpeedup()
	// The optimized program must fire no more joins than the bloated one on
	// every workload (the paper's headline claim).
	for _, row := range tab.Rows {
		bloat, err1 := strconv.Atoi(row[2])
		opt, err2 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric firing counts: %q %q", row[2], row[3])
		}
		if bloat < opt {
			t.Errorf("%s: bloated fired %d < optimized %d", row[0], bloat, opt)
		}
	}
}

func TestE10FullAgreement(t *testing.T) {
	tab := E10CQAblation()
	for _, row := range tab.Rows {
		parts := strings.Split(row[2], "/")
		if len(parts) != 2 || parts[0] != parts[1] {
			t.Errorf("CQ/chase disagreement at k=%s: %s", row[0], row[2])
		}
	}
}

func TestE9VerdictsMakeSense(t *testing.T) {
	tab := E9EmbeddedChase()
	for _, row := range tab.Rows {
		switch row[0] {
		case "diverging":
			if row[2] != "unknown" {
				t.Errorf("diverging instance verdict %s", row[2])
			}
		case "converging (Ex.11)":
			if row[2] != "yes" {
				t.Errorf("converging instance verdict %s", row[2])
			}
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow(1, "x")
	tab.AddRow("longer", 2)
	s := tab.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("table rendering:\n%s", s)
	}
	// Missing and surplus cells.
	tab.AddRow("only")
	tab.AddRow(1, 2, 3)
	if rows := len(tab.Rows); rows != 4 {
		t.Fatalf("rows = %d", rows)
	}
	if got := tab.Rows[2][1]; got != "" {
		t.Fatalf("missing cell = %q", got)
	}
}

func TestHelpers(t *testing.T) {
	if got := ms(1500 * time.Microsecond); got != "1.500ms" {
		t.Fatalf("ms = %q", got)
	}
	if got := ratio(3, 2); got != "1.50x" {
		t.Fatalf("ratio = %q", got)
	}
	if got := ratio(1, 0); got != "inf" {
		t.Fatalf("ratio/0 = %q", got)
	}
}

func TestCSVRendering(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("plain", `with "quote", comma`)
	got := tab.CSV()
	want := "a,b\nplain,\"with \"\"quote\"\", comma\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tab := Table{ID: "T", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("x|y", 2)
	got := tab.Markdown()
	if !strings.Contains(got, "### T — demo") || !strings.Contains(got, `| x\|y | 2 |`) {
		t.Fatalf("Markdown:\n%s", got)
	}
}

func TestE14BoundFirstWins(t *testing.T) {
	tab := E14SIPS()
	// Rows alternate left-to-right / bound-first per chain size; bound-first
	// must derive strictly fewer facts.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		l2r, err1 := strconv.Atoi(tab.Rows[i][3])
		bf, err2 := strconv.Atoi(tab.Rows[i+1][3])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric derived counts: %v", tab.Rows[i])
		}
		if bf >= l2r {
			t.Errorf("chain %s: bound-first derived %d >= %d", tab.Rows[i][0], bf, l2r)
		}
		if tab.Rows[i][2] != tab.Rows[i+1][2] {
			t.Errorf("answer counts differ: %v vs %v", tab.Rows[i], tab.Rows[i+1])
		}
	}
}

func TestE15RedundancyInflatesJustifications(t *testing.T) {
	tab := E15DerivationCounts()
	for _, row := range tab.Rows {
		jb, err1 := strconv.Atoi(row[2])
		jm, err2 := strconv.Atoi(row[3])
		if err1 != nil || err2 != nil {
			t.Fatalf("non-numeric justification counts: %v", row)
		}
		if jb <= jm {
			t.Errorf("%s: bloated %d <= minimized %d", row[0], jb, jm)
		}
	}
}
