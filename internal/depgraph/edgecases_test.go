package depgraph

import (
	"reflect"
	"testing"

	"repro/internal/ast"
)

func rule(head ast.Atom, body []ast.Atom, neg ...ast.Atom) ast.Rule {
	return ast.Rule{Head: head, Body: body, NegBody: neg}
}

func at(pred string, vars ...string) ast.Atom {
	args := make([]ast.Term, len(vars))
	for i, v := range vars {
		args[i] = ast.Var(v)
	}
	return ast.NewAtom(pred, args...)
}

// Mutual recursion through negation: P :- E, !Q and Q :- E, P form a cycle
// P → Q → P with one negative edge — recursive, unstratifiable, and the
// negative-cycle witness names both predicates.
func TestMutualRecursionThroughNegation(t *testing.T) {
	p := ast.NewProgram(
		rule(at("P", "x"), []ast.Atom{at("E", "x")}, at("Q", "x")),
		rule(at("Q", "x"), []ast.Atom{at("E", "x"), at("P", "x")}),
	)
	g := Build(p)
	rec := g.RecursivePreds()
	if !rec["P"] || !rec["Q"] || rec["E"] {
		t.Fatalf("RecursivePreds = %v", rec)
	}
	if _, err := Strata(p); err == nil {
		t.Fatal("negation through recursion not rejected")
	}
	cycle, ok := g.NegativeCycle()
	if !ok {
		t.Fatal("NegativeCycle found no witness")
	}
	if len(cycle) < 3 || cycle[0] != cycle[len(cycle)-1] {
		t.Fatalf("witness %v is not a closed cycle", cycle)
	}
	onCycle := map[string]bool{}
	for _, pred := range cycle {
		onCycle[pred] = true
	}
	if !onCycle["P"] || !onCycle["Q"] || onCycle["E"] {
		t.Fatalf("witness %v should pass through exactly P and Q", cycle)
	}
}

// Self-negation: S :- E, !S is the smallest unstratifiable program; the
// witness is the length-1 cycle [S, S].
func TestSelfNegation(t *testing.T) {
	p := ast.NewProgram(
		rule(at("S", "x"), []ast.Atom{at("E", "x")}, at("S", "x")),
	)
	g := Build(p)
	if !g.RecursivePreds()["S"] {
		t.Fatal("self-negating S not recursive")
	}
	if _, err := Strata(p); err == nil {
		t.Fatal("self-negation not rejected")
	}
	cycle, ok := g.NegativeCycle()
	if !ok {
		t.Fatal("NegativeCycle found no witness")
	}
	if !reflect.DeepEqual(cycle, []string{"S", "S"}) {
		t.Fatalf("witness = %v, want [S S]", cycle)
	}
}

// A predicate can be both extensional and intensional: E has facts in some
// database *and* a rule E :- F. The graph treats it like any node — edges in
// and out, no recursion, a positive-only stratification.
func TestPredBothEDBAndIDB(t *testing.T) {
	p := ast.NewProgram(
		rule(at("P", "x"), []ast.Atom{at("E", "x")}),
		rule(at("E", "x"), []ast.Atom{at("F", "x")}),
	)
	g := Build(p)
	if !g.HasEdge("E", "P") || !g.HasEdge("F", "E") {
		t.Fatal("missing edges through the EDB/IDB predicate")
	}
	if len(g.RecursivePreds()) != 0 {
		t.Fatalf("RecursivePreds = %v, want none", g.RecursivePreds())
	}
	if !reflect.DeepEqual(g.ReachableFrom("F"), map[string]bool{"F": true, "E": true, "P": true}) {
		t.Fatalf("ReachableFrom(F) = %v", g.ReachableFrom("F"))
	}
	strata, err := Strata(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(strata) != 1 {
		t.Fatalf("strata = %v, want one stratum", strata)
	}
	if cycle, ok := g.NegativeCycle(); ok {
		t.Fatalf("phantom negative cycle %v", cycle)
	}
}

// Single-rule nonlinear recursion: G(x,z) :- G(x,y), G(y,z) with no exit
// rule. One rule, one predicate, two recursive body occurrences.
func TestSingleRuleNonlinearRecursion(t *testing.T) {
	p := ast.NewProgram(
		rule(at("G", "x", "z"), []ast.Atom{at("G", "x", "y"), at("G", "y", "z")}),
	)
	g := Build(p)
	if !g.HasEdge("G", "G") {
		t.Fatal("missing self edge")
	}
	if !reflect.DeepEqual(g.SCCs(), [][]string{{"G"}}) {
		t.Fatalf("SCCs = %v", g.SCCs())
	}
	if !g.RecursivePreds()["G"] {
		t.Fatal("G not recursive")
	}
	if got := RecursiveRuleIndexes(p); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("RecursiveRuleIndexes = %v, want [0]", got)
	}
	if IsLinear(p) {
		t.Fatal("doubly recursive rule reported linear")
	}
}
