// Position dependency graph and chase-termination classification.
//
// The chase of Section VIII (internal/chase) may diverge on embedded tgds,
// and the paper's answer is a raw resource budget. The Datalog± literature
// (PAPERS.md: Weakly-Sticky Datalog±, Finite-Position Selection Functions)
// decides termination syntactically for a ladder of classes, all computable
// from one structure — the position dependency graph:
//
//   - nodes are predicate positions (predicate, column);
//   - for each dependency σ (a tgd, or a rule read as a full tgd) and each
//     frontier variable x (occurring on both sides), a normal edge runs
//     from every position of x in the left-hand side to every position of
//     x in the right-hand side (a value copied across an application);
//   - additionally, a special edge runs from every left-hand position of a
//     frontier variable to every position of an existential variable of σ
//     (a fresh labeled null created from that value).
//
// The classes, from strongest to weakest:
//
//   - weakly acyclic (Fagin et al.): no cycle passes through a special
//     edge. Every chase terminates; positions have finite rank (the
//     maximum number of special edges on a path into them), bounding null
//     generation level by level.
//   - jointly acyclic (Krötzsch & Rudolph): the existential-dependency
//     graph over the existential variables is acyclic — y → y' when the
//     rule of y' has a frontier variable all of whose body positions can
//     hold y's nulls (the Ω-set closure below). Strictly contains weak
//     acyclicity; the chase still always terminates.
//   - sticky (Calì, Gottlob & Pieris): the variable-marking fixpoint marks
//     no variable occurring twice in a body. The chase may diverge but
//     query answering is decidable.
//   - weakly sticky: every marked variable occurring twice in a body has
//     at least one occurrence at a finite-rank position.
//
// Anything outside the ladder is divergence-capable: a budget cutoff is
// load-bearing, not just a safety net.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
)

// Position identifies one argument position of a predicate. Col is 0-based;
// String renders it 1-based in the conventional pred[i] notation.
type Position struct {
	Pred string
	Col  int
}

// String renders the position as "Pred[i]" with a 1-based column.
func (p Position) String() string { return fmt.Sprintf("%s[%d]", p.Pred, p.Col+1) }

// DepRef names the dependency an edge or witness came from: an index into
// the classified program's rules or into the tgd set (the other is -1).
type DepRef struct {
	Rule int
	TGD  int
}

// TerminationClass is the machine-readable verdict of ClassifyTGDs. The
// ladder orders the classes: weak acyclicity implies joint acyclicity
// (chase-terminating), stickiness implies weak stickiness (decidable query
// answering over a possibly infinite chase).
type TerminationClass int

const (
	// TermUnclassified means no classification ran (analysis disabled).
	TermUnclassified TerminationClass = iota
	// TermWeaklyAcyclic: no position-graph cycle through a special edge.
	TermWeaklyAcyclic
	// TermJointlyAcyclic: not weakly acyclic, but the existential-dependency
	// graph is acyclic; the chase still always terminates.
	TermJointlyAcyclic
	// TermSticky: the chase may diverge, but the sticky marking has no join
	// violation, so query answering stays decidable.
	TermSticky
	// TermWeaklySticky: every marked join variable keeps an occurrence at a
	// finite-rank position.
	TermWeaklySticky
	// TermDivergent: outside every class above — the chase is
	// divergence-capable and budgets are load-bearing.
	TermDivergent
)

// String renders the class in the hyphenated form diagnostics use.
func (c TerminationClass) String() string {
	switch c {
	case TermWeaklyAcyclic:
		return "weakly-acyclic"
	case TermJointlyAcyclic:
		return "jointly-acyclic"
	case TermSticky:
		return "sticky"
	case TermWeaklySticky:
		return "weakly-sticky"
	case TermDivergent:
		return "divergence-capable"
	default:
		return "unclassified"
	}
}

// ChaseTerminates reports whether every chase of a set in this class
// reaches a finite fixpoint — the classes for which a derived budget can
// replace the raw default (see Classification.DerivedBudget).
func (c TerminationClass) ChaseTerminates() bool {
	return c == TermWeaklyAcyclic || c == TermJointlyAcyclic
}

// WACycle witnesses a weak-acyclicity failure: a position cycle whose first
// edge is special. Cycle[0] == Cycle[len-1]; Origins[i] names the
// dependency contributing the edge Cycle[i] → Cycle[i+1].
type WACycle struct {
	Cycle   []Position
	Origins []DepRef
}

// String renders the cycle with "=>" for the special first edge and "->"
// for the normal edges closing it.
func (w *WACycle) String() string {
	var sb strings.Builder
	for i, p := range w.Cycle {
		if i == 1 {
			sb.WriteString(" => ")
		} else if i > 1 {
			sb.WriteString(" -> ")
		}
		sb.WriteString(p.String())
	}
	return sb.String()
}

// ExistVar names one existential variable: the dependency introducing it
// and its name there.
type ExistVar struct {
	Dep DepRef
	Var string
}

// MarkedJoin witnesses a sticky-marking violation: a marked variable
// occurring more than once in one dependency's left-hand side.
type MarkedJoin struct {
	Dep DepRef
	Var string
	// Positions are the variable's distinct left-hand-side positions in
	// occurrence order; Occurrences counts every occurrence.
	Positions   []Position
	Occurrences int
	// FiniteRank reports whether at least one occurrence sits at a
	// finite-rank position — the weak-stickiness rescue.
	FiniteRank bool
}

// Classification is the result of ClassifyTGDs: the class, witnesses for
// each failed classifier (nil when that classifier passed), and the finite
// position ranks the weak-stickiness check and budget derivation use.
type Classification struct {
	Class TerminationClass
	// Full reports that every tgd is full (no existential variables), so
	// the whole set is expressible as plain rules (ast.TGD.AsRules) and the
	// chase collapses to a single Datalog fixpoint.
	Full bool
	// WAViolation is the special-edge cycle when the set is not weakly
	// acyclic; JAViolation the existential-dependency cycle when not
	// jointly acyclic; StickyViolation the marked join variable when not
	// sticky (for weakly-sticky sets it is the rescued join).
	WAViolation     *WACycle
	JAViolation     []ExistVar
	StickyViolation *MarkedJoin
	// Ranks maps each finite-rank position to its rank (positions reachable
	// from a special cycle are omitted — their rank is infinite); MaxRank is
	// the largest finite rank.
	Ranks   map[Position]int
	MaxRank int

	// Schema summary feeding DerivedBudget.
	deps       int // dependencies (rules + tgds)
	maxUniv    int // most left-hand-side variables of one dependency
	maxExist   int // most existential variables of one dependency
	existTotal int // existential variables across the whole set
	preds      int // distinct predicates
	maxArity   int // widest atom
	consts     int // constant occurrences in the dependencies' atoms
}

// boundCap saturates derived-budget arithmetic: the bound only needs to
// never cut off a terminating chase, so overflow clamps to "effectively
// unbounded" while staying a valid int.
const boundCap = 1 << 60

func satAdd(a, b int) int {
	if a > boundCap-b {
		return boundCap
	}
	return a + b
}

func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > boundCap/b {
		return boundCap
	}
	return a * b
}

func satPow(a, b int) int {
	out := 1
	for i := 0; i < b; i++ {
		out = satMul(out, a)
	}
	return out
}

// DerivedBudget converts a terminating classification into chase limits
// guaranteed to cover the full chase of any database with at most nConsts
// distinct constants: values are bounded level by level (each level of the
// finite-rank / existential-dependency hierarchy fires at most
// deps·vᵐᵃˣᵁⁿⁱᵛ distinct instantiations, each creating at most maxExist
// nulls), and the atom count by preds·vᵐᵃˣᴬʳⁱᵗʸ over the final value bound.
// Arithmetic saturates at boundCap, so astronomically large but finite
// bounds degrade to "effectively unbounded" — sound, because the class
// already proves the chase reaches its fixpoint. Zero limits are returned
// for classes that do not terminate.
func (c Classification) DerivedBudget(nConsts int) (maxAtoms, maxRounds int) {
	if !c.Class.ChaseTerminates() {
		return 0, 0
	}
	// The active domain starts from the database's constants plus any
	// constants the dependencies themselves introduce.
	v := satAdd(satAdd(nConsts, c.consts), 1)
	// One iteration per level of null creation: finite ranks bound the
	// depth for weakly acyclic sets, the existential-dependency order (at
	// most one level per existential variable) for jointly acyclic ones.
	levels := c.MaxRank + c.existTotal + 1
	for i := 0; i < levels; i++ {
		firings := satMul(c.deps, satPow(v, c.maxUniv))
		v = satAdd(v, satMul(firings, c.maxExist))
	}
	preds, arity := c.preds, c.maxArity
	if preds < 1 {
		preds = 1
	}
	if arity < 1 {
		arity = 1
	}
	maxAtoms = satMul(preds, satPow(v, arity))
	return maxAtoms, satAdd(maxAtoms, 1)
}

// posDep is one normalized dependency: a rule read as a full tgd
// (body → head) or a tgd proper, with its variable-occurrence structure
// precomputed as position-node ids.
type posDep struct {
	ref      DepRef
	lhsPos   map[string][]int // var → node ids of left-hand occurrences
	rhsPos   map[string][]int // var → node ids of right-hand occurrences
	lhsOrder []string         // left-hand variables in first-occurrence order
	lhsOcc   map[string]int   // var → number of left-hand occurrences
	exist    []string         // right-hand-only variables, first-occurrence order
}

// posEdge is one position-graph edge, annotated with its source dependency.
type posEdge struct {
	to      int
	special bool
	dep     int
}

// PositionGraph is the position dependency graph of a rule + tgd set.
type PositionGraph struct {
	nodes []Position
	index map[Position]int
	adj   [][]posEdge
	deps  []posDep

	preds    map[string]bool
	maxArity int
	consts   int // constant occurrences in the dependencies' atoms
}

// NewPositionGraph builds the position graph over the given rules and tgds.
// Rules participate as full tgds (normal edges only, body → head); negated
// body atoms are ignored — safety binds their variables in the positive
// body, so they copy no values a positive atom does not.
func NewPositionGraph(rules []ast.Rule, tgds []ast.TGD) *PositionGraph {
	g := &PositionGraph{index: make(map[Position]int), preds: make(map[string]bool)}
	for i, r := range rules {
		g.addDep(DepRef{Rule: i, TGD: -1}, r.Body, []ast.Atom{r.Head})
	}
	for i, t := range tgds {
		g.addDep(DepRef{Rule: -1, TGD: i}, t.Lhs, t.Rhs)
	}
	return g
}

func (g *PositionGraph) node(p Position) int {
	if i, ok := g.index[p]; ok {
		return i
	}
	i := len(g.nodes)
	g.index[p] = i
	g.nodes = append(g.nodes, p)
	g.adj = append(g.adj, nil)
	return i
}

// varPositions maps each variable of the atoms to the node ids of its
// occurrences (one entry per occurrence, duplicates included), recording
// first-occurrence order and occurrence counts as it goes.
func (g *PositionGraph) varPositions(atoms []ast.Atom, order *[]string, occ map[string]int) map[string][]int {
	pos := make(map[string][]int)
	for _, a := range atoms {
		g.preds[a.Pred] = true
		if len(a.Args) > g.maxArity {
			g.maxArity = len(a.Args)
		}
		for i, tm := range a.Args {
			if !tm.IsVar {
				g.consts++
				continue
			}
			n := g.node(Position{Pred: a.Pred, Col: i})
			if _, seen := pos[tm.Name]; !seen && order != nil {
				*order = append(*order, tm.Name)
			}
			pos[tm.Name] = append(pos[tm.Name], n)
			if occ != nil {
				occ[tm.Name]++
			}
		}
	}
	return pos
}

func (g *PositionGraph) addDep(ref DepRef, lhs, rhs []ast.Atom) {
	d := posDep{ref: ref, lhsOcc: make(map[string]int)}
	d.lhsPos = g.varPositions(lhs, &d.lhsOrder, d.lhsOcc)
	var rhsOrder []string
	d.rhsPos = g.varPositions(rhs, &rhsOrder, nil)
	for _, v := range rhsOrder {
		if _, univ := d.lhsPos[v]; !univ {
			d.exist = append(d.exist, v)
		}
	}
	di := len(g.deps)
	g.deps = append(g.deps, d)

	// Edges: per frontier variable, normal edges to its own right-hand
	// positions and special edges to every existential position of the
	// dependency. Deduplicated per dependency to keep witnesses short.
	type ekey struct {
		from, to int
		special  bool
	}
	seen := make(map[ekey]bool)
	add := func(from, to int, special bool) {
		k := ekey{from, to, special}
		if seen[k] {
			return
		}
		seen[k] = true
		g.adj[from] = append(g.adj[from], posEdge{to: to, special: special, dep: di})
	}
	var existPos []int
	for _, y := range d.exist {
		existPos = append(existPos, d.rhsPos[y]...)
	}
	for _, x := range d.lhsOrder {
		tos, frontier := d.rhsPos[x]
		if !frontier {
			continue
		}
		for _, from := range d.lhsPos[x] {
			for _, to := range tos {
				add(from, to, false)
			}
			for _, to := range existPos {
				add(from, to, true)
			}
		}
	}
}

// Positions returns the graph's positions in first-seen order.
func (g *PositionGraph) Positions() []Position {
	out := make([]Position, len(g.nodes))
	copy(out, g.nodes)
	return out
}

// sccIDs runs Tarjan over the position nodes; as in Graph.SCCs, every edge
// leads from a later-assigned component to an earlier-assigned one or stays
// inside, so increasing component id is reverse topological order.
func (g *PositionGraph) sccIDs() []int {
	n := len(g.nodes)
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	id := make([]int, n)
	for i := range indexOf {
		indexOf[i] = -1
	}
	var stack []int
	counter, comps := 0, 0
	var strongconnect func(v int)
	strongconnect = func(v int) {
		indexOf[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range g.adj[v] {
			w := e.to
			if indexOf[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexOf[w] < low[v] {
				low[v] = indexOf[w]
			}
		}
		if low[v] == indexOf[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				id[w] = comps
				if w == v {
					break
				}
			}
			comps++
		}
	}
	for v := 0; v < n; v++ {
		if indexOf[v] == -1 {
			strongconnect(v)
		}
	}
	return id
}

// specialCycle returns the witness cycle of the first special edge lying
// inside a strongly connected component, or nil when none does (weak
// acyclicity). Deterministic: first-seen node order, first matching edge,
// shortest return path — the NegativeCycle discipline, with edge origins
// carried along for diagnostics.
func (g *PositionGraph) specialCycle(scc []int) *WACycle {
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if !e.special || scc[u] != scc[e.to] {
				continue
			}
			w := &WACycle{
				Cycle:   []Position{g.nodes[u]},
				Origins: []DepRef{g.deps[e.dep].ref},
			}
			nodes, origins := g.pathWithin(e.to, u, scc)
			for _, v := range nodes {
				w.Cycle = append(w.Cycle, g.nodes[v])
			}
			w.Origins = append(w.Origins, origins...)
			return w
		}
	}
	return nil
}

// pathWithin returns a shortest node path from → … → to inside from's
// strongly connected component, plus the origin of each edge taken.
func (g *PositionGraph) pathWithin(from, to int, scc []int) ([]int, []DepRef) {
	if from == to {
		return []int{from}, nil
	}
	comp := scc[from]
	parent := make([]int, len(g.nodes))
	parentDep := make([]int, len(g.nodes))
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []int{from}
	for len(queue) > 0 && parent[to] == -1 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if parent[e.to] == -1 && scc[e.to] == comp {
				parent[e.to] = v
				parentDep[e.to] = e.dep
				queue = append(queue, e.to)
			}
		}
	}
	if parent[to] == -1 {
		// Cannot happen for two nodes of one component; degrade rather than
		// panic.
		return []int{from, to}, []DepRef{g.deps[0].ref}
	}
	var nodes []int
	var origins []DepRef
	for v := to; v != from; v = parent[v] {
		nodes = append(nodes, v)
		origins = append(origins, g.deps[parentDep[v]].ref)
	}
	nodes = append(nodes, from)
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	for i, j := 0, len(origins)-1; i < j; i, j = i+1, j-1 {
		origins[i], origins[j] = origins[j], origins[i]
	}
	return nodes, origins
}

// ranks computes the per-position rank: the maximum number of special edges
// on any path ending at the position, or -1 when unbounded (the position is
// reachable from a component containing an internal special edge). The DP
// runs over the condensation in topological order: Tarjan assigns smaller
// component ids to successors, so decreasing id order visits predecessors
// first.
func (g *PositionGraph) ranks(scc []int) []int {
	nComp := 0
	for _, c := range scc {
		if c+1 > nComp {
			nComp = c + 1
		}
	}
	infinite := make([]bool, nComp)
	rankC := make([]int, nComp)
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if e.special && scc[u] == scc[e.to] {
				infinite[scc[u]] = true
			}
		}
	}
	// Group edges by source component, then sweep components predecessors
	// first, relaxing each outgoing edge into its target component.
	bySrc := make([][]posEdge, nComp)
	for u := range g.adj {
		bySrc[scc[u]] = append(bySrc[scc[u]], g.adj[u]...)
	}
	for c := nComp - 1; c >= 0; c-- {
		for _, e := range bySrc[c] {
			tc := scc[e.to]
			if infinite[c] {
				infinite[tc] = true
				continue
			}
			w := rankC[c]
			if e.special {
				w++
			}
			if tc != c && w > rankC[tc] {
				rankC[tc] = w
			}
			if tc == c && e.special {
				infinite[tc] = true // defensive; caught above
			}
		}
	}
	out := make([]int, len(g.nodes))
	for v := range out {
		if infinite[scc[v]] {
			out[v] = -1
		} else {
			out[v] = rankC[scc[v]]
		}
	}
	return out
}

// existVars lists every existential variable of the set in dependency
// order, paired with its right-hand-side positions.
func (g *PositionGraph) existVars() []ExistVar {
	var out []ExistVar
	for _, d := range g.deps {
		for _, y := range d.exist {
			out = append(out, ExistVar{Dep: d.ref, Var: y})
		}
	}
	return out
}

// omega computes Ω(y) for existential variable y of dependency dy: the set
// of positions (node ids) its nulls can reach, by the standard closure —
// seed with y's own positions, then repeatedly add the right-hand positions
// of any frontier variable all of whose left-hand positions already lie in
// the set.
func (g *PositionGraph) omega(dy int, y string) []bool {
	in := make([]bool, len(g.nodes))
	for _, p := range g.deps[dy].rhsPos[y] {
		in[p] = true
	}
	for changed := true; changed; {
		changed = false
		for _, d := range g.deps {
			for _, x := range d.lhsOrder {
				rpos, frontier := d.rhsPos[x]
				if !frontier {
					continue
				}
				all := true
				for _, p := range d.lhsPos[x] {
					if !in[p] {
						all = false
						break
					}
				}
				if !all {
					continue
				}
				for _, p := range rpos {
					if !in[p] {
						in[p] = true
						changed = true
					}
				}
			}
		}
	}
	return in
}

// jaCycle builds the existential-dependency graph — an edge y → y' when
// the dependency of y' has a frontier variable whose every left-hand
// position lies in Ω(y) — and returns a cycle as witness, or nil when the
// graph is acyclic (joint acyclicity).
func (g *PositionGraph) jaCycle() []ExistVar {
	type ev struct {
		dep int
		v   string
	}
	var evs []ev
	for di, d := range g.deps {
		for _, y := range d.exist {
			evs = append(evs, ev{dep: di, v: y})
		}
	}
	n := len(evs)
	if n == 0 {
		return nil
	}
	adj := make([][]int, n)
	for i, e := range evs {
		om := g.omega(e.dep, e.v)
		for j, t := range evs {
			d := g.deps[t.dep]
			for _, x := range d.lhsOrder {
				if _, frontier := d.rhsPos[x]; !frontier {
					continue
				}
				all := true
				for _, p := range d.lhsPos[x] {
					if !om[p] {
						all = false
						break
					}
				}
				if all {
					adj[i] = append(adj[i], j)
					break
				}
			}
		}
	}
	// DFS cycle detection with the gray stack as witness.
	color := make([]int, n)
	var stack []int
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		color[v] = 1
		stack = append(stack, v)
		for _, w := range adj[v] {
			if color[w] == 1 {
				for i, s := range stack {
					if s == w {
						cycle = append(append([]int(nil), stack[i:]...), w)
						return true
					}
				}
			}
			if color[w] == 0 && dfs(w) {
				return true
			}
		}
		color[v] = 2
		stack = stack[:len(stack)-1]
		return false
	}
	for v := 0; v < n; v++ {
		if color[v] == 0 && dfs(v) {
			break
		}
	}
	if cycle == nil {
		return nil
	}
	out := make([]ExistVar, len(cycle))
	for i, v := range cycle {
		out[i] = ExistVar{Dep: g.deps[evs[v].dep].ref, Var: evs[v].v}
	}
	return out
}

// stickyMarking runs the variable-marking fixpoint: mark every left-hand
// variable missing from its right-hand side, then propagate — a variable
// occurring on some right-hand side at a position where any dependency
// holds a marked left-hand variable becomes marked in its own left-hand
// side — until nothing changes.
func (g *PositionGraph) stickyMarking() []map[string]bool {
	marked := make([]map[string]bool, len(g.deps))
	for di, d := range g.deps {
		marked[di] = make(map[string]bool)
		for _, v := range d.lhsOrder {
			if _, keeps := d.rhsPos[v]; !keeps {
				marked[di][v] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		markedAt := make([]bool, len(g.nodes))
		for di, d := range g.deps {
			for v := range marked[di] {
				for _, p := range d.lhsPos[v] {
					markedAt[p] = true
				}
			}
		}
		for di, d := range g.deps {
			for _, v := range d.lhsOrder {
				if marked[di][v] {
					continue
				}
				for _, p := range d.rhsPos[v] {
					if markedAt[p] {
						marked[di][v] = true
						changed = true
						break
					}
				}
			}
		}
	}
	return marked
}

// markedJoins lists, in dependency order, every marked variable occurring
// more than once in its left-hand side — the sticky violations — with the
// finite-rank flag weak stickiness keys on.
func (g *PositionGraph) markedJoins(marked []map[string]bool, rank []int) []MarkedJoin {
	var out []MarkedJoin
	for di, d := range g.deps {
		for _, v := range d.lhsOrder {
			if !marked[di][v] || d.lhsOcc[v] < 2 {
				continue
			}
			j := MarkedJoin{Dep: d.ref, Var: v, Occurrences: d.lhsOcc[v]}
			seen := make(map[int]bool)
			for _, p := range d.lhsPos[v] {
				if rank[p] >= 0 {
					j.FiniteRank = true
				}
				if !seen[p] {
					seen[p] = true
					j.Positions = append(j.Positions, g.nodes[p])
				}
			}
			out = append(out, j)
		}
	}
	return out
}

// Classify runs the full classifier ladder over the graph.
func (g *PositionGraph) Classify() Classification {
	cl := Classification{
		deps:     len(g.deps),
		preds:    len(g.preds),
		maxArity: g.maxArity,
		consts:   g.consts,
	}
	cl.Full = true
	for _, d := range g.deps {
		if len(d.lhsPos) > cl.maxUniv {
			cl.maxUniv = len(d.lhsPos)
		}
		if len(d.exist) > cl.maxExist {
			cl.maxExist = len(d.exist)
		}
		cl.existTotal += len(d.exist)
		if d.ref.TGD >= 0 && len(d.exist) > 0 {
			cl.Full = false
		}
	}

	scc := g.sccIDs()
	rank := g.ranks(scc)
	cl.Ranks = make(map[Position]int, len(rank))
	for v, r := range rank {
		if r >= 0 {
			cl.Ranks[g.nodes[v]] = r
			if r > cl.MaxRank {
				cl.MaxRank = r
			}
		}
	}

	cl.WAViolation = g.specialCycle(scc)
	if cl.WAViolation == nil {
		cl.Class = TermWeaklyAcyclic
		return cl
	}
	cl.JAViolation = g.jaCycle()
	if cl.JAViolation == nil {
		cl.Class = TermJointlyAcyclic
		return cl
	}
	joins := g.markedJoins(g.stickyMarking(), rank)
	if len(joins) == 0 {
		cl.Class = TermSticky
		return cl
	}
	for i := range joins {
		if !joins[i].FiniteRank {
			cl.Class = TermDivergent
			cl.StickyViolation = &joins[i]
			return cl
		}
	}
	cl.Class = TermWeaklySticky
	cl.StickyViolation = &joins[0]
	return cl
}

// ClassifyTGDs classifies the chase-termination behavior of running rules
// and tgds together — the combined [P, T] application of Section VIII. The
// result is deterministic in the input order (witness selection follows
// first-occurrence order throughout).
func ClassifyTGDs(rules []ast.Rule, tgds []ast.TGD) Classification {
	return NewPositionGraph(rules, tgds).Classify()
}

// FormatExistCycle renders a JA violation as "y@σ1 -> y'@σ2 -> …".
func FormatExistCycle(cycle []ExistVar) string {
	parts := make([]string, len(cycle))
	for i, e := range cycle {
		switch {
		case e.Dep.TGD >= 0:
			parts[i] = fmt.Sprintf("%s (tgd %d)", e.Var, e.Dep.TGD+1)
		default:
			parts[i] = fmt.Sprintf("%s (rule %d)", e.Var, e.Dep.Rule+1)
		}
	}
	return strings.Join(parts, " -> ")
}

// FormatPositions renders positions comma-separated in a stable order
// (occurrence order as given).
func FormatPositions(ps []Position) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// SortPositions orders positions by predicate then column (for callers
// needing a canonical order rather than occurrence order).
func SortPositions(ps []Position) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].Pred != ps[j].Pred {
			return ps[i].Pred < ps[j].Pred
		}
		return ps[i].Col < ps[j].Col
	})
}
