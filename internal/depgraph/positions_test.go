package depgraph

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func tgds(t *testing.T, srcs ...string) []ast.TGD {
	t.Helper()
	out := make([]ast.TGD, len(srcs))
	for i, s := range srcs {
		out[i] = parser.MustParseTGD(s)
	}
	return out
}

func TestClassifyWeaklyAcyclic(t *testing.T) {
	cl := ClassifyTGDs(nil, tgds(t,
		"P(x) -> Q(x, y).",
		"Q(x, y) -> R(y).",
	))
	if cl.Class != TermWeaklyAcyclic {
		t.Fatalf("class = %v, want weakly-acyclic", cl.Class)
	}
	if cl.WAViolation != nil {
		t.Fatalf("unexpected WA witness %v", cl.WAViolation)
	}
	if !cl.Class.ChaseTerminates() {
		t.Fatal("weakly acyclic must report a terminating chase")
	}
	// Q[2] receives a null (rank 1); R[1] copies it (still rank 1).
	if r := cl.Ranks[Position{"Q", 1}]; r != 1 {
		t.Fatalf("rank(Q[2]) = %d, want 1", r)
	}
	if r := cl.Ranks[Position{"R", 0}]; r != 1 {
		t.Fatalf("rank(R[1]) = %d, want 1", r)
	}
	if cl.MaxRank != 1 {
		t.Fatalf("MaxRank = %d, want 1", cl.MaxRank)
	}
	if cl.Full {
		t.Fatal("set has existentials; Full must be false")
	}
}

func TestClassifyJointlyAcyclicOnly(t *testing.T) {
	// The WA cycle B[1] => R[2] -> S[1] -> B[1] exists, but Ω(v) =
	// {R[2], S[1]} never covers x's body position B[1], so the
	// existential-dependency graph has no edge at all.
	cl := ClassifyTGDs(nil, tgds(t,
		"B(x) -> R(x, v).",
		"R(x, v) -> S(v).",
		"S(v), T(v) -> B(v).",
	))
	if cl.Class != TermJointlyAcyclic {
		t.Fatalf("class = %v, want jointly-acyclic", cl.Class)
	}
	if cl.WAViolation == nil {
		t.Fatal("expected a weak-acyclicity witness cycle")
	}
	got := cl.WAViolation.String()
	if !strings.Contains(got, "=>") || !strings.Contains(got, "R[2]") {
		t.Fatalf("witness %q should pass through the special edge into R[2]", got)
	}
	first, last := cl.WAViolation.Cycle[0], cl.WAViolation.Cycle[len(cl.WAViolation.Cycle)-1]
	if first != last {
		t.Fatalf("witness cycle %v must close on itself", cl.WAViolation.Cycle)
	}
	if len(cl.WAViolation.Origins) != len(cl.WAViolation.Cycle)-1 {
		t.Fatalf("origins %v must name one dependency per edge of %v",
			cl.WAViolation.Origins, cl.WAViolation.Cycle)
	}
	if cl.JAViolation != nil {
		t.Fatalf("unexpected JA witness %v", cl.JAViolation)
	}
	if !cl.Class.ChaseTerminates() {
		t.Fatal("jointly acyclic must report a terminating chase")
	}
}

func TestClassifyStickyOnly(t *testing.T) {
	// R(x,y) -> R(y,z): the self special edge breaks WA, Ω(z) ∋ both R
	// positions gives the JA self-loop z -> z, but x and y each occur once
	// per body, so the marking finds no join.
	cl := ClassifyTGDs(nil, tgds(t, "R(x, y) -> R(y, z)."))
	if cl.Class != TermSticky {
		t.Fatalf("class = %v, want sticky", cl.Class)
	}
	if cl.WAViolation == nil || cl.JAViolation == nil {
		t.Fatalf("expected both WA and JA witnesses, got %v / %v",
			cl.WAViolation, cl.JAViolation)
	}
	if cl.Class.ChaseTerminates() {
		t.Fatal("sticky alone must not claim chase termination")
	}
	if a, m := cl.DerivedBudget(3); a != 0 || m != 0 {
		t.Fatalf("non-terminating class derived a budget (%d, %d)", a, m)
	}
}

func TestClassifyDivergent(t *testing.T) {
	// The join variable y of the rule sits at R[1]/R[2], both infinite-rank
	// because of the R(x,y) -> R(y,z) generator, and y is marked (it does
	// not reach the rule head).
	prog := parser.MustParseProgram("T(x, w) :- R(x, y), R(y, w).")
	cl := ClassifyTGDs(prog.Rules, tgds(t, "R(x, y) -> R(y, z)."))
	if cl.Class != TermDivergent {
		t.Fatalf("class = %v, want divergence-capable", cl.Class)
	}
	if cl.StickyViolation == nil {
		t.Fatal("expected a marked-join witness")
	}
	if cl.StickyViolation.Var != "y" {
		t.Fatalf("marked join var = %q, want y", cl.StickyViolation.Var)
	}
	if cl.StickyViolation.FiniteRank {
		t.Fatal("divergent witness must have no finite-rank occurrence")
	}
	if cl.StickyViolation.Occurrences != 2 {
		t.Fatalf("occurrences = %d, want 2", cl.StickyViolation.Occurrences)
	}
}

func TestClassifyWeaklySticky(t *testing.T) {
	// Same generator, but the join now ranges over the extensional D whose
	// positions have rank 0 — weak stickiness rescues it.
	prog := parser.MustParseProgram("E(x, w) :- D(x, y), D(y, w).")
	cl := ClassifyTGDs(prog.Rules, tgds(t, "R(x, y) -> R(y, z)."))
	if cl.Class != TermWeaklySticky {
		t.Fatalf("class = %v, want weakly-sticky", cl.Class)
	}
	if cl.StickyViolation == nil || !cl.StickyViolation.FiniteRank {
		t.Fatalf("expected a finite-rank-rescued join, got %v", cl.StickyViolation)
	}
}

func TestClassifyFullSet(t *testing.T) {
	cl := ClassifyTGDs(nil, tgds(t, "A(x), B(x) -> C(x)."))
	if !cl.Full {
		t.Fatal("full tgd set must be flagged Full")
	}
	if cl.Class != TermWeaklyAcyclic {
		t.Fatalf("class = %v, want weakly-acyclic (no special edges at all)", cl.Class)
	}
}

func TestClassifyRulesOnlyCycleStaysWA(t *testing.T) {
	// Recursive plain rules cycle through normal edges only.
	prog := parser.MustParseProgram("T(x, z) :- T(x, y), E(y, z).\nT(x, y) :- E(x, y).")
	cl := ClassifyTGDs(prog.Rules, nil)
	if cl.Class != TermWeaklyAcyclic {
		t.Fatalf("class = %v, want weakly-acyclic", cl.Class)
	}
	if !cl.Full {
		t.Fatal("rules-only input is trivially full")
	}
}

func TestDerivedBudgetCoversSmallChase(t *testing.T) {
	cl := ClassifyTGDs(nil, tgds(t,
		"P(x) -> Q(x, y).",
		"Q(x, y) -> R(y).",
	))
	atoms, rounds := cl.DerivedBudget(2)
	if atoms <= 0 || rounds <= atoms {
		t.Fatalf("budget (%d, %d) not usable", atoms, rounds)
	}
	// 2 constants, 2 dependencies, 1 existential each: the real chase of
	// {P(a), P(b)} creates 2 nulls and ≤ 6 atoms. The derived bound must
	// dominate that comfortably.
	if atoms < 6 {
		t.Fatalf("derived MaxAtoms %d below the concrete chase size", atoms)
	}
}

func TestDerivedBudgetSaturates(t *testing.T) {
	// A wide, deep set must clamp at the cap instead of overflowing.
	srcs := []string{}
	prev := "A0"
	for i := 1; i <= 12; i++ {
		next := "A" + string(rune('0'+i%10)) + string(rune('a'+i))
		srcs = append(srcs, prev+"(x1, x2, x3, x4, x5, x6, x7, x8) -> "+
			next+"(x1, x2, x3, x4, x5, x6, x7, y1).")
		prev = next
	}
	cl := ClassifyTGDs(nil, tgds(t, srcs...))
	if !cl.Class.ChaseTerminates() {
		t.Fatalf("chain must be terminating, got %v", cl.Class)
	}
	atoms, rounds := cl.DerivedBudget(1000)
	if atoms != boundCap || rounds != boundCap {
		t.Fatalf("budget (%d, %d) should saturate at the cap", atoms, rounds)
	}
	if atoms < 0 || rounds < 0 {
		t.Fatal("saturating arithmetic overflowed")
	}
}

func TestPositionStringAndWitnessFormat(t *testing.T) {
	p := Position{Pred: "Edge", Col: 0}
	if p.String() != "Edge[1]" {
		t.Fatalf("Position.String = %q", p.String())
	}
	cyc := FormatExistCycle([]ExistVar{
		{Dep: DepRef{Rule: -1, TGD: 0}, Var: "z"},
		{Dep: DepRef{Rule: -1, TGD: 0}, Var: "z"},
	})
	if cyc != "z (tgd 1) -> z (tgd 1)" {
		t.Fatalf("FormatExistCycle = %q", cyc)
	}
}

func TestClassifyDeterministic(t *testing.T) {
	prog := parser.MustParseProgram("T(x, w) :- R(x, y), R(y, w).")
	ts := tgds(t, "R(x, y) -> R(y, z).", "B(x) -> R(x, v).")
	first := ClassifyTGDs(prog.Rules, ts)
	for i := 0; i < 20; i++ {
		again := ClassifyTGDs(prog.Rules, ts)
		if again.Class != first.Class {
			t.Fatalf("class flapped: %v vs %v", first.Class, again.Class)
		}
		if (again.WAViolation == nil) != (first.WAViolation == nil) ||
			(again.WAViolation != nil && again.WAViolation.String() != first.WAViolation.String()) {
			t.Fatalf("WA witness flapped: %v vs %v", first.WAViolation, again.WAViolation)
		}
		if (again.StickyViolation == nil) != (first.StickyViolation == nil) ||
			(again.StickyViolation != nil && again.StickyViolation.Var != first.StickyViolation.Var) {
			t.Fatalf("sticky witness flapped")
		}
	}
}
