// Package depgraph implements the dependence graph of Section III: a node
// per predicate, and an edge from predicate Q to predicate R whenever Q
// appears in the body of a rule whose head is R. On top of the graph it
// provides strongly connected components, the paper's notions of recursive
// program / predicate / rule and linear program, and — for the
// stratified-negation extension announced in Section XII — stratification.
package depgraph

import (
	"fmt"
	"sort"

	"repro/internal/ast"
)

// Graph is the dependence graph of a program. Edges with Negative set come
// from negated body atoms and only matter for stratification.
type Graph struct {
	preds []string
	index map[string]int
	// adj[i] lists edges leaving predicate i (body pred -> head pred).
	adj [][]edge
}

type edge struct {
	to       int
	negative bool
}

// Build constructs the dependence graph of p.
func Build(p *ast.Program) *Graph {
	g := &Graph{index: make(map[string]int)}
	node := func(pred string) int {
		if i, ok := g.index[pred]; ok {
			return i
		}
		i := len(g.preds)
		g.index[pred] = i
		g.preds = append(g.preds, pred)
		g.adj = append(g.adj, nil)
		return i
	}
	for _, r := range p.Rules {
		h := node(r.Head.Pred)
		for _, a := range r.Body {
			b := node(a.Pred)
			g.adj[b] = append(g.adj[b], edge{to: h})
		}
		for _, a := range r.NegBody {
			b := node(a.Pred)
			g.adj[b] = append(g.adj[b], edge{to: h, negative: true})
		}
	}
	return g
}

// Preds returns the predicates of the graph in first-seen order.
func (g *Graph) Preds() []string {
	out := make([]string, len(g.preds))
	copy(out, g.preds)
	return out
}

// HasEdge reports whether the graph has an edge from body predicate `from`
// to head predicate `to`.
func (g *Graph) HasEdge(from, to string) bool {
	i, ok := g.index[from]
	if !ok {
		return false
	}
	j, ok := g.index[to]
	if !ok {
		return false
	}
	for _, e := range g.adj[i] {
		if e.to == j {
			return true
		}
	}
	return false
}

// ReachableFrom returns the predicates reachable from pred along dependence
// edges (body → head), including pred itself — the length-0 path counts.
// The containment layer uses it to bound the blast radius of a rule change:
// a derivation that uses a rule with head predicate H can only produce
// facts whose predicates are reachable from H, so goal predicates outside
// ReachableFrom(H) keep their verdicts when that rule changes.
func (g *Graph) ReachableFrom(pred string) map[string]bool {
	out := map[string]bool{pred: true}
	start, ok := g.index[pred]
	if !ok {
		return out
	}
	seen := make([]bool, len(g.preds))
	seen[start] = true
	queue := []int{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				out[g.preds[e.to]] = true
				queue = append(queue, e.to)
			}
		}
	}
	return out
}

// SCCs returns the strongly connected components in reverse topological
// order (every edge goes from an earlier or same component to a later or
// same one is NOT guaranteed; Tarjan yields components such that each edge
// leads from a later-emitted component to an earlier-emitted one or stays
// inside). Predicates within a component are sorted for determinism.
func (g *Graph) SCCs() [][]string {
	n := len(g.preds)
	indexOf := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = -1
	}
	var stack []int
	var comps [][]string
	counter := 0

	var strongconnect func(v int)
	strongconnect = func(v int) {
		indexOf[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range g.adj[v] {
			w := e.to
			if indexOf[w] == -1 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && indexOf[w] < low[v] {
				low[v] = indexOf[w]
			}
		}
		if low[v] == indexOf[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, g.preds[w])
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for v := 0; v < n; v++ {
		if indexOf[v] == -1 {
			strongconnect(v)
		}
	}
	return comps
}

// sccOf maps each predicate to the id of its component.
func (g *Graph) sccOf() map[string]int {
	comps := g.SCCs()
	m := make(map[string]int)
	for i, comp := range comps {
		for _, p := range comp {
			m[p] = i
		}
	}
	return m
}

// RecursivePreds returns the predicates lying on a cycle of the dependence
// graph (Section III: "a predicate Q is recursive if there is a path from Q
// to itself").
func (g *Graph) RecursivePreds() map[string]bool {
	scc := g.sccOf()
	sizes := make(map[int]int)
	for _, id := range scc {
		sizes[id]++
	}
	rec := make(map[string]bool)
	for pred, id := range scc {
		if sizes[id] > 1 {
			rec[pred] = true
			continue
		}
		// Singleton component: recursive only with a self-loop.
		i := g.index[pred]
		for _, e := range g.adj[i] {
			if e.to == i {
				rec[pred] = true
				break
			}
		}
	}
	return rec
}

// IsRecursive reports whether the program's dependence graph has a cycle.
func IsRecursive(p *ast.Program) bool {
	return len(Build(p).RecursivePreds()) > 0
}

// RecursiveRuleIndexes returns the indices of the recursive rules of p: a
// rule is recursive if the dependence graph has a cycle that includes the
// head predicate and some body predicate (Section III) — equivalently, if
// some body predicate lies in the same strongly connected component as the
// head and that component is cyclic.
func RecursiveRuleIndexes(p *ast.Program) []int {
	g := Build(p)
	scc := g.sccOf()
	rec := g.RecursivePreds()
	var out []int
	for i, r := range p.Rules {
		if !rec[r.Head.Pred] {
			continue
		}
		for _, a := range append(append([]ast.Atom{}, r.Body...), r.NegBody...) {
			if scc[a.Pred] == scc[r.Head.Pred] {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// IsLinear reports whether p is a linear program: the body of each rule has
// at most one recursive predicate (Section V).
func IsLinear(p *ast.Program) bool {
	rec := Build(p).RecursivePreds()
	for _, r := range p.Rules {
		n := 0
		for _, a := range r.Body {
			if rec[a.Pred] {
				n++
			}
		}
		for _, a := range r.NegBody {
			if rec[a.Pred] {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	return true
}

// NegativeCycle returns a cycle of predicates witnessing a stratification
// failure: path[0] == path[len(path)-1], consecutive predicates are joined
// by dependence edges (body → head), and the first edge is negative. It
// returns ok=false when every negative edge leaves its strongly connected
// component, i.e. the program is stratifiable. The witness is deterministic
// (first-seen predicate order, shortest return path), so diagnostics built
// from it are stable.
func (g *Graph) NegativeCycle() (path []string, ok bool) {
	scc := g.sccOf()
	for u := range g.adj {
		for _, e := range g.adj[u] {
			if !e.negative || scc[g.preds[u]] != scc[g.preds[e.to]] {
				continue
			}
			// u -!-> e.to, both in one component: close the cycle with a
			// shortest path e.to →* u inside that component.
			return append([]string{g.preds[u]}, g.pathWithin(e.to, u, scc)...), true
		}
	}
	return nil, false
}

// Cycle returns a shortest cycle closed by the dependence edge from → to:
// [from, to, ..., from]. ok is false when no such cycle exists, i.e. the
// two predicates are unknown or lie in different strongly connected
// components. The static analyzer uses it to attach a witness path to each
// offending negated atom, not just the first.
func (g *Graph) Cycle(from, to string) (path []string, ok bool) {
	i, okF := g.index[from]
	j, okT := g.index[to]
	if !okF || !okT {
		return nil, false
	}
	scc := g.sccOf()
	if scc[from] != scc[to] {
		return nil, false
	}
	return append([]string{from}, g.pathWithin(j, i, scc)...), true
}

// pathWithin returns the predicates of a shortest path from → ... → to using
// only nodes of from's strongly connected component (from and to included).
func (g *Graph) pathWithin(from, to int, scc map[string]int) []string {
	comp := scc[g.preds[from]]
	parent := make([]int, len(g.preds))
	for i := range parent {
		parent[i] = -1
	}
	parent[from] = from
	queue := []int{from}
	for len(queue) > 0 && parent[to] == -1 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if parent[e.to] == -1 && scc[g.preds[e.to]] == comp {
				parent[e.to] = v
				queue = append(queue, e.to)
			}
		}
	}
	if parent[to] == -1 {
		// Unreachable within the component — cannot happen for nodes of one
		// SCC, but degrade to the two endpoints rather than panic.
		return []string{g.preds[from], g.preds[to]}
	}
	var rev []int
	for v := to; ; v = parent[v] {
		rev = append(rev, v)
		if v == from {
			break
		}
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		out = append(out, g.preds[rev[i]])
	}
	return out
}

// Strata partitions the program's predicates into strata for stratified
// negation: predicates in the same SCC share a stratum, negative edges must
// cross strictly upward, and positive edges never go downward. It returns
// an error when the program is not stratifiable (a negative edge inside a
// cycle).
func Strata(p *ast.Program) ([][]string, error) {
	g := Build(p)
	scc := g.sccOf()

	// Detect negative edges within a component.
	for from, i := range g.index {
		for _, e := range g.adj[i] {
			if e.negative && scc[from] == scc[g.preds[e.to]] {
				return nil, fmt.Errorf("depgraph: program is not stratifiable: negation through recursion between %s and %s", from, g.preds[e.to])
			}
		}
	}

	// Longest-path layering over the condensation: stratum(head) ≥
	// stratum(body) for positive edges and > for negative edges.
	nComp := 0
	for _, id := range scc {
		if id+1 > nComp {
			nComp = id + 1
		}
	}
	level := make([]int, nComp)
	changed := true
	for iter := 0; changed; iter++ {
		if iter > nComp+1 {
			return nil, fmt.Errorf("depgraph: stratification did not converge")
		}
		changed = false
		for from, i := range g.index {
			for _, e := range g.adj[i] {
				cf, ct := scc[from], scc[g.preds[e.to]]
				min := level[cf]
				if e.negative {
					min++
				}
				if level[ct] < min {
					level[ct] = min
					changed = true
				}
			}
		}
	}
	maxLevel := 0
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	strata := make([][]string, maxLevel+1)
	for pred, id := range scc {
		strata[level[id]] = append(strata[level[id]], pred)
	}
	for _, s := range strata {
		sort.Strings(s)
	}
	return strata, nil
}
