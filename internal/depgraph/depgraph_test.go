package depgraph

import (
	"reflect"
	"testing"

	"repro/internal/ast"
)

func tc() *ast.Program {
	return ast.NewProgram(
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("A", ast.Var("x"), ast.Var("z"))),
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("G", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("G", ast.Var("y"), ast.Var("z"))),
	)
}

func TestEdges(t *testing.T) {
	g := Build(tc())
	if !g.HasEdge("A", "G") {
		t.Fatal("missing edge A->G")
	}
	if !g.HasEdge("G", "G") {
		t.Fatal("missing self edge G->G")
	}
	if g.HasEdge("G", "A") {
		t.Fatal("phantom edge G->A")
	}
	if g.HasEdge("Z", "G") || g.HasEdge("A", "Z") {
		t.Fatal("edge involving unknown predicate")
	}
}

func TestRecursive(t *testing.T) {
	p := tc()
	if !IsRecursive(p) {
		t.Fatal("TC not recursive")
	}
	rec := Build(p).RecursivePreds()
	if !rec["G"] || rec["A"] {
		t.Fatalf("RecursivePreds = %v", rec)
	}

	nonrec := ast.NewProgram(
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("A", ast.Var("x"), ast.Var("z"))),
	)
	if IsRecursive(nonrec) {
		t.Fatal("non-recursive program reported recursive")
	}
}

func TestMutualRecursion(t *testing.T) {
	// P :- Q, Q :- P: both recursive although neither has a self-loop.
	p := ast.NewProgram(
		ast.NewRule(ast.NewAtom("P", ast.Var("x")), ast.NewAtom("Q", ast.Var("x"))),
		ast.NewRule(ast.NewAtom("Q", ast.Var("x")), ast.NewAtom("P", ast.Var("x"))),
	)
	rec := Build(p).RecursivePreds()
	if !rec["P"] || !rec["Q"] {
		t.Fatalf("RecursivePreds = %v", rec)
	}
	sccs := Build(p).SCCs()
	found := false
	for _, c := range sccs {
		if reflect.DeepEqual(c, []string{"P", "Q"}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("SCCs = %v", sccs)
	}
}

func TestRecursiveRuleIndexes(t *testing.T) {
	p := tc()
	if got := RecursiveRuleIndexes(p); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("RecursiveRuleIndexes = %v", got)
	}
	// Intentional but non-recursive predicate: rule through a recursive one
	// is not itself recursive unless head is on the cycle.
	p2 := ast.NewProgram(
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("A", ast.Var("x"), ast.Var("z"))),
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("G", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("A", ast.Var("y"), ast.Var("z"))),
		ast.NewRule(ast.NewAtom("Top", ast.Var("x")),
			ast.NewAtom("G", ast.Var("x"), ast.Var("x"))),
	)
	if got := RecursiveRuleIndexes(p2); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("RecursiveRuleIndexes = %v", got)
	}
}

func TestIsLinear(t *testing.T) {
	// TC with G(x,y),G(y,z) is not linear; with A(x,y),G(y,z) it is.
	if IsLinear(tc()) {
		t.Fatal("doubled TC reported linear")
	}
	linear := ast.NewProgram(
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("A", ast.Var("x"), ast.Var("z"))),
		ast.NewRule(ast.NewAtom("G", ast.Var("x"), ast.Var("z")),
			ast.NewAtom("A", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("G", ast.Var("y"), ast.Var("z"))),
	)
	if !IsLinear(linear) {
		t.Fatal("linear TC reported non-linear")
	}
}

func TestStrataPositiveOnly(t *testing.T) {
	strata, err := Strata(tc())
	if err != nil {
		t.Fatal(err)
	}
	// Everything can live in one stratum for a purely positive program.
	total := 0
	for _, s := range strata {
		total += len(s)
	}
	if total != 2 {
		t.Fatalf("strata = %v", strata)
	}
}

func TestStrataWithNegation(t *testing.T) {
	// Reach(x) :- Src(x). Reach(y) :- Reach(x), E(x,y).
	// Unreach(x) :- Node(x), !Reach(x).
	p := ast.NewProgram(
		ast.NewRule(ast.NewAtom("Reach", ast.Var("x")), ast.NewAtom("Src", ast.Var("x"))),
		ast.NewRule(ast.NewAtom("Reach", ast.Var("y")),
			ast.NewAtom("Reach", ast.Var("x")), ast.NewAtom("E", ast.Var("x"), ast.Var("y"))),
		ast.Rule{
			Head:    ast.NewAtom("Unreach", ast.Var("x")),
			Body:    []ast.Atom{ast.NewAtom("Node", ast.Var("x"))},
			NegBody: []ast.Atom{ast.NewAtom("Reach", ast.Var("x"))},
		},
	)
	strata, err := Strata(p)
	if err != nil {
		t.Fatal(err)
	}
	stratumOf := map[string]int{}
	for i, s := range strata {
		for _, pred := range s {
			stratumOf[pred] = i
		}
	}
	if stratumOf["Unreach"] <= stratumOf["Reach"] {
		t.Fatalf("Unreach stratum %d not above Reach stratum %d", stratumOf["Unreach"], stratumOf["Reach"])
	}
}

func TestStrataUnstratifiable(t *testing.T) {
	// P(x) :- A(x), !Q(x). Q(x) :- A(x), !P(x). Negation through recursion.
	p := ast.NewProgram(
		ast.Rule{
			Head:    ast.NewAtom("P", ast.Var("x")),
			Body:    []ast.Atom{ast.NewAtom("A", ast.Var("x"))},
			NegBody: []ast.Atom{ast.NewAtom("Q", ast.Var("x"))},
		},
		ast.Rule{
			Head:    ast.NewAtom("Q", ast.Var("x")),
			Body:    []ast.Atom{ast.NewAtom("A", ast.Var("x"))},
			NegBody: []ast.Atom{ast.NewAtom("P", ast.Var("x"))},
		},
	)
	if _, err := Strata(p); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}

func TestPredsAndSCCsDeterministic(t *testing.T) {
	g := Build(tc())
	preds := g.Preds()
	if len(preds) != 2 {
		t.Fatalf("Preds = %v", preds)
	}
	a := Build(tc()).SCCs()
	b := Build(tc()).SCCs()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("SCCs not deterministic")
	}
}
