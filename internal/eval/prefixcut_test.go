package eval

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/workload"
)

// TestGoalPrefixCutDeterministic is the acceptance property of the
// variant-ordered merge with prefix cut: goal-directed evaluation produces
// a byte-identical partial database (same facts in the same insertion
// order, which db.String exposes) regardless of worker count. The goals are
// drawn from mid-evaluation derivations, so the cut genuinely fires inside
// rounds, not only at fixpoints.
func TestGoalPrefixCutDeterministic(t *testing.T) {
	workers := []int{1, 2, 8}
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		input := workload.RandomDB(rng, p, 4, 4)

		full, _, err := Eval(p, input, Options{})
		if err != nil {
			continue
		}
		// Goal candidates: a few derived facts plus one unreachable goal
		// (the full fixpoint must also be order-identical).
		var goals []ast.GroundAtom
		for _, f := range full.Facts() {
			if !input.Has(f) {
				goals = append(goals, f)
			}
		}
		rng.Shuffle(len(goals), func(i, j int) { goals[i], goals[j] = goals[j], goals[i] })
		if len(goals) > 4 {
			goals = goals[:4]
		}
		goals = append(goals, ast.NewGroundAtom("P", ast.Int(9000), ast.Int(9000)))

		for gi := range goals {
			goal := goals[gi]
			var wantDump string
			var wantReached bool
			for wi, w := range workers {
				prep, err := Prepare(p, Options{Workers: w})
				if err != nil {
					t.Fatalf("seed %d: prepare workers=%d: %v", seed, w, err)
				}
				out, reached, _, err := prep.EvalGoal(input, &goal, 0)
				if err != nil {
					t.Fatalf("seed %d goal %v workers=%d: %v", seed, goal, w, err)
				}
				dump := out.String()
				if wi == 0 {
					wantDump, wantReached = dump, reached
					continue
				}
				if reached != wantReached {
					t.Fatalf("seed %d goal %v: workers=%d reached=%v, workers=1 reached=%v",
						seed, goal, w, reached, wantReached)
				}
				if dump != wantDump {
					t.Fatalf("seed %d goal %v: workers=%d database differs from sequential\nworkers=%d:\n%s\nworkers=1:\n%s\nprogram:\n%s",
						seed, goal, w, w, dump, wantDump, p)
				}
			}
		}
	}
}
