package eval

import "math/bits"

// RuleSet is a bitset over the rule indexes of a program (the order of
// Prepared.Program().Rules). The containment layer records, per memoized
// verdict, the set of rules that fired during the deciding evaluation; a
// later single-rule deletion can then keep the verdict with an O(1) bitset
// test instead of re-running the chase.
type RuleSet struct {
	bits []uint64
}

// Add inserts rule index i.
func (s *RuleSet) Add(i int) {
	w := i >> 6
	for len(s.bits) <= w {
		s.bits = append(s.bits, 0)
	}
	s.bits[w] |= 1 << (uint(i) & 63)
}

// Has reports whether rule index i is in the set.
func (s *RuleSet) Has(i int) bool {
	w := i >> 6
	if w >= len(s.bits) {
		return false
	}
	return s.bits[w]&(1<<(uint(i)&63)) != 0
}

// Empty reports whether the set holds no index.
func (s *RuleSet) Empty() bool {
	for _, w := range s.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// WithoutShifted returns a copy of the set with index del removed and every
// index above del shifted down by one — the index remapping a single-rule
// deletion induces on provenance sets.
func (s *RuleSet) WithoutShifted(del int) RuleSet {
	var out RuleSet
	for w, word := range s.bits {
		for word != 0 {
			b := word & (-word)
			word &^= b
			i := w<<6 + bits.TrailingZeros64(b)
			switch {
			case i < del:
				out.Add(i)
			case i > del:
				out.Add(i - 1)
			}
		}
	}
	return out
}
