package eval

import (
	"container/list"
	"strconv"
	"sync"

	"repro/internal/ast"
)

// PlanCache is a content-addressed cache of prepared evaluation plans:
// canonical-form hash of (ast.Program, Options) → *Prepared. The
// minimization loops, the CLI/REPL and the harness all evaluate streams of
// programs that repeat — candidate deletions revisit identical subprograms,
// a long-lived server sees the same program across requests — and preparing
// is pure program analysis, so identical inputs can share one plan.
//
// Lookups verify the full canonical string on every hash hit, so a hash
// collision degrades to a miss instead of silently returning the wrong
// plan (the injectivity fuzz test in internal/ast keeps the hash honest,
// the verification keeps the cache honest even if the hash is not).
// Entries are evicted LRU beyond the capacity bound, so a REPL or server
// that prepares an unbounded stream of distinct programs holds at most
// maxEntries plans. A PlanCache is safe for concurrent use.
type PlanCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	buckets map[uint64][]*list.Element

	hits, misses, evictions uint64
}

// planEntry is one cached plan, addressed by the canonical program string
// plus the option fingerprint (options change the plan: schedule shape,
// compilation, goal).
type planEntry struct {
	hash    uint64
	canon   string
	optsKey string
	prep    *Prepared
}

// DefaultPlanCacheSize bounds the shared cache; generous for the
// optimization pipelines while keeping a long-lived REPL's footprint flat.
const DefaultPlanCacheSize = 256

// DefaultPlanCache is the process-wide shared cache used by PrepareCached —
// one pool serving the minimization loops, the containment sessions, the
// CLI/REPL and the harness.
var DefaultPlanCache = NewPlanCache(DefaultPlanCacheSize)

// NewPlanCache returns a cache bounded to max entries (max ≤ 0 selects
// DefaultPlanCacheSize).
func NewPlanCache(max int) *PlanCache {
	if max <= 0 {
		max = DefaultPlanCacheSize
	}
	return &PlanCache{max: max, order: list.New(), buckets: make(map[uint64][]*list.Element)}
}

// CacheStats is a point-in-time snapshot of cache behavior.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// Stats returns a snapshot of the cache counters.
func (pc *PlanCache) Stats() CacheStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return CacheStats{Hits: pc.hits, Misses: pc.misses, Evictions: pc.evictions, Entries: pc.order.Len()}
}

// zeroOptsKey serves the by-far most common fingerprint without building it
// — the containment sessions always prepare under default options.
var zeroOptsKey = computePlanKey(Options{})

// planKey fingerprints every Options field that shapes a prepared plan.
// MaxDerived and Goal are baked into a Prepared's run defaults, so they
// distinguish plans too; per-call EvalGoal arguments do not touch them.
func planKey(opts Options) string {
	if opts == (Options{}) {
		return zeroOptsKey
	}
	return computePlanKey(opts)
}

func computePlanKey(opts Options) string {
	b := make([]byte, 0, 48)
	b = strconv.AppendInt(b, int64(opts.Strategy), 10)
	b = append(b, '|')
	b = strconv.AppendBool(b, opts.NoReorder)
	b = append(b, '|')
	b = strconv.AppendBool(b, opts.NoSCCOrder)
	b = append(b, '|')
	b = strconv.AppendBool(b, opts.NoCompile)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(opts.Workers), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(opts.Shards), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(opts.MaxDerived), 10)
	b = append(b, '|')
	if opts.Goal != nil {
		b = append(b, opts.Goal.String()...)
	}
	return string(b)
}

// Prepare returns the cached plan for (p, opts) or prepares, caches and
// returns a fresh one. It is PrepareHit without the hit report.
func (pc *PlanCache) Prepare(p *ast.Program, opts Options) (*Prepared, error) {
	prep, _, err := pc.PrepareHit(p, opts)
	return prep, err
}

// PrepareHit is Prepare reporting whether the plan came from the cache, so
// session layers can surface hit/miss counts in their own stats.
func (pc *PlanCache) PrepareHit(p *ast.Program, opts Options) (*Prepared, bool, error) {
	return pc.GetOrBuild(p, opts, func() (*Prepared, error) { return Prepare(p, opts) })
}

// GetOrBuild returns the cached plan for (p, opts), or caches and returns
// the plan produced by build. It is the general entry the containment layer
// uses to register delta-patched plans (Prepared.Derive products) under
// their content address: the built plan's program need only be canonically
// equal to p. The boolean reports a cache hit.
func (pc *PlanCache) GetOrBuild(p *ast.Program, opts Options, build func() (*Prepared, error)) (*Prepared, bool, error) {
	return pc.GetOrBuildCanonical(p.CanonicalString(), opts, build)
}

// GetOrBuildCanonical is GetOrBuild for callers that already hold the
// program's canonical form — the containment layer maintains it
// incrementally across one-rule deltas, so re-rendering the whole program
// per lookup would dominate the very work the cache saves.
func (pc *PlanCache) GetOrBuildCanonical(canon string, opts Options, build func() (*Prepared, error)) (*Prepared, bool, error) {
	optsKey := planKey(opts)
	hash := ast.HashString(canon) ^ ast.HashString(optsKey)

	pc.mu.Lock()
	if el := pc.lookup(hash, canon, optsKey); el != nil {
		pc.order.MoveToFront(el)
		pc.hits++
		prep := el.Value.(*planEntry).prep
		pc.mu.Unlock()
		return prep, true, nil
	}
	pc.misses++
	pc.mu.Unlock()

	// Build outside the lock: preparation can be arbitrarily large and must
	// not serialize unrelated lookups. A racing duplicate build is harmless
	// — insert re-checks and keeps the first plan.
	prep, err := build()
	if err != nil {
		return nil, false, err
	}
	return pc.insert(&planEntry{hash: hash, canon: canon, optsKey: optsKey, prep: prep}), false, nil
}

// Put inserts an externally built plan (a Derive product) under its
// program's content address, so later Prepare calls for the same program
// reuse it. The prepared options are taken from the plan itself.
func (pc *PlanCache) Put(prep *Prepared) {
	canon := prep.Program().CanonicalString()
	optsKey := planKey(prep.opts)
	hash := ast.HashString(canon) ^ ast.HashString(optsKey)
	pc.insert(&planEntry{hash: hash, canon: canon, optsKey: optsKey, prep: prep})
}

// lookup finds the entry matching hash AND full canonical content; caller
// holds the lock.
func (pc *PlanCache) lookup(hash uint64, canon, optsKey string) *list.Element {
	for _, el := range pc.buckets[hash] {
		e := el.Value.(*planEntry)
		if e.canon == canon && e.optsKey == optsKey {
			return el
		}
	}
	return nil
}

// insert stores e unless an equivalent entry landed first, evicting from
// the LRU tail past capacity; it returns the plan now cached for e's key.
func (pc *PlanCache) insert(e *planEntry) *Prepared {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el := pc.lookup(e.hash, e.canon, e.optsKey); el != nil {
		pc.order.MoveToFront(el)
		return el.Value.(*planEntry).prep
	}
	el := pc.order.PushFront(e)
	pc.buckets[e.hash] = append(pc.buckets[e.hash], el)
	for pc.order.Len() > pc.max {
		back := pc.order.Back()
		pc.order.Remove(back)
		old := back.Value.(*planEntry)
		bucket := pc.buckets[old.hash]
		for i, bel := range bucket {
			if bel == back {
				bucket = append(bucket[:i], bucket[i+1:]...)
				break
			}
		}
		if len(bucket) == 0 {
			delete(pc.buckets, old.hash)
		} else {
			pc.buckets[old.hash] = bucket
		}
		pc.evictions++
	}
	return e.prep
}

// PrepareCached is Prepare through the shared DefaultPlanCache.
func PrepareCached(p *ast.Program, opts Options) (*Prepared, error) {
	return DefaultPlanCache.Prepare(p, opts)
}
