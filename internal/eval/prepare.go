package eval

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
)

// The prepared layer caches everything about a program that does not depend
// on the input database: validation, the dependence graph, the stratum/SCC
// schedule, and — per join order actually encountered — the compiled rules
// and the index column sets their probes need. Every decision procedure in
// the paper (the frozen-body containment test of Section VI, the Fig. 1/2
// minimization loops, the Section X–XI pipeline) evaluates the same program
// against many small databases; preparing once amortizes the per-call
// analysis they all used to repeat.

// errGoal is the internal sentinel a fixpoint returns when Options.Goal was
// derived; Prepared.run converts it into a successful early return.
var errGoal = errors.New("eval: goal reached")

// Prepared is a program analyzed and compiled for repeated evaluation:
// Prepare once, then Eval against many input databases. The schedule
// (strata / strongly connected components) is computed at Prepare time; the
// compiled form of each rule is cached per join order, so steady-state
// rounds and repeat evaluations skip recompilation entirely. A Prepared is
// safe for concurrent use.
type Prepared struct {
	prog  *ast.Program
	opts  Options
	units []*unit
	// unitIdxs[i] lists the program rule indexes of units[i].rules, in the
	// same order. It belongs to this Prepared, not to the unit: Derive
	// shares unchanged units between plans whose programs index the same
	// rules differently, so each owner keeps its own mapping. It is what
	// lets the provenance path translate a unit-local firing into a program
	// rule index.
	unitIdxs [][]int

	// One-step application of the whole program in a fixed order, built on
	// first use by NonRecursive / IsClosed. A one-step pass never feeds
	// derivations back, so it is pipeline-shaped for every rule — recursive
	// or not — and nonrecStreams carries the streaming plans alongside the
	// materializing fallback.
	nonrecOnce    sync.Once
	nonrec        []*compiledRule
	nonrecNeeds   []indexNeed
	nonrecStreams []*streamPlan
}

// unit is one fixpoint of the evaluation schedule: a stratum (under
// negation) or one group of mutually recursive rules (SCC schedule), with
// the dynamic predicates its delta machinery tracks.
type unit struct {
	rules   []ast.Rule
	dynamic map[string]bool
	// streamable marks a unit none of whose rules read the unit's own head
	// predicates (positively or under negation): its fixpoint is one full
	// application, so the planner may run it on the streaming operator
	// pipeline instead of the materializing kernel.
	streamable bool
	// partCol is the planner-chosen partition column per predicate of the
	// unit's rules (see partitionCols), consulted by the sharded executor.
	partCol map[string]int

	mu     sync.Mutex
	static *roundSetup            // NoReorder: the order never changes
	cache  map[string]*roundSetup // keyed by the packed join-order perms
	keyBuf []byte
}

// roundSetup is everything a round needs for one join order of the unit's
// rules: the reordered rules, their compiled forms, and the index column
// sets the round's probes will touch. Setups are immutable once built and
// shared across rounds, evaluations, and goroutines.
type roundSetup struct {
	ordered  []ast.Rule
	compiled []*compiledRule
	// swapped holds the delta-first compilations the sharded executor
	// substitutes for delta-at-position-1 variants (see buildSwapped); nil
	// when the options run unsharded or a rule is ineligible.
	swapped []*compiledRule
	needs   []indexNeed
	// streams holds the pipeline plans (same order as compiled) when the
	// unit is streamable and the options permit streaming; nil otherwise.
	streams []*streamPlan
}

// Prepare validates p and builds its evaluation schedule under opts. The
// program is cloned, so later mutation of p (the minimization loops rewrite
// rules in place) cannot corrupt the prepared state. Options.Context is a
// per-call concern and is stripped here: a Prepared outlives any request and
// is shared through the plan cache, so a plan must never retain a context.
func Prepare(p *ast.Program, opts Options) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts.Context = nil
	opts.Shards = normalizeShards(opts)
	pr := &Prepared{prog: p.Clone(), opts: opts}
	groups, err := scheduleGroups(pr.prog, opts)
	if err != nil {
		return nil, err
	}
	for _, group := range groups {
		pr.units = append(pr.units, newUnit(pr.prog, group))
		pr.unitIdxs = append(pr.unitIdxs, group)
	}
	return pr, nil
}

// scheduleGroups computes the evaluation schedule of p under opts as groups
// of rule indexes, one group per fixpoint unit, in evaluation order: SCC
// groups (producer-first) for pure programs, strata for programs with
// negation, a single group under NoSCCOrder. Empty groups are not emitted.
func scheduleGroups(p *ast.Program, opts Options) ([][]int, error) {
	if !p.HasNegation() {
		if opts.NoSCCOrder {
			all := make([]int, len(p.Rules))
			for i := range all {
				all[i] = i
			}
			return [][]int{all}, nil
		}
		return sccRuleGroups(p), nil
	}
	// Stratified negation: one unit per stratum; by stratification a negated
	// predicate is complete before any rule reading it runs.
	strata, err := depgraph.Strata(p)
	if err != nil {
		return nil, err
	}
	var groups [][]int
	for _, stratum := range strata {
		inStratum := make(map[string]bool, len(stratum))
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var group []int
		for ri, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				group = append(group, ri)
			}
		}
		if len(group) > 0 {
			groups = append(groups, group)
		}
	}
	return groups, nil
}

// newUnit builds the fixpoint unit for one schedule group of p. The unit's
// dynamic set is the head predicates of its own rules: for an SCC group
// that is the component's mutually recursive predicates, for a stratum the
// stratum's intentional predicates, and for the NoSCCOrder whole-program
// group exactly p.IDBPredicates().
func newUnit(p *ast.Program, group []int) *unit {
	rules := make([]ast.Rule, len(group))
	dyn := make(map[string]bool)
	for j, ri := range group {
		rules[j] = p.Rules[ri]
		dyn[p.Rules[ri].Head.Pred] = true
	}
	u := &unit{rules: rules, dynamic: dyn, partCol: partitionCols(rules)}
	u.streamable = true
	for _, r := range rules {
		for _, a := range r.Body {
			if dyn[a.Pred] {
				u.streamable = false
			}
		}
		for _, a := range r.NegBody {
			if dyn[a.Pred] {
				u.streamable = false
			}
		}
	}
	return u
}

// idxKey packs a rule-index list into a map key.
func idxKey(idxs []int) string {
	b := make([]byte, 0, 4*len(idxs))
	for _, i := range idxs {
		b = append(b, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
	}
	return string(b)
}

// Derive builds the plan for the program obtained from the prepared one by
// a single-rule delta — deleting rule ruleIdx (newRule nil) or replacing it
// (newRule non-nil) — without re-running the full preparation. A one-rule
// change only perturbs the schedule units whose rule sets actually change:
// the schedule is recomputed (cheap graph work), but every group that maps
// onto an identical group of the old plan shares the old unit pointer, and
// with it the unit's compiled rules and join-order caches. Units are
// internally synchronized, so sharing them between plans is safe; the
// rules inside are treated as immutable by the whole package.
func (pr *Prepared) Derive(ruleIdx int, newRule *ast.Rule) (*Prepared, error) {
	if ruleIdx < 0 || ruleIdx >= len(pr.prog.Rules) {
		return nil, fmt.Errorf("eval: Derive: rule index %d out of range (%d rules)", ruleIdx, len(pr.prog.Rules))
	}
	np := ast.NewProgram()
	np.Rules = make([]ast.Rule, 0, len(pr.prog.Rules))
	for i, r := range pr.prog.Rules {
		switch {
		case i == ruleIdx && newRule == nil:
			continue
		case i == ruleIdx:
			np.Rules = append(np.Rules, newRule.Clone())
		default:
			np.Rules = append(np.Rules, r)
		}
	}
	if err := np.Validate(); err != nil {
		return nil, err
	}
	groups, err := scheduleGroups(np, pr.opts)
	if err != nil {
		return nil, err
	}
	// Old units by their rule-index lists; a new group is the same unit iff
	// its rules map to exactly that list (same rules, same order).
	oldUnits := make(map[string]*unit, len(pr.units))
	for ui, idxs := range pr.unitIdxs {
		oldUnits[idxKey(idxs)] = pr.units[ui]
	}
	toOld := func(newIdx int) int {
		if newRule == nil && newIdx >= ruleIdx {
			return newIdx + 1
		}
		return newIdx
	}
	out := &Prepared{prog: np, opts: pr.opts}
	mapped := make([]int, 0, len(np.Rules))
	for _, group := range groups {
		reuse := true
		mapped = mapped[:0]
		for _, ni := range group {
			oi := toOld(ni)
			mapped = append(mapped, oi)
			if newRule != nil && oi == ruleIdx {
				// The replaced rule lives in this group; its unit holds the
				// old rule's compiled form and must be rebuilt.
				reuse = false
			}
		}
		var u *unit
		if reuse {
			u = oldUnits[idxKey(mapped)]
		}
		if u == nil {
			u = newUnit(np, group)
		}
		out.units = append(out.units, u)
		out.unitIdxs = append(out.unitIdxs, group)
	}
	return out, nil
}

// Program returns the prepared program (the clone taken at Prepare time).
// Callers must not mutate it.
func (pr *Prepared) Program() *ast.Program { return pr.prog }

// Eval computes P(input) exactly like the package-level Eval, reusing the
// prepared schedule and compile caches. If Options.Goal is set, evaluation
// stops as soon as the goal atom is derived (it is then present in the
// returned database).
func (pr *Prepared) Eval(input *db.Database) (*db.Database, Stats, error) {
	out, _, stats, err := pr.run(nil, input, pr.opts.Goal, pr.opts.MaxDerived, nil)
	return out, stats, err
}

// EvalCtx is Eval under a per-call context: cancellation or deadline expiry
// aborts the evaluation with an error wrapping ErrCanceled, checked at round
// boundaries and on the emit path. A nil ctx is Eval. The context belongs to
// the call, not the plan, so one Prepared concurrently serves requests with
// independent deadlines.
func (pr *Prepared) EvalCtx(ctx context.Context, input *db.Database) (*db.Database, Stats, error) {
	out, _, stats, err := pr.run(ctx, input, pr.opts.Goal, pr.opts.MaxDerived, nil)
	return out, stats, err
}

// EvalGoal evaluates toward a per-call goal atom under a per-call
// derived-fact budget (0 = the prepared Options' budget semantics do not
// apply; unlimited). It reports whether the goal was reached — the moment
// it is derived, evaluation halts, which is what makes the frozen-body
// containment test of Section VI cheap: the test only asks whether the
// frozen head is derivable, never for the full fixpoint. A nil goal
// saturates fully and reports false.
func (pr *Prepared) EvalGoal(input *db.Database, goal *ast.GroundAtom, maxDerived int) (*db.Database, bool, Stats, error) {
	return pr.run(nil, input, goal, maxDerived, nil)
}

// EvalGoalCtx is EvalGoal under a per-call context (see EvalCtx).
func (pr *Prepared) EvalGoalCtx(ctx context.Context, input *db.Database, goal *ast.GroundAtom, maxDerived int) (*db.Database, bool, Stats, error) {
	return pr.run(ctx, input, goal, maxDerived, nil)
}

// EvalGoalProv is EvalGoal additionally recording rule provenance: every
// program rule that derived at least one new fact before evaluation halted
// is added to prov (indexes into Program().Rules). The recorded set is a
// superset of the rules used by any derivation present in the output — in
// particular, of some witnessing derivation of the goal when it is reached
// — which is exactly the conservative guarantee the containment layer needs
// to keep a memoized verdict across a rule deletion: if a deleted rule is
// not in prov, no derivation the evaluation produced could have used it.
func (pr *Prepared) EvalGoalProv(input *db.Database, goal *ast.GroundAtom, maxDerived int, prov *RuleSet) (*db.Database, bool, Stats, error) {
	return pr.run(nil, input, goal, maxDerived, prov)
}

// EvalGoalProvCtx is EvalGoalProv under a per-call context (see EvalCtx).
func (pr *Prepared) EvalGoalProvCtx(ctx context.Context, input *db.Database, goal *ast.GroundAtom, maxDerived int, prov *RuleSet) (*db.Database, bool, Stats, error) {
	return pr.run(ctx, input, goal, maxDerived, prov)
}

func (pr *Prepared) run(ctx context.Context, input *db.Database, goal *ast.GroundAtom, maxDerived int, prov *RuleSet) (*db.Database, bool, Stats, error) {
	var stats Stats
	if err := CtxErr(ctx); err != nil {
		return nil, false, stats, err
	}
	d := input.Clone()
	if goal != nil && d.Has(*goal) {
		return d, true, stats, nil
	}
	opts := pr.opts
	opts.MaxDerived = maxDerived
	baseLen := input.Len()
	for ui, u := range pr.units {
		var ruleIdxs []int
		if prov != nil {
			ruleIdxs = pr.unitIdxs[ui]
		}
		if err := u.fixpoint(ctx, d, opts, &stats, baseLen, goal, prov, ruleIdxs); err != nil {
			if errors.Is(err, errGoal) {
				return d, true, stats, nil
			}
			return nil, false, stats, err
		}
	}
	return d, false, stats, nil
}

// Query evaluates the prepared program on input and returns the tuples
// matching the query atom, like the package-level Query.
func (pr *Prepared) Query(input *db.Database, query ast.Atom) ([][]ast.Const, error) {
	out, _, err := pr.Eval(input)
	if err != nil {
		return nil, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, nil
}

// ensureNonRec compiles the one-step application of the whole program in
// the static join order (no live cardinalities exist for a one-shot pass).
func (pr *Prepared) ensureNonRec() {
	pr.nonrecOnce.Do(func() {
		ordered := make([]ast.Rule, len(pr.prog.Rules))
		pr.nonrec = make([]*compiledRule, len(pr.prog.Rules))
		for i, r := range pr.prog.Rules {
			or := r.Clone()
			or.Body = db.OrderForJoin(or.Body, nil)
			ordered[i] = or
			pr.nonrec[i] = compileRule(or)
		}
		pr.nonrecNeeds = indexNeeds(ordered)
		if !pr.opts.NoStream {
			pr.nonrecStreams = make([]*streamPlan, len(pr.nonrec))
			for i, cr := range pr.nonrec {
				pr.nonrecStreams[i] = compileStream(cr)
			}
		}
	})
}

// NonRecursive computes Pⁿ(d) (Section IX) through the prepared compiled
// rules; it is equivalent to the package-level NonRecursive. d gains the
// hash indexes the compiled joins probe but no facts.
func (pr *Prepared) NonRecursive(d *db.Database) *db.Database {
	if pr.opts.NoCompile {
		return NonRecursive(pr.prog, d)
	}
	pr.ensureNonRec()
	for _, n := range pr.nonrecNeeds {
		d.EnsureIndex(n.pred, n.cols)
	}
	out := db.New()
	var st Stats
	if pr.nonrecStreams != nil {
		// A one-step pass never feeds derivations back, so every rule is
		// pipeline-shaped here regardless of recursion in the program.
		ss := getStreamState(pr.nonrecStreams)
		defer putStreamState(ss)
		sink := &nonrecSink{out: out}
		top := d.Round()
		for _, sp := range pr.nonrecStreams {
			sp.run(d, top, ss, &st, sink)
		}
		return out
	}
	emit := func(pred string, args []ast.Const) bool { return out.AddTuple(pred, args) }
	for _, cr := range pr.nonrec {
		cr.fire(d, fullWindows(len(cr.body), d.Round()), &st, emit, nil)
	}
	return out
}

// IsClosed reports whether d is a model of the prepared program
// (Section IV): no rule application derives an atom outside d. It is
// IsModel with the compiled one-step pass, aborting at the first
// counterexample.
func (pr *Prepared) IsClosed(d *db.Database) bool {
	if pr.opts.NoCompile {
		return IsModel(pr.prog, d)
	}
	pr.ensureNonRec()
	for _, n := range pr.nonrecNeeds {
		d.EnsureIndex(n.pred, n.cols)
	}
	var st Stats
	if pr.nonrecStreams != nil {
		ss := getStreamState(pr.nonrecStreams)
		defer putStreamState(ss)
		sink := &closedSink{d: d}
		top := d.Round()
		for _, sp := range pr.nonrecStreams {
			sp.run(d, top, ss, &st, sink)
			if sink.open {
				return false
			}
		}
		return true
	}
	closed := true
	emit := func(pred string, args []ast.Const) bool {
		if d.HasTuple(pred, args) {
			return false
		}
		closed = false
		return true // count as "new" so the stop hook fires immediately
	}
	stop := func() bool { return !closed }
	for _, cr := range pr.nonrec {
		cr.fire(d, fullWindows(len(cr.body), d.Round()), &st, emit, stop)
		if !closed {
			return false
		}
	}
	return true
}

// setupFor returns the evaluation setup for the unit's rules under the
// current relation sizes, reusing a cached compilation when some earlier
// round already saw the same greedy join order. The cache is the heart of
// the prepared layer: steady-state fixpoint rounds and repeat evaluations
// hit it, so rule cloning and compilation happen once per distinct order
// rather than once per round.
func (u *unit) setupFor(d *db.Database, opts Options) *roundSetup {
	u.mu.Lock()
	defer u.mu.Unlock()
	if opts.NoReorder {
		if u.static == nil {
			u.static = u.build(nil, opts)
		}
		return u.static
	}
	sizeOf := func(pred string) int {
		if rel := d.Relation(pred); rel != nil {
			return rel.Len()
		}
		return 0
	}
	perms := make([][]int, len(u.rules))
	key := u.keyBuf[:0]
	cacheable := true
	for i, r := range u.rules {
		perms[i] = db.OrderPermSized(r.Body, nil, sizeOf)
		if len(perms[i]) > 255 {
			cacheable = false // a body this large cannot pack into bytes
		}
		key = append(key, byte(len(perms[i])))
		for _, p := range perms[i] {
			key = append(key, byte(p))
		}
	}
	u.keyBuf = key
	if !cacheable {
		return u.build(perms, opts)
	}
	if rs, ok := u.cache[string(key)]; ok {
		return rs
	}
	rs := u.build(perms, opts)
	if u.cache == nil {
		u.cache = make(map[string]*roundSetup)
	}
	u.cache[string(key)] = rs
	return rs
}

// build clones the unit's rules into the given join orders (nil perms =
// source order) and compiles them. The result is immutable.
func (u *unit) build(perms [][]int, opts Options) *roundSetup {
	rs := &roundSetup{
		ordered:  make([]ast.Rule, len(u.rules)),
		compiled: make([]*compiledRule, len(u.rules)),
	}
	for i, r := range u.rules {
		or := r.Clone()
		if perms != nil {
			body := make([]ast.Atom, len(or.Body))
			for j, pi := range perms[i] {
				body[j] = or.Body[pi]
			}
			or.Body = body
		}
		rs.ordered[i] = or
		if !opts.NoCompile {
			rs.compiled[i] = compileRule(or)
		}
	}
	rs.needs = indexNeeds(rs.ordered)
	if opts.Shards > 1 && !opts.NoCompile {
		// Sharded rounds may run delta-at-position-1 variants delta-first;
		// compile the swapped forms now and register the index columns their
		// displaced probes need so the round-boundary freeze covers them.
		var extra []indexNeed
		rs.swapped, extra = buildSwapped(rs.ordered, func(pred string) bool { return u.dynamic[pred] })
		rs.needs = append(rs.needs, extra...)
	}
	if u.streamable && !opts.NoCompile && !opts.NoStream {
		rs.streams = make([]*streamPlan, len(rs.compiled))
		for i, cr := range rs.compiled {
			rs.streams[i] = compileStream(cr)
		}
	}
	return rs
}

// fixpoint runs the chosen strategy over the unit's rules, mutating d in
// place. A non-nil goal halts evaluation via errGoal as soon as the goal
// atom is derived. A non-nil prov collects the program rule indexes (via
// ruleIdxs, the owner Prepared's unit-local → program mapping) of every
// rule that derived at least one new fact.
func (u *unit) fixpoint(ctx context.Context, d *db.Database, opts Options, stats *Stats, baseLen int, goal *ast.GroundAtom, prov *RuleSet, ruleIdxs []int) error {
	if err := CtxErr(ctx); err != nil {
		return err
	}
	prevTop := d.Round() // facts present before this stratum: rounds ≤ prevTop
	round := d.BeginRound()
	stats.Rounds++
	// setupFor picks the setup for the current relation sizes; the greedy
	// join-order heuristic sees live cardinalities at every round boundary,
	// but recompilation only happens for orders not seen before. The loop
	// after it builds or extends every index the round's joins will probe.
	// Tuples inserted mid-round are stamped with the current round, which
	// every window excludes, so the frozen indexes stay sufficient for the
	// whole round and in-round probes never lock or mutate.
	rs := u.setupFor(d, opts)
	for _, n := range rs.needs {
		d.EnsureIndex(n.pred, n.cols)
	}

	// First iteration: full application of every rule. For a streamable unit
	// under semi-naive this one application IS the fixpoint (no rule reads
	// the unit's own heads, so later delta rounds have no variants), and the
	// planner runs it on the operator pipeline; recursive units and the
	// naive strategy — whose Section III semantics re-fire whole rounds —
	// keep the materializing kernel. Either way the emission sequence is
	// identical, so the output database is byte-for-byte the same. The
	// streamed path returns before the materializing kernel's round
	// machinery below is even set up — a streamed stratum allocates nothing
	// beyond the facts it derives.
	if rs.streams != nil && opts.Strategy == SemiNaive {
		stats.StrataStreamed++
		if err := u.streamRound(ctx, d, rs, prevTop, opts, stats, baseLen, goal, prov, ruleIdxs); err != nil {
			return err
		}
		return checkBudget(d, baseLen, opts)
	}
	stats.StrataMaterialized++

	// The round executor (rounds.go) owns the sequential / parallel / sharded
	// firing disciplines and their shared budget, goal and cancellation
	// semantics; the fixpoint only decides which variants each round runs.
	env := &roundEnv{
		ctx: ctx, d: d, opts: opts, stats: stats,
		baseLen: baseLen, goal: goal, prov: prov, ruleIdxs: ruleIdxs,
	}
	rr := roundRules{ordered: rs.ordered, compiled: rs.compiled, swapped: rs.swapped, partCol: u.partCol}

	// First iteration: full application of every rule over everything
	// present before the stratum.
	var firstRound []variant
	for idx := range rs.ordered {
		firstRound = append(firstRound, variant{idx, -1, fullWindows(len(rs.ordered[idx].Body), prevTop)})
	}
	if err := env.runRound(rr, firstRound); err != nil {
		return err
	}
	if err := checkBudget(d, baseLen, opts); err != nil {
		return err
	}

	for {
		if !anyAddedIn(d, round) {
			return nil
		}
		if err := CtxErr(ctx); err != nil {
			return err
		}
		prev := round
		round = d.BeginRound()
		stats.Rounds++
		// Re-pick the join order against this round's cardinalities and
		// re-freeze the indexes the new setup probes.
		rs = u.setupFor(d, opts)
		for _, n := range rs.needs {
			d.EnsureIndex(n.pred, n.cols)
		}
		rr = roundRules{ordered: rs.ordered, compiled: rs.compiled, swapped: rs.swapped, partCol: u.partCol}
		var variants []variant
		for idx := range rs.ordered {
			r := rs.ordered[idx]
			if opts.Strategy == Naive {
				variants = append(variants, variant{idx, -1, fullWindows(len(r.Body), prev)})
				continue
			}
			// Semi-naive: one variant per dynamic body position i, with
			// position i restricted to the last round's delta, earlier
			// positions to strictly older facts, and later positions to
			// anything up to the last round. Every new combination has a
			// unique least delta position, so nothing is derived twice.
			for i, a := range r.Body {
				if !u.dynamic[a.Pred] {
					continue
				}
				variants = append(variants, variant{idx, i, deltaWindows(len(r.Body), i, prev)})
			}
		}
		if err := env.runRound(rr, variants); err != nil {
			return err
		}
		if err := checkBudget(d, baseLen, opts); err != nil {
			return err
		}
	}
}

// streamRound runs one full application of a streamable unit's rules on the
// operator pipeline. It reproduces the sequential materializing round's emit
// path verbatim — same insertion order, same goal test, same derived-fact
// budget, same provenance credit — so swapping it in changes cost, never
// observables. One streamState serves every plan in the pass; nothing else
// is allocated per rule.
func (u *unit) streamRound(ctx context.Context, d *db.Database, rs *roundSetup, prevTop int32, opts Options, stats *Stats, baseLen int, goal *ast.GroundAtom, prov *RuleSet, ruleIdxs []int) error {
	st := getStreamState(rs.streams)
	defer putStreamState(st)
	sk := &st.fix
	*sk = fixpointSink{d: d, goal: goal, prov: prov, ctx: ctx, remaining: -1}
	if opts.MaxDerived > 0 {
		sk.remaining = opts.MaxDerived - (d.Len() - baseLen)
	}
	for idx, sp := range rs.streams {
		if prov != nil {
			sk.ruleIdx = ruleIdxs[idx]
		}
		sp.run(d, prevTop, st, stats, sk)
		if sk.goalHit {
			stats.EarlyStopCuts++
			return errGoal
		}
		if sk.canceled {
			stats.EarlyStopCuts++
			return CtxErr(ctx)
		}
		if sk.stop {
			stats.EarlyStopCuts++
			return fmt.Errorf("%w: derived %d facts (budget %d)", ErrBudget, d.Len()-baseLen, opts.MaxDerived)
		}
	}
	return nil
}

func constsEqual(a, b []ast.Const) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
