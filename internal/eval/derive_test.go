package eval

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

func mustParseProgram(t *testing.T, src string) *ast.Program {
	t.Helper()
	res, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return res.Program
}

func parseFacts(t *testing.T, src string) *db.Database {
	t.Helper()
	res, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse facts: %v", err)
	}
	return db.FromFacts(res.Facts)
}

// TestPreparedDeriveStratified checks the strata-scheduled path of
// Prepared.Derive: deleting a rule from a program with negation must yield
// a plan that evaluates exactly like a fresh Prepare of the shortened
// program, and units of untouched strata must be shared with the parent
// plan rather than rebuilt.
func TestPreparedDeriveStratified(t *testing.T) {
	p := mustParseProgram(t, `
		Reach(x, y) :- Edge(x, y).
		Reach(x, z) :- Reach(x, y), Edge(y, z).
		Isolated(x) :- Node(x), !Touched(x).
		Touched(x) :- Edge(x, y).
		Touched(y) :- Edge(x, y).
	`)
	prep, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Delete the recursive Reach rule (index 1).
	dp, err := prep.Derive(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Prepare(p.WithoutRule(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := parseFacts(t, `
		Node(0). Node(1). Node(2). Node(3).
		Edge(0, 1). Edge(1, 2).
	`)
	got, _, err := dp.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("derived plan output differs from fresh plan:\nderived:\n%s\nfresh:\n%s", got, want)
	}
	// The Isolated/Touched strata do not mention Reach, so their schedule
	// groups are unchanged and at least one unit must be shared by pointer
	// with the parent plan.
	shared := 0
	for _, u := range dp.units {
		for _, pu := range prep.units {
			if u == pu {
				shared++
			}
		}
	}
	if shared == 0 {
		t.Fatalf("derived stratified plan shares no units with its parent (units=%d)", len(dp.units))
	}
}

// TestPreparedDeriveReplacementStratified checks the replacement form on
// the strata path: weakening a rule's body yields the same model as a fresh
// plan for the replaced program.
func TestPreparedDeriveReplacementStratified(t *testing.T) {
	p := mustParseProgram(t, `
		Big(x) :- Node(x), Edge(x, x), !Small(x).
		Small(x) :- Low(x).
	`)
	prep, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nr := p.Rules[0].WithoutBodyAtom(1) // drop Edge(x, x)
	dp, err := prep.Derive(0, &nr)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Prepare(p.ReplaceRule(0, nr), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := parseFacts(t, `
		Node(0). Node(1).
		Edge(0, 0).
		Low(1).
	`)
	got, _, err := dp.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh.Eval(d)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("derived replacement plan output differs:\nderived:\n%s\nfresh:\n%s", got, want)
	}
}

// TestPreparedDeriveChainPure walks a chain of deletions on a pure program,
// comparing each derived plan's full model against a fresh Prepare — the
// SCC-group path of Derive (no strata involved).
func TestPreparedDeriveChainPure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := workload.InjectRedundantRules(workload.TransitiveClosure(), 3, rng)
	if p.Validate() != nil {
		t.Fatal("workload generated an invalid program")
	}
	prep, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cur := p.Clone()
	d := parseFacts(t, `A(0, 1). A(1, 2). A(2, 3).`)
	for len(cur.Rules) > 1 {
		dp, err := prep.Derive(len(cur.Rules)-1, nil)
		if err != nil {
			t.Fatal(err)
		}
		cur = cur.WithoutRule(len(cur.Rules) - 1)
		fresh, err := Prepare(cur, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := dp.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := fresh.Eval(d)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("chain step at %d rules: derived output differs from fresh", len(cur.Rules))
		}
		prep = dp
	}
}
