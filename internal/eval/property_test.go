package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

// TestQuickMonotonicity checks the property the Section X argument leans
// on: "Datalog programs are monotonic — adding more atoms to the input
// does not remove any atom from the output."
func TestQuickMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		small := workload.RandomDB(rng, p, 4, 3)
		big := small.Clone()
		big.AddAll(workload.RandomDB(rng, p, 4, 3))

		outSmall, _, err := Eval(p, small, Options{})
		if err != nil {
			return false
		}
		outBig, _, err := Eval(p, big, Options{})
		if err != nil {
			return false
		}
		return outBig.Contains(outSmall)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNaiveEqualsSemiNaive checks strategy agreement on random
// programs and databases.
func TestQuickNaiveEqualsSemiNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		a, _, err := Eval(p, d, Options{Strategy: SemiNaive})
		if err != nil {
			return false
		}
		b, _, err := Eval(p, d, Options{Strategy: Naive})
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickOutputIsLeastModel checks the Van Emden–Kowalski
// characterization used in Section IV: P(d) is a model containing d, and
// idempotent.
func TestQuickOutputIsLeastModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 3)
		out, _, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		if !out.Contains(d) || !IsModel(p, out) {
			return false
		}
		again, _, err := Eval(p, out, Options{})
		if err != nil {
			return false
		}
		return again.Equal(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickNonRecursiveSubsetOfFull checks Pⁿ(d) ⊆ P(d) (Section IX
// conventions: Pⁿ omits d itself, P includes it).
func TestQuickNonRecursiveSubsetOfFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 3)
		pn := NonRecursive(p, d)
		full, _, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		return full.Contains(pn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPreliminaryBetweenInputAndOutput checks d ⊆ ⟨d, Pⁱ(d)⟩ ⊆ P(d),
// the sandwich the Section X argument needs from the preliminary DB.
func TestQuickPreliminaryBetweenInputAndOutput(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 3)
		prelim := PreliminaryDB(p, d)
		full, _, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		return prelim.Contains(d) && full.Contains(prelim)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickReorderInvariance checks the join-order heuristic never changes
// semantics.
func TestQuickReorderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		a, _, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		b, _, err := Eval(p, d, Options{NoReorder: true})
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompiledEqualsGeneric cross-checks the slot-compiled evaluator
// against the generic binding-map path on random programs and databases,
// for both strategies.
func TestQuickCompiledEqualsGeneric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		for _, strat := range []Strategy{SemiNaive, Naive} {
			a, sa, err := Eval(p, d, Options{Strategy: strat})
			if err != nil {
				return false
			}
			b, sb, err := Eval(p, d, Options{Strategy: strat, NoCompile: true})
			if err != nil {
				return false
			}
			if !a.Equal(b) {
				return false
			}
			// The two paths do identical logical work.
			if sa.Firings != sb.Firings || sa.Added != sb.Added {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCompiledStratifiedNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("Src", 1), ga("E", 1, 2), ga("Node", 2), ga("Node", 5),
	})
	a, _, err := Eval(p, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Eval(p, in, Options{NoCompile: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("compiled negation differs:\n%s\nvs\n%s", a, b)
	}
}

// TestQuickParallelEqualsSequential cross-checks the parallel round
// evaluator against sequential evaluation on random programs, for both
// fixpoint strategies: the output databases AND the Added counts must be
// identical (run with -race in CI to catch data races — in-round index
// reads are lock-free and must stay correctly frozen at round boundaries).
func TestQuickParallelEqualsSequential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		for _, strat := range []Strategy{SemiNaive, Naive} {
			a, sa, err := Eval(p, d, Options{Strategy: strat})
			if err != nil {
				return false
			}
			b, sb, err := Eval(p, d, Options{Strategy: strat, Workers: 4})
			if err != nil {
				return false
			}
			// Firings can differ (parallel variants may rederive a fact
			// another variant found in the same round), but the output
			// database and the number of new facts must not.
			if !a.Equal(b) || sa.Added != sb.Added {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParallelStratifiedNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("Src", 1), ga("E", 1, 2), ga("E", 2, 3), ga("Node", 3), ga("Node", 7),
	})
	a, _, err := Eval(p, in, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Eval(p, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("parallel stratified differs:\n%s\nvs\n%s", a, b)
	}
}
