package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

func TestIncrementalEqualsFullReEval(t *testing.T) {
	p := workload.TransitiveClosure()
	base := workload.Chain("A", 10)
	out, _, err := Eval(p, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a back edge closing the chain into a cycle.
	newFacts := []ast.GroundAtom{ga("A", 10, 0)}
	inc, incStats, err := Incremental(p, out, newFacts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := base.Clone()
	for _, f := range newFacts {
		full.Add(f)
	}
	want := MustEval(p, full)
	if !inc.Equal(want) {
		t.Fatalf("incremental %d facts, full %d facts", inc.Len(), want.Len())
	}
	if incStats.Added == 0 {
		t.Fatal("no incremental derivations recorded")
	}
}

func TestIncrementalNoOp(t *testing.T) {
	p := workload.TransitiveClosure()
	out := MustEval(p, workload.Chain("A", 5))
	// Re-inserting existing facts derives nothing.
	inc, stats, err := Incremental(p, out, []ast.GroundAtom{ga("A", 0, 1)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !inc.Equal(out) || stats.Added != 0 {
		t.Fatalf("no-op insertion changed the DB: %+v", stats)
	}
}

func TestIncrementalCheaperThanReEval(t *testing.T) {
	p := workload.TransitiveClosure()
	base := workload.Chain("A", 40)
	out, _, err := Eval(p, base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	newFacts := []ast.GroundAtom{ga("A", 100, 101)} // disconnected edge
	_, incStats, err := Incremental(p, out, newFacts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full := base.Clone()
	full.Add(newFacts[0])
	_, fullStats, err := Eval(p, full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if incStats.Firings >= fullStats.Firings {
		t.Fatalf("incremental fired %d >= full %d", incStats.Firings, fullStats.Firings)
	}
}

func TestQuickIncrementalAgreesWithFull(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		base := workload.RandomDB(rng, p, 4, 3)
		out, _, err := Eval(p, base, Options{})
		if err != nil {
			return false
		}
		extra := workload.RandomDB(rng, p, 4, 2)
		inc, _, err := Incremental(p, out, extra.Facts(), Options{})
		if err != nil {
			return false
		}
		full := base.Clone()
		full.AddAll(extra)
		want, _, err := Eval(p, full, Options{})
		if err != nil {
			return false
		}
		return inc.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIncrementalRejectsNegation(t *testing.T) {
	// Inserting E(1,2) would have to retract Unreach(2); since the previous
	// output cannot distinguish inputs from derivations, Incremental must
	// refuse rather than silently keep the stale fact.
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	base := ast.GroundAtom{Pred: "Src", Args: []ast.Const{ast.Int(1)}}
	in := MustEval(p, db.FromFacts([]ast.GroundAtom{ga("Node", 1), ga("Node", 2), base}))
	if _, _, err := Incremental(p, in, []ast.GroundAtom{ga("E", 1, 2)}, Options{}); err == nil {
		t.Fatal("negation accepted by Incremental")
	}
}
