package eval

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func cacheProgram(t *testing.T, i int) *ast.Program {
	t.Helper()
	res, err := parser.Parse(fmt.Sprintf("P(x) :- A%d(x).", i))
	if err != nil {
		t.Fatal(err)
	}
	return res.Program
}

// TestPlanCacheEvictionBound checks the LRU bound: a stream of distinct
// programs never grows the cache past its capacity, evictions are counted,
// and the most recently used entries survive while the oldest are evicted.
func TestPlanCacheEvictionBound(t *testing.T) {
	pc := NewPlanCache(4)
	const n = 20
	for i := 0; i < n; i++ {
		if _, _, err := pc.PrepareHit(cacheProgram(t, i), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := pc.Stats()
	if st.Entries > 4 {
		t.Fatalf("cache holds %d entries, capacity 4", st.Entries)
	}
	if st.Evictions != n-4 {
		t.Fatalf("evictions = %d, want %d", st.Evictions, n-4)
	}
	if st.Misses != n {
		t.Fatalf("misses = %d, want %d (all programs distinct)", st.Misses, n)
	}
	// The four most recent programs must hit; the oldest must miss.
	for i := n - 4; i < n; i++ {
		if _, hit, err := pc.PrepareHit(cacheProgram(t, i), Options{}); err != nil || !hit {
			t.Fatalf("program %d evicted though recently used (hit=%v err=%v)", i, hit, err)
		}
	}
	if _, hit, err := pc.PrepareHit(cacheProgram(t, 0), Options{}); err != nil || hit {
		t.Fatalf("program 0 should have been evicted (hit=%v err=%v)", hit, err)
	}
}

// TestPlanCacheHitReturnsSamePlan checks content addressing: canonically
// equal (alpha-renamed) programs share one plan; different Options do not.
func TestPlanCacheHitReturnsSamePlan(t *testing.T) {
	pc := NewPlanCache(8)
	p := cacheProgram(t, 1)
	prep1, hit, err := pc.PrepareHit(p, Options{})
	if err != nil || hit {
		t.Fatalf("first prepare: hit=%v err=%v", hit, err)
	}
	renamed := p.Clone()
	renamed.Rules[0] = renamed.Rules[0].Rename(func(v string) string { return v + "_r" })
	prep2, hit, err := pc.PrepareHit(renamed, Options{})
	if err != nil || !hit {
		t.Fatalf("alpha-renamed twin missed the cache (hit=%v err=%v)", hit, err)
	}
	if prep1 != prep2 {
		t.Fatal("alpha-renamed twin got a different plan")
	}
	_, hit, err = pc.PrepareHit(p, Options{Strategy: Naive})
	if err != nil || hit {
		t.Fatalf("different options must not share a plan (hit=%v err=%v)", hit, err)
	}
}

// TestPlanCacheConcurrent hammers one cache from many goroutines over a
// small program set (run under -race); every returned plan for a program
// must be usable and hits+misses must equal the number of lookups.
func TestPlanCacheConcurrent(t *testing.T) {
	pc := NewPlanCache(8)
	progs := make([]*ast.Program, 6)
	for i := range progs {
		progs[i] = cacheProgram(t, i)
	}
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := progs[(g+i)%len(progs)]
				if _, err := pc.Prepare(p, Options{}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := pc.Stats()
	if st.Hits+st.Misses != 8*perG {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, 8*perG)
	}
}
