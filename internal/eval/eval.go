// Package eval implements the bottom-up computation of Section III: given a
// program P and an input DB (which, per the paper's uniform semantics, may
// assign initial relations to intentional as well as extensional
// predicates), repeatedly instantiate rules until no new ground atoms can be
// produced. The package provides both the naive strategy the paper describes
// and the standard semi-naive refinement (each derivation considered once),
// plus the auxiliary operators the paper's procedures need: the
// non-recursive application Pⁿ(d) of Section IX, the initialization program
// Pⁱ and preliminary DB of Section X, and — for the Section XII extension —
// stratified negation.
package eval

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
)

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive derives each new fact from at least one last-round fact,
	// avoiding rederivation; it is the default.
	SemiNaive Strategy = iota
	// Naive re-fires every rule against the whole DB each round, exactly as
	// Section III describes the computation.
	Naive
)

// ErrBudget is returned when evaluation exceeds Options.MaxDerived.
var ErrBudget = errors.New("eval: derived-fact budget exhausted")

// ErrCanceled is returned when an evaluation's context is canceled or its
// deadline expires. Cancellation is checked at round boundaries and — with a
// small cadence — on the emit path, extending the in-round MaxDerived
// discipline: a round that would run long past a deadline is cut mid-stream,
// not at its end. Errors wrap both ErrCanceled and the context's own error,
// so errors.Is works against ErrCanceled, context.Canceled and
// context.DeadlineExceeded alike.
var ErrCanceled = errors.New("eval: evaluation canceled")

// CtxErr converts a context's cancellation state into the package's typed
// error (nil context or live context → nil). Session layers embedding
// evaluation in longer procedures (the containment chases, minimization,
// preservation checks) use it for their own between-call checks so every
// layer reports cancellation identically.
func CtxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// ctxCheckEvery is the emit-path cancellation cadence: the context is polled
// once per this many derived facts, keeping the check off the per-tuple hot
// path while bounding how much work a canceled evaluation can still do.
const ctxCheckEvery = 128

// Options configures evaluation.
type Options struct {
	// Strategy selects naive or semi-naive fixpoint; the default is
	// semi-naive.
	Strategy Strategy
	// NoReorder disables the greedy join-order heuristic and evaluates body
	// atoms in source order; used by ablation benchmarks.
	NoReorder bool
	// NoSCCOrder disables the SCC-ordered schedule and runs all rules in a
	// single fixpoint; used by ablation benchmarks.
	NoSCCOrder bool
	// NoCompile disables the slot-compiled rule evaluator and joins through
	// the generic binding-map matcher; used by ablation benchmarks and the
	// cross-check property test.
	NoCompile bool
	// NoStream disables the streaming operator pipeline for non-recursive
	// strata and forces the materializing kernel everywhere; used by ablation
	// benchmarks and the streaming≡materializing property test. Implied by
	// NoCompile (the pipeline lowers from the compiled form).
	NoStream bool
	// Workers > 1 evaluates each round's rule variants (and, under Shards,
	// each variant's shard slices) concurrently, collecting derivations into
	// per-task buffers and merging them after the round (semi-naive windows
	// never read the current round, so deferring insertion is
	// observationally identical). Workers ≤ 1 is sequential.
	Workers int
	// Shards > 1 enables the sharded round executor: every relation gains a
	// hash-partitioned ownership view over a planner-chosen join-key column,
	// and each round's variants split into per-shard tasks that enumerate
	// only their owned slice of the outer delta window (delta-first, walking
	// the contiguous round range directly) while inner probes read the
	// shared frozen indexes. Buffered derivations are committed in a
	// deterministic merge order, so the output database — including goal
	// early-stop partial databases — is byte-identical to Shards ≤ 1 for any
	// shard count. Shards is capped at 256 and normalized to 1 under
	// NoCompile (the sharded executor is part of the compiled kernel).
	Shards int
	// MaxDerived bounds the number of new facts; 0 means unlimited. Pure
	// Datalog always terminates, so the bound exists for callers that embed
	// evaluation in potentially non-terminating chases.
	MaxDerived int
	// Goal, when non-nil, halts evaluation the moment this ground atom is
	// derived (it is enforced on the emit path, not at round boundaries).
	// The returned database then contains the goal but is generally not the
	// full fixpoint. Containment sessions use this to stop the frozen-body
	// test of Section VI as soon as the frozen head appears.
	Goal *ast.GroundAtom
	// Context, when non-nil, cancels evaluation when it is done: deadlines
	// (context.WithTimeout/WithDeadline) and explicit cancellation both
	// surface as an error wrapping ErrCanceled. Cancellation is observed at
	// round boundaries and with a small cadence on the emit path. The
	// context is a per-call concern, never part of a plan: Prepare strips it
	// from the retained options and the plan cache ignores it when
	// fingerprinting, so a canceled request can never poison a cached plan.
	// Prepared callers pass per-request contexts through EvalCtx /
	// EvalGoalCtx / EvalGoalProvCtx instead.
	Context context.Context
}

// Stats reports work done by an evaluation. The cache fields are filled by
// session layers (the plan cache, the containment sessions) rather than by a
// single evaluation; a one-shot Eval leaves them zero.
type Stats struct {
	// Rounds is the number of fixpoint iterations (including the final empty
	// one that detects convergence).
	Rounds int
	// Firings is the number of successful body instantiations, i.e. the
	// joins' output size (including duplicates that derived a known fact).
	Firings int
	// Added is the number of new facts derived.
	Added int
	// PrepareHits / PrepareMisses count plan-cache lookups made on the
	// session's behalf: a hit reused an existing *Prepared, a miss had to
	// build one (by full preparation or by delta-patching an existing plan).
	PrepareHits   int
	PrepareMisses int
	// VerdictsReused / VerdictsRecomputed count memoized containment
	// verdicts carried across a Checker.Derive versus decided by running a
	// fresh goal-directed chase.
	VerdictsReused     int
	VerdictsRecomputed int
	// VerdictsSubsumed counts containment verdicts forced syntactically —
	// the tested rule is θ-subsumed by a rule of the containing program (or
	// is a tautology), so the chase was skipped entirely.
	VerdictsSubsumed int
	// StrataStreamed / StrataMaterialized count fixpoint units executed by
	// the streaming operator pipeline versus the materializing join kernel —
	// the planner's per-stratum decision, observable.
	StrataStreamed     int
	StrataMaterialized int
	// BindingsPipelined counts tuples successfully bound through a streaming
	// operator: the pipeline's total intermediate-result size, which the
	// materializing kernel would have buffered.
	BindingsPipelined int
	// EarlyStopCuts counts streaming passes cut mid-pipeline by a goal hit
	// or an exhausted derived-fact budget.
	EarlyStopCuts int
	// ShardRounds counts shard-round executions: a materializing round run
	// under Shards=N adds N (one per shard slice of the round).
	ShardRounds int
	// DeltaExchanged counts boundary-delta exchanges: facts committed whose
	// owner shard (by the head predicate's partition column) differs from
	// the shard that derived them, i.e. tuples that would cross shards in a
	// distributed deployment.
	DeltaExchanged int
	// ShardImbalance accumulates, per sharded round, the gap between the
	// busiest shard's firings and the round's per-shard mean — a direct
	// measure of how well the planner's partition columns spread the work.
	ShardImbalance int
	// Applies counts Maintained.Apply batches absorbed by a maintained view.
	Applies int
	// CountAdjusted counts derivation-count updates made by the counting
	// maintenance of non-recursive strata (one per tuple whose count moved).
	CountAdjusted int
	// Overdeleted / Rederived count the facts the DRed phases of recursive
	// strata first over-deleted and then restored from surviving support;
	// their gap is the net deletion work a retraction batch caused.
	Overdeleted int
	Rederived   int
	// RelationsFrozen / FreezeSkipped count, per maintenance batch, the
	// relations the snapshot layer had to compact-and-share versus those the
	// dirty-set check proved untouched since the previous freeze.
	RelationsFrozen int
	FreezeSkipped   int
	// ChasesBudgetFree / ChasesBudgetBounded count chase runs whose limits
	// came from a termination-classification-derived bound (the set provably
	// reaches a fixpoint) versus runs bounded by a raw caller or default
	// budget, where exhaustion is indistinguishable from divergence.
	ChasesBudgetFree    int
	ChasesBudgetBounded int
}

// AddCache accumulates o's cache counters into s.
func (s *Stats) AddCache(o Stats) {
	s.PrepareHits += o.PrepareHits
	s.PrepareMisses += o.PrepareMisses
	s.VerdictsReused += o.VerdictsReused
	s.VerdictsRecomputed += o.VerdictsRecomputed
	s.VerdictsSubsumed += o.VerdictsSubsumed
}

// AddStreaming accumulates o's streaming-executor counters into s. Session
// layers that run many internal evaluations (the containment chases) use it
// to surface how much of their work rode the pipeline.
func (s *Stats) AddStreaming(o Stats) {
	s.StrataStreamed += o.StrataStreamed
	s.StrataMaterialized += o.StrataMaterialized
	s.BindingsPipelined += o.BindingsPipelined
	s.EarlyStopCuts += o.EarlyStopCuts
}

// AddSharding accumulates o's sharded-executor counters into s. Accounting
// layers folding per-request stats into service totals use it so the shard
// counters merge exactly like the cache and streaming groups.
func (s *Stats) AddSharding(o Stats) {
	s.ShardRounds += o.ShardRounds
	s.DeltaExchanged += o.DeltaExchanged
	s.ShardImbalance += o.ShardImbalance
}

// AddMaintain accumulates o's incremental-maintenance counters into s.
func (s *Stats) AddMaintain(o Stats) {
	s.Applies += o.Applies
	s.CountAdjusted += o.CountAdjusted
	s.Overdeleted += o.Overdeleted
	s.Rederived += o.Rederived
	s.RelationsFrozen += o.RelationsFrozen
	s.FreezeSkipped += o.FreezeSkipped
}

// AddChase accumulates o's chase-budget counters into s.
func (s *Stats) AddChase(o Stats) {
	s.ChasesBudgetFree += o.ChasesBudgetFree
	s.ChasesBudgetBounded += o.ChasesBudgetBounded
}

// Eval computes P(input): the least DB containing input and closed under the
// rules of p (Section III). The input database is not modified; the returned
// database contains the input, matching the paper's convention that "the
// output of every program contains its input".
//
// Eval is the one-shot entry point: it is Prepare followed by a single
// Prepared.Eval. Callers evaluating the same program repeatedly should
// Prepare once and reuse the Prepared.
func Eval(p *ast.Program, input *db.Database, opts Options) (*db.Database, Stats, error) {
	pr, err := Prepare(p, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	return pr.EvalCtx(opts.Context, input)
}

// MustEval is Eval with default options, panicking on error; intended for
// tests and examples where the program is known valid.
func MustEval(p *ast.Program, input *db.Database) *db.Database {
	out, _, err := Eval(p, input, Options{})
	if err != nil {
		panic(err)
	}
	return out
}

// sccRuleGroups partitions the rule indexes of p by the strongly connected
// component of their head predicate, ordered so that a component's body
// predicates belong to the same or an earlier group. Tarjan (as used by
// depgraph.SCCs, with body→head edges) emits every consumer component
// before its producers, so the producer-first evaluation order is the
// REVERSE of the emission order.
func sccRuleGroups(p *ast.Program) [][]int {
	comps := depgraph.Build(p).SCCs()
	compOf := make(map[string]int)
	for i, comp := range comps {
		for _, pred := range comp {
			compOf[pred] = i
		}
	}
	groups := make([][]int, len(comps))
	for ri, r := range p.Rules {
		c := compOf[r.Head.Pred]
		groups[c] = append(groups[c], ri)
	}
	var out [][]int
	for i := len(groups) - 1; i >= 0; i-- {
		if len(groups[i]) > 0 {
			out = append(out, groups[i])
		}
	}
	return out
}

// indexNeed names one hash index a round's joins will probe: the bound
// column set of one body atom under the rule's evaluation order.
type indexNeed struct {
	pred string
	cols []int
}

// indexNeeds statically computes the (predicate, bound-column) pairs the
// nested-loops joins over the given ordered rule bodies will probe: for
// each body atom, the positions holding constants or variables bound by an
// earlier atom. Fully-bound atoms probe the dedup table and unbound atoms
// scan, so neither needs an index. Both the compiled and the generic
// evaluator bind variables atom-by-atom in exactly this order, so the set
// is exact — pre-building these indexes at round boundaries is what makes
// every in-round probe a lock-free read.
func indexNeeds(rules []ast.Rule) []indexNeed {
	var out []indexNeed
	seen := make(map[string]map[uint64]bool)
	for _, r := range rules {
		bound := make(map[string]bool)
		for _, a := range r.Body {
			var cols []int
			for i, t := range a.Args {
				if !t.IsVar || bound[t.Name] {
					cols = append(cols, i)
				}
			}
			if len(cols) > 0 && len(cols) < len(a.Args) {
				mask := db.ColMask(cols)
				if seen[a.Pred] == nil {
					seen[a.Pred] = make(map[uint64]bool)
				}
				if !seen[a.Pred][mask] {
					seen[a.Pred][mask] = true
					out = append(out, indexNeed{pred: a.Pred, cols: cols})
				}
			}
			for _, t := range a.Args {
				if t.IsVar {
					bound[t.Name] = true
				}
			}
		}
	}
	return out
}

func checkBudget(d *db.Database, baseLen int, opts Options) error {
	if opts.MaxDerived > 0 && d.Len()-baseLen > opts.MaxDerived {
		return fmt.Errorf("%w: derived %d facts (budget %d)", ErrBudget, d.Len()-baseLen, opts.MaxDerived)
	}
	return nil
}

// fullWindows gives every body position the window [0, maxRound].
func fullWindows(n int, maxRound int32) []db.RoundWindow {
	ws := make([]db.RoundWindow, n)
	for i := range ws {
		ws[i] = db.RoundWindow{Min: 0, Max: maxRound}
	}
	return ws
}

// deltaWindows gives position i the last round's delta, earlier positions
// strictly older facts, later positions anything up to the last round.
func deltaWindows(n, i int, prev int32) []db.RoundWindow {
	ws := make([]db.RoundWindow, n)
	for j := range ws {
		switch {
		case j < i:
			ws[j] = db.RoundWindow{Min: 0, Max: prev - 1}
		case j == i:
			ws[j] = db.RoundWindow{Min: prev, Max: prev}
		default:
			ws[j] = db.RoundWindow{Min: 0, Max: prev}
		}
	}
	return ws
}

func fireConstraints(d *db.Database, r ast.Rule, cs []db.Constraint, stats *Stats, emit func(string, []ast.Const) bool, stop func() bool) error {
	b := ast.Binding{}
	var firingErr error
	db.MatchSeq(d, cs, b, func() bool {
		// Stratified negation: every variable of a negated atom is bound by
		// safety, so the check is a simple absence test against the
		// already-complete lower strata.
		for _, n := range r.NegBody {
			g, err := n.Ground(b)
			if err != nil {
				firingErr = err
				return false
			}
			if d.Has(g) {
				return true
			}
		}
		stats.Firings++
		h, err := r.Head.Ground(b)
		if err != nil {
			firingErr = err
			return false
		}
		if emit(h.Pred, h.Args) {
			stats.Added++
			if stop != nil && stop() {
				return false
			}
		}
		return true
	})
	return firingErr
}

// anyAddedIn reports whether any fact carries the given round stamp.
func anyAddedIn(d *db.Database, round int32) bool {
	for _, p := range d.Preds() {
		r := d.Relation(p)
		for i := r.Len() - 1; i >= 0; i-- {
			if r.RoundOf(i) == round {
				return true
			}
			if r.RoundOf(i) < round {
				break // stamps are non-decreasing with insertion order
			}
		}
	}
	return false
}

// NonRecursive computes Pⁿ(d) as defined in Section IX: the set of head
// instantiations h·θ such that the body of some rule grounds into d. The
// result does not include d itself (the paper's convention for Pⁿ), and no
// derived fact feeds back into another derivation. Negated body atoms (the
// stratified extension) are checked against d.
func NonRecursive(p *ast.Program, d *db.Database) *db.Database {
	out := db.New()
	for _, r := range p.Rules {
		cs := make([]db.Constraint, len(r.Body))
		for i, a := range db.OrderForJoin(r.Body, nil) {
			cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
		}
		b := ast.Binding{}
		neg := r.NegBody
		head := r.Head
		db.MatchSeq(d, cs, b, func() bool {
			for _, n := range neg {
				if d.Has(n.MustGround(b)) {
					return true
				}
			}
			out.Add(head.MustGround(b))
			return true
		})
	}
	return out
}

// PreliminaryDB computes the preliminary DB of Section X for an EDB d: the
// union of d with Pⁱ(d), where Pⁱ consists of the initialization rules of p
// (rules whose bodies mention only extensional predicates). Pⁱ is
// non-recursive, so a single non-recursive application reaches its fixpoint.
func PreliminaryDB(p *ast.Program, edb *db.Database) *db.Database {
	out := edb.Clone()
	out.BeginRound()
	out.AddAll(NonRecursive(p.InitRules(), edb))
	return out
}

// IsModel reports whether d is a model of p (Section IV): applying p to d
// generates no ground atom outside d. For rules with negation the check uses
// the same stratified reading as Eval.
func IsModel(p *ast.Program, d *db.Database) bool {
	counterexample := false
	for _, r := range p.Rules {
		cs := make([]db.Constraint, len(r.Body))
		for i, a := range db.OrderForJoin(r.Body, nil) {
			cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
		}
		b := ast.Binding{}
		neg := r.NegBody
		head := r.Head
		db.MatchSeq(d, cs, b, func() bool {
			for _, n := range neg {
				if d.Has(n.MustGround(b)) {
					return true
				}
			}
			if !d.Has(head.MustGround(b)) {
				counterexample = true
				return false
			}
			return true
		})
		if counterexample {
			return false
		}
	}
	return true
}

// Query evaluates p on input and returns the tuples of the result matching
// the query atom's pattern (constants filter; variables project). Tuples are
// returned in the result database's deterministic fact order.
func Query(p *ast.Program, input *db.Database, query ast.Atom, opts Options) ([][]ast.Const, error) {
	out, _, err := Eval(p, input, opts)
	if err != nil {
		return nil, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, nil
}
