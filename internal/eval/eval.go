// Package eval implements the bottom-up computation of Section III: given a
// program P and an input DB (which, per the paper's uniform semantics, may
// assign initial relations to intentional as well as extensional
// predicates), repeatedly instantiate rules until no new ground atoms can be
// produced. The package provides both the naive strategy the paper describes
// and the standard semi-naive refinement (each derivation considered once),
// plus the auxiliary operators the paper's procedures need: the
// non-recursive application Pⁿ(d) of Section IX, the initialization program
// Pⁱ and preliminary DB of Section X, and — for the Section XII extension —
// stratified negation.
package eval

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
)

// Strategy selects the fixpoint algorithm.
type Strategy int

const (
	// SemiNaive derives each new fact from at least one last-round fact,
	// avoiding rederivation; it is the default.
	SemiNaive Strategy = iota
	// Naive re-fires every rule against the whole DB each round, exactly as
	// Section III describes the computation.
	Naive
)

// ErrBudget is returned when evaluation exceeds Options.MaxDerived.
var ErrBudget = errors.New("eval: derived-fact budget exhausted")

// Options configures evaluation.
type Options struct {
	// Strategy selects naive or semi-naive fixpoint; the default is
	// semi-naive.
	Strategy Strategy
	// NoReorder disables the greedy join-order heuristic and evaluates body
	// atoms in source order; used by ablation benchmarks.
	NoReorder bool
	// NoSCCOrder disables the SCC-ordered schedule and runs all rules in a
	// single fixpoint; used by ablation benchmarks.
	NoSCCOrder bool
	// NoCompile disables the slot-compiled rule evaluator and joins through
	// the generic binding-map matcher; used by ablation benchmarks and the
	// cross-check property test.
	NoCompile bool
	// Workers > 1 evaluates each round's rule variants concurrently,
	// collecting derivations into per-variant buffers and merging them
	// after the round (semi-naive windows never read the current round, so
	// deferring insertion is observationally identical). Workers ≤ 1 is
	// sequential.
	Workers int
	// MaxDerived bounds the number of new facts; 0 means unlimited. Pure
	// Datalog always terminates, so the bound exists for callers that embed
	// evaluation in potentially non-terminating chases.
	MaxDerived int
}

// Stats reports work done by an evaluation.
type Stats struct {
	// Rounds is the number of fixpoint iterations (including the final empty
	// one that detects convergence).
	Rounds int
	// Firings is the number of successful body instantiations, i.e. the
	// joins' output size (including duplicates that derived a known fact).
	Firings int
	// Added is the number of new facts derived.
	Added int
}

// Eval computes P(input): the least DB containing input and closed under the
// rules of p (Section III). The input database is not modified; the returned
// database contains the input, matching the paper's convention that "the
// output of every program contains its input".
func Eval(p *ast.Program, input *db.Database, opts Options) (*db.Database, Stats, error) {
	var stats Stats
	if err := p.Validate(); err != nil {
		return nil, stats, err
	}
	d := input.Clone()
	if !p.HasNegation() {
		if opts.NoSCCOrder {
			dyn := p.IDBPredicates()
			if err := fixpoint(d, p.Rules, dyn, opts, &stats, input.Len()); err != nil {
				return nil, stats, err
			}
			return d, stats, nil
		}
		// SCC-ordered schedule: evaluate the condensation of the dependence
		// graph bottom-up, one fixpoint per group of mutually recursive
		// predicates. Lower components are complete before higher ones run,
		// so each fixpoint's delta machinery only tracks its own component's
		// predicates — strictly less rederivation than one global fixpoint.
		for _, group := range sccRuleGroups(p) {
			dyn := make(map[string]bool)
			var rules []ast.Rule
			for _, ri := range group {
				rules = append(rules, p.Rules[ri])
				dyn[p.Rules[ri].Head.Pred] = true
			}
			if err := fixpoint(d, rules, dyn, opts, &stats, input.Len()); err != nil {
				return nil, stats, err
			}
		}
		return d, stats, nil
	}

	// Stratified negation: evaluate stratum by stratum; by stratification,
	// a negated predicate is complete before any rule reading it runs.
	strata, err := depgraph.Strata(p)
	if err != nil {
		return nil, stats, err
	}
	for _, stratum := range strata {
		inStratum := make(map[string]bool, len(stratum))
		for _, pred := range stratum {
			inStratum[pred] = true
		}
		var rules []ast.Rule
		dyn := make(map[string]bool)
		for _, r := range p.Rules {
			if inStratum[r.Head.Pred] {
				rules = append(rules, r)
				dyn[r.Head.Pred] = true
			}
		}
		if len(rules) == 0 {
			continue
		}
		if err := fixpoint(d, rules, dyn, opts, &stats, input.Len()); err != nil {
			return nil, stats, err
		}
	}
	return d, stats, nil
}

// MustEval is Eval with default options, panicking on error; intended for
// tests and examples where the program is known valid.
func MustEval(p *ast.Program, input *db.Database) *db.Database {
	out, _, err := Eval(p, input, Options{})
	if err != nil {
		panic(err)
	}
	return out
}

// sccRuleGroups partitions the rule indexes of p by the strongly connected
// component of their head predicate, ordered so that a component's body
// predicates belong to the same or an earlier group. Tarjan (as used by
// depgraph.SCCs, with body→head edges) emits every consumer component
// before its producers, so the producer-first evaluation order is the
// REVERSE of the emission order.
func sccRuleGroups(p *ast.Program) [][]int {
	comps := depgraph.Build(p).SCCs()
	compOf := make(map[string]int)
	for i, comp := range comps {
		for _, pred := range comp {
			compOf[pred] = i
		}
	}
	groups := make([][]int, len(comps))
	for ri, r := range p.Rules {
		c := compOf[r.Head.Pred]
		groups[c] = append(groups[c], ri)
	}
	var out [][]int
	for i := len(groups) - 1; i >= 0; i-- {
		if len(groups[i]) > 0 {
			out = append(out, groups[i])
		}
	}
	return out
}

// indexNeed names one hash index a round's joins will probe: the bound
// column set of one body atom under the rule's evaluation order.
type indexNeed struct {
	pred string
	cols []int
}

// indexNeeds statically computes the (predicate, bound-column) pairs the
// nested-loops joins over the given ordered rule bodies will probe: for
// each body atom, the positions holding constants or variables bound by an
// earlier atom. Fully-bound atoms probe the dedup table and unbound atoms
// scan, so neither needs an index. Both the compiled and the generic
// evaluator bind variables atom-by-atom in exactly this order, so the set
// is exact — pre-building these indexes at round boundaries is what makes
// every in-round probe a lock-free read.
func indexNeeds(rules []ast.Rule) []indexNeed {
	var out []indexNeed
	seen := make(map[string]map[uint64]bool)
	for _, r := range rules {
		bound := make(map[string]bool)
		for _, a := range r.Body {
			var cols []int
			for i, t := range a.Args {
				if !t.IsVar || bound[t.Name] {
					cols = append(cols, i)
				}
			}
			if len(cols) > 0 && len(cols) < len(a.Args) {
				mask := db.ColMask(cols)
				if seen[a.Pred] == nil {
					seen[a.Pred] = make(map[uint64]bool)
				}
				if !seen[a.Pred][mask] {
					seen[a.Pred][mask] = true
					out = append(out, indexNeed{pred: a.Pred, cols: cols})
				}
			}
			for _, t := range a.Args {
				if t.IsVar {
					bound[t.Name] = true
				}
			}
		}
	}
	return out
}

// fixpoint runs the chosen strategy over one set of rules whose heads are
// the dynamic predicates, mutating d in place.
func fixpoint(d *db.Database, rules []ast.Rule, dynamic map[string]bool, opts Options, stats *Stats, baseLen int) error {
	ordered := make([]ast.Rule, len(rules))
	compiled := make([]*compiledRule, len(rules))
	var needs []indexNeed
	sizeOf := func(pred string) int {
		if rel := d.Relation(pred); rel != nil {
			return rel.Len()
		}
		return 0
	}
	// prepare (re)orders rule bodies against the current relation sizes,
	// recompiles them, and recomputes the index column sets the round's
	// probes will need. It runs at every round boundary so the greedy
	// join-order heuristic sees live cardinalities, not the sizes at
	// stratum entry; under NoReorder the order is fixed, so only the first
	// call does work.
	prepared := false
	prepare := func() {
		if prepared && opts.NoReorder {
			return
		}
		for i, r := range rules {
			ordered[i] = r.Clone()
			if !opts.NoReorder {
				ordered[i].Body = db.OrderForJoinSized(r.Body, nil, sizeOf)
			}
			if !opts.NoCompile {
				compiled[i] = compileRule(ordered[i])
			}
		}
		needs = indexNeeds(ordered)
		prepared = true
	}
	// freeze builds or extends every index the round's joins will probe.
	// Tuples inserted mid-round are stamped with the current round, which
	// every window excludes, so the frozen indexes stay sufficient for the
	// whole round and in-round probes never lock or mutate.
	freeze := func() {
		for _, n := range needs {
			d.EnsureIndex(n.pred, n.cols)
		}
	}
	// fireInto evaluates one variant with derivations routed to emit; a
	// non-nil stop aborts the variant's enumeration when it reports true.
	fireInto := func(idx int, windows []db.RoundWindow, st *Stats, emit func(string, []ast.Const) bool, stop func() bool) error {
		if compiled[idx] != nil {
			compiled[idx].fire(d, windows, st, emit, stop)
			return nil
		}
		r := ordered[idx]
		cs := make([]db.Constraint, len(r.Body))
		for j, b := range r.Body {
			cs[j] = db.Constraint{Atom: b, Window: windows[j]}
		}
		return fireConstraints(d, r, cs, st, emit, stop)
	}
	budgetErr := func() error {
		return fmt.Errorf("%w: derived %d facts (budget %d)", ErrBudget, d.Len()-baseLen, opts.MaxDerived)
	}

	type variant struct {
		idx     int
		windows []db.RoundWindow
	}
	// runRound evaluates a round's variants, sequentially or in parallel.
	// The derived-fact budget is enforced inside the emit path, so a round
	// that would blow far past Options.MaxDerived (a chase embedding on a
	// diverging instance, say) is cut off as soon as the budget is
	// exhausted rather than after the round completes.
	runRound := func(variants []variant) error {
		if opts.Workers <= 1 || len(variants) < 2 {
			stop := false
			remaining := -1
			if opts.MaxDerived > 0 {
				remaining = opts.MaxDerived - (d.Len() - baseLen)
			}
			emit := func(pred string, args []ast.Const) bool {
				if !d.AddTuple(pred, args) {
					return false
				}
				if remaining >= 0 {
					remaining--
					if remaining < 0 {
						stop = true
					}
				}
				return true
			}
			var stopFn func() bool
			if opts.MaxDerived > 0 {
				stopFn = func() bool { return stop }
			}
			for _, v := range variants {
				if err := fireInto(v.idx, v.windows, stats, emit, stopFn); err != nil {
					return err
				}
				if stop {
					return budgetErr()
				}
			}
			return nil
		}
		type pending struct {
			pred string
			args []ast.Const
		}
		// Parallel: fire variants concurrently into per-variant buffers and
		// merge after the round. The budget tripwire counts tentative
		// emissions (each variant dedups against the frozen database but
		// not against its peers), so it can only overcount; when it trips
		// without the merged total actually exceeding the budget, the
		// truncated round is re-fired — already-merged facts then dedup at
		// emit time, so every re-fire either completes the round or strictly
		// grows the database until the budget genuinely runs out.
		var tentative atomic.Int64
		var tripped atomic.Bool
		var stopFn func() bool
		if opts.MaxDerived > 0 {
			stopFn = func() bool { return tripped.Load() }
		}
		for {
			tentative.Store(int64(d.Len() - baseLen))
			tripped.Store(false)
			buffers := make([][]pending, len(variants))
			statsArr := make([]Stats, len(variants))
			errs := make([]error, len(variants))
			sem := make(chan struct{}, opts.Workers)
			var wg sync.WaitGroup
			for vi := range variants {
				wg.Add(1)
				go func(vi int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					v := variants[vi]
					emit := func(pred string, args []ast.Const) bool {
						if d.HasTuple(pred, args) {
							return false
						}
						cp := make([]ast.Const, len(args))
						copy(cp, args)
						buffers[vi] = append(buffers[vi], pending{pred: pred, args: cp})
						if opts.MaxDerived > 0 && tentative.Add(1) > int64(opts.MaxDerived) {
							tripped.Store(true)
						}
						return true // tentatively new; merge dedups across variants
					}
					errs[vi] = fireInto(v.idx, v.windows, &statsArr[vi], emit, stopFn)
				}(vi)
			}
			wg.Wait()
			for vi := range variants {
				if errs[vi] != nil {
					return errs[vi]
				}
				stats.Firings += statsArr[vi].Firings
				for _, pf := range buffers[vi] {
					if d.AddTuple(pf.pred, pf.args) {
						stats.Added++
					}
				}
			}
			if !tripped.Load() {
				return nil
			}
			if d.Len()-baseLen > opts.MaxDerived {
				return budgetErr()
			}
		}
	}

	prevTop := d.Round() // facts present before this stratum: rounds ≤ prevTop
	round := d.BeginRound()
	stats.Rounds++
	prepare()
	freeze()

	// First iteration: full application of every rule.
	var firstRound []variant
	for idx := range ordered {
		firstRound = append(firstRound, variant{idx, fullWindows(len(ordered[idx].Body), prevTop)})
	}
	if err := runRound(firstRound); err != nil {
		return err
	}
	if err := checkBudget(d, baseLen, opts); err != nil {
		return err
	}

	for {
		if !anyAddedIn(d, round) {
			return nil
		}
		prev := round
		round = d.BeginRound()
		stats.Rounds++
		prepare() // re-order joins against this round's cardinalities
		freeze()
		var variants []variant
		for idx := range ordered {
			r := ordered[idx]
			if opts.Strategy == Naive {
				variants = append(variants, variant{idx, fullWindows(len(r.Body), prev)})
				continue
			}
			// Semi-naive: one variant per dynamic body position i, with
			// position i restricted to the last round's delta, earlier
			// positions to strictly older facts, and later positions to
			// anything up to the last round. Every new combination has a
			// unique least delta position, so nothing is derived twice.
			for i, a := range r.Body {
				if !dynamic[a.Pred] {
					continue
				}
				variants = append(variants, variant{idx, deltaWindows(len(r.Body), i, prev)})
			}
		}
		if err := runRound(variants); err != nil {
			return err
		}
		if err := checkBudget(d, baseLen, opts); err != nil {
			return err
		}
	}
}

func checkBudget(d *db.Database, baseLen int, opts Options) error {
	if opts.MaxDerived > 0 && d.Len()-baseLen > opts.MaxDerived {
		return fmt.Errorf("%w: derived %d facts (budget %d)", ErrBudget, d.Len()-baseLen, opts.MaxDerived)
	}
	return nil
}

// fullWindows gives every body position the window [0, maxRound].
func fullWindows(n int, maxRound int32) []db.RoundWindow {
	ws := make([]db.RoundWindow, n)
	for i := range ws {
		ws[i] = db.RoundWindow{Min: 0, Max: maxRound}
	}
	return ws
}

// deltaWindows gives position i the last round's delta, earlier positions
// strictly older facts, later positions anything up to the last round.
func deltaWindows(n, i int, prev int32) []db.RoundWindow {
	ws := make([]db.RoundWindow, n)
	for j := range ws {
		switch {
		case j < i:
			ws[j] = db.RoundWindow{Min: 0, Max: prev - 1}
		case j == i:
			ws[j] = db.RoundWindow{Min: prev, Max: prev}
		default:
			ws[j] = db.RoundWindow{Min: 0, Max: prev}
		}
	}
	return ws
}

func fireConstraints(d *db.Database, r ast.Rule, cs []db.Constraint, stats *Stats, emit func(string, []ast.Const) bool, stop func() bool) error {
	b := ast.Binding{}
	var firingErr error
	db.MatchSeq(d, cs, b, func() bool {
		// Stratified negation: every variable of a negated atom is bound by
		// safety, so the check is a simple absence test against the
		// already-complete lower strata.
		for _, n := range r.NegBody {
			g, err := n.Ground(b)
			if err != nil {
				firingErr = err
				return false
			}
			if d.Has(g) {
				return true
			}
		}
		stats.Firings++
		h, err := r.Head.Ground(b)
		if err != nil {
			firingErr = err
			return false
		}
		if emit(h.Pred, h.Args) {
			stats.Added++
			if stop != nil && stop() {
				return false
			}
		}
		return true
	})
	return firingErr
}

// anyAddedIn reports whether any fact carries the given round stamp.
func anyAddedIn(d *db.Database, round int32) bool {
	for _, p := range d.Preds() {
		r := d.Relation(p)
		for i := r.Len() - 1; i >= 0; i-- {
			if r.RoundOf(i) == round {
				return true
			}
			if r.RoundOf(i) < round {
				break // stamps are non-decreasing with insertion order
			}
		}
	}
	return false
}

// NonRecursive computes Pⁿ(d) as defined in Section IX: the set of head
// instantiations h·θ such that the body of some rule grounds into d. The
// result does not include d itself (the paper's convention for Pⁿ), and no
// derived fact feeds back into another derivation. Negated body atoms (the
// stratified extension) are checked against d.
func NonRecursive(p *ast.Program, d *db.Database) *db.Database {
	out := db.New()
	for _, r := range p.Rules {
		cs := make([]db.Constraint, len(r.Body))
		for i, a := range db.OrderForJoin(r.Body, nil) {
			cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
		}
		b := ast.Binding{}
		neg := r.NegBody
		head := r.Head
		db.MatchSeq(d, cs, b, func() bool {
			for _, n := range neg {
				if d.Has(n.MustGround(b)) {
					return true
				}
			}
			out.Add(head.MustGround(b))
			return true
		})
	}
	return out
}

// PreliminaryDB computes the preliminary DB of Section X for an EDB d: the
// union of d with Pⁱ(d), where Pⁱ consists of the initialization rules of p
// (rules whose bodies mention only extensional predicates). Pⁱ is
// non-recursive, so a single non-recursive application reaches its fixpoint.
func PreliminaryDB(p *ast.Program, edb *db.Database) *db.Database {
	out := edb.Clone()
	out.BeginRound()
	out.AddAll(NonRecursive(p.InitRules(), edb))
	return out
}

// IsModel reports whether d is a model of p (Section IV): applying p to d
// generates no ground atom outside d. For rules with negation the check uses
// the same stratified reading as Eval.
func IsModel(p *ast.Program, d *db.Database) bool {
	counterexample := false
	for _, r := range p.Rules {
		cs := make([]db.Constraint, len(r.Body))
		for i, a := range db.OrderForJoin(r.Body, nil) {
			cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
		}
		b := ast.Binding{}
		neg := r.NegBody
		head := r.Head
		db.MatchSeq(d, cs, b, func() bool {
			for _, n := range neg {
				if d.Has(n.MustGround(b)) {
					return true
				}
			}
			if !d.Has(head.MustGround(b)) {
				counterexample = true
				return false
			}
			return true
		})
		if counterexample {
			return false
		}
	}
	return true
}

// Query evaluates p on input and returns the tuples of the result matching
// the query atom's pattern (constants filter; variables project). Tuples are
// returned in the result database's deterministic fact order.
func Query(p *ast.Program, input *db.Database, query ast.Atom, opts Options) ([][]ast.Const, error) {
	out, _, err := Eval(p, input, opts)
	if err != nil {
		return nil, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, nil
}
