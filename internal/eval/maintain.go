package eval

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/db"
)

// Fact-level incremental view maintenance: a Maintained view keeps
// out = P(input) up to date under mixed assert/retract batches without
// re-evaluating from scratch.
//
// The planner's per-unit streamable/recursive split picks the algorithm:
//
//   - Counting, for streamable units (no rule reads the unit's own heads —
//     the non-recursive strata): every tuple of a unit head predicate
//     carries a derivation count in the relation's count column
//     (db.Relation counts): the number of rule firings deriving it plus one
//     external support when the tuple is an input fact. A batch adjusts
//     counts by enumerating exactly the lost firings (valid before, invalid
//     after) and the gained firings (valid after, invalid before) — each
//     firing counted once via the least-changed-position discipline — and a
//     tuple leaves the view precisely when its count reaches zero.
//
//   - DRed (delete-rederive), for the recursive units, where counts would
//     have to track unbounded derivation multiplicities: over-delete every
//     fact with a derivation through a retracted support (transitively, to
//     fixpoint, joined against the old frozen output), restore the
//     over-deleted facts that keep alternative support (input membership or
//     a one-step derivation from the surviving view), then run the ordinary
//     semi-naive insertion loop for the asserted side.
//
// Both phases process schedule units in producer-first order and hand each
// unit the exact net diff of everything below it, which is what makes
// stratified negation work: an assertion below can retract facts above
// (lost firings / over-deletions driven by the negated atom's delta) and a
// retraction below can assert facts above (gained firings driven by the
// negated atom's removal).
//
// Determinism: retraction-side work is sequential, and every batch of
// staged facts is committed in canonical (predicate, arguments) order; the
// insertion side reuses the shared round executor (rounds.go) through
// maintInsertLoop, so the Workers × Shards byte-identity contract of the
// evaluator carries over to maintained views — the maintained database is
// byte-identical across worker and shard counts.
//
// A Maintained view is not safe for concurrent use; callers serialize
// Apply (core.Session wraps views behind its own lock). A failed Apply
// (context cancellation) leaves the view on its previous snapshot.

// Delta is one batch of fact-level input mutations, set-semantics:
// retracting an absent fact and asserting a present one are no-ops, and a
// fact both retracted and asserted in one batch nets to "present". Only
// input (extensional) facts can be retracted; retracting a derived-only
// fact is a no-op — the derivations keep it in the view.
type Delta struct {
	Assert  []ast.GroundAtom
	Retract []ast.GroundAtom
}

// Empty reports whether the delta carries no mutations.
func (d Delta) Empty() bool { return len(d.Assert) == 0 && len(d.Retract) == 0 }

// Diff is the exact net output change of one Apply: facts that entered and
// left the materialized view, each in canonical (predicate, arguments)
// order.
type Diff struct {
	Added   []ast.GroundAtom
	Removed []ast.GroundAtom
}

// Empty reports whether the diff is empty.
func (d Diff) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// MaintainOptions configures a maintained view.
type MaintainOptions struct {
	// ForceDRed runs delete-rederive on every unit, including the
	// non-recursive ones counting would normally handle — the ablation knob
	// the maintenance oracle grid uses to exercise both algorithms on the
	// same programs.
	ForceDRed bool
}

// Maintained is a materialized output kept incrementally consistent with
// its input database under Apply batches.
type Maintained struct {
	pr    *Prepared
	opts  Options
	mo    MaintainOptions
	in    *db.Snapshot // current input EDB
	snap  *db.Snapshot // current maintained output P(input)
	units []maintUnit
	owner map[string]int // head predicate → unit index
}

type maintUnit struct {
	rules    []ast.Rule
	heads    map[string]bool
	counting bool
}

// Materialize evaluates the prepared program on input and wraps the result
// as a maintained view. The input is not modified; the view keeps private
// copy-on-write snapshots of both input and output. Plans prepared with a
// goal or a derived-fact budget are rejected — a maintained view is by
// definition the full materialization — as is NoSCCOrder combined with
// negation (maintenance needs the stratified schedule's producer-first
// order).
func (pr *Prepared) Materialize(ctx context.Context, input *db.Database, mo MaintainOptions) (*Maintained, Stats, error) {
	if pr.opts.Goal != nil || pr.opts.MaxDerived > 0 {
		return nil, Stats{}, fmt.Errorf("eval: Materialize requires a full-materialization plan (no goal, no derived-fact budget)")
	}
	if pr.opts.NoSCCOrder && pr.prog.HasNegation() {
		return nil, Stats{}, fmt.Errorf("eval: Materialize with negation requires the stratified schedule (NoSCCOrder is set)")
	}
	out, _, stats, err := pr.run(ctx, input, nil, 0, nil)
	if err != nil {
		return nil, stats, err
	}
	m := &Maintained{
		pr:    pr,
		opts:  pr.opts,
		mo:    mo,
		owner: make(map[string]int),
	}
	in := input.Clone()
	for ui, u := range pr.units {
		mu := maintUnit{
			rules:    u.rules,
			heads:    make(map[string]bool),
			counting: u.streamable && !mo.ForceDRed,
		}
		for _, r := range u.rules {
			mu.heads[r.Head.Pred] = true
			m.owner[r.Head.Pred] = ui
		}
		m.units = append(m.units, mu)
	}
	// Seed the derivation counts of every counting unit: firings over the
	// final output (the unit's body predicates are complete there) plus one
	// external support per input fact of a unit head predicate.
	for _, u := range m.units {
		if !u.counting {
			continue
		}
		for _, r := range u.rules {
			cs := make([]matchPos, len(r.Body))
			for i, a := range r.Body {
				cs[i] = matchPos{atom: a, src: out}
			}
			b := ast.Binding{}
			matchChain(cs, b, func() bool {
				for _, na := range r.NegBody {
					if out.Has(na.MustGround(b)) {
						return true
					}
				}
				stats.Firings++
				out.BumpCount(r.Head.Pred, r.Head.MustGround(b).Args, 1)
				return true
			})
		}
		for pred := range u.heads {
			rel := in.Relation(pred)
			if rel == nil {
				continue
			}
			for i := 0; i < rel.Len(); i++ {
				out.BumpCount(pred, rel.Tuple(i), 1)
			}
		}
	}
	m.in = in.Freeze()
	m.snap = out.Freeze()
	return m, stats, nil
}

// Output returns the current materialized output as a frozen database.
// Callers must not mutate it; it stays valid (as that version) across later
// Applies.
func (m *Maintained) Output() *db.Database { return m.snap.DB() }

// Input returns the view's current input EDB as a frozen database.
func (m *Maintained) Input() *db.Database { return m.in.DB() }

// Program returns the maintained program.
func (m *Maintained) Program() *ast.Program { return m.pr.Program() }

// Apply absorbs one mutation batch: the input gains delta.Assert and loses
// delta.Retract, the materialized output is maintained in place, and the
// exact net output diff is returned in canonical order. On error (context
// cancellation) the view is left on its previous input/output snapshots.
func (m *Maintained) Apply(ctx context.Context, delta Delta) (Diff, Stats, error) {
	var stats Stats
	stats.Applies++
	if err := CtxErr(ctx); err != nil {
		return Diff{}, stats, err
	}
	old := m.snap.DB()
	if err := m.validateArities(delta); err != nil {
		return Diff{}, stats, err
	}

	// Normalize to net set mutations: batch-dedup, assert wins over retract
	// of the same fact, retracts restricted to present input facts, asserts
	// to absent ones.
	inPrev := m.in.DB()
	aSet, rSet := db.New(), db.New()
	for _, g := range delta.Assert {
		aSet.Add(g)
	}
	for _, g := range delta.Retract {
		if !aSet.Has(g) {
			rSet.Add(g)
		}
	}
	var asserts, retracts []ast.GroundAtom
	for _, g := range delta.Assert {
		if !inPrev.Has(g) && aSet.Remove(g) {
			asserts = append(asserts, g)
		}
	}
	for _, g := range delta.Retract {
		if inPrev.Has(g) && rSet.Remove(g) {
			retracts = append(retracts, g)
		}
	}
	if len(asserts) == 0 && len(retracts) == 0 {
		return Diff{}, stats, nil
	}
	sortFacts(asserts)
	sortFacts(retracts)

	input := m.in.Thaw()
	for _, g := range retracts {
		input.Remove(g)
	}
	input.Compact()
	for _, g := range asserts {
		input.Add(g)
	}

	cur := m.snap.Thaw()
	deltaMin := cur.BeginRound()
	addedDB, remDB := db.New(), db.New()

	// Extensional-only predicates (no unit owns them) pass through: their
	// output facts are exactly their input facts.
	for _, g := range retracts {
		if _, owned := m.owner[g.Pred]; !owned && cur.Remove(g) {
			remDB.Add(g)
		}
	}
	cur.Compact()
	for _, g := range asserts {
		if _, owned := m.owner[g.Pred]; !owned && cur.Add(g) {
			addedDB.Add(g)
		}
	}

	for i := range m.units {
		if err := CtxErr(ctx); err != nil {
			return Diff{}, stats, err
		}
		u := &m.units[i]
		if u.counting {
			m.countingUnit(u, old, cur, input, asserts, retracts, addedDB, remDB, &stats)
		} else if err := m.dredUnit(ctx, u, old, cur, input, asserts, retracts, addedDB, remDB, deltaMin, &stats); err != nil {
			return Diff{}, stats, err
		}
	}

	// The dirty-set freeze only compacts-and-shares relations the batch
	// actually wrote; count both sides so maintenance stats prove how much
	// re-freeze work the write-epoch check skipped for untouched relations.
	stats.RelationsFrozen += input.DirtyRelations() + cur.DirtyRelations()
	stats.FreezeSkipped += (input.RelationCount() - input.DirtyRelations()) +
		(cur.RelationCount() - cur.DirtyRelations())
	m.in = input.Freeze()
	m.snap = cur.Freeze()
	return Diff{Added: sortedFacts(addedDB), Removed: sortedFacts(remDB)}, stats, nil
}

// validateArities rejects batch facts whose arity contradicts an existing
// relation — AddTuple would panic deep inside a half-applied batch.
func (m *Maintained) validateArities(delta Delta) error {
	check := func(g ast.GroundAtom) error {
		for _, d := range []*db.Database{m.in.DB(), m.snap.DB()} {
			if rel := d.Relation(g.Pred); rel != nil && rel.Arity() != len(g.Args) {
				return fmt.Errorf("eval: Apply: %s has arity %d, relation %s has arity %d", g, len(g.Args), g.Pred, rel.Arity())
			}
		}
		return nil
	}
	for _, g := range delta.Assert {
		if err := check(g); err != nil {
			return err
		}
	}
	for _, g := range delta.Retract {
		if err := check(g); err != nil {
			return err
		}
	}
	return nil
}

// countingUnit maintains one streamable unit by derivation counting. old is
// the pre-Apply output (frozen), cur the in-progress successor with every
// lower unit already final; addedDB/remDB hold the exact net diff of the
// strata below (plus the extensional passthrough) and gain this unit's net
// diff before returning.
func (m *Maintained) countingUnit(u *maintUnit, old, cur, input *db.Database, asserts, retracts []ast.GroundAtom, addedDB, remDB *db.Database, stats *Stats) {
	type countAdj struct {
		g ast.GroundAtom
		d int32
	}
	adj := make(map[string]*countAdj)
	bump := func(g ast.GroundAtom, d int32) {
		k := g.Key()
		e := adj[k]
		if e == nil {
			e = &countAdj{g: g}
			adj[k] = e
		}
		e.d += d
	}
	// External support: input facts of this unit's head predicates count as
	// one derivation.
	for _, g := range asserts {
		if u.heads[g.Pred] {
			bump(g, 1)
		}
	}
	for _, g := range retracts {
		if u.heads[g.Pred] {
			bump(g, -1)
		}
	}
	// Lost firings: valid against the old output, invalidated by a removed
	// positive support or an added negated fact.
	changedFirings(u.rules, old, remDB, addedDB, stats, func(g ast.GroundAtom) { bump(g, -1) })
	// Gained firings: valid against the new state of the lower strata,
	// enabled by an added positive support or a removed negated fact.
	changedFirings(u.rules, cur, addedDB, remDB, stats, func(g ast.GroundAtom) { bump(g, 1) })

	list := make([]ast.GroundAtom, 0, len(adj))
	byKey := make(map[string]*countAdj, len(adj))
	for k, e := range adj {
		if e.d == 0 {
			continue
		}
		list = append(list, e.g)
		byKey[k] = e
	}
	sortFacts(list)
	cur.BeginRound()
	var removals []ast.GroundAtom
	for _, g := range list {
		e := byKey[g.Key()]
		stats.CountAdjusted++
		if cur.Has(g) {
			if n, _ := cur.BumpCount(g.Pred, g.Args, e.d); n <= 0 {
				removals = append(removals, g)
			}
			continue
		}
		if e.d > 0 {
			cur.Add(g)
			cur.BumpCount(g.Pred, g.Args, e.d)
			addedDB.Add(g)
		}
	}
	for _, g := range removals {
		cur.Remove(g)
		remDB.Add(g)
	}
	cur.Compact()
}

// dredUnit maintains one recursive unit by delete-rederive.
func (m *Maintained) dredUnit(ctx context.Context, u *maintUnit, old, cur, input *db.Database, asserts, retracts []ast.GroundAtom, addedDB, remDB *db.Database, deltaMin int32, stats *Stats) error {
	// Over-delete: transitively collect every head fact with a derivation
	// (against the old output) through a removed support — a retracted or
	// lower-removed positive atom, an added negated atom, or a fact this
	// loop already over-deleted.
	deletedSet := db.New()
	var deleted []ast.GroundAtom
	fr := db.New()
	fr.AddAll(remDB)
	for _, g := range retracts {
		if u.heads[g.Pred] && old.Has(g) {
			deletedSet.Add(g)
			deleted = append(deleted, g)
			fr.Add(g)
		}
	}
	first := true
	for {
		if err := CtxErr(ctx); err != nil {
			return err
		}
		var negD *db.Database
		if first {
			negD = addedDB // lower-stratum additions can invalidate negated atoms once
		}
		next := db.New()
		changedFirings(u.rules, old, fr, negD, stats, func(g ast.GroundAtom) {
			if old.Has(g) && !deletedSet.Has(g) {
				deletedSet.Add(g)
				deleted = append(deleted, g)
				next.Add(g)
			}
		})
		first = false
		if next.Len() == 0 {
			break
		}
		fr = next
	}

	// Remove the over-deletion, then restore candidates with surviving
	// support: input membership or a one-step derivation from what remains.
	// Facts only derivable through other restored facts come back in the
	// insertion loop below — restored facts carry fresh round stamps, so the
	// delta windows reach them.
	stats.Overdeleted += len(deleted)
	sortFacts(deleted)
	for _, g := range deleted {
		cur.Remove(g)
	}
	cur.Compact()
	cur.BeginRound()
	for _, g := range deleted {
		if input.Has(g) || oneStepDerivable(u, cur, g) {
			cur.Add(g)
			stats.Rederived++
		}
	}

	// Insertion side: stage input asserts of this unit's heads and the
	// firings a removed negated fact enabled, then close semi-naively over
	// everything stamped in this Apply — lower-unit additions, restored
	// facts and the staged batch alike — through the shared round executor.
	staged := db.New()
	var stagedList []ast.GroundAtom
	for _, g := range asserts {
		if u.heads[g.Pred] && !cur.Has(g) && staged.Add(g) {
			stagedList = append(stagedList, g)
		}
	}
	changedFirings(u.rules, cur, nil, remDB, stats, func(g ast.GroundAtom) {
		if !cur.Has(g) && staged.Add(g) {
			stagedList = append(stagedList, g)
		}
	})
	sortFacts(stagedList)
	for _, g := range stagedList {
		cur.Add(g)
	}
	if err := maintInsertLoop(ctx, cur, u.rules, deltaMin, m.opts, stats); err != nil {
		return err
	}

	// Net unit diff: everything stamped in this Apply that the old output
	// lacked entered the view; over-deleted facts that never came back left
	// it.
	for pred := range u.heads {
		rel := cur.Relation(pred)
		if rel == nil {
			continue
		}
		for i := rel.LenAt(deltaMin - 1); i < rel.Len(); i++ {
			t := rel.Tuple(i)
			if !old.HasTuple(pred, t) {
				addedDB.AddTuple(pred, t)
			}
		}
	}
	for _, g := range deleted {
		if !cur.Has(g) {
			remDB.Add(g)
		}
	}
	return nil
}

// oneStepDerivable reports whether some unit rule derives g in one step
// from d.
func oneStepDerivable(u *maintUnit, d *db.Database, g ast.GroundAtom) bool {
	for _, r := range u.rules {
		if r.Head.Pred != g.Pred {
			continue
		}
		b := ast.Binding{}
		if _, ok := r.Head.MatchGround(g.Pred, g.Args, b); !ok {
			continue
		}
		cs := make([]matchPos, len(r.Body))
		for i, a := range r.Body {
			cs[i] = matchPos{atom: a, src: d}
		}
		found := false
		matchChain(cs, b, func() bool {
			for _, na := range r.NegBody {
				if d.Has(na.MustGround(b)) {
					return true
				}
			}
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// matchPos is one position of a maintenance join: atom matched against src,
// skipping matches present in excl (nil = no exclusion).
type matchPos struct {
	atom ast.Atom
	src  *db.Database
	excl *db.Database
}

// matchChain is the nested-loops join over matchPos constraints; f runs
// with the shared binding fully extended and may return false to stop.
func matchChain(cs []matchPos, b ast.Binding, f func() bool) bool {
	if len(cs) == 0 {
		return f()
	}
	c := cs[0]
	return db.MatchAtom(c.src, c.atom, db.AllRounds, b, func() bool {
		if c.excl != nil && c.excl.Has(c.atom.MustGround(b)) {
			return true
		}
		return matchChain(cs[1:], b, f)
	})
}

// changedFirings enumerates, exactly once each, the rule firings valid
// against base that involve the change sets: firings with at least one
// positive body atom in posDelta (counted at their least such position,
// earlier positions matching base minus posDelta), plus — for firings with
// no positive atom in posDelta — those whose least negated atom in negDelta
// flips the negation. Every emitted firing satisfies the rule's negations
// against base. Either delta set may be nil.
func changedFirings(rules []ast.Rule, base, posDelta, negDelta *db.Database, stats *Stats, emit func(ast.GroundAtom)) {
	for _, r := range rules {
		if posDelta != nil && posDelta.Len() > 0 {
			for i := range r.Body {
				cs := make([]matchPos, 0, len(r.Body))
				cs = append(cs, matchPos{atom: r.Body[i], src: posDelta})
				for j, a := range r.Body {
					if j == i {
						continue
					}
					mp := matchPos{atom: a, src: base}
					if j < i {
						mp.excl = posDelta
					}
					cs = append(cs, mp)
				}
				b := ast.Binding{}
				matchChain(cs, b, func() bool {
					for _, na := range r.NegBody {
						if base.Has(na.MustGround(b)) {
							return true
						}
					}
					stats.Firings++
					emit(r.Head.MustGround(b))
					return true
				})
			}
		}
		if negDelta != nil && negDelta.Len() > 0 && len(r.NegBody) > 0 {
			for k := range r.NegBody {
				cs := make([]matchPos, 0, len(r.Body)+1)
				cs = append(cs, matchPos{atom: r.NegBody[k], src: negDelta})
				for _, a := range r.Body {
					cs = append(cs, matchPos{atom: a, src: base, excl: posDelta})
				}
				b := ast.Binding{}
				matchChain(cs, b, func() bool {
					for j, na := range r.NegBody {
						g := na.MustGround(b)
						if base.Has(g) {
							return true
						}
						if j < k && negDelta.Has(g) {
							return true // counted at the earlier flipped position
						}
					}
					stats.Firings++
					emit(r.Head.MustGround(b))
					return true
				})
			}
		}
	}
}

// maintInsertLoop is the insertion side of maintenance: semi-naive
// propagation through the shared round executor, with a first round whose
// delta window spans every round of the current Apply ([deltaMin, prev]) —
// lower-unit additions, DRed-restored facts and staged asserts all carry
// stamps in that span — and ordinary single-round delta windows after that.
// Identical to deltaLoop otherwise, so Workers and Shards keep the
// evaluator's determinism disciplines.
func maintInsertLoop(ctx context.Context, d *db.Database, rules []ast.Rule, deltaMin int32, opts Options, stats *Stats) error {
	opts.Context = ctx
	opts.Goal = nil
	opts.MaxDerived = 0
	opts.Shards = normalizeShards(opts)
	ordered := make([]ast.Rule, len(rules))
	compiled := make([]*compiledRule, len(rules))
	for i, r := range rules {
		ordered[i] = r.Clone()
		if !opts.NoReorder {
			ordered[i].Body = db.OrderForJoin(r.Body, nil)
		}
		if !opts.NoCompile {
			compiled[i] = compileRule(ordered[i])
		}
	}
	needs := indexNeeds(ordered)
	rr := roundRules{ordered: ordered, compiled: compiled, partCol: partitionCols(rules)}
	if opts.Shards > 1 {
		var extra []indexNeed
		rr.swapped, extra = buildSwapped(ordered, func(string) bool { return true })
		needs = append(needs, extra...)
	}
	env := &roundEnv{ctx: opts.Context, d: d, opts: opts, stats: stats, baseLen: d.Len()}
	first := true
	for {
		prev := d.Round()
		round := d.BeginRound()
		stats.Rounds++
		for _, n := range needs {
			d.EnsureIndex(n.pred, n.cols)
		}
		var variants []variant
		for idx := range ordered {
			for i := range ordered[idx].Body {
				ws := deltaWindows(len(ordered[idx].Body), i, prev)
				if first {
					ws = wideDeltaWindows(len(ordered[idx].Body), i, deltaMin, prev)
				}
				if deltaEmptyAt(d, ordered[idx].Body[i].Pred, ws[i]) {
					continue
				}
				variants = append(variants, variant{idx, i, ws})
			}
		}
		if err := env.runRound(rr, variants); err != nil {
			return err
		}
		first = false
		if !anyAddedIn(d, round) {
			return nil
		}
	}
}

// deltaEmptyAt reports whether the window admits no tuple of pred. A variant
// whose delta position is empty cannot fire, so the insertion loop skips it
// before join ever scans the variant's earlier (full-window) positions —
// maintenance deltas are tiny, and without this check every round would pay
// a full relation scan per trailing-delta variant. Round stamps are
// non-decreasing with tuple id, so the window's population is an id-range
// length, O(1) via LenAt.
func deltaEmptyAt(d *db.Database, pred string, w db.RoundWindow) bool {
	rel := d.Relation(pred)
	if rel == nil {
		return true
	}
	lo := 0
	if w.Min > 0 {
		lo = rel.LenAt(w.Min - 1)
	}
	return rel.LenAt(w.Max) <= lo
}

// wideDeltaWindows is deltaWindows with the delta spanning [deltaMin, prev]
// instead of the single previous round: position i takes the whole span,
// earlier positions strictly pre-span facts, later positions anything up to
// prev — the standard least-delta-position discipline over a multi-round
// delta.
func wideDeltaWindows(n, i int, deltaMin, prev int32) []db.RoundWindow {
	ws := make([]db.RoundWindow, n)
	for j := range ws {
		switch {
		case j < i:
			ws[j] = db.RoundWindow{Min: 0, Max: deltaMin - 1}
		case j == i:
			ws[j] = db.RoundWindow{Min: deltaMin, Max: prev}
		default:
			ws[j] = db.RoundWindow{Min: 0, Max: prev}
		}
	}
	return ws
}

func factLess(a, b ast.GroundAtom) bool {
	if a.Pred != b.Pred {
		return a.Pred < b.Pred
	}
	for i := range a.Args {
		if i >= len(b.Args) {
			return false
		}
		if a.Args[i] != b.Args[i] {
			return a.Args[i] < b.Args[i]
		}
	}
	return len(a.Args) < len(b.Args)
}

func sortFacts(fs []ast.GroundAtom) {
	sort.Slice(fs, func(i, j int) bool { return factLess(fs[i], fs[j]) })
}

func sortedFacts(d *db.Database) []ast.GroundAtom {
	fs := d.Facts()
	sortFacts(fs)
	return fs
}
