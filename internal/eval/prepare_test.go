package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

// pickDerivedGoal returns a fact of full that is not in the input d — the
// kind of goal an early-stopping evaluation can actually cut short — or ok
// false when p derives nothing new from d.
func pickDerivedGoal(d, full *db.Database) (ast.GroundAtom, bool) {
	for _, g := range full.Facts() {
		if !d.Has(g) {
			return g, true
		}
	}
	return ast.GroundAtom{}, false
}

// TestQuickPreparedEqualsOneShot checks that preparing a program once and
// evaluating through the Prepared is observationally identical to the
// one-shot Eval — same output database, same Added count — over random
// programs crossed over {naive, semi-naive} × {sequential, 4 workers} ×
// {goal unset, goal set}.
func TestQuickPreparedEqualsOneShot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		for _, strat := range []Strategy{SemiNaive, Naive} {
			for _, workers := range []int{1, 4} {
				opts := Options{Strategy: strat, Workers: workers}
				full, sFull, err := Eval(p, d, opts)
				if err != nil {
					return false
				}
				pr, err := Prepare(p, opts)
				if err != nil {
					return false
				}
				out, st, err := pr.Eval(d)
				if err != nil {
					return false
				}
				if !out.Equal(full) || st.Added != sFull.Added {
					return false
				}
				// The Prepared is reusable: a second evaluation of the same
				// input repeats the result exactly.
				again, st2, err := pr.Eval(d)
				if err != nil || !again.Equal(full) || st2.Added != st.Added {
					return false
				}

				// Goal set: one-shot and prepared must agree on the partial
				// database and its Added count, and the early stop must be
				// sound — the goal is reached iff the fixpoint derives it,
				// and the partial database never exceeds the fixpoint.
				goal, ok := pickDerivedGoal(d, full)
				if !ok {
					continue
				}
				goalOpts := opts
				goalOpts.Goal = &goal
				a, sa, err := Eval(p, d, goalOpts)
				if err != nil {
					return false
				}
				prG, err := Prepare(p, goalOpts)
				if err != nil {
					return false
				}
				b, reached, sb, err := prG.EvalGoal(d, &goal, 0)
				if err != nil {
					return false
				}
				if !a.Equal(b) || sa.Added != sb.Added {
					return false
				}
				if !reached || !a.Has(goal) || !full.Contains(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGoalUnreachable checks that an unreachable goal degrades to a
// plain fixpoint evaluation: nothing is cut short and reached is false.
func TestQuickGoalUnreachable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		full, sFull, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		goal := ast.NewGroundAtom("NoSuchPred", ast.Int(0))
		pr, err := Prepare(p, Options{})
		if err != nil {
			return false
		}
		out, reached, st, err := pr.EvalGoal(d, &goal, 0)
		if err != nil {
			return false
		}
		return !reached && out.Equal(full) && st.Added == sFull.Added
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPreparedGoalStopsMidStratum pins the emit-path enforcement: with a
// two-stratum program and a goal in the first stratum, evaluation halts
// before the second stratum runs at all.
func TestPreparedGoalStopsMidStratum(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		H(x, z) :- G(x, z).`)
	d := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2)})
	goal := ga("G", 1, 2)
	pr, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, reached, _, err := pr.EvalGoal(d, &goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reached || !out.Has(goal) {
		t.Fatal("goal not reached")
	}
	if out.Has(ga("H", 1, 2)) {
		t.Fatal("evaluation ran past the goal into the next stratum")
	}
}

// TestPreparedGoalAlreadyInInput checks the degenerate case: a goal already
// present in the input database stops evaluation before any rule fires.
func TestPreparedGoalAlreadyInInput(t *testing.T) {
	p := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	d := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("G", 7, 7)})
	goal := ga("G", 7, 7)
	pr, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, reached, st, err := pr.EvalGoal(d, &goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reached || st.Added != 0 {
		t.Fatalf("reached=%v added=%d, want immediate stop", reached, st.Added)
	}
	if out.Has(ga("G", 1, 2)) {
		t.Fatal("rules fired despite the goal being in the input")
	}
}
