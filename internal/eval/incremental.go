package eval

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
)

// Incremental maintains a previously computed output under fact insertion:
// given out = P(d) (as returned by Eval, with its round stamps intact) and
// a batch of new facts, it computes P(d ∪ newFacts) by running the
// semi-naive delta propagation from the inserted facts only, instead of
// re-evaluating from scratch. Datalog is monotonic, so insertion-only
// maintenance is exact.
//
// The input database is not modified; the updated output is returned.
// Programs with negation are rejected: an insertion into a lower stratum
// can retract facts of a higher one, and the previous output does not
// remember which of its facts were inputs — callers must re-evaluate from
// their original input instead.
func Incremental(p *ast.Program, out *db.Database, newFacts []ast.GroundAtom, opts Options) (*db.Database, Stats, error) {
	var stats Stats
	if err := p.Validate(); err != nil {
		return nil, stats, err
	}
	if p.HasNegation() {
		return nil, stats, fmt.Errorf("eval: incremental maintenance requires a pure Datalog program; negation can retract derived facts, so re-evaluate from the original input")
	}

	cur := out.Clone()
	// Stamp the inserted facts as a fresh delta round.
	cur.BeginRound()
	added := 0
	for _, f := range newFacts {
		if cur.Add(f) {
			added++
		}
	}
	if added == 0 {
		return cur, stats, nil
	}
	if err := deltaLoop(cur, p.Rules, opts, &stats); err != nil {
		return nil, stats, err
	}
	return cur, stats, nil
}

// deltaLoop runs semi-naive propagation assuming the latest round already
// holds a delta (unlike fixpoint, which begins with a full application).
// Because the pre-existing database is closed under the rules, every new
// derivation must use at least one delta fact, so delta rules alone are
// complete. Rounds run through the shared round executor (rounds.go), so
// the maintenance path honors Workers and Shards — and the derived-fact
// budget, enforced inside the emit path as in fixpoint — with exactly the
// evaluator's disciplines.
func deltaLoop(d *db.Database, rules []ast.Rule, opts Options, stats *Stats) error {
	opts.Shards = normalizeShards(opts)
	ordered := make([]ast.Rule, len(rules))
	compiled := make([]*compiledRule, len(rules))
	for i, r := range rules {
		ordered[i] = r.Clone()
		if !opts.NoReorder {
			ordered[i].Body = db.OrderForJoin(r.Body, nil)
		}
		if !opts.NoCompile {
			compiled[i] = compileRule(ordered[i])
		}
	}
	needs := indexNeeds(ordered)
	rr := roundRules{ordered: ordered, compiled: compiled, partCol: partitionCols(rules)}
	if opts.Shards > 1 {
		// Every body position can hold the delta here (insertions may be
		// extensional), so every rule with a shared-variable leading join is
		// eligible for the delta-first swap.
		var extra []indexNeed
		rr.swapped, extra = buildSwapped(ordered, func(string) bool { return true })
		needs = append(needs, extra...)
	}
	env := &roundEnv{ctx: opts.Context, d: d, opts: opts, stats: stats, baseLen: d.Len()}
	for {
		prev := d.Round()
		round := d.BeginRound()
		stats.Rounds++
		// Freeze the round's indexes so in-round probes are lock-free reads.
		for _, n := range needs {
			d.EnsureIndex(n.pred, n.cols)
		}
		var variants []variant
		for idx := range ordered {
			// Any atom can match an inserted fact (insertions may be
			// extensional), so the delta position ranges over the whole
			// body here rather than only the intentional positions.
			for i := range ordered[idx].Body {
				variants = append(variants, variant{idx, i, deltaWindows(len(ordered[idx].Body), i, prev)})
			}
		}
		if err := env.runRound(rr, variants); err != nil {
			return err
		}
		if !anyAddedIn(d, round) {
			return nil
		}
	}
}
