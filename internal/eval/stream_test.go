package eval

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

// TestQuickStreamingEqualsMaterializing is the oracle property of the
// streaming operator pipeline: for random programs × strategy × worker count
// × goal/no-goal, evaluation with the pipeline enabled must produce a
// byte-identical database (same facts, same insertion order — db.String
// exposes both), the same goal verdict, and the same logical work (Firings,
// Added) as the materializing kernel forced by NoStream. Run under -race in
// CI alongside the other eval properties.
func TestQuickStreamingEqualsMaterializing(t *testing.T) {
	workers := []int{1, 2, 8}
	streamedSomething := false
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		input := workload.RandomDB(rng, p, 4, 4)

		full, _, err := Eval(p, input, Options{NoStream: true})
		if err != nil {
			continue
		}
		// Goal candidates: nil (full fixpoint), a derived fact (cut fires
		// mid-evaluation), and an unreachable atom (cut never fires).
		var derived *ast.GroundAtom
		for _, f := range full.Facts() {
			if !input.Has(f) {
				g := f
				derived = &g
				break
			}
		}
		unreachable := ast.NewGroundAtom("P", ast.Int(9000), ast.Int(9000))
		goals := []*ast.GroundAtom{nil, derived, &unreachable}

		for _, strat := range []Strategy{SemiNaive, Naive} {
			for _, w := range workers {
				for gi, goal := range goals {
					if gi == 1 && derived == nil {
						continue
					}
					base := Options{Strategy: strat, Workers: w}

					mat := base
					mat.NoStream = true
					prepM, err := Prepare(p, mat)
					if err != nil {
						t.Fatalf("seed %d: prepare materializing: %v", seed, err)
					}
					wantDB, wantReached, wantStats, err := prepM.EvalGoal(input, goal, 0)
					if err != nil {
						t.Fatalf("seed %d: materializing eval: %v", seed, err)
					}
					if wantStats.StrataStreamed != 0 {
						t.Fatalf("seed %d: NoStream evaluation reported %d streamed strata", seed, wantStats.StrataStreamed)
					}

					prepS, err := Prepare(p, base)
					if err != nil {
						t.Fatalf("seed %d: prepare streaming: %v", seed, err)
					}
					gotDB, gotReached, gotStats, err := prepS.EvalGoal(input, goal, 0)
					if err != nil {
						t.Fatalf("seed %d: streaming eval: %v", seed, err)
					}
					if gotStats.StrataStreamed > 0 {
						streamedSomething = true
					}
					if gotReached != wantReached {
						t.Fatalf("seed %d strat=%v workers=%d goal=%v: streaming reached=%v, materializing reached=%v",
							seed, strat, w, goal, gotReached, wantReached)
					}
					if got, want := gotDB.String(), wantDB.String(); got != want {
						t.Fatalf("seed %d strat=%v workers=%d goal=%v: streaming database differs\nstreaming:\n%s\nmaterializing:\n%s\nprogram:\n%s",
							seed, strat, w, goal, got, want, p)
					}
					// Firings are only deterministic without a goal cut: the
					// parallel materializing merge deliberately lets in-flight
					// variants finish past the cut (prefix-cut design), so its
					// firing count overcounts the sequential one.
					if gotStats.Added != wantStats.Added || (goal == nil && gotStats.Firings != wantStats.Firings) {
						t.Fatalf("seed %d strat=%v workers=%d goal=%v: streaming added=%d firings=%d, materializing added=%d firings=%d",
							seed, strat, w, goal, gotStats.Added, gotStats.Firings, wantStats.Added, wantStats.Firings)
					}
				}
			}
		}
	}
	if !streamedSomething {
		t.Fatal("no random program ever exercised the streaming path; the oracle is vacuous")
	}
}

// TestStreamingPlanSelection pins the planner's per-stratum decision: a
// fully non-recursive program streams every unit under semi-naive, a
// recursive SCC materializes, and the Naive strategy (whose Section III
// semantics re-fire whole rounds) never streams.
func TestStreamingPlanSelection(t *testing.T) {
	nonrec := workload.Layered(6)
	input := workload.Chain("E", 8)

	_, st, err := Eval(nonrec, input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.StrataMaterialized != 0 || st.StrataStreamed == 0 {
		t.Fatalf("non-recursive program: streamed=%d materialized=%d, want all streamed", st.StrataStreamed, st.StrataMaterialized)
	}
	if st.BindingsPipelined == 0 {
		t.Fatal("non-recursive program: no bindings pipelined")
	}

	_, st, err = Eval(nonrec, input, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if st.StrataStreamed != 0 {
		t.Fatalf("naive strategy: streamed=%d, want 0", st.StrataStreamed)
	}

	_, st, err = Eval(nonrec, input, Options{NoStream: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.StrataStreamed != 0 {
		t.Fatalf("NoStream: streamed=%d, want 0", st.StrataStreamed)
	}

	tc := workload.TransitiveClosure()
	_, st, err = Eval(tc, workload.Chain("A", 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.StrataStreamed != 0 || st.StrataMaterialized == 0 {
		t.Fatalf("recursive program: streamed=%d materialized=%d, want all materialized", st.StrataStreamed, st.StrataMaterialized)
	}
}

// TestStreamingGoalEarlyStop checks the emit-path cut: a goal-directed
// streaming pass halts mid-pipeline (EarlyStopCuts > 0) and leaves the goal
// in the partial database.
func TestStreamingGoalEarlyStop(t *testing.T) {
	p := workload.Layered(6)
	input := workload.Chain("E", 8)
	prep, err := Prepare(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := ast.NewGroundAtom("P3", ast.Int(0), ast.Int(3))
	out, reached, st, err := prep.EvalGoal(input, &goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reached {
		t.Fatal("goal not reached")
	}
	if !out.Has(goal) {
		t.Fatal("goal missing from partial database")
	}
	if st.EarlyStopCuts == 0 {
		t.Fatalf("goal-directed streaming run reported no early-stop cuts: %+v", st)
	}
}

// TestStreamingNegation checks the pipeline's stratified-negation path
// against the materializing kernel: negated strata are themselves
// streamable (their negated predicates live in lower strata), and the
// absence checks must agree.
func TestStreamingNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Big(x, y) :- E(x, y), !Small(x).
		Small(x) :- S(x).
		Same(x) :- E(x, x).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("E", 1, 2), ga("E", 2, 2), ga("E", 3, 4), ga("S", 1), ga("S", 4),
	})
	a, sa, err := Eval(p, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sa.StrataStreamed == 0 {
		t.Fatalf("negated program did not stream: %+v", sa)
	}
	b, _, err := Eval(p, in, Options{NoStream: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("streaming negation differs:\n%s\nvs\n%s", a, b)
	}
}

// TestStreamingNonRecursivePass cross-checks the streamed one-step
// Pⁿ(d) and IsClosed passes against their materializing twins.
func TestStreamingNonRecursivePass(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil || p.HasNegation() {
			continue
		}
		d := workload.RandomDB(rng, p, 4, 4)

		prepS, err := Prepare(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		prepM, err := Prepare(p, Options{NoStream: true})
		if err != nil {
			t.Fatal(err)
		}
		gotNR, wantNR := prepS.NonRecursive(d), prepM.NonRecursive(d)
		if gotNR.String() != wantNR.String() {
			t.Fatalf("seed %d: streamed NonRecursive differs:\n%s\nvs\n%s\nprogram:\n%s", seed, gotNR, wantNR, p)
		}
		full, _, err := Eval(p, d, Options{})
		if err != nil {
			continue
		}
		for _, probe := range []*db.Database{d, full} {
			if got, want := prepS.IsClosed(probe), prepM.IsClosed(probe); got != want {
				t.Fatalf("seed %d: streamed IsClosed=%v, materializing=%v\nprogram:\n%s", seed, got, want, p)
			}
		}
	}
}
