package eval

import (
	"context"
	"sync"

	"repro/internal/ast"
	"repro/internal/db"
)

// The streaming executor is the pipelined alternative to the materializing
// join kernel: a compiled rule is lowered once more, from slot form into a
// chain of relational operators (index-probe scan, dedup-table lookup,
// natural-join probe, selection, projection/dedup-emit), and the chain is
// driven as a pull-based iterator pipeline. Bindings flow through the join
// one tuple at a time — no intermediate binding set is ever materialized —
// and the emit path is shared with the materializing kernel, so the goal
// early stop and the derived-fact budget cut the pipeline mid-stream.
//
// The lowering is purely static. Because a plan is compiled for one body
// order, the set of columns bound at each position is known at compile time:
// constants and variables bound by earlier atoms become the probe key of a
// join operator, first occurrences of a variable become assignments into the
// slot frame, and repeat occurrences within one atom become selection checks.
// That staticness is what the executor's inner loop buys its speed with —
// no per-candidate re-verification of already-keyed columns (the column
// index exact-matches the key), no dynamic boundness tests, and no unbinding
// on backtrack (a slot is only ever read by operators downstream of the one
// that assigns it).
//
// Plan selection lives in unit.fixpoint: a unit whose rules never read the
// unit's own head predicates (a non-recursive stratum) reaches fixpoint in
// one full application, which is exactly the shape the pipeline executes;
// recursive units keep the materializing kernel, whose delta windows are
// what makes semi-naive rounds cheap. The frozen-body containment queries of
// Section VI are non-recursive by construction once their EDB is frozen, so
// every chase verdict rides this path.

// opKind classifies how a stream operator enumerates its candidate tuples.
type opKind uint8

const (
	// opScan has no bound columns: it walks the round-visible prefix of the
	// relation, ids ascending.
	opScan opKind = iota
	// opLookup has every column bound: a single dedup-table probe.
	opLookup
	// opProbe has some columns bound: it seeks the column index chain for
	// the key built from constants and earlier-bound slots.
	opProbe
)

// argAct is one selection/binding action on a candidate tuple's column:
// assign the column value into a slot (first occurrence of a variable), or
// check it against an already-assigned slot (repeat occurrence within the
// same atom). Columns covered by the probe key need no action — the index
// exact-matches them.
type argAct struct {
	col   int
	slot  int
	check bool
}

// streamOp is one compiled pipeline stage: the atom's relation, how to
// enumerate matching tuples (kind + key recipe), and the actions to apply
// per candidate.
type streamOp struct {
	kind  opKind
	pred  string
	arity int
	// cols lists the bound columns, ascending; keySrc[j] ≥ 0 names the slot
	// whose value keys column cols[j], keySrc[j] < 0 selects keyConst[j].
	cols     []int
	keySrc   []int
	keyConst []ast.Const
	acts     []argAct
}

// streamPlan is one rule lowered to a pipeline: the operator chain in body
// order, plus the negated literals and head shared with the slot-compiled
// form.
type streamPlan struct {
	nVars int
	ops   []streamOp
	neg   []compiledAtom
	head  compiledAtom
}

// compileStream lowers a slot-compiled rule into a pipeline plan. The body
// order is the compiled rule's order, so the plan probes exactly the indexes
// indexNeeds declared for that order.
func compileStream(cr *compiledRule) *streamPlan {
	sp := &streamPlan{nVars: cr.nVars, neg: cr.neg, head: cr.head}
	bound := make([]bool, cr.nVars)
	for _, a := range cr.body {
		op := streamOp{pred: a.pred, arity: len(a.args)}
		for i, s := range a.args {
			switch {
			case s < 0:
				op.cols = append(op.cols, i)
				op.keySrc = append(op.keySrc, -1)
				op.keyConst = append(op.keyConst, a.consts[i])
			case bound[s]:
				op.cols = append(op.cols, i)
				op.keySrc = append(op.keySrc, s)
				op.keyConst = append(op.keyConst, 0)
			default:
				// First occurrence in this atom assigns; repeats check.
				check := false
				for _, act := range op.acts {
					if act.slot == s {
						check = true
						break
					}
				}
				op.acts = append(op.acts, argAct{col: i, slot: s, check: check})
			}
		}
		switch len(op.cols) {
		case 0:
			op.kind = opScan
		case op.arity:
			op.kind = opLookup
		default:
			op.kind = opProbe
		}
		for _, act := range op.acts {
			if !act.check {
				bound[act.slot] = true
			}
		}
		sp.ops = append(sp.ops, op)
	}
	return sp
}

// streamState is the reusable executor state, allocated once per streaming
// pass and shared by every plan in it — the pipeline's entire working set.
// Per-position cursors live here so the backtracking loop is allocation-free.
type streamState struct {
	vals    []ast.Const
	rels    []*db.Relation
	probers []db.Prober
	iters   []db.TupleIter
	ids     []int
	limits  []int
	key     []ast.Const
	out     []ast.Const
	fix     fixpointSink
}

// streamSink receives the pipeline's head emissions. emit reports whether
// the fact was new; halted is polled after each new fact and aborts the
// pipeline when true. A struct implementation keeps the emit path free of
// per-pass closure allocations: the fixpoint's sink lives inside the pooled
// streamState, so a streamed stratum allocates nothing for its emit state.
type streamSink interface {
	emit(pred string, args []ast.Const) bool
	halted() bool
}

// fixpointSink is the materializing round's emit path in struct form: add
// to the database, test the goal, count down the derived-fact budget, and
// credit provenance. It reproduces unit.fixpoint's runRound emit closure
// bit for bit — same dedup, same goal equality, same budget trip — which
// keeps the streamed and materializing executions byte-identical.
type fixpointSink struct {
	d         *db.Database
	goal      *ast.GroundAtom
	prov      *RuleSet
	ctx       context.Context // per-call cancellation; nil = never canceled
	ruleIdx   int             // program index of the rule currently running, for prov
	remaining int             // derived-fact budget countdown; -1 = unlimited
	ctxTick   int             // emit counter for the cancellation cadence
	stop      bool
	goalHit   bool
	canceled  bool
}

func (s *fixpointSink) emit(pred string, args []ast.Const) bool {
	if !s.d.AddTuple(pred, args) {
		return false
	}
	if s.goal != nil && pred == s.goal.Pred && constsEqual(args, s.goal.Args) {
		s.goalHit = true
		s.stop = true
	}
	if s.remaining >= 0 {
		s.remaining--
		if s.remaining < 0 {
			s.stop = true
		}
	}
	if s.ctx != nil {
		// Same cadence as the materializing emit closure: cancellation cuts
		// the pipeline mid-stream instead of waiting for the pass to finish.
		if s.ctxTick++; s.ctxTick%ctxCheckEvery == 0 && s.ctx.Err() != nil {
			s.canceled = true
			s.stop = true
		}
	}
	if s.prov != nil {
		s.prov.Add(s.ruleIdx)
	}
	return true
}

func (s *fixpointSink) halted() bool { return s.stop }

// nonrecSink materializes a one-step pass into a separate output database
// (the Section IX Pⁿ operator): derivations never feed back into d.
type nonrecSink struct {
	out *db.Database
}

func (s *nonrecSink) emit(pred string, args []ast.Const) bool {
	return s.out.AddTuple(pred, args)
}

func (s *nonrecSink) halted() bool { return false }

// closedSink decides IsClosed: the first derivation not already in d is a
// counterexample and halts every remaining pipeline.
type closedSink struct {
	d    *db.Database
	open bool
}

func (s *closedSink) emit(pred string, args []ast.Const) bool {
	if s.d.HasTuple(pred, args) {
		return false
	}
	s.open = true
	return true // count as "new" so halted aborts immediately
}

func (s *closedSink) halted() bool { return s.open }

var streamStatePool = sync.Pool{New: func() any { return new(streamState) }}

// getStreamState returns a pooled state grown to fit every plan in the
// batch; putStreamState recycles it. States carry no values across uses:
// boundness is static, so every slot, cursor, and key cell is written
// before anything reads it, and a pass binds its relations and probers up
// front. Pooling makes a streamed pass allocation-free in the steady state,
// which is where the streaming path's bytes-per-op advantage over the
// materializing kernel comes from.
func getStreamState(plans []*streamPlan) *streamState {
	st := streamStatePool.Get().(*streamState)
	st.ensure(plans)
	return st
}

// putStreamState drops the state's relation pointers (so a pooled state
// does not pin a dead database in memory) and returns it to the pool.
func putStreamState(st *streamState) {
	for i := range st.rels {
		st.rels[i] = nil
	}
	st.fix = fixpointSink{}
	streamStatePool.Put(st)
}

// ensure grows the state to the largest plan in the batch. Oversized
// slices are harmless: the pipeline addresses them by operator position and
// reslices keys to the operator's own width.
func (st *streamState) ensure(plans []*streamPlan) {
	var nVars, nOps, arity int
	for _, sp := range plans {
		if sp == nil {
			continue
		}
		if sp.nVars > nVars {
			nVars = sp.nVars
		}
		if len(sp.ops) > nOps {
			nOps = len(sp.ops)
		}
		if len(sp.head.args) > arity {
			arity = len(sp.head.args)
		}
		for i := range sp.ops {
			if sp.ops[i].arity > arity {
				arity = sp.ops[i].arity
			}
		}
		for i := range sp.neg {
			if len(sp.neg[i].args) > arity {
				arity = len(sp.neg[i].args)
			}
		}
	}
	if len(st.vals) < nVars {
		st.vals = make([]ast.Const, nVars)
	}
	if len(st.rels) < nOps {
		st.rels = make([]*db.Relation, nOps)
		st.probers = make([]db.Prober, nOps)
		st.iters = make([]db.TupleIter, nOps)
		st.ids = make([]int, nOps)
		st.limits = make([]int, nOps)
	}
	if len(st.key) < arity {
		st.key = make([]ast.Const, arity)
		st.out = make([]ast.Const, arity)
	}
}

// buildKey grounds the operator's probe key into dst from constants and the
// slot frame.
func (op *streamOp) buildKey(dst []ast.Const, vals []ast.Const) []ast.Const {
	key := dst[:len(op.keySrc)]
	for j, s := range op.keySrc {
		if s < 0 {
			key[j] = op.keyConst[j]
		} else {
			key[j] = vals[s]
		}
	}
	return key
}

// run drives the pipeline against d over the round window [0, prevTop],
// emitting each head instantiation exactly as compiledRule.fire would for
// the same body order: identical enumeration order, identical Firings/Added
// accounting, identical stop-hook polling. The equivalence is load-bearing —
// the planner swaps this in for the materializing kernel and the output
// database must stay byte-identical.
func (sp *streamPlan) run(d *db.Database, prevTop int32, st *streamState, stats *Stats, sink streamSink) {
	nOps := len(sp.ops)
	for i := range sp.ops {
		op := &sp.ops[i]
		rel := d.Relation(op.pred)
		if rel == nil || rel.Arity() != op.arity {
			return // this body atom can never match
		}
		st.rels[i] = rel
		switch op.kind {
		case opScan:
			st.limits[i] = rel.LenAt(prevTop)
		case opProbe:
			st.probers[i] = rel.Prober(op.cols, prevTop)
		}
	}
	if nOps == 0 {
		sp.fireRow(d, st, stats, sink)
		return
	}
	sp.open(0, st)
	pos := 0
	for {
		if !sp.advance(pos, st, stats, prevTop) {
			pos--
			if pos < 0 {
				return
			}
			continue
		}
		if pos == nOps-1 {
			if !sp.fireRow(d, st, stats, sink) {
				return
			}
			continue
		}
		pos++
		sp.open(pos, st)
	}
}

// open resets position pos's cursor for the bindings currently in the frame.
func (sp *streamPlan) open(pos int, st *streamState) {
	op := &sp.ops[pos]
	switch op.kind {
	case opScan, opLookup:
		st.ids[pos] = 0
	case opProbe:
		st.iters[pos] = st.probers[pos].Seek(op.buildKey(st.key, st.vals))
	}
}

// advance pulls the next candidate at pos that passes the operator's
// selection actions, binding its free columns into the frame. Slots are
// never unbound: boundness is static, so a stale value is simply
// overwritten by the next candidate before anything downstream reads it.
func (sp *streamPlan) advance(pos int, st *streamState, stats *Stats, prevTop int32) bool {
	op := &sp.ops[pos]
	rel := st.rels[pos]
	for {
		var id int
		switch op.kind {
		case opScan:
			if st.ids[pos] >= st.limits[pos] {
				return false
			}
			id = st.ids[pos]
			st.ids[pos]++
		case opLookup:
			if st.ids[pos] != 0 {
				return false // the single probe was consumed
			}
			st.ids[pos] = 1
			tid, ok := rel.LookupID(op.buildKey(st.key, st.vals))
			if !ok || rel.RoundOf(int(tid)) > prevTop {
				return false
			}
			id = int(tid)
		case opProbe:
			tid, ok := st.iters[pos].Next()
			if !ok {
				return false
			}
			id = int(tid)
		}
		tuple := rel.Tuple(id)
		ok := true
		for _, act := range op.acts {
			if !act.check {
				st.vals[act.slot] = tuple[act.col]
			} else if st.vals[act.slot] != tuple[act.col] {
				ok = false
				break
			}
		}
		if ok {
			stats.BindingsPipelined++
			return true
		}
	}
}

// fireRow completes one full body instantiation: negated literals are
// absence-checked against the (complete, lower-stratum) database, the head
// is grounded from the frame, and the fact is emitted. Returns false when
// the stop hook aborts the pipeline.
func (sp *streamPlan) fireRow(d *db.Database, st *streamState, stats *Stats, sink streamSink) bool {
	for i := range sp.neg {
		n := &sp.neg[i]
		args := st.out[:len(n.args)]
		for j, s := range n.args {
			if s < 0 {
				args[j] = n.consts[j]
			} else {
				args[j] = st.vals[s]
			}
		}
		if d.HasTuple(n.pred, args) {
			return true
		}
	}
	stats.Firings++
	args := st.out[:len(sp.head.args)]
	for j, s := range sp.head.args {
		if s < 0 {
			args[j] = sp.head.consts[j]
		} else {
			args[j] = st.vals[s]
		}
	}
	if sink.emit(sp.head.pred, args) {
		stats.Added++
		if sink.halted() {
			return false
		}
	}
	return true
}
