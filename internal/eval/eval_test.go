package eval

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/parser"
	"repro/internal/workload"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

// tcProgram is Example 1.
func tcProgram() *ast.Program {
	return parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
}

func TestExample2(t *testing.T) {
	// EDB {A(1,2), A(1,4), A(4,1)}; the paper computes the output DB
	// {A(1,2), A(1,4), A(4,1), G(1,2), G(1,4), G(4,1), G(1,1), G(4,4), G(4,2)}.
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)})
	out := MustEval(tcProgram(), edb)
	want := db.FromFacts([]ast.GroundAtom{
		ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1),
		ga("G", 1, 2), ga("G", 1, 4), ga("G", 4, 1),
		ga("G", 1, 1), ga("G", 4, 4), ga("G", 4, 2),
	})
	if !out.Equal(want) {
		t.Fatalf("Example 2 output:\n%v\nwant:\n%v", out, want)
	}
	// The input is untouched.
	if edb.Len() != 3 {
		t.Fatal("Eval mutated its input")
	}
}

func TestExample3UniformInput(t *testing.T) {
	// Input {A(1,2), A(1,4), G(4,1)}: output is Example 2's DB minus A(4,1).
	in := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("G", 4, 1)})
	out := MustEval(tcProgram(), in)
	want := db.FromFacts([]ast.GroundAtom{
		ga("A", 1, 2), ga("A", 1, 4),
		ga("G", 1, 2), ga("G", 1, 4), ga("G", 4, 1),
		ga("G", 1, 1), ga("G", 4, 4), ga("G", 4, 2),
	})
	if !out.Equal(want) {
		t.Fatalf("Example 3 output:\n%v\nwant:\n%v", out, want)
	}
}

func TestExample12NonRecursive(t *testing.T) {
	// d = {A(1,2), G(2,3), G(3,4)}: Pⁿ(d) = {G(1,2), G(2,4)}, while P(d)
	// additionally closes transitively.
	d := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("G", 2, 3), ga("G", 3, 4)})
	p := tcProgram()
	pn := NonRecursive(p, d)
	wantPn := db.FromFacts([]ast.GroundAtom{ga("G", 1, 2), ga("G", 2, 4)})
	if !pn.Equal(wantPn) {
		t.Fatalf("Pⁿ(d) = %v, want %v", pn, wantPn)
	}
	full := MustEval(p, d)
	wantFull := db.FromFacts([]ast.GroundAtom{
		ga("A", 1, 2), ga("G", 2, 3), ga("G", 3, 4),
		ga("G", 1, 2), ga("G", 1, 3), ga("G", 2, 4), ga("G", 1, 4),
	})
	if !full.Equal(wantFull) {
		t.Fatalf("P(d) = %v, want %v", full, wantFull)
	}
}

func TestExample17PreliminaryDB(t *testing.T) {
	p := tcProgram()
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 2, 3), ga("A", 3, 4)})
	prelim := PreliminaryDB(p, edb)
	want := db.FromFacts([]ast.GroundAtom{
		ga("A", 1, 2), ga("A", 2, 3), ga("A", 3, 4),
		ga("G", 1, 2), ga("G", 2, 3), ga("G", 3, 4),
	})
	if !prelim.Equal(want) {
		t.Fatalf("preliminary DB = %v, want %v", prelim, want)
	}
}

func TestInitRulesSelection(t *testing.T) {
	// A program whose second rule mentions an IDB predicate is not an
	// initialization rule; constants in init rules survive.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("C", 2), ga("A", 2, 3)})
	prelim := PreliminaryDB(p, edb)
	if !prelim.Has(ga("G", 1, 2)) {
		t.Fatal("init rule did not fire")
	}
	if prelim.Has(ga("G", 1, 3)) {
		t.Fatal("recursive rule fired during preliminary DB construction")
	}
}

func TestNaiveEqualsSemiNaive(t *testing.T) {
	// Random digraphs: both strategies compute the same closure.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		edb := db.New()
		n := 2 + rng.Intn(8)
		for e := 0; e < n*2; e++ {
			edb.Add(ga("A", int64(rng.Intn(n)), int64(rng.Intn(n))))
		}
		sn, _, err := Eval(tcProgram(), edb, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatal(err)
		}
		nv, _, err := Eval(tcProgram(), edb, Options{Strategy: Naive})
		if err != nil {
			t.Fatal(err)
		}
		if !sn.Equal(nv) {
			t.Fatalf("trial %d: semi-naive %v != naive %v", trial, sn, nv)
		}
	}
}

func TestSemiNaiveFiringsNoWorse(t *testing.T) {
	// On a chain, semi-naive performs no more rule firings than naive.
	edb := db.New()
	for i := 0; i < 30; i++ {
		edb.Add(ga("A", int64(i), int64(i+1)))
	}
	_, sn, err := Eval(tcProgram(), edb, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	_, nv, err := Eval(tcProgram(), edb, Options{Strategy: Naive})
	if err != nil {
		t.Fatal(err)
	}
	if sn.Firings > nv.Firings {
		t.Fatalf("semi-naive fired %d > naive %d", sn.Firings, nv.Firings)
	}
	if sn.Added != nv.Added {
		t.Fatalf("different fact counts: %d vs %d", sn.Added, nv.Added)
	}
}

func TestChainClosureSize(t *testing.T) {
	// Closure of an n-chain has n(n+1)/2 G-facts.
	for _, n := range []int{1, 2, 5, 17} {
		edb := db.New()
		for i := 0; i < n; i++ {
			edb.Add(ga("A", int64(i), int64(i+1)))
		}
		out := MustEval(tcProgram(), edb)
		gRel := out.Relation("G")
		want := n * (n + 1) / 2
		if gRel.Len() != want {
			t.Fatalf("n=%d: |G| = %d, want %d", n, gRel.Len(), want)
		}
	}
}

func TestConstantsInRules(t *testing.T) {
	// Example 4's P2 variant uses a constant in a rule head position match.
	p := parser.MustParseProgram(`G(x, 3) :- A(x, 3).`)
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 3), ga("A", 1, 2)})
	out := MustEval(p, edb)
	if !out.Has(ga("G", 1, 3)) || out.Has(ga("G", 1, 2)) {
		t.Fatalf("constant handling wrong: %v", out)
	}
}

func TestGroundFactRule(t *testing.T) {
	p := ast.NewProgram(ast.NewRule(ast.NewAtom("G", ast.IntTerm(7), ast.IntTerm(7))))
	out := MustEval(p, db.New())
	if !out.Has(ga("G", 7, 7)) || out.Len() != 1 {
		t.Fatalf("ground fact rule: %v", out)
	}
}

func TestBudgetExceeded(t *testing.T) {
	edb := db.New()
	for i := 0; i < 50; i++ {
		edb.Add(ga("A", int64(i), int64(i+1)))
	}
	_, _, err := Eval(tcProgram(), edb, Options{MaxDerived: 10})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

// TestBudgetEnforcedWithinRound is the regression test for the budget
// overshoot bug: a single round deriving a large cross product used to be
// checked only after the round completed, so a chase embedding could blow
// far past MaxDerived before evaluation noticed. The budget is now enforced
// inside the emit path, so evaluation stops as soon as it is exhausted.
func TestBudgetEnforcedWithinRound(t *testing.T) {
	// P(x, y) :- A(x), A(y) derives n² facts in its first round.
	p := ast.NewProgram(ast.NewRule(
		ast.NewAtom("P", ast.Var("x"), ast.Var("y")),
		ast.NewAtom("A", ast.Var("x")),
		ast.NewAtom("A", ast.Var("y")),
	))
	edb := db.New()
	for i := 0; i < 100; i++ {
		edb.Add(ga("A", int64(i)))
	}
	const budget = 10
	_, stats, err := Eval(p, edb, Options{MaxDerived: budget})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// The round would derive 10000 facts; enforcement in the emit path must
	// stop at the first fact past the budget, not at the end of the round.
	if stats.Added > budget+1 {
		t.Fatalf("derived %d facts within the round, budget %d: overshoot not bounded", stats.Added, budget)
	}
	// Same enforcement through the generic (NoCompile) matcher.
	_, stats, err = Eval(p, edb, Options{MaxDerived: budget, NoCompile: true})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("NoCompile err = %v, want ErrBudget", err)
	}
	if stats.Added > budget+1 {
		t.Fatalf("NoCompile derived %d facts, budget %d", stats.Added, budget)
	}
	// And through Incremental's delta loop: closing over the new A facts
	// derives the same cross product in one delta round.
	out := MustEval(p, db.New())
	var facts []ast.GroundAtom
	for i := 0; i < 100; i++ {
		facts = append(facts, ga("A", int64(i)))
	}
	_, stats, err = Incremental(p, out, facts, Options{MaxDerived: budget})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("Incremental err = %v, want ErrBudget", err)
	}
	if stats.Added > budget+1 {
		t.Fatalf("Incremental derived %d facts, budget %d", stats.Added, budget)
	}
}

// TestBudgetParallelStillErrs checks that the budget tripwire also fires on
// the parallel path (the check there counts tentative derivations, so it
// may stop slightly conservatively but must still return ErrBudget when the
// budget is genuinely exceeded).
func TestBudgetParallelStillErrs(t *testing.T) {
	p := ast.NewProgram(
		ast.NewRule(ast.NewAtom("P", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("A", ast.Var("x")), ast.NewAtom("A", ast.Var("y"))),
		ast.NewRule(ast.NewAtom("Q", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("A", ast.Var("x")), ast.NewAtom("A", ast.Var("y"))),
	)
	edb := db.New()
	for i := 0; i < 100; i++ {
		edb.Add(ga("A", int64(i)))
	}
	_, stats, err := Eval(p, edb, Options{MaxDerived: 10, Workers: 4})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	if stats.Added > 20000 {
		t.Fatalf("parallel budget did not bound the round: %d facts", stats.Added)
	}
}

func TestIsModel(t *testing.T) {
	p := tcProgram()
	// The Example 2 output is a model; the bare EDB is not.
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)})
	out := MustEval(p, edb)
	if !IsModel(p, out) {
		t.Fatal("P(d) is not a model")
	}
	if IsModel(p, edb) {
		t.Fatal("bare EDB reported as model")
	}
	// A non-minimal model is still a model: add an extra G fact and close.
	extra := out.Clone()
	extra.Add(ga("G", 9, 9))
	if !IsModel(p, extra) {
		t.Fatal("adding an isolated G fact broke modelhood")
	}
}

func TestOutputIsModelProperty(t *testing.T) {
	// P(d) is always a model of P and contains d (Van Emden–Kowalski).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		in := db.New()
		n := 2 + rng.Intn(6)
		for e := 0; e < n; e++ {
			in.Add(ga("A", int64(rng.Intn(n)), int64(rng.Intn(n))))
			if rng.Intn(2) == 0 {
				in.Add(ga("G", int64(rng.Intn(n)), int64(rng.Intn(n))))
			}
		}
		out := MustEval(tcProgram(), in)
		if !out.Contains(in) {
			t.Fatal("output does not contain input")
		}
		if !IsModel(tcProgram(), out) {
			t.Fatal("output is not a model")
		}
		// Idempotence: P(P(d)) = P(d).
		again := MustEval(tcProgram(), out)
		if !again.Equal(out) {
			t.Fatal("evaluation not idempotent")
		}
	}
}

func TestStratifiedNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("Src", 1),
		ga("E", 1, 2), ga("E", 2, 3), ga("E", 4, 5),
		ga("Node", 1), ga("Node", 2), ga("Node", 3), ga("Node", 4), ga("Node", 5),
	})
	out := MustEval(p, in)
	for _, n := range []int64{1, 2, 3} {
		if !out.Has(ga("Reach", n)) {
			t.Fatalf("Reach(%d) missing", n)
		}
		if out.Has(ga("Unreach", n)) {
			t.Fatalf("Unreach(%d) wrongly derived", n)
		}
	}
	for _, n := range []int64{4, 5} {
		if out.Has(ga("Reach", n)) {
			t.Fatalf("Reach(%d) wrongly derived", n)
		}
		if !out.Has(ga("Unreach", n)) {
			t.Fatalf("Unreach(%d) missing", n)
		}
	}
}

func TestUnstratifiableRejected(t *testing.T) {
	p := parser.MustParseProgram(`
		P(x) :- A(x), !Q(x).
		Q(x) :- A(x), !P(x).
	`)
	_, _, err := Eval(p, db.FromFacts([]ast.GroundAtom{ga("A", 1)}), Options{})
	if err == nil {
		t.Fatal("unstratifiable program evaluated")
	}
}

func TestQuery(t *testing.T) {
	edb := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 2, 3)})
	tuples, err := Query(tcProgram(), edb, parser.MustParseAtom("G(1, y)"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("query returned %d tuples: %v", len(tuples), tuples)
	}
	for _, tp := range tuples {
		if tp[0] != ast.Int(1) {
			t.Fatalf("query tuple %v does not match pattern", tp)
		}
	}
}

func TestNoReorderSameResult(t *testing.T) {
	p := parser.MustParseProgram(`
		T(x, z) :- A(x, y), B(y, z), C(z).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("A", 1, 2), ga("B", 2, 3), ga("C", 3), ga("B", 2, 4),
	})
	a, _, err := Eval(p, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Eval(p, in, Options{NoReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("reorder changed semantics: %v vs %v", a, b)
	}
	if !a.Has(ga("T", 1, 3)) || a.Has(ga("T", 1, 4)) {
		t.Fatalf("join result wrong: %v", a)
	}
}

func TestEvalRejectsInvalidProgram(t *testing.T) {
	bad := ast.NewProgram(ast.NewRule(
		ast.NewAtom("G", ast.Var("q")),
		ast.NewAtom("A", ast.Var("x")),
	))
	if _, _, err := Eval(bad, db.New(), Options{}); err == nil {
		t.Fatal("invalid program evaluated")
	}
}

func TestMutualRecursionEval(t *testing.T) {
	// Even/odd path lengths via mutual recursion.
	p := parser.MustParseProgram(`
		Even(x, y) :- E(x, y), E(y, z), Eq(z, z).
		Odd(x, y) :- E(x, y).
		Odd(x, z) :- Even2(x, y), E(y, z).
		Even2(x, z) :- Odd(x, y), E(y, z).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("E", 1, 2), ga("E", 2, 3), ga("E", 3, 4), ga("Eq", 0, 0),
	})
	out := MustEval(p, in)
	if !out.Has(ga("Odd", 1, 2)) || !out.Has(ga("Even2", 1, 3)) || !out.Has(ga("Odd", 1, 4)) {
		t.Fatalf("mutual recursion wrong: %v", out)
	}
	if out.Has(ga("Even2", 1, 2)) {
		t.Fatalf("spurious Even2(1,2): %v", out)
	}
}

func TestSCCOrderAgreesAndHelps(t *testing.T) {
	// A layered program: SCC ordering completes each layer before the next,
	// so the single-fixpoint schedule does strictly more delta work.
	p := parser.MustParseProgram(`
		P1(x, z) :- E(x, z).
		P2(x, z) :- P1(x, y), E(y, z).
		P3(x, z) :- P2(x, y), E(y, z).
		P3(x, z) :- P3(x, y), E(y, z).
	`)
	edb := db.New()
	for i := 0; i < 20; i++ {
		edb.Add(ga("E", int64(i), int64(i+1)))
	}
	withSCC, sccStats, err := Eval(p, edb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, flatStats, err := Eval(p, edb, Options{NoSCCOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !withSCC.Equal(without) {
		t.Fatal("SCC schedule changed semantics")
	}
	if sccStats.Firings > flatStats.Firings {
		t.Fatalf("SCC schedule fired more: %d > %d", sccStats.Firings, flatStats.Firings)
	}
}

func TestQuickSCCOrderInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			return true
		}
		d := workload.RandomDB(rng, p, 4, 4)
		a, _, err := Eval(p, d, Options{})
		if err != nil {
			return false
		}
		b, _, err := Eval(p, d, Options{NoSCCOrder: true})
		if err != nil {
			return false
		}
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestZeroArityPredicates(t *testing.T) {
	// Zero-arity atoms flow through parsing-free construction, the
	// compiled evaluator, and the generic matcher identically (the magic
	// rewriting generates them for all-free queries).
	p := ast.NewProgram(
		ast.Rule{Head: ast.Atom{Pred: "Go"}, Body: []ast.Atom{{Pred: "Ready"}}},
		ast.NewRule(ast.NewAtom("Out", ast.Var("x")),
			ast.Atom{Pred: "Go"}, ast.NewAtom("In", ast.Var("x"))),
	)
	in := db.New()
	in.AddTuple("Ready", nil)
	in.AddTuple("In", []ast.Const{ast.Int(7)})
	for _, noCompile := range []bool{false, true} {
		out, _, err := Eval(p, in, Options{NoCompile: noCompile})
		if err != nil {
			t.Fatal(err)
		}
		if !out.HasTuple("Go", nil) || !out.Has(ga("Out", 7)) {
			t.Fatalf("noCompile=%v: %v", noCompile, out)
		}
	}
	// Without Ready, nothing fires.
	in2 := db.New()
	in2.AddTuple("In", []ast.Const{ast.Int(7)})
	out, _, err := Eval(p, in2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.HasTuple("Go", nil) || out.Has(ga("Out", 7)) {
		t.Fatalf("zero-arity guard ignored: %v", out)
	}
}

func TestRepeatedVariableInCompiledRule(t *testing.T) {
	// Self-loop detection exercises repeated-slot verification in the
	// compiled matcher.
	p := parser.MustParseProgram(`Loop(x) :- E(x, x).`)
	in := db.FromFacts([]ast.GroundAtom{ga("E", 1, 1), ga("E", 1, 2), ga("E", 3, 3)})
	for _, noCompile := range []bool{false, true} {
		out, _, err := Eval(p, in, Options{NoCompile: noCompile})
		if err != nil {
			t.Fatal(err)
		}
		if !out.Has(ga("Loop", 1)) || !out.Has(ga("Loop", 3)) || out.Has(ga("Loop", 2)) {
			t.Fatalf("noCompile=%v: %v", noCompile, out)
		}
	}
}

func TestWideRuleManyFreshSlots(t *testing.T) {
	// A 10-ary atom with all-fresh variables stresses the compiled
	// matcher's slot-undo bookkeeping beyond its small-array fast path.
	args := make([]ast.Term, 10)
	for i := range args {
		args[i] = ast.Var(string(rune('a' + i)))
	}
	p := ast.NewProgram(ast.Rule{
		Head: ast.NewAtom("Out", args[0], args[9]),
		Body: []ast.Atom{{Pred: "Wide", Args: args}},
	})
	in := db.New()
	tuple := make([]ast.Const, 10)
	for i := range tuple {
		tuple[i] = ast.Int(int64(i))
	}
	in.AddTuple("Wide", tuple)
	out, _, err := Eval(p, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Has(ga("Out", 0, 9)) {
		t.Fatalf("wide rule failed: %v", out)
	}
}
