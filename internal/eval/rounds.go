package eval

import (
	"cmp"
	"context"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
	"repro/internal/db"
)

// The round executor evaluates one fixpoint round's variants. It is shared
// by the unit fixpoint (prepare.go) and the incremental delta loop
// (incremental.go), so both honor the same Options — Workers, Shards, the
// derived-fact budget, goal-directed early stop, cancellation — through one
// discipline. Three strategies, all committing byte-identical databases:
//
//   - sequential: fire variants in order, inserting as they emit;
//   - parallel (Workers > 1): fire variants concurrently into per-variant
//     buffers, commit in variant order against the frozen window (the
//     prefix-cut merge);
//   - sharded (Shards > 1): split every variant into per-shard tasks over a
//     hash-partitioned ownership view of its outer relation. Each task
//     enumerates only the owned slice of the outer round window — walking
//     the window's contiguous id-range directly, delta-first when the delta
//     sits on executed position 1 — and buffers derivations tagged with
//     merge keys. The commit concatenates a variant's shard buffers and
//     sorts by (plan-outer id, delta id, buffer order), which reconstructs
//     exactly the emission order the sequential plan-ordered join produces,
//     so the committed database (and any goal early-stop prefix of it) is
//     byte-identical to Shards = 1 for every shard count.

// variant is one delta/full application of a rule in a round: idx selects
// the round's ordered/compiled rule, windows are the executed-order round
// windows, and delta is the executed body position holding the round's
// delta (-1 for a full application: first rounds and the naive strategy).
type variant struct {
	idx     int
	delta   int
	windows []db.RoundWindow
}

// roundRules bundles what a round's variants fire: the reordered rules,
// their compiled forms, the delta-first (swapped) compilations the sharded
// executor substitutes when profitable, and the partition columns the
// planner chose for the plan's predicates.
type roundRules struct {
	ordered  []ast.Rule
	compiled []*compiledRule
	swapped  []*compiledRule
	partCol  map[string]int
}

// fire evaluates one variant with derivations routed to emit; a non-nil
// stop aborts the variant's enumeration when it reports true.
func (rr roundRules) fire(d *db.Database, idx int, windows []db.RoundWindow, st *Stats, emit func(string, []ast.Const) bool, stop func() bool) error {
	if rr.compiled[idx] != nil {
		rr.compiled[idx].fire(d, windows, st, emit, stop)
		return nil
	}
	r := rr.ordered[idx]
	cs := make([]db.Constraint, len(r.Body))
	for j, b := range r.Body {
		cs[j] = db.Constraint{Atom: b, Window: windows[j]}
	}
	return fireConstraints(d, r, cs, st, emit, stop)
}

// roundEnv is the per-evaluation state the round executor runs under. One
// env serves every round of a fixpoint (or delta loop); the rules may be
// re-planned per round, so they travel separately as roundRules.
type roundEnv struct {
	ctx      context.Context
	d        *db.Database
	opts     Options
	stats    *Stats
	baseLen  int
	goal     *ast.GroundAtom
	prov     *RuleSet
	ruleIdxs []int
	pool     shardPool
}

// shardPool is the sharded executor's per-task scratch, owned by the env so
// consecutive rounds (and re-fires) reuse buffers, dedup tables and copy
// arenas instead of reallocating them — on deep fixpoints (hundreds of
// rounds) the per-round zeroing otherwise rivals the join work itself.
// Slices are indexed by task and only ever touched by that task's goroutine
// while a round is in flight.
type shardPool struct {
	bufs   [][]shardPending
	arenas [][]ast.Const
	sets   []taskSet
	stats  []Stats
	aux    mergeAux
}

// taskReset readies the pool for a round (or re-fire) of n tasks.
func (sp *shardPool) taskReset(n int) {
	if len(sp.bufs) < n {
		sp.bufs = make([][]shardPending, n)
		sp.arenas = make([][]ast.Const, n)
		sp.sets = make([]taskSet, n)
		sp.stats = make([]Stats, n)
	}
	for i := 0; i < n; i++ {
		sp.bufs[i] = sp.bufs[i][:0]
		sp.arenas[i] = sp.arenas[i][:0]
		sp.sets[i].reset()
		sp.stats[i] = Stats{}
	}
}

func (env *roundEnv) budgetErr() error {
	return fmt.Errorf("%w: derived %d facts (budget %d)", ErrBudget, env.d.Len()-env.baseLen, env.opts.MaxDerived)
}

// runRound evaluates a round's variants under the env's options. The
// derived-fact budget and the goal test are enforced inside the emit path,
// so a round that would blow far past Options.MaxDerived (a chase embedding
// on a diverging instance, say) is cut off as soon as the budget is
// exhausted, and a goal-directed evaluation halts the moment the goal is
// derived rather than at the fixpoint.
func (env *roundEnv) runRound(rr roundRules, variants []variant) error {
	if len(variants) == 0 {
		return nil
	}
	if env.opts.Shards > 1 {
		return env.runSharded(rr, variants)
	}
	if env.opts.Workers <= 1 || len(variants) < 2 {
		return env.runSequential(rr, variants)
	}
	return env.runParallel(rr, variants)
}

// runSequential fires variants in order, inserting as they emit.
func (env *roundEnv) runSequential(rr roundRules, variants []variant) error {
	d, opts, ctx := env.d, env.opts, env.ctx
	stop := false
	goalHit := false
	canceled := false
	ctxTick := 0
	remaining := -1
	if opts.MaxDerived > 0 {
		remaining = opts.MaxDerived - (d.Len() - env.baseLen)
	}
	goal := env.goal
	emit := func(pred string, args []ast.Const) bool {
		if !d.AddTuple(pred, args) {
			return false
		}
		if goal != nil && pred == goal.Pred && constsEqual(args, goal.Args) {
			goalHit = true
			stop = true
		}
		if remaining >= 0 {
			remaining--
			if remaining < 0 {
				stop = true
			}
		}
		return true
	}
	if ctx != nil {
		// Emit-path cancellation cadence: a long round still stops promptly
		// after its deadline, like the budget tripwire. The check is layered
		// on as a wrapper so a context-free Eval pays nothing for it.
		inner := emit
		emit = func(pred string, args []ast.Const) bool {
			if ctxTick++; ctxTick%ctxCheckEvery == 0 && ctx.Err() != nil {
				canceled = true
				stop = true
			}
			return inner(pred, args)
		}
	}
	var stopFn func() bool
	if opts.MaxDerived > 0 || goal != nil || ctx != nil {
		stopFn = func() bool { return stop }
	}
	for _, v := range variants {
		em := emit
		if env.prov != nil {
			// Wrap per variant so a successful emission credits the firing
			// rule's program index.
			ridx := env.ruleIdxs[v.idx]
			em = func(pred string, args []ast.Const) bool {
				if emit(pred, args) {
					env.prov.Add(ridx)
					return true
				}
				return false
			}
		}
		if err := rr.fire(d, v.idx, v.windows, env.stats, em, stopFn); err != nil {
			return err
		}
		if goalHit {
			return errGoal
		}
		if canceled {
			return CtxErr(ctx)
		}
		if stop {
			return env.budgetErr()
		}
	}
	return nil
}

// runParallel fires variants concurrently into per-variant buffers and
// merges after the round. The budget tripwire counts tentative emissions
// (each variant dedups against the frozen database but not against its
// peers), so it can only overcount; when it trips without the merged total
// actually exceeding the budget, the truncated round is re-fired —
// already-merged facts then dedup at emit time, so every re-fire either
// completes the round or strictly grows the database until the budget
// genuinely runs out.
//
// Goal-directed runs use a variant-ordered merge with prefix cut. In-flight
// variants are deliberately NOT aborted (cutting peers off mid-enumeration
// would make the partial database depend on goroutine scheduling); instead
// the merge commits the buffers in variant order and stops at the first
// committed goal fact. Each variant's enumeration only probes frozen
// indexes — tuples inserted mid-round are stamped with the current round,
// which every window excludes — so a buffer replays exactly the emission
// sequence the sequential path would produce for that variant, and the
// committed prefix equals the sequential partial database byte for byte
// while reclaiming the mid-round abort. A variant's error is surfaced after
// its buffer commits (the sequential path adds facts up to the failure
// point too); errors of variants past the cut belong to work a sequential
// run never starts and are discarded.
func (env *roundEnv) runParallel(rr roundRules, variants []variant) error {
	d, opts, stats, goal := env.d, env.opts, env.stats, env.goal
	type pending struct {
		pred string
		args []ast.Const
	}
	var tentative atomic.Int64
	var tripped atomic.Bool
	var stopFn func() bool
	if opts.MaxDerived > 0 {
		stopFn = func() bool { return tripped.Load() }
	}
	for {
		// Parallel rounds observe cancellation at round (and re-fire)
		// boundaries: aborting in-flight variants mid-enumeration would make
		// the partial database depend on goroutine scheduling, which the
		// deterministic merge below exists to prevent.
		if err := CtxErr(env.ctx); err != nil {
			return err
		}
		tentative.Store(int64(d.Len() - env.baseLen))
		tripped.Store(false)
		buffers := make([][]pending, len(variants))
		statsArr := make([]Stats, len(variants))
		errs := make([]error, len(variants))
		sem := make(chan struct{}, opts.Workers)
		var wg sync.WaitGroup
		for vi := range variants {
			wg.Add(1)
			go func(vi int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				v := variants[vi]
				emit := func(pred string, args []ast.Const) bool {
					if d.HasTuple(pred, args) {
						return false
					}
					cp := make([]ast.Const, len(args))
					copy(cp, args)
					buffers[vi] = append(buffers[vi], pending{pred: pred, args: cp})
					if opts.MaxDerived > 0 && tentative.Add(1) > int64(opts.MaxDerived) {
						tripped.Store(true)
					}
					return true // tentatively new; merge dedups across variants
				}
				errs[vi] = rr.fire(d, v.idx, v.windows, &statsArr[vi], emit, stopFn)
			}(vi)
		}
		wg.Wait()
		// The merge runs single-threaded after the round's workers join, so
		// provenance updates need no synchronization.
		for vi := range variants {
			stats.Firings += statsArr[vi].Firings
			merged := 0
			cut := false
			for _, pf := range buffers[vi] {
				if d.AddTuple(pf.pred, pf.args) {
					stats.Added++
					merged++
					if goal != nil && pf.pred == goal.Pred && constsEqual(pf.args, goal.Args) {
						cut = true
						break
					}
				}
			}
			if env.prov != nil && merged > 0 {
				env.prov.Add(env.ruleIdxs[variants[vi].idx])
			}
			if cut {
				// The goal is ground, so any committed emission of it is the
				// goal; it precedes any error in this variant's enumeration,
				// and later variants are past the cut.
				return errGoal
			}
			if errs[vi] != nil {
				return errs[vi]
			}
		}
		if !tripped.Load() {
			return nil
		}
		if d.Len()-env.baseLen > opts.MaxDerived {
			return env.budgetErr()
		}
	}
}

// shardPending is one buffered derivation of a sharded task: the merge keys
// captured by the shardScan, a concatenation sequence number that makes the
// commit sort total, the deriving shard (for delta-exchange accounting),
// and the fact itself.
type shardPending struct {
	k1, k2, seq int32
	shard       uint8
	pred        string
	args        []ast.Const
}

// taskSet is a task-local open-addressed dedup set over the task's pending
// buffer, sharing the store's tuple hash. A duplicate emission of a buffered
// fact is folded into its entry by LOWERING the entry's merge keys to the
// minimum (k1, k2) seen — a swapped (delta-first) task enumerates in
// (k2, k1) order, so its first emission of a fact is not necessarily the
// occurrence the sequential plan order commits first; keeping the minimum
// key is what keeps the merge's commit position, and with it byte identity,
// independent of which duplicate a task happened to hit first.
//
// Entries are epoch-stamped so the executor's task pools reset the set in
// O(1) between rounds instead of re-zeroing (or reallocating) the tables.
type taskSet struct {
	mask  uint64
	hash  []uint64
	slot  []int32 // 1-based ordinal into the task buffer
	epoch []int32
	cur   int32
	n     int
}

// reset empties the set, keeping its tables for the next round.
func (ts *taskSet) reset() { ts.cur++; ts.n = 0 }

// add dedups (k1, k2, args) against buf: it returns false after folding the
// keys of a duplicate, or true when the fact is new to the task — the caller
// must then append it to the buffer (whose new length add already accounted
// for).
func (ts *taskSet) add(buf []shardPending, k1, k2 int32, args []ast.Const) bool {
	if 4*(ts.n+1) > 3*len(ts.slot) {
		ts.grow(buf)
	}
	h := db.HashTuple(args)
	for i := h & ts.mask; ; i = (i + 1) & ts.mask {
		if ts.epoch[i] != ts.cur || ts.slot[i] == 0 {
			ts.hash[i] = h
			ts.slot[i] = int32(len(buf)) + 1
			ts.epoch[i] = ts.cur
			ts.n++
			return true
		}
		if s := ts.slot[i]; ts.hash[i] == h && constsEqual(buf[s-1].args, args) {
			p := &buf[s-1]
			if k1 < p.k1 || (k1 == p.k1 && k2 < p.k2) {
				p.k1, p.k2 = k1, k2
			}
			return false
		}
	}
}

func (ts *taskSet) grow(buf []shardPending) {
	size := 2 * len(ts.slot)
	if size < 64 {
		size = 64
	}
	hash := make([]uint64, size)
	slot := make([]int32, size)
	epoch := make([]int32, size)
	mask := uint64(size - 1)
	for i := range ts.slot {
		if ts.epoch[i] != ts.cur || ts.slot[i] == 0 {
			continue
		}
		h := ts.hash[i]
		for j := h & mask; ; j = (j + 1) & mask {
			if slot[j] == 0 {
				hash[j], slot[j], epoch[j] = h, ts.slot[i], ts.cur
				break
			}
		}
	}
	ts.mask, ts.hash, ts.slot, ts.epoch = mask, hash, slot, epoch
}

// mergeAux holds the commit-order scratch reused across a sharded
// evaluation's merges.
type mergeAux struct {
	counts []int32
	out    []shardPending
}

// commitOrder arranges one variant's task buffers (bufs, in shard order)
// into the sequential commit order (k1 asc, then k2, then concatenation
// order). Ownership makes the merge keys hash-disjoint across a variant's
// shards, so the order is recovered with a stable counting scatter over k1
// — linear in the emissions, against the comparison sort's B·log B, and
// reading the shard buffers in place, so the merge never materializes a
// concatenation — refined per k1 bucket by (k2, seq) only for delta-first
// executions (tagInner), where the inner probe order interleaves k2 across
// a bucket; plan-ordered tasks emit k2 = 0 and the scatter's stability
// already preserves their order. Rounds whose k1 range is far wider than
// their population (sparse late-round deltas probing a large outer
// relation) fall back to the comparison sort rather than paying a
// near-empty histogram.
func commitOrder(bufs [][]shardPending, tagInner bool, aux *mergeAux) []shardPending {
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if cap(aux.out) < total {
		aux.out = make([]shardPending, total)
	}
	out := aux.out[:total]
	if total == 0 {
		return out
	}
	var minK1, maxK1 int32
	first := true
	for _, b := range bufs {
		for i := range b {
			k := b[i].k1
			if first {
				minK1, maxK1, first = k, k, false
			} else if k < minK1 {
				minK1 = k
			} else if k > maxK1 {
				maxK1 = k
			}
		}
	}
	width := int(maxK1-minK1) + 1
	if width > 4*total+1024 {
		out = out[:0]
		var seq int32
		for _, b := range bufs {
			for i := range b {
				b[i].seq = seq
				seq++
			}
			out = append(out, b...)
		}
		slices.SortFunc(out, func(a, b shardPending) int {
			if c := cmp.Compare(a.k1, b.k1); c != 0 {
				return c
			}
			if c := cmp.Compare(a.k2, b.k2); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
		return out
	}
	if cap(aux.counts) < width {
		aux.counts = make([]int32, width)
	}
	counts := aux.counts[:width]
	clear(counts)
	for _, b := range bufs {
		for i := range b {
			counts[b[i].k1-minK1]++
		}
	}
	var sum int32
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	var seq int32
	for _, b := range bufs {
		for i := range b {
			pos := counts[b[i].k1-minK1]
			counts[b[i].k1-minK1] = pos + 1
			out[pos] = b[i]
			out[pos].seq = seq
			seq++
		}
	}
	if tagInner {
		// counts[b] now marks each bucket's end; its start is the previous
		// bucket's end.
		var start int32
		for b := 0; b < width; b++ {
			end := counts[b]
			if end-start > 1 {
				slices.SortFunc(out[start:end], func(a, b shardPending) int {
					if c := cmp.Compare(a.k2, b.k2); c != 0 {
						return c
					}
					return cmp.Compare(a.seq, b.seq)
				})
			}
			start = end
		}
	}
	return out
}

// runSharded splits every variant into Shards ownership-disjoint tasks and
// merges their buffers deterministically (see the package comment above).
// It shares runParallel's budget tripwire, re-fire loop and prefix-cut goal
// discipline; Workers bounds task concurrency, and Workers = 1 runs the
// tasks inline in task order (still buffered — the merge is what defines
// the commit order, not the firing schedule).
func (env *roundEnv) runSharded(rr roundRules, variants []variant) error {
	d, opts, stats, goal := env.d, env.opts, env.stats, env.goal
	shards := opts.Shards
	// Per-variant execution plans: the rule actually fired (delta-first when
	// the delta sits on executed position 1 and a swapped compilation
	// exists), its windows, and the ownership view of its outer predicate
	// under the planner's partition column. Views are frozen here, before
	// any task runs, so every in-round ownership test is a lock-free read
	// covering exactly the ids the round windows admit.
	type shardPlan struct {
		cr       *compiledRule
		windows  []db.RoundWindow
		view     db.ShardView
		tagInner bool
	}
	plans := make([]shardPlan, len(variants))
	for vi, v := range variants {
		p := shardPlan{cr: rr.compiled[v.idx], windows: v.windows}
		if v.delta == 1 && rr.swapped != nil && rr.swapped[v.idx] != nil {
			p.cr = rr.swapped[v.idx]
			w := append([]db.RoundWindow(nil), v.windows...)
			w[0], w[1] = w[1], w[0]
			p.windows = w
			p.tagInner = true
		}
		if len(p.cr.body) > 0 {
			pred := p.cr.body[0].pred
			p.view = d.EnsureShardView(pred, rr.partCol[pred], shards)
		}
		plans[vi] = p
	}
	var tentative atomic.Int64
	var tripped atomic.Bool
	var stopFn func() bool
	if opts.MaxDerived > 0 {
		stopFn = func() bool { return tripped.Load() }
	}
	width := opts.Workers
	if width < 1 {
		width = 1
	}
	nTasks := len(variants) * shards
	pool := &env.pool
	for {
		if err := CtxErr(env.ctx); err != nil {
			return err
		}
		tentative.Store(int64(d.Len() - env.baseLen))
		tripped.Store(false)
		pool.taskReset(nTasks)
		buffers, statsArr := pool.bufs, pool.stats
		run := func(ti int) {
			vi, s := ti/shards, uint8(ti%shards)
			p := plans[vi]
			sc := shardScan{view: p.view, shard: s, tagInner: p.tagInner}
			// Shard-local dedup. On duplicate-heavy workloads almost every
			// firing re-derives a known fact, so the rejection path is the
			// executor's hot loop: the head predicate is fixed per variant,
			// letting the pred→relation map lookup hoist out of it, and the
			// frozen relation's table is probed read-only. Facts new to the
			// round dedup against the task-local set, so only distinct facts
			// are copied, buffered and sorted — duplicate emissions fold into
			// the buffered entry's merge keys (see taskSet) — and cross-task
			// duplicates still resolve at the merge, so byte identity is
			// preserved.
			//
			// The frozen-table probe is itself adaptive: it saves a buffer
			// entry when it hits, but on low-duplicate rounds nearly every
			// probe misses against a table too large to stay in cache, and
			// the commit re-probes at insert anyway. Each task samples its
			// first probeSample emissions and drops the prefilter for the
			// rest of the task when under a quarter of them were duplicates
			// — the merge's insert remains the one authoritative dedup, so
			// the switch cannot change what commits, or in what order.
			headRel := d.Relation(p.cr.head.pred)
			if headRel != nil && headRel.Arity() != len(p.cr.head.args) {
				headRel = nil
			}
			local := &pool.sets[ti]
			arena := pool.arenas[ti] // chunked copy space; grown slices keep old chunks alive
			const probeSample = 512
			probed, rejected := 0, 0
			emit := func(k1, k2 int32, pred string, args []ast.Const) bool {
				if headRel != nil {
					_, dup := headRel.LookupID(args)
					if dup {
						rejected++
					}
					if probed++; probed == probeSample && 4*rejected < probeSample {
						headRel = nil
					}
					if dup {
						return false
					}
				}
				if !local.add(buffers[ti], k1, k2, args) {
					return false
				}
				n := len(arena)
				arena = append(arena, args...)
				cp := arena[n:len(arena):len(arena)]
				buffers[ti] = append(buffers[ti], shardPending{k1: k1, k2: k2, shard: s, pred: pred, args: cp})
				if opts.MaxDerived > 0 && tentative.Add(1) > int64(opts.MaxDerived) {
					tripped.Store(true)
				}
				return true // tentatively new; the merge dedups across tasks
			}
			p.cr.fireShard(d, p.windows, &statsArr[ti], &sc, emit, stopFn)
			pool.arenas[ti] = arena
		}
		if width == 1 {
			for ti := 0; ti < nTasks; ti++ {
				run(ti)
			}
		} else {
			sem := make(chan struct{}, width)
			var wg sync.WaitGroup
			for ti := 0; ti < nTasks; ti++ {
				wg.Add(1)
				go func(ti int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					run(ti)
				}(ti)
			}
			wg.Wait()
		}
		// Deterministic merge, single-threaded after the tasks join. Within
		// one variant the shard buffers partition the outer enumeration:
		// arranging the concatenation by (k1, k2, concat order) — see
		// commitOrder — restores the sequential plan-ordered emission
		// sequence: k1 is the plan-outer tuple id, k2 the delta id of a
		// swapped execution, and emissions sharing both keys come from a
		// single shard in already-correct relative order (ownership makes
		// the key spaces disjoint across shards). Variants then commit in
		// variant order exactly as the parallel merge does, goal prefix cut
		// included.
		for vi := range variants {
			base := vi * shards
			for s := 0; s < shards; s++ {
				stats.Firings += statsArr[base+s].Firings
			}
			all := commitOrder(buffers[base:base+shards], plans[vi].tagInner, &pool.aux)
			merged := 0
			cut := false
			for i := range all {
				pf := &all[i]
				if d.AddTuple(pf.pred, pf.args) {
					stats.Added++
					merged++
					// Boundary-delta exchange: a committed fact whose owner
					// shard (under the head predicate's partition column)
					// differs from the shard that derived it would cross
					// shards in a distributed deployment.
					owner := uint8(0)
					if col, ok := rr.partCol[pf.pred]; ok {
						owner = db.ShardOwner(pf.args, col, shards)
					}
					if owner != pf.shard {
						stats.DeltaExchanged++
					}
					if goal != nil && pf.pred == goal.Pred && constsEqual(pf.args, goal.Args) {
						cut = true
						break
					}
				}
			}
			if env.prov != nil && merged > 0 {
				env.prov.Add(env.ruleIdxs[variants[vi].idx])
			}
			if cut {
				return errGoal
			}
		}
		stats.ShardRounds += shards
		perShard := make([]int, shards)
		for ti := 0; ti < nTasks; ti++ {
			perShard[ti%shards] += statsArr[ti].Firings
		}
		maxF, totF := 0, 0
		for _, f := range perShard {
			totF += f
			if f > maxF {
				maxF = f
			}
		}
		stats.ShardImbalance += maxF - totF/shards
		if !tripped.Load() {
			return nil
		}
		if d.Len()-env.baseLen > opts.MaxDerived {
			return env.budgetErr()
		}
	}
}

// normalizeShards resolves the effective shard count of opts: the sharded
// executor is part of the compiled kernel, so NoCompile runs unsharded, and
// the ownership views store owners in one byte, capping the count at 256.
func normalizeShards(opts Options) int {
	switch {
	case opts.NoCompile || opts.Shards < 1:
		return 1
	case opts.Shards > 256:
		return 256
	}
	return opts.Shards
}

// partitionCols chooses, per predicate, the column sharded rounds partition
// its tuples by: the position that most often carries a join variable (one
// occurring more than once in its rule), ties to the lowest position, so
// partition keys align with join keys as often as the program's shape
// allows. The choice affects only load balance and the delta-exchange
// accounting, never results — inner probes always read the full frozen
// store. Predicates with no scoring position partition on column 0; nullary
// predicates get -1, the home-shard fallback.
func partitionCols(rules []ast.Rule) map[string]int {
	arity := map[string]int{}
	score := map[string][]int{}
	for _, r := range rules {
		counts := map[string]int{}
		tally := func(a ast.Atom) {
			for _, t := range a.Args {
				if t.IsVar {
					counts[t.Name]++
				}
			}
		}
		tally(r.Head)
		for _, a := range r.Body {
			tally(a)
		}
		for _, a := range r.NegBody {
			tally(a)
		}
		mark := func(a ast.Atom) {
			if _, ok := arity[a.Pred]; !ok {
				arity[a.Pred] = len(a.Args)
				score[a.Pred] = make([]int, len(a.Args))
			}
			s := score[a.Pred]
			for i, t := range a.Args {
				if i < len(s) && t.IsVar && counts[t.Name] >= 2 {
					s[i]++
				}
			}
		}
		mark(r.Head)
		for _, a := range r.Body {
			mark(a)
		}
	}
	out := make(map[string]int, len(arity))
	for pred, ar := range arity {
		if ar == 0 {
			out[pred] = -1
			continue
		}
		best, bestScore := 0, score[pred][0]
		for i := 1; i < ar; i++ {
			if score[pred][i] > bestScore {
				best, bestScore = i, score[pred][i]
			}
		}
		out[pred] = best
	}
	return out
}

// buildSwapped compiles the delta-first form of each ordered rule whose
// first two body atoms share a variable: body positions 0 and 1 swapped,
// substituted by the sharded executor when the round's delta lands on
// executed position 1. Enumerating the delta as the outer loop turns a scan
// of the whole relation (filtered per tuple against the delta window) into
// a walk of the delta's contiguous id-range; the shared-variable guard
// keeps the displaced outer atom an index probe rather than a per-delta
// re-scan. eligible filters by the predicate at position 1 (only dynamic
// predicates ever hold a delta there). The extra index needs of the swapped
// probes are returned for the round-boundary freeze.
func buildSwapped(ordered []ast.Rule, eligible func(pred string) bool) ([]*compiledRule, []indexNeed) {
	var swapped []*compiledRule
	var srules []ast.Rule
	for i, or := range ordered {
		if len(or.Body) < 2 || !eligible(or.Body[1].Pred) || !atomsShareVar(or.Body[0], or.Body[1]) {
			continue
		}
		if swapped == nil {
			swapped = make([]*compiledRule, len(ordered))
		}
		sr := or.Clone()
		sr.Body[0], sr.Body[1] = sr.Body[1], sr.Body[0]
		swapped[i] = compileRule(sr)
		srules = append(srules, sr)
	}
	if swapped == nil {
		return nil, nil
	}
	return swapped, indexNeeds(srules)
}

func atomsShareVar(a, b ast.Atom) bool {
	for _, t := range a.Args {
		if !t.IsVar {
			continue
		}
		for _, u := range b.Args {
			if u.IsVar && u.Name == t.Name {
				return true
			}
		}
	}
	return false
}
