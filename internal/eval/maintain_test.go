package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/workload"
)

// canonFacts renders a database as one sorted canonical fact per line — the
// byte-identity form the maintenance oracle compares.
func canonFacts(d *db.Database) string {
	fs := d.Facts()
	sortFacts(fs)
	var sb strings.Builder
	for _, g := range fs {
		sb.WriteString(g.String())
		sb.WriteString("\n")
	}
	return sb.String()
}

func mustMaterialize(t *testing.T, p *ast.Program, input *db.Database, opts Options, mo MaintainOptions) *Maintained {
	t.Helper()
	pr, err := Prepare(p, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	m, _, err := pr.Materialize(context.Background(), input, mo)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return m
}

func applyOrFatal(t *testing.T, m *Maintained, delta Delta) Diff {
	t.Helper()
	diff, _, err := m.Apply(context.Background(), delta)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return diff
}

func TestMaintainCountingBasic(t *testing.T) {
	p := mustParseProgram(t, `
		P(x, y) :- E(x, y).
		Q(x, z) :- E(x, y), P(y, z).
	`)
	input := db.New()
	input.Add(ga("E", 1, 2))
	input.Add(ga("E", 2, 3))
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})
	if !m.Output().Has(ga("Q", 1, 3)) {
		t.Fatal("missing Q(1,3) in the materialized view")
	}

	// Assert a new edge: Q(2,4) and Q(1,3) already present, P(3,4), Q(2,4) appear.
	diff := applyOrFatal(t, m, Delta{Assert: []ast.GroundAtom{ga("E", 3, 4)}})
	if len(diff.Removed) != 0 {
		t.Fatalf("assertion removed facts: %v", diff.Removed)
	}
	wantAdded := map[string]bool{
		ga("E", 3, 4).Key(): true, ga("P", 3, 4).Key(): true, ga("Q", 2, 4).Key(): true,
	}
	if len(diff.Added) != len(wantAdded) {
		t.Fatalf("added %v, want 3 facts", diff.Added)
	}
	for _, g := range diff.Added {
		if !wantAdded[g.Key()] {
			t.Fatalf("unexpected added fact %v", g)
		}
	}

	// Retract the middle edge: everything through node 2 collapses.
	diff = applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("E", 2, 3)}})
	if len(diff.Added) != 0 {
		t.Fatalf("retraction added facts: %v", diff.Added)
	}
	full := MustEval(p, db.FromFacts([]ast.GroundAtom{ga("E", 1, 2), ga("E", 3, 4)}))
	if got, want := canonFacts(m.Output()), canonFacts(full); got != want {
		t.Fatalf("maintained view diverged:\n%s\nwant:\n%s", got, want)
	}
}

func TestMaintainCountingSharedSupport(t *testing.T) {
	// P(5) has two derivations; retracting one support keeps it alive.
	p := mustParseProgram(t, `P(y) :- A(y). P(y) :- B(y).`)
	input := db.FromFacts([]ast.GroundAtom{ga("A", 5), ga("B", 5)})
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})
	diff := applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("A", 5)}})
	if len(diff.Removed) != 1 || diff.Removed[0].Pred != "A" {
		t.Fatalf("diff = %+v, want only A(5) removed", diff)
	}
	if !m.Output().Has(ga("P", 5)) {
		t.Fatal("P(5) lost its surviving derivation")
	}
	diff = applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("B", 5)}})
	if m.Output().Has(ga("P", 5)) {
		t.Fatal("P(5) survived with no derivations")
	}
	if len(diff.Removed) != 2 {
		t.Fatalf("diff = %+v, want B(5) and P(5) removed", diff)
	}
}

func TestMaintainExternalSupport(t *testing.T) {
	// An input fact of a derived predicate counts as one external support,
	// under both counting and delete-rederive.
	for _, mo := range []MaintainOptions{{}, {ForceDRed: true}} {
		p := mustParseProgram(t, `P(y) :- E(y).`)
		input := db.FromFacts([]ast.GroundAtom{ga("E", 3), ga("P", 3), ga("P", 5)})
		m := mustMaterialize(t, p, input, Options{}, mo)

		// P(5) is input-only: retracting it removes it.
		diff := applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("P", 5)}})
		if m.Output().Has(ga("P", 5)) || len(diff.Removed) != 1 {
			t.Fatalf("ForceDRed=%v: input-only P(5) not removed: %+v", mo.ForceDRed, diff)
		}
		// P(3) is both input and derived: retracting the input keeps it.
		diff = applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("P", 3)}})
		if !m.Output().Has(ga("P", 3)) {
			t.Fatalf("ForceDRed=%v: P(3) lost despite E(3) derivation", mo.ForceDRed)
		}
		if len(diff.Removed) != 0 {
			t.Fatalf("ForceDRed=%v: spurious removals %v", mo.ForceDRed, diff.Removed)
		}
		// Now retract the derivation too.
		applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("E", 3)}})
		if m.Output().Has(ga("P", 3)) {
			t.Fatalf("ForceDRed=%v: P(3) survived with no support", mo.ForceDRed)
		}
	}
}

func TestMaintainDRedTransitiveClosure(t *testing.T) {
	p := workload.TransitiveClosure()
	input := workload.Chain("A", 8)
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})

	// Cutting the chain in the middle halves the closure.
	diff, stats, err := m.Apply(context.Background(), Delta{Retract: []ast.GroundAtom{ga("A", 4, 5)}})
	if err != nil {
		t.Fatal(err)
	}
	ref := workload.Chain("A", 8)
	ref.Remove(ga("A", 4, 5))
	ref.Compact()
	if got, want := canonFacts(m.Output()), canonFacts(MustEval(p, ref)); got != want {
		t.Fatalf("after cut:\n%s\nwant:\n%s", got, want)
	}
	if stats.Overdeleted == 0 {
		t.Fatal("no over-deletions recorded for a recursive retraction")
	}
	for _, g := range diff.Added {
		t.Fatalf("retraction added %v", g)
	}

	// Re-linking via an alternative edge rederives the long paths.
	applyOrFatal(t, m, Delta{Assert: []ast.GroundAtom{ga("A", 4, 5)}})
	if got, want := canonFacts(m.Output()), canonFacts(MustEval(p, workload.Chain("A", 8))); got != want {
		t.Fatalf("after re-link:\n%s\nwant:\n%s", got, want)
	}
}

func TestMaintainDRedRederivesAlternativePath(t *testing.T) {
	// Diamond: 0→1→3 and 0→2→3. Cutting 1→3 must keep G(0,3) via the
	// alternative path (the delete-rederive sweep restores it).
	p := workload.TransitiveClosure()
	input := db.FromFacts([]ast.GroundAtom{
		ga("A", 0, 1), ga("A", 1, 3), ga("A", 0, 2), ga("A", 2, 3),
	})
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})
	diff, stats, err := m.Apply(context.Background(), Delta{Retract: []ast.GroundAtom{ga("A", 1, 3)}})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Output().Has(ga("G", 0, 3)) {
		t.Fatal("G(0,3) lost despite alternative path")
	}
	if stats.Rederived == 0 {
		t.Fatal("no rederivations recorded")
	}
	for _, g := range diff.Removed {
		if g.Key() == ga("G", 0, 3).Key() {
			t.Fatal("G(0,3) reported removed")
		}
	}
}

func TestMaintainStratifiedNegation(t *testing.T) {
	p := mustParseProgram(t, `
		Reach(x) :- S(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x)  :- N(x), !Reach(x).
	`)
	input := db.FromFacts([]ast.GroundAtom{
		ga("S", 0), ga("E", 0, 1),
		ga("N", 0), ga("N", 1), ga("N", 2),
	})
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})
	if !m.Output().Has(ga("Dead", 2)) || m.Output().Has(ga("Dead", 1)) {
		t.Fatalf("bad initial view:\n%s", canonFacts(m.Output()))
	}

	// Asserting an edge below retracts a fact above: Dead(2) must go.
	diff := applyOrFatal(t, m, Delta{Assert: []ast.GroundAtom{ga("E", 1, 2)}})
	found := false
	for _, g := range diff.Removed {
		if g.Key() == ga("Dead", 2).Key() {
			found = true
		}
	}
	if !found || m.Output().Has(ga("Dead", 2)) {
		t.Fatalf("assertion below did not retract Dead(2): %+v", diff)
	}

	// Retracting below asserts above: cutting 0→1 revives Dead(1), Dead(2).
	diff = applyOrFatal(t, m, Delta{Retract: []ast.GroundAtom{ga("E", 0, 1)}})
	ref := db.FromFacts([]ast.GroundAtom{
		ga("S", 0), ga("E", 1, 2), ga("N", 0), ga("N", 1), ga("N", 2),
	})
	if got, want := canonFacts(m.Output()), canonFacts(MustEval(p, ref)); got != want {
		t.Fatalf("after cut:\n%s\nwant:\n%s", got, want)
	}
	added := map[string]bool{}
	for _, g := range diff.Added {
		added[g.Key()] = true
	}
	if !added[ga("Dead", 1).Key()] || !added[ga("Dead", 2).Key()] {
		t.Fatalf("retraction below did not assert Dead facts: %+v", diff)
	}
}

func TestMaintainBatchSemantics(t *testing.T) {
	p := mustParseProgram(t, `P(x) :- E(x).`)
	input := db.FromFacts([]ast.GroundAtom{ga("E", 1)})
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})

	// No-ops: retract absent, assert present, retract a derived-only fact.
	diff := applyOrFatal(t, m, Delta{
		Assert:  []ast.GroundAtom{ga("E", 1)},
		Retract: []ast.GroundAtom{ga("E", 9), ga("P", 1)},
	})
	if !diff.Empty() {
		t.Fatalf("no-op batch produced diff %+v", diff)
	}
	// Assert wins over retract of the same fact in one batch.
	diff = applyOrFatal(t, m, Delta{
		Assert:  []ast.GroundAtom{ga("E", 2)},
		Retract: []ast.GroundAtom{ga("E", 2)},
	})
	if !m.Output().Has(ga("P", 2)) || len(diff.Added) != 2 {
		t.Fatalf("assert-wins batch: %+v", diff)
	}
	// Arity mismatch is rejected before any mutation.
	if _, _, err := m.Apply(context.Background(), Delta{Assert: []ast.GroundAtom{ga("E", 1, 2)}}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if !m.Output().Has(ga("P", 2)) {
		t.Fatal("failed Apply corrupted the view")
	}
}

func TestMaintainRejectsGoalPlans(t *testing.T) {
	p := workload.TransitiveClosure()
	goal := ga("T", 0, 1)
	pr, err := Prepare(p, Options{Goal: &goal})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pr.Materialize(context.Background(), db.New(), MaintainOptions{}); err == nil {
		t.Fatal("Materialize accepted a goal-directed plan")
	}
}

// predSchema collects the predicates of a program with their arities, split
// into extensional-or-any (all preds) for mutation sampling.
func predSchema(p *ast.Program) (preds []string, arity map[string]int) {
	arity = make(map[string]int)
	add := func(a ast.Atom) {
		if _, ok := arity[a.Pred]; !ok {
			arity[a.Pred] = len(a.Args)
			preds = append(preds, a.Pred)
		}
	}
	for _, r := range p.Rules {
		add(r.Head)
		for _, a := range r.Body {
			add(a)
		}
		for _, a := range r.NegBody {
			add(a)
		}
	}
	sort.Strings(preds)
	return preds, arity
}

// runMaintainStream drives one maintained view through a randomized mixed
// assert/retract stream, checking after every batch that the view is
// byte-identical to a from-scratch evaluation of the mutated input and that
// the returned diff is the exact set difference.
func runMaintainStream(t *testing.T, p *ast.Program, opts Options, mo MaintainOptions, seed int64, domain, steps int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	preds, arity := predSchema(p)

	randFact := func() ast.GroundAtom {
		pred := preds[rng.Intn(len(preds))]
		args := make([]ast.Const, arity[pred])
		for i := range args {
			args[i] = ast.Const(rng.Intn(domain))
		}
		return ast.GroundAtom{Pred: pred, Args: args}
	}

	ref := db.New() // independent input oracle
	input := db.New()
	for i := 0; i < domain; i++ {
		g := randFact()
		ref.Add(g)
		input.Add(g)
	}
	pr, err := Prepare(p, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	m, _, err := pr.Materialize(context.Background(), input, mo)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}

	for step := 0; step < steps; step++ {
		var delta Delta
		inAssert := make(map[string]bool)
		for n := 1 + rng.Intn(5); n > 0; n-- {
			g := randFact()
			if rng.Intn(2) == 0 {
				delta.Assert = append(delta.Assert, g)
				inAssert[g.Key()] = true
			} else {
				delta.Retract = append(delta.Retract, g)
			}
		}

		prev := make(map[string]bool)
		for _, g := range m.Output().Facts() {
			prev[g.Key()] = true
		}
		diff, _, err := m.Apply(context.Background(), delta)
		if err != nil {
			t.Fatalf("step %d: apply: %v", step, err)
		}

		// Mirror the batch semantics on the oracle input: assert wins.
		for _, g := range delta.Retract {
			if !inAssert[g.Key()] {
				ref.Remove(g)
			}
		}
		ref.Compact()
		for _, g := range delta.Assert {
			ref.Add(g)
		}

		want, _, err := Eval(p, ref, opts)
		if err != nil {
			t.Fatalf("step %d: full eval: %v", step, err)
		}
		if got, wantS := canonFacts(m.Output()), canonFacts(want); got != wantS {
			t.Fatalf("step %d (seed %d): maintained view diverged from full re-evaluation\nbatch: %+v\ngot:\n%s\nwant:\n%s",
				step, seed, delta, got, wantS)
		}
		if got, wantS := canonFacts(m.Input()), canonFacts(ref); got != wantS {
			t.Fatalf("step %d: maintained input diverged\ngot:\n%s\nwant:\n%s", step, got, wantS)
		}

		// Diff exactness: prev + Added - Removed == new, with Added fresh and
		// Removed previously present.
		for _, g := range diff.Added {
			if prev[g.Key()] {
				t.Fatalf("step %d: diff added pre-existing fact %v", step, g)
			}
			prev[g.Key()] = true
		}
		for _, g := range diff.Removed {
			if !prev[g.Key()] {
				t.Fatalf("step %d: diff removed absent fact %v", step, g)
			}
			delete(prev, g.Key())
		}
		now := make(map[string]bool)
		for _, g := range m.Output().Facts() {
			now[g.Key()] = true
			if !prev[g.Key()] {
				t.Fatalf("step %d: fact %v present but unaccounted by diff", step, g)
			}
		}
		if len(now) != len(prev) {
			t.Fatalf("step %d: diff accounts for %d facts, view has %d", step, len(prev), len(now))
		}
		for i := 1; i < len(diff.Added); i++ {
			if !factLess(diff.Added[i-1], diff.Added[i]) {
				t.Fatalf("step %d: Added not in canonical order", step)
			}
		}
		for i := 1; i < len(diff.Removed); i++ {
			if !factLess(diff.Removed[i-1], diff.Removed[i]) {
				t.Fatalf("step %d: Removed not in canonical order", step)
			}
		}
	}
}

// TestMaintainOracleGrid is the maintenance oracle: randomized mixed
// insert/delete streams, maintained output compared byte-for-byte against
// full re-evaluation, across Workers × Shards × {counting, ForceDRed}, on
// recursive, non-recursive and stratified-negation programs.
func TestMaintainOracleGrid(t *testing.T) {
	stratified := mustParseProgram(t, `
		Reach(x) :- S(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x)  :- N(x), !Reach(x).
		Pair(x, y) :- Dead(x), Dead(y).
	`)
	nonrec := mustParseProgram(t, `
		P(x, y) :- E(x, y).
		Q(x, z) :- P(x, y), E(y, z).
		R(x) :- Q(x, x).
	`)
	programs := map[string]*ast.Program{
		"tc":         workload.TransitiveClosure(),
		"samegen":    workload.SameGeneration(),
		"nonrec":     nonrec,
		"stratified": stratified,
	}
	grid := []struct {
		workers, shards int
		forceDRed       bool
	}{
		{1, 1, false},
		{1, 1, true},
		{4, 4, false},
		{4, 4, true},
		{2, 1, false},
		{1, 4, true},
	}
	for name, p := range programs {
		for _, cfg := range grid {
			cfg := cfg
			p := p
			t.Run(fmt.Sprintf("%s/w%d_s%d_dred%v", name, cfg.workers, cfg.shards, cfg.forceDRed), func(t *testing.T) {
				t.Parallel()
				opts := Options{Workers: cfg.workers, Shards: cfg.shards}
				mo := MaintainOptions{ForceDRed: cfg.forceDRed}
				for seed := int64(0); seed < 3; seed++ {
					runMaintainStream(t, p, opts, mo, seed, 9, 10)
				}
			})
		}
	}
}

// TestMaintainDeterministicAcrossWorkersShards pins the stronger property:
// the maintained database itself (arena order included) is identical across
// worker and shard counts, not just set-equal.
func TestMaintainDeterministicAcrossWorkersShards(t *testing.T) {
	p := workload.TransitiveClosure()
	mkStream := func(opts Options) string {
		input := workload.Chain("A", 10)
		m := mustMaterialize(t, p, input, opts, MaintainOptions{})
		var log strings.Builder
		batches := []Delta{
			{Retract: []ast.GroundAtom{ga("A", 4, 5)}},
			{Assert: []ast.GroundAtom{ga("A", 4, 5), ga("A", 10, 0)}},
			{Retract: []ast.GroundAtom{ga("A", 0, 1), ga("A", 9, 10)}, Assert: []ast.GroundAtom{ga("A", 2, 7)}},
		}
		for _, d := range batches {
			diff := applyOrFatal(t, m, d)
			for _, g := range diff.Added {
				fmt.Fprintf(&log, "+%s\n", g)
			}
			for _, g := range diff.Removed {
				fmt.Fprintf(&log, "-%s\n", g)
			}
		}
		// Raw arena order, not canonicalized: Facts() walks insertion order.
		for _, g := range m.Output().Facts() {
			fmt.Fprintf(&log, "%s\n", g)
		}
		return log.String()
	}
	base := mkStream(Options{})
	for _, o := range []Options{{Workers: 4}, {Shards: 4}, {Workers: 4, Shards: 4}, {Workers: 2, Shards: 8}} {
		if got := mkStream(o); got != base {
			t.Fatalf("maintained stream diverged under %+v:\n%s\nwant:\n%s", o, got, base)
		}
	}
}

// TestMaintainFreezeSkipsUntouchedRelations: an Apply batch that writes one
// predicate of a wide schema must re-freeze only the relations the batch (and
// its derived deltas) touched; the skip counter proves the untouched
// relations rode through on shared storage.
func TestMaintainFreezeSkipsUntouchedRelations(t *testing.T) {
	p := mustParseProgram(t, `
		PA(x, y) :- A(x, y).
		PB(x, y) :- B(x, y).
		PC(x, y) :- C(x, y).
		PD(x, y) :- D(x, y).
	`)
	input := db.New()
	for i, pred := range []string{"A", "B", "C", "D"} {
		input.Add(ga(pred, int64(i), int64(i)+1))
	}
	m := mustMaterialize(t, p, input, Options{}, MaintainOptions{})

	diff, stats, err := m.Apply(context.Background(), Delta{Assert: []ast.GroundAtom{ga("A", 10, 11)}})
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if len(diff.Added) != 2 {
		t.Fatalf("diff = %+v, want the A fact plus its PA derivation", diff)
	}
	if stats.FreezeSkipped == 0 {
		t.Fatalf("FreezeSkipped = 0: untouched relations were re-frozen (RelationsFrozen=%d)", stats.RelationsFrozen)
	}
	if stats.RelationsFrozen == 0 || stats.RelationsFrozen > 3 {
		t.Fatalf("RelationsFrozen = %d, want 1..3 (A on the input side, PA and support on the output side)", stats.RelationsFrozen)
	}
	// The two counters partition the relations of both frozen databases.
	total := m.Input().RelationCount() + m.Output().RelationCount()
	if stats.RelationsFrozen+stats.FreezeSkipped != total {
		t.Fatalf("frozen %d + skipped %d != %d total relations", stats.RelationsFrozen, stats.FreezeSkipped, total)
	}

	// A no-op batch (retracting an absent fact) short-circuits before any
	// re-freeze: neither counter moves.
	_, stats2, err := m.Apply(context.Background(), Delta{Retract: []ast.GroundAtom{ga("D", 99, 99)}})
	if err != nil {
		t.Fatalf("apply noop: %v", err)
	}
	if stats2.RelationsFrozen != 0 || stats2.FreezeSkipped != 0 {
		t.Fatalf("no-op batch counted frozen=%d skipped=%d, want 0/0", stats2.RelationsFrozen, stats2.FreezeSkipped)
	}
}
