package eval

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/workload"
)

// The sharded executor's acceptance property: for every program, strategy
// and worker count, the output database is byte-identical (same facts in the
// same insertion order, which db.String exposes) across shard counts —
// including goal early-stop partial databases and budget-exhausted runs.

var shardGrid = []int{1, 2, 4, 8}

// MustEval2 evaluates under explicit options and returns the dump, failing
// the test on error.
func MustEval2(t *testing.T, p *ast.Program, input *db.Database, o Options) string {
	t.Helper()
	out, _, err := Eval(p, input, o)
	if err != nil {
		t.Fatalf("%+v: %v", o, err)
	}
	return out.String()
}

func TestShardedByteIdentity(t *testing.T) {
	workers := []int{1, 8}
	strategies := []Strategy{SemiNaive, Naive}
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		input := workload.RandomDB(rng, p, 4, 4)
		for _, strat := range strategies {
			var want string
			first := true
			for _, w := range workers {
				for _, s := range shardGrid {
					prep, err := Prepare(p, Options{Strategy: strat, Workers: w, Shards: s})
					if err != nil {
						t.Fatalf("seed %d: prepare shards=%d: %v", seed, s, err)
					}
					out, _, err := prep.Eval(input)
					if err != nil {
						t.Fatalf("seed %d strat=%v workers=%d shards=%d: %v", seed, strat, w, s, err)
					}
					dump := out.String()
					if first {
						want, first = dump, false
						continue
					}
					if dump != want {
						t.Fatalf("seed %d strat=%v workers=%d shards=%d: database differs from shards=1\ngot:\n%s\nwant:\n%s\nprogram:\n%s",
							seed, strat, w, s, dump, want, p)
					}
				}
			}
		}
	}
}

func TestShardedTransitiveClosureIdentity(t *testing.T) {
	p := workload.TransitiveClosure()
	input := workload.RandomDigraph("A", 60, 150, 3)
	want := MustEval(p, input).String()
	for _, w := range []int{1, 8} {
		for _, s := range shardGrid {
			prep, err := Prepare(p, Options{Workers: w, Shards: s})
			if err != nil {
				t.Fatal(err)
			}
			out, stats, err := prep.Eval(input)
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", w, s, err)
			}
			if out.String() != want {
				t.Fatalf("workers=%d shards=%d: output differs from unsharded", w, s)
			}
			if s > 1 {
				if stats.ShardRounds == 0 {
					t.Fatalf("workers=%d shards=%d: sharded executor did not engage", w, s)
				}
				if stats.ShardRounds%s != 0 {
					t.Fatalf("shards=%d: ShardRounds=%d not a multiple of the shard count", s, stats.ShardRounds)
				}
			}
		}
	}
}

// TestShardedGoalPrefixCut extends the prefix-cut determinism property to
// the sharded merge: a goal-directed run halts on a byte-identical partial
// database for every (workers, shards) point. Goals are drawn from
// mid-evaluation derivations so the cut fires inside rounds.
func TestShardedGoalPrefixCut(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil {
			continue
		}
		input := workload.RandomDB(rng, p, 4, 4)
		full, _, err := Eval(p, input, Options{})
		if err != nil {
			continue
		}
		var goals []ast.GroundAtom
		for _, f := range full.Facts() {
			if !input.Has(f) {
				goals = append(goals, f)
			}
		}
		rng.Shuffle(len(goals), func(i, j int) { goals[i], goals[j] = goals[j], goals[i] })
		if len(goals) > 3 {
			goals = goals[:3]
		}
		goals = append(goals, ast.NewGroundAtom("P", ast.Int(9000), ast.Int(9000)))

		for gi := range goals {
			goal := goals[gi]
			var wantDump string
			var wantReached bool
			first := true
			for _, w := range []int{1, 8} {
				for _, s := range shardGrid {
					prep, err := Prepare(p, Options{Workers: w, Shards: s})
					if err != nil {
						t.Fatalf("seed %d: prepare: %v", seed, err)
					}
					out, reached, _, err := prep.EvalGoal(input, &goal, 0)
					if err != nil {
						t.Fatalf("seed %d goal %v workers=%d shards=%d: %v", seed, goal, w, s, err)
					}
					dump := out.String()
					if first {
						wantDump, wantReached, first = dump, reached, false
						continue
					}
					if reached != wantReached {
						t.Fatalf("seed %d goal %v: workers=%d shards=%d reached=%v, want %v",
							seed, goal, w, s, reached, wantReached)
					}
					if dump != wantDump {
						t.Fatalf("seed %d goal %v: workers=%d shards=%d partial database differs\ngot:\n%s\nwant:\n%s\nprogram:\n%s",
							seed, goal, w, s, dump, wantDump, p)
					}
				}
			}
		}
	}
}

// TestShardedBudgetConsistency: budget exhaustion is decided identically at
// every grid point — every configuration either completes or fails with
// ErrBudget, in agreement with the sequential baseline. (The partial
// database of a budget-failed run is not an API observable: run returns a
// nil database alongside the error.)
func TestShardedBudgetConsistency(t *testing.T) {
	p := workload.TransitiveClosure()
	input := workload.Chain("A", 30)
	for _, budget := range []int{1, 25, 1000} {
		_, _, err := Eval(p, input, Options{MaxDerived: budget})
		wantBudget := errors.Is(err, ErrBudget)
		if err != nil && !wantBudget {
			t.Fatalf("budget=%d: unexpected baseline error %v", budget, err)
		}
		for _, w := range []int{1, 8} {
			for _, s := range shardGrid {
				_, _, err := Eval(p, input, Options{MaxDerived: budget, Workers: w, Shards: s})
				if got := errors.Is(err, ErrBudget); got != wantBudget {
					t.Fatalf("budget=%d workers=%d shards=%d: budget error %v, baseline %v (err=%v)",
						budget, w, s, got, wantBudget, err)
				}
			}
		}
	}
}

// TestShardedIncrementalOracle: the maintenance path routed through the
// shared round executor agrees with full re-evaluation at every grid point,
// and produces byte-identical databases across the grid.
func TestShardedIncrementalOracle(t *testing.T) {
	p := workload.TransitiveClosure()
	base := workload.Chain("A", 12)
	out := MustEval(p, base)
	newFacts := []ast.GroundAtom{ga("A", 12, 0), ga("A", 5, 20), ga("A", 20, 21)}
	full := base.Clone()
	for _, f := range newFacts {
		full.Add(f)
	}
	want := MustEval(p, full)
	var wantDump string
	first := true
	for _, w := range []int{1, 8} {
		for _, s := range shardGrid {
			inc, stats, err := Incremental(p, out, newFacts, Options{Workers: w, Shards: s})
			if err != nil {
				t.Fatalf("workers=%d shards=%d: %v", w, s, err)
			}
			if !inc.Equal(want) {
				t.Fatalf("workers=%d shards=%d: incremental %d facts, full re-eval %d facts",
					w, s, inc.Len(), want.Len())
			}
			if s > 1 && stats.ShardRounds == 0 {
				t.Fatalf("workers=%d shards=%d: sharded delta loop did not engage", w, s)
			}
			dump := inc.String()
			if first {
				wantDump, first = dump, false
			} else if dump != wantDump {
				t.Fatalf("workers=%d shards=%d: incremental database differs across the grid", w, s)
			}
		}
	}
}

func TestShardedIncrementalRandomOracle(t *testing.T) {
	grid := [][2]int{{1, 1}, {1, 4}, {8, 2}, {8, 8}}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(4))
		if p.Validate() != nil || p.HasNegation() {
			continue
		}
		base := workload.RandomDB(rng, p, 4, 3)
		out, _, err := Eval(p, base, Options{})
		if err != nil {
			continue
		}
		extra := workload.RandomDB(rng, p, 4, 2)
		full := base.Clone()
		full.AddAll(extra)
		want, _, err := Eval(p, full, Options{})
		if err != nil {
			continue
		}
		for _, g := range grid {
			inc, _, err := Incremental(p, out, extra.Facts(), Options{Workers: g[0], Shards: g[1]})
			if err != nil {
				t.Fatalf("seed %d workers=%d shards=%d: %v", seed, g[0], g[1], err)
			}
			if !inc.Equal(want) {
				t.Fatalf("seed %d workers=%d shards=%d: incremental disagrees with full re-eval\nprogram:\n%s",
					seed, g[0], g[1], p)
			}
		}
	}
}

// TestShardedStatsAccounting pins the semantics of the per-shard counters.
func TestShardedStatsAccounting(t *testing.T) {
	p := workload.TransitiveClosure()
	input := workload.RandomDigraph("A", 40, 100, 5)
	_, seq, err := Eval(p, input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Eval(p, input, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.ShardRounds == 0 || st.ShardRounds%4 != 0 {
		t.Fatalf("ShardRounds = %d, want a positive multiple of 4", st.ShardRounds)
	}
	// Firings is the count of successful full joins, invariant under
	// sharding: the shard slices partition each variant's outer enumeration.
	if st.Firings != seq.Firings {
		t.Fatalf("sharded Firings = %d, sequential = %d", st.Firings, seq.Firings)
	}
	if st.Added != seq.Added {
		t.Fatalf("sharded Added = %d, sequential = %d", st.Added, seq.Added)
	}
	if st.DeltaExchanged < 0 || st.DeltaExchanged > st.Added {
		t.Fatalf("DeltaExchanged = %d out of range (Added = %d)", st.DeltaExchanged, st.Added)
	}
	var acc Stats
	acc.AddSharding(st)
	acc.AddSharding(st)
	if acc.ShardRounds != 2*st.ShardRounds || acc.DeltaExchanged != 2*st.DeltaExchanged || acc.ShardImbalance != 2*st.ShardImbalance {
		t.Fatal("AddSharding must accumulate all shard counters")
	}
}

// TestShardedNormalization: unusable shard counts fall back to the
// unsharded executor, and NoCompile (which the sharded kernel requires)
// normalizes to one shard rather than failing.
func TestShardedNormalization(t *testing.T) {
	p := workload.TransitiveClosure()
	input := workload.Chain("A", 8)
	for _, o := range []Options{
		{Shards: 0},
		{Shards: -3},
		{Shards: 4, NoCompile: true},
		{Shards: 100000},
		{Shards: 3, NoReorder: true},
		{Shards: 5, Strategy: Naive},
	} {
		// Baseline under the same options unsharded (insertion order differs
		// across strategies, so each option set is its own oracle).
		base := o
		base.Shards = 1
		want := MustEval2(t, p, input, base)
		out, st, err := Eval(p, input, o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if out.String() != want {
			t.Fatalf("%+v: output differs", o)
		}
		if o.NoCompile && st.ShardRounds != 0 {
			t.Fatalf("%+v: sharded executor ran under NoCompile", o)
		}
	}
}
