package eval

import (
	"math"

	"repro/internal/ast"
	"repro/internal/db"
)

// The compiled evaluator lowers a rule to integer variable slots before the
// fixpoint loops run: variables become indexes into a flat []Const frame,
// atoms become (predicate, slot-or-constant) patterns, and the nested-loops
// join walks relation ids directly. It computes exactly what the generic
// path (db.MatchSeq over ast.Binding) computes — a cross-check property
// test and the NoCompile ablation keep it honest — while avoiding map
// lookups and per-candidate atom re-verification in the hot loop.

// unset marks an unbound slot in a frame. It lies outside every constant
// range (integers, symbols, frozen constants, nulls are all > math.MinInt64).
const unset = ast.Const(math.MinInt64)

// compiledAtom is an atom over variable slots: args[i] ≥ 0 is a slot index,
// args[i] < 0 means constant consts[i].
type compiledAtom struct {
	pred   string
	args   []int
	consts []ast.Const
}

// compiledRule is a rule lowered to slots, body in evaluation order.
type compiledRule struct {
	nVars int
	head  compiledAtom
	body  []compiledAtom
	neg   []compiledAtom
}

// compileRule lowers r (whose body is already in the desired evaluation
// order) into slot form.
func compileRule(r ast.Rule) *compiledRule {
	slots := map[string]int{}
	slotOf := func(v string) int {
		if i, ok := slots[v]; ok {
			return i
		}
		i := len(slots)
		slots[v] = i
		return i
	}
	lower := func(a ast.Atom) compiledAtom {
		ca := compiledAtom{
			pred:   a.Pred,
			args:   make([]int, len(a.Args)),
			consts: make([]ast.Const, len(a.Args)),
		}
		for i, t := range a.Args {
			if t.IsVar {
				ca.args[i] = slotOf(t.Name)
			} else {
				ca.args[i] = -1
				ca.consts[i] = t.Val
			}
		}
		return ca
	}
	cr := &compiledRule{}
	// Body first so every head variable is already slotted (range
	// restriction guarantees it appears there).
	for _, a := range r.Body {
		cr.body = append(cr.body, lower(a))
	}
	for _, a := range r.NegBody {
		cr.neg = append(cr.neg, lower(a))
	}
	cr.head = lower(r.Head)
	cr.nVars = len(slots)
	return cr
}

// frame is the reusable evaluation state for one compiled rule.
type frame struct {
	vals []ast.Const
	// scratch buffers for index lookups and head grounding.
	cols []int
	key  []ast.Const
	out  []ast.Const
}

func newFrame(cr *compiledRule) *frame {
	maxArity := len(cr.head.args)
	for _, a := range cr.body {
		if len(a.args) > maxArity {
			maxArity = len(a.args)
		}
	}
	return &frame{
		vals: make([]ast.Const, cr.nVars),
		cols: make([]int, 0, maxArity),
		key:  make([]ast.Const, 0, maxArity),
		out:  make([]ast.Const, maxArity),
	}
}

// fire evaluates the rule against d with per-position round windows,
// passing each successful head instantiation to emit (which reports
// whether the fact was new). It mirrors fireConstraints; the emit
// indirection lets the parallel evaluator collect derivations into local
// buffers instead of inserting immediately. A non-nil stop is polled after
// every new emission and aborts the enumeration when it reports true — the
// hook the derived-fact budget uses to halt mid-round.
func (cr *compiledRule) fire(d *db.Database, windows []db.RoundWindow, stats *Stats, emit func(pred string, args []ast.Const) bool, stop func() bool) {
	f := newFrame(cr)
	for i := range f.vals {
		f.vals[i] = unset
	}
	cr.join(d, windows, 0, f, stats, nil, emit, stop)
}

// shardScan carries one sharded task's state through the join: the outer
// atom's ownership view and the task's shard select which position-0 tuples
// this task enumerates, and the captured ids of the first one or two join
// positions become the emission's merge key (see roundEnv.runRound), which
// is how the sharded commit reconstructs the sequential emission order
// byte for byte.
type shardScan struct {
	view  db.ShardView
	shard uint8
	// tagInner marks a swapped (delta-first) execution: position 0 is the
	// delta atom and position 1 the plan's original outer, so the merge key
	// is (id1, id0) — plan-outer major, delta minor — matching the order the
	// unswapped sequential join would have emitted in.
	tagInner bool
	id0, id1 int32
}

// fireShard is fire for one shard slice of a variant: position-0 tuples not
// owned by sc.shard are skipped, and each emission is tagged with its merge
// key. Rules with empty bodies (ground heads) run on shard 0 only.
func (cr *compiledRule) fireShard(d *db.Database, windows []db.RoundWindow, stats *Stats, sc *shardScan, emit func(k1, k2 int32, pred string, args []ast.Const) bool, stop func() bool) {
	if len(cr.body) == 0 && sc.shard != 0 {
		return
	}
	f := newFrame(cr)
	for i := range f.vals {
		f.vals[i] = unset
	}
	em := func(pred string, args []ast.Const) bool {
		if sc.tagInner {
			return emit(sc.id1, sc.id0, pred, args)
		}
		return emit(sc.id0, 0, pred, args)
	}
	cr.join(d, windows, 0, f, stats, sc, em, stop)
}

// join returns false when the enumeration was aborted by stop. A non-nil sc
// restricts position 0 to the tuples owned by sc's shard and records the
// merge-key ids as the enumeration binds them.
func (cr *compiledRule) join(d *db.Database, windows []db.RoundWindow, pos int, f *frame, stats *Stats, sc *shardScan, emit func(string, []ast.Const) bool, stop func() bool) bool {
	if pos == len(cr.body) {
		// Negated literals: all slots bound by safety.
		for _, n := range cr.neg {
			args := f.out[:len(n.args)]
			for i, s := range n.args {
				if s < 0 {
					args[i] = n.consts[i]
				} else {
					args[i] = f.vals[s]
				}
			}
			if d.HasTuple(n.pred, args) {
				return true
			}
		}
		stats.Firings++
		args := f.out[:len(cr.head.args)]
		for i, s := range cr.head.args {
			if s < 0 {
				args[i] = cr.head.consts[i]
			} else {
				args[i] = f.vals[s]
			}
		}
		if emit(cr.head.pred, args) {
			stats.Added++
			if stop != nil && stop() {
				return false
			}
		}
		return true
	}

	a := cr.body[pos]
	rel := d.Relation(a.pred)
	if rel == nil || rel.Arity() != len(a.args) {
		return true
	}
	w := windows[pos]

	// Collect bound columns (constants and already-bound slots). The
	// shared scratch is only used up to the probe below, so deeper
	// recursion levels may freely reuse it.
	f.cols = f.cols[:0]
	f.key = f.key[:0]
	for i, s := range a.args {
		if s < 0 {
			f.cols = append(f.cols, i)
			f.key = append(f.key, a.consts[i])
		} else if f.vals[s] != unset {
			f.cols = append(f.cols, i)
			f.key = append(f.key, f.vals[s])
		}
	}

	try := func(id int32) bool {
		if !w.Contains(rel.RoundOf(int(id))) {
			return true
		}
		if sc != nil {
			// Ownership and merge-key capture, after the window check: ids a
			// window admits are always covered by the views and assignments
			// frozen at the round boundary (stamps are non-decreasing).
			if pos == 0 {
				if sc.view.Owner(id) != sc.shard {
					return true
				}
				sc.id0 = id
			} else if pos == 1 && sc.tagInner {
				sc.id1 = id
			}
		}
		tuple := rel.Tuple(int(id))
		var boundArr [16]int
		boundSlots := boundArr[:0]
		ok := true
		for i, s := range a.args {
			if s < 0 {
				if tuple[i] != a.consts[i] {
					ok = false
					break
				}
				continue
			}
			if v := f.vals[s]; v != unset {
				if v != tuple[i] {
					ok = false
					break
				}
				continue
			}
			f.vals[s] = tuple[i]
			boundSlots = append(boundSlots, s)
		}
		cont := true
		if ok {
			cont = cr.join(d, windows, pos+1, f, stats, sc, emit, stop)
		}
		for _, s := range boundSlots {
			f.vals[s] = unset
		}
		return cont
	}

	switch {
	case len(f.cols) == 0:
		// Nothing bound: scan the window's contiguous id-range directly.
		// Round stamps are non-decreasing with insertion order, so the ids a
		// window [Min, Max] admits are exactly [LenAt(Min-1), LenAt(Max)) —
		// a delta window enumerates only the delta instead of scanning the
		// whole relation and filtering. Bounds are captured once; tuples
		// inserted mid-scan carry the current round, beyond every window.
		lo := 0
		if w.Min > 0 {
			lo = rel.LenAt(w.Min - 1)
		}
		n := rel.LenAt(w.Max)
		for id := lo; id < n; id++ {
			if !try(int32(id)) {
				return false
			}
		}
	case len(f.cols) == len(a.args):
		// Fully bound: a single dedup-table probe, no index needed.
		if id, ok := rel.LookupID(f.key); ok {
			return try(id)
		}
	default:
		it := rel.ProbeIter(f.cols, f.key, w.Max)
		for id, ok := it.Next(); ok; id, ok = it.Next() {
			if !try(id) {
				return false
			}
		}
	}
	return true
}
