package equivopt

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestCandidatesExample18(t *testing.T) {
	// Rule: G(x,z) :- G(x,y), G(y,z), A(y,w).
	// The heuristic must propose G(y,z) -> A(y,w) (and G(x,y) -> A(y,w) is
	// excluded by property 2? No: w appears only in A(y,w), which IS the
	// RHS, so both LHS choices qualify).
	r := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z), A(y, w).`).Rules[0]
	cands := Candidates(r, 3)
	var found bool
	for _, c := range cands {
		if c.TGD.String() == "G(y, z) -> A(y, w)." {
			found = true
			if len(c.AtomIndexes) != 1 || c.AtomIndexes[0] != 2 {
				t.Fatalf("wrong atom indexes: %v", c.AtomIndexes)
			}
		}
	}
	if !found {
		t.Fatalf("G(y,z) -> A(y,w) not proposed; got %v", cands)
	}
}

func TestCandidatesProperties(t *testing.T) {
	// Property 3: a candidate must not delete atoms holding head variables
	// that appear nowhere else.
	r := parser.MustParseProgram(`G(x, z) :- G(x, y), B(y, z).`).Rules[0]
	for _, c := range Candidates(r, 3) {
		for _, a := range c.TGD.Rhs {
			if a.HasVar("z") {
				t.Fatalf("candidate deletes the only binding of head variable z: %v", c.TGD)
			}
		}
	}

	// Property 2: if w occurs in two atoms, a candidate whose RHS contains
	// only one of them is rejected.
	r2 := parser.MustParseProgram(`G(x, z) :- G(x, z), A(z, w), B(w).`).Rules[0]
	for _, c := range Candidates(r2, 1) {
		for _, a := range c.TGD.Rhs {
			if a.HasVar("w") {
				t.Fatalf("single-atom RHS with split variable w accepted: %v", c.TGD)
			}
		}
	}
	// With MaxRHS ≥ 2 the pair {A(z,w), B(w)} is allowed.
	var pairFound bool
	for _, c := range Candidates(r2, 2) {
		if len(c.TGD.Rhs) == 2 {
			pairFound = true
		}
	}
	if !pairFound {
		t.Fatal("pair candidate not generated")
	}
}

func TestCandidatesRequireHeadPredicateLHS(t *testing.T) {
	// No body atom shares the head predicate: no candidates (property 1).
	r := parser.MustParseProgram(`H(x, z) :- A(x, y), B(y, z), C(y).`).Rules[0]
	if cands := Candidates(r, 3); len(cands) != 0 {
		t.Fatalf("candidates without head-predicate LHS: %v", cands)
	}
}

func TestOptimizeExample18(t *testing.T) {
	// P1 of Example 11/18: the atom A(y,w) in the recursive rule is
	// redundant under equivalence (via tgd G(x,z) -> A(x,w)) though not
	// under uniform equivalence.
	p1 := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	opt, removals, err := Optimize(p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	if !opt.Equal(want) {
		t.Fatalf("optimized:\n%vwant:\n%v", opt, want)
	}
	if len(removals) != 1 || removals[0].Atoms[0].String() != "A(y, w)" {
		t.Fatalf("removals = %+v", removals)
	}
	// Sanity: not removable under uniform equivalence.
	eq, err := chase.UniformlyEquivalent(p1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Fatal("Example 18 programs should NOT be uniformly equivalent")
	}
}

func TestOptimizeExample19(t *testing.T) {
	// Example 19: both G(y,w) and C(w) are redundant in the recursive rule,
	// witnessed by the tgd G(y,z) -> G(y,w) ∧ C(w).
	p1 := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(z).
		G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).
	`)
	opt, removals, err := Optimize(p1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	if !opt.Equal(want) {
		t.Fatalf("optimized:\n%vwant:\n%v", opt, want)
	}
	if len(removals) == 0 {
		t.Fatal("no removals recorded")
	}
}

func TestOptimizeLeavesTightProgramsAlone(t *testing.T) {
	for _, src := range []string{
		`G(x, z) :- A(x, z).
		 G(x, z) :- G(x, y), G(y, z).`,
		`G(x, z) :- A(x, z).
		 G(x, z) :- A(x, y), G(y, z).`,
	} {
		p := parser.MustParseProgram(src)
		opt, removals, err := Optimize(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Equal(p) || len(removals) != 0 {
			t.Fatalf("tight program modified:\n%v", opt)
		}
	}
}

// equivalentOnRandomEDBs samples random EDBs and checks P1(d) == P2(d);
// this is the soundness property equivalence optimization must preserve.
func equivalentOnRandomEDBs(t *testing.T, p1, p2 *ast.Program, preds []ast.PredicateSig, trials int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	idb := p1.IDBPredicates()
	for trial := 0; trial < trials; trial++ {
		d := db.New()
		n := 2 + rng.Intn(5)
		for _, sig := range preds {
			if idb[sig.Name] {
				continue
			}
			for k := 0; k < 1+rng.Intn(6); k++ {
				args := make([]ast.Const, sig.Arity)
				for i := range args {
					args[i] = ast.Int(int64(rng.Intn(n)))
				}
				d.AddTuple(sig.Name, args)
			}
		}
		o1 := eval.MustEval(p1, d)
		o2 := eval.MustEval(p2, d)
		if !o1.Equal(o2) {
			t.Fatalf("trial %d: outputs differ on EDB\n%s\nP1 out:\n%s\nP2 out:\n%s", trial, d, o1, o2)
		}
	}
}

func TestOptimizedProgramsEquivalentOnRandomEDBs(t *testing.T) {
	cases := []string{
		`G(x, z) :- A(x, z).
		 G(x, z) :- G(x, y), G(y, z), A(y, w).`,
		`G(x, z) :- A(x, z), C(z).
		 G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).`,
	}
	for i, src := range cases {
		p := parser.MustParseProgram(src)
		opt, _, err := Optimize(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		equivalentOnRandomEDBs(t, p, opt, p.Predicates(), 25, int64(100+i))
	}
}

func TestPipelineRejectsWhenPreliminaryFails(t *testing.T) {
	// Like Example 18 but the init rule does not guarantee the tgd: with
	// init rule G(x,z) :- B(x,z), the preliminary DB need not satisfy
	// G(x,z) -> A(x,w), so A(y,w) must NOT be removed. Indeed the programs
	// are inequivalent: EDB {B(1,2), B(2,3)} gives G(1,3) only without the
	// guard.
	p := parser.MustParseProgram(`
		G(x, z) :- B(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	opt, removals, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 0 || !opt.Equal(p) {
		t.Fatalf("unsound removal performed: %+v\n%v", removals, opt)
	}
}

func TestPipelineRejectsWhenPreservationFails(t *testing.T) {
	// G is also fed by rule G(x,z) :- D(x,z): chained G atoms built from D
	// have no A witness, so preservation of G(x,z) -> A(x,w) fails... but
	// condition (3′) also fails (the D-init rule gives no A). Either way,
	// no removal may happen, and the programs really are inequivalent.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- D(x, z).
		G(x, z) :- G(x, y), G(y, z), A(y, w).
	`)
	opt, removals, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(removals) != 0 || !opt.Equal(p) {
		t.Fatalf("unsound removal performed: %+v\n%v", removals, opt)
	}
	// Witness of inequivalence for the would-be-optimized program.
	p2 := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- D(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	d := db.FromFacts([]ast.GroundAtom{
		ast.NewGroundAtom("D", ast.Int(1), ast.Int(2)),
		ast.NewGroundAtom("D", ast.Int(2), ast.Int(3)),
	})
	o1 := eval.MustEval(p, d)
	o2 := eval.MustEval(p2, d)
	if o1.Equal(o2) {
		t.Fatal("expected witness EDB to distinguish the programs")
	}
}

func TestOptimizeNegationRejected(t *testing.T) {
	p := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, _, err := Optimize(p, Options{}); err == nil {
		t.Fatal("negation accepted")
	}
}

func TestEnumerateSubsets(t *testing.T) {
	subs := enumerateSubsets(3, 2)
	// {0},{1},{2},{0,1},{0,2},{1,2}
	if len(subs) != 6 {
		t.Fatalf("enumerateSubsets(3,2) = %v", subs)
	}
	if len(subs[0]) != 1 || len(subs[5]) != 2 {
		t.Fatalf("ordering wrong: %v", subs)
	}
	if got := enumerateSubsets(0, 3); len(got) != 0 {
		t.Fatalf("enumerateSubsets(0,3) = %v", got)
	}
}

func TestTwoAtomLHSCandidates(t *testing.T) {
	// G(x,z) :- G(x,y), G(y,z), C(y): the witness tgd needs both G atoms on
	// the left (C(y) relates to the JOIN point y, visible only when both
	// atoms are present), as in Example 15's shape.
	r := parser.MustParseProgram(`G(x, z) :- G(x, y), G(y, z), C(y).`).Rules[0]
	single := CandidatesLHS(r, 3, 1)
	double := CandidatesLHS(r, 3, 2)
	if len(double) <= len(single) {
		t.Fatalf("maxLHS=2 added no candidates: %d vs %d", len(double), len(single))
	}
	found := false
	for _, c := range double {
		if c.TGD.String() == "G(x, y), G(y, z) -> C(y)." {
			found = true
		}
	}
	if !found {
		t.Fatalf("two-atom-LHS tgd not proposed; got %v", double)
	}
}

func TestOptimizeWithTwoAtomLHS(t *testing.T) {
	// The init rule guarantees C at both G endpoints, so C(y) at the join
	// point is redundant under equivalence. The single-atom heuristic
	// already finds this via G(x,y) -> C(y); MaxLHS=2 must find it too
	// (with either witness) and stay sound.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(x), C(z).
		G(x, z) :- G(x, y), G(y, z), C(y).
	`)
	want := parser.MustParseProgram(`
		G(x, z) :- A(x, z), C(x), C(z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	for _, maxLHS := range []int{1, 2} {
		opt, removals, err := Optimize(p, Options{MaxLHS: maxLHS})
		if err != nil {
			t.Fatal(err)
		}
		if len(removals) != 1 || !opt.Equal(want) {
			t.Fatalf("MaxLHS=%d: removals %+v\n%v", maxLHS, removals, opt)
		}
		equivalentOnRandomEDBs(t, p, opt, p.Predicates(), 20, int64(300+maxLHS))
	}
}

func TestTwoAtomLHSStaysSound(t *testing.T) {
	// MaxLHS=2 widens the candidate space; the pipeline must still refuse
	// every unsound deletion. These programs have NO redundant atoms.
	for i, src := range []string{
		`G(x, z) :- B(x, z).
		 G(x, z) :- G(x, y), G(y, z), C(y).`,
		`G(x, z) :- A(x, z).
		 G(x, z) :- G(x, y), G(y, z), A(y, y).`,
	} {
		p := parser.MustParseProgram(src)
		opt, removals, err := Optimize(p, Options{MaxLHS: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(removals) != 0 || !opt.Equal(p) {
			t.Fatalf("case %d: unsound removal %+v\n%v", i, removals, opt)
		}
	}
}
