// Package equivopt implements Sections X and XI of the paper: optimization
// under plain equivalence (not uniform equivalence). The equivalence
// problem is undecidable, so this is a sound-but-incomplete procedure: it
// finds a tuple-generating dependency τ witnessing that deleting certain
// body atoms preserves equivalence, by establishing the Section X
// conditions
//
//	(1)  SAT(T) ∩ M(P₁) ⊆ M(P₂)          (chase, Section VIII)
//	(2)  P₁ preserves T                   (Fig. 3, Section IX)
//	(3′) the preliminary DB of P₁ satisfies T   (Section X)
//
// which together imply P₂ ⊑ P₁; the converse P₁ ⊑ P₂ holds a priori since
// P₂'s rule bodies are subsets of P₁'s. Candidate tgds come from the
// Section XI syntactic heuristic (properties 1–3). Every sub-procedure may
// diverge on embedded tgds, so the pipeline takes a budget and simply skips
// candidates that come back Unknown — the paper's "spend a predetermined
// amount of time".
package equivopt

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
	"repro/internal/preserve"
)

// Options configures the optimizer.
type Options struct {
	// MaxRHS bounds the number of atoms a single candidate tgd may delete.
	// Default 3 (Example 19 needs 2).
	MaxRHS int
	// MaxLHS bounds the number of body atoms forming a candidate tgd's
	// left-hand side. The Section XI heuristic uses 1 (the default); 2
	// admits tgds like Example 15's G(x,y) ∧ G(y,z) → A(y,w), at the cost
	// of more combinations in every downstream check.
	MaxLHS int
	// Budget bounds each chase-based sub-procedure.
	Budget chase.Budget
	// MaxSweeps bounds full passes over the program. Default 4.
	MaxSweeps int
	// PrelimDepth is the maximum unfolding depth probed for condition (3′)
	// (Section X's generalized preliminary DB). Depth 1 — the plain
	// initialization rules — is always tried first; deeper preliminary DBs
	// are probed only when shallower ones fail. Default 1.
	PrelimDepth int
	// Context, when non-nil, cancels the optimization: it is observed
	// before every candidate pipeline and threaded into all three Section X
	// condition checks, so a deadline aborts with an error wrapping
	// eval.ErrCanceled. Cancellation never yields a partially applied
	// program — Optimize returns the removals accepted so far with the
	// error.
	Context context.Context
}

func (o Options) withDefaults() Options {
	if o.MaxRHS == 0 {
		o.MaxRHS = 3
	}
	if o.MaxLHS == 0 {
		o.MaxLHS = 1
	}
	if o.MaxSweeps == 0 {
		o.MaxSweeps = 4
	}
	if o.PrelimDepth == 0 {
		o.PrelimDepth = 1
	}
	return o
}

// Candidate is a tgd proposed by the Section XI heuristic together with the
// body-atom indexes it would delete.
type Candidate struct {
	TGD ast.TGD
	// AtomIndexes are the positions (in the rule body) of the RHS atoms,
	// ascending.
	AtomIndexes []int
}

// Removal records one successful pipeline application.
type Removal struct {
	// RuleIndex is the rule's position in the program at the time of
	// removal.
	RuleIndex int
	// Atoms are the deleted body atoms.
	Atoms []ast.Atom
	// TGD is the dependency that witnessed the redundancy.
	TGD ast.TGD
}

// Candidates generates the candidate tgds for rule r following the three
// syntactic properties of Section XI:
//
//  1. the LHS consists of body atoms whose predicate equals the head's
//     (the paper's heuristic uses a single atom; see CandidatesLHS);
//  2. a variable appearing only in the RHS must have all its body
//     occurrences inside the RHS;
//  3. variables appearing only in the RHS must not occur in the head.
//
// The RHS is the candidate set of atoms to delete (size 1..maxRHS, never
// including any LHS atom).
func Candidates(r ast.Rule, maxRHS int) []Candidate {
	return CandidatesLHS(r, maxRHS, 1)
}

// CandidatesLHS is Candidates with a configurable LHS size: maxLHS = 2
// additionally proposes tgds with two head-predicate atoms on the left,
// like Example 15's G(x,y) ∧ G(y,z) → A(y,w).
func CandidatesLHS(r ast.Rule, maxRHS, maxLHS int) []Candidate {
	var headPredIdx []int
	for i, a := range r.Body {
		if a.Pred == r.Head.Pred {
			headPredIdx = append(headPredIdx, i)
		}
	}
	headVars := make(map[string]bool)
	r.Head.CollectVars(headVars)

	// occurrences[v] = body atom indexes containing v.
	occurrences := make(map[string][]int)
	for i, a := range r.Body {
		for _, v := range a.Vars() {
			occurrences[v] = append(occurrences[v], i)
		}
	}

	var out []Candidate
	seen := make(map[string]bool)
	n := len(r.Body)

	// Enumerate LHS subsets of head-predicate atoms, size 1..maxLHS.
	lhsSubsets := enumerateSubsets(len(headPredIdx), maxLHS)
	for _, lsub := range lhsSubsets {
		lhs := make([]int, len(lsub))
		inLHS := make(map[int]bool, len(lsub))
		lhsVars := make(map[string]bool)
		for k, j := range lsub {
			lhs[k] = headPredIdx[j]
			inLHS[headPredIdx[j]] = true
			r.Body[headPredIdx[j]].CollectVars(lhsVars)
		}
		var rest []int
		for i := 0; i < n; i++ {
			if !inLHS[i] {
				rest = append(rest, i)
			}
		}
		subsets := enumerateSubsets(len(rest), maxRHS)
		for _, sub := range subsets {
			rhs := make([]int, len(sub))
			inRHS := make(map[int]bool, len(sub))
			for k, j := range sub {
				rhs[k] = rest[j]
				inRHS[rest[j]] = true
			}
			if !checkProperties(r, rhs, inRHS, lhsVars, headVars, occurrences) {
				continue
			}
			// Deleting the RHS atoms must leave a well-formed rule.
			cand := r
			del := append([]int(nil), rhs...)
			sort.Sort(sort.Reverse(sort.IntSlice(del)))
			for _, i := range del {
				cand = cand.WithoutBodyAtom(i)
			}
			if cand.Validate() != nil {
				continue
			}
			tgd := ast.TGD{
				Lhs: cloneAtoms(r.Body, lhs),
				Rhs: cloneAtoms(r.Body, rhs),
			}
			key := tgd.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			sorted := append([]int(nil), rhs...)
			sort.Ints(sorted)
			out = append(out, Candidate{TGD: tgd, AtomIndexes: sorted})
		}
	}
	return out
}

// checkProperties enforces Section XI properties 2 and 3 for the candidate
// with the given LHS variable set and RHS atom set.
func checkProperties(r ast.Rule, rhs []int, inRHS map[int]bool, lhsVars, headVars map[string]bool, occurrences map[string][]int) bool {
	for _, i := range rhs {
		for _, v := range r.Body[i].Vars() {
			if lhsVars[v] {
				continue // appears in the LHS: universally quantified
			}
			// v appears only in the RHS of the tgd (it is existential
			// there): it must not occur in the head (prop. 3), and all of
			// its body occurrences must lie inside the RHS (prop. 2).
			if headVars[v] {
				return false
			}
			for _, occ := range occurrences[v] {
				if !inRHS[occ] {
					return false
				}
			}
		}
	}
	return true
}

// enumerateSubsets returns all non-empty subsets of {0..n-1} of size ≤ max,
// ordered by size then lexicographically.
func enumerateSubsets(n, max int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start, size int)
	rec = func(start, size int) {
		if size == 0 {
			s := make([]int, len(cur))
			copy(s, cur)
			out = append(out, s)
			return
		}
		for i := start; i <= n-size; i++ {
			cur = append(cur, i)
			rec(i+1, size-1)
			cur = cur[:len(cur)-1]
		}
	}
	for size := 1; size <= max && size <= n; size++ {
		rec(0, size)
	}
	return out
}

func cloneAtoms(body []ast.Atom, idx []int) []ast.Atom {
	sorted := append([]int(nil), idx...)
	sort.Ints(sorted)
	out := make([]ast.Atom, len(sorted))
	for k, i := range sorted {
		out[k] = body[i].Clone()
	}
	return out
}

// TryCandidate runs the Section X pipeline for one candidate on rule
// ruleIdx of p. It returns the optimized program when all three conditions
// hold, or nil when the candidate is rejected or Unknown. opts supplies
// the chase budget and the preliminary-DB depth range for condition (3′).
// It is the one-shot form of the session-based pipeline Optimize drives:
// callers probing many candidates against the same program should build
// the sessions once.
func TryCandidate(p *ast.Program, ruleIdx int, c Candidate, opts Options) (*ast.Program, error) {
	ck, err := chase.NewChecker(p)
	if err != nil {
		return nil, err
	}
	if opts.Context != nil {
		ck.SetContext(opts.Context)
	}
	ps, err := preserve.NewSession(p)
	if err != nil {
		return nil, err
	}
	return tryCandidate(ck, ps, p, ruleIdx, c, opts)
}

// tryCandidate is the Section X pipeline over pre-built sessions for p: ck
// checks condition (1) through the prepared [P,T] chase, ps checks (2) and
// (3′) through the prepared Pⁿ and its cached unfoldings.
func tryCandidate(ck *chase.Checker, ps *preserve.Session, p *ast.Program, ruleIdx int, c Candidate, opts Options) (*ast.Program, error) {
	opts = opts.withDefaults()
	if err := eval.CtxErr(opts.Context); err != nil {
		return nil, err
	}
	budget := opts.Budget
	// Build P2: p with the candidate atoms removed from the rule.
	cand := p.Rules[ruleIdx]
	del := append([]int(nil), c.AtomIndexes...)
	sort.Sort(sort.Reverse(sort.IntSlice(del)))
	for _, i := range del {
		cand = cand.WithoutBodyAtom(i)
	}
	if err := cand.Validate(); err != nil {
		return nil, nil
	}
	p2 := p.ReplaceRule(ruleIdx, cand)
	T := []ast.TGD{c.TGD}

	// (1) SAT(T) ∩ M(P1) ⊆ M(P2).
	v, err := ck.SATModelsContained(T, p2, budget)
	if err != nil || v != chase.Yes {
		return nil, err
	}
	// (2) P1 preserves T (k-round non-recursive preservation suffices);
	// probe increasing depths like condition (3′) below.
	ok2 := false
	for depth := 1; depth <= opts.PrelimDepth && !ok2; depth++ {
		v, _, err = ps.Check(T, preserve.Options{Depth: depth, Budget: budget, Context: opts.Context})
		if err != nil {
			return nil, err
		}
		ok2 = v == chase.Yes
	}
	if !ok2 {
		return nil, nil
	}
	// (3′) the preliminary DB of P1 satisfies T; probe increasing
	// unfolding depths (Section X's closing remark).
	for depth := 1; depth <= opts.PrelimDepth; depth++ {
		v, _, err = ps.CheckPreliminary(T, preserve.Options{Depth: depth, Budget: budget, Context: opts.Context})
		if err != nil {
			return nil, err
		}
		if v == chase.Yes {
			return p2, nil
		}
	}
	return nil, nil
}

// Optimize runs the Section XI optimization over the whole program:
// repeatedly generate candidate tgds for each rule and apply the first
// candidate whose pipeline succeeds, until a sweep makes no progress. The
// result is equivalent (as a query over EDBs) to p, though generally not
// uniformly equivalent.
func Optimize(p *ast.Program, opts Options) (*ast.Program, []Removal, error) {
	opts = opts.withDefaults()
	if p.HasNegation() {
		return nil, nil, fmt.Errorf("equivopt: pure Datalog required")
	}
	cur := p.Clone()
	// One containment session and one preservation session serve every
	// candidate probed against the current program. When a candidate is
	// applied both sessions are delta-derived rather than rebuilt: the
	// containment session keeps surviving verdicts and frozen bodies, the
	// preservation session patches its per-depth unfoldings and transfers
	// combination-option tables across the one-rule weakening.
	ck, err := chase.NewChecker(cur)
	if err != nil {
		return nil, nil, err
	}
	if opts.Context != nil {
		ck.SetContext(opts.Context)
	}
	ps, err := preserve.NewSession(cur)
	if err != nil {
		return nil, nil, err
	}
	var removals []Removal
	for sweep := 0; sweep < opts.MaxSweeps; sweep++ {
		progress := false
		for i := 0; i < len(cur.Rules); i++ {
			for {
				applied := false
				for _, c := range CandidatesLHS(cur.Rules[i], opts.MaxRHS, opts.MaxLHS) {
					p2, err := tryCandidate(ck, ps, cur, i, c, opts)
					if err != nil {
						return nil, removals, err
					}
					if p2 == nil {
						continue
					}
					removals = append(removals, Removal{
						RuleIndex: i,
						Atoms:     cloneAtoms(cur.Rules[i].Body, c.AtomIndexes),
						TGD:       c.TGD,
					})
					cur = p2
					// The applied candidate replaced rule i by a body-subset
					// of itself — exactly the weakening delta the containment
					// layer can patch: the session keeps its plan, frozen
					// bodies and every verdict the weakening cannot flip.
					nr := cur.Rules[i]
					if ck, err = ck.Derive(chase.Delta{RuleIndex: i, NewRule: &nr}); err != nil {
						return nil, removals, err
					}
					if ps, err = ps.Derive(i, &nr); err != nil {
						return nil, removals, err
					}
					applied = true
					progress = true
					break
				}
				if !applied {
					break
				}
			}
		}
		if !progress {
			break
		}
	}
	return cur, removals, nil
}
