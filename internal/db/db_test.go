package db

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ast"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

// example2EDB is the EDB of Example 2: {A(1,2), A(1,4), A(4,1)}.
func example2EDB() *Database {
	return FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)})
}

func TestAddHasLen(t *testing.T) {
	d := New()
	if !d.Add(ga("A", 1, 2)) {
		t.Fatal("first Add returned false")
	}
	if d.Add(ga("A", 1, 2)) {
		t.Fatal("duplicate Add returned true")
	}
	if !d.Has(ga("A", 1, 2)) || d.Has(ga("A", 2, 1)) {
		t.Fatal("Has wrong")
	}
	if d.Has(ga("B", 1, 2)) {
		t.Fatal("Has on absent predicate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestFactsSorted(t *testing.T) {
	d := New()
	d.Add(ga("B", 7))
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 3, 4))
	got := d.Facts()
	want := []ast.GroundAtom{ga("A", 1, 2), ga("A", 3, 4), ga("B", 7)}
	if len(got) != len(want) {
		t.Fatalf("Facts = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Facts[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(d.Preds(), []string{"A", "B"}) {
		t.Fatalf("Preds = %v", d.Preds())
	}
}

func TestCloneIndependence(t *testing.T) {
	d := example2EDB()
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(ga("A", 9, 9))
	if d.Has(ga("A", 9, 9)) {
		t.Fatal("clone shares storage")
	}
	if d.Equal(c) {
		t.Fatal("Equal after divergence")
	}
}

func TestContainsAndAddAll(t *testing.T) {
	d := example2EDB()
	e := FromFacts([]ast.GroundAtom{ga("A", 1, 2)})
	if !d.Contains(e) || e.Contains(d) {
		t.Fatal("Contains wrong")
	}
	added := e.AddAll(d)
	if added != 2 || !e.Equal(d) {
		t.Fatalf("AddAll added %d, equal=%v", added, e.Equal(d))
	}
}

func TestRounds(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 1)) // round 0
	r1 := d.BeginRound()
	if r1 != 1 {
		t.Fatalf("BeginRound = %d", r1)
	}
	d.Add(ga("A", 2, 2)) // round 1
	rel := d.Relation("A")
	if rel.RoundOf(0) != 0 || rel.RoundOf(1) != 1 {
		t.Fatalf("round stamps: %d %d", rel.RoundOf(0), rel.RoundOf(1))
	}
	// Clone preserves stamps.
	c := d.Clone()
	if c.Relation("A").RoundOf(1) != 1 || c.Round() != 1 {
		t.Fatal("clone lost round stamps")
	}
}

func TestConstsAndMaxGenerated(t *testing.T) {
	d := New()
	d.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(3), ast.FrozenConst(7)}})
	d.Add(ast.GroundAtom{Pred: "B", Args: []ast.Const{ast.NullConst(2)}})
	set := d.Consts()
	if len(set) != 3 {
		t.Fatalf("Consts = %v", set)
	}
	mf, mn := d.MaxGeneratedIndexes()
	if mf != 7 || mn != 2 {
		t.Fatalf("MaxGeneratedIndexes = %d, %d", mf, mn)
	}
	empty := New()
	mf, mn = empty.MaxGeneratedIndexes()
	if mf != -1 || mn != -1 {
		t.Fatalf("MaxGeneratedIndexes on empty = %d, %d", mf, mn)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	d.Add(ga("A", 1))
}

func TestFormat(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("G", 4))
	want := "A(1, 2).\nG(4).\n"
	if got := d.String(); got != want {
		t.Fatalf("String = %q", got)
	}
}

func TestRelationMatchIDs(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 1, 3))
	d.Add(ga("A", 2, 3))
	rel := d.Relation("A")

	ids := rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)})
	if len(ids) != 2 {
		t.Fatalf("MatchIDs col0=1: %v", ids)
	}
	ids = rel.MatchIDs([]int{1}, []ast.Const{ast.Int(3)})
	if len(ids) != 2 {
		t.Fatalf("MatchIDs col1=3: %v", ids)
	}
	ids = rel.MatchIDs([]int{0, 1}, []ast.Const{ast.Int(2), ast.Int(3)})
	if len(ids) != 1 {
		t.Fatalf("MatchIDs both: %v", ids)
	}
	// Index extends incrementally as the relation grows.
	d.Add(ga("A", 1, 9))
	ids = rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)})
	if len(ids) != 3 {
		t.Fatalf("MatchIDs after growth: %v", ids)
	}
	// Empty column set means "scan".
	if got := rel.MatchIDs(nil, nil); got != nil {
		t.Fatalf("MatchIDs(nil) = %v", got)
	}
}

func TestLookupID(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 3, 4))
	rel := d.Relation("A")
	if id, ok := rel.LookupID([]ast.Const{ast.Int(3), ast.Int(4)}); !ok || id != 1 {
		t.Fatalf("LookupID(3,4) = %d, %v", id, ok)
	}
	if _, ok := rel.LookupID([]ast.Const{ast.Int(4), ast.Int(3)}); ok {
		t.Fatal("LookupID found absent tuple")
	}
	if _, ok := rel.LookupID([]ast.Const{ast.Int(1)}); ok {
		t.Fatal("LookupID with wrong arity")
	}
}

func TestProbeIterInsertionOrderAndWindow(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2)) // id 0, round 0
	d.Add(ga("A", 1, 3)) // id 1, round 0
	d.BeginRound()
	d.Add(ga("A", 1, 4)) // id 2, round 1
	rel := d.Relation("A")

	collect := func(maxRound int32) []int32 {
		it := rel.ProbeIter([]int{0}, []ast.Const{ast.Int(1)}, maxRound)
		var ids []int32
		for id, ok := it.Next(); ok; id, ok = it.Next() {
			ids = append(ids, id)
		}
		return ids
	}
	// Full window: all three, oldest first.
	if got := collect(1); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Fatalf("ProbeIter full = %v", got)
	}
	// A probe whose window excludes the newest round must not force an
	// index extension over it: freeze at round 0 boundary, then insert.
	d2 := New()
	d2.Add(ga("B", 1, 2))
	d2.EnsureIndex("B", []int{0})
	d2.BeginRound()
	d2.Add(ga("B", 1, 9))
	rel2 := d2.Relation("B")
	it := rel2.ProbeIter([]int{0}, []ast.Const{ast.Int(1)}, 0)
	var ids []int32
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		ids = append(ids, id)
	}
	// Only the frozen prefix is visible (the caller's window excludes the
	// current round anyway); a wider window extends and sees both.
	if !reflect.DeepEqual(ids, []int32{0}) {
		t.Fatalf("frozen probe = %v, want [0]", ids)
	}
	if got := rel2.MatchIDs([]int{0}, []ast.Const{ast.Int(1)}); len(got) != 2 {
		t.Fatalf("MatchIDs after growth = %v", got)
	}
}

func TestCloneCarriesIndexes(t *testing.T) {
	d := example2EDB()
	rel := d.Relation("A")
	// Build an index, then clone: the copy must answer probes over the
	// carried index and diverge independently.
	if got := rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)}); len(got) != 2 {
		t.Fatalf("MatchIDs = %v", got)
	}
	c := d.Clone()
	crel := c.Relation("A")
	if got := crel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)}); len(got) != 2 {
		t.Fatalf("clone MatchIDs = %v", got)
	}
	c.Add(ga("A", 1, 7))
	if got := crel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)}); len(got) != 3 {
		t.Fatalf("clone MatchIDs after insert = %v", got)
	}
	if got := rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)}); len(got) != 2 {
		t.Fatalf("original index mutated by clone insert: %v", got)
	}
}

// TestHashTablesAgainstScan cross-checks the open-addressing dedup table
// and column indexes against naive scans over many random tuples, driving
// table growth, collision chains, and multi-column keys.
func TestHashTablesAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := New()
	type key3 [3]int64
	inserted := make(map[key3]bool)
	var tuples []key3
	for i := 0; i < 5000; i++ {
		k := key3{int64(rng.Intn(40)), int64(rng.Intn(40)), int64(rng.Intn(40))}
		fresh := !inserted[k]
		got := d.Add(ga("R", k[0], k[1], k[2]))
		if got != fresh {
			t.Fatalf("Add(%v) = %v, want %v", k, got, fresh)
		}
		if fresh {
			inserted[k] = true
			tuples = append(tuples, k)
		}
	}
	rel := d.Relation("R")
	if rel.Len() != len(tuples) {
		t.Fatalf("Len = %d, want %d", rel.Len(), len(tuples))
	}
	// Dedup table finds every tuple at its insertion id.
	for id, k := range tuples {
		got, ok := rel.LookupID([]ast.Const{ast.Int(k[0]), ast.Int(k[1]), ast.Int(k[2])})
		if !ok || got != int32(id) {
			t.Fatalf("LookupID(%v) = %d, %v, want %d", k, got, ok, id)
		}
	}
	// Column indexes agree with a scan for random single- and two-column
	// probes.
	colSets := [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}}
	for trial := 0; trial < 200; trial++ {
		cols := colSets[rng.Intn(len(colSets))]
		key := make([]ast.Const, len(cols))
		for j := range key {
			key[j] = ast.Int(int64(rng.Intn(40)))
		}
		var want []int32
		for id, k := range tuples {
			match := true
			for j, c := range cols {
				if ast.Int(k[c]) != key[j] {
					match = false
					break
				}
			}
			if match {
				want = append(want, int32(id))
			}
		}
		got := rel.MatchIDs(cols, key)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("MatchIDs(%v, %v) = %v, want %v", cols, key, got, want)
		}
	}
}

func TestSummarize(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 2, 3))
	d.Add(ga("B", 1))
	s := d.Summarize()
	if s.Facts != 3 || s.Predicates["A"] != 2 || s.Predicates["B"] != 1 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Constants != 3 {
		t.Fatalf("Constants = %d", s.Constants)
	}
}
