package db

import (
	"reflect"
	"testing"

	"repro/internal/ast"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

// example2EDB is the EDB of Example 2: {A(1,2), A(1,4), A(4,1)}.
func example2EDB() *Database {
	return FromFacts([]ast.GroundAtom{ga("A", 1, 2), ga("A", 1, 4), ga("A", 4, 1)})
}

func TestAddHasLen(t *testing.T) {
	d := New()
	if !d.Add(ga("A", 1, 2)) {
		t.Fatal("first Add returned false")
	}
	if d.Add(ga("A", 1, 2)) {
		t.Fatal("duplicate Add returned true")
	}
	if !d.Has(ga("A", 1, 2)) || d.Has(ga("A", 2, 1)) {
		t.Fatal("Has wrong")
	}
	if d.Has(ga("B", 1, 2)) {
		t.Fatal("Has on absent predicate")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestFactsSorted(t *testing.T) {
	d := New()
	d.Add(ga("B", 7))
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 3, 4))
	got := d.Facts()
	want := []ast.GroundAtom{ga("A", 1, 2), ga("A", 3, 4), ga("B", 7)}
	if len(got) != len(want) {
		t.Fatalf("Facts = %v", got)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("Facts[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !reflect.DeepEqual(d.Preds(), []string{"A", "B"}) {
		t.Fatalf("Preds = %v", d.Preds())
	}
}

func TestCloneIndependence(t *testing.T) {
	d := example2EDB()
	c := d.Clone()
	if !d.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(ga("A", 9, 9))
	if d.Has(ga("A", 9, 9)) {
		t.Fatal("clone shares storage")
	}
	if d.Equal(c) {
		t.Fatal("Equal after divergence")
	}
}

func TestContainsAndAddAll(t *testing.T) {
	d := example2EDB()
	e := FromFacts([]ast.GroundAtom{ga("A", 1, 2)})
	if !d.Contains(e) || e.Contains(d) {
		t.Fatal("Contains wrong")
	}
	added := e.AddAll(d)
	if added != 2 || !e.Equal(d) {
		t.Fatalf("AddAll added %d, equal=%v", added, e.Equal(d))
	}
}

func TestRounds(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 1)) // round 0
	r1 := d.BeginRound()
	if r1 != 1 {
		t.Fatalf("BeginRound = %d", r1)
	}
	d.Add(ga("A", 2, 2)) // round 1
	rel := d.Relation("A")
	if rel.RoundOf(0) != 0 || rel.RoundOf(1) != 1 {
		t.Fatalf("round stamps: %d %d", rel.RoundOf(0), rel.RoundOf(1))
	}
	// Clone preserves stamps.
	c := d.Clone()
	if c.Relation("A").RoundOf(1) != 1 || c.Round() != 1 {
		t.Fatal("clone lost round stamps")
	}
}

func TestConstsAndMaxGenerated(t *testing.T) {
	d := New()
	d.Add(ast.GroundAtom{Pred: "A", Args: []ast.Const{ast.Int(3), ast.FrozenConst(7)}})
	d.Add(ast.GroundAtom{Pred: "B", Args: []ast.Const{ast.NullConst(2)}})
	set := d.Consts()
	if len(set) != 3 {
		t.Fatalf("Consts = %v", set)
	}
	mf, mn := d.MaxGeneratedIndexes()
	if mf != 7 || mn != 2 {
		t.Fatalf("MaxGeneratedIndexes = %d, %d", mf, mn)
	}
	empty := New()
	mf, mn = empty.MaxGeneratedIndexes()
	if mf != -1 || mn != -1 {
		t.Fatalf("MaxGeneratedIndexes on empty = %d, %d", mf, mn)
	}
}

func TestArityMismatchPanics(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	d.Add(ga("A", 1))
}

func TestFormat(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("G", 4))
	want := "A(1, 2).\nG(4).\n"
	if got := d.String(); got != want {
		t.Fatalf("String = %q", got)
	}
}

func TestRelationMatchIDs(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 1, 3))
	d.Add(ga("A", 2, 3))
	rel := d.Relation("A")

	ids := rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)})
	if len(ids) != 2 {
		t.Fatalf("MatchIDs col0=1: %v", ids)
	}
	ids = rel.MatchIDs([]int{1}, []ast.Const{ast.Int(3)})
	if len(ids) != 2 {
		t.Fatalf("MatchIDs col1=3: %v", ids)
	}
	ids = rel.MatchIDs([]int{0, 1}, []ast.Const{ast.Int(2), ast.Int(3)})
	if len(ids) != 1 {
		t.Fatalf("MatchIDs both: %v", ids)
	}
	// Index extends incrementally as the relation grows.
	d.Add(ga("A", 1, 9))
	ids = rel.MatchIDs([]int{0}, []ast.Const{ast.Int(1)})
	if len(ids) != 3 {
		t.Fatalf("MatchIDs after growth: %v", ids)
	}
	// Empty column set means "scan".
	if got := rel.MatchIDs(nil, nil); got != nil {
		t.Fatalf("MatchIDs(nil) = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 2))
	d.Add(ga("A", 2, 3))
	d.Add(ga("B", 1))
	s := d.Summarize()
	if s.Facts != 3 || s.Predicates["A"] != 2 || s.Predicates["B"] != 1 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.Constants != 3 {
		t.Fatalf("Constants = %d", s.Constants)
	}
}
