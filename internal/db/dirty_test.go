package db

import (
	"testing"

	"repro/internal/ast"
)

func gat(pred string, args ...int) ast.GroundAtom {
	g := ast.GroundAtom{Pred: pred}
	for _, a := range args {
		g.Args = append(g.Args, ast.Int(int64(a)))
	}
	return g
}

// TestDirtyTracksWrites: the dirty list holds exactly the predicates
// written since the last freeze, once each, across creation, copy-on-write
// adds, removes and count bumps.
func TestDirtyTracksWrites(t *testing.T) {
	d := New()
	d.Add(gat("A", 1))
	d.Add(gat("B", 1, 2))
	d.Add(gat("A", 2)) // second write to a private relation: no new entry
	if d.DirtyRelations() != 2 || d.RelationCount() != 2 {
		t.Fatalf("fresh db: dirty=%d rels=%d, want 2/2", d.DirtyRelations(), d.RelationCount())
	}

	snap := d.Freeze()
	if d.DirtyRelations() != 0 {
		t.Fatalf("frozen db still dirty: %d", d.DirtyRelations())
	}

	w := snap.Thaw()
	if w.DirtyRelations() != 0 {
		t.Fatalf("thawed copy born dirty: %d", w.DirtyRelations())
	}
	w.Add(gat("A", 3))
	if w.DirtyRelations() != 1 {
		t.Fatalf("one touched relation, dirty=%d", w.DirtyRelations())
	}
	w.Add(gat("A", 4))
	if w.DirtyRelations() != 1 {
		t.Fatalf("repeat write re-listed the relation: dirty=%d", w.DirtyRelations())
	}

	// Remove and BumpCount must also mark their copy-on-write transitions.
	w2 := snap.Thaw()
	w2.Remove(gat("B", 1, 2))
	if w2.DirtyRelations() != 1 {
		t.Fatalf("CoW remove: dirty=%d, want 1", w2.DirtyRelations())
	}
	w3 := snap.Thaw()
	w3.BumpCount("A", []ast.Const{ast.Int(1)}, 1)
	if w3.DirtyRelations() != 1 {
		t.Fatalf("CoW bump: dirty=%d, want 1", w3.DirtyRelations())
	}
}

// TestFreezeSkipsUntouchedRelations: re-freezing a thawed successor must
// leave untouched relations on the exact storage the previous snapshot
// shares — only written predicates get new relation objects.
func TestFreezeSkipsUntouchedRelations(t *testing.T) {
	d := New()
	for i := 0; i < 6; i++ {
		d.Add(gat(string(rune('A'+i)), i, i+1))
	}
	s1 := d.Freeze()

	w := s1.Thaw()
	w.Add(gat("A", 100, 101))
	if w.DirtyRelations() != 1 {
		t.Fatalf("dirty=%d, want 1", w.DirtyRelations())
	}
	s2 := w.Freeze()

	for i := 1; i < 6; i++ {
		p := string(rune('A' + i))
		if s1.DB().Relation(p) != s2.DB().Relation(p) {
			t.Fatalf("untouched relation %s was re-frozen into a new object", p)
		}
	}
	if s1.DB().Relation("A") == s2.DB().Relation("A") {
		t.Fatal("written relation A still shares the old snapshot's storage")
	}
	if !s2.DB().Has(gat("A", 100, 101)) || !s2.DB().Has(gat("A", 0, 1)) {
		t.Fatal("successor snapshot lost facts")
	}
}

// TestCloneCarriesDirtySet: cloning an unfrozen database deep-copies its
// private relations, so the clone's dirty set must match the source's.
func TestCloneCarriesDirtySet(t *testing.T) {
	d := New()
	d.Add(gat("A", 1))
	s := d.Freeze()
	w := s.Thaw()
	w.Add(gat("B", 2))
	c := w.Clone()
	if c.DirtyRelations() != w.DirtyRelations() {
		t.Fatalf("clone dirty=%d, source dirty=%d", c.DirtyRelations(), w.DirtyRelations())
	}
	// The clone must be freezable on its own dirty set without losing data.
	cs := c.Freeze()
	if !cs.DB().Has(gat("B", 2)) || !cs.DB().Has(gat("A", 1)) {
		t.Fatal("clone snapshot lost facts")
	}
}

// TestCompactWalksDirtyOnly: tombstones only ever live in dirty relations,
// so the dirty-walking Compact must still sweep them all.
func TestCompactWalksDirtyOnly(t *testing.T) {
	d := New()
	d.Add(gat("A", 1))
	d.Add(gat("A", 2))
	d.Add(gat("B", 7))
	s := d.Freeze()
	w := s.Thaw()
	w.Remove(gat("A", 1))
	w.Compact()
	if w.Len() != 2 {
		t.Fatalf("len=%d after compact, want 2", w.Len())
	}
	if got := w.Relation("A").Len(); got != 1 {
		t.Fatalf("A arena holds %d slots after compact, want 1", got)
	}
	if w.Has(gat("A", 1)) || !w.Has(gat("A", 2)) || !w.Has(gat("B", 7)) {
		t.Fatal("compact changed the fact set")
	}
}
