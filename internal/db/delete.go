package db

import "repro/internal/ast"

// Fact-level deletion and derivation-count support for incremental view
// maintenance (internal/eval's Maintained views).
//
// Deletion is two-phased to respect the columnar arena's invariants: a
// remove tombstones the tuple (dedup slot cleared so Has/LookupID miss it
// immediately, arena entry marked dead) and the arena is rewritten without
// the dead tuples by compact — called explicitly or by Freeze, so shared
// relations are always tombstone-free and round stamps stay non-decreasing.
// Between the two phases, set-level readers (Has, Facts, Contains, Equal)
// are exact; positional scans and index probes may still surface dead ids,
// so evaluation must only run over compacted databases — the maintenance
// layer compacts after every retraction batch, at the round boundary where
// indexes are re-frozen anyway.
//
// The counts column is the per-tuple derivation count of counting-based
// maintenance: counts[i] travels with tuple i through clone and compact, so
// a maintained output survives copy-on-write snapshots without a side table.

// remove tombstones the tuple equal to args, returning false when absent.
func (r *Relation) remove(args []ast.Const) bool {
	if len(args) != r.arity || len(r.dedupSlot) == 0 {
		return false
	}
	h := hashValues(args)
	mask := uint64(len(r.dedupSlot) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := r.dedupSlot[i]
		if s == 0 {
			return false
		}
		if s == tombSlot {
			continue
		}
		if r.dedupHash[i] == h && r.tupleEqual(s-1, args) {
			r.dedupSlot[i] = tombSlot
			r.dtombs++
			if r.dead == nil {
				r.dead = make([]bool, len(r.rounds))
			}
			r.dead[s-1] = true
			r.ndead++
			return true
		}
	}
}

// alive reports whether tuple i is not tombstoned.
func (r *Relation) alive(i int) bool { return r.ndead == 0 || !r.dead[i] }

// Dead returns the number of tombstoned tuples awaiting compaction.
func (r *Relation) Dead() int { return r.ndead }

// compact rewrites the arena without the dead tuples: round stamps keep
// their values (removing elements preserves the non-decreasing order), the
// shard views are dropped, and the dedup table and column indexes are
// repaired rather than rebuilt — slot positions depend only on tuple
// hashes, not ids, so surviving entries just renumber to the shifted ids
// (removal's tombstones already cleared the dead dedup slots, and emptied
// index chains leave probe tombstones). The arena is shifted in place, in
// bulk spans, with no reallocation. A maintenance Apply that retracts a
// handful of facts from a large relation therefore pays a few memmoves and
// two table sweeps instead of a full rehash of everything. Tables are only
// rebuilt from scratch when accumulated tombstones would degrade probes.
func (r *Relation) compact() {
	if r.ndead == 0 {
		return
	}
	if r.shared {
		panic("db: compact on a shared relation")
	}
	deadIDs := make([]int32, 0, r.ndead)
	// shiftOf[id] = number of dead tuples below id: the id renumbering every
	// table repair below applies, precomputed once as a flat array so the
	// per-entry sweeps are pure reads.
	shiftOf := make([]int32, len(r.rounds)+1)
	for i, dd := range r.dead {
		shiftOf[i+1] = shiftOf[i]
		if dd {
			deadIDs = append(deadIDs, int32(i))
			shiftOf[i+1]++
		}
	}
	dead := r.dead
	// Shift the live spans between dead tuples down in bulk: a retraction
	// batch kills a handful of tuples, so this is a few large memmoves, not
	// one copy per surviving tuple.
	n := len(r.rounds)
	w := int(deadIDs[0])
	for k, di := range deadIDs {
		lo := int(di) + 1
		hi := n
		if k+1 < len(deadIDs) {
			hi = int(deadIDs[k+1])
		}
		if lo < hi {
			copy(r.data[w*r.arity:], r.data[lo*r.arity:hi*r.arity])
			copy(r.rounds[w:], r.rounds[lo:hi])
			if r.counts != nil {
				copy(r.counts[w:], r.counts[lo:hi])
			}
			w += hi - lo
		}
	}
	r.data = r.data[:w*r.arity]
	r.rounds = r.rounds[:w]
	if r.counts != nil {
		r.counts = r.counts[:w]
	}
	r.dead, r.ndead = nil, 0
	if 4*r.dtombs > len(r.dedupSlot) {
		r.rebuildDedup()
	} else {
		// Renumber live slots: id+1 minus the dead count below id. Ids below
		// the first dead tuple keep their value and ids above the last shift
		// by the full batch — register compares that skip the shiftOf load
		// for every slot outside the dead span.
		first, last := deadIDs[0], deadIDs[len(deadIDs)-1]
		all := int32(len(deadIDs))
		for j, s := range r.dedupSlot {
			switch {
			case s <= 0 || s-1 < first: // empty, tombstone, or below the span
			case s-1 > last:
				r.dedupSlot[j] = s - all
			default:
				r.dedupSlot[j] = s - shiftOf[s-1]
			}
		}
	}
	// Repair the column indexes in place (ids shifted, key hashes
	// unchanged) instead of dropping them: rebuilding an index over a large
	// maintained relation would re-hash every tuple on every small
	// retraction batch. The relation is private (unshared), so no concurrent
	// reader holds the index set.
	if set := r.indexes.Load(); set != nil {
		for _, ix := range set.idxs {
			ix.compactIDs(dead, shiftOf, deadIDs[0], deadIDs[len(deadIDs)-1])
		}
	}
	r.shardViews.Store(nil)
}

func (r *Relation) rebuildDedup() {
	n := 16
	for 4*(len(r.rounds)+1) > 3*n {
		n *= 2
	}
	r.dedupHash = make([]uint64, n)
	r.dedupSlot = make([]int32, n)
	r.dtombs = 0
	mask := uint64(n - 1)
	for id := range r.rounds {
		h := hashValues(r.Tuple(id))
		i := h & mask
		for r.dedupSlot[i] != 0 {
			i = (i + 1) & mask
		}
		r.dedupHash[i] = h
		r.dedupSlot[i] = int32(id) + 1
	}
}

// EnableCounts materializes the derivation-count column (all zeros when
// first enabled). Idempotent.
func (r *Relation) EnableCounts() {
	if r.counts == nil {
		r.counts = make([]int32, len(r.rounds))
	}
}

// HasCounts reports whether the derivation-count column is materialized.
func (r *Relation) HasCounts() bool { return r.counts != nil }

// CountOf returns tuple id's derivation count (0 when counts are disabled).
func (r *Relation) CountOf(id int32) int32 {
	if r.counts == nil {
		return 0
	}
	return r.counts[id]
}

func (r *Relation) bumpCount(id int32, delta int32) int32 {
	r.counts[id] += delta
	return r.counts[id]
}

// Remove deletes a ground atom, returning true if it was present. Like
// AddTuple, the first write to a relation shared with a frozen snapshot
// copies it (copy-on-write); the tuple is tombstoned until the next Compact
// or Freeze.
func (d *Database) Remove(g ast.GroundAtom) bool {
	return d.RemoveTuple(g.Pred, g.Args)
}

// RemoveTuple deletes args as a tuple of pred, returning true if present.
func (d *Database) RemoveTuple(pred string, args []ast.Const) bool {
	if d.frozen {
		panic("db: write to a frozen database (stage changes through Snapshot.Thaw)")
	}
	r, ok := d.rels[pred]
	if !ok || r.arity != len(args) {
		return false
	}
	if r.shared {
		if _, present := r.lookupID(args); !present {
			return false
		}
		r = r.clone()
		d.rels[pred] = r
		d.dirty = append(d.dirty, pred)
	}
	if r.remove(args) {
		d.size--
		return true
	}
	return false
}

// Compact rewrites every relation with pending tombstones (see
// Relation.compact). Call at a round boundary, before the next evaluation
// probes or scans the database. Only dirty relations are visited: a shared
// relation is tombstone-free by construction (RemoveTuple copies before the
// first tombstone, putting the predicate on the dirty list).
func (d *Database) Compact() {
	if d.frozen {
		return // frozen relations are tombstone-free by construction
	}
	for _, p := range d.dirty {
		if r := d.rels[p]; !r.shared {
			r.compact()
		}
	}
}

// BumpCount adjusts the derivation count of an existing tuple by delta and
// returns the new count, materializing the count column on first use and
// copying a shared relation first (copy-on-write). ok=false when the tuple
// is absent.
func (d *Database) BumpCount(pred string, args []ast.Const, delta int32) (int32, bool) {
	if d.frozen {
		panic("db: write to a frozen database (stage changes through Snapshot.Thaw)")
	}
	r, ok := d.rels[pred]
	if !ok || r.arity != len(args) {
		return 0, false
	}
	id, present := r.lookupID(args)
	if !present {
		return 0, false
	}
	if r.shared {
		r = r.clone()
		d.rels[pred] = r
		d.dirty = append(d.dirty, pred)
	}
	r.EnableCounts()
	return r.bumpCount(id, delta), true
}

// TupleCount returns the derivation count of a tuple; ok=false when absent.
func (d *Database) TupleCount(pred string, args []ast.Const) (int32, bool) {
	r, ok := d.rels[pred]
	if !ok || r.arity != len(args) {
		return 0, false
	}
	id, present := r.lookupID(args)
	if !present {
		return 0, false
	}
	return r.CountOf(id), true
}
