package db

// Copy-on-freeze snapshots. A long-running server wants many concurrent
// readers over one tenant database while a writer stages the next version.
// Deep-cloning per request would copy every arena; locking per probe would
// serialize the hot path. Freeze gives the third option: mark the database
// and its relations immutable, hand out a Snapshot, and make every later
// Clone a map-copy of shared relation pointers. Shared relations never grow
// (AddTuple copies a relation before its first write), so the lock-free
// index probes of the evaluation hot path stay valid for every reader, and
// index building on a shared relation never mutates published state: new
// and extended indexes are built privately under the relation mutex and
// published atomically (copy-on-extend) — readers of one snapshot even
// share lazily built warm indexes.
//
// Concurrency contract: Freeze must happen-before the snapshot is shared
// with other goroutines (publish it through a channel, mutex, or atomic —
// the registry layers above do). After that, any number of goroutines may
// read, probe, index, Clone and Thaw concurrently.

// Snapshot is an immutable view of a frozen database. The underlying
// database can no longer be mutated; writes go through Thaw, which stages a
// cheap copy-on-write successor.
type Snapshot struct {
	d *Database
}

// Freeze makes d immutable and returns its snapshot handle. Every relation
// is marked shared, so all subsequent Clone/Thaw copies are shallow: they
// share relation storage until a write to a specific predicate copies that
// one relation. Mutating d after Freeze panics.
//
// Relations already marked shared are inherited from a frozen predecessor
// and skipped: readers of the older snapshot read r.shared concurrently
// (Clone, AddTuple), so re-writing even the same value would be a data
// race. Unshared relations are still private to this staging database, so
// marking them here is race-free, and the publication of the returned
// snapshot carries the happens-before edge readers need.
func (d *Database) Freeze() *Snapshot {
	d.frozen = true
	// Only dirty relations can be unshared: a predicate enters the dirty
	// list exactly when its relation is created or copied private, so
	// walking it visits every relation written since the last freeze and
	// none of the untouched ones (the win on wide schemas where a batch
	// touches a handful of predicates).
	for _, p := range d.dirty {
		if r := d.rels[p]; !r.shared {
			// Round boundary: sweep any tombstones left by RemoveTuple so a
			// shared relation is always dead-tuple-free — snapshot readers
			// scan and probe the arena positionally.
			r.compact()
			r.shared = true
		}
	}
	d.dirty = nil
	return &Snapshot{d: d}
}

// Frozen reports whether the database has been frozen by Freeze.
func (d *Database) Frozen() bool { return d.frozen }

// DB returns the frozen database for reading and evaluation input. Callers
// must not mutate it (mutators panic); evaluation's own input.Clone() is a
// shallow copy-on-write copy, so evaluating a snapshot is cheap and safe
// from any number of goroutines.
func (s *Snapshot) DB() *Database { return s.d }

// Len returns the snapshot's fact count.
func (s *Snapshot) Len() int { return s.d.Len() }

// Thaw returns a writable database staging the snapshot's successor: it
// shares every relation with the snapshot until a write touches that
// relation, which copies it first (copy-on-write). The snapshot itself is
// unaffected; concurrent readers keep their view.
func (s *Snapshot) Thaw() *Database { return s.d.Clone() }
