package db

import (
	"sync"
	"testing"

	"repro/internal/ast"
)

func TestShardOwnerRangeAndStability(t *testing.T) {
	for n := 2; n <= 256; n *= 2 {
		for i := 0; i < 200; i++ {
			c := ast.Int(int64(i * 31))
			s := ShardOf(c, n)
			if int(s) >= n {
				t.Fatalf("ShardOf(%v, %d) = %d out of range", c, n, s)
			}
			if s != ShardOf(c, n) {
				t.Fatalf("ShardOf(%v, %d) unstable", c, n)
			}
		}
	}
	// Home-shard fallbacks: unsharded, negative column, out-of-range column.
	args := []ast.Const{ast.Int(7), ast.Int(9)}
	if ShardOwner(args, 0, 1) != 0 {
		t.Fatal("n=1 must map to shard 0")
	}
	if ShardOwner(args, -1, 8) != 0 {
		t.Fatal("col=-1 must map to shard 0")
	}
	if ShardOwner(args, 5, 8) != 0 {
		t.Fatal("out-of-range col must map to shard 0")
	}
	if ShardOwner(args, 1, 8) != ShardOf(ast.Int(9), 8) {
		t.Fatal("ShardOwner must hash the partition column")
	}
}

func TestShardViewBuildAndExtend(t *testing.T) {
	d := New()
	add := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d.AddTuple("E", []ast.Const{ast.Int(int64(i)), ast.Int(int64(i % 7))})
		}
	}
	add(0, 50)
	r := d.Relation("E")
	v := r.EnsureShardView(1, 4)
	if v.Covered() != 50 {
		t.Fatalf("covered %d, want 50", v.Covered())
	}
	for id := 0; id < 50; id++ {
		want := ShardOf(ast.Int(int64(id%7)), 4)
		if v.Owner(int32(id)) != want {
			t.Fatalf("tuple %d: owner %d, want %d", id, v.Owner(int32(id)), want)
		}
	}
	// Extension covers the new tuples and leaves the published view intact.
	add(50, 80)
	v2 := r.EnsureShardView(1, 4)
	if v2.Covered() != 80 {
		t.Fatalf("extended covered %d, want 80", v2.Covered())
	}
	for id := 0; id < 50; id++ {
		if v.Owner(int32(id)) != v2.Owner(int32(id)) {
			t.Fatalf("tuple %d reassigned on extension", id)
		}
	}
	if v.Covered() != 50 {
		t.Fatal("old view mutated in place")
	}
	// A second (col, n) coexists with the first.
	v0 := r.EnsureShardView(0, 2)
	if v0.Covered() != 80 || r.EnsureShardView(1, 4).Covered() != 80 {
		t.Fatal("per-(col,n) views must coexist")
	}
	// Unusable parameters yield the zero view, which owns everything to 0.
	for _, zv := range []ShardView{
		r.EnsureShardView(0, 1),
		r.EnsureShardView(-1, 4),
		r.EnsureShardView(9, 4),
		r.EnsureShardView(0, 1000),
		d.EnsureShardView("NoSuchPred", 0, 4),
	} {
		if zv.Covered() != 0 || zv.Owner(3) != 0 {
			t.Fatal("expected zero view")
		}
	}
}

func TestShardViewConcurrentEnsure(t *testing.T) {
	d := New()
	for i := 0; i < 300; i++ {
		d.AddTuple("E", []ast.Const{ast.Int(int64(i)), ast.Int(int64(i * 3))})
	}
	r := d.Relation("E")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			col, n := g%2, 2+2*(g%3)
			for k := 0; k < 100; k++ {
				v := r.EnsureShardView(col, n)
				if v.Covered() != 300 {
					t.Errorf("covered %d, want 300", v.Covered())
					return
				}
				want := ShardOf(r.Tuple(k)[col], n)
				if v.Owner(int32(k)) != want {
					t.Errorf("col=%d n=%d tuple %d: owner %d, want %d", col, n, k, v.Owner(int32(k)), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
