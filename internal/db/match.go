package db

import (
	"math"

	"repro/internal/ast"
)

// AllRounds is a round window accepting every tuple.
var AllRounds = RoundWindow{Min: 0, Max: math.MaxInt32}

// RoundWindow restricts a match to tuples whose round stamp falls within
// [Min, Max]. Semi-naive evaluation uses windows to aim one body atom at the
// newest facts (the Δ of the last round) and the remaining atoms at older
// strata.
type RoundWindow struct {
	Min, Max int32
}

// Contains reports whether round falls within the window.
func (w RoundWindow) Contains(round int32) bool {
	return round >= w.Min && round <= w.Max
}

// Constraint pairs an atom with the round window its matches must satisfy.
type Constraint struct {
	Atom   ast.Atom
	Window RoundWindow
}

// MatchAtom enumerates every extension of binding b that grounds atom into a
// fact of d whose round stamp lies in the window. For each extension it
// invokes f with b temporarily extended; the extension is undone before the
// next candidate. If f returns false the enumeration stops early and
// MatchAtom returns false.
func MatchAtom(d *Database, atom ast.Atom, w RoundWindow, b ast.Binding, f func() bool) bool {
	rel := d.rels[atom.Pred]
	if rel == nil || rel.arity != len(atom.Args) {
		return true
	}
	// Determine the bound columns under b, in small stack buffers so the
	// probe path allocates nothing for ordinary arities.
	var colsBuf [16]int
	var keyBuf [16]ast.Const
	cols, key := colsBuf[:0], keyBuf[:0]
	for i, t := range atom.Args {
		if !t.IsVar {
			cols = append(cols, i)
			key = append(key, t.Val)
		} else if c, ok := b[t.Name]; ok {
			cols = append(cols, i)
			key = append(key, c)
		}
	}
	try := func(id int32) bool {
		if !w.Contains(rel.rounds[id]) {
			return true
		}
		added, ok := atom.MatchGround(atom.Pred, rel.Tuple(int(id)), b)
		if !ok {
			return true
		}
		cont := f()
		for _, v := range added {
			delete(b, v)
		}
		return cont
	}
	if len(cols) == 0 {
		for id := 0; id < rel.Len(); id++ {
			if !try(int32(id)) {
				return false
			}
		}
		return true
	}
	if len(cols) == len(atom.Args) {
		// Fully bound: a single dedup-table probe suffices.
		id, ok := rel.lookupID(key)
		if !ok {
			return true
		}
		return try(id)
	}
	it := rel.ProbeIter(cols, key, w.Max)
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		if !try(id) {
			return false
		}
	}
	return true
}

// MatchSeq enumerates every extension of b that simultaneously grounds all
// constraints into d (a left-to-right nested-loops join). f is invoked once
// per complete extension with b fully extended; returning false stops the
// enumeration. MatchSeq returns false iff some invocation of f did.
func MatchSeq(d *Database, cs []Constraint, b ast.Binding, f func() bool) bool {
	if len(cs) == 0 {
		return f()
	}
	return MatchAtom(d, cs[0].Atom, cs[0].Window, b, func() bool {
		return MatchSeq(d, cs[1:], b, f)
	})
}

// MatchConjunction enumerates every extension of b grounding all atoms into
// d with no round restriction.
func MatchConjunction(d *Database, atoms []ast.Atom, b ast.Binding, f func() bool) bool {
	cs := make([]Constraint, len(atoms))
	for i, a := range atoms {
		cs[i] = Constraint{Atom: a, Window: AllRounds}
	}
	return MatchSeq(d, cs, b, f)
}

// Satisfiable reports whether some extension of b grounds all atoms into d.
// It is the "can the right-hand side be instantiated" test used when
// checking tgd satisfaction (Section VIII).
func Satisfiable(d *Database, atoms []ast.Atom, b ast.Binding) bool {
	found := false
	MatchConjunction(d, atoms, b.Clone(), func() bool {
		found = true
		return false
	})
	return found
}

// OrderForJoin returns a copy of atoms reordered greedily so that each next
// atom shares as many bound variables as possible with the prefix (and
// ground/constant-rich atoms come early). This keeps the nested-loops join
// from degenerating on bodies written in an unfavourable order; it is a
// heuristic, not an optimizer.
func OrderForJoin(atoms []ast.Atom, bound map[string]bool) []ast.Atom {
	return OrderForJoinSized(atoms, bound, nil)
}

// OrderForJoinSized is OrderForJoin with a cardinality oracle: among atoms
// with equal boundness the one over the smaller relation goes first.
// sizeOf may be nil (ties break on source order).
func OrderForJoinSized(atoms []ast.Atom, bound map[string]bool, sizeOf func(pred string) int) []ast.Atom {
	perm := OrderPermSized(atoms, bound, sizeOf)
	out := make([]ast.Atom, len(atoms))
	for j, i := range perm {
		out[j] = atoms[i]
	}
	return out
}

// OrderPermSized computes the same greedy join order as OrderForJoinSized
// but returns it as a permutation of atom indexes (out[j] = source index of
// the atom evaluated j-th) instead of a reordered copy. The prepared
// evaluation layer uses the permutation as a cache key: rounds whose live
// cardinalities induce the same order can share one compiled rule set.
func OrderPermSized(atoms []ast.Atom, bound map[string]bool, sizeOf func(pred string) int) []int {
	n := len(atoms)
	out := make([]int, 0, n)
	used := make([]bool, n)
	boundVars := make(map[string]bool, len(bound))
	for v := range bound {
		boundVars[v] = true
	}
	for len(out) < n {
		best, bestScore, bestSize := -1, -1, 0
		for i, a := range atoms {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if !t.IsVar || boundVars[t.Name] {
					score += 2
				}
			}
			size := 0
			if sizeOf != nil {
				size = sizeOf(a.Pred)
			}
			// Prefer more-bound atoms; among equals, smaller relations;
			// tie-break on original order for determinism (strict > / <
			// keep the earliest best).
			if score > bestScore || (score == bestScore && sizeOf != nil && size < bestSize) {
				best, bestScore, bestSize = i, score, size
			}
		}
		used[best] = true
		out = append(out, best)
		for _, t := range atoms[best].Args {
			if t.IsVar {
				boundVars[t.Name] = true
			}
		}
	}
	return out
}
