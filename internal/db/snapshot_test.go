package db

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/ast"
)

func snapDB(n int) *Database {
	d := New()
	for i := 0; i < n; i++ {
		d.AddTuple("E", []ast.Const{ast.Int(int64(i)), ast.Int(int64(i + 1))})
		d.AddTuple("L", []ast.Const{ast.Int(int64(i))})
	}
	return d
}

// TestFrozenStaleIndexConcurrentProbes freezes a database whose index was
// built before the last inserts, so the shared relation carries a stale
// index (built < Len) at share time. The first probes race to extend it;
// copy-on-extend must keep every concurrent lock-free reader on a
// consistent index copy (the race detector flags the old in-place path).
func TestFrozenStaleIndexConcurrentProbes(t *testing.T) {
	const total, keys = 20000, 8
	d := New()
	for i := 0; i < 64; i++ {
		d.AddTuple("E", []ast.Const{ast.Int(int64(i % keys)), ast.Int(int64(i))})
	}
	// Build the index, then grow the relation far past it, so the first
	// post-freeze extension is slow enough for probes to overlap it.
	d.EnsureIndex("E", []int{0})
	for i := 64; i < total; i++ {
		d.AddTuple("E", []ast.Const{ast.Int(int64(i % keys)), ast.Int(int64(i))})
	}
	s := d.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rel := s.DB().Relation("E")
			for iter := 0; iter < 20; iter++ {
				got := 0
				it := rel.ProbeIter([]int{0}, []ast.Const{ast.Int(int64(g % keys))}, s.DB().Round())
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					got++
				}
				if got != total/keys {
					panic(fmt.Sprintf("probe saw %d tuples for key %d, want %d", got, g%keys, total/keys))
				}
				// A second column set exercises fresh-index creation on the
				// shared relation concurrently with copy-on-extend.
				p := rel.Prober([]int{1}, s.DB().Round())
				pit := p.Seek([]ast.Const{ast.Int(int64(iter))})
				if _, ok := pit.Next(); !ok {
					panic(fmt.Sprintf("probe lost tuple with second column %d", iter))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFreezeMakesDatabaseImmutable(t *testing.T) {
	d := snapDB(4)
	s := d.Freeze()
	if !d.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if s.Len() != d.Len() {
		t.Fatalf("snapshot Len = %d, want %d", s.Len(), d.Len())
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s on a frozen database did not panic", name)
			}
		}()
		f()
	}
	mustPanic("AddTuple", func() { d.AddTuple("E", []ast.Const{ast.Int(9), ast.Int(9)}) })
	mustPanic("BeginRound", func() { d.BeginRound() })
}

func TestThawCopyOnWrite(t *testing.T) {
	d := snapDB(4)
	before := d.Len()
	s := d.Freeze()

	w := s.Thaw()
	// The staging copy shares every relation until written.
	if w.Relation("E") != d.Relation("E") || w.Relation("L") != d.Relation("L") {
		t.Fatal("Thaw did not share frozen relations")
	}
	if !w.AddTuple("E", []ast.Const{ast.Int(100), ast.Int(101)}) {
		t.Fatal("AddTuple on thawed copy reported duplicate")
	}
	// The written relation was copied; the untouched one is still shared.
	if w.Relation("E") == d.Relation("E") {
		t.Fatal("write to thawed copy mutated the shared relation")
	}
	if w.Relation("L") != d.Relation("L") {
		t.Fatal("untouched relation was copied eagerly")
	}
	if d.Len() != before || s.Len() != before {
		t.Fatalf("snapshot grew: len %d, want %d", s.Len(), before)
	}
	if d.HasTuple("E", []ast.Const{ast.Int(100), ast.Int(101)}) {
		t.Fatal("snapshot sees tuple staged after Freeze")
	}
	if !w.HasTuple("E", []ast.Const{ast.Int(100), ast.Int(101)}) {
		t.Fatal("thawed copy lost its own write")
	}

	// Chained versions: freeze the successor, stage a third.
	s2 := w.Freeze()
	w2 := s2.Thaw()
	w2.AddTuple("L", []ast.Const{ast.Int(200)})
	if s2.DB().HasTuple("L", []ast.Const{ast.Int(200)}) {
		t.Fatal("second snapshot sees third version's write")
	}
}

func TestCloneOfFrozenSharesRelations(t *testing.T) {
	d := snapDB(8)
	d.Freeze()
	c := d.Clone()
	if c.Relation("E") != d.Relation("E") {
		t.Fatal("Clone of a frozen database deep-copied a shared relation")
	}
	if c.Len() != d.Len() {
		t.Fatalf("clone Len = %d, want %d", c.Len(), d.Len())
	}
	// The clone is writable and COWs on write.
	c.AddTuple("E", []ast.Const{ast.Int(50), ast.Int(51)})
	if d.HasTuple("E", []ast.Const{ast.Int(50), ast.Int(51)}) {
		t.Fatal("write to clone leaked into the frozen database")
	}
}

// TestSnapshotConcurrentReaders exercises the snapshot contract under the
// race detector: many goroutines simultaneously probe, build indexes on,
// clone, thaw and write successors of one frozen database.
func TestSnapshotConcurrentReaders(t *testing.T) {
	d := snapDB(64)
	s := d.Freeze()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				base := s.DB()
				// Lock-free reads and shared index creation.
				base.EnsureIndex("E", []int{g % 2})
				rel := base.Relation("E")
				it := rel.Prober([]int{0}, base.Round()).Seek([]ast.Const{ast.Int(int64(iter % 64))})
				for {
					if _, ok := it.Next(); !ok {
						break
					}
				}
				// Copy-on-write writers staging private successors.
				w := s.Thaw()
				w.AddTuple("E", []ast.Const{ast.Int(int64(1000 + g)), ast.Int(int64(iter))})
				if !w.HasTuple("E", []ast.Const{ast.Int(int64(1000 + g)), ast.Int(int64(iter))}) {
					panic(fmt.Sprintf("goroutine %d lost its write", g))
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 128 {
		t.Fatalf("snapshot mutated by concurrent readers: len %d, want 128", s.Len())
	}
}
