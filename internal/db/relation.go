package db

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/ast"
)

// Relation stores the tuples of one predicate in a flat columnar arena:
// tuple i occupies data[i*arity : (i+1)*arity], stamped with the round it
// was inserted in. Deduplication and the per-column-set join indexes are
// open-addressing hash tables keyed by a 64-bit hash of the ast.Const
// values, with collisions resolved by comparing directly against the arena
// — no string keys are materialized anywhere on the insert or probe path.
//
// Concurrency model: mutation (insert) is single-threaded. Index reads are
// lock-free; indexes are built or extended either explicitly at round
// boundaries (EnsureIndex, driven by eval's freeze step) or lazily under mu
// when a probe's round window can actually see unindexed tuples. During a
// parallel evaluation round the freeze step guarantees every index a probe
// will touch is complete, so probes never take the lock. On a shared
// relation a published index is never mutated: lazy extension clones it and
// republishes the index set (copy-on-extend), so concurrent snapshot
// readers can keep probing the old copy lock-free.
type Relation struct {
	arity  int
	data   []ast.Const // arena: tuple i at [i*arity : (i+1)*arity]
	rounds []int32     // round stamp per tuple; non-decreasing

	// counts, when non-nil, is the per-tuple derivation-count column used by
	// the counting maintenance of internal/eval: counts[i] belongs to tuple i
	// and moves with it through clone and compact. nil for relations no
	// maintained view tracks.
	counts []int32

	// Tombstone state between a remove and the next compact: dead[i] marks
	// tuple i deleted (len(dead) == len(rounds) while ndead > 0). Deleted
	// tuples stay in the arena — scans over Facts/Contains skip them — until
	// compact rewrites the arena without them at the next round boundary.
	dead  []bool
	ndead int

	// Dedup table: open addressing, power-of-two sized. dedupSlot holds
	// tuple id + 1 (0 = empty, tombSlot = deleted; dtombs counts the
	// latter); dedupHash caches the full-tuple hash for cheap rejects and
	// rehashing.
	dedupHash []uint64
	dedupSlot []int32
	dtombs    int

	// indexes is an immutable snapshot of the column indexes, swapped
	// atomically when an index is added so lock-free readers never observe
	// a map mutation. The set is tiny (one entry per distinct bound-column
	// mask), so lookup is a linear scan.
	indexes atomic.Pointer[indexSet]
	// shardViews is the immutable set of shard-ownership assignments built
	// over the arena (see shard.go), swapped atomically like indexes so the
	// sharded evaluator's in-round ownership tests are lock-free reads. A
	// clone starts with none and rebuilds on demand.
	shardViews atomic.Pointer[shardSet]
	// mu serializes index creation and lazy extension for out-of-band
	// callers (MatchIDs on a stale relation); the evaluation hot path never
	// takes it.
	mu sync.Mutex

	// shared marks a relation referenced by a frozen Snapshot: its tuple
	// set is immutable (Database.AddTuple copies it before the first
	// write), so any number of goroutines may scan, probe and build
	// indexes on it concurrently. Set under Freeze's happens-before edge,
	// cleared implicitly by clone (a fresh copy is private).
	shared bool
}

// indexSet is an immutable (mask → index) association list.
type indexSet struct {
	masks []uint64
	idxs  []*colIndex
}

func (s *indexSet) find(mask uint64) *colIndex {
	for i, m := range s.masks {
		if m == mask {
			return s.idxs[i]
		}
	}
	return nil
}

// colIndex is a hash index over a fixed set of columns. Each distinct
// projected key owns one table slot holding the first and last tuple id
// carrying that key; tuples sharing a key are chained in insertion order
// through next. built records how many tuples have been incorporated, so
// the index extends incrementally as the relation grows. Compaction repairs
// the index in place (compactIDs); a key whose every tuple died leaves a
// headTomb slot that probes walk past — the probe-chain tombstone that keeps
// open addressing sound without rehashing the table.
type colIndex struct {
	cols   []int
	hashes []uint64
	heads  []int32 // tuple id + 1; 0 = empty slot, headTomb = emptied key
	tails  []int32 // tuple id + 1 of the chain tail
	keys   int     // number of distinct keys
	tombs  int     // headTomb slots awaiting the next grow
	next   []int32 // next[id] = next tuple id with the same key, -1 = end
	built  int
}

// headTomb marks a slot whose key lost its last tuple to compaction: probes
// walk past it (the slot may sit mid-chain for other keys) and grow drops
// it.
const headTomb = int32(-1)

func newRelation(arity int) *Relation {
	return &Relation{arity: arity}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.rounds) }

// LenAt returns the length of the prefix of tuples whose round stamp is
// ≤ maxRound. Round stamps are non-decreasing with insertion order, so this
// prefix is exactly the set of tuples a round window [0, maxRound] can see;
// the streaming executor's scans iterate [0, LenAt) with no per-tuple round
// check.
func (r *Relation) LenAt(maxRound int32) int {
	n := len(r.rounds)
	if n == 0 || r.rounds[n-1] <= maxRound {
		return n
	}
	return sort.Search(n, func(i int) bool { return r.rounds[i] > maxRound })
}

// Tuple returns the i-th tuple as a view into the arena. The returned slice
// is owned by the relation and must not be modified.
func (r *Relation) Tuple(i int) []ast.Const {
	return r.data[i*r.arity : (i+1)*r.arity : (i+1)*r.arity]
}

// RoundOf returns the round stamp of the i-th tuple.
func (r *Relation) RoundOf(i int) int32 { return r.rounds[i] }

// Tuple hashing: one multiply-xorshift mix per constant (splitmix64-style),
// finalized with a single avalanche. hashValues over a projected key and
// hashProj over the same columns of an arena tuple agree by construction.

const hashSeed = 0x9E3779B97F4A7C15

func mixConst(h uint64, c ast.Const) uint64 {
	x := uint64(c)
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 31
	x *= 0x94D049BB133111EB
	return (h ^ x) * 0x100000001B3
}

func hashValues(vals []ast.Const) uint64 {
	h := uint64(hashSeed)
	for _, v := range vals {
		h = mixConst(h, v)
	}
	return h ^ h>>32
}

// HashTuple exposes the store's tuple hash so evaluator-side staging
// structures (the sharded executor's task-local dedup set) can share one
// hash function with the relation tables.
func HashTuple(vals []ast.Const) uint64 { return hashValues(vals) }

func (r *Relation) hashProj(id int32, cols []int) uint64 {
	base := int(id) * r.arity
	h := uint64(hashSeed)
	for _, c := range cols {
		h = mixConst(h, r.data[base+c])
	}
	return h ^ h>>32
}

func (r *Relation) tupleEqual(id int32, args []ast.Const) bool {
	base := int(id) * r.arity
	for j, v := range args {
		if r.data[base+j] != v {
			return false
		}
	}
	return true
}

func (r *Relation) projEqual(id int32, cols []int, key []ast.Const) bool {
	base := int(id) * r.arity
	for j, c := range cols {
		if r.data[base+c] != key[j] {
			return false
		}
	}
	return true
}

func (r *Relation) projEqualTuples(a, b int32, cols []int) bool {
	ba, bb := int(a)*r.arity, int(b)*r.arity
	for _, c := range cols {
		if r.data[ba+c] != r.data[bb+c] {
			return false
		}
	}
	return true
}

// tombSlot marks a dedup slot whose tuple was deleted: probes walk past it,
// inserts may reuse it.
const tombSlot = int32(-1)

// lookupID probes the dedup table for a tuple equal to args.
func (r *Relation) lookupID(args []ast.Const) (int32, bool) {
	if len(r.dedupSlot) == 0 {
		return 0, false
	}
	h := hashValues(args)
	mask := uint64(len(r.dedupSlot) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := r.dedupSlot[i]
		if s == 0 {
			return 0, false
		}
		if s != tombSlot && r.dedupHash[i] == h && r.tupleEqual(s-1, args) {
			return s - 1, true
		}
	}
}

// LookupID returns the id of the tuple equal to args, if present. It is the
// zero-allocation fully-bound probe used by the join kernel.
func (r *Relation) LookupID(args []ast.Const) (int32, bool) {
	if len(args) != r.arity {
		return 0, false
	}
	return r.lookupID(args)
}

func (r *Relation) insert(args []ast.Const, round int32) bool {
	if len(args) != r.arity {
		panic("db: tuple arity mismatch")
	}
	if 4*(len(r.rounds)-r.ndead+r.dtombs+1) > 3*len(r.dedupSlot) {
		r.growDedup()
	}
	h := hashValues(args)
	mask := uint64(len(r.dedupSlot) - 1)
	i := h & mask
	free := int64(-1)
	for {
		s := r.dedupSlot[i]
		if s == 0 {
			break
		}
		if s == tombSlot {
			if free < 0 {
				free = int64(i)
			}
		} else if r.dedupHash[i] == h && r.tupleEqual(s-1, args) {
			return false
		}
		i = (i + 1) & mask
	}
	if free >= 0 {
		i = uint64(free)
		r.dtombs--
	}
	id := int32(len(r.rounds))
	r.data = append(r.data, args...)
	r.rounds = append(r.rounds, round)
	if r.counts != nil {
		r.counts = append(r.counts, 0)
	}
	if r.dead != nil {
		r.dead = append(r.dead, false)
	}
	r.dedupHash[i] = h
	r.dedupSlot[i] = id + 1
	return true
}

func (r *Relation) growDedup() {
	n := 2 * len(r.dedupSlot)
	if n < 16 {
		n = 16
	}
	hashes := make([]uint64, n)
	slots := make([]int32, n)
	mask := uint64(n - 1)
	for i, s := range r.dedupSlot {
		if s <= 0 {
			continue
		}
		h := r.dedupHash[i]
		j := h & mask
		for slots[j] != 0 {
			j = (j + 1) & mask
		}
		hashes[j] = h
		slots[j] = s
	}
	r.dedupHash = hashes
	r.dedupSlot = slots
	r.dtombs = 0
}

// clone deep-copies the relation, index state included: the arena, round
// stamps and dedup table are flat slices (one memcpy each), and carrying the
// column indexes over spares clone-heavy callers (minimize, chase, equivopt)
// from rebuilding them on the first probe of every copy.
func (r *Relation) clone() *Relation {
	c := &Relation{arity: r.arity, ndead: r.ndead, dtombs: r.dtombs}
	c.data = append([]ast.Const(nil), r.data...)
	c.rounds = append([]int32(nil), r.rounds...)
	if r.counts != nil {
		c.counts = append([]int32(nil), r.counts...)
	}
	if r.dead != nil {
		c.dead = append([]bool(nil), r.dead...)
	}
	c.dedupHash = append([]uint64(nil), r.dedupHash...)
	c.dedupSlot = append([]int32(nil), r.dedupSlot...)
	if set := r.indexes.Load(); set != nil {
		ns := &indexSet{masks: append([]uint64(nil), set.masks...)}
		ns.idxs = make([]*colIndex, len(set.idxs))
		for i, ix := range set.idxs {
			ns.idxs[i] = ix.clone()
		}
		c.indexes.Store(ns)
	}
	return c
}

func (ix *colIndex) clone() *colIndex {
	return &colIndex{
		cols:   append([]int(nil), ix.cols...),
		hashes: append([]uint64(nil), ix.hashes...),
		heads:  append([]int32(nil), ix.heads...),
		tails:  append([]int32(nil), ix.tails...),
		keys:   ix.keys,
		tombs:  ix.tombs,
		next:   append([]int32(nil), ix.next...),
		built:  ix.built,
	}
}

// ColMask packs a column set into a bitmask identifying an index.
func ColMask(cols []int) uint64 {
	var mask uint64
	for _, c := range cols {
		mask |= 1 << uint(c)
	}
	return mask
}

// extend incorporates tuples [built, r.Len()) into the index.
func (ix *colIndex) extend(r *Relation) {
	n := r.Len()
	for ix.built < n {
		if 4*(ix.keys+ix.tombs+1) > 3*len(ix.heads) {
			ix.grow()
		}
		id := int32(ix.built)
		h := r.hashProj(id, ix.cols)
		mask := uint64(len(ix.heads) - 1)
		i := h & mask
		for {
			head := ix.heads[i]
			if head == 0 {
				ix.hashes[i] = h
				ix.heads[i] = id + 1
				ix.tails[i] = id + 1
				ix.keys++
				break
			}
			if head != headTomb && ix.hashes[i] == h && r.projEqualTuples(head-1, id, ix.cols) {
				ix.next[ix.tails[i]-1] = id
				ix.tails[i] = id + 1
				break
			}
			i = (i + 1) & mask
		}
		ix.next = append(ix.next, -1)
		ix.built++
	}
}

func (ix *colIndex) grow() {
	n := 2 * len(ix.heads)
	if n < 16 {
		n = 16
	}
	hashes := make([]uint64, n)
	heads := make([]int32, n)
	tails := make([]int32, n)
	mask := uint64(n - 1)
	for i, hd := range ix.heads {
		if hd <= 0 { // empty or headTomb: rehash drops probe tombstones
			continue
		}
		h := ix.hashes[i]
		j := h & mask
		for heads[j] != 0 {
			j = (j + 1) & mask
		}
		hashes[j] = h
		heads[j] = hd
		tails[j] = ix.tails[i]
	}
	ix.hashes, ix.heads, ix.tails = hashes, heads, tails
	ix.tombs = 0
}

// compactIDs repairs the index across an arena compaction: dead flags the
// removed tuple ids, shiftOf[id] counts the dead ids below id — every
// surviving id shifts down by that amount — and first/last bound the dead
// span so ids outside it renumber with register compares alone. Chains are
// walked once, dead members unlinked and survivors renumbered; key hashes
// don't change, so the table layout is untouched and nothing is rehashed. A
// chain losing every member leaves a headTomb so probes for other keys keep
// walking.
func (ix *colIndex) compactIDs(dead []bool, shiftOf []int32, first, last int32) {
	nb := int32(ix.built) - shiftOf[ix.built]
	all := shiftOf[len(shiftOf)-1]
	next := make([]int32, nb)
	for i := range next {
		next[i] = -1
	}
	for si, hd := range ix.heads {
		if hd <= 0 {
			continue
		}
		var nh, nt int32
		id := hd - 1
		for {
			nxt := ix.next[id]
			if id < first || id > last || !dead[id] {
				nid := id
				switch {
				case id < first: // below the dead span: unshifted
				case id > last:
					nid = id - all
				default:
					nid = id - shiftOf[id]
				}
				if nh == 0 {
					nh = nid + 1
				} else {
					next[nt-1] = nid
				}
				nt = nid + 1
			}
			if nxt < 0 {
				break
			}
			id = nxt
		}
		if nh == 0 {
			ix.heads[si] = headTomb
			ix.tails[si] = 0
			ix.keys--
			ix.tombs++
		} else {
			ix.heads[si] = nh
			ix.tails[si] = nt
		}
	}
	ix.next = next
	ix.built = int(nb)
}

// findHead returns the id of the first tuple whose projection onto ix.cols
// equals key, or -1.
func (ix *colIndex) findHead(r *Relation, key []ast.Const) int32 {
	if ix.keys == 0 {
		return -1
	}
	h := hashValues(key)
	mask := uint64(len(ix.heads) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		head := ix.heads[i]
		if head == 0 {
			return -1
		}
		if head != headTomb && ix.hashes[i] == h && r.projEqual(head-1, ix.cols, key) {
			return head - 1
		}
	}
}

// TupleIter walks the ids of tuples sharing one projected key, oldest
// first. It is a value type: probing allocates nothing.
type TupleIter struct {
	next  []int32
	cur   int32
	limit int32 // ids ≥ limit were inserted after the probe; excluded
}

// Next returns the next matching tuple id.
func (it *TupleIter) Next() (int32, bool) {
	id := it.cur
	if id < 0 || id >= it.limit {
		return 0, false
	}
	it.cur = it.next[id]
	return id, true
}

// EnsureIndex builds (or extends to cover all current tuples) the hash
// index over the given column set. eval's round-boundary freeze step calls
// this so that every probe during the round is a pure lock-free read.
func (r *Relation) EnsureIndex(cols []int) {
	if len(cols) == 0 {
		return
	}
	r.ensureIndexLocked(ColMask(cols), cols)
}

func (r *Relation) ensureIndexLocked(mask uint64, cols []int) *colIndex {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.indexes.Load()
	var ix *colIndex
	if set != nil {
		ix = set.find(mask)
	}
	if ix == nil {
		cc := make([]int, len(cols))
		copy(cc, cols)
		ix = &colIndex{cols: cc}
		ix.extend(r)
		ns := &indexSet{}
		if set != nil {
			ns.masks = append(ns.masks, set.masks...)
			ns.idxs = append(ns.idxs, set.idxs...)
		}
		ns.masks = append(ns.masks, mask)
		ns.idxs = append(ns.idxs, ix)
		r.indexes.Store(ns)
		return ix
	}
	if ix.built == len(r.rounds) {
		return ix
	}
	if r.shared {
		// Copy-on-extend: a published index on a shared relation is probed
		// lock-free by any number of snapshot readers, so it must stay
		// immutable. Extend a private clone and republish the index set;
		// readers holding the old set keep a consistent (merely shorter)
		// view, and the relation never grows again once shared, so this
		// happens at most once per stale index.
		nix := ix.clone()
		nix.extend(r)
		ns := &indexSet{
			masks: append([]uint64(nil), set.masks...),
			idxs:  append([]*colIndex(nil), set.idxs...),
		}
		for i, m := range ns.masks {
			if m == mask {
				ns.idxs[i] = nix
			}
		}
		r.indexes.Store(ns)
		return nix
	}
	ix.extend(r)
	return ix
}

// ProbeIter returns an iterator over the ids of tuples whose value at each
// position cols[i] equals key[i], oldest first. cols must be sorted and
// duplicate-free. maxRound is the upper bound of the caller's round window:
// when every unindexed tuple is newer than maxRound (the invariant eval's
// freeze step establishes for in-round probes, since round stamps are
// non-decreasing) the probe is a lock-free read; otherwise the index is
// extended under the relation lock first.
func (r *Relation) ProbeIter(cols []int, key []ast.Const, maxRound int32) TupleIter {
	mask := ColMask(cols)
	var ix *colIndex
	if set := r.indexes.Load(); set != nil {
		ix = set.find(mask)
	}
	if ix == nil || (ix.built < len(r.rounds) && r.rounds[ix.built] <= maxRound) {
		ix = r.ensureIndexLocked(mask, cols)
	}
	head := ix.findHead(r, key)
	return TupleIter{next: ix.next, cur: head, limit: int32(ix.built)}
}

// Prober is a probe cursor bound once to one relation's column index: the
// index pointer and the visible-tuple limit are resolved at bind time, so
// each Seek is a pure hash probe with no atomic snapshot load, mask search,
// or staleness check. It is the iterator-friendly probe API the streaming
// executor binds per body atom per pass — one Prober, many Seeks — where
// ProbeIter would repeat the index resolution on every probe. A Prober is a
// value; binding and seeking allocate nothing.
//
// The bound snapshot stays sufficient for the same reason ProbeIter's does:
// tuples inserted after the bind carry a round stamp greater than maxRound,
// which the caller's window excludes, so the limit captured at bind time is
// exactly the window's horizon.
type Prober struct {
	rel   *Relation
	ix    *colIndex
	limit int32
}

// Prober binds a probe cursor over the given column set. cols must be
// sorted and duplicate-free; maxRound is the upper bound of the caller's
// round window, with the same lazy-extension contract as ProbeIter.
func (r *Relation) Prober(cols []int, maxRound int32) Prober {
	mask := ColMask(cols)
	var ix *colIndex
	if set := r.indexes.Load(); set != nil {
		ix = set.find(mask)
	}
	if ix == nil || (ix.built < len(r.rounds) && r.rounds[ix.built] <= maxRound) {
		ix = r.ensureIndexLocked(mask, cols)
	}
	limit := ix.built
	if n := r.LenAt(maxRound); n < limit {
		// The index may cover tuples newer than the window (it always extends
		// to the full relation); clamping here is what lets Seek's consumers
		// skip per-tuple round checks entirely.
		limit = n
	}
	return Prober{rel: r, ix: ix, limit: int32(limit)}
}

// Seek returns an iterator over the ids of tuples whose projection onto the
// bound column set equals key, oldest first.
func (p Prober) Seek(key []ast.Const) TupleIter {
	head := p.ix.findHead(p.rel, key)
	return TupleIter{next: p.ix.next, cur: head, limit: p.limit}
}

// MatchIDs returns the ids of tuples whose value at each position cols[i]
// equals key[i]. cols must be sorted and contain no duplicates. With empty
// cols it returns nil and the caller should scan all tuples. It allocates
// the result slice; the join kernel uses ProbeIter/LookupID instead.
func (r *Relation) MatchIDs(cols []int, key []ast.Const) []int32 {
	if len(cols) == 0 {
		return nil
	}
	it := r.ProbeIter(cols, key, math.MaxInt32)
	var ids []int32
	for id, ok := it.Next(); ok; id, ok = it.Next() {
		ids = append(ids, id)
	}
	return ids
}
