package db

import (
	"sync"

	"repro/internal/ast"
)

// Relation stores the tuples of one predicate. Tuples are kept in insertion
// order, deduplicated through a hash map, stamped with the round they were
// inserted in, and indexed lazily by bound-column masks for join lookups.
type Relation struct {
	arity   int
	tuples  [][]ast.Const
	rounds  []int32
	byKey   map[string]int32
	indexes map[uint64]*colIndex
	// mu guards lazy index construction so that concurrent READERS (the
	// parallel evaluation phase never mutates tuples while reading) can
	// share index building. Mutation of the relation itself is not
	// concurrency-safe.
	mu sync.Mutex
}

// colIndex is a hash index from the encoded values of a fixed set of columns
// to the ids of tuples carrying those values. built records how many tuples
// have been incorporated, so the index can be extended incrementally as the
// relation grows.
type colIndex struct {
	cols  []int
	m     map[string][]int32
	built int
}

func newRelation(arity int) *Relation {
	return &Relation{
		arity:   arity,
		byKey:   make(map[string]int32),
		indexes: make(map[uint64]*colIndex),
	}
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuple returns the i-th tuple. The returned slice is owned by the relation
// and must not be modified.
func (r *Relation) Tuple(i int) []ast.Const { return r.tuples[i] }

// RoundOf returns the round stamp of the i-th tuple.
func (r *Relation) RoundOf(i int) int32 { return r.rounds[i] }

func (r *Relation) insert(args []ast.Const, round int32) bool {
	if len(args) != r.arity {
		panic("db: tuple arity mismatch")
	}
	key := encodeKey(args)
	if _, ok := r.byKey[key]; ok {
		return false
	}
	t := make([]ast.Const, len(args))
	copy(t, args)
	id := int32(len(r.tuples))
	r.tuples = append(r.tuples, t)
	r.rounds = append(r.rounds, round)
	r.byKey[key] = id
	return true
}

func (r *Relation) clone() *Relation {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := newRelation(r.arity)
	c.tuples = make([][]ast.Const, len(r.tuples))
	for i, t := range r.tuples {
		tt := make([]ast.Const, len(t))
		copy(tt, t)
		c.tuples[i] = tt
	}
	c.rounds = make([]int32, len(r.rounds))
	copy(c.rounds, r.rounds)
	for k, v := range r.byKey {
		c.byKey[k] = v
	}
	return c
}

// colMask packs a sorted column set into a bitmask identifying an index.
func colMask(cols []int) uint64 {
	var mask uint64
	for _, c := range cols {
		mask |= 1 << uint(c)
	}
	return mask
}

// MatchIDs returns the ids of tuples whose value at each position cols[i]
// equals key[i]. cols must be sorted and contain no duplicates. With empty
// cols it returns nil and the caller should scan all tuples (ScanAll). The
// lookup builds (or extends) a hash index on the column set on first use.
func (r *Relation) MatchIDs(cols []int, key []ast.Const) []int32 {
	if len(cols) == 0 {
		return nil
	}
	mask := colMask(cols)
	r.mu.Lock()
	idx, ok := r.indexes[mask]
	if !ok {
		cc := make([]int, len(cols))
		copy(cc, cols)
		idx = &colIndex{cols: cc, m: make(map[string][]int32)}
		r.indexes[mask] = idx
	}
	// Extend the index over tuples inserted since the last use.
	for ; idx.built < len(r.tuples); idx.built++ {
		t := r.tuples[idx.built]
		k := encodeProjection(t, idx.cols)
		idx.m[k] = append(idx.m[k], int32(idx.built))
	}
	ids := idx.m[encodeProjection2(key)]
	r.mu.Unlock()
	return ids
}

// encodeProjection encodes the values of the given columns of a tuple.
func encodeProjection(t []ast.Const, cols []int) string {
	buf := make([]byte, 0, 8*len(cols))
	for _, c := range cols {
		buf = appendConst(buf, t[c])
	}
	return string(buf)
}

// encodeProjection2 encodes an already-projected key.
func encodeProjection2(key []ast.Const) string {
	buf := make([]byte, 0, 8*len(key))
	for _, v := range key {
		buf = appendConst(buf, v)
	}
	return string(buf)
}

// encodeKey encodes a whole tuple for the dedup map.
func encodeKey(args []ast.Const) string {
	buf := make([]byte, 0, 8*len(args))
	for _, v := range args {
		buf = appendConst(buf, v)
	}
	return string(buf)
}

func appendConst(buf []byte, c ast.Const) []byte {
	v := uint64(c)
	return append(buf,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}
