// Package db implements the ground-atom databases of Section III: a DB is a
// set of ground atoms, viewed as a collection of relations, one per
// predicate. Relations keep insertion order, stamp every tuple with the
// evaluation round that produced it (which is what makes semi-naive
// evaluation possible), and build hash indexes lazily for join lookups.
package db

import (
	"sort"
	"strings"

	"repro/internal/ast"
)

// Database is a set of ground atoms grouped into relations by predicate.
// Tuples are stamped with the round counter current at insertion time;
// see BeginRound.
type Database struct {
	rels  map[string]*Relation
	round int32
	size  int
	// frozen marks a database made immutable by Freeze: mutators panic, and
	// Clone degrades to a map copy sharing every relation (see snapshot.go).
	frozen bool
	// dirty lists the predicates of private (unshared) relations — each
	// appended exactly once, at relation creation or at the copy-on-write
	// shared→private transition — so Freeze and Compact walk only the
	// relations written since the last freeze instead of the whole map.
	// Freeze shares every listed relation and resets the list.
	dirty []string
}

// New returns an empty database.
func New() *Database {
	return &Database{rels: make(map[string]*Relation)}
}

// FromFacts builds a database holding exactly the given ground atoms.
func FromFacts(facts []ast.GroundAtom) *Database {
	d := New()
	for _, g := range facts {
		d.Add(g)
	}
	return d
}

// Round returns the current round stamp.
func (d *Database) Round() int32 { return d.round }

// BeginRound advances the round counter; tuples added afterwards are stamped
// with the new round. It returns the new round number.
func (d *Database) BeginRound() int32 {
	if d.frozen {
		panic("db: BeginRound on a frozen database")
	}
	d.round++
	return d.round
}

// Add inserts a ground atom, returning true if it was new. Newly created
// relations take their arity from the first atom inserted; inserting a tuple
// of a different arity for an existing predicate panics, since programs are
// arity-checked before evaluation.
func (d *Database) Add(g ast.GroundAtom) bool {
	return d.AddTuple(g.Pred, g.Args)
}

// AddTuple inserts args as a tuple of pred, returning true if it was new.
func (d *Database) AddTuple(pred string, args []ast.Const) bool {
	if d.frozen {
		panic("db: write to a frozen database (stage changes through Snapshot.Thaw)")
	}
	r, ok := d.rels[pred]
	if !ok {
		r = newRelation(len(args))
		d.rels[pred] = r
		d.dirty = append(d.dirty, pred)
	}
	if r.shared {
		// Copy-on-write: the relation is shared with a frozen snapshot, so
		// the first write to this predicate copies it. Shared relations
		// therefore never grow — the invariant that keeps snapshot readers'
		// lock-free probes valid.
		r = r.clone()
		d.rels[pred] = r
		d.dirty = append(d.dirty, pred)
	}
	if r.insert(args, d.round) {
		d.size++
		return true
	}
	return false
}

// Has reports whether the ground atom is present.
func (d *Database) Has(g ast.GroundAtom) bool {
	return d.HasTuple(g.Pred, g.Args)
}

// HasTuple reports whether args is a tuple of pred.
func (d *Database) HasTuple(pred string, args []ast.Const) bool {
	r, ok := d.rels[pred]
	if !ok || r.arity != len(args) {
		return false
	}
	_, present := r.lookupID(args)
	return present
}

// EnsureIndex builds or extends pred's hash index over the given column
// set, so subsequent probes against it are lock-free reads. It is a no-op
// for unknown predicates (the relation may first appear in a later round)
// and empty column sets. eval calls this at round boundaries for every
// (predicate, bound-column) pair its joins will probe.
func (d *Database) EnsureIndex(pred string, cols []int) {
	if r, ok := d.rels[pred]; ok {
		r.EnsureIndex(cols)
	}
}

// Relation returns the relation for pred, or nil if no tuple of pred has
// been inserted.
func (d *Database) Relation(pred string) *Relation { return d.rels[pred] }

// Preds returns the predicates with at least one live tuple, sorted.
func (d *Database) Preds() []string {
	preds := make([]string, 0, len(d.rels))
	for p, r := range d.rels {
		if r.Len()-r.ndead > 0 {
			preds = append(preds, p)
		}
	}
	sort.Strings(preds)
	return preds
}

// Len returns the total number of ground atoms.
func (d *Database) Len() int { return d.size }

// Clone returns a writable copy of the database (round stamps included).
// Private relations are deep-copied; relations shared with a frozen
// snapshot are immutable, so the copy shares their storage and defers the
// deep copy to the first write (copy-on-write via AddTuple). Cloning a
// frozen database is therefore a map copy — the cheap path every
// evaluation over a Snapshot takes.
func (d *Database) Clone() *Database {
	c := &Database{rels: make(map[string]*Relation, len(d.rels)), round: d.round, size: d.size}
	for p, r := range d.rels {
		if r.shared {
			c.rels[p] = r
		} else {
			c.rels[p] = r.clone()
		}
	}
	// Deep-copied relations are private in the copy too, so the copy's
	// dirty set is exactly the source's (empty when d is frozen: Freeze
	// shared everything and reset it).
	if len(d.dirty) > 0 {
		c.dirty = append([]string(nil), d.dirty...)
	}
	return c
}

// DirtyRelations returns the number of relations written since the last
// freeze — the relations the next Freeze must compact and share.
func (d *Database) DirtyRelations() int { return len(d.dirty) }

// RelationCount returns the number of relations (predicates) held,
// including tombstone-only ones.
func (d *Database) RelationCount() int { return len(d.rels) }

// AddAll inserts every fact of other, returning the number of new facts.
func (d *Database) AddAll(other *Database) int {
	added := 0
	for _, p := range other.Preds() {
		r := other.rels[p]
		for i := 0; i < r.Len(); i++ {
			if r.alive(i) && d.AddTuple(p, r.Tuple(i)) {
				added++
			}
		}
	}
	return added
}

// Contains reports whether every fact of other is present in d.
func (d *Database) Contains(other *Database) bool {
	for p, r := range other.rels {
		for i := 0; i < r.Len(); i++ {
			if r.alive(i) && !d.HasTuple(p, r.Tuple(i)) {
				return false
			}
		}
	}
	return true
}

// Equal reports whether d and other hold exactly the same set of facts.
func (d *Database) Equal(other *Database) bool {
	return d.size == other.size && d.Contains(other) && other.Contains(d)
}

// Facts returns every ground atom, ordered by predicate name and insertion
// order within a predicate.
func (d *Database) Facts() []ast.GroundAtom {
	out := make([]ast.GroundAtom, 0, d.size)
	for _, p := range d.Preds() {
		r := d.rels[p]
		for i := 0; i < r.Len(); i++ {
			if !r.alive(i) {
				continue
			}
			t := r.Tuple(i)
			args := make([]ast.Const, len(t))
			copy(args, t)
			out = append(out, ast.GroundAtom{Pred: p, Args: args})
		}
	}
	return out
}

// Consts returns the set of constants appearing in the database.
func (d *Database) Consts() map[ast.Const]bool {
	set := make(map[ast.Const]bool)
	for _, r := range d.rels {
		for i := 0; i < r.Len(); i++ {
			if !r.alive(i) {
				continue
			}
			for _, c := range r.Tuple(i) {
				set[c] = true
			}
		}
	}
	return set
}

// MaxGeneratedIndexes returns the largest frozen-constant index and labeled-
// null index occurring in the database, or -1 when none occurs; generators
// for fresh constants are seeded past these.
func (d *Database) MaxGeneratedIndexes() (maxFrozen, maxNull int) {
	maxFrozen, maxNull = -1, -1
	for _, r := range d.rels {
		for i := 0; i < r.Len(); i++ {
			for _, c := range r.Tuple(i) {
				switch {
				case ast.IsFrozen(c):
					if idx := ast.FrozenIndex(c); idx > maxFrozen {
						maxFrozen = idx
					}
				case ast.IsNull(c):
					if idx := ast.NullIndex(c); idx > maxNull {
						maxNull = idx
					}
				}
			}
		}
	}
	return maxFrozen, maxNull
}

// Format renders the database one fact per line, predicates sorted, using
// tab for symbolic constants.
func (d *Database) Format(tab *ast.SymbolTable) string {
	var sb strings.Builder
	for _, g := range d.Facts() {
		sb.WriteString(g.Format(tab))
		sb.WriteString(".\n")
	}
	return sb.String()
}

// String renders the database without a symbol table.
func (d *Database) String() string { return d.Format(nil) }

// Summary describes a database's shape: per-predicate cardinalities plus
// totals, for diagnostics and the REPL's :stats command.
type Summary struct {
	// Predicates maps each predicate to its tuple count.
	Predicates map[string]int
	// Facts is the total fact count.
	Facts int
	// Constants is the number of distinct constants.
	Constants int
}

// Summarize computes the database's Summary.
func (d *Database) Summarize() Summary {
	s := Summary{Predicates: make(map[string]int), Facts: d.size}
	for _, p := range d.Preds() {
		r := d.rels[p]
		s.Predicates[p] = r.Len() - r.ndead
	}
	s.Constants = len(d.Consts())
	return s
}
