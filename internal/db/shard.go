package db

import (
	"repro/internal/ast"
)

// Sharded evaluation support. A shard view hash-partitions a relation's
// tuples by one column into n ownership classes: tuple id belongs to shard
// ShardOf(tuple[col], n). The view is a partitioned lens over the existing
// columnar arena — no tuple is copied or moved, so Clone and Freeze keep
// their costs — and the sharded evaluator uses it to split a round's outer
// enumeration into disjoint per-shard slices while inner probes keep reading
// the shared frozen indexes (an implicit broadcast of the non-partitioned
// side).
//
// Concurrency model mirrors the column indexes: views are immutable once
// published (swapped through an atomic pointer), built or extended under mu
// at round boundaries, and read lock-free during a round. Extension always
// copies (one byte per tuple) and republishes, so readers holding an older
// view keep a consistent, merely shorter, assignment — the discipline shared
// relations under frozen snapshots require.

// ShardView is an immutable tuple → owner-shard assignment. The zero value
// assigns every tuple to shard 0, which is the "home shard" fallback for
// non-partitionable relations (nullary predicates, no usable join column).
type ShardView struct {
	of []uint8
}

// Owner returns the shard owning tuple id. Ids beyond the view's coverage
// must not be asked for; the evaluator only consults views built at a round
// boundary for ids its round windows admit, which are exactly the covered
// prefix (round stamps are non-decreasing).
func (v ShardView) Owner(id int32) uint8 {
	if v.of == nil {
		return 0
	}
	return v.of[id]
}

// Covered reports how many tuple ids the view assigns.
func (v ShardView) Covered() int { return len(v.of) }

// ShardOf returns the owner shard of a single partition-key constant under n
// shards, using the same mix as the relation hash tables so assignment is
// deterministic across processes and databases.
func ShardOf(c ast.Const, n int) uint8 {
	h := mixConst(hashSeed, c)
	h ^= h >> 32
	return uint8(h % uint64(n))
}

// ShardOwner returns the owner shard of a tuple under partition column col
// and n shards. Out-of-range columns (the home-shard fallback, col < 0) and
// the unsharded case map everything to shard 0.
func ShardOwner(args []ast.Const, col, n int) uint8 {
	if n <= 1 || col < 0 || col >= len(args) {
		return 0
	}
	return ShardOf(args[col], n)
}

// shardAssign is one built assignment, keyed by (col, n).
type shardAssign struct {
	col int
	n   int
	of  []uint8
}

// shardSet is an immutable association list of the relation's built views.
// Like indexSet it is tiny (one entry per distinct (col, n) actually used),
// so lookup is a linear scan.
type shardSet struct {
	views []*shardAssign
}

func (s *shardSet) find(col, n int) *shardAssign {
	for _, v := range s.views {
		if v.col == col && v.n == n {
			return v
		}
	}
	return nil
}

// EnsureShardView builds (or extends to cover all current tuples) the shard
// assignment for partition column col under n shards and returns it. The
// sharded evaluator calls this at round boundaries, next to EnsureIndex, so
// every in-round ownership test is a lock-free array read. Unusable
// parameters (n ≤ 1, col out of range) yield the zero view.
func (r *Relation) EnsureShardView(col, n int) ShardView {
	if n <= 1 || n > 256 || col < 0 || col >= r.arity {
		return ShardView{}
	}
	if set := r.shardViews.Load(); set != nil {
		if sa := set.find(col, n); sa != nil && len(sa.of) == r.Len() {
			return ShardView{of: sa.of}
		}
	}
	return r.ensureShardLocked(col, n)
}

func (r *Relation) ensureShardLocked(col, n int) ShardView {
	r.mu.Lock()
	defer r.mu.Unlock()
	set := r.shardViews.Load()
	var sa *shardAssign
	if set != nil {
		sa = set.find(col, n)
	}
	ln := r.Len()
	if sa != nil && len(sa.of) == ln {
		return ShardView{of: sa.of}
	}
	// Build or extend. Published assignments are read lock-free, so extension
	// copies into a fresh array and republishes rather than appending in
	// place; at one byte per tuple the copy is far cheaper than the round's
	// joins, and shared (frozen) relations never grow, so their views extend
	// at most once.
	of := make([]uint8, ln)
	start := 0
	if sa != nil {
		start = copy(of, sa.of)
	}
	for id := start; id < ln; id++ {
		of[id] = ShardOf(r.data[id*r.arity+col], n)
	}
	ns := &shardSet{}
	if set != nil {
		for _, v := range set.views {
			if v.col != col || v.n != n {
				ns.views = append(ns.views, v)
			}
		}
	}
	ns.views = append(ns.views, &shardAssign{col: col, n: n, of: of})
	r.shardViews.Store(ns)
	return ShardView{of: of}
}

// EnsureShardView builds or extends the shard assignment of pred's relation
// for partition column col under n shards. A predicate with no relation (no
// tuples yet) yields the zero view; the evaluator's outer enumerations check
// the relation first, so the view is never consulted in that case.
func (d *Database) EnsureShardView(pred string, col, n int) ShardView {
	r := d.Relation(pred)
	if r == nil {
		return ShardView{}
	}
	return r.EnsureShardView(col, n)
}
