package db

import (
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func collectBindings(d *Database, atoms []ast.Atom) []map[string]int64 {
	var out []map[string]int64
	MatchConjunction(d, atoms, ast.Binding{}, func() bool {
		return true
	})
	// Re-run capturing snapshots (MatchConjunction mutates one shared binding).
	b := ast.Binding{}
	MatchConjunction(d, atoms, b, func() bool {
		snap := make(map[string]int64, len(b))
		for v, c := range b {
			snap[v] = int64(c)
		}
		out = append(out, snap)
		return true
	})
	return out
}

func TestMatchAtomBasic(t *testing.T) {
	d := example2EDB()
	atom := ast.NewAtom("A", ast.Var("x"), ast.Var("y"))
	n := 0
	MatchAtom(d, atom, AllRounds, ast.Binding{}, func() bool { n++; return true })
	if n != 3 {
		t.Fatalf("matched %d, want 3", n)
	}
}

func TestMatchAtomWithConstant(t *testing.T) {
	d := example2EDB()
	atom := ast.NewAtom("A", ast.IntTerm(1), ast.Var("y"))
	var ys []int64
	b := ast.Binding{}
	MatchAtom(d, atom, AllRounds, b, func() bool {
		ys = append(ys, int64(b["y"]))
		return true
	})
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	if len(ys) != 2 || ys[0] != 2 || ys[1] != 4 {
		t.Fatalf("ys = %v", ys)
	}
}

func TestMatchAtomRepeatedVariable(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 1))
	d.Add(ga("A", 1, 2))
	atom := ast.NewAtom("A", ast.Var("x"), ast.Var("x"))
	n := 0
	MatchAtom(d, atom, AllRounds, ast.Binding{}, func() bool { n++; return true })
	if n != 1 {
		t.Fatalf("repeated-variable match count = %d, want 1", n)
	}
}

func TestMatchAtomFullyBound(t *testing.T) {
	d := example2EDB()
	atom := ast.NewAtom("A", ast.Var("x"), ast.Var("y"))
	b := ast.Binding{"x": ast.Int(1), "y": ast.Int(4)}
	n := 0
	MatchAtom(d, atom, AllRounds, b, func() bool { n++; return true })
	if n != 1 {
		t.Fatalf("fully bound match count = %d", n)
	}
	b2 := ast.Binding{"x": ast.Int(4), "y": ast.Int(4)}
	MatchAtom(d, atom, AllRounds, b2, func() bool { t.Fatal("matched absent tuple"); return false })
}

func TestMatchAtomMissingRelation(t *testing.T) {
	d := New()
	atom := ast.NewAtom("Z", ast.Var("x"))
	if !MatchAtom(d, atom, AllRounds, ast.Binding{}, func() bool { t.Fatal("match"); return false }) {
		t.Fatal("MatchAtom on missing relation returned false")
	}
}

func TestMatchAtomRoundWindow(t *testing.T) {
	d := New()
	d.Add(ga("A", 1, 1)) // round 0
	d.BeginRound()
	d.Add(ga("A", 2, 2)) // round 1
	atom := ast.NewAtom("A", ast.Var("x"), ast.Var("y"))

	count := func(w RoundWindow) int {
		n := 0
		MatchAtom(d, atom, w, ast.Binding{}, func() bool { n++; return true })
		return n
	}
	if got := count(RoundWindow{Min: 1, Max: 1}); got != 1 {
		t.Fatalf("delta window matched %d", got)
	}
	if got := count(RoundWindow{Min: 0, Max: 0}); got != 1 {
		t.Fatalf("old window matched %d", got)
	}
	if got := count(AllRounds); got != 2 {
		t.Fatalf("all window matched %d", got)
	}
	// Round windows also apply on the fully-bound fast path.
	b := ast.Binding{"x": ast.Int(1), "y": ast.Int(1)}
	n := 0
	MatchAtom(d, atom, RoundWindow{Min: 1, Max: 1}, b, func() bool { n++; return true })
	if n != 0 {
		t.Fatal("fully-bound path ignored round window")
	}
}

func TestMatchConjunctionJoin(t *testing.T) {
	// Join A(x,y), A(y,z) over the Example 2 EDB: pairs (1,4,1), (4,1,2), (4,1,4).
	d := example2EDB()
	atoms := []ast.Atom{
		ast.NewAtom("A", ast.Var("x"), ast.Var("y")),
		ast.NewAtom("A", ast.Var("y"), ast.Var("z")),
	}
	got := collectBindings(d, atoms)
	if len(got) != 3 {
		t.Fatalf("join produced %d bindings: %v", len(got), got)
	}
	want := map[[3]int64]bool{{1, 4, 1}: true, {4, 1, 2}: true, {4, 1, 4}: true}
	for _, m := range got {
		k := [3]int64{m["x"], m["y"], m["z"]}
		if !want[k] {
			t.Fatalf("unexpected binding %v", m)
		}
		delete(want, k)
	}
	if len(want) != 0 {
		t.Fatalf("missing bindings: %v", want)
	}
}

func TestMatchConjunctionEarlyStop(t *testing.T) {
	d := example2EDB()
	atoms := []ast.Atom{ast.NewAtom("A", ast.Var("x"), ast.Var("y"))}
	n := 0
	cont := MatchConjunction(d, atoms, ast.Binding{}, func() bool { n++; return false })
	if cont || n != 1 {
		t.Fatalf("early stop failed: cont=%v n=%d", cont, n)
	}
}

func TestSatisfiable(t *testing.T) {
	d := example2EDB()
	// ∃w A(1,w): yes. ∃w A(2,w): no.
	yes := []ast.Atom{ast.NewAtom("A", ast.Var("v"), ast.Var("w"))}
	if !Satisfiable(d, yes, ast.Binding{"v": ast.Int(1)}) {
		t.Fatal("satisfiable conjunction reported unsatisfiable")
	}
	if Satisfiable(d, yes, ast.Binding{"v": ast.Int(2)}) {
		t.Fatal("unsatisfiable conjunction reported satisfiable")
	}
	// The binding passed to Satisfiable must not be mutated.
	b := ast.Binding{"v": ast.Int(1)}
	Satisfiable(d, yes, b)
	if len(b) != 1 {
		t.Fatalf("Satisfiable mutated binding: %v", b)
	}
}

func TestOrderForJoinPrefersBound(t *testing.T) {
	atoms := []ast.Atom{
		ast.NewAtom("B", ast.Var("u"), ast.Var("v")),
		ast.NewAtom("A", ast.Var("x"), ast.IntTerm(1)),
	}
	got := OrderForJoin(atoms, map[string]bool{"x": true})
	if got[0].Pred != "A" {
		t.Fatalf("OrderForJoin = %v", got)
	}
	// All atoms preserved.
	if len(got) != 2 || got[1].Pred != "B" {
		t.Fatalf("OrderForJoin dropped atoms: %v", got)
	}
}

func TestMatchSeqPropertySameAsFilter(t *testing.T) {
	// Property: for random small databases, the number of join results of
	// A(x,y), A(y,z) equals the count from a brute-force double loop.
	f := func(pairs [][2]uint8) bool {
		d := New()
		for _, p := range pairs {
			d.Add(ga("A", int64(p[0]%8), int64(p[1]%8)))
		}
		atoms := []ast.Atom{
			ast.NewAtom("A", ast.Var("x"), ast.Var("y")),
			ast.NewAtom("A", ast.Var("y"), ast.Var("z")),
		}
		n := 0
		MatchConjunction(d, atoms, ast.Binding{}, func() bool { n++; return true })

		brute := 0
		facts := d.Facts()
		for _, f1 := range facts {
			for _, f2 := range facts {
				if f1.Args[1] == f2.Args[0] {
					brute++
				}
			}
		}
		return n == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReaders(t *testing.T) {
	// The parallel evaluation phase reads (and lazily indexes) relations
	// from many goroutines with no concurrent writes; run lookups from
	// several goroutines to exercise the index mutex (meaningful under
	// -race).
	d := New()
	for i := int64(0); i < 200; i++ {
		d.Add(ga("A", i%20, (i*7)%20))
	}
	atom := ast.NewAtom("A", ast.Var("x"), ast.Var("y"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				b := ast.Binding{"x": ast.Int(int64((w + rep) % 20))}
				n := 0
				MatchAtom(d, atom, AllRounds, b, func() bool { n++; return true })
				if n == 0 && d.Len() > 0 {
					// Some x values may genuinely have no out-edges; just
					// exercise the path.
					_ = n
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestOrderForJoinSized(t *testing.T) {
	d := New()
	for i := int64(0); i < 50; i++ {
		d.Add(ga("Big", i, i+1))
	}
	d.Add(ga("Small", 1, 2))
	sizeOf := func(pred string) int {
		if r := d.Relation(pred); r != nil {
			return r.Len()
		}
		return 0
	}
	atoms := []ast.Atom{
		ast.NewAtom("Big", ast.Var("x"), ast.Var("y")),
		ast.NewAtom("Small", ast.Var("x"), ast.Var("z")),
	}
	got := OrderForJoinSized(atoms, nil, sizeOf)
	if got[0].Pred != "Small" {
		t.Fatalf("size-aware ordering failed: %v", got)
	}
	// Without sizes, source order is preserved on ties.
	plain := OrderForJoin(atoms, nil)
	if plain[0].Pred != "Big" {
		t.Fatalf("tie-break changed: %v", plain)
	}
}
