package db

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
)

func tup(vals ...int) []ast.Const {
	t := make([]ast.Const, len(vals))
	for i, v := range vals {
		t[i] = ast.Const(v)
	}
	return t
}

func TestRemoveTupleBasic(t *testing.T) {
	d := New()
	d.AddTuple("e", tup(1, 2))
	d.AddTuple("e", tup(2, 3))
	if !d.RemoveTuple("e", tup(1, 2)) {
		t.Fatal("remove of present tuple returned false")
	}
	if d.RemoveTuple("e", tup(1, 2)) {
		t.Fatal("second remove returned true")
	}
	if d.HasTuple("e", tup(1, 2)) {
		t.Fatal("removed tuple still visible via Has")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
	if got := len(d.Facts()); got != 1 {
		t.Fatalf("Facts len = %d, want 1", got)
	}
	// Re-insert before compaction must resurrect as a fresh tuple.
	if !d.AddTuple("e", tup(1, 2)) {
		t.Fatal("re-insert after remove returned false")
	}
	if !d.HasTuple("e", tup(1, 2)) {
		t.Fatal("re-inserted tuple not visible")
	}
	d.Compact()
	if d.Len() != 2 || !d.HasTuple("e", tup(1, 2)) || !d.HasTuple("e", tup(2, 3)) {
		t.Fatalf("post-compact state wrong: %v", d.Facts())
	}
	if rel := d.Relation("e"); rel.Dead() != 0 || rel.Len() != 2 {
		t.Fatalf("compact left dead=%d len=%d", rel.Dead(), rel.Len())
	}
}

func TestRemoveRandomizedVsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := New()
	ref := make(map[[2]ast.Const]bool)
	for op := 0; op < 5000; op++ {
		a, b := ast.Const(rng.Intn(25)), ast.Const(rng.Intn(25))
		key := [2]ast.Const{a, b}
		if rng.Intn(3) == 0 {
			got := d.RemoveTuple("e", tup(int(a), int(b)))
			if got != ref[key] {
				t.Fatalf("op %d: remove(%v) = %v, want %v", op, key, got, ref[key])
			}
			delete(ref, key)
		} else {
			got := d.AddTuple("e", tup(int(a), int(b)))
			if got != !ref[key] {
				t.Fatalf("op %d: add(%v) = %v, want %v", op, key, got, !ref[key])
			}
			ref[key] = true
		}
		if rng.Intn(50) == 0 {
			d.Compact()
		}
	}
	d.Compact()
	if d.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(ref))
	}
	for key := range ref {
		if !d.HasTuple("e", []ast.Const{key[0], key[1]}) {
			t.Fatalf("missing %v", key)
		}
	}
	// Round stamps stay non-decreasing through compaction.
	rel := d.Relation("e")
	for i := 1; i < rel.Len(); i++ {
		if rel.RoundOf(i) < rel.RoundOf(i-1) {
			t.Fatalf("round stamps decreasing at %d", i)
		}
	}
}

func TestRemoveCopyOnWriteFromSnapshot(t *testing.T) {
	d := New()
	d.AddTuple("e", tup(1, 2))
	d.AddTuple("e", tup(2, 3))
	snap := d.Freeze()
	w := snap.Thaw()
	if !w.RemoveTuple("e", tup(1, 2)) {
		t.Fatal("remove via thawed copy failed")
	}
	w.Compact()
	if !snap.DB().HasTuple("e", tup(1, 2)) {
		t.Fatal("remove leaked into the frozen snapshot")
	}
	if w.HasTuple("e", tup(1, 2)) || w.Len() != 1 {
		t.Fatal("thawed copy kept the removed tuple")
	}
	// Removing an absent tuple from a shared relation must not copy it.
	w2 := snap.Thaw()
	if w2.RemoveTuple("e", tup(9, 9)) {
		t.Fatal("remove of absent tuple returned true")
	}
	if w2.Relation("e") != snap.DB().Relation("e") {
		t.Fatal("no-op remove copied the shared relation")
	}
}

func TestFreezeCompacts(t *testing.T) {
	d := New()
	d.AddTuple("e", tup(1, 2))
	d.AddTuple("e", tup(2, 3))
	d.RemoveTuple("e", tup(1, 2))
	snap := d.Freeze()
	rel := snap.DB().Relation("e")
	if rel.Dead() != 0 || rel.Len() != 1 {
		t.Fatalf("Freeze left tombstones: dead=%d len=%d", rel.Dead(), rel.Len())
	}
}

func TestCountsColumn(t *testing.T) {
	d := New()
	d.AddTuple("p", tup(1))
	d.AddTuple("p", tup(2))
	if n, ok := d.BumpCount("p", tup(1), 2); !ok || n != 2 {
		t.Fatalf("BumpCount = %d,%v want 2,true", n, ok)
	}
	if n, ok := d.BumpCount("p", tup(1), -1); !ok || n != 1 {
		t.Fatalf("BumpCount = %d,%v want 1,true", n, ok)
	}
	if n, ok := d.TupleCount("p", tup(2)); !ok || n != 0 {
		t.Fatalf("TupleCount = %d,%v want 0,true", n, ok)
	}
	if _, ok := d.TupleCount("p", tup(9)); ok {
		t.Fatal("TupleCount of absent tuple ok")
	}
	// Counts move with compaction and survive clone + copy-on-write.
	d.BumpCount("p", tup(2), 5)
	d.RemoveTuple("p", tup(1))
	d.Compact()
	if n, ok := d.TupleCount("p", tup(2)); !ok || n != 5 {
		t.Fatalf("post-compact TupleCount = %d,%v want 5,true", n, ok)
	}
	snap := d.Freeze()
	w := snap.Thaw()
	if n, ok := w.BumpCount("p", tup(2), 1); !ok || n != 6 {
		t.Fatalf("COW BumpCount = %d,%v want 6,true", n, ok)
	}
	if n, _ := snap.DB().TupleCount("p", tup(2)); n != 5 {
		t.Fatalf("BumpCount leaked into snapshot: %d", n)
	}
}

// TestCompactRepairsIndexes pins the in-place compaction repair: column
// indexes and the dedup table built before a removal batch stay exact after
// Compact (ids renumbered, dead tuples unlinked, emptied keys tombstoned)
// with no rebuild, and keep extending correctly afterwards.
func TestCompactRepairsIndexes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := New()
	ref := make(map[[2]ast.Const]bool)
	check := func(op int) {
		rel := d.Relation("e")
		if rel == nil {
			return
		}
		for a := 0; a < 8; a++ {
			var want []ast.Const
			for key := range ref {
				if key[0] == ast.Const(a) {
					want = append(want, key[1])
				}
			}
			ids := rel.MatchIDs([]int{0}, tup(a))
			if len(ids) != len(want) {
				t.Fatalf("op %d: probe a=%d returned %d ids, want %d", op, a, len(ids), len(want))
			}
			seen := make(map[ast.Const]bool)
			for _, id := range ids {
				tu := rel.Tuple(int(id))
				if tu[0] != ast.Const(a) {
					t.Fatalf("op %d: probe a=%d surfaced tuple %v", op, a, tu)
				}
				if seen[tu[1]] {
					t.Fatalf("op %d: probe a=%d returned duplicate %v", op, a, tu)
				}
				seen[tu[1]] = true
				if !ref[[2]ast.Const{tu[0], tu[1]}] {
					t.Fatalf("op %d: probe a=%d surfaced dead tuple %v", op, a, tu)
				}
			}
		}
	}
	for op := 0; op < 4000; op++ {
		a, b := ast.Const(rng.Intn(8)), ast.Const(rng.Intn(60))
		key := [2]ast.Const{a, b}
		if rng.Intn(3) == 0 {
			d.RemoveTuple("e", tup(int(a), int(b)))
			delete(ref, key)
		} else {
			d.AddTuple("e", tup(int(a), int(b)))
			ref[key] = true
		}
		if op == 100 {
			// Build the index early so every later compaction repairs it.
			d.Relation("e").EnsureIndex([]int{0})
		}
		if rng.Intn(40) == 0 {
			d.Compact()
			check(op)
		}
	}
	d.Compact()
	check(-1)
	// Kill every tuple of one key: its slot must tombstone, probes for the
	// other keys keep working, and re-adding the key finds a fresh slot.
	rel := d.Relation("e")
	for key := range ref {
		if key[0] == 3 {
			d.RemoveTuple("e", tup(int(key[0]), int(key[1])))
			delete(ref, key)
		}
	}
	d.Compact()
	if ids := rel.MatchIDs([]int{0}, tup(3)); len(ids) != 0 {
		t.Fatalf("emptied key still probeable: %d ids", len(ids))
	}
	check(-2)
	d.AddTuple("e", tup(3, 59))
	ref[[2]ast.Const{3, 59}] = true
	check(-3)
}
