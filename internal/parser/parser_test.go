package parser

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestParseExample1(t *testing.T) {
	res, err := Parse(`
		% Example 1: transitive closure.
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program
	if len(p.Rules) != 2 {
		t.Fatalf("parsed %d rules", len(p.Rules))
	}
	if got := p.Rules[0].String(); got != "G(x, z) :- A(x, z)." {
		t.Fatalf("rule 0 = %q", got)
	}
	if got := p.Rules[1].String(); got != "G(x, z) :- G(x, y), G(y, z)." {
		t.Fatalf("rule 1 = %q", got)
	}
}

func TestParseFacts(t *testing.T) {
	res, err := Parse(`
		A(1, 2). A(1, 4).
		A(4, 1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facts) != 3 {
		t.Fatalf("facts = %v", res.Facts)
	}
	want := ast.NewGroundAtom("A", ast.Int(1), ast.Int(4))
	if !res.Facts[1].Equal(want) {
		t.Fatalf("fact = %v", res.Facts[1])
	}
}

func TestParseTgd(t *testing.T) {
	tgd, err := ParseTGD("G(x, z) -> A(x, w).")
	if err != nil {
		t.Fatal(err)
	}
	if got := tgd.String(); got != "G(x, z) -> A(x, w)." {
		t.Fatalf("tgd = %q", got)
	}
	multi, err := ParseTGD("G(x, y), G(y, z) -> A(y, w).")
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Lhs) != 2 || len(multi.Rhs) != 1 {
		t.Fatalf("tgd = %v", multi)
	}
}

func TestParseMixedSource(t *testing.T) {
	res, err := Parse(`
		G(x, z) :- A(x, z).        // init rule
		G(x, z) :- G(x, y), G(y, z), A(y, w).
		G(x, z) -> A(x, w).        % a tgd
		A(1, 2).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Program.Rules) != 2 || len(res.TGDs) != 1 || len(res.Facts) != 1 {
		t.Fatalf("rules=%d tgds=%d facts=%d", len(res.Program.Rules), len(res.TGDs), len(res.Facts))
	}
}

func TestParseConstantsInRules(t *testing.T) {
	// Example 4's P2 uses the constant 3: G(x,z) :- A(x,3).
	p, err := ParseProgram("G(x, z) :- A(x, 3), A(z, z).")
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Rules[0].String(); got != "G(x, z) :- A(x, 3), A(z, z)." {
		t.Fatalf("rule = %q", got)
	}
	// Negative integers parse as constants.
	p2, err := ParseProgram("G(x, x) :- A(x, -7).")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Rules[0].Body[0].Args[1].Val != ast.Int(-7) {
		t.Fatalf("negative constant lost: %v", p2.Rules[0])
	}
}

func TestParseSymbolicConstants(t *testing.T) {
	res, err := Parse(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Anc(x, y), Par(y, z).
		Par("ann", "bob").
		Par('bob', 'carol').
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facts) != 2 {
		t.Fatalf("facts = %v", res.Facts)
	}
	ann, ok := res.Symbols.Lookup("ann")
	if !ok {
		t.Fatal("ann not interned")
	}
	if res.Facts[0].Args[0] != ann {
		t.Fatalf("fact args = %v", res.Facts[0])
	}
	if got := res.Facts[0].Format(res.Symbols); got != `Par("ann", "bob")` {
		t.Fatalf("formatted fact = %q", got)
	}
}

func TestParseNegation(t *testing.T) {
	p, err := ParseProgram("Unreach(x) :- Node(x), !Reach(x).")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	if len(r.Body) != 1 || len(r.NegBody) != 1 || r.NegBody[0].Pred != "Reach" {
		t.Fatalf("rule = %v", r)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing period", "G(x, z) :- A(x, z)", "expected"},
		{"variable fact", "A(x, 2).", "has variables"},
		{"lowercase predicate", "g(x) :- A(x).", "upper-case"},
		{"uppercase variable", "G(X) :- A(X).", "upper-case"},
		{"range restriction", "G(x, q) :- A(x, y).", "range-restricted"},
		{"bad token", "G(x) :- A(x) & B(x).", "unexpected character"},
		{"unterminated string", `A("abc).`, "unterminated"},
		{"bad colon", "G(x) : A(x).", "expected ':-'"},
		{"stray arrow rhs", "G(x) -> .", "expected identifier"},
		{"arity clash", "G(x) :- A(x).\nG(x, y) :- A(x), A(y).", "arities"},
		{"empty atom", "G() :- A(x).", "term"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}

func TestParseProgramRejectsFactsAndTgds(t *testing.T) {
	if _, err := ParseProgram("A(1, 2)."); err == nil {
		t.Fatal("fact accepted by ParseProgram")
	}
	if _, err := ParseProgram("G(x, y) -> A(x, w)."); err == nil {
		t.Fatal("tgd accepted by ParseProgram")
	}
}

func TestParseAtom(t *testing.T) {
	a, err := ParseAtom("G(x, 3, y)")
	if err != nil {
		t.Fatal(err)
	}
	if got := a.String(); got != "G(x, 3, y)" {
		t.Fatalf("atom = %q", got)
	}
	if _, err := ParseAtom("G(x) extra"); err == nil {
		t.Fatal("trailing junk accepted")
	}
}

func TestRoundTrip(t *testing.T) {
	srcs := []string{
		"G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n",
		"G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).\n",
		"G(x, z) :- A(x, z), C(z).\nG(x, z) :- A(x, y), G(y, z), G(y, w), C(w).\n",
	}
	for _, src := range srcs {
		p := MustParseProgram(src)
		if got := p.String(); got != src {
			t.Errorf("round trip: got %q want %q", got, src)
		}
		// Idempotence: parsing the printed form prints the same.
		q := MustParseProgram(p.String())
		if !p.Equal(q) {
			t.Errorf("reparse of %q differs", src)
		}
	}
}

func TestLineColumnInErrors(t *testing.T) {
	_, err := Parse("G(x, z) :- A(x, z).\nG(x z) :- A(x, z).")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("error %q lacks line info", err)
	}
}

func TestSharedSymbolTable(t *testing.T) {
	syms := ast.NewSymbolTable()
	r1, err := ParseWithSymbols(`Par("ann", "bob").`, syms)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := ParseWithSymbols(`Par("bob", "carol").`, syms)
	if err != nil {
		t.Fatal(err)
	}
	bob1 := r1.Facts[0].Args[1]
	bob2 := r2.Facts[0].Args[0]
	if bob1 != bob2 {
		t.Fatal("shared table interned bob differently")
	}
}

func TestParseDatabase(t *testing.T) {
	d, syms, err := ParseDatabase(`A(1, 2). Par("ann", "bob").`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("database: %v", d)
	}
	ann, ok := syms.Lookup("ann")
	if !ok {
		t.Fatal("ann not interned")
	}
	if !d.Has(ast.GroundAtom{Pred: "Par", Args: []ast.Const{ann, syms.Intern("bob")}}) {
		t.Fatalf("fact missing: %v", d)
	}
	// Database text round-trips through the parser.
	d2, _, err := ParseDatabase(d.Format(syms), syms)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Fatal("database text round trip failed")
	}
	// Rules and tgds rejected.
	if _, _, err := ParseDatabase("G(x) :- A(x).", nil); err == nil {
		t.Fatal("rule accepted")
	}
	if _, _, err := ParseDatabase("G(x) -> A(x).", nil); err == nil {
		t.Fatal("tgd accepted")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	assertPanics := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("MustParse", func() { MustParse("G(x :-") })
	assertPanics("MustParseProgram", func() { MustParseProgram("A(1).") })
	assertPanics("MustParseTGD", func() { MustParseTGD("G(x) :- A(x).") })
	assertPanics("MustParseAtom", func() { MustParseAtom("not an atom") })
}

func TestMustHelpersSucceed(t *testing.T) {
	if MustParse("A(1).") == nil {
		t.Fatal("MustParse nil")
	}
	if MustParseTGD("G(x) -> A(x).").IsFull() != true {
		t.Fatal("MustParseTGD wrong")
	}
	if MustParseAtom("G(x)").Pred != "G" {
		t.Fatal("MustParseAtom wrong")
	}
}

func TestAnonymousVariables(t *testing.T) {
	p, err := ParseProgram("G(x) :- A(x, _), B(_, _).")
	if err != nil {
		t.Fatal(err)
	}
	r := p.Rules[0]
	// Three occurrences of _ become three DISTINCT variables.
	vars := map[string]bool{}
	for _, a := range r.Body {
		for _, tm := range a.Args {
			if tm.IsVar {
				vars[tm.Name] = true
			}
		}
	}
	if len(vars) != 4 { // x plus three fresh
		t.Fatalf("vars = %v", vars)
	}
	// An anonymous variable in the head has no binding: rejected by range
	// restriction (each _ is fresh, so it cannot appear in the body).
	if _, err := ParseProgram("G(_) :- A(x)."); err == nil {
		t.Fatal("anonymous head variable accepted")
	}
}
