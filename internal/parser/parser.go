package parser

import (
	"fmt"
	"strconv"
	"unicode"
	"unicode/utf8"

	"repro/internal/ast"
	"repro/internal/db"
)

// Result is the outcome of parsing a source text: the rules, the ground
// facts (atoms stated without a body, forming an input DB), the tgds, and
// the symbol table interning any quoted constants.
type Result struct {
	Program *ast.Program
	Facts   []ast.GroundAtom
	// FactPos[i] is the source position of Facts[i]; GroundAtom stays a
	// position-free value type because it is the evaluator's hot currency.
	FactPos []ast.Pos
	TGDs    []ast.TGD
	Symbols *ast.SymbolTable
}

type parser struct {
	lex  *lexer
	tok  token
	syms *ast.SymbolTable
	// anon numbers the anonymous variables ('_'), each occurrence fresh.
	anon int
}

// Parse parses a full source text of rules, facts and tgds, validating the
// resulting program. A fresh symbol table is allocated for quoted constants.
func Parse(src string) (*Result, error) {
	return ParseWithSymbols(src, ast.NewSymbolTable())
}

// ParseWithSymbols is Parse but interning quoted constants into the supplied
// table, so that several sources can share a constant space.
func ParseWithSymbols(src string, syms *ast.SymbolTable) (*Result, error) {
	res, err := parse(src, syms)
	if err != nil {
		return nil, err
	}
	if err := res.Program.Validate(); err != nil {
		return nil, err
	}
	for _, t := range res.TGDs {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ParseLoose is Parse without the final well-formedness validation: the
// result may contain rules that are unsafe, not range-restricted, or
// arity-inconsistent. It is the entry point of the static analyzer
// (internal/analysis), which re-reports those violations as positioned
// diagnostics instead of a single error; everything else should use Parse.
func ParseLoose(src string) (*Result, error) {
	return parse(src, ast.NewSymbolTable())
}

func parse(src string, syms *ast.SymbolTable) (*Result, error) {
	p := &parser{lex: newLexer(src), syms: syms}
	if err := p.advance(); err != nil {
		return nil, err
	}
	res := &Result{Program: ast.NewProgram(), Symbols: syms}
	for p.tok.kind != tokEOF {
		if err := p.statement(res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// MustParse is Parse but panics on error; intended for tests and examples
// with literal sources.
func MustParse(src string) *Result {
	res, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return res
}

// ParseProgram parses a source containing only rules and returns the
// program. Facts and tgds in the source are rejected.
func ParseProgram(src string) (*ast.Program, error) {
	res, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(res.Facts) > 0 {
		return nil, fmt.Errorf("parser: unexpected fact %s in program source", res.Facts[0])
	}
	if len(res.TGDs) > 0 {
		return nil, fmt.Errorf("parser: unexpected tgd %s in program source", res.TGDs[0])
	}
	return res.Program, nil
}

// MustParseProgram is ParseProgram but panics on error.
func MustParseProgram(src string) *ast.Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseTGD parses a single tgd.
func ParseTGD(src string) (ast.TGD, error) {
	res, err := Parse(src)
	if err != nil {
		return ast.TGD{}, err
	}
	if len(res.TGDs) != 1 || len(res.Program.Rules) > 0 || len(res.Facts) > 0 {
		return ast.TGD{}, fmt.Errorf("parser: expected exactly one tgd")
	}
	return res.TGDs[0], nil
}

// MustParseTGD is ParseTGD but panics on error.
func MustParseTGD(src string) ast.TGD {
	t, err := ParseTGD(src)
	if err != nil {
		panic(err)
	}
	return t
}

// ParseAtom parses a single atom (no trailing period required). Quoted
// constants are interned into a fresh table; when the atom must share a
// constant space with an already-parsed source (e.g. a CLI query against a
// file's facts), use ParseAtomWithSymbols.
func ParseAtom(src string) (ast.Atom, error) {
	return ParseAtomWithSymbols(src, ast.NewSymbolTable())
}

// ParseAtomWithSymbols parses a single atom, interning quoted constants
// into syms so they identify with constants from other sources parsed with
// the same table.
func ParseAtomWithSymbols(src string, syms *ast.SymbolTable) (ast.Atom, error) {
	p := &parser{lex: newLexer(src), syms: syms}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	a, err := p.atom()
	if err != nil {
		return ast.Atom{}, err
	}
	if p.tok.kind != tokEOF && p.tok.kind != tokPeriod {
		return ast.Atom{}, p.unexpected("end of atom")
	}
	return a, nil
}

// MustParseAtom is ParseAtom but panics on error.
func MustParseAtom(src string) ast.Atom {
	a, err := ParseAtom(src)
	if err != nil {
		panic(err)
	}
	return a
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.unexpected(kind.String())
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) unexpected(want string) error {
	got := p.tok.kind.String()
	if p.tok.text != "" {
		got = fmt.Sprintf("%s %q", got, p.tok.text)
	}
	return fmt.Errorf("%s: expected %s, found %s", p.tok.pos, want, got)
}

// statement parses one of: fact, rule, tgd.
func (p *parser) statement(res *Result) error {
	first, err := p.atom()
	if err != nil {
		return err
	}
	switch p.tok.kind {
	case tokPeriod:
		// A fact or a bodiless rule; ground atoms become facts.
		if err := p.advance(); err != nil {
			return err
		}
		if !first.IsGround() {
			return fmt.Errorf("%s: fact %s has variables; a rule needs a body", first.Pos, first)
		}
		res.Facts = append(res.Facts, first.MustGround(nil))
		res.FactPos = append(res.FactPos, first.Pos)
		return nil

	case tokImplies:
		if err := p.advance(); err != nil {
			return err
		}
		rule := ast.Rule{Head: first, Pos: first.Pos}
		for {
			neg := false
			if p.tok.kind == tokBang {
				neg = true
				if err := p.advance(); err != nil {
					return err
				}
			}
			a, err := p.atom()
			if err != nil {
				return err
			}
			if neg {
				rule.NegBody = append(rule.NegBody, a)
			} else {
				rule.Body = append(rule.Body, a)
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokPeriod); err != nil {
			return err
		}
		res.Program.Rules = append(res.Program.Rules, rule)
		return nil

	case tokComma, tokArrow:
		// A tgd: LHS conjunction -> RHS conjunction.
		lhs := []ast.Atom{first}
		for p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
			a, err := p.atom()
			if err != nil {
				return err
			}
			lhs = append(lhs, a)
		}
		if _, err := p.expect(tokArrow); err != nil {
			return err
		}
		var rhs []ast.Atom
		for {
			a, err := p.atom()
			if err != nil {
				return err
			}
			rhs = append(rhs, a)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return err
				}
				continue
			}
			break
		}
		if _, err := p.expect(tokPeriod); err != nil {
			return err
		}
		res.TGDs = append(res.TGDs, ast.TGD{Lhs: lhs, Rhs: rhs})
		return nil

	default:
		return p.unexpected("'.', ':-', ',' or '->'")
	}
}

// atom parses Pred(t1, ..., tn).
func (p *parser) atom() (ast.Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return ast.Atom{}, err
	}
	if !isPredicateName(name.text) {
		return ast.Atom{}, fmt.Errorf("%s: predicate name %q must begin with an upper-case letter", name.pos, name.text)
	}
	if _, err := p.expect(tokLParen); err != nil {
		return ast.Atom{}, err
	}
	var args []ast.Term
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		args = append(args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return ast.Atom{Pred: name.text, Args: args, Pos: name.pos}, nil
}

func (p *parser) term() (ast.Term, error) {
	switch p.tok.kind {
	case tokIdent:
		text := p.tok.text
		if isPredicateName(text) {
			return ast.Term{}, fmt.Errorf("%s: %q begins with an upper-case letter; variables are lower-case and constants are integers or quoted", p.tok.pos, text)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		if text == "_" {
			// Anonymous variable: every occurrence is a fresh variable, so
			// G(x, _) matches any second argument without joining.
			p.anon++
			return ast.Var(fmt.Sprintf("_%d", p.anon)), nil
		}
		return ast.Var(text), nil
	case tokInt:
		n, err := strconv.ParseInt(p.tok.text, 10, 64)
		if err != nil {
			return ast.Term{}, fmt.Errorf("%s: bad integer %q: %v", p.tok.pos, p.tok.text, err)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.IntTerm(n), nil
	case tokString:
		c := p.syms.Intern(p.tok.text)
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.Con(c), nil
	default:
		return ast.Term{}, p.unexpected("term (variable, integer, or quoted constant)")
	}
}

func isPredicateName(s string) bool {
	r, _ := utf8.DecodeRuneInString(s)
	return unicode.IsUpper(r)
}

// ParseDatabase parses a source containing only facts and returns them as
// a database, interning quoted constants into syms (which may be nil for a
// fresh table). Rules or tgds in the source are rejected — use Parse for
// mixed sources.
func ParseDatabase(src string, syms *ast.SymbolTable) (*db.Database, *ast.SymbolTable, error) {
	if syms == nil {
		syms = ast.NewSymbolTable()
	}
	res, err := ParseWithSymbols(src, syms)
	if err != nil {
		return nil, nil, err
	}
	if len(res.Program.Rules) > 0 {
		return nil, nil, fmt.Errorf("parser: unexpected rule %s in database source", res.Program.Rules[0])
	}
	if len(res.TGDs) > 0 {
		return nil, nil, fmt.Errorf("parser: unexpected tgd %s in database source", res.TGDs[0])
	}
	return db.FromFacts(res.Facts), syms, nil
}
