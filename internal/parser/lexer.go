// Package parser implements a lexer and recursive-descent parser for the
// concrete Datalog syntax used throughout the repository:
//
//	G(x, z) :- A(x, y), G(y, z).      % a rule
//	A(1, 2).                          % a fact (ground atom)
//	G(x, z) -> A(x, w).               % a tgd (Section VIII)
//	P(x) :- A(x), !B(x).              % stratified negation (extension)
//
// Identifiers beginning with an upper-case letter are predicate symbols;
// identifiers beginning with a lower-case letter are variables ('_' is the
// anonymous variable — fresh at every occurrence); integers and
// quoted strings are constants (quoted strings are interned through a
// SymbolTable, honouring the paper's "constants are integers" convention
// internally). Comments run from '%' or "//" to end of line.
package parser

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/ast"
)

type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokIdent             // predicate or variable name
	tokInt               // integer literal
	tokString            // quoted symbolic constant
	tokLParen            // (
	tokRParen            // )
	tokComma             // ,
	tokPeriod            // .
	tokImplies           // :-
	tokArrow             // ->
	tokBang              // !
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokPeriod:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokArrow:
		return "'->'"
	case tokBang:
		return "'!'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	pos  ast.Pos
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(pos ast.Pos, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", pos.Line, pos.Col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() rune {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case r == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	pos := ast.Pos{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{kind: tokLParen, text: "(", pos: pos}, nil
	case r == ')':
		l.advance()
		return token{kind: tokRParen, text: ")", pos: pos}, nil
	case r == ',':
		l.advance()
		return token{kind: tokComma, text: ",", pos: pos}, nil
	case r == '.':
		l.advance()
		return token{kind: tokPeriod, text: ".", pos: pos}, nil
	case r == '!':
		l.advance()
		return token{kind: tokBang, text: "!", pos: pos}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(pos, "expected ':-' but found ':%c'", l.peek())
		}
		l.advance()
		return token{kind: tokImplies, text: ":-", pos: pos}, nil
	case r == '-':
		l.advance()
		if l.peek() == '>' {
			l.advance()
			return token{kind: tokArrow, text: "->", pos: pos}, nil
		}
		// Negative integer literal.
		if !unicode.IsDigit(l.peek()) {
			return token{}, l.errorf(pos, "expected '->' or digit after '-'")
		}
		text := "-" + l.lexDigits()
		return token{kind: tokInt, text: text, pos: pos}, nil
	case unicode.IsDigit(r):
		return token{kind: tokInt, text: l.lexDigits(), pos: pos}, nil
	case r == '"' || r == '\'':
		quote := r
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(pos, "unterminated string literal")
			}
			c := l.advance()
			if c == quote {
				break
			}
			if c == '\n' {
				return token{}, l.errorf(pos, "newline in string literal")
			}
			sb.WriteRune(c)
		}
		return token{kind: tokString, text: sb.String(), pos: pos}, nil
	case unicode.IsLetter(r) || r == '_':
		var sb strings.Builder
		for l.pos < len(l.src) {
			c := l.peek()
			if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '\'' {
				sb.WriteRune(l.advance())
			} else {
				break
			}
		}
		return token{kind: tokIdent, text: sb.String(), pos: pos}, nil
	default:
		return token{}, l.errorf(pos, "unexpected character %q", r)
	}
}

func (l *lexer) lexDigits() string {
	var sb strings.Builder
	for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
		sb.WriteRune(l.advance())
	}
	return sb.String()
}
