package parser_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/parser"
	"repro/internal/workload"
)

// TestQuickPrintParseRoundTrip checks that printing a random program and
// re-parsing it yields the identical program — the parser and printer are
// exact inverses on the AST's printable range.
func TestQuickPrintParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := workload.RandomProgram(rng, 1+rng.Intn(5))
		if p.Validate() != nil {
			return true
		}
		q, err := parser.ParseProgram(p.String())
		if err != nil {
			return false
		}
		return p.Equal(q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
