package parser

import (
	"testing"
)

// FuzzParse checks the parser's robustness (no panics on arbitrary input)
// and the printer round-trip on every input that parses. With `go test`
// only the seed corpus runs; `go test -fuzz=FuzzParse` explores further.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"G(x, z) :- A(x, z).",
		"G(x, z) :- G(x, y), G(y, z).",
		"A(1, 2). A(-3, 4).",
		"G(x, z) -> A(x, w).",
		"P(x) :- A(x), !B(x).",
		`Par("ann", 'bob').`,
		"% comment\nG(x) :- A(x). // trailing",
		"G(x",
		":-",
		"G(x) :- .",
		"G(x,) :- A(x).",
		"G(x) :- A(x)",
		"\"unterminated",
		"G(x, 99999999999999999999999) :- A(x).",
		"G(日本語) :- A(日本語).",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Anything accepted must round-trip through the printer.
		printed := res.Program.String()
		for _, fact := range res.Facts {
			printed += fact.String() + ".\n"
		}
		for _, tgd := range res.TGDs {
			printed += tgd.String() + "\n"
		}
		if _, err := Parse(printed); err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
	})
}
