package explain

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
	"repro/internal/workload"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

func TestExplainInputFact(t *testing.T) {
	p := workload.TransitiveClosure()
	in := db.FromFacts([]ast.GroundAtom{ga("A", 1, 2)})
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := pr.Explain(ga("A", 1, 2))
	if !ok || !d.IsInput() || d.Size() != 1 || d.Depth() != 1 {
		t.Fatalf("input explanation: %v", d)
	}
}

func TestExplainDerivedFact(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 4) // A(0,1)..A(3,4)
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	goal := ga("G", 0, 4)
	d, ok := pr.Explain(goal)
	if !ok {
		t.Fatal("G(0,4) not derivable")
	}
	if d.IsInput() || !d.Fact.Equal(goal) {
		t.Fatalf("root: %v", d)
	}
	// The proof must verify against the program and input.
	if err := Verify(p, in, d); err != nil {
		t.Fatalf("proof does not verify: %v\n%s", err, d)
	}
	// Leaves must all be input A-facts.
	var checkLeaves func(*Derivation)
	checkLeaves = func(n *Derivation) {
		if n.IsInput() {
			if n.Fact.Pred != "A" {
				t.Fatalf("leaf %v is not an A fact", n.Fact)
			}
			return
		}
		for _, prem := range n.Premises {
			checkLeaves(prem)
		}
	}
	checkLeaves(d)
}

func TestExplainAbsentFact(t *testing.T) {
	p := workload.TransitiveClosure()
	pr, err := NewProver(p, workload.Chain("A", 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pr.Explain(ga("G", 2, 0)); ok {
		t.Fatal("explained an absent fact")
	}
}

func TestProverOutputMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	p := workload.TransitiveClosure()
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		in := workload.RandomDigraph("A", n, 2*n, int64(trial))
		pr, err := NewProver(p, in)
		if err != nil {
			t.Fatal(err)
		}
		want := eval.MustEval(p, in)
		if !pr.Output().Equal(want) {
			t.Fatalf("prover output differs from eval on trial %d", trial)
		}
		// Every derived fact has a verifying proof.
		for _, f := range want.Facts() {
			d, ok := pr.Explain(f)
			if !ok {
				t.Fatalf("no explanation for %v", f)
			}
			if err := Verify(p, in, d); err != nil {
				t.Fatalf("proof of %v invalid: %v", f, err)
			}
		}
	}
}

func TestExplainWithNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	in := db.FromFacts([]ast.GroundAtom{
		ga("Src", 1), ga("E", 1, 2), ga("Node", 1), ga("Node", 5),
	})
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := pr.Explain(ga("Unreach", 5))
	if !ok {
		t.Fatal("Unreach(5) not derived")
	}
	// The positive premise is Node(5); negation has no premise node.
	if len(d.Premises) != 1 || !d.Premises[0].Fact.Equal(ga("Node", 5)) {
		t.Fatalf("premises: %v", d)
	}
	if err := Verify(p, in, d); err != nil {
		t.Fatalf("negation proof invalid: %v", err)
	}
	if _, ok := pr.Explain(ga("Unreach", 1)); ok {
		t.Fatal("Unreach(1) wrongly derived")
	}
}

func TestFormatting(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 2)
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := pr.Explain(ga("G", 0, 2))
	if !ok {
		t.Fatal("G(0,2) missing")
	}
	s := d.Format(p, nil)
	if !strings.Contains(s, "G(0, 2)") || !strings.Contains(s, "[input]") || !strings.Contains(s, "rule") {
		t.Fatalf("Format:\n%s", s)
	}
	if d.String() == "" {
		t.Fatal("String empty")
	}
}

func TestVerifyRejectsTamperedProofs(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 3)
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := pr.Explain(ga("G", 0, 3))

	// Tamper 1: change the root fact.
	bad := *d
	bad.Fact = ga("G", 0, 9)
	if err := Verify(p, in, &bad); err == nil {
		t.Fatal("tampered root accepted")
	}
	// Tamper 2: fabricate an input leaf.
	leaf := &Derivation{Fact: ga("A", 7, 8), RuleIndex: -1}
	if err := Verify(p, in, leaf); err == nil {
		t.Fatal("fabricated leaf accepted")
	}
	// Tamper 3: wrong rule index.
	bad2 := *d
	bad2.RuleIndex = 0
	if err := Verify(p, in, &bad2); err == nil {
		t.Fatal("wrong rule index accepted")
	}
}

func TestDerivationAcyclic(t *testing.T) {
	// Cyclic EDBs must still yield finite proofs.
	p := workload.TransitiveClosure()
	in := workload.Cycle("A", 5)
	pr, err := NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range pr.Output().Facts() {
		d, ok := pr.Explain(f)
		if !ok {
			t.Fatalf("no explanation for %v", f)
		}
		if d.Size() > 1<<16 {
			t.Fatalf("suspiciously huge proof for %v", f)
		}
		if err := Verify(p, in, d); err != nil {
			t.Fatal(err)
		}
	}
}
