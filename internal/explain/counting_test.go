package explain_test

import (
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/explain"
	"repro/internal/minimize"
	"repro/internal/parser"
	"repro/internal/workload"
)

func TestCountingProverOutputMatchesEval(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 6)
	cp, err := explain.NewCountingProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Output().Equal(eval.MustEval(p, in)) {
		t.Fatal("counting prover output differs from eval")
	}
}

func TestJustificationCounts(t *testing.T) {
	// On a 3-chain with doubled-TC: G(0,3) is justified by the base rule
	// never (not an A edge) and by the recursive rule via two split points
	// (y=1 and y=2).
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 3)
	cp, err := explain.NewCountingProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	g03 := ast.NewGroundAtom("G", ast.Int(0), ast.Int(3))
	if got := cp.Justifications(g03); got != 2 {
		t.Fatalf("G(0,3) justifications = %d, want 2", got)
	}
	// G(0,1) is justified once (base rule only).
	g01 := ast.NewGroundAtom("G", ast.Int(0), ast.Int(1))
	if got := cp.Justifications(g01); got != 1 {
		t.Fatalf("G(0,1) justifications = %d, want 1", got)
	}
	// Input facts and absent facts have none.
	if cp.Justifications(ast.NewGroundAtom("A", ast.Int(0), ast.Int(1))) != 0 {
		t.Fatal("input fact has justifications")
	}
	if cp.Justifications(ast.NewGroundAtom("G", ast.Int(3), ast.Int(0))) != 0 {
		t.Fatal("absent fact has justifications")
	}
}

func TestCountProofs(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 4)
	cp, err := explain.NewCountingProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	// Proof trees of G(0,n) under doubled TC follow the Catalan-like
	// bracketing counts: G(0,1)=1, G(0,2)=1, G(0,3)=2, G(0,4)=5.
	wants := map[int]int{1: 1, 2: 1, 3: 2, 4: 5}
	for n, want := range wants {
		got := cp.CountProofs(ast.NewGroundAtom("G", ast.Int(0), ast.Int(int64(n))), 0)
		if got != want {
			t.Fatalf("proofs of G(0,%d) = %d, want %d", n, got, want)
		}
	}
	// Input facts count one proof; absent facts zero.
	if cp.CountProofs(ast.NewGroundAtom("A", ast.Int(0), ast.Int(1)), 0) != 1 {
		t.Fatal("input proof count wrong")
	}
	if cp.CountProofs(ast.NewGroundAtom("G", ast.Int(4), ast.Int(0)), 0) != 0 {
		t.Fatal("absent proof count wrong")
	}
}

func TestCountProofsCap(t *testing.T) {
	// A cycle explodes the proof count; the cap must bound the traversal.
	p := workload.TransitiveClosure()
	in := workload.Cycle("A", 6)
	cp, err := explain.NewCountingProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	got := cp.CountProofs(ast.NewGroundAtom("G", ast.Int(0), ast.Int(3)), 100)
	if got != 100 {
		t.Fatalf("capped count = %d, want 100", got)
	}
}

// TestRedundancyMultipliesJustifications is the provenance rendition of
// the paper's join-reduction claim: a redundant body atom multiplies the
// justifications of the same facts, and Fig. 2 minimization removes
// exactly that duplicate work.
func TestRedundancyMultipliesJustifications(t *testing.T) {
	// G(x,w) is subsumed by G(x,y) (map w to y), so it is redundant under
	// UNIFORM equivalence and Fig. 2 removes it — while it stands, every
	// recursive firing is multiplied by the out-degree of x.
	bloated := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z), G(x, w).
	`)
	min, _, err := minimize.Program(bloated, minimize.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := workload.Chain("A", 5)
	cpBloat, err := explain.NewCountingProver(bloated, in)
	if err != nil {
		t.Fatal(err)
	}
	cpMin, err := explain.NewCountingProver(min, in)
	if err != nil {
		t.Fatal(err)
	}
	if !cpBloat.Output().Equal(cpMin.Output()) {
		t.Fatal("programs differ semantically")
	}
	if cpBloat.TotalJustifications() <= cpMin.TotalJustifications() {
		t.Fatalf("redundant atom did not multiply justifications: %d vs %d",
			cpBloat.TotalJustifications(), cpMin.TotalJustifications())
	}
}

func TestCountingProverRejectsNegation(t *testing.T) {
	p := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := explain.NewCountingProver(p, db.New()); err == nil {
		t.Fatal("negation accepted")
	}
}
