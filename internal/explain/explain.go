// Package explain records provenance during bottom-up evaluation and
// reconstructs derivation trees: for any fact of P(d), a proof tree whose
// leaves are input facts and whose internal nodes are rule instantiations
// (the "deductions" of Section III). Besides being a practical debugging
// aid for optimized programs, a derivation tree is a machine-checkable
// certificate that a fact really belongs to the least model.
package explain

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
)

// Derivation is a proof tree: Fact is derived by instantiating rule
// RuleIndex (into the program passed to Explain) with Binding, whose body
// instances are proved by Premises. Input facts have RuleIndex == -1 and
// no premises.
type Derivation struct {
	Fact      ast.GroundAtom
	RuleIndex int
	Binding   ast.Binding
	Premises  []*Derivation
}

// IsInput reports whether the node is an input-fact leaf.
func (d *Derivation) IsInput() bool { return d.RuleIndex < 0 }

// Size returns the number of nodes in the tree.
func (d *Derivation) Size() int {
	n := 1
	for _, p := range d.Premises {
		n += p.Size()
	}
	return n
}

// Depth returns the height of the tree (1 for a leaf).
func (d *Derivation) Depth() int {
	max := 0
	for _, p := range d.Premises {
		if dep := p.Depth(); dep > max {
			max = dep
		}
	}
	return max + 1
}

// Format renders the tree with indentation.
func (d *Derivation) Format(p *ast.Program, tab *ast.SymbolTable) string {
	var sb strings.Builder
	d.format(&sb, p, tab, 0)
	return sb.String()
}

func (d *Derivation) format(sb *strings.Builder, p *ast.Program, tab *ast.SymbolTable, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(d.Fact.Format(tab))
	if d.IsInput() {
		sb.WriteString("   [input]\n")
		return
	}
	fmt.Fprintf(sb, "   [rule %d: %s]\n", d.RuleIndex, p.Rules[d.RuleIndex].Format(tab))
	for _, prem := range d.Premises {
		prem.format(sb, p, tab, depth+1)
	}
}

// String renders the tree without rule texts or symbol table.
func (d *Derivation) String() string {
	var sb strings.Builder
	var rec func(*Derivation, int)
	rec = func(n *Derivation, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Fact.String())
		if n.IsInput() {
			sb.WriteString(" [input]")
		} else {
			fmt.Fprintf(&sb, " [rule %d]", n.RuleIndex)
		}
		sb.WriteString("\n")
		for _, p := range n.Premises {
			rec(p, depth+1)
		}
	}
	rec(d, 0)
	return sb.String()
}

// justification records how a fact was first derived.
type justification struct {
	ruleIndex int
	binding   ast.Binding
	premises  []ast.GroundAtom
}

// Prover evaluates a program once, recording one justification per derived
// fact, and then answers Explain queries without re-evaluation.
type Prover struct {
	program *ast.Program
	output  *db.Database
	just    map[string]justification
	input   map[string]bool
}

// NewProver evaluates p on input (stratified semantics if negation is
// present) while recording provenance.
func NewProver(p *ast.Program, input *db.Database) (*Prover, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pr := &Prover{
		program: p,
		output:  input.Clone(),
		just:    make(map[string]justification),
		input:   make(map[string]bool),
	}
	for _, f := range input.Facts() {
		pr.input[f.Key()] = true
	}

	// Group rules by stratum so negation reads completed relations only.
	var ruleGroups [][]int
	if p.HasNegation() {
		strata, err := depgraph.Strata(p)
		if err != nil {
			return nil, err
		}
		for _, stratum := range strata {
			in := make(map[string]bool)
			for _, pred := range stratum {
				in[pred] = true
			}
			var idxs []int
			for i, r := range p.Rules {
				if in[r.Head.Pred] {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) > 0 {
				ruleGroups = append(ruleGroups, idxs)
			}
		}
	} else {
		all := make([]int, len(p.Rules))
		for i := range all {
			all[i] = i
		}
		ruleGroups = [][]int{all}
	}

	for _, group := range ruleGroups {
		pr.fixpoint(group)
	}
	return pr, nil
}

// fixpoint saturates one rule group, recording the first justification of
// each new fact. Premises always precede the facts they justify in
// insertion order, so recorded provenance is acyclic by construction.
func (pr *Prover) fixpoint(ruleIdxs []int) {
	for {
		added := false
		for _, ri := range ruleIdxs {
			r := pr.program.Rules[ri]
			cs := make([]db.Constraint, len(r.Body))
			for i, a := range db.OrderForJoin(r.Body, nil) {
				cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
			}
			b := ast.Binding{}
			db.MatchSeq(pr.output, cs, b, func() bool {
				for _, n := range r.NegBody {
					if pr.output.Has(n.MustGround(b)) {
						return true
					}
				}
				head := r.Head.MustGround(b)
				if pr.output.Has(head) {
					return true
				}
				prems := make([]ast.GroundAtom, len(r.Body))
				for i, a := range r.Body {
					prems[i] = a.MustGround(b)
				}
				pr.output.Add(head)
				pr.just[head.Key()] = justification{
					ruleIndex: ri,
					binding:   b.Clone(),
					premises:  prems,
				}
				added = true
				return true
			})
		}
		if !added {
			return
		}
	}
}

// Output returns the computed database P(input).
func (pr *Prover) Output() *db.Database { return pr.output }

// Explain returns a derivation tree for the goal fact, or false when the
// fact is not in P(input).
func (pr *Prover) Explain(goal ast.GroundAtom) (*Derivation, bool) {
	if !pr.output.Has(goal) {
		return nil, false
	}
	return pr.build(goal), true
}

func (pr *Prover) build(fact ast.GroundAtom) *Derivation {
	if pr.input[fact.Key()] {
		return &Derivation{Fact: fact, RuleIndex: -1}
	}
	j, ok := pr.just[fact.Key()]
	if !ok {
		// Defensive: a fact in the output is either input or justified.
		return &Derivation{Fact: fact, RuleIndex: -1}
	}
	node := &Derivation{Fact: fact, RuleIndex: j.ruleIndex, Binding: j.binding}
	for _, prem := range j.premises {
		node.Premises = append(node.Premises, pr.build(prem))
	}
	return node
}

// Verify checks that the tree is a valid proof with respect to p and the
// input database: leaves are input facts, and every internal node's rule
// instantiation is consistent (binding grounds the rule's head and body to
// the node's fact and premises). It returns the first inconsistency found.
func Verify(p *ast.Program, input *db.Database, d *Derivation) error {
	if d.IsInput() {
		if !input.Has(d.Fact) {
			return fmt.Errorf("explain: leaf %v is not an input fact", d.Fact)
		}
		return nil
	}
	if d.RuleIndex >= len(p.Rules) {
		return fmt.Errorf("explain: rule index %d out of range", d.RuleIndex)
	}
	r := p.Rules[d.RuleIndex]
	head, err := r.Head.Ground(d.Binding)
	if err != nil {
		return err
	}
	if !head.Equal(d.Fact) {
		return fmt.Errorf("explain: rule %d head %v does not ground to %v", d.RuleIndex, head, d.Fact)
	}
	if len(d.Premises) != len(r.Body) {
		return fmt.Errorf("explain: rule %d expects %d premises, tree has %d", d.RuleIndex, len(r.Body), len(d.Premises))
	}
	for i, a := range r.Body {
		g, err := a.Ground(d.Binding)
		if err != nil {
			return err
		}
		if !g.Equal(d.Premises[i].Fact) {
			return fmt.Errorf("explain: rule %d premise %d grounds to %v, tree has %v", d.RuleIndex, i, g, d.Premises[i].Fact)
		}
		if err := Verify(p, input, d.Premises[i]); err != nil {
			return err
		}
	}
	return nil
}

// CountingProver is a Prover variant that records EVERY justification of
// every derived fact (not just the first), enabling derivation counting —
// the "how much duplicate work do redundant atoms cause" measure behind
// the paper's join-reduction claim: a redundant body atom with k matches
// multiplies a rule's derivations of the same fact by k.
type CountingProver struct {
	program *ast.Program
	output  *db.Database
	justs   map[string][]justification
	input   map[string]bool
}

// NewCountingProver evaluates p on input recording all justifications.
// Negation is rejected (counting under stratified semantics would need
// per-stratum bookkeeping this analysis does not require).
func NewCountingProver(p *ast.Program, input *db.Database) (*CountingProver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("explain: counting requires pure Datalog")
	}
	cp := &CountingProver{
		program: p,
		output:  input.Clone(),
		justs:   make(map[string][]justification),
		input:   make(map[string]bool),
	}
	for _, f := range input.Facts() {
		cp.input[f.Key()] = true
	}
	// Naive rounds, recording every distinct (rule, binding) instantiation
	// exactly once: iterate until neither facts nor justifications grow.
	seen := make(map[string]bool) // rule index + premise keys
	for {
		grew := false
		for ri, r := range p.Rules {
			cs := make([]db.Constraint, len(r.Body))
			for i, a := range db.OrderForJoin(r.Body, nil) {
				cs[i] = db.Constraint{Atom: a, Window: db.AllRounds}
			}
			b := ast.Binding{}
			rule := r
			db.MatchSeq(cp.output, cs, b, func() bool {
				head := rule.Head.MustGround(b)
				prems := make([]ast.GroundAtom, len(rule.Body))
				sig := fmt.Sprintf("r%d", ri)
				for i, a := range rule.Body {
					prems[i] = a.MustGround(b)
					sig += "|" + prems[i].Key()
				}
				if seen[sig] {
					return true
				}
				seen[sig] = true
				cp.output.Add(head)
				cp.justs[head.Key()] = append(cp.justs[head.Key()], justification{
					ruleIndex: ri,
					binding:   b.Clone(),
					premises:  prems,
				})
				grew = true
				return true
			})
		}
		if !grew {
			return cp, nil
		}
	}
}

// Output returns the computed database.
func (cp *CountingProver) Output() *db.Database { return cp.output }

// Justifications returns how many distinct rule instantiations derive the
// fact (0 for pure input facts and absent facts).
func (cp *CountingProver) Justifications(fact ast.GroundAtom) int {
	return len(cp.justs[fact.Key()])
}

// TotalJustifications sums distinct rule instantiations over all derived
// facts — the total join output the evaluation must consider, duplicates
// included. Removing a redundant atom shrinks exactly this number.
func (cp *CountingProver) TotalJustifications() int {
	n := 0
	for _, js := range cp.justs {
		n += len(js)
	}
	return n
}

// CountProofs counts the distinct proof trees of a fact, capped at max
// (which guards against the exponential blowup cyclic databases cause; a
// result of max means "at least max, or the search was truncated"). Input
// facts count one proof. The count treats a fact used twice in one tree
// independently, so a fact's proofs multiply through shared premises, and
// cycles are cut by marking the path (a derivation may not use itself as
// a premise). The traversal carries a work budget proportional to max, so
// dense cyclic databases saturate quickly instead of exploring an
// exponential DFS.
func (cp *CountingProver) CountProofs(fact ast.GroundAtom, max int) int {
	if max <= 0 {
		max = 1 << 20
	}
	steps := 0
	budget := 200 * max
	onPath := make(map[string]bool)
	var count func(f ast.GroundAtom) int
	count = func(f ast.GroundAtom) int {
		steps++
		if steps > budget {
			return max // saturate: the caller reports "at least max"
		}
		key := f.Key()
		if onPath[key] {
			return 0 // cyclic support contributes no finite proof
		}
		total := 0
		if cp.input[key] {
			total = 1
		}
		onPath[key] = true
		for _, j := range cp.justs[key] {
			prod := 1
			for _, prem := range j.premises {
				prod *= count(prem)
				if prod == 0 || prod >= max {
					break
				}
			}
			total += prod
			if total >= max {
				total = max
				break
			}
		}
		delete(onPath, key)
		return total
	}
	if !cp.output.Has(fact) {
		return 0
	}
	n := count(fact)
	if n > max {
		return max
	}
	return n
}
