package cq

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/minimize"
	"repro/internal/parser"
)

func mustCQ(t *testing.T, src string) CQ {
	t.Helper()
	q, err := FromRule(parser.MustParseProgram(src).Rules[0])
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestContainmentBasics(t *testing.T) {
	// Q1: paths of length 2; Q2: any edge pair — Q1 ⊑ Q2? Q2's head needs
	// the same scheme. Classic: Q1(x,z) over A(x,y),A(y,z) is contained in
	// Q2(x,z) over A(x,y'),A(y'',z) (less constrained).
	q1 := mustCQ(t, "Q(x, z) :- A(x, y), A(y, z).")
	q2 := mustCQ(t, "Q(x, z) :- A(x, u), A(v, z).")
	if !Contained(q1, q2) {
		t.Fatal("q1 ⊑ q2 not detected")
	}
	if Contained(q2, q1) {
		t.Fatal("q2 ⊑ q1 wrongly detected")
	}
	if Equivalent(q1, q2) {
		t.Fatal("inequivalent queries reported equivalent")
	}
	if !Equivalent(q1, q1) {
		t.Fatal("query not equivalent to itself")
	}
}

func TestHomomorphismMapping(t *testing.T) {
	q1 := mustCQ(t, "Q(x, z) :- A(x, y), A(y, z).")
	q2 := mustCQ(t, "Q(x, z) :- A(x, u), A(v, z).")
	h, ok := Homomorphism(q2, q1)
	if !ok {
		t.Fatal("no homomorphism q2 -> q1")
	}
	// h must map q2's head vars to q1's head vars and u,v into q1 terms.
	if h["x"].Name != "x" || h["z"].Name != "z" {
		t.Fatalf("head mapping wrong: %v", h)
	}
	if h["u"].Name != "y" || h["v"].Name != "y" {
		t.Fatalf("body mapping wrong: %v", h)
	}
}

func TestContainmentWithConstants(t *testing.T) {
	spec := mustCQ(t, "Q(x) :- A(x, 3).")
	gen := mustCQ(t, "Q(x) :- A(x, y).")
	if !Contained(spec, gen) {
		t.Fatal("constant-specialized query not contained in general one")
	}
	if Contained(gen, spec) {
		t.Fatal("general query contained in specialized one")
	}
	other := mustCQ(t, "Q(x) :- A(x, 4).")
	if Contained(spec, other) || Contained(other, spec) {
		t.Fatal("queries over different constants comparable")
	}
}

func TestHeadMismatch(t *testing.T) {
	a := mustCQ(t, "Q(x) :- A(x, y).")
	b := mustCQ(t, "R(x) :- A(x, y).")
	if Contained(a, b) || Contained(b, a) {
		t.Fatal("different head predicates comparable")
	}
	c := mustCQ(t, "Q(x, x) :- A(x, y).")
	if Contained(a, c) {
		t.Fatal("different head arities comparable")
	}
}

func TestRepeatedHeadVariables(t *testing.T) {
	diag := mustCQ(t, "Q(x, x) :- A(x, x).")
	gen := mustCQ(t, "Q(x, y) :- A(x, y).")
	if !Contained(diag, gen) {
		t.Fatal("diagonal not contained in general")
	}
	if Contained(gen, diag) {
		t.Fatal("general contained in diagonal")
	}
}

func TestMinimizeClassic(t *testing.T) {
	// The standard redundant-join example: A(x,y),A(x,z) minimizes to one
	// atom (map z to y).
	q := mustCQ(t, "Q(x) :- A(x, y), A(x, z).")
	m := Minimize(q)
	if len(m.Body) != 1 {
		t.Fatalf("Minimize left %d atoms: %v", len(m.Body), m)
	}
	if !Equivalent(m, q) {
		t.Fatal("minimized query not equivalent")
	}
}

func TestMinimizeCore(t *testing.T) {
	// Triangle query with a redundant pendant: A(x,y),A(y,z),A(z,x) is a
	// core; adding A(x,w) is redundant.
	core := mustCQ(t, "Q(x) :- A(x, y), A(y, z), A(z, x).")
	padded := mustCQ(t, "Q(x) :- A(x, y), A(y, z), A(z, x), A(x, w).")
	m := Minimize(padded)
	if len(m.Body) != 3 {
		t.Fatalf("padded triangle minimized to %d atoms: %v", len(m.Body), m)
	}
	if !Equivalent(m, core) {
		t.Fatal("minimized padded triangle not equivalent to core")
	}
	// The core itself is untouched.
	if got := Minimize(core); len(got.Body) != 3 {
		t.Fatalf("core shrunk: %v", got)
	}
}

func TestMinimizeKeepsRangeRestriction(t *testing.T) {
	q := mustCQ(t, "Q(x, z) :- A(x, x), B(z).")
	m := Minimize(q)
	if len(m.Body) != 2 {
		t.Fatalf("range restriction violated by minimization: %v", m)
	}
}

func TestUnionContainment(t *testing.T) {
	// q: length-2 path ⊑ {edge, length-2 path}; edge ⋢ {length-2 path}.
	edge := mustCQ(t, "Q(x, z) :- A(x, z).")
	path2 := mustCQ(t, "Q(x, z) :- A(x, y), A(y, z).")
	if !ContainedInUnion(path2, []CQ{edge, path2}) {
		t.Fatal("member not contained in union")
	}
	if ContainedInUnion(edge, []CQ{path2}) {
		t.Fatal("edge contained in length-2 path")
	}
	if !UnionEquivalent([]CQ{edge, path2}, []CQ{path2, edge}) {
		t.Fatal("permuted unions not equivalent")
	}
	// Adding a redundant disjunct keeps the union equivalent.
	padded := []CQ{edge, path2, mustCQ(t, "Q(x, z) :- A(x, z), A(x, w).")}
	if !UnionEquivalent([]CQ{edge, path2}, padded) {
		t.Fatal("union with subsumed disjunct not equivalent")
	}
}

func TestCQAgreesWithChaseOnNonRecursiveRules(t *testing.T) {
	// Independent-oracle property (experiment E10): for non-recursive
	// single rules, CQ containment coincides with uniform containment.
	rng := rand.New(rand.NewSource(42))
	preds := []string{"A", "B"}
	randomRule := func() ast.Rule {
		vars := []string{"x", "y", "z", "w"}
		n := 1 + rng.Intn(3)
		body := make([]ast.Atom, n)
		used := map[string]bool{}
		for i := range body {
			v1 := vars[rng.Intn(len(vars))]
			v2 := vars[rng.Intn(len(vars))]
			used[v1], used[v2] = true, true
			body[i] = ast.NewAtom(preds[rng.Intn(len(preds))], ast.Var(v1), ast.Var(v2))
		}
		// Head uses a variable guaranteed to be in the body.
		var hv string
		for v := range used {
			hv = v
			break
		}
		return ast.NewRule(ast.NewAtom("Q", ast.Var(hv)), body...)
	}
	for trial := 0; trial < 60; trial++ {
		r1 := randomRule()
		r2 := randomRule()
		q1, _ := FromRule(r1)
		q2, _ := FromRule(r2)
		cqAns := Contained(q1, q2)
		chaseAns, err := chase.UniformlyContainsRule(ast.NewProgram(r2), r1)
		if err != nil {
			t.Fatal(err)
		}
		if cqAns != chaseAns {
			t.Fatalf("trial %d: cq=%v chase=%v for\n%v\n%v", trial, cqAns, chaseAns, r1, r2)
		}
	}
}

func TestMinimizeAgreesWithFig1(t *testing.T) {
	// On non-recursive rules the Fig. 1 minimizer and the CQ core coincide
	// in atom count (results are unique up to renaming there).
	srcs := []string{
		"Q(x) :- A(x, y), A(x, z).",
		"Q(x) :- A(x, y), A(y, z), A(z, x), A(x, w).",
		"Q(x, z) :- A(x, x), B(z).",
		"Q(x) :- A(x, 3), A(x, y).",
	}
	for _, src := range srcs {
		r := parser.MustParseProgram(src).Rules[0]
		q, _ := FromRule(r)
		mcq := Minimize(q)
		mr, _, err := minimize.Rule(r, minimize.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(mcq.Body) != len(mr.Body) {
			t.Fatalf("%s: cq core %d atoms, Fig.1 %d atoms", src, len(mcq.Body), len(mr.Body))
		}
	}
}

func TestFromRuleRejectsNegation(t *testing.T) {
	r := parser.MustParseProgram("P(x) :- A(x), !B(x).").Rules[0]
	if _, err := FromRule(r); err == nil {
		t.Fatal("negation accepted")
	}
}

func TestMinimizeUnion(t *testing.T) {
	edge := mustCQ(t, "Q(x, z) :- A(x, z).")
	path2 := mustCQ(t, "Q(x, z) :- A(x, y), A(y, z).")
	paddedEdge := mustCQ(t, "Q(x, z) :- A(x, z), A(x, w).")
	variant := mustCQ(t, "Q(u, v) :- A(u, v).")

	min := MinimizeUnion([]CQ{edge, path2, paddedEdge, variant})
	// paddedEdge cores down to edge; edge/variant collapse to one; path2
	// survives (not contained in edge).
	if len(min) != 2 {
		t.Fatalf("MinimizeUnion left %d disjuncts: %v", len(min), min)
	}
	if !UnionEquivalent(min, []CQ{edge, path2}) {
		t.Fatalf("minimized union inequivalent: %v", min)
	}
	// No removable disjunct remains.
	for i := range min {
		rest := append(append([]CQ{}, min[:i]...), min[i+1:]...)
		if ContainedInUnion(min[i], rest) {
			t.Fatalf("disjunct %v still removable", min[i])
		}
	}
}

func TestMinimizeUnionSingletonAndEmpty(t *testing.T) {
	if got := MinimizeUnion(nil); len(got) != 0 {
		t.Fatalf("empty union: %v", got)
	}
	q := mustCQ(t, "Q(x) :- A(x, y), A(x, z).")
	min := MinimizeUnion([]CQ{q})
	if len(min) != 1 || len(min[0].Body) != 1 {
		t.Fatalf("singleton union: %v", min)
	}
}
