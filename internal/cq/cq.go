// Package cq implements the conjunctive-query machinery that Section V
// cites as the solved, non-recursive special case of the paper's problem:
// containment and minimization of single non-recursive rules
// (Chandra–Merlin 1976; Aho–Sagiv–Ullman 1979) and containment in unions
// (Sagiv–Yannakakis 1980). For non-recursive rules these notions coincide
// with uniform containment, which makes this package both a fast path and
// an independent oracle for cross-checking the chase (experiment E10).
package cq

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
)

// CQ is a conjunctive query: a head atom over a body conjunction, i.e. a
// single non-recursive Datalog rule.
type CQ struct {
	Head ast.Atom
	Body []ast.Atom
}

// FromRule converts a rule to a CQ, rejecting negation.
func FromRule(r ast.Rule) (CQ, error) {
	if r.HasNegation() {
		return CQ{}, fmt.Errorf("cq: rule %s uses negation", r)
	}
	return CQ{Head: r.Head.Clone(), Body: cloneBody(r.Body)}, nil
}

// Rule converts the CQ back into a rule.
func (q CQ) Rule() ast.Rule { return ast.Rule{Head: q.Head.Clone(), Body: cloneBody(q.Body)} }

// Validate checks range restriction.
func (q CQ) Validate() error { return q.Rule().Validate() }

// String renders the CQ in rule notation.
func (q CQ) String() string { return q.Rule().String() }

func cloneBody(body []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(body))
	for i, a := range body {
		out[i] = a.Clone()
	}
	return out
}

// freeze builds the canonical database of q: the body instantiated with
// distinct frozen constants, plus the frozen head and the binding used.
func freeze(q CQ) (ast.GroundAtom, *db.Database, ast.Binding) {
	gen := ast.NewFrozenGen(0)
	theta := ast.FreezeVars(q.Rule().Vars(), gen)
	head := q.Head.MustGround(theta)
	d := db.New()
	for _, a := range q.Body {
		d.Add(a.MustGround(theta))
	}
	return head, d, theta
}

// Homomorphism searches for a containment mapping h from `from` onto `to`:
// h maps from's variables to to's terms such that h(from.Head) = to.Head
// and every atom of h(from.Body) occurs in to.Body. It returns the mapping
// on success. By Chandra–Merlin, such an h exists iff to ⊑ from.
func Homomorphism(from, to CQ) (ast.Subst, bool) {
	if from.Head.Pred != to.Head.Pred || from.Head.Arity() != to.Head.Arity() {
		return nil, false
	}
	// Freeze `to` into its canonical DB; a homomorphism is then exactly a
	// match of from's head+body into the canonical head+DB.
	toHead, d, theta := freeze(to)

	// Invert theta so matched frozen constants translate back to to's
	// variables.
	inv := make(map[ast.Const]string, len(theta))
	for v, c := range theta {
		inv[c] = v
	}

	b := ast.Binding{}
	if _, ok := from.Head.MatchGround(toHead.Pred, toHead.Args, b); !ok {
		return nil, false
	}
	var found ast.Binding
	db.MatchConjunction(d, from.Body, b, func() bool {
		found = b.Clone()
		return false
	})
	if found == nil {
		return nil, false
	}
	h := make(ast.Subst, len(found))
	for v, c := range found {
		if name, ok := inv[c]; ok {
			h[v] = ast.Var(name)
		} else {
			h[v] = ast.Con(c)
		}
	}
	return h, true
}

// Contained decides q1 ⊑ q2: every database gives q1 answers that are also
// q2 answers. By the Chandra–Merlin theorem this holds iff there is a
// homomorphism from q2 to q1.
func Contained(q1, q2 CQ) bool {
	_, ok := Homomorphism(q2, q1)
	return ok
}

// Equivalent decides q1 ≡ q2.
func Equivalent(q1, q2 CQ) bool {
	return Contained(q1, q2) && Contained(q2, q1)
}

// Minimize computes the core of q: a subquery with the fewest atoms that is
// equivalent to q (Chandra–Merlin: unique up to variable renaming). It
// repeatedly deletes a body atom when the shortened query still contains q
// — the non-recursive specialization of the paper's Fig. 1.
func Minimize(q CQ) CQ {
	cur := CQ{Head: q.Head.Clone(), Body: cloneBody(q.Body)}
	k := 0
	for k < len(cur.Body) {
		cand := CQ{Head: cur.Head, Body: removeAt(cur.Body, k)}
		// Deleting an atom relaxes the query (cur ⊑ cand always); keep the
		// deletion only when cand ⊑ cur, i.e. equivalence, and only when
		// the result is still range-restricted.
		if cand.Validate() == nil && Contained(cand, cur) {
			cur = cand
		} else {
			k++
		}
	}
	return cur
}

func removeAt(body []ast.Atom, i int) []ast.Atom {
	out := make([]ast.Atom, 0, len(body)-1)
	out = append(out, body[:i]...)
	out = append(out, body[i+1:]...)
	return out
}

// ContainedInUnion decides q ⊑ q1 ∪ … ∪ qn. For conjunctive queries a
// union containment holds iff some single disjunct contains q
// (Sagiv–Yannakakis).
func ContainedInUnion(q CQ, union []CQ) bool {
	for _, qi := range union {
		if Contained(q, qi) {
			return true
		}
	}
	return false
}

// UnionContained decides (∪ qs1) ⊑ (∪ qs2): every disjunct of qs1 is
// contained in the union qs2.
func UnionContained(qs1, qs2 []CQ) bool {
	for _, q := range qs1 {
		if !ContainedInUnion(q, qs2) {
			return false
		}
	}
	return true
}

// UnionEquivalent decides equivalence of two unions of conjunctive queries
// — the paper's Section X uses this notion for comparing initialization
// programs ("equivalence of non-recursive programs is the same as
// equivalence of unions of tableaux").
func UnionEquivalent(qs1, qs2 []CQ) bool {
	return UnionContained(qs1, qs2) && UnionContained(qs2, qs1)
}

// MinimizeUnion minimizes a union of conjunctive queries: each disjunct is
// replaced by its core, and disjuncts contained in the union of the others
// are removed (each considered once, mirroring the paper's Fig. 2 shape at
// the union level). The result is equivalent to the input union with no
// removable disjunct and no removable atom — the Sagiv–Yannakakis normal
// form for the non-recursive case the paper builds on.
func MinimizeUnion(union []CQ) []CQ {
	cur := make([]CQ, len(union))
	for i, q := range union {
		cur[i] = Minimize(q)
	}
	i := 0
	for i < len(cur) {
		rest := make([]CQ, 0, len(cur)-1)
		rest = append(rest, cur[:i]...)
		rest = append(rest, cur[i+1:]...)
		if ContainedInUnion(cur[i], rest) {
			cur = rest
		} else {
			i++
		}
	}
	return cur
}
