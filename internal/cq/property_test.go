package cq

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

func randomCQ(rng *rand.Rand) CQ {
	vars := []string{"x", "y", "z", "u", "v"}
	preds := []string{"A", "B"}
	n := 1 + rng.Intn(4)
	body := make([]ast.Atom, n)
	for i := range body {
		body[i] = ast.NewAtom(preds[rng.Intn(len(preds))],
			ast.Var(vars[rng.Intn(len(vars))]),
			ast.Var(vars[rng.Intn(len(vars))]))
	}
	return CQ{
		Head: ast.NewAtom("Q", body[rng.Intn(n)].Args[0]),
		Body: body,
	}
}

func TestQuickContainmentReflexive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCQ(rng)
		return Contained(q, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q1, q2, q3 := randomCQ(rng), randomCQ(rng), randomCQ(rng)
		if Contained(q1, q2) && Contained(q2, q3) {
			return Contained(q1, q3)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimizeProperties(t *testing.T) {
	// The core is equivalent to the original, no larger, and idempotent.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCQ(rng)
		m := Minimize(q)
		if len(m.Body) > len(q.Body) {
			return false
		}
		if !Equivalent(m, q) {
			return false
		}
		mm := Minimize(m)
		return len(mm.Body) == len(m.Body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickAddingAtomsShrinksQuery(t *testing.T) {
	// q with an extra atom is contained in q.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := randomCQ(rng)
		bigger := CQ{Head: q.Head.Clone(), Body: append(cloneBody(q.Body), randomCQ(rng).Body[0])}
		return Contained(bigger, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
