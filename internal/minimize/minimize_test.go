package minimize

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/parser"
)

func TestExample8MinimizeRule(t *testing.T) {
	// The Example 7/8 rule: A(w,y) is redundant, the other four atoms are
	// not, and the minimal form is exactly the rule of P2.
	r := parser.MustParseProgram(
		`G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).`,
	).Rules[0]
	min, trace, err := Rule(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := parser.MustParseProgram(
		`G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y).`,
	).Rules[0]
	if !min.Equal(want) {
		t.Fatalf("minimized rule = %v, want %v", min, want)
	}
	if trace.AtomsRemoved() != 1 || trace.AtomRemovals[0].Atom.String() != "A(w, y)" {
		t.Fatalf("trace = %+v", trace)
	}
	// The result is uniformly equivalent to the original.
	eq, err := chase.UniformlyEquivalent(ast.NewProgram(r), ast.NewProgram(min))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("minimized rule not uniformly equivalent to original")
	}
}

func TestMinimalRuleUntouched(t *testing.T) {
	// The Example 7 minimal rule has no redundant atom.
	r := parser.MustParseProgram(
		`G(x, y, z) :- G(x, w, z), A(w, z), A(z, z), A(z, y).`,
	).Rules[0]
	min, trace, err := Rule(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !min.Equal(r) || trace.AtomsRemoved() != 0 {
		t.Fatalf("minimal rule modified: %v, trace %+v", min, trace)
	}
}

func TestDuplicateAtomRemoved(t *testing.T) {
	r := parser.MustParseProgram(`G(x, z) :- A(x, z), A(x, z), A(x, w).`).Rules[0]
	min, trace, err := Rule(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Both the literal duplicate and the subsumed A(x,w) must go.
	want := parser.MustParseProgram(`G(x, z) :- A(x, z).`).Rules[0]
	if !min.Equal(want) {
		t.Fatalf("minimized rule = %v", min)
	}
	if trace.AtomsRemoved() != 2 {
		t.Fatalf("removed %d atoms", trace.AtomsRemoved())
	}
}

func TestRangeRestrictionGuard(t *testing.T) {
	// The only body occurrence of head variable z cannot be deleted even
	// though the atom looks "loose".
	r := parser.MustParseProgram(`G(x, z) :- A(x, x), B(z).`).Rules[0]
	min, _, err := Rule(r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Body) != 2 {
		t.Fatalf("range-restriction-violating deletion performed: %v", min)
	}
}

func TestAtomRedundantOnlyInProgram(t *testing.T) {
	// P(x) is redundant in Q's rule relative to the whole program (rule 1
	// derives it from A(x,y)) but not relative to Q's rule alone — the case
	// that forces Fig. 2 to test r̂ ⊑ᵘ P rather than r̂ ⊑ᵘ r.
	p := parser.MustParseProgram(`
		P(x) :- A(x, y).
		Q(x) :- A(x, y), P(x).
	`)
	// Rule alone: not redundant.
	minRule, traceRule, err := Rule(p.Rules[1], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if traceRule.AtomsRemoved() != 0 || len(minRule.Body) != 2 {
		t.Fatalf("P(x) wrongly redundant in isolation: %v", minRule)
	}
	// Whole program: redundant.
	minProg, trace, err := Program(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.AtomsRemoved() != 1 {
		t.Fatalf("program-level removal missed: %+v", trace)
	}
	want := parser.MustParseProgram(`
		P(x) :- A(x, y).
		Q(x) :- A(x, y).
	`)
	if !minProg.Equal(want) {
		t.Fatalf("minimized program:\n%vwant:\n%v", minProg, want)
	}
}

func TestRedundantRuleRemoved(t *testing.T) {
	// The right-linear expansion rule is uniformly contained in full TC.
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	min, trace, err := Program(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.RulesRemoved() != 1 {
		t.Fatalf("removed %d rules, want 1", trace.RulesRemoved())
	}
	if len(min.Rules) != 2 {
		t.Fatalf("minimized program has %d rules:\n%v", len(min.Rules), min)
	}
	eq, err := chase.UniformlyEquivalent(p, min)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("minimized program not uniformly equivalent")
	}
}

func TestExactDuplicateRuleRemoved(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(u, w) :- A(u, w).
	`)
	min, trace, err := Program(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rules) != 1 || trace.RulesRemoved() != 1 {
		t.Fatalf("variant rule not removed:\n%v", min)
	}
}

func TestTheorem2ResultIsMinimal(t *testing.T) {
	programs := []string{
		`G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).`,
		`G(x, z) :- A(x, z).
		 G(x, z) :- G(x, y), G(y, z).
		 G(x, z) :- A(x, y), G(y, z).`,
		`P(x) :- A(x, y).
		 Q(x) :- A(x, y), P(x), A(x, z).`,
		`G(x, z) :- A(x, z), C(z).
		 G(x, z) :- A(x, y), G(y, z), G(y, w), C(w).`,
	}
	for _, src := range programs {
		p := parser.MustParseProgram(src)
		min, _, err := Program(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		minimal, err := IsMinimal(min)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Fatalf("result not minimal:\n%v", min)
		}
		eq, err := chase.UniformlyEquivalent(p, min)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("result not uniformly equivalent for:\n%s", src)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		G(x, z) :- A(x, y), G(y, z).
	`)
	min1, _, err := Program(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	min2, trace, err := Program(min1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !min1.Equal(min2) || trace.AtomsRemoved() != 0 || trace.RulesRemoved() != 0 {
		t.Fatal("minimization not idempotent")
	}
}

func TestRandomOrderStillMinimalAndEquivalent(t *testing.T) {
	// The paper: the result may depend on consideration order, but every
	// order yields a minimal, uniformly equivalent program.
	src := `
		G(x, z) :- A(x, z).
		G(x, z) :- G(x, y), G(y, z).
		G(x, z) :- A(x, y), G(y, z).
		G(x, z) :- A(x, z), A(x, w).
	`
	p := parser.MustParseProgram(src)
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		min, _, err := Program(p, Options{Rand: rng})
		if err != nil {
			t.Fatal(err)
		}
		minimal, err := IsMinimal(min)
		if err != nil {
			t.Fatal(err)
		}
		if !minimal {
			t.Fatalf("seed %d: result not minimal:\n%v", seed, min)
		}
		eq, err := chase.UniformlyEquivalent(p, min)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("seed %d: result not uniformly equivalent", seed)
		}
	}
}

func TestUniformEquivalenceIsLocal(t *testing.T) {
	// The paper's motivation for uniform equivalence: replacing a subset of
	// rules by a uniformly equivalent subset preserves program equivalence.
	// Here we check the instance used throughout: substituting the
	// minimized Example 7 rule inside a bigger program keeps the program
	// uniformly equivalent as a whole.
	big := parser.MustParseProgram(`
		G(x, y, z) :- B(x, y, z).
		G(x, y, z) :- G(x, w, z), A(w, y), A(w, z), A(z, z), A(z, y).
	`)
	min, _, err := Program(big, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eq, err := chase.UniformlyEquivalent(big, min)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatal("local substitution broke uniform equivalence")
	}
	// The redundant atom is gone from the recursive rule.
	if len(min.Rules[1].Body) != 4 {
		t.Fatalf("expected 4 body atoms, got %v", min.Rules[1])
	}
}

func TestRemoveRedundantRulesOnly(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z).
		G(x, z) :- A(x, z), A(x, w).
	`)
	// Rule-only pass: the second rule is uniformly contained in the first,
	// so it is removed even without atom minimization.
	min, trace, err := RemoveRedundantRules(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rules) != 1 || trace.RulesRemoved() != 1 {
		t.Fatalf("rule-only pass failed:\n%v", min)
	}
}

func TestNegationRejected(t *testing.T) {
	p := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, _, err := Program(p, Options{}); err == nil {
		t.Fatal("negation accepted by minimizer")
	}
}

func TestEmptyAndTinyPrograms(t *testing.T) {
	empty := ast.NewProgram()
	min, trace, err := Program(empty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rules) != 0 || trace.AtomsRemoved() != 0 {
		t.Fatal("empty program mishandled")
	}
	single := parser.MustParseProgram(`G(x, z) :- A(x, z).`)
	min, _, err = Program(single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Rules) != 1 {
		t.Fatalf("single necessary rule removed:\n%v", min)
	}
}
