package minimize

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestStratifiedRemovesRedundantPositiveAtom(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y), E(x, w).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	min, trace, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.AtomsRemoved() != 1 {
		t.Fatalf("removed %d atoms, want 1 (E(x,w))", trace.AtomsRemoved())
	}
	if got := trace.AtomRemovals[0].Atom.String(); got != "E(x, w)" {
		t.Fatalf("removed %s", got)
	}
	// Negation structure intact.
	if !min.Rules[2].HasNegation() {
		t.Fatalf("negation lost:\n%v", min)
	}
	assertSameStratifiedSemantics(t, p, min, []string{"Src", "E", "Node"})
}

func TestStratifiedRemovesDuplicateNegatedLiteral(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Unreach(x) :- Node(x), !Reach(x), !Reach(x).
	`)
	min, trace, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.AtomsRemoved() != 1 || len(min.Rules[1].NegBody) != 1 {
		t.Fatalf("duplicate negated literal not collapsed:\n%v", min)
	}
}

func TestStratifiedRemovesRedundantRule(t *testing.T) {
	p := parser.MustParseProgram(`
		Ok(x) :- Node(x), !Bad(x).
		Ok(y) :- Node(y), !Bad(y), Node(y).
		Bad(x) :- Flag(x).
	`)
	min, trace, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The second rule is a specialization of the first (after its own atom
	// minimization it becomes a renamed duplicate, then the rule phase
	// removes one of the pair).
	if len(min.Rules) != 2 {
		t.Fatalf("rules after minimization: %d (trace %+v)\n%v", len(min.Rules), trace, min)
	}
	assertSameStratifiedSemantics(t, p, min, []string{"Node", "Flag"})
}

func TestStratifiedSafetyGuard(t *testing.T) {
	// B(x,w) is the only positive binding of w... no wait, keep a case
	// where deleting the only positive binder of a negated variable must be
	// rejected: Node(x) binds x used in !Bad(x); the candidate deletion of
	// Node(x) would leave the rule unsafe even though Extra(x) also binds x
	// — so delete Extra(x) instead and keep safety.
	p := parser.MustParseProgram(`
		Ok(x) :- Node(x), Node(x), !Bad(x).
		Bad(x) :- Flag(x).
	`)
	min, _, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := min.Rules[0]
	if len(r.Body) != 1 || len(r.NegBody) != 1 {
		t.Fatalf("safety-preserving minimization wrong: %v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("minimized rule unsafe: %v", err)
	}
}

func TestStratifiedNoFalseDeletions(t *testing.T) {
	// The negated literal really matters: nothing may be deleted.
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	min, trace, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.AtomsRemoved() != 0 || trace.RulesRemoved() != 0 || !min.Equal(p) {
		t.Fatalf("tight stratified program modified: %+v\n%v", trace, min)
	}
}

func TestStratifiedFallsBackOnPurePrograms(t *testing.T) {
	p := parser.MustParseProgram(`
		G(x, z) :- A(x, z), A(x, w).
	`)
	min, trace, err := StratifiedProgram(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if trace.AtomsRemoved() != 1 || len(min.Rules[0].Body) != 1 {
		t.Fatalf("pure fallback failed: %v", min)
	}
}

func TestStratifiedRejectsUnstratifiable(t *testing.T) {
	p := parser.MustParseProgram(`
		P(x) :- A(x), !Q(x).
		Q(x) :- A(x), !P(x).
	`)
	if _, _, err := StratifiedProgram(p, Options{}); err == nil {
		t.Fatal("unstratifiable program accepted")
	}
}

// assertSameStratifiedSemantics samples random EDBs over the given unary or
// binary extensional predicates and compares stratified outputs.
func assertSameStratifiedSemantics(t *testing.T, p1, p2 *ast.Program, edbPreds []string) {
	t.Helper()
	arity := map[string]int{}
	for _, sig := range p1.Predicates() {
		arity[sig.Name] = sig.Arity
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		d := db.New()
		n := 2 + rng.Intn(4)
		for _, pred := range edbPreds {
			for k := 0; k < 1+rng.Intn(5); k++ {
				args := make([]ast.Const, arity[pred])
				for i := range args {
					args[i] = ast.Int(int64(rng.Intn(n)))
				}
				d.AddTuple(pred, args)
			}
		}
		o1, _, err := eval.Eval(p1, d, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		o2, _, err := eval.Eval(p2, d, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !o1.Equal(o2) {
			t.Fatalf("trial %d: stratified outputs differ on\n%s\n%s\nvs\n%s", trial, d, o1, o2)
		}
	}
}
