package minimize

import (
	"math/rand"
	"testing"

	"repro/internal/workload"
)

// The subsumption fast path must eliminate chase calls on the redundancy
// workloads the harness measures (every injected atom/rule is a
// specialization of something already in the program) while leaving the
// minimized program byte-identical to the ablated run. Predicate names are
// renamed apart from the shared workloads so the process-wide verdict store
// cannot hand either run a verdict decided elsewhere.
func TestSubsumptionFastPathMinimization(t *testing.T) {
	base := workload.TransitiveClosure()
	for i := range base.Rules {
		base.Rules[i] = base.Rules[i].Clone()
		base.Rules[i].Head.Pred = "Mfp" + base.Rules[i].Head.Pred
		for j := range base.Rules[i].Body {
			base.Rules[i].Body[j].Pred = "Mfp" + base.Rules[i].Body[j].Pred
		}
	}
	p := workload.InjectRedundantRules(base, 3, rand.New(rand.NewSource(11)))
	p = workload.InjectRedundantAtomsProgram(p, 2, rand.New(rand.NewSource(12)))

	fast, fastTrace, err := Program(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fastTrace.Stats.VerdictsSubsumed; got < 1 {
		t.Fatalf("fast path eliminated %d chase calls, want >= 1 (stats %+v)", got, fastTrace.Stats)
	}

	slow, slowTrace, err := Program(p, Options{DisableSyntacticFastPath: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := slowTrace.Stats.VerdictsSubsumed; got != 0 {
		t.Fatalf("ablated run still took the fast path %d times", got)
	}
	if fast.Format(nil) != slow.Format(nil) {
		t.Fatalf("minimization output differs with fast path on/off:\nfast:\n%s\nslow:\n%s",
			fast.Format(nil), slow.Format(nil))
	}

	// The workloads' redundancy is wholly syntactic, so minimization must
	// recover the base program (up to the injector's variable renaming).
	if fast.CanonicalString() != base.CanonicalString() {
		t.Fatalf("minimization left redundancy behind:\n%s\nwant:\n%s", fast.Format(nil), base.Format(nil))
	}
}
