package minimize

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/depgraph"
)

// negPrefix marks the encoded positive stand-ins for negated literals. The
// '@' cannot appear in parsed predicate names, so encodings never collide
// with user predicates.
const negPrefix = "neg@"

// StratifiedProgram extends the Fig. 2 minimizer to Datalog with stratified
// negation — the direction the paper's conclusion announces ("the results
// on uniform containment and minimization can be extended to Datalog
// programs with stratified negation").
//
// The implementation is the conservative encoding: every negated literal
// !Q(t̄) is replaced by a positive atom over a fresh extensional predicate
// neg@Q(t̄), the resulting pure-Datalog program is minimized with Fig. 2,
// and the encoding is inverted. Soundness: a deletion justified in the
// encoding is witnessed by a derivation whose negated-literal demands are
// instances of the very literals the shortened rule checks, and whose
// positive facts are consequences of facts actually present — so whenever
// the shortened rule fires during stratified evaluation, the original
// program already derives the same head. The encoding is conservative: a
// deletion that would need reasoning ABOUT negation (e.g. Q and !Q being
// exhaustive) is not found.
//
// Deletions that would leave a negated literal's variable unbound in the
// positive body (breaking the safety condition) are rejected through the
// validity hook.
func StratifiedProgram(p *ast.Program, opts Options) (*ast.Program, Trace, error) {
	if !p.HasNegation() {
		return Program(p, opts)
	}
	if _, err := depgraph.Strata(p); err != nil {
		return nil, Trace{}, err
	}
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if strings.HasPrefix(a.Pred, negPrefix) {
				return nil, Trace{}, fmt.Errorf("minimize: predicate %s collides with the negation encoding", a.Pred)
			}
		}
	}

	encoded := encodeNegation(p)
	opts.Valid = func(r ast.Rule) bool {
		dec, err := decodeRule(r)
		if err != nil {
			return false
		}
		return dec.Validate() == nil
	}
	minEnc, trace, err := Program(encoded, opts)
	if err != nil {
		return nil, trace, err
	}
	out, err := decodeNegation(minEnc)
	if err != nil {
		return nil, trace, err
	}
	// Re-render the trace in decoded form.
	for i := range trace.AtomRemovals {
		trace.AtomRemovals[i].Rule = mustDecodeRule(trace.AtomRemovals[i].Rule)
		trace.AtomRemovals[i].Atom = decodeAtom(trace.AtomRemovals[i].Atom)
	}
	for i := range trace.RuleRemovals {
		trace.RuleRemovals[i] = mustDecodeRule(trace.RuleRemovals[i])
	}
	return out, trace, nil
}

// encodeNegation rewrites every negated literal into a positive atom over
// the neg@ predicate space.
func encodeNegation(p *ast.Program) *ast.Program {
	out := ast.NewProgram()
	for _, r := range p.Rules {
		enc := ast.Rule{Head: r.Head.Clone()}
		for _, a := range r.Body {
			enc.Body = append(enc.Body, a.Clone())
		}
		for _, a := range r.NegBody {
			n := a.Clone()
			n.Pred = negPrefix + n.Pred
			enc.Body = append(enc.Body, n)
		}
		out.Rules = append(out.Rules, enc)
	}
	return out
}

// decodeNegation inverts encodeNegation.
func decodeNegation(p *ast.Program) (*ast.Program, error) {
	out := ast.NewProgram()
	for _, r := range p.Rules {
		dec, err := decodeRule(r)
		if err != nil {
			return nil, err
		}
		out.Rules = append(out.Rules, dec)
	}
	return out, nil
}

func decodeRule(r ast.Rule) (ast.Rule, error) {
	dec := ast.Rule{Head: r.Head.Clone()}
	for _, a := range r.Body {
		if strings.HasPrefix(a.Pred, negPrefix) {
			n := a.Clone()
			n.Pred = strings.TrimPrefix(n.Pred, negPrefix)
			dec.NegBody = append(dec.NegBody, n)
			continue
		}
		dec.Body = append(dec.Body, a.Clone())
	}
	if strings.HasPrefix(dec.Head.Pred, negPrefix) {
		return ast.Rule{}, fmt.Errorf("minimize: encoded predicate %s in head", dec.Head.Pred)
	}
	return dec, nil
}

func mustDecodeRule(r ast.Rule) ast.Rule {
	dec, err := decodeRule(r)
	if err != nil {
		panic(err)
	}
	return dec
}

func decodeAtom(a ast.Atom) ast.Atom {
	if strings.HasPrefix(a.Pred, negPrefix) {
		n := a.Clone()
		n.Pred = strings.TrimPrefix(n.Pred, negPrefix)
		return n
	}
	return a
}
