// Package minimize implements Section VII of the paper: minimization of
// Datalog programs under uniform equivalence.
//
// Fig. 1 minimizes a single rule r: each body atom is considered exactly
// once; if deleting it yields a rule r̂ with r̂ ⊑ᵘ r, the deletion is kept
// (r ⊑ᵘ r̂ holds trivially, so r̂ ≡ᵘ r). Fig. 2 minimizes a whole program P:
// first every rule is minimized with the containment test r̂ ⊑ᵘ P (an atom
// may be redundant relative to the whole program without being redundant in
// its rule alone), then redundant rules are removed with the test
// r ⊑ᵘ P∖{r}. Theorem 2 proves that considering each atom and each rule
// once suffices, provided atoms are removed before rules — which is exactly
// the order enforced here.
//
// The final result is uniformly equivalent to the input and has neither a
// redundant atom nor a redundant rule, but — as the paper notes — it is not
// necessarily unique: it may depend on the order in which atoms and rules
// are considered. Options.Rand exposes that order for the ablation
// experiments.
package minimize

import (
	"math/rand"

	"repro/internal/ast"
	"repro/internal/chase"
)

// Options configures minimization.
type Options struct {
	// Rand, when non-nil, shuffles the order in which body atoms and rules
	// are considered for deletion (the paper: the result "may depend upon
	// the order in which atoms and rules are considered"). Nil keeps source
	// order, making the result deterministic.
	Rand *rand.Rand
	// Valid, when non-nil, is an extra admissibility predicate a shortened
	// rule must pass before the containment test is even attempted. The
	// stratified extension uses it to reject deletions that would unbind a
	// negated literal's variables.
	Valid func(ast.Rule) bool
}

// AtomRemoval records one Fig. 1/Fig. 2 atom deletion.
type AtomRemoval struct {
	// Rule is the rule as it was immediately before this deletion.
	Rule ast.Rule
	// Atom is the deleted body atom.
	Atom ast.Atom
}

// Trace records what minimization removed.
type Trace struct {
	AtomRemovals []AtomRemoval
	RuleRemovals []ast.Rule
}

// AtomsRemoved returns the number of deleted body atoms.
func (t Trace) AtomsRemoved() int { return len(t.AtomRemovals) }

// RulesRemoved returns the number of deleted rules.
func (t Trace) RulesRemoved() int { return len(t.RuleRemovals) }

// Rule minimizes a single rule under uniform equivalence (Fig. 1). The
// returned rule is uniformly equivalent to r and has no redundant atom.
func Rule(r ast.Rule, opts Options) (ast.Rule, Trace, error) {
	p := ast.NewProgram(r.Clone())
	q, trace, err := minimizeAtoms(p, opts)
	if err != nil {
		return ast.Rule{}, trace, err
	}
	return q.Rules[0], trace, nil
}

// Program minimizes a program under uniform equivalence (Fig. 2): all
// redundant atoms are removed first, then all redundant rules. The result
// is uniformly equivalent to p.
func Program(p *ast.Program, opts Options) (*ast.Program, Trace, error) {
	q := p.Clone()
	if opts.Rand != nil {
		shuffleProgram(q, opts.Rand)
	}
	q, trace, err := minimizeAtoms(q, opts)
	if err != nil {
		return nil, trace, err
	}
	q, trace2, err := removeRedundantRules(q)
	if err != nil {
		return nil, trace, err
	}
	trace.RuleRemovals = trace2.RuleRemovals
	return q, trace, nil
}

// minimizeAtoms runs the first phase of Fig. 2 on every rule of p (which,
// for a single-rule program, is exactly Fig. 1). Each atom is considered
// once; the test for deleting atom α from rule r is r̂ ⊑ᵘ P with P the
// current program. One containment session serves all candidate atoms of
// the current program; it is rebuilt only when a deletion changes the
// program, so the schedule/compile work is per accepted deletion instead of
// per considered atom.
func minimizeAtoms(p *ast.Program, opts Options) (*ast.Program, Trace, error) {
	var trace Trace
	q := p.Clone()
	ck, err := chase.NewChecker(q)
	if err != nil {
		return nil, trace, err
	}
	for i := range q.Rules {
		if opts.Rand != nil {
			shuffleBody(&q.Rules[i], opts.Rand)
		}
		// k indexes the next unconsidered atom of the current body. When a
		// deletion succeeds the atom that slides into position k is itself
		// unconsidered, so k stays put; otherwise k advances. Every atom is
		// therefore considered exactly once.
		k := 0
		for k < len(q.Rules[i].Body) {
			r := q.Rules[i]
			cand := r.WithoutBodyAtom(k)
			if err := cand.Validate(); err != nil {
				// Deleting the atom breaks range restriction, so the
				// shortened rule is not even well-formed; keep the atom.
				k++
				continue
			}
			if opts.Valid != nil && !opts.Valid(cand) {
				k++
				continue
			}
			ok, err := ck.ContainsRule(cand)
			if err != nil {
				return nil, trace, err
			}
			if ok {
				trace.AtomRemovals = append(trace.AtomRemovals, AtomRemoval{Rule: r.Clone(), Atom: r.Body[k].Clone()})
				q.Rules[i] = cand
				ck, err = chase.NewChecker(q)
				if err != nil {
					return nil, trace, err
				}
			} else {
				k++
			}
		}
	}
	return q, trace, nil
}

// removeRedundantRules runs the second phase of Fig. 2: each rule is
// considered once and deleted when it is uniformly contained in the rest of
// the program.
func removeRedundantRules(p *ast.Program) (*ast.Program, Trace, error) {
	var trace Trace
	q := p.Clone()
	i := 0
	for i < len(q.Rules) {
		r := q.Rules[i]
		rest := q.WithoutRule(i)
		ok, err := chase.UniformlyContainsRule(rest, r)
		if err != nil {
			return nil, trace, err
		}
		if ok {
			trace.RuleRemovals = append(trace.RuleRemovals, r.Clone())
			q = rest
		} else {
			i++
		}
	}
	return q, trace, nil
}

// RemoveRedundantRules removes only redundant rules (no atom minimization);
// exposed for the ablation that demonstrates why Fig. 2 must delete atoms
// first (Theorem 2's proof depends on it).
func RemoveRedundantRules(p *ast.Program) (*ast.Program, Trace, error) {
	return removeRedundantRules(p)
}

// IsMinimal reports whether p has no atom and no rule deletable under
// uniform equivalence — the property Theorem 2 guarantees for the output of
// Program. All atom tests share one containment session over p.
func IsMinimal(p *ast.Program) (bool, error) {
	ck, err := chase.NewChecker(p)
	if err != nil {
		return false, err
	}
	for i, r := range p.Rules {
		for k := range r.Body {
			cand := r.WithoutBodyAtom(k)
			if cand.Validate() != nil {
				continue
			}
			ok, err := ck.ContainsRule(cand)
			if err != nil {
				return false, err
			}
			if ok {
				return false, nil
			}
		}
		rest := p.WithoutRule(i)
		ok, err := chase.UniformlyContainsRule(rest, r)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}

func shuffleProgram(p *ast.Program, rng *rand.Rand) {
	rng.Shuffle(len(p.Rules), func(i, j int) {
		p.Rules[i], p.Rules[j] = p.Rules[j], p.Rules[i]
	})
}

func shuffleBody(r *ast.Rule, rng *rand.Rand) {
	rng.Shuffle(len(r.Body), func(i, j int) {
		r.Body[i], r.Body[j] = r.Body[j], r.Body[i]
	})
}
