// Package minimize implements Section VII of the paper: minimization of
// Datalog programs under uniform equivalence.
//
// Fig. 1 minimizes a single rule r: each body atom is considered exactly
// once; if deleting it yields a rule r̂ with r̂ ⊑ᵘ r, the deletion is kept
// (r ⊑ᵘ r̂ holds trivially, so r̂ ≡ᵘ r). Fig. 2 minimizes a whole program P:
// first every rule is minimized with the containment test r̂ ⊑ᵘ P (an atom
// may be redundant relative to the whole program without being redundant in
// its rule alone), then redundant rules are removed with the test
// r ⊑ᵘ P∖{r}. Theorem 2 proves that considering each atom and each rule
// once suffices, provided atoms are removed before rules — which is exactly
// the order enforced here.
//
// The final result is uniformly equivalent to the input and has neither a
// redundant atom nor a redundant rule, but — as the paper notes — it is not
// necessarily unique: it may depend on the order in which atoms and rules
// are considered. Options.Rand exposes that order for the ablation
// experiments.
package minimize

import (
	"context"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/chase"
	"repro/internal/eval"
)

// Options configures minimization.
type Options struct {
	// Rand, when non-nil, shuffles the order in which body atoms and rules
	// are considered for deletion (the paper: the result "may depend upon
	// the order in which atoms and rules are considered"). Nil keeps source
	// order, making the result deterministic.
	Rand *rand.Rand
	// Valid, when non-nil, is an extra admissibility predicate a shortened
	// rule must pass before the containment test is even attempted. The
	// stratified extension uses it to reject deletions that would unbind a
	// negated literal's variables.
	Valid func(ast.Rule) bool
	// DisableSyntacticFastPath forces every containment verdict through the
	// chase instead of letting the session short-circuit candidates that a
	// program rule θ-subsumes. Ablation hook: the minimized program must be
	// byte-identical either way.
	DisableSyntacticFastPath bool
	// Context, when non-nil, cancels minimization: it is checked between
	// candidate deletions and threaded into every containment chase, so a
	// deadline aborts promptly with an error wrapping eval.ErrCanceled.
	// Cancellation leaves the shared plan and verdict caches valid — only
	// completed verdicts are ever published.
	Context context.Context
	// PlanCache selects the plan cache the containment sessions prepare
	// through; nil selects the process-wide cache. Servers and tests inject
	// their own to isolate or shard cache footprints.
	PlanCache *eval.PlanCache
}

// AtomRemoval records one Fig. 1/Fig. 2 atom deletion.
type AtomRemoval struct {
	// Rule is the rule as it was immediately before this deletion.
	Rule ast.Rule
	// Atom is the deleted body atom.
	Atom ast.Atom
}

// Trace records what minimization removed.
type Trace struct {
	AtomRemovals []AtomRemoval
	RuleRemovals []ast.Rule
	// Stats carries the containment session's cache counters: plan-cache
	// hits/misses and verdicts reused across accepted deletions versus
	// decided by a fresh chase.
	Stats eval.Stats
}

// AtomsRemoved returns the number of deleted body atoms.
func (t Trace) AtomsRemoved() int { return len(t.AtomRemovals) }

// RulesRemoved returns the number of deleted rules.
func (t Trace) RulesRemoved() int { return len(t.RuleRemovals) }

// Rule minimizes a single rule under uniform equivalence (Fig. 1). The
// returned rule is uniformly equivalent to r and has no redundant atom.
func Rule(r ast.Rule, opts Options) (ast.Rule, Trace, error) {
	p := ast.NewProgram(r.Clone())
	q, ck, trace, err := minimizeAtoms(p, opts)
	if err != nil {
		return ast.Rule{}, trace, err
	}
	trace.Stats = ck.Stats()
	return q.Rules[0], trace, nil
}

// Program minimizes a program under uniform equivalence (Fig. 2): all
// redundant atoms are removed first, then all redundant rules. The result
// is uniformly equivalent to p.
func Program(p *ast.Program, opts Options) (*ast.Program, Trace, error) {
	q := p.Clone()
	if opts.Rand != nil {
		shuffleProgram(q, opts.Rand)
	}
	q, ck, trace, err := minimizeAtoms(q, opts)
	if err != nil {
		return nil, trace, err
	}
	// The atom phase's session carries into the rule phase: its memoized
	// verdicts and frozen bodies survive each rule deletion via Derive.
	q, ck, trace2, err := removeRedundantRulesSession(q, ck)
	if err != nil {
		return nil, trace, err
	}
	trace.RuleRemovals = trace2.RuleRemovals
	trace.Stats = ck.Stats()
	return q, trace, nil
}

// minimizeAtoms runs the first phase of Fig. 2 on every rule of p (which,
// for a single-rule program, is exactly Fig. 1). Each atom is considered
// once; the test for deleting atom α from rule r is r̂ ⊑ᵘ P with P the
// current program. One containment session serves the whole phase: an
// accepted deletion replaces a rule by a body-subset of itself, so the
// session for the shortened program is derived from the current one —
// the prepared schedule is patched rather than rebuilt, frozen bodies
// carry over wholesale, and every memoized verdict the weakening cannot
// flip survives. The session is returned so the rule phase can keep
// deriving from it.
func minimizeAtoms(p *ast.Program, opts Options) (*ast.Program, *chase.Checker, Trace, error) {
	var trace Trace
	q := p // both callers pass a program they own; it is mutated in place
	ck, err := chase.NewCheckerCache(q, opts.PlanCache)
	if err != nil {
		return nil, nil, trace, err
	}
	if opts.DisableSyntacticFastPath {
		ck.DisableSyntacticFastPath()
	}
	if opts.Context != nil {
		ck.SetContext(opts.Context)
	}
	for i := range q.Rules {
		if opts.Rand != nil {
			shuffleBody(&q.Rules[i], opts.Rand)
		}
		// k indexes the next unconsidered atom of the current body. When a
		// deletion succeeds the atom that slides into position k is itself
		// unconsidered, so k stays put; otherwise k advances. Every atom is
		// therefore considered exactly once.
		k := 0
		for k < len(q.Rules[i].Body) {
			r := q.Rules[i]
			cand := withoutBodyAtom(r, k)
			if !cand.WellFormed() {
				// Deleting the atom breaks range restriction, so the
				// shortened rule is not even well-formed; keep the atom.
				k++
				continue
			}
			if opts.Valid != nil && !opts.Valid(cand) {
				k++
				continue
			}
			ok, err := ck.ContainsRule(cand)
			if err != nil {
				return nil, nil, trace, err
			}
			if ok {
				trace.AtomRemovals = append(trace.AtomRemovals, AtomRemoval{Rule: r.Clone(), Atom: r.Body[k].Clone()})
				q.Rules[i] = cand
				ck, err = ck.Derive(chase.Delta{RuleIndex: i, NewRule: &cand})
				if err != nil {
					return nil, nil, trace, err
				}
			} else {
				k++
			}
		}
	}
	return q, ck, trace, nil
}

// removeRedundantRulesSession runs the second phase of Fig. 2: each rule is
// considered once and deleted when it is uniformly contained in the rest of
// the program. ck must be a session over p. Every candidate "rest" program
// is a single-rule deletion from the current program, so its session is
// derived; when the deletion is accepted the derived session becomes the
// current one, carrying the surviving verdicts forward.
func removeRedundantRulesSession(p *ast.Program, ck *chase.Checker) (*ast.Program, *chase.Checker, Trace, error) {
	var trace Trace
	q := p.Clone()
	i := 0
	for i < len(q.Rules) {
		r := q.Rules[i]
		restCk, err := ck.Derive(chase.Delta{RuleIndex: i})
		if err != nil {
			return nil, nil, trace, err
		}
		ok, err := restCk.ContainsRule(r)
		if err != nil {
			return nil, nil, trace, err
		}
		if ok {
			trace.RuleRemovals = append(trace.RuleRemovals, r.Clone())
			// q is our clone, so the deletion can splice in place instead of
			// re-cloning the whole program per accepted rule.
			q.Rules = append(q.Rules[:i], q.Rules[i+1:]...)
			ck = restCk
		} else {
			i++
		}
	}
	return q, ck, trace, nil
}

// RemoveRedundantRules removes only redundant rules (no atom minimization);
// exposed for the ablation that demonstrates why Fig. 2 must delete atoms
// first (Theorem 2's proof depends on it).
func RemoveRedundantRules(p *ast.Program) (*ast.Program, Trace, error) {
	ck, err := chase.NewChecker(p)
	if err != nil {
		return nil, Trace{}, err
	}
	q, ck, trace, err := removeRedundantRulesSession(p, ck)
	if err != nil {
		return nil, trace, err
	}
	trace.Stats = ck.Stats()
	return q, trace, nil
}

// IsMinimal reports whether p has no atom and no rule deletable under
// uniform equivalence — the property Theorem 2 guarantees for the output of
// Program. All atom tests share one containment session over p, and each
// rule test derives the rule-deleted session from it.
func IsMinimal(p *ast.Program) (bool, error) {
	ck, err := chase.NewChecker(p)
	if err != nil {
		return false, err
	}
	for i, r := range p.Rules {
		for k := range r.Body {
			cand := withoutBodyAtom(r, k)
			if !cand.WellFormed() {
				continue
			}
			ok, err := ck.ContainsRule(cand)
			if err != nil {
				return false, err
			}
			if ok {
				return false, nil
			}
		}
		restCk, err := ck.Derive(chase.Delta{RuleIndex: i})
		if err != nil {
			return false, err
		}
		ok, err := restCk.ContainsRule(r)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}

// withoutBodyAtom is ast.Rule.WithoutBodyAtom without the deep clone: the
// candidate shares the rule's atoms (only the body slice is fresh), which is
// safe because the minimization loops treat rules as immutable — candidates
// are only validated, tested for containment, and installed wholesale.
func withoutBodyAtom(r ast.Rule, k int) ast.Rule {
	body := make([]ast.Atom, 0, len(r.Body)-1)
	body = append(body, r.Body[:k]...)
	body = append(body, r.Body[k+1:]...)
	return ast.Rule{Head: r.Head, Body: body, NegBody: r.NegBody}
}

func shuffleProgram(p *ast.Program, rng *rand.Rand) {
	rng.Shuffle(len(p.Rules), func(i, j int) {
		p.Rules[i], p.Rules[j] = p.Rules[j], p.Rules[i]
	})
}

func shuffleBody(r *ast.Rule, rng *rand.Rand) {
	rng.Shuffle(len(r.Body), func(i, j int) {
		r.Body[i], r.Body[j] = r.Body[j], r.Body[i]
	})
}
