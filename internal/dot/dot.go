// Package dot renders the library's graph-shaped artifacts — dependence
// graphs (Section III) and derivation trees (internal/explain) — in
// Graphviz DOT format, for inspection of optimized programs.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ast"
	"repro/internal/depgraph"
	"repro/internal/explain"
)

// quote escapes a DOT string literal.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}

// DependenceGraph renders the dependence graph of p: a node per predicate
// (extensional predicates boxed), an edge from each body predicate to its
// head predicate, negative edges dashed, and recursive predicates shaded.
func DependenceGraph(p *ast.Program) string {
	g := depgraph.Build(p)
	rec := g.RecursivePreds()
	idb := p.IDBPredicates()

	var sb strings.Builder
	sb.WriteString("digraph dependence {\n")
	sb.WriteString("  rankdir=BT;\n")

	preds := g.Preds()
	sort.Strings(preds)
	for _, pred := range preds {
		attrs := []string{}
		if !idb[pred] {
			attrs = append(attrs, "shape=box")
		}
		if rec[pred] {
			attrs = append(attrs, `style=filled`, `fillcolor=lightgray`)
		}
		if len(attrs) > 0 {
			fmt.Fprintf(&sb, "  %s [%s];\n", quote(pred), strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(&sb, "  %s;\n", quote(pred))
		}
	}

	// Edges, deduplicated, negative ones dashed.
	type edge struct {
		from, to string
		neg      bool
	}
	seen := map[edge]bool{}
	var edges []edge
	for _, r := range p.Rules {
		for _, a := range r.Body {
			e := edge{from: a.Pred, to: r.Head.Pred}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
		for _, a := range r.NegBody {
			e := edge{from: a.Pred, to: r.Head.Pred, neg: true}
			if !seen[e] {
				seen[e] = true
				edges = append(edges, e)
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return !edges[i].neg
	})
	for _, e := range edges {
		if e.neg {
			fmt.Fprintf(&sb, "  %s -> %s [style=dashed, label=%s];\n", quote(e.from), quote(e.to), quote("not"))
		} else {
			fmt.Fprintf(&sb, "  %s -> %s;\n", quote(e.from), quote(e.to))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// DerivationTree renders a proof tree: fact nodes as ellipses, input facts
// boxed, edges labelled with the rule index used.
func DerivationTree(d *explain.Derivation, tab *ast.SymbolTable) string {
	var sb strings.Builder
	sb.WriteString("digraph derivation {\n")
	sb.WriteString("  rankdir=BT;\n")
	id := 0
	var rec func(n *explain.Derivation) int
	rec = func(n *explain.Derivation) int {
		my := id
		id++
		label := n.Fact.Format(tab)
		if n.IsInput() {
			fmt.Fprintf(&sb, "  n%d [label=%s, shape=box];\n", my, quote(label))
		} else {
			fmt.Fprintf(&sb, "  n%d [label=%s];\n", my, quote(label))
		}
		for _, prem := range n.Premises {
			child := rec(prem)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=%s];\n", child, my, quote(fmt.Sprintf("r%d", n.RuleIndex)))
		}
		return my
	}
	rec(d)
	sb.WriteString("}\n")
	return sb.String()
}
