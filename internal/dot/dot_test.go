package dot

import (
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/explain"
	"repro/internal/parser"
	"repro/internal/workload"
)

func TestDependenceGraphShape(t *testing.T) {
	p := workload.TransitiveClosure()
	s := DependenceGraph(p)
	for _, want := range []string{
		"digraph dependence",
		`"A" [shape=box]`,     // extensional
		`fillcolor=lightgray`, // recursive G shaded
		`"A" -> "G";`,         // init edge
		`"G" -> "G";`,         // recursive edge
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	// Duplicate edges collapse: the doubled G body contributes one edge.
	if strings.Count(s, `"G" -> "G"`) != 1 {
		t.Errorf("duplicate edges:\n%s", s)
	}
}

func TestDependenceGraphNegation(t *testing.T) {
	p := parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Unreach(x) :- Node(x), !Reach(x).
	`)
	s := DependenceGraph(p)
	if !strings.Contains(s, "style=dashed") {
		t.Errorf("negative edge not dashed:\n%s", s)
	}
}

func TestDerivationTree(t *testing.T) {
	p := workload.TransitiveClosure()
	in := workload.Chain("A", 3)
	pr, err := explain.NewProver(p, in)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := pr.Explain(ast.GroundAtom{Pred: "G", Args: []ast.Const{ast.Int(0), ast.Int(3)}})
	if !ok {
		t.Fatal("G(0,3) missing")
	}
	s := DerivationTree(d, nil)
	if !strings.Contains(s, "digraph derivation") || !strings.Contains(s, "shape=box") {
		t.Errorf("derivation DOT malformed:\n%s", s)
	}
	// Node count equals tree size.
	if got := strings.Count(s, "label="); got < d.Size() {
		t.Errorf("%d labels for %d nodes:\n%s", got, d.Size(), s)
	}
}

func TestQuoteEscaping(t *testing.T) {
	if got := quote(`a"b`); got != `"a\"b"` {
		t.Fatalf("quote = %s", got)
	}
}
