package magic

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

func deadProgram() *ast.Program {
	return parser.MustParseProgram(`
		Reach(x) :- Src(x).
		Reach(y) :- Reach(x), E(x, y).
		Dead(x) :- Node(x), !Reach(x).
	`)
}

func deadEDB(n int, rng *rand.Rand) *db.Database {
	d := db.New()
	d.Add(ga("Src", 0))
	for e := 0; e < 2*n; e++ {
		d.Add(ga("E", int64(rng.Intn(n)), int64(rng.Intn(n))))
	}
	for i := 0; i < n; i++ {
		d.Add(ga("Node", int64(i)))
	}
	return d
}

func TestStratifiedMagicAgreesWithBottomUp(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	p := deadProgram()
	for trial := 0; trial < 10; trial++ {
		edb := deadEDB(4+rng.Intn(6), rng)
		for _, q := range []string{"Dead(x)", "Dead(3)"} {
			query := parser.MustParseAtom(q)
			got, _, err := AnswerStratified(p, edb, query, eval.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := DirectAnswer(p, edb, query, eval.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !sameTuples(got, want) {
				t.Fatalf("trial %d, query %s: %v vs %v on\n%s", trial, q, got, want, edb)
			}
		}
	}
}

func TestStratifiedMagicLowerStratumQuery(t *testing.T) {
	// Querying the lower stratum itself: it is magic-rewritten positively,
	// with nothing below to materialize.
	p := deadProgram()
	rng := rand.New(rand.NewSource(2))
	edb := deadEDB(8, rng)
	query := parser.MustParseAtom("Reach(x)")
	got, _, err := AnswerStratified(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(got, want) {
		t.Fatalf("lower-stratum query: %v vs %v", got, want)
	}
}

func TestStratifiedMagicPureFallback(t *testing.T) {
	p := ancestor()
	edb := chainEDB("Par", 12)
	query := parser.MustParseAtom("Anc(3, y)")
	got, _, err := AnswerStratified(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(got, want) {
		t.Fatalf("pure fallback differs: %v vs %v", got, want)
	}
}

func TestStratifiedMagicUnknownQueryPred(t *testing.T) {
	if _, _, err := AnswerStratified(deadProgram(), db.New(), parser.MustParseAtom("Zzz(x)"), eval.Options{}); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

func TestUnadorn(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"Anc@bf", "Anc", true},
		{"m@Anc@bf", "", false},
		{"sup@0@1", "", false},
		{"Par", "", false},
	}
	for _, tc := range cases {
		got, ok := unadorn(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("unadorn(%q) = %q, %v", tc.in, got, ok)
		}
	}
}
