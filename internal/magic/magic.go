// Package magic implements the magic-sets rewriting of Bancilhon, Maier,
// Sagiv and Ullman — the query-evaluation method the paper's introduction
// names as the consumer of its optimization ("if the query is going to be
// computed [by] the 'magic set' method …, then removing redundant parts can
// only speed up the computation"). Given a program and a query atom with
// some constant arguments, the rewriter adorns the intentional predicates
// with binding patterns (left-to-right sideways information passing),
// introduces magic predicates recording which bindings are actually asked
// for, and guards each rule with its magic atom, so that bottom-up
// evaluation only derives facts relevant to the query.
//
// Adorned predicates are named P@bf…, magic predicates m@P@bf…; the '@'
// separator cannot appear in parsed predicate names, so the generated
// names never collide with user predicates.
package magic

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
)

// Adornment is a binding pattern: one byte per argument position, 'b' for
// bound, 'f' for free.
type Adornment string

// AdornmentForQuery derives the adornment of a query atom: constant
// positions are bound, variable positions free.
func AdornmentForQuery(q ast.Atom) Adornment {
	pat := make([]byte, len(q.Args))
	for i, t := range q.Args {
		if t.IsVar {
			pat[i] = 'f'
		} else {
			pat[i] = 'b'
		}
	}
	return Adornment(pat)
}

// BoundPositions returns the indexes of the bound positions.
func (a Adornment) BoundPositions() []int {
	var out []int
	for i := 0; i < len(a); i++ {
		if a[i] == 'b' {
			out = append(out, i)
		}
	}
	return out
}

// adornedName returns the name of the adorned version of pred.
func adornedName(pred string, a Adornment) string {
	return pred + "@" + string(a)
}

// magicName returns the name of the magic predicate for pred with
// adornment a.
func magicName(pred string, a Adornment) string {
	return "m@" + pred + "@" + string(a)
}

// Rewritten is the output of the magic-sets transformation.
type Rewritten struct {
	// Program is the rewritten program: guarded adorned rules plus magic
	// rules.
	Program *ast.Program
	// Seed is the magic seed fact encoding the query's constants.
	Seed ast.GroundAtom
	// Query is the adorned query atom to evaluate against the rewritten
	// program.
	Query ast.Atom
}

// Rewrite performs the magic-sets transformation of p for the given query
// atom with the default left-to-right SIPS. The query predicate must be
// intentional in p, and p must be pure Datalog.
func Rewrite(p *ast.Program, query ast.Atom) (*Rewritten, error) {
	return rewrite(p, query, LeftToRight)
}

func rewrite(p *ast.Program, query ast.Atom, strategy SIPS) (*Rewritten, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("magic: pure Datalog required")
	}
	idb := p.IDBPredicates()
	if !idb[query.Pred] {
		return nil, fmt.Errorf("magic: query predicate %s is extensional; query the EDB directly", query.Pred)
	}

	queryAd := AdornmentForQuery(query)
	out := ast.NewProgram()
	type job struct {
		pred string
		ad   Adornment
	}
	seen := map[job]bool{}
	work := []job{{query.Pred, queryAd}}
	seen[work[0]] = true

	enqueue := func(pred string, ad Adornment) {
		j := job{pred, ad}
		if !seen[j] {
			seen[j] = true
			work = append(work, j)
		}
	}

	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		for _, r := range p.Rules {
			if r.Head.Pred != j.pred {
				continue
			}
			guarded, magicRules := adornRule(r, j.ad, idb, strategy, enqueue)
			out.Rules = append(out.Rules, guarded)
			out.Rules = append(out.Rules, magicRules...)
		}
	}

	// Seed: the magic fact carrying the query's constants.
	var seedArgs []ast.Const
	for _, t := range query.Args {
		if !t.IsVar {
			seedArgs = append(seedArgs, t.Val)
		}
	}
	seed := ast.GroundAtom{Pred: magicName(query.Pred, queryAd), Args: seedArgs}

	adQuery := ast.Atom{Pred: adornedName(query.Pred, queryAd), Args: append([]ast.Term(nil), query.Args...)}
	return &Rewritten{Program: out, Seed: seed, Query: adQuery}, nil
}

// adornRule adorns one rule for a head adornment, producing the guarded
// rule and the magic rules for its intentional body atoms. enqueue is
// called for every (predicate, adornment) pair the body demands. The SIPS
// decides the visiting order, which becomes the rewritten body order.
func adornRule(r ast.Rule, headAd Adornment, idb map[string]bool, strategy SIPS, enqueue func(string, Adornment)) (ast.Rule, []ast.Rule) {
	bound := map[string]bool{}
	for _, i := range headAd.BoundPositions() {
		if t := r.Head.Args[i]; t.IsVar {
			bound[t.Name] = true
		}
	}
	order := bodyOrder(r, bound, idb, strategy)

	guard := ast.Atom{
		Pred: magicName(r.Head.Pred, headAd),
		Args: boundArgs(r.Head, headAd),
	}

	newBody := make([]ast.Atom, 0, len(r.Body)+1)
	newBody = append(newBody, guard)
	var magicRules []ast.Rule

	for _, bi := range order {
		a := r.Body[bi]
		if !idb[a.Pred] {
			newBody = append(newBody, a.Clone())
			markBound(a, bound)
			continue
		}
		// Adorn the intentional atom under the current bound set.
		pat := make([]byte, len(a.Args))
		for i, t := range a.Args {
			if !t.IsVar || bound[t.Name] {
				pat[i] = 'b'
			} else {
				pat[i] = 'f'
			}
		}
		ad := Adornment(pat)
		enqueue(a.Pred, ad)

		// Magic rule: the bindings this atom will be asked with are
		// derivable from the head's magic guard plus the atoms already
		// processed (left-to-right SIPS).
		magicHead := ast.Atom{Pred: magicName(a.Pred, ad), Args: boundArgs(a, ad)}
		magicBody := make([]ast.Atom, len(newBody))
		for i, b := range newBody {
			magicBody[i] = b.Clone()
		}
		magicRules = append(magicRules, ast.Rule{Head: magicHead, Body: magicBody})

		adAtom := ast.Atom{Pred: adornedName(a.Pred, ad), Args: append([]ast.Term(nil), a.Args...)}
		newBody = append(newBody, adAtom)
		markBound(a, bound)
	}

	guarded := ast.Rule{
		Head: ast.Atom{Pred: adornedName(r.Head.Pred, headAd), Args: append([]ast.Term(nil), r.Head.Args...)},
		Body: newBody,
	}
	return guarded, magicRules
}

func boundArgs(a ast.Atom, ad Adornment) []ast.Term {
	var out []ast.Term
	for _, i := range ad.BoundPositions() {
		out = append(out, a.Args[i])
	}
	return out
}

func markBound(a ast.Atom, bound map[string]bool) {
	for _, t := range a.Args {
		if t.IsVar {
			bound[t.Name] = true
		}
	}
}

// Stats reports the work done answering a query.
type Stats struct {
	// Eval is the underlying evaluation's statistics.
	Eval eval.Stats
	// DerivedFacts is the number of facts the evaluation added beyond the
	// input EDB (for magic evaluation this includes magic facts).
	DerivedFacts int
}

// Answer rewrites p for the query, evaluates the rewritten program over the
// EDB plus the magic seed, and returns the query's answer tuples. It is the
// end-to-end "magic set method" pipeline the paper's introduction refers
// to.
func Answer(p *ast.Program, edb *db.Database, query ast.Atom, opts eval.Options) ([][]ast.Const, Stats, error) {
	rw, err := Rewrite(p, query)
	if err != nil {
		return nil, Stats{}, err
	}
	in := edb.Clone()
	in.Add(rw.Seed)
	out, st, err := eval.Eval(rw.Program, in, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, rw.Query, db.AllRounds, b, func() bool {
		g := rw.Query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, Stats{Eval: st, DerivedFacts: out.Len() - in.Len()}, nil
}

// DirectAnswer answers the query by full bottom-up evaluation followed by
// filtering — the baseline the magic rewriting is compared against.
func DirectAnswer(p *ast.Program, edb *db.Database, query ast.Atom, opts eval.Options) ([][]ast.Const, Stats, error) {
	out, st, err := eval.Eval(p, edb, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, query, db.AllRounds, b, func() bool {
		g := query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, Stats{Eval: st, DerivedFacts: out.Len() - edb.Len()}, nil
}

// FormatAdornment is a debugging helper rendering the rewritten program
// with one rule per line.
func FormatAdornment(rw *Rewritten) string {
	var sb strings.Builder
	sb.WriteString("seed: ")
	sb.WriteString(rw.Seed.String())
	sb.WriteString("\nquery: ")
	sb.WriteString(rw.Query.String())
	sb.WriteString("\n")
	sb.WriteString(rw.Program.String())
	return sb.String()
}
