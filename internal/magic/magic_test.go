package magic

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

func ga(pred string, args ...int64) ast.GroundAtom {
	cs := make([]ast.Const, len(args))
	for i, a := range args {
		cs[i] = ast.Int(a)
	}
	return ast.GroundAtom{Pred: pred, Args: cs}
}

func ancestor() *ast.Program {
	return parser.MustParseProgram(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Par(x, y), Anc(y, z).
	`)
}

func chainEDB(pred string, n int) *db.Database {
	d := db.New()
	for i := 0; i < n; i++ {
		d.Add(ga(pred, int64(i), int64(i+1)))
	}
	return d
}

func sortTuples(ts [][]ast.Const) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

func sameTuples(a, b [][]ast.Const) bool {
	if len(a) != len(b) {
		return false
	}
	sortTuples(a)
	sortTuples(b)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

func TestAdornmentForQuery(t *testing.T) {
	q := parser.MustParseAtom("Anc(5, y)")
	if ad := AdornmentForQuery(q); ad != "bf" {
		t.Fatalf("adornment = %s", ad)
	}
	q2 := parser.MustParseAtom("Anc(x, y)")
	if ad := AdornmentForQuery(q2); ad != "ff" {
		t.Fatalf("adornment = %s", ad)
	}
	if got := Adornment("bfb").BoundPositions(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("BoundPositions = %v", got)
	}
}

func TestRewriteShape(t *testing.T) {
	rw, err := Rewrite(ancestor(), parser.MustParseAtom("Anc(0, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatalf("rewritten program invalid: %v\n%s", err, rw.Program)
	}
	if rw.Seed.Pred != "m@Anc@bf" || len(rw.Seed.Args) != 1 || rw.Seed.Args[0] != ast.Int(0) {
		t.Fatalf("seed = %v", rw.Seed)
	}
	if rw.Query.Pred != "Anc@bf" {
		t.Fatalf("query = %v", rw.Query)
	}
	// Two guarded rules plus one magic rule for the recursive body atom.
	if len(rw.Program.Rules) != 3 {
		t.Fatalf("rewritten program has %d rules:\n%s", len(rw.Program.Rules), rw.Program)
	}
}

func TestMagicAnswersMatchDirectBoundQuery(t *testing.T) {
	p := ancestor()
	edb := chainEDB("Par", 20)
	query := parser.MustParseAtom("Anc(3, y)")
	magicAns, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(magicAns, directAns) {
		t.Fatalf("answers differ: magic %v, direct %v", magicAns, directAns)
	}
	if len(magicAns) != 17 {
		t.Fatalf("expected 17 ancestors of 3 in a 20-chain, got %d", len(magicAns))
	}
}

func TestMagicDerivesFewerFacts(t *testing.T) {
	// The whole point: with a bound query on a chain, magic evaluation
	// derives far fewer facts than full evaluation.
	p := ancestor()
	edb := chainEDB("Par", 60)
	query := parser.MustParseAtom("Anc(55, y)")
	_, magicStats, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, directStats, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if magicStats.DerivedFacts >= directStats.DerivedFacts {
		t.Fatalf("magic derived %d >= direct %d", magicStats.DerivedFacts, directStats.DerivedFacts)
	}
}

func TestMagicFreeQueryStillCorrect(t *testing.T) {
	p := ancestor()
	edb := chainEDB("Par", 10)
	query := parser.MustParseAtom("Anc(x, y)")
	magicAns, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(magicAns, directAns) {
		t.Fatalf("free-query answers differ: %d vs %d tuples", len(magicAns), len(directAns))
	}
}

func TestMagicSameGeneration(t *testing.T) {
	// The classic same-generation program, bound on the first argument.
	p := parser.MustParseProgram(`
		Sg(x, y) :- Flat(x, y).
		Sg(x, y) :- Up(x, u), Sg(u, v), Down(v, y).
	`)
	edb := db.New()
	// A small two-level hierarchy.
	for _, f := range []ast.GroundAtom{
		ga("Up", 1, 10), ga("Up", 2, 10), ga("Up", 3, 11), ga("Up", 4, 11),
		ga("Flat", 10, 11), ga("Flat", 10, 10), ga("Flat", 11, 11),
		ga("Down", 10, 1), ga("Down", 10, 2), ga("Down", 11, 3), ga("Down", 11, 4),
	} {
		edb.Add(f)
	}
	query := parser.MustParseAtom("Sg(1, y)")
	magicAns, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(magicAns, directAns) {
		t.Fatalf("same-generation answers differ: %v vs %v", magicAns, directAns)
	}
	if len(magicAns) == 0 {
		t.Fatal("no same-generation answers at all")
	}
}

func TestMagicRandomGraphsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := ancestor()
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(10)
		edb := db.New()
		for e := 0; e < 2*n; e++ {
			edb.Add(ga("Par", int64(rng.Intn(n)), int64(rng.Intn(n))))
		}
		src := int64(rng.Intn(n))
		query := ast.NewAtom("Anc", ast.IntTerm(src), ast.Var("y"))
		magicAns, _, err := Answer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(magicAns, directAns) {
			t.Fatalf("trial %d: answers differ on\n%s", trial, edb)
		}
	}
}

func TestMagicSecondArgumentBound(t *testing.T) {
	p := ancestor()
	edb := chainEDB("Par", 15)
	query := parser.MustParseAtom("Anc(x, 9)")
	magicAns, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(magicAns, directAns) {
		t.Fatalf("bf/fb answers differ: %v vs %v", magicAns, directAns)
	}
	if len(magicAns) != 9 {
		t.Fatalf("expected 9 descendants-of-9 tuples, got %d", len(magicAns))
	}
}

func TestRewriteErrors(t *testing.T) {
	if _, err := Rewrite(ancestor(), parser.MustParseAtom("Par(1, y)")); err == nil {
		t.Fatal("EDB query accepted")
	}
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := Rewrite(neg, parser.MustParseAtom("P(x)")); err == nil {
		t.Fatal("negation accepted")
	}
}

func TestMutuallyRecursiveAdornment(t *testing.T) {
	// Odd/even path lengths: adornment must propagate through mutual
	// recursion without looping.
	p := parser.MustParseProgram(`
		Odd(x, y) :- E(x, y).
		Odd(x, z) :- Even(x, y), E(y, z).
		Even(x, z) :- Odd(x, y), E(y, z).
	`)
	edb := chainEDB("E", 12)
	query := parser.MustParseAtom("Odd(0, y)")
	magicAns, _, err := Answer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(magicAns, directAns) {
		t.Fatalf("mutual recursion answers differ: %v vs %v", magicAns, directAns)
	}
	if len(magicAns) != 6 {
		t.Fatalf("expected 6 odd-distance nodes, got %d", len(magicAns))
	}
}

func TestFormatAdornment(t *testing.T) {
	rw, err := Rewrite(ancestor(), parser.MustParseAtom("Anc(0, y)"))
	if err != nil {
		t.Fatal(err)
	}
	s := FormatAdornment(rw)
	if s == "" {
		t.Fatal("empty formatting")
	}
}
