package magic

import (
	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
)

// SIPS selects the sideways-information-passing strategy: the order in
// which a rule's body atoms are visited during adornment, which determines
// how query bindings propagate into subgoals.
type SIPS int

const (
	// LeftToRight visits body atoms in source order — the strategy the
	// basic transformation describes and the default everywhere.
	LeftToRight SIPS = iota
	// BoundFirst greedily visits the atom with the most bound arguments
	// next (extensional atoms win ties), so bindings reach intentional
	// subgoals even when the rule body is written in an unfavourable
	// order. Answers are identical; the work done can differ drastically
	// (see TestSIPSMatters).
	BoundFirst
)

// Options configures the magic-sets transformation.
type Options struct {
	SIPS SIPS
}

// bodyOrder returns the visit order of r's body atoms under the strategy,
// given the initially bound variables.
func bodyOrder(r ast.Rule, headBound map[string]bool, idb map[string]bool, strategy SIPS) []int {
	n := len(r.Body)
	order := make([]int, 0, n)
	if strategy == LeftToRight {
		for i := 0; i < n; i++ {
			order = append(order, i)
		}
		return order
	}
	bound := make(map[string]bool, len(headBound))
	for v := range headBound {
		bound[v] = true
	}
	used := make([]bool, n)
	for len(order) < n {
		best, bestScore := -1, -1
		for i, a := range r.Body {
			if used[i] {
				continue
			}
			score := 0
			for _, t := range a.Args {
				if !t.IsVar || bound[t.Name] {
					score += 2
				}
			}
			if !idb[a.Pred] {
				score++ // prefer extensional atoms on ties: cheap binders
			}
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		used[best] = true
		order = append(order, best)
		for _, t := range r.Body[best].Args {
			if t.IsVar {
				bound[t.Name] = true
			}
		}
	}
	return order
}

// RewriteWithOptions is Rewrite with an explicit SIPS choice.
func RewriteWithOptions(p *ast.Program, query ast.Atom, opts Options) (*Rewritten, error) {
	return rewrite(p, query, opts.SIPS)
}

// AnswerWithOptions answers a query through the magic rewriting with an
// explicit SIPS choice.
func AnswerWithOptions(p *ast.Program, edb *db.Database, query ast.Atom, opts Options, evalOpts eval.Options) ([][]ast.Const, Stats, error) {
	rw, err := RewriteWithOptions(p, query, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	in := edb.Clone()
	in.Add(rw.Seed)
	out, st, err := eval.Eval(rw.Program, in, evalOpts)
	if err != nil {
		return nil, Stats{}, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, rw.Query, db.AllRounds, b, func() bool {
		g := rw.Query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, Stats{Eval: st, DerivedFacts: out.Len() - in.Len()}, nil
}
