package magic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

// answerWith runs the full magic pipeline with an explicit SIPS.
func answerWith(t *testing.T, p *ast.Program, edb *db.Database, query ast.Atom, strategy SIPS) ([][]ast.Const, int) {
	t.Helper()
	rw, err := RewriteWithOptions(p, query, Options{SIPS: strategy})
	if err != nil {
		t.Fatal(err)
	}
	in := edb.Clone()
	in.Add(rw.Seed)
	out, _, err := eval.Eval(rw.Program, in, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, rw.Query, db.AllRounds, b, func() bool {
		g := rw.Query.MustGround(b)
		tp := make([]ast.Const, len(g.Args))
		copy(tp, g.Args)
		tuples = append(tuples, tp)
		return true
	})
	return tuples, out.Len() - in.Len()
}

// badAncestor writes the recursive rule with the intentional atom first,
// which starves the left-to-right SIPS of bindings.
func badAncestor() *ast.Program {
	return parser.MustParseProgram(`
		Anc(x, y) :- Par(x, y).
		Anc(x, z) :- Anc(y, z), Par(x, y).
	`)
}

func TestSIPSAgreeOnAnswers(t *testing.T) {
	p := badAncestor()
	edb := chainEDB("Par", 30)
	query := parser.MustParseAtom("Anc(25, y)")
	l2r, _ := answerWith(t, p, edb, query, LeftToRight)
	bf, _ := answerWith(t, p, edb, query, BoundFirst)
	direct, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(l2r, bf) || !sameTuples(bf, direct) {
		t.Fatalf("SIPS answers differ: l2r %d, bf %d, direct %d", len(l2r), len(bf), len(direct))
	}
}

func TestSIPSMatters(t *testing.T) {
	// With the intentional atom written first, left-to-right adorns it ff
	// and derives the whole closure; bound-first binds through Par(x,y)
	// and stays goal-directed.
	p := badAncestor()
	edb := chainEDB("Par", 60)
	query := parser.MustParseAtom("Anc(55, y)")
	_, l2rDerived := answerWith(t, p, edb, query, LeftToRight)
	_, bfDerived := answerWith(t, p, edb, query, BoundFirst)
	if bfDerived >= l2rDerived {
		t.Fatalf("bound-first derived %d >= left-to-right %d", bfDerived, l2rDerived)
	}
}

func TestSIPSRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	p := badAncestor()
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		edb := db.New()
		for e := 0; e < 2*n; e++ {
			edb.Add(ga("Par", int64(rng.Intn(n)), int64(rng.Intn(n))))
		}
		query := ast.NewAtom("Anc", ast.IntTerm(int64(rng.Intn(n))), ast.Var("y"))
		l2r, _ := answerWith(t, p, edb, query, LeftToRight)
		bf, _ := answerWith(t, p, edb, query, BoundFirst)
		if !sameTuples(l2r, bf) {
			t.Fatalf("trial %d: SIPS answers differ on\n%s", trial, edb)
		}
	}
}

func TestBodyOrderLeftToRightIdentity(t *testing.T) {
	r := badAncestor().Rules[1]
	order := bodyOrder(r, map[string]bool{"x": true}, map[string]bool{"Anc": true}, LeftToRight)
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("order = %v", order)
	}
	order = bodyOrder(r, map[string]bool{"x": true}, map[string]bool{"Anc": true}, BoundFirst)
	if order[0] != 1 {
		t.Fatalf("bound-first should visit Par(x,y) first: %v", order)
	}
}

func TestQuickRewriteValidAndAnswersAgree(t *testing.T) {
	// For random programs and bound queries, the rewritten program is
	// well-formed and magic answers equal direct answers.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := parser.MustParseProgram(`
			Anc(x, y) :- Par(x, y).
			Anc(x, z) :- Par(x, y), Anc(y, z).
		`)
		n := 3 + rng.Intn(6)
		edb := db.New()
		for e := 0; e < 2*n; e++ {
			edb.Add(ga("Par", int64(rng.Intn(n)), int64(rng.Intn(n))))
		}
		query := ast.NewAtom("Anc", ast.IntTerm(int64(rng.Intn(n))), ast.Var("y"))
		rw, err := Rewrite(p, query)
		if err != nil || rw.Program.Validate() != nil {
			return false
		}
		m, _, err := Answer(p, edb, query, eval.Options{})
		if err != nil {
			return false
		}
		d, _, err := DirectAnswer(p, edb, query, eval.Options{})
		if err != nil {
			return false
		}
		return sameTuples(m, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
