package magic

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
	"repro/internal/parser"
)

func TestSupplementaryShape(t *testing.T) {
	rw, err := RewriteSupplementary(ancestor(), parser.MustParseAtom("Anc(0, y)"))
	if err != nil {
		t.Fatal(err)
	}
	if err := rw.Program.Validate(); err != nil {
		t.Fatalf("supplementary program invalid: %v\n%s", err, rw.Program)
	}
	s := rw.Program.String()
	if !strings.Contains(s, "sup@") {
		t.Fatalf("no supplementary predicates:\n%s", s)
	}
	if rw.Seed.Pred != "m@Anc@bf" {
		t.Fatalf("seed = %v", rw.Seed)
	}
}

func TestSupplementaryAnswersAgree(t *testing.T) {
	p := ancestor()
	edb := chainEDB("Par", 25)
	for _, q := range []string{"Anc(3, y)", "Anc(x, 9)", "Anc(x, y)"} {
		query := parser.MustParseAtom(q)
		supAns, _, err := AnswerSupplementary(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plainAns, _, err := Answer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(supAns, plainAns) || !sameTuples(supAns, directAns) {
			t.Fatalf("query %s: sup %d, plain %d, direct %d answers", q, len(supAns), len(plainAns), len(directAns))
		}
	}
}

func TestSupplementarySameGeneration(t *testing.T) {
	p := parser.MustParseProgram(`
		Sg(x, y) :- Flat(x, y).
		Sg(x, y) :- Up(x, u), Sg(u, v), Down(v, y).
	`)
	edb := db.New()
	for _, f := range []ast.GroundAtom{
		ga("Up", 1, 10), ga("Up", 2, 10), ga("Up", 3, 11),
		ga("Flat", 10, 11), ga("Flat", 10, 10),
		ga("Down", 10, 1), ga("Down", 11, 3), ga("Down", 11, 4),
	} {
		edb.Add(f)
	}
	query := parser.MustParseAtom("Sg(1, y)")
	supAns, _, err := AnswerSupplementary(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(supAns, directAns) {
		t.Fatalf("same-generation: sup %v vs direct %v", supAns, directAns)
	}
}

func TestSupplementaryLongBody(t *testing.T) {
	// A long body is where supplementary predicates pay off: shared
	// prefixes are computed once.
	p := parser.MustParseProgram(`
		P(x, z) :- E(x, z).
		P(x, z) :- P(x, a), E(a, b), E(b, c), E(c, d), P(d, z).
	`)
	edb := chainEDB("E", 16)
	query := parser.MustParseAtom("P(0, y)")
	supAns, supStats, err := AnswerSupplementary(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	directAns, _, err := DirectAnswer(p, edb, query, eval.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameTuples(supAns, directAns) {
		t.Fatalf("long body: %v vs %v", supAns, directAns)
	}
	if supStats.DerivedFacts == 0 {
		t.Fatal("no facts derived at all")
	}
}

func TestSupplementaryRandomAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	p := ancestor()
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(8)
		edb := db.New()
		for e := 0; e < 2*n; e++ {
			edb.Add(ga("Par", int64(rng.Intn(n)), int64(rng.Intn(n))))
		}
		query := ast.NewAtom("Anc", ast.IntTerm(int64(rng.Intn(n))), ast.Var("y"))
		supAns, _, err := AnswerSupplementary(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plainAns, _, err := Answer(p, edb, query, eval.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameTuples(supAns, plainAns) {
			t.Fatalf("trial %d: answers differ on\n%s", trial, edb)
		}
	}
}

func TestSupplementaryErrors(t *testing.T) {
	if _, err := RewriteSupplementary(ancestor(), parser.MustParseAtom("Par(1, y)")); err == nil {
		t.Fatal("EDB query accepted")
	}
	neg := parser.MustParseProgram(`P(x) :- A(x), !B(x).`)
	if _, err := RewriteSupplementary(neg, parser.MustParseAtom("P(x)")); err == nil {
		t.Fatal("negation accepted")
	}
}
