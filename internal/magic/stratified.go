package magic

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/depgraph"
	"repro/internal/eval"
)

// AnswerStratified extends the magic pipeline to stratified negation with
// the same conservative split the top-down engine uses: every stratum
// below the query's is materialized bottom-up (negated predicates must be
// complete before anything reads them), and the top stratum is magic-
// rewritten with its negated literals carried over verbatim — they check
// absence against the materialized, complete relations, so restricting
// the positive derivations to query-relevant bindings cannot change their
// meaning. Pure Datalog inputs take the ordinary magic path.
func AnswerStratified(p *ast.Program, edb *db.Database, query ast.Atom, opts eval.Options) ([][]ast.Const, Stats, error) {
	if !p.HasNegation() {
		return Answer(p, edb, query, opts)
	}
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	strata, err := depgraph.Strata(p)
	if err != nil {
		return nil, Stats{}, err
	}
	// Locate the query's stratum; everything strictly below it is
	// materialized, the query's stratum and above are dropped or rewritten.
	level := map[string]int{}
	for i, s := range strata {
		for _, pred := range s {
			level[pred] = i
		}
	}
	qLevel, ok := level[query.Pred]
	if !ok {
		return nil, Stats{}, fmt.Errorf("magic: unknown query predicate %s", query.Pred)
	}

	lower := ast.NewProgram()
	upper := ast.NewProgram()
	for _, r := range p.Rules {
		switch {
		case level[r.Head.Pred] < qLevel:
			lower.Rules = append(lower.Rules, r.Clone())
		case level[r.Head.Pred] == qLevel:
			upper.Rules = append(upper.Rules, r.Clone())
		}
		// Rules of higher strata cannot contribute to the query.
	}
	base, lowerStats, err := eval.Eval(lower, edb, opts)
	if err != nil {
		return nil, Stats{}, err
	}

	// The upper stratum's negated predicates live in `base` and are
	// complete. Rewrite only the positive structure: negated literals are
	// reattached to the guarded rules after adornment.
	positives := ast.NewProgram()
	negOf := make([]([]ast.Atom), len(upper.Rules))
	for i, r := range upper.Rules {
		pr := r.Clone()
		negOf[i] = pr.NegBody
		pr.NegBody = nil
		positives.Rules = append(positives.Rules, pr)
	}
	rw, err := Rewrite(positives, query)
	if err != nil {
		return nil, Stats{}, err
	}
	// Reattach negation: a guarded rule's head predicate is the adorned
	// form of its source rule's head, and guarded rules appear in source
	// order per (head, adornment) job; match them back by comparing the
	// unadorned body (cheap and unambiguous because the adorned body embeds
	// the original atoms in order after the guard).
	reattached := ast.NewProgram()
	for _, r := range rw.Program.Rules {
		rr := r.Clone()
		if src, ok := sourceRuleIndex(upper, rr); ok && len(negOf[src]) > 0 {
			for _, n := range negOf[src] {
				rr.NegBody = append(rr.NegBody, n.Clone())
			}
		}
		reattached.Rules = append(reattached.Rules, rr)
	}

	in := base.Clone()
	in.Add(rw.Seed)
	out, st, err := eval.Eval(reattached, in, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, rw.Query, db.AllRounds, b, func() bool {
		g := rw.Query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	st.Firings += lowerStats.Firings
	st.Added += lowerStats.Added
	return tuples, Stats{Eval: st, DerivedFacts: out.Len() - in.Len() + (base.Len() - edb.Len())}, nil
}

// sourceRuleIndex identifies which upper-stratum rule a guarded rewritten
// rule came from: guarded rules (not magic rules) have an adorned head
// "P@…" whose unadorned body atoms appear, in order, after the magic
// guard. Magic rules return false.
func sourceRuleIndex(upper *ast.Program, guarded ast.Rule) (int, bool) {
	headPred, ok := unadorn(guarded.Head.Pred)
	if !ok {
		return 0, false // magic or supplementary predicate
	}
	for i, r := range upper.Rules {
		if r.Head.Pred != headPred || len(guarded.Body) != len(r.Body)+1 || len(r.Head.Args) != len(guarded.Head.Args) {
			continue
		}
		match := true
		for k := range r.Head.Args {
			if !guarded.Head.Args[k].Equal(r.Head.Args[k]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		for j, a := range r.Body {
			got := guarded.Body[j+1]
			gotPred, adorned := unadorn(got.Pred)
			if !adorned {
				gotPred = got.Pred
			}
			if gotPred != a.Pred || len(got.Args) != len(a.Args) {
				match = false
				break
			}
			for k := range a.Args {
				if !got.Args[k].Equal(a.Args[k]) {
					match = false
					break
				}
			}
			if !match {
				break
			}
		}
		if match {
			return i, true
		}
	}
	return 0, false
}

// unadorn strips the adornment suffix from P@bf…-style names; it returns
// false for magic (m@…) and supplementary (sup@…) predicates and for
// names without an adornment.
func unadorn(pred string) (string, bool) {
	for i := 0; i < len(pred); i++ {
		if pred[i] == '@' {
			if i == 0 || pred[:i] == "m" || pred[:i] == "sup" {
				return "", false
			}
			return pred[:i], true
		}
	}
	return "", false
}
