package magic

import (
	"fmt"

	"repro/internal/ast"
	"repro/internal/db"
	"repro/internal/eval"
)

// RewriteSupplementary performs the supplementary magic-sets rewriting: in
// addition to magic predicates it introduces supplementary predicates
// sup@r‹i› that carry partial join results through each rule body, so the
// common prefix of a rule's guarded version and its magic rules is computed
// once instead of once per consumer. For rule r (adorned for head pattern
// a) with body B₁ … Bₙ:
//
//	sup@r@0(v̄₀)  :- m@H@a(bound head args).
//	m@Q@bᵢ(…)    :- sup@r@i-1(v̄ᵢ₋₁).          for intentional Bᵢ
//	sup@r@i(v̄ᵢ)  :- sup@r@i-1(v̄ᵢ₋₁), Bᵢ′.     (Bᵢ′ adorned if intentional)
//	H@a(head)    :- sup@r@n(v̄ₙ).
//
// where v̄ᵢ keeps exactly the variables that are bound after Bᵢ and still
// needed by a later atom or the head. Answers coincide with Rewrite's; the
// benefit is fewer repeated joins on long bodies (see
// BenchmarkAblation_SupplementaryMagic).
func RewriteSupplementary(p *ast.Program, query ast.Atom) (*Rewritten, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("magic: pure Datalog required")
	}
	idb := p.IDBPredicates()
	if !idb[query.Pred] {
		return nil, fmt.Errorf("magic: query predicate %s is extensional; query the EDB directly", query.Pred)
	}

	queryAd := AdornmentForQuery(query)
	out := ast.NewProgram()
	type job struct {
		pred string
		ad   Adornment
	}
	seen := map[job]bool{}
	work := []job{{query.Pred, queryAd}}
	seen[work[0]] = true
	enqueue := func(pred string, ad Adornment) {
		j := job{pred, ad}
		if !seen[j] {
			seen[j] = true
			work = append(work, j)
		}
	}

	ruleSeq := 0
	for len(work) > 0 {
		j := work[0]
		work = work[1:]
		for _, r := range p.Rules {
			if r.Head.Pred != j.pred {
				continue
			}
			out.Rules = append(out.Rules, supplementaryRules(r, j.ad, idb, ruleSeq, enqueue)...)
			ruleSeq++
		}
	}

	var seedArgs []ast.Const
	for _, t := range query.Args {
		if !t.IsVar {
			seedArgs = append(seedArgs, t.Val)
		}
	}
	seed := ast.GroundAtom{Pred: magicName(query.Pred, queryAd), Args: seedArgs}
	adQuery := ast.Atom{Pred: adornedName(query.Pred, queryAd), Args: append([]ast.Term(nil), query.Args...)}
	return &Rewritten{Program: out, Seed: seed, Query: adQuery}, nil
}

// supplementaryRules emits the sup-chain for one rule under one head
// adornment.
func supplementaryRules(r ast.Rule, headAd Adornment, idb map[string]bool, seq int, enqueue func(string, Adornment)) []ast.Rule {
	var rules []ast.Rule
	supName := func(i int) string {
		return fmt.Sprintf("sup@%d@%d", seq, i)
	}

	// Variables needed strictly after body position i (atoms i+1.. plus the
	// head).
	neededAfter := make([]map[string]bool, len(r.Body)+1)
	needed := map[string]bool{}
	r.Head.CollectVars(needed)
	neededAfter[len(r.Body)] = copySet(needed)
	for i := len(r.Body) - 1; i >= 0; i-- {
		r.Body[i].CollectVars(needed)
		neededAfter[i] = copySet(needed)
	}
	// neededAfter[i] now holds the variables of atoms i.. plus head; the
	// sup at position i must carry the bound variables still needed by
	// atoms i+1.. or the head, so shift by one when reading it below.

	bound := map[string]bool{}
	for _, i := range headAd.BoundPositions() {
		if t := r.Head.Args[i]; t.IsVar {
			bound[t.Name] = true
		}
	}

	supVars := func(i int) []ast.Term {
		// Bound vars still needed after position i (atoms i+1.. or head).
		need := neededAfter[i]
		var vars []ast.Term
		for _, v := range orderedVars(r, bound) {
			if need[v] {
				vars = append(vars, ast.Var(v))
			}
		}
		return vars
	}

	// sup@r@0 from the magic guard.
	guard := ast.Atom{Pred: magicName(r.Head.Pred, headAd), Args: boundArgs(r.Head, headAd)}
	rules = append(rules, ast.Rule{
		Head: ast.Atom{Pred: supName(0), Args: supVars(0)},
		Body: []ast.Atom{guard},
	})

	for i, a := range r.Body {
		prev := ast.Atom{Pred: supName(i), Args: supVars(i)}
		var bodyAtom ast.Atom
		if idb[a.Pred] {
			pat := make([]byte, len(a.Args))
			for k, t := range a.Args {
				if !t.IsVar || bound[t.Name] {
					pat[k] = 'b'
				} else {
					pat[k] = 'f'
				}
			}
			ad := Adornment(pat)
			enqueue(a.Pred, ad)
			rules = append(rules, ast.Rule{
				Head: ast.Atom{Pred: magicName(a.Pred, ad), Args: boundArgs(a, ad)},
				Body: []ast.Atom{prev.Clone()},
			})
			bodyAtom = ast.Atom{Pred: adornedName(a.Pred, ad), Args: append([]ast.Term(nil), a.Args...)}
		} else {
			bodyAtom = a.Clone()
		}
		markBound(a, bound)
		rules = append(rules, ast.Rule{
			Head: ast.Atom{Pred: supName(i + 1), Args: supVars(i + 1)},
			Body: []ast.Atom{prev.Clone(), bodyAtom},
		})
	}

	rules = append(rules, ast.Rule{
		Head: ast.Atom{Pred: adornedName(r.Head.Pred, headAd), Args: append([]ast.Term(nil), r.Head.Args...)},
		Body: []ast.Atom{{Pred: supName(len(r.Body)), Args: supVars(len(r.Body))}},
	})
	return rules
}

// orderedVars lists the rule's variables in first-occurrence order,
// filtered by the bound set (which callers mutate as positions advance).
func orderedVars(r ast.Rule, bound map[string]bool) []string {
	var out []string
	for _, v := range r.Vars() {
		if bound[v] {
			out = append(out, v)
		}
	}
	return out
}

func copySet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// AnswerSupplementary answers a query through the supplementary rewriting.
func AnswerSupplementary(p *ast.Program, edb *db.Database, query ast.Atom, opts eval.Options) ([][]ast.Const, Stats, error) {
	rw, err := RewriteSupplementary(p, query)
	if err != nil {
		return nil, Stats{}, err
	}
	in := edb.Clone()
	in.Add(rw.Seed)
	out, st, err := eval.Eval(rw.Program, in, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var tuples [][]ast.Const
	b := ast.Binding{}
	db.MatchAtom(out, rw.Query, db.AllRounds, b, func() bool {
		g := rw.Query.MustGround(b)
		t := make([]ast.Const, len(g.Args))
		copy(t, g.Args)
		tuples = append(tuples, t)
		return true
	})
	return tuples, Stats{Eval: st, DerivedFacts: out.Len() - in.Len()}, nil
}
