package ast

import (
	"fmt"
	"strings"
)

// TGD is a tuple-generating dependency (Section VIII):
//
//	∀x̄ ∃ȳ [ Lhs(x̄) → Rhs(x̄, ȳ) ]
//
// Universally quantified variables are those appearing in the left-hand
// side; variables appearing only in the right-hand side are existentially
// quantified. A tgd with no existential variables is full; otherwise it is
// embedded. The tgds of the paper are untyped.
type TGD struct {
	Lhs []Atom
	Rhs []Atom
}

// NewTGD builds a tgd from left- and right-hand conjunctions.
func NewTGD(lhs, rhs []Atom) TGD { return TGD{Lhs: lhs, Rhs: rhs} }

// Clone returns a deep copy of the tgd.
func (t TGD) Clone() TGD {
	lhs := make([]Atom, len(t.Lhs))
	for i, a := range t.Lhs {
		lhs[i] = a.Clone()
	}
	rhs := make([]Atom, len(t.Rhs))
	for i, a := range t.Rhs {
		rhs[i] = a.Clone()
	}
	return TGD{Lhs: lhs, Rhs: rhs}
}

// Equal reports whether two tgds are syntactically identical.
func (t TGD) Equal(u TGD) bool {
	if len(t.Lhs) != len(u.Lhs) || len(t.Rhs) != len(u.Rhs) {
		return false
	}
	for i := range t.Lhs {
		if !t.Lhs[i].Equal(u.Lhs[i]) {
			return false
		}
	}
	for i := range t.Rhs {
		if !t.Rhs[i].Equal(u.Rhs[i]) {
			return false
		}
	}
	return true
}

// Validate checks that both sides are non-empty conjunctions.
func (t TGD) Validate() error {
	if len(t.Lhs) == 0 {
		return fmt.Errorf("ast: tgd %s has an empty left-hand side", t)
	}
	if len(t.Rhs) == 0 {
		return fmt.Errorf("ast: tgd %s has an empty right-hand side", t)
	}
	return nil
}

// UniversalVars returns the universally quantified variables (those of the
// left-hand side) in order of first occurrence.
func (t TGD) UniversalVars() []string { return VarsOfAtoms(t.Lhs) }

// ExistentialVars returns the existentially quantified variables (those
// appearing only in the right-hand side) in order of first occurrence.
func (t TGD) ExistentialVars() []string {
	univ := make(map[string]bool)
	for _, a := range t.Lhs {
		a.CollectVars(univ)
	}
	var exist []string
	seen := make(map[string]bool)
	for _, a := range t.Rhs {
		for _, tm := range a.Args {
			if tm.IsVar && !univ[tm.Name] && !seen[tm.Name] {
				seen[tm.Name] = true
				exist = append(exist, tm.Name)
			}
		}
	}
	return exist
}

// IsFull reports whether the tgd has no existentially quantified variables.
// Applying a full tgd is the same as applying ordinary rules (Example 10).
func (t TGD) IsFull() bool { return len(t.ExistentialVars()) == 0 }

// AsRules converts a full tgd into the equivalent set of rules, one per
// right-hand-side atom, each with the tgd's left-hand side as its body
// (Example 10). It panics on embedded tgds, which require labeled nulls and
// are handled by the chase.
func (t TGD) AsRules() []Rule {
	if !t.IsFull() {
		panic("ast: AsRules on embedded tgd")
	}
	rules := make([]Rule, len(t.Rhs))
	for i, h := range t.Rhs {
		body := make([]Atom, len(t.Lhs))
		for j, a := range t.Lhs {
			body[j] = a.Clone()
		}
		rules[i] = Rule{Head: h.Clone(), Body: body}
	}
	return rules
}

// Rename rewrites every variable of the tgd through f.
func (t TGD) Rename(f func(string) string) TGD {
	lhs := make([]Atom, len(t.Lhs))
	for i, a := range t.Lhs {
		lhs[i] = a.Rename(f)
	}
	rhs := make([]Atom, len(t.Rhs))
	for i, a := range t.Rhs {
		rhs[i] = a.Rename(f)
	}
	return TGD{Lhs: lhs, Rhs: rhs}
}

// String renders the tgd in the paper's arrow notation.
func (t TGD) String() string { return t.Format(nil) }

// Format renders the tgd, resolving symbolic constants through tab.
func (t TGD) Format(tab *SymbolTable) string {
	var sb strings.Builder
	sb.WriteString(FormatAtoms(t.Lhs, tab))
	sb.WriteString(" -> ")
	sb.WriteString(FormatAtoms(t.Rhs, tab))
	sb.WriteByte('.')
	return sb.String()
}
