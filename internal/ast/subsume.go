package ast

// θ-subsumption between rules, the syntactic containment test the static
// analyzer and the chase fast path share. Rule s subsumes rule r when some
// substitution θ of s's variables (possibly non-injective, mapping into r's
// terms) makes s.Head·θ equal to r.Head and carries every body atom of s
// onto some body atom of r (set inclusion — s may repeat or exceed r's
// atoms). By Corollary 2 this forces r ⊑ᵘ {s}: the frozen body of r
// contains s.Body·θ frozen, so one application of s derives r's frozen
// head. The converse fails (uniform containment is not syntactic), which is
// exactly why subsumption is only ever a "verdict forced true" fast path.

// subsumeBudget bounds the number of atom-match attempts in one subsumption
// search. Bodies are small in practice, but k repeated predicates in both
// rules admit k^k assignments; on exhaustion the search reports false,
// which every caller treats as "fall back to the chase" or "no finding" —
// both sound.
const subsumeBudget = 10000

// SubsumesRule reports whether rule s θ-subsumes rule r. Negated atoms
// match only negated atoms, so the test remains sound for the
// stratified-negation extension (a model of s still satisfies r).
func SubsumesRule(s, r Rule) bool {
	if s.Head.Pred != r.Head.Pred || len(s.Head.Args) != len(r.Head.Args) {
		return false
	}
	m := &matcher{theta: make(Subst), steps: subsumeBudget}
	added, ok := m.matchAtom(s.Head, r.Head)
	if !ok {
		return false
	}
	if m.matchInto(s.Body, r.Body, 0) && m.matchInto(s.NegBody, r.NegBody, 0) {
		return true
	}
	m.undo(added)
	return false
}

// MatchAtomInto extends theta — a one-way matching substitution over the
// pattern's variables — so that pattern·theta equals target syntactically.
// Variables of the target are treated as constants (they are never bound).
// It returns the variable names newly bound, for backtracking; on failure
// theta is left unchanged.
func MatchAtomInto(pattern, target Atom, theta Subst) (added []string, ok bool) {
	m := &matcher{theta: theta, steps: 1}
	return m.matchAtom(pattern, target)
}

// matcher carries the matching substitution and the remaining step budget
// of one subsumption search.
type matcher struct {
	theta Subst
	steps int
}

func (m *matcher) undo(added []string) {
	for _, v := range added {
		delete(m.theta, v)
	}
}

// matchAtom extends theta so pattern·theta == target, returning the newly
// bound variable names for backtracking.
func (m *matcher) matchAtom(pattern, target Atom) (added []string, ok bool) {
	if pattern.Pred != target.Pred || len(pattern.Args) != len(target.Args) {
		return nil, false
	}
	for i, t := range pattern.Args {
		want := target.Args[i]
		if !t.IsVar {
			if want.IsVar || want.Val != t.Val {
				m.undo(added)
				return nil, false
			}
			continue
		}
		if bound, has := m.theta[t.Name]; has {
			if !bound.Equal(want) {
				m.undo(added)
				return nil, false
			}
			continue
		}
		m.theta[t.Name] = want
		added = append(added, t.Name)
	}
	return added, true
}

// matchInto finds an extension of theta carrying every pattern atom from
// index i on into some target atom (targets may be reused — set inclusion,
// not a matching). It backtracks over the choice of target per pattern atom
// and gives up when the step budget runs out.
func (m *matcher) matchInto(pattern, target []Atom, i int) bool {
	if i >= len(pattern) {
		return true
	}
	for _, t := range target {
		if m.steps <= 0 {
			return false
		}
		m.steps--
		added, ok := m.matchAtom(pattern[i], t)
		if !ok {
			continue
		}
		if m.matchInto(pattern, target, i+1) {
			return true
		}
		m.undo(added)
	}
	return false
}
