package ast

import (
	"fmt"
	"testing"
)

func rule(head Atom, body ...Atom) Rule { return Rule{Head: head, Body: body} }

// canonCorpus is a set of pairwise canonically-distinct programs covering
// the separator edge cases the canonical rendering must keep apart:
// constant vs variable, predicate-name boundaries, rule-order sensitivity,
// body-order sensitivity, and arity differences.
func canonCorpus() []*Program {
	a := func(pred string, ts ...Term) Atom { return Atom{Pred: pred, Args: ts} }
	v := Var
	c := func(n int64) Term { return IntTerm(n) }
	return []*Program{
		NewProgram(rule(a("P", v("x")), a("A", v("x")))),
		NewProgram(rule(a("P", v("x")), a("A", v("x"), v("x")))),
		NewProgram(rule(a("P", v("x")), a("A", v("x"), v("y")))),
		NewProgram(rule(a("P", c(0)), a("A", c(0)))),
		NewProgram(rule(a("P", c(1)), a("A", c(1)))),
		// Same letters, different predicate split: "AB(x)" vs "A(x), B(x)"
		// must not collide.
		NewProgram(rule(a("P", v("x")), a("AB", v("x")))),
		NewProgram(rule(a("P", v("x")), a("A", v("x")), a("B", v("x")))),
		// Variable identified vs distinct across atoms.
		NewProgram(rule(a("P", v("x")), a("A", v("x")), a("B", v("y")))),
		// Rule order matters (it pins the prepared schedule).
		NewProgram(
			rule(a("P", v("x")), a("A", v("x"))),
			rule(a("Q", v("x")), a("B", v("x"))),
		),
		NewProgram(
			rule(a("Q", v("x")), a("B", v("x"))),
			rule(a("P", v("x")), a("A", v("x"))),
		),
		// Body order matters (it feeds the NoReorder ablation).
		NewProgram(rule(a("P", v("x")), a("B", v("x")), a("A", v("x")))),
		// Negation present vs encoded-positive must differ.
		NewProgram(Rule{Head: a("P", v("x")), Body: []Atom{a("A", v("x"))}, NegBody: []Atom{a("B", v("x"))}}),
	}
}

// TestCanonicalInjectivityCorpus checks that every pair of corpus programs
// gets a distinct canonical string (and, for the cache's sake, that their
// hashes are distinct on this corpus), while alpha-renamed twins collapse
// to the same string.
func TestCanonicalInjectivityCorpus(t *testing.T) {
	corpus := canonCorpus()
	seen := map[string]int{}
	hashes := map[uint64]int{}
	for i, p := range corpus {
		canon := p.CanonicalString()
		if j, dup := seen[canon]; dup {
			t.Errorf("programs %d and %d share canonical form %q:\n%s\nvs\n%s", i, j, canon, corpus[j], p)
		}
		seen[canon] = i
		h := p.CanonicalHash()
		if j, dup := hashes[h]; dup {
			t.Errorf("programs %d and %d collide on hash %x", i, j, h)
		}
		hashes[h] = i
	}
}

// TestCanonicalAlphaInvariance checks the defining property: renaming the
// variables of any rule (consistently within the rule) leaves the canonical
// string unchanged, and the canonical form survives Clone.
func TestCanonicalAlphaInvariance(t *testing.T) {
	for i, p := range canonCorpus() {
		canon := p.CanonicalString()
		if got := p.Clone().CanonicalString(); got != canon {
			t.Errorf("program %d: Clone changed canonical form", i)
		}
		renamed := p.Clone()
		for j := range renamed.Rules {
			r := renamed.Rules[j].Rename(func(v string) string { return "zz_" + v })
			renamed.Rules[j] = r
		}
		if got := renamed.CanonicalString(); got != canon {
			t.Errorf("program %d: alpha-renaming changed canonical form:\n%q\nvs\n%q", i, canon, got)
		}
	}
}

// FuzzCanonicalRule fuzzes the per-rule canonical rendering over generated
// rule shapes: the rendering must be alpha-invariant and must distinguish a
// rule from a structurally perturbed copy.
func FuzzCanonicalRule(f *testing.F) {
	f.Add(uint8(2), uint8(1), uint8(0), uint8(3))
	f.Add(uint8(1), uint8(0), uint8(2), uint8(2))
	f.Add(uint8(3), uint8(2), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, nBody, mix, constSel, arity uint8) {
		vars := []string{"x", "y", "z"}
		mkAtom := func(pred string, salt uint8) Atom {
			n := int(arity%3) + 1
			args := make([]Term, n)
			for i := range args {
				sel := (int(mix) + i + int(salt)) % 4
				if sel == int(constSel)%4 {
					args[i] = IntTerm(int64(sel))
				} else {
					args[i] = Var(vars[sel%len(vars)])
				}
			}
			return Atom{Pred: pred, Args: args}
		}
		r := Rule{Head: mkAtom("H", 0)}
		for i := 0; i < int(nBody%4)+1; i++ {
			r.Body = append(r.Body, mkAtom(fmt.Sprintf("B%d", i%2), uint8(i)))
		}
		canon := r.CanonicalString()

		// Alpha-invariance.
		ren := r.Rename(func(v string) string { return v + "_r" })
		if ren.CanonicalString() != canon {
			t.Fatalf("alpha-renaming changed canonical form of %s", r)
		}
		// Injectivity against perturbations: adding an atom, changing a
		// predicate, or changing a constant must change the form.
		longer := r
		longer.Body = append(append([]Atom(nil), r.Body...), mkAtom("EXTRA", 9))
		if longer.CanonicalString() == canon {
			t.Fatalf("adding a body atom did not change canonical form of %s", r)
		}
		diffPred := r.Clone()
		diffPred.Head.Pred = "H2"
		if diffPred.CanonicalString() == canon {
			t.Fatalf("changing head predicate did not change canonical form of %s", r)
		}
	})
}
