package ast

import (
	"strconv"
	"strings"
)

// Canonical forms give programs a content address: two programs share a
// canonical string exactly when they are identical up to per-rule variable
// renaming. The plan cache (internal/eval) keys prepared evaluation plans by
// a hash of this string, so syntactically distinct but alpha-equivalent
// subprograms — which the Fig. 1/2 minimization loops generate in bulk while
// probing candidate deletions — resolve to the same plan.
//
// Rule order and body-atom order are deliberately NOT canonicalized: rule
// order determines the prepared schedule's tie-breaking and body order feeds
// the NoReorder ablation, so two programs that differ only in ordering get
// distinct (but equally valid) plans.

// canonicalRule renders r with variables renamed to v0, v1, … in order of
// first occurrence (head, then body, then negated body). The rendering is
// injective on rules-up-to-renaming: predicates cannot contain the
// separator characters, every atom is parenthesized, and constants render
// through their numeric identity.
func canonicalRule(sb *strings.Builder, r Rule) {
	names := make(map[string]int)
	writeAtom := func(a Atom) {
		sb.WriteString(a.Pred)
		sb.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			if t.IsVar {
				id, ok := names[t.Name]
				if !ok {
					id = len(names)
					names[t.Name] = id
				}
				sb.WriteByte('v')
				sb.WriteString(strconv.Itoa(id))
			} else {
				sb.WriteByte('#')
				sb.WriteString(strconv.FormatInt(int64(t.Val), 10))
			}
		}
		sb.WriteByte(')')
	}
	writeAtom(r.Head)
	sb.WriteString(":-")
	for i, a := range r.Body {
		if i > 0 {
			sb.WriteByte(',')
		}
		writeAtom(a)
	}
	for _, a := range r.NegBody {
		sb.WriteString(",!")
		writeAtom(a)
	}
}

// CanonicalString renders the rule in canonical form — variables normalized
// to v0, v1, … by first occurrence. Rules equal up to variable renaming, and
// only those, share the string. The containment layer keys content-addressed
// verdicts by it: r ⊑ᵘ P is invariant under renaming r's variables.
func (r Rule) CanonicalString() string {
	var sb strings.Builder
	canonicalRule(&sb, r)
	return sb.String()
}

// CanonicalString renders the program in canonical form: one rule per line,
// each rule's variables normalized by first occurrence. Programs equal up to
// per-rule variable renaming — and only those — share the string.
func (p *Program) CanonicalString() string {
	var sb strings.Builder
	sb.Grow(64 * len(p.Rules))
	for _, r := range p.Rules {
		canonicalRule(&sb, r)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CanonicalHash returns a 64-bit FNV-1a hash of the canonical string — the
// program's content address. Hash equality does not by itself guarantee
// canonical equality; consumers that cannot tolerate a collision (the plan
// cache) must compare CanonicalString on hash hits.
func (p *Program) CanonicalHash() uint64 {
	return HashString(p.CanonicalString())
}

// HashString is 64-bit FNV-1a, shared by the plan cache so its option
// fingerprints hash identically to program content.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
