package ast

import (
	"reflect"
	"testing"
)

func atomGxz() Atom { return NewAtom("G", Var("x"), Var("z")) }

func TestAtomBasics(t *testing.T) {
	a := NewAtom("Q", Var("x"), Var("y"), IntTerm(3), IntTerm(10))
	if a.Arity() != 4 {
		t.Fatalf("Arity = %d", a.Arity())
	}
	if a.IsGround() {
		t.Fatal("atom with variables reported ground")
	}
	if got := a.String(); got != "Q(x, y, 3, 10)" {
		t.Fatalf("String = %q", got)
	}
	g := NewAtom("Q", IntTerm(1), IntTerm(2))
	if !g.IsGround() {
		t.Fatal("constant atom not ground")
	}
}

func TestAtomVarsOrder(t *testing.T) {
	a := NewAtom("P", Var("z"), Var("x"), Var("z"), IntTerm(1), Var("y"))
	want := []string{"z", "x", "y"}
	if got := a.Vars(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	if !a.HasVar("x") || a.HasVar("w") {
		t.Fatal("HasVar wrong")
	}
}

func TestAtomEqualClone(t *testing.T) {
	a := NewAtom("G", Var("x"), IntTerm(5))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b.Args[0] = Var("y")
	if a.Equal(b) {
		t.Fatal("mutating clone affected equality")
	}
	if a.Args[0].Name != "x" {
		t.Fatal("clone shares argument storage")
	}
	if a.Equal(NewAtom("H", Var("x"), IntTerm(5))) {
		t.Fatal("different predicates equal")
	}
	if a.Equal(NewAtom("G", Var("x"))) {
		t.Fatal("different arities equal")
	}
}

func TestApplySubst(t *testing.T) {
	a := NewAtom("G", Var("x"), Var("y"), Var("x"))
	s := Subst{"x": IntTerm(1), "y": Var("w")}
	got := a.Apply(s)
	want := NewAtom("G", IntTerm(1), Var("w"), IntTerm(1))
	if !got.Equal(want) {
		t.Fatalf("Apply = %v, want %v", got, want)
	}
	// Simultaneous application: replacement terms are not rewritten again.
	s2 := Subst{"x": Var("y"), "y": Var("z")}
	got2 := NewAtom("P", Var("x"), Var("y")).Apply(s2)
	want2 := NewAtom("P", Var("y"), Var("z"))
	if !got2.Equal(want2) {
		t.Fatalf("simultaneous Apply = %v, want %v", got2, want2)
	}
}

func TestGround(t *testing.T) {
	a := NewAtom("G", Var("x"), IntTerm(7), Var("y"))
	b := Binding{"x": Int(1), "y": Int(2)}
	g, err := a.Ground(b)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(NewGroundAtom("G", Int(1), Int(7), Int(2))) {
		t.Fatalf("Ground = %v", g)
	}
	if _, err := a.Ground(Binding{"x": Int(1)}); err == nil {
		t.Fatal("Ground succeeded with unbound variable")
	}
}

func TestMatchGround(t *testing.T) {
	a := NewAtom("G", Var("x"), Var("y"), Var("x"))
	b := Binding{}
	added, ok := a.MatchGround("G", []Const{Int(1), Int(2), Int(1)}, b)
	if !ok {
		t.Fatal("match failed")
	}
	if b["x"] != Int(1) || b["y"] != Int(2) {
		t.Fatalf("binding wrong: %v", b)
	}
	if len(added) != 2 {
		t.Fatalf("added = %v", added)
	}

	// Repeated variable conflicts must fail and leave the binding unchanged.
	b2 := Binding{"z": Int(9)}
	if _, ok := a.MatchGround("G", []Const{Int(1), Int(2), Int(3)}, b2); ok {
		t.Fatal("match succeeded with conflicting repeated variable")
	}
	if len(b2) != 1 || b2["z"] != Int(9) {
		t.Fatalf("failed match mutated binding: %v", b2)
	}

	// Existing bindings are respected.
	b3 := Binding{"x": Int(5)}
	if _, ok := a.MatchGround("G", []Const{Int(1), Int(2), Int(1)}, b3); ok {
		t.Fatal("match ignored pre-existing binding")
	}
	if _, ok := a.MatchGround("G", []Const{Int(5), Int(2), Int(5)}, b3); !ok {
		t.Fatal("match failed with compatible pre-existing binding")
	}

	// Constants in the pattern must match exactly.
	c := NewAtom("G", IntTerm(4), Var("y"))
	if _, ok := c.MatchGround("G", []Const{Int(4), Int(8)}, Binding{}); !ok {
		t.Fatal("constant pattern failed to match")
	}
	if _, ok := c.MatchGround("G", []Const{Int(5), Int(8)}, Binding{}); ok {
		t.Fatal("constant pattern matched wrong constant")
	}

	// Predicate and arity mismatches.
	if _, ok := a.MatchGround("H", []Const{Int(1), Int(2), Int(1)}, Binding{}); ok {
		t.Fatal("matched wrong predicate")
	}
	if _, ok := a.MatchGround("G", []Const{Int(1), Int(2)}, Binding{}); ok {
		t.Fatal("matched wrong arity")
	}
}

func TestUnify(t *testing.T) {
	head := NewAtom("G", Var("x"), Var("z"), Var("z"))
	g := NewGroundAtom("G", Int(1), Int(2), Int(2))
	b, ok := head.Unify(g)
	if !ok || b["x"] != Int(1) || b["z"] != Int(2) {
		t.Fatalf("Unify = %v, %v", b, ok)
	}
	// Repeated head variable against distinct constants fails: this is the
	// case the Fig. 3 procedure prunes as an impossible combination.
	if _, ok := head.Unify(NewGroundAtom("G", Int(1), Int(2), Int(3))); ok {
		t.Fatal("unified repeated variable with distinct constants")
	}
}

func TestGroundAtomKey(t *testing.T) {
	a := NewGroundAtom("G", Int(1), Int(2))
	b := NewGroundAtom("G", Int(1), Int(2))
	c := NewGroundAtom("G", Int(1), Int(3))
	d := NewGroundAtom("H", Int(1), Int(2))
	if a.Key() != b.Key() {
		t.Fatal("equal atoms have different keys")
	}
	if a.Key() == c.Key() || a.Key() == d.Key() {
		t.Fatal("distinct atoms share a key")
	}
	// Negative constants and generated constants must key distinctly too.
	e := NewGroundAtom("G", Int(-1), NullConst(0))
	f := NewGroundAtom("G", Int(-1), NullConst(1))
	if e.Key() == f.Key() {
		t.Fatal("distinct nulls share a key")
	}
}

func TestVarsOfAtomsAndConsts(t *testing.T) {
	atoms := []Atom{
		NewAtom("A", Var("x"), Var("y")),
		NewAtom("B", Var("y"), IntTerm(3), Var("w")),
	}
	want := []string{"x", "y", "w"}
	if got := VarsOfAtoms(atoms); !reflect.DeepEqual(got, want) {
		t.Fatalf("VarsOfAtoms = %v", got)
	}
	set := make(map[Const]bool)
	ConstsOfAtoms(atoms, set)
	if len(set) != 1 || !set[Int(3)] {
		t.Fatalf("ConstsOfAtoms = %v", set)
	}
}

func TestRenameAtom(t *testing.T) {
	a := NewAtom("A", Var("x"), IntTerm(2), Var("y"))
	got := a.Rename(func(v string) string { return v + "'" })
	want := NewAtom("A", Var("x'"), IntTerm(2), Var("y'"))
	if !got.Equal(want) {
		t.Fatalf("Rename = %v", got)
	}
}

func TestGroundAtomsConjunction(t *testing.T) {
	atoms := []Atom{NewAtom("A", Var("x")), NewAtom("B", Var("x"), Var("y"))}
	b := Binding{"x": Int(1), "y": Int(2)}
	gs, err := GroundAtoms(atoms, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 2 || !gs[1].Equal(NewGroundAtom("B", Int(1), Int(2))) {
		t.Fatalf("GroundAtoms = %v", gs)
	}
	if _, err := GroundAtoms(atoms, Binding{"x": Int(1)}); err == nil {
		t.Fatal("GroundAtoms succeeded with unbound variable")
	}
}

func TestFormatWithSymbols(t *testing.T) {
	tab := NewSymbolTable()
	ann := tab.Intern("ann")
	a := NewAtom("Person", Con(ann), Var("x"))
	if got := a.Format(tab); got != `Person("ann", x)` {
		t.Fatalf("Format = %q", got)
	}
	g := NewGroundAtom("Person", ann)
	if got := g.Format(tab); got != `Person("ann")` {
		t.Fatalf("Format = %q", got)
	}
	if got := g.Atom(); !got.IsGround() || got.Args[0].Val != ann {
		t.Fatalf("Atom() = %v", got)
	}
}
