package ast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func genTGD(rng *rand.Rand) TGD {
	n := 1 + rng.Intn(2)
	m := 1 + rng.Intn(2)
	lhs := make([]Atom, n)
	rhs := make([]Atom, m)
	for i := range lhs {
		lhs[i] = genAtom(rng)
	}
	for i := range rhs {
		rhs[i] = genAtom(rng)
	}
	return TGD{Lhs: lhs, Rhs: rhs}
}

func TestQuickTGDQuantifierPartition(t *testing.T) {
	// Universal and existential variables partition the tgd's variables:
	// disjoint, and together covering every variable.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := genTGD(rng)
		univ := map[string]bool{}
		for _, v := range tau.UniversalVars() {
			univ[v] = true
		}
		for _, v := range tau.ExistentialVars() {
			if univ[v] {
				return false // overlap
			}
		}
		all := map[string]bool{}
		for _, v := range VarsOfAtoms(append(append([]Atom{}, tau.Lhs...), tau.Rhs...)) {
			all[v] = true
		}
		covered := len(tau.UniversalVars()) + len(tau.ExistentialVars())
		return covered == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTGDFullIffNoExistentials(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := genTGD(rng)
		return tau.IsFull() == (len(tau.ExistentialVars()) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickTGDRenameCloneStable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tau := genTGD(rng)
		c := tau.Clone()
		if !tau.Equal(c) {
			return false
		}
		// Rename with an invertible function round-trips.
		enc := tau.Rename(func(v string) string { return v + "#" })
		dec := enc.Rename(func(v string) string { return v[:len(v)-1] })
		return dec.Equal(tau)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
