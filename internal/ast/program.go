package ast

import (
	"fmt"
	"sort"
	"strings"
)

// Program is a set of Datalog rules (Section II). The order of rules is kept
// for deterministic iteration but carries no semantics.
type Program struct {
	Rules []Rule
}

// NewProgram builds a program from rules.
func NewProgram(rules ...Rule) *Program {
	return &Program{Rules: rules}
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	rules := make([]Rule, len(p.Rules))
	for i, r := range p.Rules {
		rules[i] = r.Clone()
	}
	return &Program{Rules: rules}
}

// Equal reports whether two programs have identical rule lists.
func (p *Program) Equal(q *Program) bool {
	if len(p.Rules) != len(q.Rules) {
		return false
	}
	for i := range p.Rules {
		if !p.Rules[i].Equal(q.Rules[i]) {
			return false
		}
	}
	return true
}

// Validate checks every rule and the consistency of predicate arities across
// the whole program (a predicate is a relation scheme and has one arity).
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a Atom, where string) error {
		if n, ok := arity[a.Pred]; ok {
			if n != a.Arity() {
				return fmt.Errorf("ast: predicate %s used with arities %d and %d (%s)", a.Pred, n, a.Arity(), where)
			}
		} else {
			arity[a.Pred] = a.Arity()
		}
		return nil
	}
	for i, r := range p.Rules {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("rule %d: %w", i, err)
		}
		where := fmt.Sprintf("rule %d", i)
		if err := check(r.Head, where); err != nil {
			return err
		}
		for _, a := range r.Body {
			if err := check(a, where); err != nil {
				return err
			}
		}
		for _, a := range r.NegBody {
			if err := check(a, where); err != nil {
				return err
			}
		}
	}
	return nil
}

// HasNegation reports whether any rule uses the stratified-negation
// extension.
func (p *Program) HasNegation() bool {
	for _, r := range p.Rules {
		if r.HasNegation() {
			return true
		}
	}
	return false
}

// IDBPredicates returns the intentional predicates: those appearing as the
// head of some rule (Section III).
func (p *Program) IDBPredicates() map[string]bool {
	idb := make(map[string]bool)
	for _, r := range p.Rules {
		idb[r.Head.Pred] = true
	}
	return idb
}

// EDBPredicates returns the extensional predicates: those appearing only in
// rule bodies (Section III).
func (p *Program) EDBPredicates() map[string]bool {
	idb := p.IDBPredicates()
	edb := make(map[string]bool)
	for _, r := range p.Rules {
		for _, a := range r.Body {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
		for _, a := range r.NegBody {
			if !idb[a.Pred] {
				edb[a.Pred] = true
			}
		}
	}
	return edb
}

// Predicates returns every predicate of the program with its arity, in
// sorted order.
func (p *Program) Predicates() []PredicateSig {
	arity := make(map[string]int)
	add := func(a Atom) { arity[a.Pred] = a.Arity() }
	for _, r := range p.Rules {
		add(r.Head)
		for _, a := range r.Body {
			add(a)
		}
		for _, a := range r.NegBody {
			add(a)
		}
	}
	sigs := make([]PredicateSig, 0, len(arity))
	for name, n := range arity {
		sigs = append(sigs, PredicateSig{Name: name, Arity: n})
	}
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].Name < sigs[j].Name })
	return sigs
}

// PredicateSig names a predicate together with its arity.
type PredicateSig struct {
	Name  string
	Arity int
}

// WithoutRule returns a copy of the program with rule i removed; it is the
// deletion step of the Fig. 2 minimization algorithm.
func (p *Program) WithoutRule(i int) *Program {
	rules := make([]Rule, 0, len(p.Rules)-1)
	for j, r := range p.Rules {
		if j != i {
			rules = append(rules, r.Clone())
		}
	}
	return &Program{Rules: rules}
}

// ReplaceRule returns a copy of the program with rule i replaced by r.
func (p *Program) ReplaceRule(i int, r Rule) *Program {
	out := p.Clone()
	out.Rules[i] = r.Clone()
	return out
}

// InitRules returns the initialization rules of the program: rules whose
// body mentions only extensional predicates (Section X). The returned
// program Pⁱ is non-recursive by construction.
func (p *Program) InitRules() *Program {
	idb := p.IDBPredicates()
	var rules []Rule
	for _, r := range p.Rules {
		init := true
		for _, a := range r.Body {
			if idb[a.Pred] {
				init = false
				break
			}
		}
		for _, a := range r.NegBody {
			if idb[a.Pred] {
				init = false
				break
			}
		}
		if init {
			rules = append(rules, r.Clone())
		}
	}
	return &Program{Rules: rules}
}

// Consts returns the set of constants appearing anywhere in the program.
func (p *Program) Consts() map[Const]bool {
	set := make(map[Const]bool)
	for _, r := range p.Rules {
		ConstsOfAtoms([]Atom{r.Head}, set)
		ConstsOfAtoms(r.Body, set)
		ConstsOfAtoms(r.NegBody, set)
	}
	return set
}

// BodyAtomCount returns the total number of positive body atoms across all
// rules — the join count the paper's optimization reduces.
func (p *Program) BodyAtomCount() int {
	n := 0
	for _, r := range p.Rules {
		n += len(r.Body)
	}
	return n
}

// TrivialRules returns, for each intentional predicate, the trivial rule
// Q(x1,…,xn) :- Q(x1,…,xn) that Section IX augments programs with when
// testing non-recursive preservation of tgds.
func (p *Program) TrivialRules() []Rule {
	idb := p.IDBPredicates()
	arities := make(map[string]int)
	for _, r := range p.Rules {
		if idb[r.Head.Pred] {
			arities[r.Head.Pred] = r.Head.Arity()
		}
	}
	names := make([]string, 0, len(arities))
	for name := range arities {
		names = append(names, name)
	}
	sort.Strings(names)
	rules := make([]Rule, 0, len(names))
	for _, name := range names {
		n := arities[name]
		args := make([]Term, n)
		for i := range args {
			args[i] = Var(fmt.Sprintf("x%d", i+1))
		}
		at := Atom{Pred: name, Args: args}
		rules = append(rules, Rule{Head: at.Clone(), Body: []Atom{at}})
	}
	return rules
}

// String renders the program one rule per line.
func (p *Program) String() string { return p.Format(nil) }

// Format renders the program, resolving symbolic constants through tab.
func (p *Program) Format(tab *SymbolTable) string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.Format(tab))
		sb.WriteByte('\n')
	}
	return sb.String()
}
