package ast

import (
	"reflect"
	"strings"
	"testing"
)

func TestProgramIDBEDBPredicates(t *testing.T) {
	p := tcProgram()
	idb := p.IDBPredicates()
	if !reflect.DeepEqual(idb, map[string]bool{"G": true}) {
		t.Fatalf("IDB = %v", idb)
	}
	edb := p.EDBPredicates()
	if !reflect.DeepEqual(edb, map[string]bool{"A": true}) {
		t.Fatalf("EDB = %v", edb)
	}
}

func TestProgramValidateArity(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("G", Var("x")), NewAtom("A", Var("x"))),
		NewRule(NewAtom("G", Var("x"), Var("y")), NewAtom("A", Var("x"), Var("y"))),
	)
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "arities") {
		t.Fatalf("inconsistent arity not caught: %v", err)
	}
	if err := tcProgram().Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
}

func TestProgramPredicates(t *testing.T) {
	p := tcProgram()
	sigs := p.Predicates()
	want := []PredicateSig{{Name: "A", Arity: 2}, {Name: "G", Arity: 2}}
	if !reflect.DeepEqual(sigs, want) {
		t.Fatalf("Predicates = %v", sigs)
	}
}

func TestWithoutRuleAndReplaceRule(t *testing.T) {
	p := tcProgram()
	q := p.WithoutRule(0)
	if len(q.Rules) != 1 || q.Rules[0].Body[0].Pred != "G" {
		t.Fatalf("WithoutRule = %v", q)
	}
	if len(p.Rules) != 2 {
		t.Fatal("WithoutRule mutated receiver")
	}
	r := NewRule(atomGxz(), NewAtom("B", Var("x"), Var("z")))
	p2 := p.ReplaceRule(0, r)
	if p2.Rules[0].Body[0].Pred != "B" || p.Rules[0].Body[0].Pred != "A" {
		t.Fatal("ReplaceRule wrong or mutated receiver")
	}
}

func TestInitRules(t *testing.T) {
	// Example 17's program: only the first rule is an initialization rule.
	p := tcProgram()
	init := p.InitRules()
	if len(init.Rules) != 1 {
		t.Fatalf("InitRules = %v", init)
	}
	if init.Rules[0].Body[0].Pred != "A" {
		t.Fatalf("wrong init rule: %v", init.Rules[0])
	}
}

func TestTrivialRules(t *testing.T) {
	p := tcProgram()
	trs := p.TrivialRules()
	if len(trs) != 1 {
		t.Fatalf("TrivialRules = %v", trs)
	}
	r := trs[0]
	if r.Head.Pred != "G" || len(r.Body) != 1 || !r.Head.Equal(r.Body[0]) {
		t.Fatalf("trivial rule malformed: %v", r)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("trivial rule invalid: %v", err)
	}
}

func TestProgramCloneAndEqual(t *testing.T) {
	p := tcProgram()
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal")
	}
	q.Rules[0].Body[0].Args[0] = Var("q")
	if p.Equal(q) {
		t.Fatal("mutated clone still equal")
	}
	if p.Rules[0].Body[0].Args[0].Name != "x" {
		t.Fatal("clone shares storage")
	}
}

func TestProgramConstsAndBodyAtomCount(t *testing.T) {
	p := NewProgram(
		NewRule(NewAtom("G", Var("x"), IntTerm(3)), NewAtom("A", Var("x"), IntTerm(10))),
		NewRule(atomGxz(), NewAtom("G", Var("x"), Var("y")), NewAtom("G", Var("y"), Var("z"))),
	)
	consts := p.Consts()
	if len(consts) != 2 || !consts[Int(3)] || !consts[Int(10)] {
		t.Fatalf("Consts = %v", consts)
	}
	if got := p.BodyAtomCount(); got != 3 {
		t.Fatalf("BodyAtomCount = %d", got)
	}
}

func TestProgramFormat(t *testing.T) {
	p := tcProgram()
	want := "G(x, z) :- A(x, z).\nG(x, z) :- G(x, y), G(y, z).\n"
	if got := p.String(); got != want {
		t.Fatalf("String = %q", got)
	}
}

func TestHasNegation(t *testing.T) {
	p := tcProgram()
	if p.HasNegation() {
		t.Fatal("pure program reports negation")
	}
	p.Rules[0].NegBody = []Atom{NewAtom("B", Var("x"))}
	if !p.HasNegation() {
		t.Fatal("negation not detected")
	}
}
