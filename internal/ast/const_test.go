package ast

import (
	"testing"
	"testing/quick"
)

func TestConstRangesDisjoint(t *testing.T) {
	cases := []struct {
		name   string
		c      Const
		isInt  bool
		isSym  bool
		isFro  bool
		isNull bool
	}{
		{"zero", Int(0), true, false, false, false},
		{"positive", Int(12345), true, false, false, false},
		{"negative", Int(-99), true, false, false, false},
		{"maxInt", Int(int64(intLimit) - 1), true, false, false, false},
		{"minInt", Int(-int64(intLimit) + 1), true, false, false, false},
		{"frozen0", FrozenConst(0), false, false, true, false},
		{"frozenBig", FrozenConst(1 << 20), false, false, true, false},
		{"null0", NullConst(0), false, false, false, true},
		{"nullBig", NullConst(1 << 20), false, false, false, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsInt(tc.c); got != tc.isInt {
				t.Errorf("IsInt(%d) = %v, want %v", tc.c, got, tc.isInt)
			}
			if got := IsSym(tc.c); got != tc.isSym {
				t.Errorf("IsSym(%d) = %v, want %v", tc.c, got, tc.isSym)
			}
			if got := IsFrozen(tc.c); got != tc.isFro {
				t.Errorf("IsFrozen(%d) = %v, want %v", tc.c, got, tc.isFro)
			}
			if got := IsNull(tc.c); got != tc.isNull {
				t.Errorf("IsNull(%d) = %v, want %v", tc.c, got, tc.isNull)
			}
		})
	}
}

func TestIntPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int(1<<40) did not panic")
		}
	}()
	Int(int64(intLimit))
}

func TestExactlyOneKindProperty(t *testing.T) {
	// Every Const value in the representable ranges belongs to exactly one
	// kind.
	f := func(raw int64) bool {
		c := Const(raw)
		n := 0
		for _, ok := range []bool{IsInt(c), IsSym(c), IsFrozen(c), IsNull(c)} {
			if ok {
				n++
			}
		}
		if c <= -intLimit {
			return n == 0 // below the integer range: no kind
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrozenAndNullIndexRoundTrip(t *testing.T) {
	for _, i := range []int{0, 1, 7, 4095, 1 << 22} {
		if got := FrozenIndex(FrozenConst(i)); got != i {
			t.Errorf("FrozenIndex(FrozenConst(%d)) = %d", i, got)
		}
		if got := NullIndex(NullConst(i)); got != i {
			t.Errorf("NullIndex(NullConst(%d)) = %d", i, got)
		}
	}
}

func TestConstGen(t *testing.T) {
	g := NewFrozenGen(0)
	a, b, c := g.Fresh(), g.Fresh(), g.Fresh()
	if a == b || b == c || a == c {
		t.Fatalf("Fresh returned duplicates: %d %d %d", a, b, c)
	}
	if !IsFrozen(a) || !IsFrozen(c) {
		t.Fatal("frozen generator produced non-frozen constants")
	}
	if g.Issued() != 3 {
		t.Fatalf("Issued = %d, want 3", g.Issued())
	}
	ng := NewNullGen(5)
	n := ng.Fresh()
	if !IsNull(n) || NullIndex(n) != 5 {
		t.Fatalf("null generator started at wrong index: %v", n)
	}
}

func TestSymbolTable(t *testing.T) {
	tab := NewSymbolTable()
	ann := tab.Intern("ann")
	bob := tab.Intern("bob")
	if ann == bob {
		t.Fatal("distinct names interned to same constant")
	}
	if again := tab.Intern("ann"); again != ann {
		t.Fatal("re-interning a name changed its constant")
	}
	if !IsSym(ann) {
		t.Fatal("interned constant is not symbolic")
	}
	if name, ok := tab.Name(ann); !ok || name != "ann" {
		t.Fatalf("Name(ann) = %q, %v", name, ok)
	}
	if _, ok := tab.Name(Int(3)); ok {
		t.Fatal("Name succeeded on a plain integer")
	}
	if c, ok := tab.Lookup("bob"); !ok || c != bob {
		t.Fatal("Lookup(bob) failed")
	}
	if _, ok := tab.Lookup("carol"); ok {
		t.Fatal("Lookup found a never-interned name")
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

func TestFormatConst(t *testing.T) {
	tab := NewSymbolTable()
	ann := tab.Intern("ann")
	cases := []struct {
		c    Const
		tab  *SymbolTable
		want string
	}{
		{Int(42), nil, "42"},
		{Int(-7), nil, "-7"},
		{ann, tab, `"ann"`},
		{ann, nil, `"sym0"`},
		{FrozenConst(3), nil, "θ3"},
		{NullConst(12), nil, "δ12"},
	}
	for _, tc := range cases {
		if got := FormatConst(tc.c, tc.tab); got != tc.want {
			t.Errorf("FormatConst(%d) = %q, want %q", tc.c, got, tc.want)
		}
	}
}
