// Package ast defines the abstract syntax of Datalog programs as used in
// Sagiv's "Optimizing Datalog Programs" (PODS 1987): terms, atoms, rules,
// programs, and tuple-generating dependencies (tgds), together with the
// substitution, renaming, freezing, and validation machinery every other
// package builds on.
//
// Following Section II of the paper, constants are integers, every rule is
// range-restricted (each head variable occurs in the body), and function
// symbols are not permitted. On top of plain integers the package reserves
// disjoint ranges of the Const space for three kinds of generated values:
//
//   - symbolic constants interned through a SymbolTable (so programs over
//     named individuals such as Person("ann") still satisfy the paper's
//     "constants are integers" convention internally),
//   - frozen constants, used by the chase of Section VI to instantiate the
//     variables of a rule to "distinct constants that are not already in r",
//   - labeled nulls δᵢ, used when applying embedded tgds (Section VIII).
package ast

import (
	"fmt"
	"strconv"
)

// Const is a constant value. Plain integers occupy the low range; interned
// symbols, frozen constants and labeled nulls occupy disjoint high ranges so
// that values of different kinds can never collide. The zero value is the
// integer 0.
type Const int64

// Range boundaries for the four kinds of constants. Plain integers must fall
// strictly within (-intLimit, +intLimit); the three generated ranges are
// positive and pairwise disjoint.
const (
	intLimit   Const = 1 << 40
	symBase    Const = 1 << 40 // symbolic constants: [symBase, symBase+2^40)
	frozenBase Const = 1 << 45 // frozen chase constants: [frozenBase, frozenBase+2^40)
	nullBase   Const = 1 << 50 // labeled nulls: [nullBase, ...)
)

// Int returns the Const representing the plain integer n. It panics if n is
// outside the representable integer range; the paper's programs use small
// integers, so hitting the limit indicates a misuse of the generated ranges.
func Int(n int64) Const {
	if n <= -int64(intLimit) || n >= int64(intLimit) {
		panic(fmt.Sprintf("ast: integer constant %d out of range", n))
	}
	return Const(n)
}

// IsInt reports whether c is a plain integer constant.
func IsInt(c Const) bool { return c > -intLimit && c < intLimit }

// IsSym reports whether c is an interned symbolic constant.
func IsSym(c Const) bool { return c >= symBase && c < frozenBase }

// IsFrozen reports whether c is a frozen constant produced by freezing the
// variables of a rule for a chase (Section VI of the paper).
func IsFrozen(c Const) bool { return c >= frozenBase && c < nullBase }

// IsNull reports whether c is a labeled null δᵢ introduced by the
// application of an embedded tgd (Section VIII of the paper).
func IsNull(c Const) bool { return c >= nullBase }

// FrozenConst returns the i-th frozen constant. Frozen constants stand for
// the "distinct constants not already in r" of Corollary 2.
func FrozenConst(i int) Const { return frozenBase + Const(i) }

// NullConst returns the i-th labeled null δᵢ.
func NullConst(i int) Const { return nullBase + Const(i) }

// FrozenIndex returns i such that c == FrozenConst(i); it panics if c is not
// frozen.
func FrozenIndex(c Const) int {
	if !IsFrozen(c) {
		panic("ast: FrozenIndex of non-frozen constant")
	}
	return int(c - frozenBase)
}

// NullIndex returns i such that c == NullConst(i); it panics if c is not a
// null.
func NullIndex(c Const) int {
	if !IsNull(c) {
		panic("ast: NullIndex of non-null constant")
	}
	return int(c - nullBase)
}

// ConstGen hands out fresh constants from one of the generated ranges. The
// zero value is not useful; use NewFrozenGen or NewNullGen.
type ConstGen struct {
	base Const
	next Const
}

// NewFrozenGen returns a generator of fresh frozen constants starting at
// index start.
func NewFrozenGen(start int) *ConstGen {
	return &ConstGen{base: frozenBase, next: frozenBase + Const(start)}
}

// NewNullGen returns a generator of fresh labeled nulls starting at index
// start.
func NewNullGen(start int) *ConstGen {
	return &ConstGen{base: nullBase, next: nullBase + Const(start)}
}

// Fresh returns the next unused constant from the generator's range.
func (g *ConstGen) Fresh() Const {
	c := g.next
	g.next++
	return c
}

// Issued reports how many constants the generator has handed out.
func (g *ConstGen) Issued() int { return int(g.next - g.base) }

// SymbolTable interns symbolic constant names (and remembers them for
// printing). It is not safe for concurrent mutation; share a frozen table or
// guard it externally if needed.
type SymbolTable struct {
	byName map[string]Const
	names  []string
}

// NewSymbolTable returns an empty symbol table.
func NewSymbolTable() *SymbolTable {
	return &SymbolTable{byName: make(map[string]Const)}
}

// Intern returns the Const for name, allocating a new symbolic constant on
// first use.
func (t *SymbolTable) Intern(name string) Const {
	if c, ok := t.byName[name]; ok {
		return c
	}
	c := symBase + Const(len(t.names))
	t.byName[name] = c
	t.names = append(t.names, name)
	return c
}

// Lookup returns the Const for name if it has been interned.
func (t *SymbolTable) Lookup(name string) (Const, bool) {
	c, ok := t.byName[name]
	return c, ok
}

// Name returns the original spelling of an interned symbolic constant, or
// false if c was not produced by this table.
func (t *SymbolTable) Name(c Const) (string, bool) {
	if !IsSym(c) {
		return "", false
	}
	i := int(c - symBase)
	if i >= len(t.names) {
		return "", false
	}
	return t.names[i], true
}

// Len reports how many symbols have been interned.
func (t *SymbolTable) Len() int { return len(t.names) }

// FormatConst renders c for display. Plain integers print as themselves;
// symbolic constants print their interned name in quotes (so the output
// re-parses as the same constant; tab may be nil, in which case a
// positional placeholder is used); frozen constants print as θ‹i›
// matching the paper's x₀,y₀,… convention; nulls print as δ‹i› as in
// Section VIII.
func FormatConst(c Const, tab *SymbolTable) string {
	switch {
	case IsInt(c):
		return strconv.FormatInt(int64(c), 10)
	case IsSym(c):
		if tab != nil {
			if name, ok := tab.Name(c); ok {
				return `"` + name + `"`
			}
		}
		return `"sym` + strconv.Itoa(int(c-symBase)) + `"`
	case IsFrozen(c):
		return "θ" + strconv.Itoa(FrozenIndex(c))
	default:
		return "δ" + strconv.Itoa(NullIndex(c))
	}
}
