package ast

import (
	"fmt"
	"sort"
)

// Term is an argument of an atom: either a variable or a constant. Function
// symbols are not permitted in Datalog (Section II of the paper).
type Term struct {
	// IsVar distinguishes the two kinds of term.
	IsVar bool
	// Name is the variable's name when IsVar is true.
	Name string
	// Val is the constant's value when IsVar is false.
	Val Const
}

// Var returns a variable term with the given name.
func Var(name string) Term { return Term{IsVar: true, Name: name} }

// Con returns a constant term wrapping c.
func Con(c Const) Term { return Term{Val: c} }

// IntTerm returns a constant term holding the plain integer n.
func IntTerm(n int64) Term { return Con(Int(n)) }

// Equal reports whether two terms are identical.
func (t Term) Equal(u Term) bool {
	if t.IsVar != u.IsVar {
		return false
	}
	if t.IsVar {
		return t.Name == u.Name
	}
	return t.Val == u.Val
}

// String renders the term without a symbol table; see Formatter for
// table-aware printing.
func (t Term) String() string {
	if t.IsVar {
		return t.Name
	}
	return FormatConst(t.Val, nil)
}

// Subst maps variable names to replacement terms. Applying a substitution is
// simultaneous: replacements are not themselves rewritten.
type Subst map[string]Term

// Binding maps variable names to constants; it is the ground special case of
// Subst used when instantiating rules (Section III) and freezing rule bodies
// (Section VI).
type Binding map[string]Const

// Subst converts the binding to a general substitution.
func (b Binding) Subst() Subst {
	s := make(Subst, len(b))
	for v, c := range b {
		s[v] = Con(c)
	}
	return s
}

// Clone returns a copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for v, k := range b {
		c[v] = k
	}
	return c
}

// Apply rewrites the term under the substitution. Variables without an entry
// are left untouched.
func (t Term) Apply(s Subst) Term {
	if !t.IsVar {
		return t
	}
	if u, ok := s[t.Name]; ok {
		return u
	}
	return t
}

// SortedVars returns the keys of a variable set in sorted order; it is a
// convenience for deterministic iteration in tests and printers.
func SortedVars(set map[string]bool) []string {
	vars := make([]string, 0, len(set))
	for v := range set {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	return vars
}

// GroundAtom is an atom whose arguments are all constants: a fact of the
// database (Section III calls these the "known facts").
type GroundAtom struct {
	Pred string
	Args []Const
}

// NewGroundAtom builds a ground atom.
func NewGroundAtom(pred string, args ...Const) GroundAtom {
	return GroundAtom{Pred: pred, Args: args}
}

// Equal reports whether two ground atoms are identical.
func (g GroundAtom) Equal(h GroundAtom) bool {
	if g.Pred != h.Pred || len(g.Args) != len(h.Args) {
		return false
	}
	for i := range g.Args {
		if g.Args[i] != h.Args[i] {
			return false
		}
	}
	return true
}

// Atom converts the ground atom back into a (variable-free) Atom.
func (g GroundAtom) Atom() Atom {
	args := make([]Term, len(g.Args))
	for i, c := range g.Args {
		args[i] = Con(c)
	}
	return Atom{Pred: g.Pred, Args: args}
}

// String renders the ground atom without a symbol table.
func (g GroundAtom) String() string {
	return g.Format(nil)
}

// Format renders the ground atom, resolving symbolic constants through tab
// when provided.
func (g GroundAtom) Format(tab *SymbolTable) string {
	s := g.Pred + "("
	for i, c := range g.Args {
		if i > 0 {
			s += ", "
		}
		s += FormatConst(c, tab)
	}
	return s + ")"
}

// Key returns a compact string key identifying the ground atom; two ground
// atoms have the same key iff they are equal. It is suitable for use as a
// map key when deduplicating facts.
func (g GroundAtom) Key() string {
	buf := make([]byte, 0, len(g.Pred)+1+8*len(g.Args))
	buf = append(buf, g.Pred...)
	buf = append(buf, 0)
	for _, c := range g.Args {
		v := uint64(c)
		buf = append(buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	}
	return string(buf)
}

func init() {
	// Guard the representation invariants the Const ranges rely on.
	if !IsSym(symBase) || !IsFrozen(frozenBase) || !IsNull(nullBase) {
		panic(fmt.Sprintf("ast: inconsistent constant ranges"))
	}
}
