package ast

// Unifier computes most general unifiers of function-free terms and atoms.
// Bindings map variable names to terms, with chains resolved on lookup;
// there is no occurs-check because Datalog has no function symbols. The
// zero value is not useful; use NewUnifier.
//
// Callers that unify atoms from different rules must rename the rules apart
// first — the unifier treats equal variable names as the same variable.
type Unifier struct {
	s Subst
}

// NewUnifier returns an empty unifier.
func NewUnifier() *Unifier {
	return &Unifier{s: Subst{}}
}

// Resolve follows variable bindings until reaching a constant or an unbound
// variable.
func (u *Unifier) Resolve(t Term) Term {
	for t.IsVar {
		next, ok := u.s[t.Name]
		if !ok {
			return t
		}
		t = next
	}
	return t
}

// UnifyTerms attempts to unify two terms, extending the substitution. On
// failure the unifier may hold a partially extended substitution; callers
// treat failure as fatal for the whole unification problem.
func (u *Unifier) UnifyTerms(a, b Term) bool {
	a, b = u.Resolve(a), u.Resolve(b)
	switch {
	case a.IsVar && b.IsVar:
		if a.Name != b.Name {
			u.s[a.Name] = b
		}
		return true
	case a.IsVar:
		u.s[a.Name] = b
		return true
	case b.IsVar:
		u.s[b.Name] = a
		return true
	default:
		return a.Val == b.Val
	}
}

// UnifyAtoms attempts to unify two atoms position-wise.
func (u *Unifier) UnifyAtoms(a, b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !u.UnifyTerms(a.Args[i], b.Args[i]) {
			return false
		}
	}
	return true
}

// Apply rewrites an atom under the current substitution, fully resolving
// variable chains.
func (u *Unifier) Apply(a Atom) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = u.Resolve(t)
	}
	return Atom{Pred: a.Pred, Args: args}
}

// ApplyAll rewrites a conjunction under the current substitution.
func (u *Unifier) ApplyAll(atoms []Atom) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = u.Apply(a)
	}
	return out
}
