package ast

import (
	"fmt"
	"strings"
)

// Atom is an atomic formula: a predicate applied to variables and constants
// (Section II of the paper). In traditional database terminology the
// predicate is a relation scheme. Pos is the source position of the
// predicate name when the atom was parsed from text (zero = unknown); it is
// carried through Clone/Apply/Rename but ignored by Equal and by the
// canonical forms.
type Atom struct {
	Pred string
	Args []Term
	Pos  Pos
}

// NewAtom builds an atom from a predicate name and argument terms.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// Arity returns the number of argument positions.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom has no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.IsVar {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
}

// Equal reports whether two atoms are syntactically identical.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(b.Args[i]) {
			return false
		}
	}
	return true
}

// CollectVars adds the atom's variable names to set.
func (a Atom) CollectVars(set map[string]bool) {
	for _, t := range a.Args {
		if t.IsVar {
			set[t.Name] = true
		}
	}
}

// Vars returns the atom's variables in order of first occurrence.
func (a Atom) Vars() []string {
	var vars []string
	seen := make(map[string]bool)
	for _, t := range a.Args {
		if t.IsVar && !seen[t.Name] {
			seen[t.Name] = true
			vars = append(vars, t.Name)
		}
	}
	return vars
}

// HasVar reports whether the variable name occurs in the atom.
func (a Atom) HasVar(name string) bool {
	for _, t := range a.Args {
		if t.IsVar && t.Name == name {
			return true
		}
	}
	return false
}

// Apply rewrites the atom under a substitution.
func (a Atom) Apply(s Subst) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		args[i] = t.Apply(s)
	}
	return Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
}

// Rename rewrites every variable name through f.
func (a Atom) Rename(f func(string) string) Atom {
	args := make([]Term, len(a.Args))
	for i, t := range a.Args {
		if t.IsVar {
			args[i] = Var(f(t.Name))
		} else {
			args[i] = t
		}
	}
	return Atom{Pred: a.Pred, Args: args, Pos: a.Pos}
}

// Ground instantiates the atom under a binding; every variable of the atom
// must be bound. This is the rule-instantiation step of Section III.
func (a Atom) Ground(b Binding) (GroundAtom, error) {
	args := make([]Const, len(a.Args))
	for i, t := range a.Args {
		if !t.IsVar {
			args[i] = t.Val
			continue
		}
		c, ok := b[t.Name]
		if !ok {
			return GroundAtom{}, fmt.Errorf("ast: variable %s unbound when grounding %s", t.Name, a)
		}
		args[i] = c
	}
	return GroundAtom{Pred: a.Pred, Args: args}, nil
}

// MustGround is Ground but panics on unbound variables; callers use it when
// the binding is known to cover the atom (e.g. after a successful match).
func (a Atom) MustGround(b Binding) GroundAtom {
	g, err := a.Ground(b)
	if err != nil {
		panic(err)
	}
	return g
}

// MatchGround attempts to extend binding b so that the atom, instantiated by
// b, equals the ground atom with the given predicate and arguments. On
// success it reports the variable names newly added to b (so the caller can
// undo the extension when backtracking); on failure b is left unchanged.
func (a Atom) MatchGround(pred string, args []Const, b Binding) (added []string, ok bool) {
	if a.Pred != pred || len(a.Args) != len(args) {
		return nil, false
	}
	for i, t := range a.Args {
		if !t.IsVar {
			if t.Val != args[i] {
				undo(b, added)
				return nil, false
			}
			continue
		}
		if c, bound := b[t.Name]; bound {
			if c != args[i] {
				undo(b, added)
				return nil, false
			}
			continue
		}
		b[t.Name] = args[i]
		added = append(added, t.Name)
	}
	return added, true
}

func undo(b Binding, added []string) {
	for _, v := range added {
		delete(b, v)
	}
}

// Unify attempts to unify the atom with a ground atom: it returns a binding
// of the atom's variables witnessing a.Apply == g, or false when the
// predicate, arity, constants, or repeated variables conflict. It is the
// unification step used by the Fig. 3 preservation procedure when a ground
// atom of an intentional predicate is unified with the head of a rule.
func (a Atom) Unify(g GroundAtom) (Binding, bool) {
	b := make(Binding)
	if _, ok := a.MatchGround(g.Pred, g.Args, b); !ok {
		return nil, false
	}
	return b, true
}

// String renders the atom without a symbol table.
func (a Atom) String() string { return a.Format(nil) }

// Format renders the atom, resolving symbolic constants through tab when
// provided.
func (a Atom) Format(tab *SymbolTable) string {
	var sb strings.Builder
	sb.WriteString(a.Pred)
	sb.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		if t.IsVar {
			sb.WriteString(t.Name)
		} else {
			sb.WriteString(FormatConst(t.Val, tab))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// FormatAtoms renders a conjunction of atoms separated by commas, the
// notation the paper uses for rule bodies.
func FormatAtoms(atoms []Atom, tab *SymbolTable) string {
	parts := make([]string, len(atoms))
	for i, a := range atoms {
		parts[i] = a.Format(tab)
	}
	return strings.Join(parts, ", ")
}

// VarsOfAtoms returns the variables of a conjunction in order of first
// occurrence.
func VarsOfAtoms(atoms []Atom) []string {
	var vars []string
	seen := make(map[string]bool)
	for _, a := range atoms {
		for _, t := range a.Args {
			if t.IsVar && !seen[t.Name] {
				seen[t.Name] = true
				vars = append(vars, t.Name)
			}
		}
	}
	return vars
}

// ConstsOfAtoms adds every constant appearing in the conjunction to set.
func ConstsOfAtoms(atoms []Atom, set map[Const]bool) {
	for _, a := range atoms {
		for _, t := range a.Args {
			if !t.IsVar {
				set[t.Val] = true
			}
		}
	}
}

// ApplyAtoms rewrites each atom of a conjunction under the substitution.
func ApplyAtoms(atoms []Atom, s Subst) []Atom {
	out := make([]Atom, len(atoms))
	for i, a := range atoms {
		out[i] = a.Apply(s)
	}
	return out
}

// GroundAtoms instantiates a conjunction under a binding covering all its
// variables.
func GroundAtoms(atoms []Atom, b Binding) ([]GroundAtom, error) {
	out := make([]GroundAtom, len(atoms))
	for i, a := range atoms {
		g, err := a.Ground(b)
		if err != nil {
			return nil, err
		}
		out[i] = g
	}
	return out, nil
}
