package ast

import (
	"reflect"
	"testing"
)

func TestTermString(t *testing.T) {
	if got := Var("x").String(); got != "x" {
		t.Fatalf("Var String = %q", got)
	}
	if got := IntTerm(-3).String(); got != "-3" {
		t.Fatalf("Const String = %q", got)
	}
	if got := Con(NullConst(2)).String(); got != "δ2" {
		t.Fatalf("null String = %q", got)
	}
}

func TestBindingSubst(t *testing.T) {
	b := Binding{"x": Int(1), "y": Int(2)}
	s := b.Subst()
	if len(s) != 2 || !s["x"].Equal(IntTerm(1)) || !s["y"].Equal(IntTerm(2)) {
		t.Fatalf("Subst = %v", s)
	}
	// The substitution is a copy, not a view.
	s["x"] = IntTerm(9)
	if b["x"] != Int(1) {
		t.Fatal("Subst aliases the binding")
	}
}

func TestSortedVars(t *testing.T) {
	set := map[string]bool{"z": true, "a": true, "m": true}
	if got := SortedVars(set); !reflect.DeepEqual(got, []string{"a", "m", "z"}) {
		t.Fatalf("SortedVars = %v", got)
	}
	if got := SortedVars(nil); len(got) != 0 {
		t.Fatalf("SortedVars(nil) = %v", got)
	}
}

func TestTermApply(t *testing.T) {
	s := Subst{"x": IntTerm(4)}
	if got := Var("x").Apply(s); !got.Equal(IntTerm(4)) {
		t.Fatalf("Apply = %v", got)
	}
	if got := Var("y").Apply(s); !got.Equal(Var("y")) {
		t.Fatalf("unbound Apply = %v", got)
	}
	if got := IntTerm(7).Apply(s); !got.Equal(IntTerm(7)) {
		t.Fatalf("constant Apply = %v", got)
	}
}

func TestTermEqualKinds(t *testing.T) {
	if Var("x").Equal(IntTerm(0)) {
		t.Fatal("variable equal to constant")
	}
	if !Var("x").Equal(Var("x")) || Var("x").Equal(Var("y")) {
		t.Fatal("variable equality wrong")
	}
	if !IntTerm(3).Equal(IntTerm(3)) || IntTerm(3).Equal(IntTerm(4)) {
		t.Fatal("constant equality wrong")
	}
}

func TestUnifierApplyAll(t *testing.T) {
	u := NewUnifier()
	if !u.UnifyAtoms(NewAtom("P", Var("x")), NewAtom("P", IntTerm(5))) {
		t.Fatal("unify failed")
	}
	got := u.ApplyAll([]Atom{NewAtom("Q", Var("x"), Var("y"))})
	if !got[0].Equal(NewAtom("Q", IntTerm(5), Var("y"))) {
		t.Fatalf("ApplyAll = %v", got)
	}
}
