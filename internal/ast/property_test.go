package ast

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genAtom builds a random atom from raw fuzz inputs.
func genAtom(rng *rand.Rand) Atom {
	preds := []string{"A", "B", "G"}
	vars := []string{"x", "y", "z", "w"}
	n := 1 + rng.Intn(3)
	args := make([]Term, n)
	for i := range args {
		if rng.Intn(2) == 0 {
			args[i] = Var(vars[rng.Intn(len(vars))])
		} else {
			args[i] = IntTerm(int64(rng.Intn(5)))
		}
	}
	return Atom{Pred: preds[rng.Intn(len(preds))], Args: args}
}

func TestQuickApplyIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genAtom(rng)
		return a.Apply(Subst{}).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickApplyComposition(t *testing.T) {
	// Applying a ground substitution twice equals applying it once
	// (idempotence of grounding substitutions).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genAtom(rng)
		s := Subst{}
		for _, v := range []string{"x", "y", "z", "w"} {
			if rng.Intn(2) == 0 {
				s[v] = IntTerm(int64(rng.Intn(5)))
			}
		}
		once := a.Apply(s)
		twice := once.Apply(s)
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickRenameRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genAtom(rng)
		enc := a.Rename(func(v string) string { return v + "#" })
		dec := enc.Rename(func(v string) string { return v[:len(v)-1] })
		return dec.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGroundAtomKeyInjective(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() GroundAtom {
			n := 1 + rng.Intn(3)
			args := make([]Const, n)
			for i := range args {
				switch rng.Intn(3) {
				case 0:
					args[i] = Int(int64(rng.Intn(8)) - 4)
				case 1:
					args[i] = FrozenConst(rng.Intn(4))
				default:
					args[i] = NullConst(rng.Intn(4))
				}
			}
			return GroundAtom{Pred: []string{"A", "B"}[rng.Intn(2)], Args: args}
		}
		g1, g2 := mk(), mk()
		return (g1.Key() == g2.Key()) == g1.Equal(g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickMatchGroundSelf(t *testing.T) {
	// An atom instantiated by a binding matches the instantiation, and the
	// match reproduces the binding on the atom's variables.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := genAtom(rng)
		b := Binding{}
		for _, v := range a.Vars() {
			b[v] = Int(int64(rng.Intn(5)))
		}
		g := a.MustGround(b)
		got := Binding{}
		if _, ok := a.MatchGround(g.Pred, g.Args, got); !ok {
			return false
		}
		for _, v := range a.Vars() {
			if got[v] != b[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnifierIdempotent(t *testing.T) {
	// Once two atoms unify, the unified forms are syntactically equal and
	// re-unification is trivial.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := genAtom(rng), genAtom(rng)
		u := NewUnifier()
		if !u.UnifyAtoms(a, b) {
			return true // nothing to check
		}
		ua, ub := u.Apply(a), u.Apply(b)
		if !ua.Equal(ub) {
			return false
		}
		u2 := NewUnifier()
		return u2.UnifyAtoms(ua, ub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestQuickFreezeOneToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Rule{Head: genAtom(rng), Body: []Atom{genAtom(rng), genAtom(rng)}}
		// Force range restriction by making the head share body variables.
		if len(r.Head.Vars()) > 0 && len(VarsOfAtoms(r.Body)) == 0 {
			return true
		}
		gen := NewFrozenGen(0)
		theta := FreezeVars(r.Vars(), gen)
		seen := map[Const]bool{}
		for _, c := range theta {
			if seen[c] || !IsFrozen(c) {
				return false
			}
			seen[c] = true
		}
		return len(theta) == len(r.Vars())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickBindingCloneIndependent(t *testing.T) {
	f := func(vals []uint8) bool {
		b := Binding{}
		for i, v := range vals {
			b[string(rune('a'+i%26))] = Int(int64(v))
		}
		c := b.Clone()
		if !reflect.DeepEqual(b, c) {
			return false
		}
		c["zz"] = Int(99)
		_, leaked := b["zz"]
		return !leaked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
