package ast

import "strconv"

// Pos is a source position: 1-based line and column in the text a node was
// parsed from. The zero value means "unknown"; programmatically built nodes
// carry it, and every consumer must tolerate it. Positions are deliberately
// excluded from Equal, canonical strings and hashes — two rules that differ
// only in where they were written are the same rule.
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether the position identifies a real source location.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col", or "-" for the unknown position.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return strconv.Itoa(p.Line) + ":" + strconv.Itoa(p.Col)
}

// Before reports whether p orders strictly before q, with unknown positions
// ordering after every known one (diagnostics without a location sink to the
// end of sorted listings).
func (p Pos) Before(q Pos) bool {
	if p.IsValid() != q.IsValid() {
		return p.IsValid()
	}
	if p.Line != q.Line {
		return p.Line < q.Line
	}
	return p.Col < q.Col
}
